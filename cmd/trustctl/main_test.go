package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weboftrust"
	"weboftrust/internal/checkpoint"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

func generateSnapshot(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.wot")
	if err := run([]string{"generate", "-preset", "small", "-seed", "3", "-out", path}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGenerateAndStats(t *testing.T) {
	path := generateSnapshot(t)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if err := run([]string{"stats", "-in", path}); err != nil {
		t.Fatal(err)
	}
	// The snapshot must round-trip through the store layer.
	d, err := loadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != synth.Small().NumUsers {
		t.Errorf("users = %d, want %d", d.NumUsers(), synth.Small().NumUsers)
	}
}

func TestTopKAndExpertise(t *testing.T) {
	path := generateSnapshot(t)
	if err := run([]string{"topk", "-in", path, "-user", "5", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"expertise", "-in", path, "-user", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"topk", "-in", path, "-user", "999999"}); err == nil {
		t.Error("out-of-range user accepted")
	}
	if err := run([]string{"expertise", "-in", path, "-user", "999999"}); err == nil {
		t.Error("out-of-range user accepted")
	}
}

func TestExportCSV(t *testing.T) {
	path := generateSnapshot(t)
	dir := filepath.Join(t.TempDir(), "csv")
	if err := run([]string{"export", "-in", path, "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"users", "objects", "reviews", "ratings", "trust"} {
		p := filepath.Join(dir, name+".csv")
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s missing: %v", p, err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestIngest(t *testing.T) {
	// Write an event log with the store layer, replay via the CLI.
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := synth.Small()
	cfg.NumUsers = 50
	cfg.TotalObjects = 20
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "replayed.wot")
	if err := run([]string{"ingest", "-log", logPath, "-out", out}); err != nil {
		t.Fatal(err)
	}
	got, err := loadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRatings() != d.NumRatings() || got.NumTrustEdges() != d.NumTrustEdges() {
		t.Errorf("replayed dataset differs: %v vs %v", got, d)
	}
}

func TestExportLogRoundTrip(t *testing.T) {
	snap := generateSnapshot(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	if err := run([]string{"exportlog", "-in", snap, "-log", logPath}); err != nil {
		t.Fatal(err)
	}
	// Log → snapshot → dataset must equal the original.
	out := filepath.Join(dir, "replayed.wot")
	if err := run([]string{"ingest", "-log", logPath, "-out", out}); err != nil {
		t.Fatal(err)
	}
	want, err := loadDataset(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != want.NumUsers() || got.NumRatings() != want.NumRatings() ||
		got.NumTrustEdges() != want.NumTrustEdges() {
		t.Errorf("round trip differs: %v vs %v", got, want)
	}
}

func TestCheckpointAndCompact(t *testing.T) {
	snap := generateSnapshot(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	if err := run([]string{"exportlog", "-in", snap, "-log", logPath}); err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")

	// checkpoint: builds a warm-restart bundle, leaves the log alone.
	if err := run([]string{"checkpoint", "-log", logPath, "-dir", ckptDir}); err != nil {
		t.Fatal(err)
	}
	logSize := func() int64 {
		st, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		return st.Size()
	}
	sizeBefore := logSize()
	if sizeBefore == 0 {
		t.Fatal("log emptied by checkpoint")
	}
	want, err := loadDataset(snap)
	if err != nil {
		t.Fatal(err)
	}
	model, info, err := checkpoint.Restore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != sizeBefore {
		t.Fatalf("checkpoint offset %d, want full log %d", info.Offset, sizeBefore)
	}
	if model.Dataset().NumUsers() != want.NumUsers() || model.Dataset().NumRatings() != want.NumRatings() {
		t.Fatalf("checkpointed dataset %v, want %v", model.Dataset(), want)
	}

	// compact: folds the prefix and truncates the log.
	if err := run([]string{"compact", "-log", logPath, "-dir", ckptDir}); err != nil {
		t.Fatal(err)
	}
	if s := logSize(); s != 0 {
		t.Fatalf("log holds %d bytes after compact, want 0", s)
	}
	model2, info2, err := checkpoint.Restore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Offset != 0 {
		t.Fatalf("post-compact offset %d, want 0", info2.Offset)
	}
	if model2.Dataset().NumUsers() != want.NumUsers() || model2.Dataset().NumRatings() != want.NumRatings() {
		t.Fatalf("compacted dataset %v, want %v", model2.Dataset(), want)
	}

	// Flag validation.
	if err := run([]string{"checkpoint", "-log", logPath}); err == nil {
		t.Error("checkpoint without -dir accepted")
	}
	if err := run([]string{"compact", "-dir", ckptDir}); err == nil {
		t.Error("compact without -log accepted")
	}
}

func TestIngestTruncatedLog(t *testing.T) {
	snap := generateSnapshot(t)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "events.log")
	if err := run([]string{"exportlog", "-in", snap, "-log", logPath}); err != nil {
		t.Fatal(err)
	}
	// Tear the final record.
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "replayed.wot")
	err = run([]string{"ingest", "-log", logPath, "-out", out})
	if !errors.Is(err, store.ErrTruncated) {
		t.Fatalf("torn log ingest error = %v, want ErrTruncated", err)
	}
	if err := run([]string{"ingest", "-log", logPath, "-out", out, "-allow-truncated"}); err != nil {
		t.Fatalf("tolerant ingest failed: %v", err)
	}
	if _, err := loadDataset(out); err != nil {
		t.Fatalf("prefix snapshot unreadable: %v", err)
	}
}

func TestArgumentErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"generate"}, // missing -out
		{"generate", "-preset", "nope", "-out", "x"},
		{"stats"}, // missing -in
		{"stats", "-in", "/nonexistent/file.wot"},
		{"topk", "-in", "x"},    // missing -user
		{"expertise"},           // missing flags
		{"export", "-in", "x"},  // missing -dir
		{"ingest", "-log", "x"}, // missing -out
		{"ingest", "-log", "/nonexistent", "-out", "y"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	path := generateSnapshot(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.wot")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-in", bad}); err == nil {
		t.Error("corrupted snapshot accepted")
	}
}

func TestPresetConfig(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		cfg, err := presetConfig(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
	if _, err := presetConfig("huge"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("bad preset error = %v", err)
	}
}

func TestLoadDatasetHelpers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wot")
	b := ratings.NewBuilder()
	b.AddUser("u")
	if err := saveDataset(path, b.Build()); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 1 {
		t.Errorf("users = %d, want 1", d.NumUsers())
	}
	if err := saveDataset("/nonexistent-dir/x.wot", b.Build()); err == nil {
		t.Error("write to bad path accepted")
	}
}

func TestExportGraph(t *testing.T) {
	snap := generateSnapshot(t)
	dir := t.TempDir()

	// CSV from a snapshot: a header plus one line per edge, matching the
	// derived model's web exactly.
	csvPath := filepath.Join(dir, "graph.csv")
	if err := run([]string{"exportgraph", "-in", snap, "-out", csvPath}); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(snap)
	if err != nil {
		t.Fatal(err)
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	web := model.WebOfTrust()
	raw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "from,to,weight" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines)-1 != web.NumEdges() {
		t.Fatalf("csv has %d edges, web %d", len(lines)-1, web.NumEdges())
	}

	// JSON from an event log (replay path) must carry the same edges.
	logPath := filepath.Join(dir, "events.log")
	if err := run([]string{"exportlog", "-in", snap, "-log", logPath}); err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "graph.json")
	if err := run([]string{"exportgraph", "-log", logPath, "-format", "json", "-out", jsonPath}); err != nil {
		t.Fatal(err)
	}
	jraw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var edges []struct {
		From   int     `json:"from"`
		To     int     `json:"to"`
		Weight float64 `json:"weight"`
	}
	if err := json.Unmarshal(jraw, &edges); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if len(edges) != web.NumEdges() {
		t.Fatalf("json has %d edges, web %d", len(edges), web.NumEdges())
	}
	for _, e := range edges {
		if w, ok := findEdge(web, e.From, e.To); !ok || w != e.Weight {
			t.Fatalf("edge %+v not in web (ok=%v w=%v)", e, ok, w)
		}
	}

	// Checkpoint source serves the same graph.
	ckptDir := filepath.Join(dir, "ckpt")
	if err := run([]string{"checkpoint", "-log", logPath, "-dir", ckptDir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ckptDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}
	ckptCSV := filepath.Join(dir, "from-ckpt.csv")
	if err := run([]string{"exportgraph", "-checkpoint", filepath.Join(ckptDir, entries[0].Name()), "-out", ckptCSV}); err != nil {
		t.Fatal(err)
	}
	craw, err := os.ReadFile(ckptCSV)
	if err != nil {
		t.Fatal(err)
	}
	if string(craw) != string(raw) {
		t.Error("checkpoint-sourced graph differs from snapshot-sourced graph")
	}

	// Threshold policy produces a different (valid) dump.
	tauCSV := filepath.Join(dir, "tau.csv")
	if err := run([]string{"exportgraph", "-in", snap, "-tau", "0.5", "-out", tauCSV}); err != nil {
		t.Fatal(err)
	}

	// Flag validation.
	if err := run([]string{"exportgraph"}); err == nil {
		t.Error("no source accepted")
	}
	if err := run([]string{"exportgraph", "-in", snap, "-log", logPath}); err == nil {
		t.Error("two sources accepted")
	}
	if err := run([]string{"exportgraph", "-in", snap, "-format", "dot"}); err == nil {
		t.Error("unknown format accepted")
	}
}

// findEdge looks an edge up in the web's rows.
func findEdge(web *weboftrust.Web, from, to int) (float64, bool) {
	cols, w := web.Neighbors(ratings.UserID(from))
	for i, j := range cols {
		if int(j) == to {
			return w[i], true
		}
	}
	return 0, false
}
