package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"weboftrust"
	"weboftrust/internal/adversary"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// cmdAttack runs adversarial scenarios (internal/adversary) against
// their clean synth baselines and reports the resistance metrics: rank
// lift, top-k exposure, per-algorithm propagation inflation and anomaly
// separation, with each scenario's pinned assertions enforced. With
// -export-log the attacked dataset is additionally rendered as an event
// log — optionally source-filtered through the same
// store.ParseUserFilter/store.FilterBySource path `exportlog -users`
// uses, so an attack cohort replays correctly onto a sharded cluster.
func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	scenario := fs.String("scenario", "", "one scenario JSON file to run")
	dir := fs.String("dir", "", "directory of scenario JSON files (e.g. scenarios/)")
	jsonOut := fs.String("json", "", "write the resistance-metrics report JSON to this path")
	exportLog := fs.String("export-log", "", "write the attacked dataset as an event log (single -scenario only)")
	users := fs.String("users", "", "with -export-log: keep only these sources' actions (i/N shard spec or id list)")
	pruneTau := fs.Float64("propagate-prune-tau", 0, "derive models with percolation pruning at this tau (0 = off)")
	maxDepth := fs.Int("propagate-max-depth", 0, "derive models with a truncated-walk depth horizon (0 = unbounded)")
	massEps := fs.Float64("propagate-mass-eps", 0, "derive models with a truncated-walk mass floor (0 = off)")
	landmarks := fs.Int("landmarks", 0, "measure propagation inflation through N-landmark sketches (?approx=landmark mode; 0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*scenario == "") == (*dir == "") {
		return fmt.Errorf("attack: exactly one of -scenario or -dir is required")
	}
	if *exportLog != "" && *scenario == "" {
		return fmt.Errorf("attack: -export-log needs a single -scenario")
	}

	var scs []*adversary.Scenario
	if *scenario != "" {
		sc, err := adversary.LoadScenario(*scenario)
		if err != nil {
			return err
		}
		scs = append(scs, sc)
	} else {
		var err error
		if scs, err = adversary.LoadDir(*dir); err != nil {
			return err
		}
	}

	runner := adversary.NewRunner()
	if *pruneTau > 0 {
		runner.DeriveOpts = append(runner.DeriveOpts, weboftrust.WithPropagatePruneTau(*pruneTau))
	}
	if *maxDepth > 0 {
		runner.DeriveOpts = append(runner.DeriveOpts, weboftrust.WithPropagateMaxDepth(*maxDepth))
	}
	if *massEps > 0 {
		runner.DeriveOpts = append(runner.DeriveOpts, weboftrust.WithPropagateMassEps(*massEps))
	}
	runner.Landmarks = *landmarks
	rep, err := runner.RunSuite(scs)
	if err != nil {
		return err
	}
	for _, res := range rep.Scenarios {
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if *jsonOut != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *jsonOut, len(rep.Scenarios))
	}
	if *exportLog != "" {
		if err := exportAttackLog(scs[0], *exportLog, *users); err != nil {
			return err
		}
	}
	if !rep.Passed {
		return fmt.Errorf("attack: assertion failures (see report)")
	}
	return nil
}

// exportAttackLog re-injects the scenario's attacks into its clean
// baseline and writes the attacked dataset's event stream, filtered like
// `exportlog -users` when a spec is given. Injection is seeded, so the
// exported log is byte-identical run to run.
func exportAttackLog(sc *adversary.Scenario, path, users string) error {
	cfg, err := sc.BaseConfig()
	if err != nil {
		return err
	}
	clean, _, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	attacked, _, err := adversary.Inject(clean, sc.Attacks, sc.Seed)
	if err != nil {
		return err
	}
	events, err := store.DatasetEvents(attacked)
	if err != nil {
		return err
	}
	total := len(events)
	desc := "all sources"
	if users != "" {
		var keep func(u ratings.UserID) bool
		if keep, desc, err = store.ParseUserFilter(users); err != nil {
			return fmt.Errorf("attack: %w", err)
		}
		events = store.FilterBySource(events, keep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	lw := store.NewLogWriter(f)
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			f.Close()
			return err
		}
	}
	if err := lw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: kept %d of %d events for %s\n", path, len(events), total, desc)
	return nil
}
