// Command trustctl manages web-of-trust datasets and queries derived
// trust from the command line.
//
// Usage:
//
//	trustctl generate -preset small|medium|paper [-seed N] -out data.wot
//	trustctl stats    -in data.wot
//	trustctl topk     -in data.wot -user ID [-k N]
//	trustctl expertise -in data.wot -user ID
//	trustctl export   -in data.wot -dir DIR
//	trustctl ingest   -log events.log -out data.wot [-allow-truncated]
//	trustctl exportlog -in data.wot -log events.log [-users i/N | -users 1,2,3]
//	trustctl checkpoint -log events.log -dir DIR [-shard i/N] [-workers N] [-allow-truncated]
//	trustctl compact    -log events.log -dir DIR [-shard i/N] [-workers N] [-allow-truncated]
//	trustctl exportgraph (-in data.wot | -log events.log | -checkpoint FILE)
//	                     [-format csv|json] [-out FILE] [-tau T] [-cold-generosity K]
//	                     [-workers N] [-allow-truncated]
//	trustctl attack   (-scenario FILE | -dir DIR) [-json OUT]
//	                  [-export-log FILE [-users i/N | -users 1,2,3]]
//
// Datasets are stored in the snapshot format of internal/store (CRC-32
// checked); "ingest" replays an append-only event log into a snapshot.
// "checkpoint" folds the log's complete prefix into a warm-restart
// checkpoint (internal/checkpoint) offline, so the next trustd boot
// restores instead of re-deriving; "compact" additionally truncates the
// folded prefix out of the log, bounding log growth. Both warm-start from
// an existing checkpoint in -dir when one is usable, and both accept
// -shard i/N to build the per-shard checkpoint a `trustd serve -shard
// i/N` boots from. Neither may run while a writer is appending or a
// trustd is tailing the log.
//
// "exportlog -users" filters the exported log to the chosen sources'
// actions: structural events (users, objects, reviews, categories) are
// always kept so dense IDs stay stable, while ratings and trust edges
// survive only when their source user matches -users — either an
// explicit comma-separated id list or a shard spec i/N selecting the
// users the cluster's consistent hash assigns shard i.
//
// "attack" runs adversarial scenarios (internal/adversary, seed corpus
// in scenarios/): each JSON file names a synth baseline, a set of seeded
// attack cohorts to inject, and pinned resistance assertions. The
// command renders the resistance metrics as tables, optionally writes
// the JSON report CI archives, exits non-zero when any assertion fails,
// and with -export-log renders the attacked dataset as an event log —
// filtered per shard through the same source-filter path as
// "exportlog -users" when -users is given.
//
// "exportgraph" dumps the binarised web of trust — the same graph trustd
// serves at /v1/neighbors and propagates at /v1/propagate — as a
// from,to,weight edge list (CSV or JSON) for offline analysis, built from
// a snapshot, an event log, or a warm-restart checkpoint file.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"weboftrust"
	"weboftrust/internal/checkpoint"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trustctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: trustctl <generate|stats|topk|expertise|export|ingest|exportlog|exportgraph|checkpoint|compact|attack> [flags]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "exportlog":
		return cmdExportLog(args[1:])
	case "exportgraph":
		return cmdExportGraph(args[1:])
	case "checkpoint":
		return cmdCheckpoint(args[1:])
	case "compact":
		return cmdCompact(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "topk":
		return cmdTopK(args[1:])
	case "expertise":
		return cmdExpertise(args[1:])
	case "export":
		return cmdExport(args[1:])
	case "ingest":
		return cmdIngest(args[1:])
	case "attack":
		return cmdAttack(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func presetConfig(name string) (synth.Config, error) {
	switch name {
	case "small":
		return synth.Small(), nil
	case "medium":
		return synth.Medium(), nil
	case "paper":
		return synth.PaperScale(), nil
	default:
		return synth.Config{}, fmt.Errorf("unknown preset %q (small, medium, paper)", name)
	}
}

func loadDataset(path string) (*ratings.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.ReadSnapshot(f)
}

func saveDataset(path string, d *ratings.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := store.WriteSnapshot(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	preset := fs.String("preset", "medium", "dataset preset: small, medium or paper")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "", "output snapshot path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("generate: -out is required")
	}
	cfg, err := presetConfig(*preset)
	if err != nil {
		return err
	}
	cfg.Seed = *seed
	d, _, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	if err := saveDataset(*out, d); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v\n", *out, d)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("stats: -in is required")
	}
	d, err := loadDataset(*in)
	if err != nil {
		return err
	}
	fmt.Println(d.Stats())
	return nil
}

func cmdTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path (required)")
	user := fs.Int("user", -1, "source user id (required)")
	k := fs.Int("k", 10, "how many users to return")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *user < 0 {
		return fmt.Errorf("topk: -in and -user are required")
	}
	d, err := loadDataset(*in)
	if err != nil {
		return err
	}
	if *user >= d.NumUsers() {
		return fmt.Errorf("topk: user %d out of range %d", *user, d.NumUsers())
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		return err
	}
	top := model.TopTrusted(weboftrust.UserID(*user), *k)
	t := tables.New("Rank", "User", "Name", "Derived trust").AlignRight(0, 1, 3).
		Title(fmt.Sprintf("Top trusted users for %s (user %d)", d.UserName(ratings.UserID(*user)), *user))
	for i, r := range top {
		t.AddRow(i+1, int(r.User), d.UserName(r.User), r.Score)
	}
	return t.Render(os.Stdout)
}

func cmdExpertise(args []string) error {
	fs := flag.NewFlagSet("expertise", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path (required)")
	user := fs.Int("user", -1, "user id (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *user < 0 {
		return fmt.Errorf("expertise: -in and -user are required")
	}
	d, err := loadDataset(*in)
	if err != nil {
		return err
	}
	if *user >= d.NumUsers() {
		return fmt.Errorf("expertise: user %d out of range %d", *user, d.NumUsers())
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		return err
	}
	u := weboftrust.UserID(*user)
	e := model.Expertise(u)
	a := model.Affinity(u)
	t := tables.New("Category", "Expertise", "Affinity").AlignRight(1, 2).
		Title(fmt.Sprintf("Profile of %s (user %d)", d.UserName(u), *user))
	for c := 0; c < d.NumCategories(); c++ {
		t.AddRow(d.CategoryName(ratings.CategoryID(c)), e[c], a[c])
	}
	return t.Render(os.Stdout)
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path (required)")
	dir := fs.String("dir", "", "output directory for CSV files (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("export: -in and -dir are required")
	}
	d, err := loadDataset(*in)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	files := make(map[string]*os.File)
	for _, name := range []string{"users", "objects", "reviews", "ratings", "trust"} {
		f, err := os.Create(filepath.Join(*dir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		files[name] = f
	}
	err = store.ExportCSV(store.CSVWriters{
		Users:   files["users"],
		Objects: files["objects"],
		Reviews: files["reviews"],
		Ratings: files["ratings"],
		Trust:   files["trust"],
	}, d)
	if err != nil {
		return err
	}
	fmt.Printf("exported %v to %s\n", d, *dir)
	return nil
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	logPath := fs.String("log", "", "input event log path (required)")
	out := fs.String("out", "", "output snapshot path (required)")
	allowTruncated := fs.Bool("allow-truncated", false,
		"ingest the intact prefix of a log whose final record is torn (crash during append)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *out == "" {
		return fmt.Errorf("ingest: -log and -out are required")
	}
	return ingestLog(*logPath, *out, *allowTruncated)
}

func ingestLog(logPath, out string, allowTruncated bool) error {
	d, n, err := loadLogDataset(logPath, allowTruncated, "ingest")
	if err != nil {
		return err
	}
	if err := saveDataset(out, d); err != nil {
		return err
	}
	fmt.Printf("replayed %d events into %s: %v\n", n, out, d)
	return nil
}

// loadLogDataset replays an event log into a dataset, tolerating a torn
// final record when allowTruncated is set (the shared torn-record
// semantics of every log-consuming subcommand). cmd labels the warning.
func loadLogDataset(logPath string, allowTruncated bool, cmd string) (*ratings.Dataset, int, error) {
	f, err := os.Open(logPath)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	events, err := store.ReadLog(f)
	if err != nil {
		var trunc *store.TruncatedError
		if errors.As(err, &trunc) && allowTruncated {
			fmt.Fprintf(os.Stderr, "%s: torn final record; using %d events up to offset %d\n",
				cmd, len(events), trunc.Offset)
		} else {
			return nil, 0, fmt.Errorf("reading log: %w", err)
		}
	}
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		return nil, 0, err
	}
	return b.Build(), len(events), nil
}

func cmdCheckpoint(args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	logPath := fs.String("log", "", "input event log path (required)")
	dir := fs.String("dir", "", "checkpoint directory (required)")
	workers := fs.Int("workers", 0, "pipeline worker goroutines (0 = one per CPU)")
	shardFlag := fs.String("shard", "", "build the per-shard checkpoint for shard i/N (empty = unsharded)")
	allowTruncated := fs.Bool("allow-truncated", false,
		"fold the intact prefix of a log whose final record is torn (crash during append)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *dir == "" {
		return fmt.Errorf("checkpoint: -log and -dir are required")
	}
	opts, err := shardOpts(*shardFlag, weboftrust.WithWorkers(*workers))
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	res, err := checkpoint.WriteFromLog(*logPath, *dir, *allowTruncated, opts...)
	if err != nil {
		return err
	}
	boot := "cold"
	if res.Warm {
		boot = "warm"
	}
	fmt.Printf("wrote %s at log offset %d (%s build, %d events replayed)\n",
		res.Path, res.Offset, boot, res.TailedEvents)
	return nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	logPath := fs.String("log", "", "event log to compact (required; rewritten in place)")
	dir := fs.String("dir", "", "checkpoint directory (required)")
	workers := fs.Int("workers", 0, "pipeline worker goroutines (0 = one per CPU)")
	shardFlag := fs.String("shard", "", "build the per-shard checkpoint for shard i/N (empty = unsharded)")
	allowTruncated := fs.Bool("allow-truncated", false,
		"fold the intact prefix of a log whose final record is torn (the torn bytes stay in the log)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || *dir == "" {
		return fmt.Errorf("compact: -log and -dir are required")
	}
	opts, err := shardOpts(*shardFlag, weboftrust.WithWorkers(*workers))
	if err != nil {
		return fmt.Errorf("compact: %w", err)
	}
	res, err := checkpoint.Compact(*logPath, *dir, *allowTruncated, opts...)
	if err != nil {
		return err
	}
	boot := "cold"
	if res.Warm {
		boot = "warm"
	}
	fmt.Printf("folded %d bytes (%d events, %s build) into %s; log now %d bytes\n",
		res.FoldedBytes, res.FoldedEvents, boot, res.Path, res.RemainderBytes)
	return nil
}

func cmdExportGraph(args []string) error {
	fs := flag.NewFlagSet("exportgraph", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path")
	logPath := fs.String("log", "", "input event log path (replayed in full)")
	ckptPath := fs.String("checkpoint", "", "input warm-restart checkpoint file")
	format := fs.String("format", "csv", "output format: csv or json")
	out := fs.String("out", "", "output path (default stdout)")
	tau := fs.Float64("tau", -1, "binarise with a global score threshold instead of per-user top-k generosity (-1 = per-user top-k)")
	coldK := fs.Float64("cold-generosity", 0, "generosity fallback for users whose history cannot calibrate one")
	workers := fs.Int("workers", 0, "pipeline worker goroutines (0 = one per CPU)")
	allowTruncated := fs.Bool("allow-truncated", false,
		"replay the intact prefix of a log whose final record is torn")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, s := range []string{*in, *logPath, *ckptPath} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("exportgraph: exactly one of -in, -log or -checkpoint is required")
	}
	if *format != "csv" && *format != "json" {
		return fmt.Errorf("exportgraph: unknown format %q (csv, json)", *format)
	}
	opts := []weboftrust.Option{weboftrust.WithWorkers(*workers)}
	if *tau >= 0 {
		opts = append(opts, weboftrust.WithWebThreshold(*tau))
	}
	if *coldK != 0 {
		opts = append(opts, weboftrust.WithWebColdStartGenerosity(*coldK))
	}

	var model *weboftrust.TrustModel
	switch {
	case *in != "":
		d, err := loadDataset(*in)
		if err != nil {
			return err
		}
		if model, err = weboftrust.Derive(d, opts...); err != nil {
			return err
		}
	case *logPath != "":
		d, _, err := loadLogDataset(*logPath, *allowTruncated, "exportgraph")
		if err != nil {
			return err
		}
		if model, err = weboftrust.Derive(d, opts...); err != nil {
			return err
		}
	default:
		var err error
		if model, _, err = checkpoint.ReadFile(*ckptPath, opts...); err != nil {
			return err
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	web := model.WebOfTrust()
	if err := writeGraph(w, web, *format); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported web of trust: %d nodes, %d edges, policy %s\n",
		web.NumUsers(), web.NumEdges(), web.Policy())
	return nil
}

// writeGraph streams the web's edge list: CSV with a from,to,weight
// header, or a JSON array of {"from","to","weight"} objects.
func writeGraph(w io.Writer, web *weboftrust.Web, format string) error {
	bw := bufio.NewWriter(w)
	switch format {
	case "csv":
		if _, err := fmt.Fprintln(bw, "from,to,weight"); err != nil {
			return err
		}
		for u := 0; u < web.NumUsers(); u++ {
			to, weights := web.Neighbors(ratings.UserID(u))
			for i, j := range to {
				if _, err := fmt.Fprintf(bw, "%d,%d,%g\n", u, j, weights[i]); err != nil {
					return err
				}
			}
		}
	case "json":
		sep := "["
		for u := 0; u < web.NumUsers(); u++ {
			to, weights := web.Neighbors(ratings.UserID(u))
			for i, j := range to {
				if _, err := fmt.Fprintf(bw, "%s\n  {\"from\": %d, \"to\": %d, \"weight\": %g}", sep, u, j, weights[i]); err != nil {
					return err
				}
				sep = ","
			}
		}
		if sep == "[" {
			if _, err := fmt.Fprint(bw, "["); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "\n]"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func cmdExportLog(args []string) error {
	fs := flag.NewFlagSet("exportlog", flag.ContinueOnError)
	in := fs.String("in", "", "input snapshot path (required)")
	logPath := fs.String("log", "", "output event log path (required)")
	users := fs.String("users", "", "keep only these sources' ratings and trust edges: a shard spec i/N or a comma-separated id list (empty = everything)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *logPath == "" {
		return fmt.Errorf("exportlog: -in and -log are required")
	}
	d, err := loadDataset(*in)
	if err != nil {
		return err
	}
	f, err := os.Create(*logPath)
	if err != nil {
		return err
	}
	lw := store.NewLogWriter(f)
	if *users == "" {
		if err := store.AppendDataset(lw, d); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s from %s: %v\n", *logPath, *in, d)
		return nil
	}

	keep, desc, err := store.ParseUserFilter(*users)
	if err != nil {
		f.Close()
		return fmt.Errorf("exportlog: %w", err)
	}
	// Materialise the full event stream, filter the per-source action
	// events (structural events always survive; see store.FilterBySource),
	// and write the remainder.
	events, err := store.DatasetEvents(d)
	if err != nil {
		f.Close()
		return err
	}
	total := len(events)
	events = store.FilterBySource(events, keep)
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			f.Close()
			return err
		}
	}
	if err := lw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s from %s: kept %d of %d events for %s\n", *logPath, *in, len(events), total, desc)
	return nil
}

// shardOpts appends WithShard to base when a -shard i/N flag was given.
func shardOpts(spec string, base ...weboftrust.Option) ([]weboftrust.Option, error) {
	if spec == "" {
		return base, nil
	}
	sp, err := shard.Parse(spec)
	if err != nil {
		return nil, err
	}
	return append(base, weboftrust.WithShard(sp.Index, sp.Count)), nil
}
