package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"weboftrust/internal/ratings"
	"weboftrust/internal/server"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"serve"},                                // neither -log nor -snapshot
		{"serve", "-log", "a", "-snapshot", "b"}, // both
		{"serve", "-log", "/does/not/exist.log"}, // unreadable log
		{"serve", "-snapshot", "/does/not/exist.wot"}, // unreadable snapshot
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%q) accepted", args)
		}
	}
}

func writeLog(t *testing.T) (string, *ratings.Dataset) {
	t.Helper()
	cfg := synth.Small()
	cfg.NumUsers = 50
	cfg.TotalObjects = 25
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, d
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// End-to-end: serve a log over HTTP, watch the tailer fold in an appended
// batch, then shut down gracefully on SIGTERM.
func TestServeTailAndShutdown(t *testing.T) {
	logPath, d := writeLog(t)
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", addr, "-log", logPath, "-poll", "20ms"})
	}()
	base := "http://" + addr

	waitOK := func(url string) *http.Response {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(url)
			if err == nil && resp.StatusCode == http.StatusOK {
				return resp
			}
			if err == nil {
				resp.Body.Close()
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s never succeeded (last err %v)", url, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	resp := waitOK(base + "/healthz")
	resp.Body.Close()

	var stats server.StatsResponse
	resp = waitOK(base + "/v1/stats")
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Dataset.Users != d.NumUsers() || stats.Version != 1 {
		t.Fatalf("initial stats = %+v", stats)
	}

	// Append a valid batch: a new user reviewing a new object, rated by
	// an existing user. The tailer must pick it up and bump the version.
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range []store.Event{
		{Kind: store.EvAddUser, Name: "late-arrival"},
		{Kind: store.EvAddObject, Category: 0, Name: ""},
		{Kind: store.EvAddReview, User: ratings.UserID(d.NumUsers()), Object: ratings.ObjectID(d.NumObjects())},
		{Kind: store.EvAddRating, User: 1, Review: ratings.ReviewID(d.NumReviews()), Level: 5},
	} {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp = waitOK(base + "/v1/stats")
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if stats.Version >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tailer never swapped: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Dataset.Users != d.NumUsers()+1 {
		t.Errorf("post-swap users = %d, want %d", stats.Dataset.Users, d.NumUsers()+1)
	}

	// The new user must be queryable.
	resp = waitOK(fmt.Sprintf("%s/v1/topk?user=%d&k=3", base, d.NumUsers()))
	resp.Body.Close()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down on SIGTERM")
	}
}

// End-to-end warm restart: a first daemon writes a shutdown checkpoint;
// a second boots from it, surfaces the checkpoint in /v1/stats, and keeps
// tailing.
func TestServeCheckpointWarmRestart(t *testing.T) {
	logPath, d := writeLog(t)
	ckptDir := filepath.Join(filepath.Dir(logPath), "ckpts")

	getStats := func(t *testing.T, base string) server.StatsResponse {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/v1/stats")
			if err == nil && resp.StatusCode == http.StatusOK {
				var stats server.StatsResponse
				if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				return stats
			}
			if err == nil {
				resp.Body.Close()
			}
			if time.Now().After(deadline) {
				t.Fatalf("stats never came up (last err %v)", err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	serve := func(addr string) chan error {
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"serve", "-addr", addr, "-log", logPath, "-poll", "20ms",
				"-checkpoint-dir", ckptDir, "-checkpoint-interval", "1h"})
		}()
		return done
	}
	shutdown := func(t *testing.T, done chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("serve did not shut down on SIGTERM")
		}
	}

	addr := freePort(t)
	done := serve(addr)
	stats := getStats(t, "http://"+addr)
	if stats.Dataset.Users != d.NumUsers() {
		t.Fatalf("cold stats = %+v", stats)
	}
	shutdown(t, done)

	// The shutdown flush must have produced a checkpoint.
	entries, err := os.ReadDir(ckptDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no checkpoint after shutdown (err %v)", err)
	}

	// Second boot: warm, same model, checkpoint block in stats.
	addr2 := freePort(t)
	done2 := serve(addr2)
	stats2 := getStats(t, "http://"+addr2)
	if stats2.Dataset.Users != d.NumUsers() {
		t.Fatalf("warm stats = %+v", stats2)
	}

	// The warm daemon still tails: append a batch and watch it land.
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range []store.Event{
		{Kind: store.EvAddUser, Name: "after-restart"},
		{Kind: store.EvAddObject, Category: 0, Name: ""},
		{Kind: store.EvAddReview, User: ratings.UserID(d.NumUsers()), Object: ratings.ObjectID(d.NumObjects())},
	} {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats2 = getStats(t, "http://"+addr2)
		if stats2.Dataset.Users == d.NumUsers()+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("warm daemon never ingested the tail: %+v", stats2)
		}
		time.Sleep(20 * time.Millisecond)
	}
	shutdown(t, done2)

	// The second shutdown checkpointed the grown model.
	stats3 := func() server.StatsResponse {
		addr3 := freePort(t)
		done3 := serve(addr3)
		s := getStats(t, "http://"+addr3)
		shutdown(t, done3)
		return s
	}()
	if stats3.Dataset.Users != d.NumUsers()+1 {
		t.Fatalf("third boot lost the tail: %+v", stats3)
	}
}

func TestServeCheckpointDirRequiresLog(t *testing.T) {
	if err := run([]string{"serve", "-snapshot", "x.wot", "-checkpoint-dir", "y"}); err == nil {
		t.Fatal("snapshot mode accepted -checkpoint-dir")
	}
}

func TestServeSnapshotMode(t *testing.T) {
	cfg := synth.Small()
	cfg.NumUsers = 40
	cfg.TotalObjects = 20
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "data.wot")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()

	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-addr", addr, "-snapshot", snap})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/topk?user=3&k=5")
		if err == nil && resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		if err == nil {
			resp.Body.Close()
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot serve never came up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no graceful shutdown")
	}
}
