// Command trustd serves derived trust over HTTP and keeps itself fresh by
// tailing an append-only event log.
//
// Usage:
//
//	trustd serve   -log events.log [-addr :8080] [-shard i/N] [-poll 500ms] [-cache-results 512]
//	               [-workers N] [-checkpoint-dir DIR] [-checkpoint-interval 5m] [-checkpoint-keep 2]
//	               [-web-tau T] [-web-cold-generosity K] [-max-inflight N]
//	               [-propagate-prune-tau T] [-propagate-max-depth D] [-propagate-mass-eps E]
//	               [-propagate-precompute-budget D] [-landmarks L] [-pprof-addr :6060]
//	trustd serve   -snapshot data.wot [-addr :8080]            (static serving)
//	trustd route   -shards URL,URL,... [-addr :8090] [-timeout 5s] [-retries 1] [-wait-ready 30s]
//	               [-retry-backoff 25ms] [-breaker-threshold 5] [-breaker-cooldown 1s]
//	               [-hedge-after D] [-stale-entries N]
//	trustd loadgen -addr http://localhost:8080 [-duration 10s] [-concurrency 8] [-k 10]
//	trustd chaosproxy -target URL [-addr :8095] [-latency-p P] [-error-p P] [-blackhole-p P] [-reset-p P]
//
// With -shard i/N the daemon serves shard i of an N-way source-partitioned
// cluster: it replays the same log as every other shard but retains dense
// per-source state only for the users the cluster's consistent hash assigns
// it, answering 421 for sources it does not own. `trustd route` fronts such
// a cluster as one endpoint: a stateless proxy that hashes each request's
// source user to its owning shard (replicas of one shard separated by '|',
// shards separated by ','), and is ready only once every shard is.
//
// The route tier fails gracefully (DESIGN.md §12): first attempts rotate
// across a shard's replicas skipping tripped circuit breakers
// (-breaker-threshold consecutive failures open a replica for
// -breaker-cooldown, then one half-open probe), transient failures retry
// with jittered exponential backoff (-retry-backoff base), slow GETs can
// hedge on the next replica (-hedge-after), and with -stale-entries set a
// fully unreachable shard serves its last known good responses marked
// X-Trustd-Degraded: stale instead of 502. On the shard side -max-inflight
// bounds concurrently served compute queries, shedding the excess with 429
// + Retry-After. `trustd chaosproxy` fronts any shard with a deterministic
// fault injector (latency, error statuses, blackholes, connection resets)
// so all of the above can be rehearsed against a real cluster.
//
// The daemon binds its listen address BEFORE booting: while the replay or
// checkpoint restore runs, /healthz answers 200 (liveness), /readyz answers
// 503, and queries answer 503 — so orchestrators see a live, not-yet-ready
// process instead of connection refused. /readyz flips to 200 once the boot
// model is swapped in at the log offset observed at boot.
//
// In log mode the daemon boots warm when -checkpoint-dir holds a usable
// checkpoint: the persisted model is restored and only the log suffix
// past its offset is replayed through the incremental pipeline, so
// startup cost is O(checkpoint load + tail) instead of O(whole history).
// Without a usable checkpoint it replays the whole log (tolerating a torn
// final record from a crashed writer) and derives from scratch. Either
// way it then polls for appended events: each batch is folded in with the
// incremental pipeline update and swapped in atomically, so queries never
// block on ingest and always see a complete, consistent model. With
// -checkpoint-dir set the daemon also writes a fresh checkpoint every
// -checkpoint-interval (skipping idle intervals) and once more on
// SIGTERM, keeping the newest -checkpoint-keep files.
//
// The daemon also derives, incrementally maintains and serves the
// binarised web of trust: by default users select their top ⌈k_i·n_i⌉
// derived connections (the paper's per-user-generosity protocol;
// -web-cold-generosity gives users who cannot calibrate a k_i a fallback),
// or -web-tau switches to a global score threshold. /v1/neighbors lists a
// user's predicted-trust edges, /v1/propagate ranks transitive trust over
// the graph (with -propagate-prune-tau T weak edges are percolation-pruned
// from the traversal, -propagate-max-depth / -propagate-mass-eps truncate
// the walks themselves, and ?approx=landmark answers from the landmark-hub
// sketches; ?exact=1 forces the complete, untruncated graph), /v1/rank
// serves the global EigenTrust leaderboard (warm-refreshed across ingest
// swaps), and /v1/graph/stats reports the graph's shape. With
// -propagate-precompute-budget set, each incremental swap spends up to
// that wall-clock pre-warming the result cache with hot tainted sources'
// propagation vectors — bitwise-identical to on-demand compute.
//
// Endpoints: /v1/topk?user=U&k=K, /v1/trust?from=I&to=J,
// /v1/expertise?user=U, /v1/neighbors?user=U,
// /v1/propagate?algo=appleseed|moletrust|tidaltrust&user=U&k=K[&exact=1|&approx=landmark],
// /v1/rank[?k=K | ?user=U], /v1/graph/stats, /v1/stats, /healthz, /readyz,
// /metrics (Prometheus text).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weboftrust"
	"weboftrust/internal/faulty"
	"weboftrust/internal/router"
	"weboftrust/internal/server"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trustd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: trustd <serve|route|loadgen> [flags]")
	}
	switch args[0] {
	case "serve":
		return cmdServe(args[1:])
	case "route":
		return cmdRoute(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "chaosproxy":
		return cmdChaosProxy(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	logPath := fs.String("log", "", "event log to replay and tail")
	snapshot := fs.String("snapshot", "", "snapshot to serve statically (alternative to -log)")
	poll := fs.Duration("poll", server.DefaultPoll, "event log polling interval")
	cacheResults := fs.Int("cache-results", server.DefaultCacheResults, "ranked top-k result LRU capacity (-1 disables)")
	fs.IntVar(cacheResults, "cache-rows", server.DefaultCacheResults, "deprecated alias for -cache-results")
	cacheBytes := fs.Int64("cache-bytes", server.DefaultCacheBytes, "result cache byte budget (-1 unbounded)")
	workers := fs.Int("workers", 0, "pipeline worker goroutines for derive and ingest (0 = one per CPU)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for warm-restart checkpoints (restore at boot, write periodically and on shutdown)")
	ckptInterval := fs.Duration("checkpoint-interval", server.DefaultCheckpointInterval, "periodic checkpoint cadence")
	ckptKeep := fs.Int("checkpoint-keep", server.DefaultCheckpointKeep, "recent checkpoints to retain")
	webTau := fs.Float64("web-tau", -1, "binarise the web of trust with a global score threshold instead of per-user top-k generosity (-1 = per-user top-k)")
	webColdK := fs.Float64("web-cold-generosity", 0, "generosity fallback for users whose history cannot calibrate one (per-user top-k policy; 0 = paper protocol)")
	pruneTau := fs.Float64("propagate-prune-tau", 0, "percolation-prune the propagation graph: drop edges with trust weight below tau for /v1/propagate traversals (0 = exact; ?exact=1 always bypasses)")
	walkDepth := fs.Int("propagate-max-depth", 0, "truncate /v1/propagate traversals to this BFS depth around the source (0 = unbounded; ?exact=1 always bypasses)")
	walkEps := fs.Float64("propagate-mass-eps", 0, "drop propagation walk tails whose carried trust mass decays to this or below (0 = keep everything; ?exact=1 always bypasses)")
	precomputeBudget := fs.Duration("propagate-precompute-budget", 0, "wall-clock budget per incremental swap for pre-warming hot tainted sources' propagation results (0 = disabled)")
	landmarks := fs.Int("landmarks", 0, "landmark hubs for the ?approx=landmark propagation mode (0 = default 16; negative disables)")
	shardFlag := fs.String("shard", "", "serve shard i/N of a source-partitioned cluster (e.g. 1/3; empty = unsharded)")
	maxInFlight := fs.Int("max-inflight", 0, "bound concurrently served compute queries; excess is shed with 429 + Retry-After (0 = unbounded)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (own listener, never the serving mux; empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*logPath == "") == (*snapshot == "") {
		return fmt.Errorf("serve: exactly one of -log or -snapshot is required")
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers %d < 0", *workers)
	}
	if *ckptDir != "" && *logPath == "" {
		return fmt.Errorf("serve: -checkpoint-dir requires -log (snapshots already boot from durable state)")
	}
	if *ckptInterval <= 0 {
		return fmt.Errorf("serve: -checkpoint-interval %v must be positive (only the SIGTERM flush cannot be disabled)", *ckptInterval)
	}
	if *ckptKeep < 1 {
		return fmt.Errorf("serve: -checkpoint-keep %d < 1", *ckptKeep)
	}
	if *maxInFlight < 0 {
		return fmt.Errorf("serve: -max-inflight %d < 0", *maxInFlight)
	}
	opts := server.Options{
		CacheResults: *cacheResults, CacheBytes: *cacheBytes, MaxInFlight: *maxInFlight,
		PrecomputeBudget: *precomputeBudget, Landmarks: *landmarks,
	}
	derive := []weboftrust.Option{weboftrust.WithWorkers(*workers)}
	if *webTau >= 0 {
		derive = append(derive, weboftrust.WithWebThreshold(*webTau))
	}
	if *webColdK != 0 {
		derive = append(derive, weboftrust.WithWebColdStartGenerosity(*webColdK))
	}
	if *pruneTau != 0 {
		derive = append(derive, weboftrust.WithPropagatePruneTau(*pruneTau))
	}
	if *walkDepth != 0 {
		derive = append(derive, weboftrust.WithPropagateMaxDepth(*walkDepth))
	}
	if *walkEps != 0 {
		derive = append(derive, weboftrust.WithPropagateMassEps(*walkEps))
	}
	if *shardFlag != "" {
		sp, err := shard.Parse(*shardFlag)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		derive = append(derive, weboftrust.WithShard(sp.Index, sp.Count))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The profiling surface gets its OWN mux and listener, explicitly
	// gated behind -pprof-addr: the serving mux must never expose
	// /debug/pprof (heap dumps and CPU profiles are not for the query
	// port), and the default off keeps production surfaces minimal. With
	// it on, swap-time precompute cost can be profiled in situ
	// (`go tool pprof http://host:port/debug/pprof/profile`).
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("serve: pprof listen: %w", err)
		}
		defer pln.Close()
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(pln, pprofMux) }()
		fmt.Fprintf(os.Stderr, "trustd: pprof on %s\n", pln.Addr())
	}

	// Bind and serve BEFORE booting: the pending server answers liveness
	// 200 / readiness 503 / query 503 while the (possibly long) replay or
	// restore runs, so routers and orchestrators see a live process, never
	// connection refused.
	srv := server.NewPending(opts)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "trustd: listening on %s (booting)\n", ln.Addr())

	tailErr := make(chan error, 1)
	var ckptDone chan error
	if *logPath != "" {
		_, tailer, info, err := server.OpenCheckpointedInto(srv, *logPath, *ckptDir, *poll, opts, derive...)
		if err != nil {
			httpSrv.Close()
			return err
		}
		// Readiness gates on the offset the boot reached: a shard still
		// replaying backlog past this point reports catching-up, not ready.
		srv.SetReadyTarget(info.Offset)
		go func() { tailErr <- tailer.Run(ctx) }()
		if info.Warm {
			fmt.Fprintf(os.Stderr, "trustd: warm boot from %s (offset %d), tailed %d events to offset %d, tailing every %v\n",
				info.CheckpointPath, info.CheckpointOffset, info.TailedEvents, info.Offset, *poll)
		} else {
			fmt.Fprintf(os.Stderr, "trustd: replayed %s to offset %d, tailing every %v\n", *logPath, info.Offset, *poll)
			if info.FallbackReason != "" {
				fmt.Fprintf(os.Stderr, "trustd: cold boot: %s\n", info.FallbackReason)
			}
		}
		if *shardFlag != "" {
			model, _, _ := srv.Current()
			idx, count := model.ShardSpec()
			fmt.Fprintf(os.Stderr, "trustd: serving shard %d/%d (%d of %d users owned)\n",
				idx, count, model.Artifacts().Trust.OwnedUsers(), model.Dataset().NumUsers())
		}
		if *ckptDir != "" {
			ck := server.NewCheckpointer(srv, *ckptDir, *ckptInterval, *ckptKeep)
			ckptDone = make(chan error, 1)
			go func() { ckptDone <- ck.Run(ctx) }()
			fmt.Fprintf(os.Stderr, "trustd: checkpointing to %s every %v (keep %d)\n", *ckptDir, *ckptInterval, *ckptKeep)
		}
	} else {
		f, err := os.Open(*snapshot)
		if err != nil {
			httpSrv.Close()
			return err
		}
		d, err := store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			httpSrv.Close()
			return err
		}
		model, err := weboftrust.Derive(d, derive...)
		if err != nil {
			httpSrv.Close()
			return err
		}
		srv.Swap(model, 0)
		fmt.Fprintf(os.Stderr, "trustd: serving snapshot %s (%v)\n", *snapshot, d)
	}

	// awaitCheckpointer waits for the shutdown flush so process death
	// never costs the events ingested since the last periodic write.
	awaitCheckpointer := func() error {
		if ckptDone == nil {
			return nil
		}
		if err := <-ckptDone; err != nil && !errors.Is(err, context.Canceled) {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		return nil
	}

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		if ckErr := awaitCheckpointer(); err == nil {
			err = ckErr
		}
		return err
	case err := <-serveErr:
		stop()
		if ckErr := awaitCheckpointer(); ckErr != nil {
			fmt.Fprintln(os.Stderr, "trustd:", ckErr)
		}
		return err
	case err := <-tailErr:
		httpSrv.Close()
		stop()
		if ckErr := awaitCheckpointer(); ckErr != nil {
			fmt.Fprintln(os.Stderr, "trustd:", ckErr)
		}
		if errors.Is(err, context.Canceled) {
			return nil
		}
		return fmt.Errorf("tailer stopped: %w", err)
	}
}

// cmdRoute runs the stateless cluster router: one address fronting every
// shard of a source-partitioned deployment.
func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	shards := fs.String("shards", "", "shard map in hash order: shards separated by ',', replicas of one shard by '|' (e.g. http://a:1|http://a2:1,http://b:2)")
	timeout := fs.Duration("timeout", router.DefaultTimeout, "end-to-end budget for one proxied request, across retries")
	retries := fs.Int("retries", router.DefaultRetries, "extra replica attempts after a transport error or 502/503/504 (0 = no retries)")
	maxIdle := fs.Int("max-idle-conns", router.DefaultMaxIdleConnsPerHost, "pooled connections kept per replica")
	waitReady := fs.Duration("wait-ready", 0, "block until every shard reports ready before serving (0 = serve immediately)")
	retryBackoff := fs.Duration("retry-backoff", router.DefaultRetryBackoff, "base pause before a retry, doubled per attempt with jitter (0 = retry immediately)")
	breakerThreshold := fs.Int("breaker-threshold", router.DefaultBreakerThreshold, "consecutive failures that trip a replica's circuit breaker (0 = disable breakers)")
	breakerCooldown := fs.Duration("breaker-cooldown", router.DefaultBreakerCooldown, "rest before a tripped replica gets a half-open probe")
	hedgeAfter := fs.Duration("hedge-after", 0, "hedge slow GETs on the shard's next replica after this long (0 = no hedging)")
	staleEntries := fs.Int("stale-entries", 0, "last-known-good responses to cache for degraded serving when a whole shard is down, marked "+router.DegradedHeader+" (0 = disabled, serve 502)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards == "" {
		return fmt.Errorf("route: -shards is required")
	}
	shardMap, err := router.ParseShards(*shards)
	if err != nil {
		return err
	}
	cfg := router.Config{
		Shards:              shardMap,
		Timeout:             *timeout,
		MaxIdleConnsPerHost: *maxIdle,
		BreakerCooldown:     *breakerCooldown,
		HedgeAfter:          *hedgeAfter,
		StaleEntries:        *staleEntries,
	}
	// These flags say the literal value; the configs' 0 means "default",
	// so map an explicit 0 to the configs' "disabled".
	if *retries == 0 {
		cfg.Retries = -1
	} else {
		cfg.Retries = *retries
	}
	if *retryBackoff == 0 {
		cfg.RetryBackoff = -1
	} else {
		cfg.RetryBackoff = *retryBackoff
	}
	if *breakerThreshold == 0 {
		cfg.BreakerThreshold = -1
	} else {
		cfg.BreakerThreshold = *breakerThreshold
	}
	rt, err := router.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *waitReady > 0 {
		wctx, cancel := context.WithTimeout(ctx, *waitReady)
		err := rt.WaitReady(wctx)
		cancel()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trustd: all %d shards ready\n", rt.NumShards())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "trustd: routing %d shards on %s\n", rt.NumShards(), *addr)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	case err := <-serveErr:
		return err
	}
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a running trustd")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "number of concurrent clients")
	k := fs.Int("k", 10, "top-k size to request")
	users := fs.Int("users", 0, "user-id space to sample (0 = ask /v1/stats)")
	seed := fs.Uint64("seed", 1, "sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := server.RunLoadgen(context.Background(), server.LoadgenConfig{
		BaseURL:     *addr,
		Duration:    *duration,
		Concurrency: *concurrency,
		K:           *k,
		Users:       *users,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	return nil
}

// cmdChaosProxy runs a fault-injecting reverse proxy in front of one
// trustd process: point a router replica at the proxy instead of the
// shard and the cluster's failure handling can be exercised against a
// real deployment — added latency, injected gateway errors, blackholed
// requests and abrupt connection resets, each with its own probability,
// drawn from a deterministic seeded sequence.
func cmdChaosProxy(args []string) error {
	fs := flag.NewFlagSet("chaosproxy", flag.ContinueOnError)
	addr := fs.String("addr", ":8095", "listen address")
	target := fs.String("target", "", "base URL of the trustd process to front (required)")
	match := fs.String("match", "", "restrict faults to request paths with this prefix (empty = all)")
	seed := fs.Uint64("seed", 1, "deterministic fault-draw seed")
	latency := fs.Duration("latency", 50*time.Millisecond, "latency added by a drawn latency fault")
	latencyP := fs.Float64("latency-p", 0, "probability a request draws the latency fault")
	errStatus := fs.Int("error-status", http.StatusServiceUnavailable, "status served by a drawn error fault")
	errP := fs.Float64("error-p", 0, "probability a request draws the error fault")
	blackholeP := fs.Float64("blackhole-p", 0, "probability a request is accepted and never answered")
	resetP := fs.Float64("reset-p", 0, "probability a request's connection is reset abruptly")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target == "" {
		return fmt.Errorf("chaosproxy: -target is required")
	}
	tu, err := url.Parse(*target)
	if err != nil || tu.Scheme == "" || tu.Host == "" {
		return fmt.Errorf("chaosproxy: -target %q is not an absolute URL", *target)
	}
	for name, p := range map[string]float64{"latency-p": *latencyP, "error-p": *errP, "blackhole-p": *blackholeP, "reset-p": *resetP} {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaosproxy: -%s %g outside [0, 1]", name, p)
		}
	}
	// Destructive faults first so the latency fault cannot shadow them;
	// each request draws at most one fault.
	var faults []faulty.Fault
	if *resetP > 0 {
		faults = append(faults, faulty.Fault{PathPrefix: *match, Probability: *resetP, Reset: true})
	}
	if *blackholeP > 0 {
		faults = append(faults, faulty.Fault{PathPrefix: *match, Probability: *blackholeP, Blackhole: true})
	}
	if *errP > 0 {
		faults = append(faults, faulty.Fault{PathPrefix: *match, Probability: *errP, Status: *errStatus})
	}
	if *latencyP > 0 {
		faults = append(faults, faulty.Fault{PathPrefix: *match, Probability: *latencyP, Latency: *latency})
	}
	injector := faulty.New(*seed, faults...)
	proxy := httputil.NewSingleHostReverseProxy(tu)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: injector.Wrap(proxy)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "trustd: chaosproxy %s -> %s (%d fault rules, seed %d)\n", *addr, *target, len(faults), *seed)

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		c := injector.Counts()
		fmt.Fprintf(os.Stderr, "trustd: chaosproxy injected: %d delayed, %d errored, %d blackholed, %d reset (%d passed)\n",
			c.Delayed, c.Errored, c.Blackholed, c.Resets, c.Passed)
		return err
	case err := <-serveErr:
		return err
	}
}
