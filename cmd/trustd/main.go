// Command trustd serves derived trust over HTTP and keeps itself fresh by
// tailing an append-only event log.
//
// Usage:
//
//	trustd serve   -log events.log [-addr :8080] [-poll 500ms] [-cache-results 512] [-workers N]
//	               [-checkpoint-dir DIR] [-checkpoint-interval 5m] [-checkpoint-keep 2]
//	               [-web-tau T] [-web-cold-generosity K]
//	trustd serve   -snapshot data.wot [-addr :8080]            (static serving)
//	trustd loadgen -addr http://localhost:8080 [-duration 10s] [-concurrency 8] [-k 10]
//
// In log mode the daemon boots warm when -checkpoint-dir holds a usable
// checkpoint: the persisted model is restored and only the log suffix
// past its offset is replayed through the incremental pipeline, so
// startup cost is O(checkpoint load + tail) instead of O(whole history).
// Without a usable checkpoint it replays the whole log (tolerating a torn
// final record from a crashed writer) and derives from scratch. Either
// way it then polls for appended events: each batch is folded in with the
// incremental pipeline update and swapped in atomically, so queries never
// block on ingest and always see a complete, consistent model. With
// -checkpoint-dir set the daemon also writes a fresh checkpoint every
// -checkpoint-interval (skipping idle intervals) and once more on
// SIGTERM, keeping the newest -checkpoint-keep files.
//
// The daemon also derives, incrementally maintains and serves the
// binarised web of trust: by default users select their top ⌈k_i·n_i⌉
// derived connections (the paper's per-user-generosity protocol;
// -web-cold-generosity gives users who cannot calibrate a k_i a fallback),
// or -web-tau switches to a global score threshold. /v1/neighbors lists a
// user's predicted-trust edges, /v1/propagate ranks transitive trust over
// the graph, /v1/graph/stats reports its shape.
//
// Endpoints: /v1/topk?user=U&k=K, /v1/trust?from=I&to=J,
// /v1/expertise?user=U, /v1/neighbors?user=U,
// /v1/propagate?algo=appleseed|moletrust|tidaltrust&user=U&k=K,
// /v1/graph/stats, /v1/stats, /healthz, /metrics (Prometheus text).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"weboftrust"
	"weboftrust/internal/server"
	"weboftrust/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trustd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: trustd <serve|loadgen> [flags]")
	}
	switch args[0] {
	case "serve":
		return cmdServe(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	logPath := fs.String("log", "", "event log to replay and tail")
	snapshot := fs.String("snapshot", "", "snapshot to serve statically (alternative to -log)")
	poll := fs.Duration("poll", server.DefaultPoll, "event log polling interval")
	cacheResults := fs.Int("cache-results", server.DefaultCacheResults, "ranked top-k result LRU capacity (-1 disables)")
	fs.IntVar(cacheResults, "cache-rows", server.DefaultCacheResults, "deprecated alias for -cache-results")
	cacheBytes := fs.Int64("cache-bytes", server.DefaultCacheBytes, "result cache byte budget (-1 unbounded)")
	workers := fs.Int("workers", 0, "pipeline worker goroutines for derive and ingest (0 = one per CPU)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for warm-restart checkpoints (restore at boot, write periodically and on shutdown)")
	ckptInterval := fs.Duration("checkpoint-interval", server.DefaultCheckpointInterval, "periodic checkpoint cadence")
	ckptKeep := fs.Int("checkpoint-keep", server.DefaultCheckpointKeep, "recent checkpoints to retain")
	webTau := fs.Float64("web-tau", -1, "binarise the web of trust with a global score threshold instead of per-user top-k generosity (-1 = per-user top-k)")
	webColdK := fs.Float64("web-cold-generosity", 0, "generosity fallback for users whose history cannot calibrate one (per-user top-k policy; 0 = paper protocol)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*logPath == "") == (*snapshot == "") {
		return fmt.Errorf("serve: exactly one of -log or -snapshot is required")
	}
	if *workers < 0 {
		return fmt.Errorf("serve: -workers %d < 0", *workers)
	}
	if *ckptDir != "" && *logPath == "" {
		return fmt.Errorf("serve: -checkpoint-dir requires -log (snapshots already boot from durable state)")
	}
	if *ckptInterval <= 0 {
		return fmt.Errorf("serve: -checkpoint-interval %v must be positive (only the SIGTERM flush cannot be disabled)", *ckptInterval)
	}
	if *ckptKeep < 1 {
		return fmt.Errorf("serve: -checkpoint-keep %d < 1", *ckptKeep)
	}
	opts := server.Options{CacheResults: *cacheResults, CacheBytes: *cacheBytes}
	derive := []weboftrust.Option{weboftrust.WithWorkers(*workers)}
	if *webTau >= 0 {
		derive = append(derive, weboftrust.WithWebThreshold(*webTau))
	}
	if *webColdK != 0 {
		derive = append(derive, weboftrust.WithWebColdStartGenerosity(*webColdK))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var srv *server.Server
	tailErr := make(chan error, 1)
	var ckptDone chan error
	if *logPath != "" {
		s, tailer, info, err := server.OpenCheckpointed(*logPath, *ckptDir, *poll, opts, derive...)
		if err != nil {
			return err
		}
		srv = s
		go func() { tailErr <- tailer.Run(ctx) }()
		if info.Warm {
			fmt.Fprintf(os.Stderr, "trustd: warm boot from %s (offset %d), tailed %d events to offset %d, tailing every %v\n",
				info.CheckpointPath, info.CheckpointOffset, info.TailedEvents, info.Offset, *poll)
		} else {
			fmt.Fprintf(os.Stderr, "trustd: replayed %s to offset %d, tailing every %v\n", *logPath, info.Offset, *poll)
			if info.FallbackReason != "" {
				fmt.Fprintf(os.Stderr, "trustd: cold boot: %s\n", info.FallbackReason)
			}
		}
		if *ckptDir != "" {
			ck := server.NewCheckpointer(srv, *ckptDir, *ckptInterval, *ckptKeep)
			ckptDone = make(chan error, 1)
			go func() { ckptDone <- ck.Run(ctx) }()
			fmt.Fprintf(os.Stderr, "trustd: checkpointing to %s every %v (keep %d)\n", *ckptDir, *ckptInterval, *ckptKeep)
		}
	} else {
		f, err := os.Open(*snapshot)
		if err != nil {
			return err
		}
		d, err := store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return err
		}
		model, err := weboftrust.Derive(d, derive...)
		if err != nil {
			return err
		}
		srv = server.New(model, 0, opts)
		fmt.Fprintf(os.Stderr, "trustd: serving snapshot %s (%v)\n", *snapshot, d)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "trustd: listening on %s\n", *addr)

	// awaitCheckpointer waits for the shutdown flush so process death
	// never costs the events ingested since the last periodic write.
	awaitCheckpointer := func() error {
		if ckptDone == nil {
			return nil
		}
		if err := <-ckptDone; err != nil && !errors.Is(err, context.Canceled) {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		return nil
	}

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		if ckErr := awaitCheckpointer(); err == nil {
			err = ckErr
		}
		return err
	case err := <-serveErr:
		stop()
		if ckErr := awaitCheckpointer(); ckErr != nil {
			fmt.Fprintln(os.Stderr, "trustd:", ckErr)
		}
		return err
	case err := <-tailErr:
		httpSrv.Close()
		stop()
		if ckErr := awaitCheckpointer(); ckErr != nil {
			fmt.Fprintln(os.Stderr, "trustd:", ckErr)
		}
		if errors.Is(err, context.Canceled) {
			return nil
		}
		return fmt.Errorf("tailer stopped: %w", err)
	}
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a running trustd")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := fs.Int("concurrency", 8, "number of concurrent clients")
	k := fs.Int("k", 10, "top-k size to request")
	users := fs.Int("users", 0, "user-id space to sample (0 = ask /v1/stats)")
	seed := fs.Uint64("seed", 1, "sampling seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := server.RunLoadgen(context.Background(), server.LoadgenConfig{
		BaseURL:     *addr,
		Duration:    *duration,
		Concurrency: *concurrency,
		K:           *k,
		Users:       *users,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	return nil
}
