// Command experiments regenerates the paper's evaluation: Tables 2-4,
// Fig. 3, the future-work propagation comparison and the A-1..A-4
// ablations, on the synthetic Epinions-like community (see DESIGN.md §2
// for the substitution rationale).
//
// Usage:
//
//	experiments [-preset paper] [-seed N] [-run all|table2,table4,...]
//
// Runs are deterministic for a given preset and seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"weboftrust/internal/core"
	"weboftrust/internal/experiments"
	"weboftrust/internal/synth"
)

var runners = []string{"table2", "table3", "fig3", "table4", "propagation", "recommend",
	"structure", "ablation-discount", "ablation-iteration", "ablation-affinity",
	"ablation-binarize", "robustness"}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	preset := fs.String("preset", "paper", "dataset preset: small, medium or paper")
	seed := fs.Uint64("seed", 1, "generator seed")
	runList := fs.String("run", "all", "comma-separated experiments: "+strings.Join(runners, ", ")+", or all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg synth.Config
	switch *preset {
	case "small":
		cfg = synth.Small()
	case "medium":
		cfg = synth.Medium()
	case "paper":
		cfg = synth.PaperScale()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}
	cfg.Seed = *seed

	selected := map[string]bool{}
	if *runList == "all" {
		for _, r := range runners {
			selected[r] = true
		}
	} else {
		for _, r := range strings.Split(*runList, ",") {
			r = strings.TrimSpace(r)
			known := false
			for _, k := range runners {
				if r == k {
					known = true
					break
				}
			}
			if !known {
				return fmt.Errorf("unknown experiment %q", r)
			}
			selected[r] = true
		}
	}

	start := time.Now()
	suite := experiments.Suite{Synth: cfg, Pipeline: core.DefaultConfig()}
	env, err := suite.Setup()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset: %v\n", env.Dataset)
	fmt.Fprintf(w, "%s\n", env.Dataset.Stats())
	fmt.Fprintf(w, "setup in %v\n\n", time.Since(start).Round(time.Millisecond))

	type step struct {
		name string
		run  func() (experiments.Result, error)
	}
	steps := []step{
		{"table2", func() (experiments.Result, error) { return experiments.RunTable2(env) }},
		{"table3", func() (experiments.Result, error) { return experiments.RunTable3(env) }},
		{"fig3", func() (experiments.Result, error) { return experiments.RunFig3(env) }},
		{"table4", func() (experiments.Result, error) { return experiments.RunTable4(env) }},
		{"propagation", func() (experiments.Result, error) {
			return experiments.RunPropagation(env, experiments.DefaultPropagationParams())
		}},
		{"recommend", func() (experiments.Result, error) {
			return experiments.RunRecommendation(env, experiments.DefaultRecommendationParams())
		}},
		{"structure", func() (experiments.Result, error) {
			return experiments.RunStructure(env, 300, 31)
		}},
		{"ablation-discount", func() (experiments.Result, error) { return experiments.RunAblationDiscount(env) }},
		{"ablation-iteration", func() (experiments.Result, error) { return experiments.RunAblationIteration(env) }},
		{"ablation-affinity", func() (experiments.Result, error) { return experiments.RunAblationAffinity(env) }},
		{"ablation-binarize", func() (experiments.Result, error) {
			return experiments.RunAblationBinarize(env, []float64{0.2, 0.3, 0.4, 0.5})
		}},
		{"robustness", func() (experiments.Result, error) {
			// Robustness re-generates the dataset per seed; run it at one
			// size below the selected preset to keep the sweep quick.
			sweep := suite
			if sweep.Synth.NumUsers > 2000 {
				sweep.Synth = synth.Medium()
			}
			return experiments.RunRobustness(sweep, []uint64{2, 3, 5, 7, 11})
		}},
	}
	for _, s := range steps {
		if !selected[s.name] {
			continue
		}
		t0 := time.Now()
		res, err := s.run()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		if err := res.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s in %v]\n\n", s.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "total %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
