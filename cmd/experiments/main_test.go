package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-preset", "small", "-seed", "2", "-run", "table2,table4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TABLE 2") {
		t.Error("table2 output missing")
	}
	if !strings.Contains(out, "TABLE 4") {
		t.Error("table4 output missing")
	}
	if strings.Contains(out, "TABLE 3") {
		t.Error("unselected table3 ran")
	}
	if !strings.Contains(out, "dataset:") {
		t.Error("dataset header missing")
	}
}

func TestRunAllOnSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full small-scale suite")
	}
	var buf bytes.Buffer
	if err := run([]string{"-preset", "small", "-run", "all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TABLE 2", "TABLE 3", "FIG. 3", "TABLE 4",
		"E-X1", "E-X2", "A-1", "A-2", "A-3", "A-4", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunArgumentErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"-preset", "galactic"},
		{"-run", "table99"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-preset", "small", "-seed", "9", "-run", "table2"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-preset", "small", "-seed", "9", "-run", "table2"}, &b); err != nil {
		t.Fatal(err)
	}
	// Strip timing lines before comparing.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, " in ") || strings.HasPrefix(line, "total") ||
				strings.HasPrefix(line, "setup") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(a.String()) != strip(b.String()) {
		t.Error("same seed produced different output")
	}
}
