package weboftrust

import (
	"math"
	"testing"

	"weboftrust/internal/synth"
)

// TestTruncatedWalkErrorBound pins the accuracy contract of truncated
// walks: with a depth-3 horizon and a 1e-3 mass floor on the Small
// community, every algorithm's per-source relative L1 error against the
// exact traversal stays inside a measured envelope, while the `?exact=1`
// path on the truncated model remains bitwise identical to an untruncated
// model — truncation flags never leak into the exact bypass.
func TestTruncatedWalkErrorBound(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Derive(d, WithPropagateMaxDepth(3), WithPropagateMassEps(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumUsers()
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		mean, max := sampleRelL1(t, m, algo, n)
		t.Logf("%v: truncated relL1 mean=%.4f max=%.4f", algo, mean, max)
		if max > 0.30 {
			t.Errorf("%v: truncated max relative L1 = %v, bound 0.30", algo, max)
		}
		if mean > 0.08 {
			t.Errorf("%v: truncated mean relative L1 = %v, bound 0.08", algo, mean)
		}
	}
	// Exact bypass: bitwise-identical to the untruncated model.
	got := make([]float64, n)
	want := make([]float64, n)
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		for u := 0; u < n; u += 13 {
			if err := m.PropagateExactInto(algo, UserID(u), got); err != nil {
				t.Fatal(err)
			}
			if err := plain.PropagateExactInto(algo, UserID(u), want); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v exact(%d)[%d] = %v under truncation, %v without — bypass not bitwise", algo, u, i, got[i], want[i])
				}
			}
		}
	}
}

// TestZeroTruncationIsBitwiseExact pins that explicitly configuring zero
// truncation bounds takes the identical code path as no configuration:
// the propagation vectors match bit for bit.
func TestZeroTruncationIsBitwiseExact(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Derive(d, WithPropagateMaxDepth(0), WithPropagateMassEps(0))
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumUsers()
	got := make([]float64, n)
	want := make([]float64, n)
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		for u := 0; u < n; u += 13 {
			if err := zero.PropagateInto(algo, UserID(u), got); err != nil {
				t.Fatal(err)
			}
			if err := plain.PropagateInto(algo, UserID(u), want); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v(%d)[%d] = %v with zero truncation, %v without", algo, u, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTruncationOptionValidation(t *testing.T) {
	cfg := synth.Small()
	cfg.NumUsers = 12
	cfg.TotalObjects = 8
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Derive(d, WithPropagateMaxDepth(-1)); err == nil {
		t.Error("negative max depth accepted")
	}
	if _, err := Derive(d, WithPropagateMassEps(math.NaN())); err == nil {
		t.Error("NaN mass eps accepted")
	}
	if _, err := Derive(d, WithPropagateMassEps(-0.5)); err == nil {
		t.Error("negative mass eps accepted")
	}
}
