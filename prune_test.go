package weboftrust

import (
	"testing"

	"weboftrust/internal/synth"
)

// sampleRelL1 propagates from every 7th user with both the pruned
// traversal (PropagateInto) and the exact one (PropagateExactInto) and
// returns the mean and max relative L1 distance between the two score
// vectors, normalised by the exact vector's mass.
func sampleRelL1(t *testing.T, m *TrustModel, algo PropagationAlgo, n int) (mean, max float64) {
	t.Helper()
	exact := make([]float64, n)
	pruned := make([]float64, n)
	samples := 0
	for u := 0; u < n; u += 7 {
		if err := m.PropagateExactInto(algo, UserID(u), exact); err != nil {
			t.Fatal(err)
		}
		if err := m.PropagateInto(algo, UserID(u), pruned); err != nil {
			t.Fatal(err)
		}
		var l1, norm float64
		for i := range exact {
			d := exact[i] - pruned[i]
			if d < 0 {
				d = -d
			}
			l1 += d
			norm += exact[i]
		}
		if norm > 0 {
			l1 /= norm
		}
		if l1 > max {
			max = l1
		}
		mean += l1
		samples++
	}
	return mean / float64(samples), max
}

// TestPrunedPropagationErrorBound pins the accuracy contract of
// percolation pruning: at tau=0.10 on the Small community the pruned
// traversal's per-source relative L1 error stays within a measured
// envelope (observed max ≈ 0.15 across the three algorithms; pinned at
// 2x), while the exact path on the same model remains bitwise identical
// to an unpruned model — the `?exact=1` escape hatch really is exact.
func TestPrunedPropagationErrorBound(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Derive(d, WithPropagatePruneTau(0.10))
	if err != nil {
		t.Fatal(err)
	}
	full := m.WebOfTrust().Graph()
	pg := m.WebOfTrust().PrunedGraph()
	if pg == nil {
		t.Fatal("tau=0.10 derive did not build a pruned graph")
	}
	if pg.NumEdges() >= full.NumEdges() {
		t.Fatalf("pruning dropped no edges: %d pruned vs %d full", pg.NumEdges(), full.NumEdges())
	}
	n := d.NumUsers()
	buf := make([]float64, n)
	want := make([]float64, n)
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		mean, max := sampleRelL1(t, m, algo, n)
		if max > 0.30 {
			t.Errorf("%v: pruned max relative L1 = %v, bound 0.30", algo, max)
		}
		if mean > 0.05 {
			t.Errorf("%v: pruned mean relative L1 = %v, bound 0.05", algo, mean)
		}
		// Exactness claims are bitwise, sampled across sources: the pruned
		// model's exact path == the plain model's (only) path.
		for u := 0; u < n; u += 13 {
			if err := m.PropagateExactInto(algo, UserID(u), buf); err != nil {
				t.Fatal(err)
			}
			if err := plain.PropagateInto(algo, UserID(u), want); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("%v user %d: exact-on-pruned-model score[%d] = %v, plain model %v", algo, u, i, buf[i], want[i])
				}
			}
		}
	}
}

// TestPruneTauZeroIsExact pins the fallback contract: tau=0 builds no
// pruned graph at all, so PropagateInto on such a model is bitwise the
// plain traversal.
func TestPruneTauZeroIsExact(t *testing.T) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Derive(d, WithPropagatePruneTau(0))
	if err != nil {
		t.Fatal(err)
	}
	if zero.WebOfTrust().PrunedGraph() != nil {
		t.Fatal("tau=0 must not build a pruned graph")
	}
	n := d.NumUsers()
	got := make([]float64, n)
	want := make([]float64, n)
	for _, algo := range []PropagationAlgo{PropagateAppleseed, PropagateMoleTrust, PropagateTidalTrust} {
		for u := 0; u < n; u += 13 {
			if err := zero.PropagateInto(algo, UserID(u), got); err != nil {
				t.Fatal(err)
			}
			if err := plain.PropagateInto(algo, UserID(u), want); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v user %d: tau=0 score[%d] = %v, plain %v", algo, u, i, got[i], want[i])
				}
			}
		}
	}
}
