package weboftrust_test

import (
	"fmt"
	"log"

	"weboftrust"
	"weboftrust/internal/ratings"
)

// ExampleDerive builds a minimal community and derives trust from rating
// data alone.
func ExampleDerive() {
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	expert := b.AddUser("expert")
	fan := b.AddUser("fan")

	for i := 0; i < 3; i++ {
		obj, err := b.AddObject(movies, fmt.Sprintf("film-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		review, err := b.AddReview(expert, obj)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.AddRating(fan, review, 1.0); err != nil {
			log.Fatal(err)
		}
	}

	model, err := weboftrust.Derive(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T̂(fan→expert) = %.2f\n", model.Score(fan, expert))
	fmt.Printf("T̂(expert→fan) = %.2f\n", model.Score(expert, fan))
	// Output:
	// T̂(fan→expert) = 0.75
	// T̂(expert→fan) = 0.00
}

// ExampleTrustModel_TopTrusted ranks recommendation targets for a user.
func ExampleTrustModel_TopTrusted() {
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	good := b.AddUser("good-writer")
	ok := b.AddUser("ok-writer")
	fan := b.AddUser("fan")

	write := func(w weboftrust.UserID, rating float64) {
		obj, err := b.AddObject(movies, "")
		if err != nil {
			log.Fatal(err)
		}
		review, err := b.AddReview(w, obj)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.AddRating(fan, review, rating); err != nil {
			log.Fatal(err)
		}
	}
	write(good, 1.0)
	write(good, 1.0)
	write(ok, 0.6)

	model, err := weboftrust.Derive(b.Build())
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range model.TopTrusted(fan, 2) {
		fmt.Printf("%d. user %d (%.3f)\n", i+1, r.User, r.Score)
	}
	// Output:
	// 1. user 0 (0.667)
	// 2. user 1 (0.300)
}
