package weboftrust_test

import (
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

func buildFixture(t *testing.T) *weboftrust.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	books := b.AddCategory("books")
	expert := b.AddUser("expert")     // writes good movie reviews
	bookworm := b.AddUser("bookworm") // writes book reviews
	fan := b.AddUser("fan")           // rates movies a lot

	for i := 0; i < 3; i++ {
		oid, err := b.AddObject(movies, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(expert, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(fan, rid, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	oid, err := b.AddObject(books, "")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(bookworm, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(fan, rid, 0.6); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestDeriveAndQuery(t *testing.T) {
	d := buildFixture(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// fan rates mostly movies; the movie expert must outrank the
	// bookworm in fan's derived trust.
	sExpert := model.Score(2, 0)
	sBook := model.Score(2, 1)
	if sExpert <= sBook {
		t.Errorf("Score(fan, expert) = %v should exceed Score(fan, bookworm) = %v", sExpert, sBook)
	}
	top := model.TopTrusted(2, 5)
	if len(top) == 0 || top[0].User != 0 {
		t.Errorf("TopTrusted(fan) = %+v, want expert first", top)
	}
	if e := model.Expertise(0); e[0] <= 0 || e[1] != 0 {
		t.Errorf("expert expertise = %v, want positive movies only", e)
	}
	if a := model.Affinity(2); a[0] <= a[1] {
		t.Errorf("fan affinity = %v, want movies dominant", a)
	}
	if q, ok := model.ReviewQuality(0); !ok || q != 1.0 {
		t.Errorf("ReviewQuality(0) = %v, %v; want 1.0", q, ok)
	}
	if _, ok := model.ReviewQuality(999); ok {
		t.Error("ReviewQuality of absent review should be !ok")
	}
	if rep, ok := model.RaterReputation(2, 0); !ok || rep <= 0 {
		t.Errorf("RaterReputation(fan, movies) = %v, %v", rep, ok)
	}
	if _, ok := model.RaterReputation(2, 99); ok {
		t.Error("RaterReputation of absent category should be !ok")
	}
	if model.Dataset() != d {
		t.Error("Dataset accessor wrong")
	}
	if model.Artifacts() == nil {
		t.Error("Artifacts accessor nil")
	}
}

func TestModelUpdateMatchesColdDerive(t *testing.T) {
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	expert := b.AddUser("expert")
	fan := b.AddUser("fan")
	for i := 0; i < 3; i++ {
		oid, err := b.AddObject(movies, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(expert, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(fan, rid, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	oldD := b.Snapshot()
	// A non-default option, to check Update keeps the derivation config.
	model, err := weboftrust.Derive(oldD, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}

	// Grow: a brand-new category plus fresh activity in the old one.
	books := b.AddCategory("books")
	critic := b.AddUser("critic")
	oid, err := b.AddObject(books, "")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(critic, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(fan, rid, 0.8); err != nil {
		t.Fatal(err)
	}
	newD := b.Snapshot()

	updated, err := model.Update(newD)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(newD, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < newD.NumUsers(); i++ {
		for j := 0; j < newD.NumUsers(); j++ {
			u, c := updated.Score(weboftrust.UserID(i), weboftrust.UserID(j)),
				cold.Score(weboftrust.UserID(i), weboftrust.UserID(j))
			if u != c {
				t.Fatalf("Score(%d,%d): updated %v != cold %v", i, j, u, c)
			}
		}
	}
	// The old model must still answer from the old dataset.
	if model.Dataset() != oldD || updated.Dataset() != newD {
		t.Error("Update disturbed dataset identity")
	}
}

func TestDeriveOptions(t *testing.T) {
	d := buildFixture(t)
	if _, err := weboftrust.Derive(d, weboftrust.WithRiggsIterations(0)); err == nil {
		t.Error("iterations 0 should be rejected")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithUnratedQuality(2)); err == nil {
		t.Error("unrated quality 2 should be rejected")
	}
	m1, err := weboftrust.Derive(d, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// Without the discount, the expert's three perfect reviews score a
	// full 1.0 expertise; with it, 0.75.
	if !(m1.Expertise(0)[0] > m2.Expertise(0)[0]) {
		t.Errorf("discount-free expertise %v should exceed discounted %v",
			m1.Expertise(0)[0], m2.Expertise(0)[0])
	}
	ro, err := weboftrust.Derive(d, weboftrust.WithAffinityRatingsOnly())
	if err != nil {
		t.Fatal(err)
	}
	wo, err := weboftrust.Derive(d, weboftrust.WithAffinityWritesOnly())
	if err != nil {
		t.Fatal(err)
	}
	// The fan only rates: writes-only affinity gives them nothing.
	if ro.Affinity(2)[0] <= 0 {
		t.Error("ratings-only affinity should be positive for the fan")
	}
	if wo.Affinity(2)[0] != 0 {
		t.Error("writes-only affinity should be zero for the fan")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithRiggsIterations(5)); err != nil {
		t.Errorf("valid option rejected: %v", err)
	}
}

func TestDeriveOnSyntheticCommunity(t *testing.T) {
	cfg := synth.Small()
	d, gt, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: every derived score within [0,1].
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			s := model.Score(weboftrust.UserID(i), weboftrust.UserID(j))
			if s < 0 || s > 1 {
				t.Fatalf("Score(%d,%d) = %v out of range", i, j, s)
			}
		}
	}
	// Top Reviewers should be popular recommendation targets: at least
	// one of a random user's top-5 should be expertise-bearing.
	top := model.TopTrusted(0, 5)
	for _, r := range top {
		e := model.Expertise(r.User)
		positive := false
		for _, v := range e {
			if v > 0 {
				positive = true
			}
		}
		if !positive {
			t.Errorf("top-trusted %d has no expertise", r.User)
		}
	}
	_ = gt
}

// TestWebOfTrustFacade covers the graph-query surface: the web artifact
// exists, Neighbors mirrors it, and Propagate ranks over it for every
// algorithm.
func TestWebOfTrustFacade(t *testing.T) {
	cfg := synth.Small()
	cfg.Seed = 3
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	web := model.WebOfTrust()
	if web == nil {
		t.Fatal("no web artifact")
	}
	if web.NumUsers() != d.NumUsers() {
		t.Fatalf("web has %d users, dataset %d", web.NumUsers(), d.NumUsers())
	}
	if web.NumEdges() == 0 {
		t.Fatal("web has no edges on a community with explicit trust")
	}
	withEdges := -1
	for u := 0; u < d.NumUsers(); u++ {
		nb := model.Neighbors(weboftrust.UserID(u))
		to, w := web.Neighbors(weboftrust.UserID(u))
		if len(nb) != len(to) {
			t.Fatalf("user %d: Neighbors %d, web row %d", u, len(nb), len(to))
		}
		for i := range nb {
			if int(nb[i].User) != int(to[i]) || nb[i].Score != w[i] {
				t.Fatalf("user %d edge %d mismatch", u, i)
			}
		}
		if len(nb) > 0 && withEdges < 0 {
			withEdges = u
		}
	}
	if withEdges < 0 {
		t.Fatal("no user has edges")
	}
	for _, algo := range []weboftrust.PropagationAlgo{
		weboftrust.PropagateAppleseed, weboftrust.PropagateMoleTrust, weboftrust.PropagateTidalTrust,
	} {
		ranked, err := model.Propagate(algo, weboftrust.UserID(withEdges), 10)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score > ranked[i-1].Score {
				t.Fatalf("%s: ranking not descending at %d", algo, i)
			}
		}
		for _, r := range ranked {
			if int(r.User) == withEdges || r.Score <= 0 {
				t.Fatalf("%s: bad entry %+v", algo, r)
			}
		}
		// PropagateInto overwrites a dirty buffer completely.
		dst := make([]float64, d.NumUsers())
		for i := range dst {
			dst[i] = -99
		}
		if err := model.PropagateInto(algo, weboftrust.UserID(withEdges), dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if v == -99 {
				t.Fatalf("%s: dst[%d] not overwritten", algo, i)
			}
		}
	}
	if _, err := model.Propagate(weboftrust.PropagationAlgo(9), 0, 5); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := model.Propagate(weboftrust.PropagateAppleseed, weboftrust.UserID(d.NumUsers()), 5); err == nil {
		t.Error("out-of-range source accepted")
	}
}

// TestParsePropagationAlgo pins the wire names.
func TestParsePropagationAlgo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want weboftrust.PropagationAlgo
	}{
		{"appleseed", weboftrust.PropagateAppleseed},
		{"MoleTrust", weboftrust.PropagateMoleTrust},
		{"tidaltrust", weboftrust.PropagateTidalTrust},
	} {
		got, err := weboftrust.ParsePropagationAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePropagationAlgo(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != "" && tc.want.String() == "" {
			t.Errorf("missing String for %v", tc.want)
		}
	}
	if _, err := weboftrust.ParsePropagationAlgo("pagerank"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestWebPolicyOptions: the threshold option switches the artifact's
// policy, the cold-start option adds edges for uncalibrated users, and
// both validate their ranges.
func TestWebPolicyOptions(t *testing.T) {
	cfg := synth.Small()
	cfg.Seed = 5
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	thresh, err := weboftrust.Derive(d, weboftrust.WithWebThreshold(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if got := thresh.WebOfTrust().Policy().String(); got != "threshold(tau=0.4)" {
		t.Errorf("policy = %q", got)
	}
	cold, err := weboftrust.Derive(d, weboftrust.WithWebColdStartGenerosity(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if cold.WebOfTrust().NumEdges() < base.WebOfTrust().NumEdges() {
		t.Errorf("cold-start fallback lost edges: %d < %d",
			cold.WebOfTrust().NumEdges(), base.WebOfTrust().NumEdges())
	}
	// The policy does not enter the fingerprint: checkpoints stay
	// portable across it.
	if base.Fingerprint() != thresh.Fingerprint() || base.Fingerprint() != cold.Fingerprint() {
		t.Error("web policy leaked into the config fingerprint")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithWebThreshold(1.5)); err == nil {
		t.Error("tau out of range accepted")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithWebColdStartGenerosity(-0.1)); err == nil {
		t.Error("cold generosity out of range accepted")
	}
}

// TestUpdateMaintainsWeb: the facade Update chain carries the web along
// and matches a cold derive of the grown dataset.
func TestUpdateMaintainsWeb(t *testing.T) {
	d := buildFixture(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	b := ratings.NewBuilderFrom(d)
	critic := b.AddUser("critic")
	oid, err := b.AddObject(0, "")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(critic, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(0, rid, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(0, critic); err != nil {
		t.Fatal(err)
	}
	grown := b.Snapshot()
	upd, err := model.Update(grown)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(grown)
	if err != nil {
		t.Fatal(err)
	}
	uw, cw := upd.WebOfTrust(), cold.WebOfTrust()
	if uw.NumEdges() != cw.NumEdges() {
		t.Fatalf("updated web %d edges, cold %d", uw.NumEdges(), cw.NumEdges())
	}
	for u := 0; u < grown.NumUsers(); u++ {
		ut, uwts := uw.Neighbors(weboftrust.UserID(u))
		ct, cwts := cw.Neighbors(weboftrust.UserID(u))
		if len(ut) != len(ct) {
			t.Fatalf("user %d rows differ", u)
		}
		for i := range ut {
			if ut[i] != ct[i] || uwts[i] != cwts[i] {
				t.Fatalf("user %d edge %d differs", u, i)
			}
		}
	}
}
