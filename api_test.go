package weboftrust_test

import (
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

func buildFixture(t *testing.T) *weboftrust.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	books := b.AddCategory("books")
	expert := b.AddUser("expert")     // writes good movie reviews
	bookworm := b.AddUser("bookworm") // writes book reviews
	fan := b.AddUser("fan")           // rates movies a lot

	for i := 0; i < 3; i++ {
		oid, err := b.AddObject(movies, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(expert, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(fan, rid, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	oid, err := b.AddObject(books, "")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(bookworm, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(fan, rid, 0.6); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestDeriveAndQuery(t *testing.T) {
	d := buildFixture(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// fan rates mostly movies; the movie expert must outrank the
	// bookworm in fan's derived trust.
	sExpert := model.Score(2, 0)
	sBook := model.Score(2, 1)
	if sExpert <= sBook {
		t.Errorf("Score(fan, expert) = %v should exceed Score(fan, bookworm) = %v", sExpert, sBook)
	}
	top := model.TopTrusted(2, 5)
	if len(top) == 0 || top[0].User != 0 {
		t.Errorf("TopTrusted(fan) = %+v, want expert first", top)
	}
	if e := model.Expertise(0); e[0] <= 0 || e[1] != 0 {
		t.Errorf("expert expertise = %v, want positive movies only", e)
	}
	if a := model.Affinity(2); a[0] <= a[1] {
		t.Errorf("fan affinity = %v, want movies dominant", a)
	}
	if q, ok := model.ReviewQuality(0); !ok || q != 1.0 {
		t.Errorf("ReviewQuality(0) = %v, %v; want 1.0", q, ok)
	}
	if _, ok := model.ReviewQuality(999); ok {
		t.Error("ReviewQuality of absent review should be !ok")
	}
	if rep, ok := model.RaterReputation(2, 0); !ok || rep <= 0 {
		t.Errorf("RaterReputation(fan, movies) = %v, %v", rep, ok)
	}
	if _, ok := model.RaterReputation(2, 99); ok {
		t.Error("RaterReputation of absent category should be !ok")
	}
	if model.Dataset() != d {
		t.Error("Dataset accessor wrong")
	}
	if model.Artifacts() == nil {
		t.Error("Artifacts accessor nil")
	}
}

func TestModelUpdateMatchesColdDerive(t *testing.T) {
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	expert := b.AddUser("expert")
	fan := b.AddUser("fan")
	for i := 0; i < 3; i++ {
		oid, err := b.AddObject(movies, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(expert, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(fan, rid, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	oldD := b.Snapshot()
	// A non-default option, to check Update keeps the derivation config.
	model, err := weboftrust.Derive(oldD, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}

	// Grow: a brand-new category plus fresh activity in the old one.
	books := b.AddCategory("books")
	critic := b.AddUser("critic")
	oid, err := b.AddObject(books, "")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(critic, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(fan, rid, 0.8); err != nil {
		t.Fatal(err)
	}
	newD := b.Snapshot()

	updated, err := model.Update(newD)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(newD, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < newD.NumUsers(); i++ {
		for j := 0; j < newD.NumUsers(); j++ {
			u, c := updated.Score(weboftrust.UserID(i), weboftrust.UserID(j)),
				cold.Score(weboftrust.UserID(i), weboftrust.UserID(j))
			if u != c {
				t.Fatalf("Score(%d,%d): updated %v != cold %v", i, j, u, c)
			}
		}
	}
	// The old model must still answer from the old dataset.
	if model.Dataset() != oldD || updated.Dataset() != newD {
		t.Error("Update disturbed dataset identity")
	}
}

func TestDeriveOptions(t *testing.T) {
	d := buildFixture(t)
	if _, err := weboftrust.Derive(d, weboftrust.WithRiggsIterations(0)); err == nil {
		t.Error("iterations 0 should be rejected")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithUnratedQuality(2)); err == nil {
		t.Error("unrated quality 2 should be rejected")
	}
	m1, err := weboftrust.Derive(d, weboftrust.WithoutExperienceDiscount())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// Without the discount, the expert's three perfect reviews score a
	// full 1.0 expertise; with it, 0.75.
	if !(m1.Expertise(0)[0] > m2.Expertise(0)[0]) {
		t.Errorf("discount-free expertise %v should exceed discounted %v",
			m1.Expertise(0)[0], m2.Expertise(0)[0])
	}
	ro, err := weboftrust.Derive(d, weboftrust.WithAffinityRatingsOnly())
	if err != nil {
		t.Fatal(err)
	}
	wo, err := weboftrust.Derive(d, weboftrust.WithAffinityWritesOnly())
	if err != nil {
		t.Fatal(err)
	}
	// The fan only rates: writes-only affinity gives them nothing.
	if ro.Affinity(2)[0] <= 0 {
		t.Error("ratings-only affinity should be positive for the fan")
	}
	if wo.Affinity(2)[0] != 0 {
		t.Error("writes-only affinity should be zero for the fan")
	}
	if _, err := weboftrust.Derive(d, weboftrust.WithRiggsIterations(5)); err != nil {
		t.Errorf("valid option rejected: %v", err)
	}
}

func TestDeriveOnSyntheticCommunity(t *testing.T) {
	cfg := synth.Small()
	d, gt, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: every derived score within [0,1].
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			s := model.Score(weboftrust.UserID(i), weboftrust.UserID(j))
			if s < 0 || s > 1 {
				t.Fatalf("Score(%d,%d) = %v out of range", i, j, s)
			}
		}
	}
	// Top Reviewers should be popular recommendation targets: at least
	// one of a random user's top-5 should be expertise-bearing.
	top := model.TopTrusted(0, 5)
	for _, r := range top {
		e := model.Expertise(r.User)
		positive := false
		for _, v := range e {
			if v > 0 {
				positive = true
			}
		}
		if !positive {
			t.Errorf("top-trusted %d has no expertise", r.User)
		}
	}
	_ = gt
}
