package weboftrust

import (
	"fmt"

	"weboftrust/internal/propagation"
	"weboftrust/internal/ratings"
)

// LandmarkSketch holds the full propagation vectors of L landmark hubs
// under one algorithm — the precomputed half of the `?approx=landmark`
// serving mode. Pavlovic's hub observation motivates it: a few
// globally-trusted nodes carry most propagation mass, so any source's
// view can be assembled from its direct-neighbour frontier plus its
// best paths into each landmark (ComposeLandmarks) at O(L·U) instead of
// a traversal. A sketch is immutable once built and safe for concurrent
// use; swaps produce a successor with RefreshLandmarkSketch, carrying
// every landmark vector the taint invariant proves unchanged.
type LandmarkSketch struct {
	// Algo is the propagation algorithm the vectors were computed under.
	Algo PropagationAlgo
	sk   propagation.Sketch
}

// Landmarks returns the landmark user ids in selection order. The slice
// is shared; do not modify it.
func (sk *LandmarkSketch) Landmarks() []int32 { return sk.sk.IDs }

// Vector returns landmark i's full propagation vector (shared; do not
// modify).
func (sk *LandmarkSketch) Vector(i int) []float64 { return sk.sk.Vecs[i] }

// SelectLandmarkIDs picks the l highest-scoring nodes of the rank
// vector as landmarks — score descending, id ascending on ties, zero
// scores never selected — the deterministic selection rule the serving
// layer applies to its warm EigenTrust vector at every swap.
func SelectLandmarkIDs(rank []float64, l int) []int32 {
	return propagation.SelectLandmarks(rank, l)
}

// BuildLandmarkSketch computes the sketch from scratch: one full
// propagation run per landmark, over the same graph and truncation the
// model's PropagateInto serves, so a landmark's sketched vector is
// bitwise-identical to querying it directly.
func (m *TrustModel) BuildLandmarkSketch(algo PropagationAlgo, ids []int32) (*LandmarkSketch, error) {
	return m.RefreshLandmarkSketch(nil, algo, ids, nil)
}

// RefreshLandmarkSketch builds the sketch for ids, carrying vectors
// from prev wherever the taint invariant proves them unchanged: a
// landmark absent from tainted has no dirty user reachable from it, so
// its propagation vector is byte-identical to a fresh compute (new
// users — always dirty — stay zero in it, so a shorter carried vector
// is zero-padded). Landmarks that are tainted, new to the selection, or
// lack a usable prev vector are recomputed. prev == nil or tainted ==
// nil (no predecessor / a full swap) recomputes everything.
func (m *TrustModel) RefreshLandmarkSketch(prev *LandmarkSketch, algo PropagationAlgo, ids []int32, tainted []bool) (*LandmarkSketch, error) {
	numU := m.dataset.NumUsers()
	out := &LandmarkSketch{Algo: algo, sk: propagation.Sketch{
		IDs:  ids,
		Vecs: make([][]float64, len(ids)),
	}}
	for i, id := range ids {
		if int(id) < 0 || int(id) >= numU {
			return nil, fmt.Errorf("weboftrust: landmark %d out of range (%d users)", id, numU)
		}
		if prev != nil && prev.Algo == algo && tainted != nil &&
			(int(id) >= len(tainted) || !tainted[id]) {
			if j := prev.sk.Landmark(id); j >= 0 && len(prev.sk.Vecs[j]) <= numU {
				vec := prev.sk.Vecs[j]
				if len(vec) < numU {
					padded := make([]float64, numU)
					copy(padded, vec)
					vec = padded
				}
				out.sk.Vecs[i] = vec
				continue
			}
		}
		vec := make([]float64, numU)
		if err := m.PropagateInto(algo, ratings.UserID(id), vec); err != nil {
			return nil, err
		}
		out.sk.Vecs[i] = vec
	}
	return out, nil
}

// ComposeLandmarks fills dst (length U, overwritten) with the
// landmark-approximate propagation vector for source: the source's
// direct-neighbour frontier, upper-bounded per node by each landmark's
// vector scaled by the source's best ≤2-hop path strength into it.
// dst[source] is zero, like every propagation result. The composition
// runs over the same graph PropagateInto traverses.
func (m *TrustModel) ComposeLandmarks(sk *LandmarkSketch, source UserID, dst []float64) error {
	numU := m.dataset.NumUsers()
	if len(dst) != numU {
		return fmt.Errorf("weboftrust: ComposeLandmarks dst length %d, want %d", len(dst), numU)
	}
	if int(source) < 0 || int(source) >= numU {
		return fmt.Errorf("weboftrust: propagate source %d out of range (%d users)", source, numU)
	}
	var frontier propagation.Frontier
	switch sk.Algo {
	case PropagateAppleseed:
		frontier = propagation.AppleseedFrontier(propagation.DefaultAppleseed())
	case PropagateMoleTrust, PropagateTidalTrust:
		frontier = propagation.UnitFrontier
	default:
		return fmt.Errorf("weboftrust: unknown propagation algorithm %d", int(sk.Algo))
	}
	return sk.sk.Compose(m.WebOfTrust().PropagationGraph(), int(source), frontier, dst)
}
