// E-commerce: the paper's deployment target — a marketplace with review
// ratings but NO web of trust at all. The derived matrix provides
// reviewer recommendations ("reviewers to follow") and a trust-weighted
// helpfulness score for product reviews, for every active customer.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"os"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

func main() {
	// A storefront: product departments instead of movie genres, and no
	// explicit trust feature at all (ZeroTrustFrac ~ 1 would do it too;
	// here we simply drop the trust edges after generation by rebuilding).
	cfg := synth.Small()
	cfg.Seed = 7
	cfg.Categories = []synth.CategorySpec{
		{Name: "laptops", Weight: 5},
		{Name: "headphones", Weight: 4},
		{Name: "kitchen", Weight: 3},
		{Name: "outdoors", Weight: 2},
	}
	cfg.NumUsers = 500
	cfg.TotalObjects = 200
	generated, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dataset := stripTrust(generated)
	fmt.Printf("marketplace with no web of trust: %v\n", dataset)

	model, err := weboftrust.Derive(dataset)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the most active customer as our running example.
	customer := ratings.UserID(0)
	for u := 0; u < dataset.NumUsers(); u++ {
		if len(dataset.RatingsBy(ratings.UserID(u))) > len(dataset.RatingsBy(customer)) {
			customer = ratings.UserID(u)
		}
	}
	fmt.Printf("\ncustomer %s (%d ratings given)\n",
		dataset.UserName(customer), len(dataset.RatingsBy(customer)))

	// 1. "Reviewers to follow" — the derived top-k.
	t := tables.New("Rank", "Reviewer", "T̂", "Reviews written").
		Title("reviewers to follow").AlignRight(0, 2, 3)
	for i, r := range model.TopTrusted(customer, 5) {
		t.AddRow(i+1, dataset.UserName(r.User), r.Score, len(dataset.ReviewsByWriter(r.User)))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Trust-weighted review ranking for a product the customer is
	// about to buy: order the product's reviews by the customer's derived
	// trust in each writer, breaking ties with review quality (eq. 1).
	obj := busiestObject(dataset)
	fmt.Printf("\nreviews for %q ranked for this customer:\n", dataset.Object(obj).Name)
	type scored struct {
		review  ratings.ReviewID
		writer  ratings.UserID
		trust   float64
		quality float64
	}
	var list []scored
	for _, rid := range reviewsOfObject(dataset, obj) {
		w := dataset.Review(rid).Writer
		q, _ := model.ReviewQuality(rid)
		list = append(list, scored{review: rid, writer: w, trust: model.Score(customer, w), quality: q})
	}
	// Simple selection sort by (trust, quality) — lists are tiny.
	for i := 0; i < len(list); i++ {
		best := i
		for j := i + 1; j < len(list); j++ {
			if list[j].trust > list[best].trust ||
				(list[j].trust == list[best].trust && list[j].quality > list[best].quality) {
				best = j
			}
		}
		list[i], list[best] = list[best], list[i]
	}
	for i, s := range list {
		fmt.Printf("  %d. review #%d by %s  (T̂=%.3f, quality=%.3f)\n",
			i+1, s.review, dataset.UserName(s.writer), s.trust, s.quality)
	}

	// 3. Population view: how dense is the derived web compared to the
	// (empty) explicit one?
	support := model.Artifacts().Trust.TotalSupport()
	pairs := dataset.NumUsers() * (dataset.NumUsers() - 1)
	fmt.Printf("\nderived trust covers %d of %d possible pairs (%.1f%%) — from ratings alone\n",
		support, pairs, 100*float64(support)/float64(pairs))
}

// stripTrust rebuilds the dataset without its explicit trust edges,
// simulating a marketplace that never had a trust feature.
func stripTrust(d *ratings.Dataset) *ratings.Dataset {
	b := ratings.NewBuilder()
	for c := 0; c < d.NumCategories(); c++ {
		b.AddCategory(d.CategoryName(ratings.CategoryID(c)))
	}
	for u := 0; u < d.NumUsers(); u++ {
		b.AddUser(d.UserName(ratings.UserID(u)))
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if _, err := b.AddObject(obj.Category, obj.Name); err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if _, err := b.AddReview(rev.Writer, rev.Object); err != nil {
			log.Fatal(err)
		}
	}
	for _, rt := range d.Ratings() {
		if err := b.AddRating(rt.Rater, rt.Review, rt.Value); err != nil {
			log.Fatal(err)
		}
	}
	return b.Build()
}

func busiestObject(d *ratings.Dataset) ratings.ObjectID {
	counts := make([]int, d.NumObjects())
	for r := 0; r < d.NumReviews(); r++ {
		counts[d.Review(ratings.ReviewID(r)).Object]++
	}
	best := 0
	for o, n := range counts {
		if n > counts[best] {
			best = o
		}
	}
	return ratings.ObjectID(best)
}

func reviewsOfObject(d *ratings.Dataset, obj ratings.ObjectID) []ratings.ReviewID {
	var out []ratings.ReviewID
	for r := 0; r < d.NumReviews(); r++ {
		if d.Review(ratings.ReviewID(r)).Object == obj {
			out = append(out, ratings.ReviewID(r))
		}
	}
	return out
}
