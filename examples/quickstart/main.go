// Quickstart: build a tiny review community by hand, derive a web of
// trust from nothing but the rating data, and query it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"weboftrust"
	"weboftrust/internal/ratings"
)

func main() {
	// A community with two topics and four members. Nobody has declared
	// any explicit trust — all we have is who rated whose reviews.
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	cameras := b.AddCategory("cameras")

	ann := b.AddUser("ann")   // prolific, well-rated movie reviewer
	raj := b.AddUser("raj")   // camera expert
	mia := b.AddUser("mia")   // movie fan: reads and rates movie reviews
	noel := b.AddUser("noel") // gadget fan

	// Ann writes three movie reviews; Raj two camera reviews.
	var annReviews, rajReviews []ratings.ReviewID
	for i := 0; i < 3; i++ {
		obj, err := b.AddObject(movies, fmt.Sprintf("film-%d", i))
		must(err)
		r, err := b.AddReview(ann, obj)
		must(err)
		annReviews = append(annReviews, r)
	}
	for i := 0; i < 2; i++ {
		obj, err := b.AddObject(cameras, fmt.Sprintf("camera-%d", i))
		must(err)
		r, err := b.AddReview(raj, obj)
		must(err)
		rajReviews = append(rajReviews, r)
	}

	// Mia rates Ann's movie reviews highly; Noel rates Raj's camera
	// reviews highly; both cross-rate the other topic once, lukewarmly.
	for _, r := range annReviews {
		must(b.AddRating(mia, r, 1.0))
	}
	must(b.AddRating(mia, rajReviews[0], 0.6))
	for _, r := range rajReviews {
		must(b.AddRating(noel, r, 1.0))
	}
	must(b.AddRating(noel, annReviews[0], 0.6))

	dataset := b.Build()
	fmt.Println(dataset)

	// Derive the web of trust (Steps 1-3 of the paper).
	model, err := weboftrust.Derive(dataset)
	if err != nil {
		log.Fatal(err)
	}

	// Whom should each fan trust? The model figures out that Mia's trust
	// belongs with the movie expert and Noel's with the camera expert —
	// with no explicit trust statements anywhere.
	for _, fan := range []weboftrust.UserID{mia, noel} {
		fmt.Printf("\ntop trusted for %s:\n", dataset.UserName(fan))
		for i, r := range model.TopTrusted(fan, 3) {
			fmt.Printf("  %d. %-5s T̂=%.3f\n", i+1, dataset.UserName(r.User), r.Score)
		}
	}

	// Pairwise degrees of trust (eq. 5) are available for any pair.
	fmt.Printf("\nT̂(mia→ann)=%.3f  T̂(mia→raj)=%.3f\n",
		model.Score(mia, ann), model.Score(mia, raj))
	fmt.Printf("T̂(noel→raj)=%.3f T̂(noel→ann)=%.3f\n",
		model.Score(noel, raj), model.Score(noel, ann))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
