// Movie reviews: the paper's motivating scenario on a realistic synthetic
// community. Generates an Epinions-like Video & DVD population with the
// paper's 12 genres, derives the web of trust, and shows that a user's
// trust concentrates on experts in the genres that matter to them.
//
//	go run ./examples/moviereviews
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

func main() {
	cfg := synth.Medium() // 2,000 users over the paper's 12 genres
	cfg.Seed = 42
	dataset, truth, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dataset)

	model, err := weboftrust.Derive(dataset)
	if err != nil {
		log.Fatal(err)
	}

	// Find a heavy horror fan: the rater with the most ratings whose top
	// interest is Horror/Suspense.
	horror := categoryByName(dataset, "Horror/Suspense")
	fan := ratings.NoUser
	bestCount := 0
	for u := 0; u < dataset.NumUsers(); u++ {
		if n := dataset.NumRatingsByIn(ratings.UserID(u), horror); n > bestCount {
			fan = ratings.UserID(u)
			bestCount = n
		}
	}
	fmt.Printf("\nheaviest Horror/Suspense rater: %s (%d horror ratings)\n",
		dataset.UserName(fan), bestCount)

	// Show the fan's affinity profile next to their top trusted users'
	// expertise: the trust should come from the horror context.
	t := tables.New("Rank", "User", "T̂", "Top expertise genre", "E there").
		Title("whom the horror fan should trust").AlignRight(0, 2, 4)
	for i, r := range model.TopTrusted(fan, 8) {
		genre, e := topExpertise(dataset, model, r.User)
		t.AddRow(i+1, dataset.UserName(r.User), r.Score, genre, e)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Sanity check against the simulator's hidden state: how many of the
	// fan's top-8 are genuinely skilled (latent skill above the median)?
	skills := make([]float64, 0, dataset.NumUsers())
	for _, l := range truth.Latents {
		skills = append(skills, l.Skill)
	}
	sort.Float64s(skills)
	median := skills[len(skills)/2]
	skilled := 0
	top := model.TopTrusted(fan, 8)
	for _, r := range top {
		if truth.Latents[r.User].Skill > median {
			skilled++
		}
	}
	fmt.Printf("\n%d of the fan's top %d trusted users have above-median latent skill\n",
		skilled, len(top))
}

func categoryByName(d *ratings.Dataset, name string) ratings.CategoryID {
	for c := 0; c < d.NumCategories(); c++ {
		if d.CategoryName(ratings.CategoryID(c)) == name {
			return ratings.CategoryID(c)
		}
	}
	log.Fatalf("category %q not found", name)
	return 0
}

func topExpertise(d *ratings.Dataset, m *weboftrust.TrustModel, u weboftrust.UserID) (string, float64) {
	e := m.Expertise(u)
	best := 0
	for c := range e {
		if e[c] > e[best] {
			best = c
		}
	}
	return d.CategoryName(ratings.CategoryID(best)), e[best]
}
