// Propagation: the paper's future work, demonstrated. Builds both webs of
// trust for the same community — the sparse explicit one and the dense
// derived one — and propagates each with TidalTrust, EigenTrust and
// Appleseed, showing the derived web answers trust queries the explicit
// web cannot.
//
//	go run ./examples/propagation
package main

import (
	"fmt"
	"log"
	"os"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/graph"
	"weboftrust/internal/propagation"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

func main() {
	cfg := synth.Small()
	cfg.Seed = 3
	dataset, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model, err := weboftrust.Derive(dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dataset)

	explicit := explicitWeb(dataset)
	derived := derivedWeb(dataset, model)
	fmt.Printf("explicit web: %d edges; derived web: %d edges\n",
		explicit.NumEdges(), derived.NumEdges())

	// Pick a cold-start user: someone who rates but declared no trust.
	cold := ratings.NoUser
	for u := 0; u < dataset.NumUsers(); u++ {
		id := ratings.UserID(u)
		if len(dataset.RatingsBy(id)) >= 5 && len(dataset.TrustedBy(id)) == 0 {
			cold = id
			break
		}
	}
	if cold == ratings.NoUser {
		log.Fatal("no cold-start user found")
	}
	fmt.Printf("\ncold-start user %s: %d ratings given, 0 explicit trust edges\n",
		dataset.UserName(cold), len(dataset.RatingsBy(cold)))

	// TidalTrust from the cold-start user over both webs.
	tt := propagation.TidalTrust{MaxDepth: 4}
	covE := tt.Coverage(explicit, []int{int(cold)})
	covD := tt.Coverage(derived, []int{int(cold)})
	fmt.Printf("TidalTrust coverage from this user: explicit %.3f vs derived %.3f\n", covE, covD)

	// A concrete query the explicit web cannot answer.
	target := findUnanswerable(explicit, derived, tt, int(cold))
	if target >= 0 {
		v, _ := tt.Infer(derived, int(cold), target)
		fmt.Printf("query %s -> %s: explicit web has NO path; derived web infers %.3f\n",
			dataset.UserName(cold), dataset.UserName(ratings.UserID(target)), v)
	}

	// Global view: EigenTrust over both webs, top-5 each.
	et := propagation.DefaultEigenTrust()
	rankE, err := et.Ranks(explicit)
	if err != nil {
		log.Fatal(err)
	}
	rankD, err := et.Ranks(derived)
	if err != nil {
		log.Fatal(err)
	}
	t := tables.New("Rank", "EigenTrust on explicit web", "EigenTrust on derived web").
		Title("global trust rankings").AlignRight(0)
	topE := propagation.TopRanked(rankE, 5)
	topD := propagation.TopRanked(rankD, 5)
	for i := 0; i < 5 && (i < len(topE) || i < len(topD)); i++ {
		var left, right string
		if i < len(topE) {
			left = fmt.Sprintf("%s (%.4f)", dataset.UserName(ratings.UserID(topE[i])), rankE[topE[i]])
		}
		if i < len(topD) {
			right = fmt.Sprintf("%s (%.4f)", dataset.UserName(ratings.UserID(topD[i])), rankD[topD[i]])
		}
		t.AddRow(i+1, left, right)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Personalised view: Appleseed from a well-connected user over both.
	var connected ratings.UserID
	for u := 0; u < dataset.NumUsers(); u++ {
		if len(dataset.TrustedBy(ratings.UserID(u))) > len(dataset.TrustedBy(connected)) {
			connected = ratings.UserID(u)
		}
	}
	as := propagation.DefaultAppleseed()
	rE, err := as.Rank(explicit, int(connected))
	if err != nil {
		log.Fatal(err)
	}
	rD, err := as.Rank(derived, int(connected))
	if err != nil {
		log.Fatal(err)
	}
	overlap := jaccard(propagation.TopRanked(rE, 10), propagation.TopRanked(rD, 10))
	fmt.Printf("\nAppleseed top-10 overlap for %s (explicit vs derived): %.2f\n",
		dataset.UserName(connected), overlap)
}

// explicitWeb builds the trust graph from declared edges, weight 1.
func explicitWeb(d *ratings.Dataset) *graph.Graph {
	var edges []graph.Edge
	for _, e := range d.TrustEdges() {
		edges = append(edges, graph.Edge{From: int(e.From), To: int(e.To), Weight: 1})
	}
	g, err := graph.New(d.NumUsers(), edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// derivedWeb binarises the derived matrix (cold-start users fall back to
// the population's mean generosity) and keeps continuous T̂ weights.
func derivedWeb(d *ratings.Dataset, m *weboftrust.TrustModel) *graph.Graph {
	k := core.Generosity(d)
	var sum float64
	n := 0
	for _, v := range k {
		if v > 0 {
			sum += v
			n++
		}
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}
	for i, v := range k {
		if v == 0 {
			k[i] = mean
		}
	}
	pred, err := core.BinarizeDerived(m.Artifacts().Trust, k)
	if err != nil {
		log.Fatal(err)
	}
	var edges []graph.Edge
	for i := 0; i < d.NumUsers(); i++ {
		cols, _ := pred.Row(i)
		for _, j := range cols {
			w := m.Score(ratings.UserID(i), ratings.UserID(j))
			if w > 0 {
				edges = append(edges, graph.Edge{From: i, To: int(j), Weight: w})
			}
		}
	}
	g, err := graph.New(d.NumUsers(), edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

// findUnanswerable locates a sink the explicit web cannot reach from the
// source but the derived web can.
func findUnanswerable(explicit, derived *graph.Graph, tt propagation.TidalTrust, source int) int {
	de := explicit.BFSDepths(source, tt.MaxDepth)
	dd := derived.BFSDepths(source, tt.MaxDepth)
	for v := range de {
		if v != source && de[v] < 0 && dd[v] > 0 {
			return v
		}
	}
	return -1
}

func jaccard(a, b []int) float64 {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	for _, x := range b {
		if set[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
