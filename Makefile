GO ?= go
BENCH_OUT ?= BENCH_pr3.json
BENCH_COUNT ?= 5

.PHONY: build test race bench bench-smoke bench-guard

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# bench runs the pipeline, incremental-update and serving benchmarks with
# -benchmem -count=$(BENCH_COUNT) and records the parsed results in
# $(BENCH_OUT) alongside the machine's shape.
bench:
	BENCH_COUNT=$(BENCH_COUNT) ./scripts/bench.sh $(BENCH_OUT)

# bench-smoke is the CI guard: every benchmark must still compile and
# complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PipelineRun$$|UpdateTouchedFraction|UpdateCategoryScaling|ServerTopK|IngestSwap|DerivedTrustRowSparse|TopKHeap|TopKQuickselect' -benchtime 1x .

# bench-guard fails if the serving hot path's allocs/op regress above the
# BENCH_pr2.json baseline.
bench-guard:
	./scripts/check_allocs.sh
