GO ?= go
BENCH_OUT ?= BENCH_pr10.json
BENCH_COUNT ?= 5
FUZZTIME ?= 10s

.PHONY: build test race bench bench-smoke bench-guard attack-smoke cluster-smoke chaos-smoke fuzz-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -race ./...

# bench runs the pipeline, incremental-update and serving benchmarks with
# -benchmem -count=$(BENCH_COUNT) and records the parsed results in
# $(BENCH_OUT) alongside the machine's shape.
bench:
	BENCH_COUNT=$(BENCH_COUNT) ./scripts/bench.sh $(BENCH_OUT)

# bench-smoke is the CI guard: every benchmark must still compile and
# complete one iteration.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PipelineRun$$|UpdateTouchedFraction|UpdateCategoryScaling|ServerTopK|ServerPropagate|GraphBuild|IngestSwap|DerivedTrustRowSparse|TopKHeap|TopKQuickselect|ColdStart|WarmRestart|RouterTopK|AnomalySwap|ServerAnomaly|PropagatePrecompute|LandmarkApprox' -benchtime 1x .

# bench-guard fails if the serving hot paths' allocs/op regress above
# their recorded baselines (cached /v1/topk hit vs BENCH_pr3.json, cached
# /v1/propagate hit vs BENCH_pr10.json).
bench-guard:
	./scripts/check_allocs.sh

# attack-smoke runs the adversarial seed scenario corpus: the Go harness
# under the race detector (pinned resistance assertions in
# internal/adversary), then the trustctl attack CLI over scenarios/ to
# render the resistance tables and emit attack-report.json — the
# artifact CI archives for trend tracking. A final run replays the
# collusion-ring scenario against the approximating serving
# configuration (percolation pruning + landmark-sketch propagation), so
# attack signals are pinned to survive the approximations. Any failing
# assertion path fails the target.
attack-smoke:
	$(GO) test -race -count=1 -run 'TestSeedCorpus' ./internal/adversary
	$(GO) run ./cmd/trustctl attack -dir scenarios -json attack-report.json
	$(GO) run ./cmd/trustctl attack -scenario scenarios/collusion-ring.json \
		-propagate-prune-tau 0.10 -landmarks 16 -json attack-report-approx.json

# cluster-smoke boots a real 3-shard cluster behind the consistent-hash
# router next to an unsharded reference, checks routed responses are
# byte-identical, runs a loadgen burst through the router, and tears the
# cluster down.
cluster-smoke:
	./scripts/cluster_smoke.sh

# chaos-smoke drives the in-process chaos harness under the race
# detector: a 2-shard × 2-replica cluster with per-replica fault
# injection (kill/restart, slow replica, flapping replica, total shard
# death) where every response must be byte-identical to the unsharded
# reference or explicitly labeled degraded. Includes the fault
# injector's and failure-layer unit tests.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos|TestBreaker|TestAdmission|TestTailer' ./internal/router ./internal/server
	$(GO) test -race -count=1 ./internal/faulty

# fuzz-smoke gives each binary-decoder fuzz target (plus the graph
# constructor's edge validation) a short adversarial run ($(FUZZTIME)
# apiece); a panic or over-allocation fails CI. go test accepts one -fuzz
# pattern per package invocation, hence one run per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzReadSnapshot$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz 'FuzzLogReader$$' -fuzztime $(FUZZTIME) ./internal/store
	$(GO) test -run '^$$' -fuzz 'FuzzReadCheckpoint$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz 'FuzzGraphNew$$' -fuzztime $(FUZZTIME) ./internal/graph
