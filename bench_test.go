// Benchmarks regenerating every table and figure of the paper's
// evaluation (Tables 2-4, Fig. 3, the E-X1 propagation extension and the
// A-1..A-4 ablations), plus the pipeline components they are built from.
// One benchmark per experiment, as indexed in DESIGN.md §4.
//
// The experiment benchmarks run on the Medium preset (2,000 users, the
// paper's 12 genres) so a full -bench=. sweep stays laptop-fast; the
// cmd/experiments binary runs the same code at paper scale.
package weboftrust_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/anomaly"
	"weboftrust/internal/checkpoint"
	"weboftrust/internal/core"
	"weboftrust/internal/experiments"
	"weboftrust/internal/graph"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/router"
	"weboftrust/internal/server"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error

	benchLargeOnce sync.Once
	benchLargeEnv  *experiments.Env
	benchLargeErr  error
)

// env lazily builds the shared Medium-scale environment (dataset +
// pipeline artifacts) outside any benchmark timer.
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := synth.Medium()
		cfg.Seed = 1
		benchEnv, benchErr = experiments.Suite{Synth: cfg, Pipeline: core.DefaultConfig()}.Setup()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// envLarge is env at the Large preset (6,000 users, 36 categories), for
// the serving benchmarks that track the read path's scaling behaviour.
func envLarge(b *testing.B) *experiments.Env {
	b.Helper()
	benchLargeOnce.Do(func() {
		cfg := synth.Large()
		cfg.Seed = 1
		benchLargeEnv, benchLargeErr = experiments.Suite{Synth: cfg, Pipeline: core.DefaultConfig()}.Setup()
	})
	if benchLargeErr != nil {
		b.Fatal(benchLargeErr)
	}
	return benchLargeEnv
}

// BenchmarkTable2RaterReputation regenerates Table 2: the per-category
// Riggs fixed point and the Advisor quartile analysis (E-T2).
func BenchmarkTable2RaterReputation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2WithModel(e, e.Suite.Pipeline.Riggs)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Q1Fraction() <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkTable3WriterReputation regenerates Table 3: writer reputation
// and the Top Reviewer quartile analysis (E-T3).
func BenchmarkTable3WriterReputation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(e)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.Q1Fraction() <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkFig3Density regenerates Fig. 3: the density comparison of T̂,
// R and T (E-F3).
func BenchmarkFig3Density(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(e)
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.DerivedNNZ == 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkTable4TrustValidation regenerates Table 4: generosity
// binarisation of T̂ and B and the three validation metrics (E-T4).
func BenchmarkTable4TrustValidation(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(e)
		if err != nil {
			b.Fatal(err)
		}
		if res.Derived.Recall <= res.Baseline.Recall {
			b.Fatal("paper shape lost")
		}
	}
}

// BenchmarkPropagationComparison regenerates the E-X1 future-work
// comparison: TidalTrust coverage, EigenTrust agreement and Appleseed
// overlap across the explicit and derived webs.
func BenchmarkPropagationComparison(b *testing.B) {
	e := env(b)
	params := experiments.DefaultPropagationParams()
	params.NumSources = 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPropagation(e, params)
		if err != nil {
			b.Fatal(err)
		}
		if res.CoverageDerived <= res.CoverageExplicit {
			b.Fatal("paper shape lost")
		}
	}
}

// BenchmarkRecommendation regenerates E-X2: the held-out helpfulness
// prediction comparison across the three predictors (including a full
// pipeline re-run on the training split).
func BenchmarkRecommendation(b *testing.B) {
	e := env(b)
	params := experiments.DefaultRecommendationParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRecommendation(e, params)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) != 3 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkRobustnessSweep regenerates A-5 with three seeds at small
// scale (each seed is a full generate + pipeline + Table 4 run).
func BenchmarkRobustnessSweep(b *testing.B) {
	suite := experiments.Suite{Synth: synth.Small(), Pipeline: core.DefaultConfig()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRobustness(suite, []uint64{2, 3, 5})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AlwaysWins() {
			b.Fatal("paper shape lost")
		}
	}
}

// BenchmarkStructure regenerates F-NET: the structural comparison of the
// explicit and derived webs.
func BenchmarkStructure(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStructure(e, 100, 31)
		if err != nil {
			b.Fatal(err)
		}
		if res.Derived.Edges <= res.Explicit.Edges {
			b.Fatal("paper shape lost")
		}
	}
}

// BenchmarkAblationDiscount regenerates A-1 (experience discount on/off).
func BenchmarkAblationDiscount(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationDiscount(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIteration regenerates A-2 (fixed point vs single pass).
func BenchmarkAblationIteration(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationIteration(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAffinity regenerates A-3 (affinity signal blend).
func BenchmarkAblationAffinity(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationAffinity(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBinarize regenerates A-4 (per-user top-k vs global
// threshold).
func BenchmarkAblationBinarize(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationBinarize(e, []float64{0.3, 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benchmarks -------------------------------------------------

// BenchmarkSynthGenerate measures the synthetic community generator.
func BenchmarkSynthGenerate(b *testing.B) {
	cfg := synth.Medium()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerive measures the full three-step pipeline (Steps 1-3).
func BenchmarkDerive(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weboftrust.Derive(e.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerivedTrustRow measures computing one user's full T̂ row
// (eq. 5 over all users), the pipeline's innermost hot path.
func BenchmarkDerivedTrustRow(b *testing.B) {
	e := env(b)
	dst := make([]float64, e.Dataset.NumUsers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Artifacts.Trust.Row(ratings.UserID(i%e.Dataset.NumUsers()), dst)
	}
}

// BenchmarkDerivedTrustRowSparse measures the category-pruned row
// evaluation (compare with BenchmarkDerivedTrustRow).
func BenchmarkDerivedTrustRowSparse(b *testing.B) {
	e := env(b)
	dst := make([]float64, e.Dataset.NumUsers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Artifacts.Trust.RowSparse(ratings.UserID(i%e.Dataset.NumUsers()), dst)
	}
}

// BenchmarkDerivedTrustRowSparseLarge is BenchmarkDerivedTrustRowSparse
// at the Large preset, where the contiguous expert-score columns matter
// most: 3× the users and categories of Medium.
func BenchmarkDerivedTrustRowSparseLarge(b *testing.B) {
	e := envLarge(b)
	dst := make([]float64, e.Dataset.NumUsers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Artifacts.Trust.RowSparse(ratings.UserID(i%e.Dataset.NumUsers()), dst)
	}
}

// BenchmarkTopKHeap measures the bounded-heap top-k selection on a real
// Medium trust row at the serving default k=10 (compare with
// BenchmarkTopKQuickselect, the full-index path it replaced on the query
// side).
func BenchmarkTopKHeap(b *testing.B) {
	e := env(b)
	row := e.Artifacts.Trust.Row(17, nil)
	scratch := make([]int, 0, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = mat.TopKHeapInto(row, 10, scratch)
	}
}

// BenchmarkTopKQuickselect is the quickselect selection BenchmarkTopKHeap
// replaced in the query path, on the same row and k.
func BenchmarkTopKQuickselect(b *testing.B) {
	e := env(b)
	row := e.Artifacts.Trust.Row(17, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.TopK(row, 10)
	}
}

// BenchmarkGenerosity measures the per-user k_i computation.
func BenchmarkGenerosity(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Generosity(e.Dataset)
	}
}

// BenchmarkBinarizeDerived measures the parallel top-k_i binarisation of
// the derived matrix.
func BenchmarkBinarizeDerived(b *testing.B) {
	e := env(b)
	k := core.Generosity(e.Dataset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BinarizeDerived(e.Artifacts.Trust, k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures constructing the full web-of-trust
// artifact (generosity, per-user edge selection, CSR graph packing) from
// the derived matrix — the Step 4 cost Run pays once and Update pays only
// a dirty-user fraction of.
func BenchmarkGraphBuild(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildWeb(e.Dataset, e.Artifacts.Trust, core.DefaultWebPolicy(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotWrite measures dataset serialisation.
func BenchmarkSnapshotWrite(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteSnapshot(io.Discard, e.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRead measures dataset deserialisation including full
// re-validation and index building.
func BenchmarkSnapshotRead(b *testing.B) {
	e := env(b)
	var buf bytes.Buffer
	if err := store.WriteSnapshot(&buf, e.Dataset); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopTrusted measures the end-user query path: derive one user's
// row and select their top-10 trusted users.
func BenchmarkTopTrusted(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Artifacts.Trust.TopTrusted(ratings.UserID(i%e.Dataset.NumUsers()), 10)
	}
}

// --- Serving benchmarks ---------------------------------------------------

// BenchmarkServerTopK measures trustd's full /v1/topk handler path —
// routing, parameter validation, result cache, pooled RowAuto evaluation,
// heap ranking and JSON encoding — cycling through every user so the
// result cache runs at its steady-state miss rate.
func BenchmarkServerTopK(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	numU := e.Dataset.NumUsers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/topk?user=%d&k=10", i%numU), nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerTopKCached is the hot-user variant: every request after
// the first hits the ranked-result cache, isolating the lookup + encoding
// cost.
func BenchmarkServerTopKCached(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/topk?user=17&k=10", nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerTopKLarge is BenchmarkServerTopK at the Large preset
// (6,000 users, 36 categories): the per-query row evaluation and ranking
// cost the serving layer pays as the community grows.
func BenchmarkServerTopKLarge(b *testing.B) {
	e := envLarge(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	numU := e.Dataset.NumUsers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/topk?user=%d&k=10", i%numU), nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("topk: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerPropagate measures trustd's /v1/propagate handler on
// the hot path the acceptance criterion names: a repeated personalised
// query served from the ranked-result cache (lookup + JSON encoding),
// which must stay within 2× of the equally-cached /v1/topk.
func BenchmarkServerPropagate(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/propagate?algo=appleseed&user=17&k=10", nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("propagate: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkRouterTopK measures the cluster router's proxy overhead on
// the hot path: a cached /v1/topk hit served by a 3-shard cluster over
// real HTTP, directly against the owning shard (Direct) and through the
// consistent-hash router in front of it (ViaRouter). The acceptance
// criterion is that the router adds at most 2× a direct cached hit on
// top of it; measured, it adds ~1× — the bare cost of the second
// network hop with pooled connections, with the router's own routing
// and relay work a few microseconds on top (ViaRouter ≈ 2× Direct on
// loopback, where a hop dominates a cached hit).
func BenchmarkRouterTopK(b *testing.B) {
	e := env(b)
	const numShards = 3
	shardMap := make([][]string, numShards)
	for i := 0; i < numShards; i++ {
		model, err := weboftrust.Derive(e.Dataset, weboftrust.WithShard(i, numShards))
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(model, 0, server.Options{}).Handler())
		defer ts.Close()
		shardMap[i] = []string{ts.URL}
	}
	rt, err := router.New(router.Config{Shards: shardMap})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	const user = 17
	path := fmt.Sprintf("/v1/topk?user=%d&k=10", user)
	client := &http.Client{}
	run := func(b *testing.B, base string) {
		b.Helper()
		// Warm the shard's result cache and the connection pool so the
		// measurement is the steady-state hit path.
		for i := 0; i < 3; i++ {
			resp, err := client.Get(base + path)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("warmup: %d", resp.StatusCode)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(base + path)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("topk: %d", resp.StatusCode)
			}
		}
	}
	b.Run("Direct", func(b *testing.B) { run(b, shardMap[shard.Owner(user, numShards)][0]) })
	b.Run("ViaRouter", func(b *testing.B) { run(b, rts.URL) })
}

// BenchmarkServerPropagateMiss is the cache-miss cost behind the cached
// path: every request computes a fresh Appleseed spread over the served
// graph (cycling sources so no result repeats within a cache lifetime).
func BenchmarkServerPropagateMiss(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	// CacheResults -1 disables result caching, so every request pays the
	// full spreading-activation traversal.
	h := server.New(model, 0, server.Options{CacheResults: -1}).Handler()
	numU := e.Dataset.NumUsers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/propagate?algo=appleseed&user=%d&k=10", i%numU), nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("propagate: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServerPropagateLarge is BenchmarkServerPropagate at the Large
// preset: the cached-path latency must stay flat as the community grows,
// because a cache hit never touches the graph.
func BenchmarkServerPropagateLarge(b *testing.B) {
	e := envLarge(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/propagate?algo=appleseed&user=17&k=10", nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("propagate: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkIngestSwap measures one full tailer cycle on a live log:
// append a small event batch, tail-read past the checkpoint, replay,
// rebuild artifacts with the incremental update, and swap the new state
// in. This is the freshness cost a community pays per ingest tick.
func BenchmarkIngestSwap(b *testing.B) {
	e := env(b)
	path := filepath.Join(b.TempDir(), "events.log")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, e.Dataset); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	srv, tailer, err := server.Open(path, 0, server.Options{})
	if err != nil {
		b.Fatal(err)
	}
	_ = srv
	users := e.Dataset.NumUsers()
	objects := e.Dataset.NumObjects()
	reviews := e.Dataset.NumReviews()
	numCats := e.Dataset.NumCategories()
	appendBatch := func(i int) {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			b.Fatal(err)
		}
		lw := store.NewLogWriter(f)
		// One new user writing one rated review, cycling categories.
		for _, ev := range []store.Event{
			{Kind: store.EvAddUser, Name: ""},
			{Kind: store.EvAddObject, Category: ratings.CategoryID(i % numCats), Name: ""},
			{Kind: store.EvAddReview, User: ratings.UserID(users), Object: ratings.ObjectID(objects)},
			{Kind: store.EvAddRating, User: ratings.UserID(i % users), Review: ratings.ReviewID(reviews), Level: uint8(1 + i%5)},
		} {
			if err := lw.Append(ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := lw.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		users++
		objects++
		reviews++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		appendBatch(i)
		n, err := tailer.Poll()
		if err != nil {
			b.Fatal(err)
		}
		if n != 4 {
			b.Fatalf("ingested %d events, want 4", n)
		}
	}
}

// --- Boot benchmarks ------------------------------------------------------

// bootEnv materialises what a daemon restart sees on disk: the full event
// log plus a checkpoint directory holding one checkpoint at the log's
// end. Built once per preset and shared by the cold/warm pairs (boots
// only read these artifacts).
type bootEnv struct {
	logPath string
	ckptDir string
}

var bootEnvs sync.Map // users count -> *bootEnv

// TestMain exists to remove the boot-benchmark temp dirs: they are shared
// across benchmarks in one binary run, so per-benchmark cleanup (b.TempDir,
// b.Cleanup) would tear them down under a later benchmark.
func TestMain(m *testing.M) {
	code := m.Run()
	bootEnvs.Range(func(_, v any) bool {
		os.RemoveAll(filepath.Dir(v.(*bootEnv).logPath))
		return true
	})
	os.Exit(code)
}

func setupBootEnv(b *testing.B, e *experiments.Env) *bootEnv {
	b.Helper()
	if v, ok := bootEnvs.Load(e.Dataset.NumUsers()); ok {
		return v.(*bootEnv)
	}
	dir, err := os.MkdirTemp("", "wotboot")
	if err != nil {
		b.Fatal(err)
	}
	logPath := filepath.Join(dir, "events.log")
	f, err := os.Create(logPath)
	if err != nil {
		b.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, e.Dataset); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	ckptDir := filepath.Join(dir, "ckpts")
	st, err := os.Stat(logPath)
	if err != nil {
		b.Fatal(err)
	}
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := checkpoint.WriteDir(ckptDir, model, st.Size(), st.Size()); err != nil {
		b.Fatal(err)
	}
	env := &bootEnv{logPath: logPath, ckptDir: ckptDir}
	bootEnvs.Store(e.Dataset.NumUsers(), env)
	return env
}

// benchColdStart measures time-to-serving from nothing but the event
// log: full replay through the validating builder plus a from-scratch
// Derive — what every trustd boot paid before checkpointing.
func benchColdStart(b *testing.B, e *experiments.Env) {
	env := setupBootEnv(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, _, err := server.Open(env.logPath, 0, server.Options{})
		if err != nil {
			b.Fatal(err)
		}
		model, _, _ := srv.Current()
		if model.Dataset().NumUsers() != e.Dataset.NumUsers() {
			b.Fatal("cold boot lost users")
		}
	}
}

// benchWarmRestart measures time-to-serving from a checkpoint: restore
// the persisted artifacts, rebuild the derived-trust index, and tail the
// (already-covered) log — the post-checkpointing boot path. Compare
// directly with benchColdStart at the same preset.
func benchWarmRestart(b *testing.B, e *experiments.Env) {
	env := setupBootEnv(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, _, info, err := server.OpenCheckpointed(env.logPath, env.ckptDir, 0, server.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !info.Warm {
			b.Fatalf("boot went cold: %+v", info)
		}
		model, _, _ := srv.Current()
		if model.Dataset().NumUsers() != e.Dataset.NumUsers() {
			b.Fatal("warm boot lost users")
		}
	}
}

// BenchmarkColdStart is the log-replay + full-Derive boot at the Medium
// preset (2,000 users, 12 categories).
func BenchmarkColdStart(b *testing.B) { benchColdStart(b, env(b)) }

// BenchmarkWarmRestart is the checkpoint-restore boot at the Medium
// preset; the ratio to BenchmarkColdStart is the warm-restart win.
func BenchmarkWarmRestart(b *testing.B) { benchWarmRestart(b, env(b)) }

// BenchmarkColdStartLarge is BenchmarkColdStart at the Large preset
// (6,000 users, 36 categories), where replay + derive dominates boot.
func BenchmarkColdStartLarge(b *testing.B) { benchColdStart(b, envLarge(b)) }

// BenchmarkWarmRestartLarge is BenchmarkWarmRestart at the Large preset —
// the acceptance bar: ≥ 5× faster time-to-serving than the cold start.
func BenchmarkWarmRestartLarge(b *testing.B) { benchWarmRestart(b, envLarge(b)) }

// --- Parallel pipeline benchmarks -----------------------------------------

// rebuildBuilder reloads a dataset into a fresh Builder so a benchmark can
// append growth events to it.
func rebuildBuilder(b *testing.B, d *ratings.Dataset) *ratings.Builder {
	b.Helper()
	bld := ratings.NewBuilder()
	for c := 0; c < d.NumCategories(); c++ {
		bld.AddCategory(d.CategoryName(ratings.CategoryID(c)))
	}
	for u := 0; u < d.NumUsers(); u++ {
		bld.AddUser(d.UserName(ratings.UserID(u)))
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if _, err := bld.AddObject(obj.Category, obj.Name); err != nil {
			b.Fatal(err)
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if _, err := bld.AddReview(rev.Writer, rev.Object); err != nil {
			b.Fatal(err)
		}
	}
	for _, rt := range d.Ratings() {
		if err := bld.AddRating(rt.Rater, rt.Review, rt.Value); err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range d.TrustEdges() {
		if err := bld.AddTrust(e.From, e.To); err != nil {
			b.Fatal(err)
		}
	}
	return bld
}

// growTouching extends d with one new user writing one rated review in
// each of the first touchedCats categories — the smallest growth that
// touches exactly that many categories.
func growTouching(b *testing.B, d *ratings.Dataset, touchedCats int) *ratings.Dataset {
	b.Helper()
	bld := rebuildBuilder(b, d)
	writer := bld.AddUser("bench-writer")
	rater := bld.AddUser("bench-rater")
	for c := 0; c < touchedCats; c++ {
		oid, err := bld.AddObject(ratings.CategoryID(c), "")
		if err != nil {
			b.Fatal(err)
		}
		rid, err := bld.AddReview(writer, oid)
		if err != nil {
			b.Fatal(err)
		}
		if err := bld.AddRating(rater, rid, ratings.QuantizeRating(0.7)); err != nil {
			b.Fatal(err)
		}
	}
	return bld.Build()
}

// benchPipelineWorkers runs the full Steps 1-3 pipeline at 1, 2, 4 and 8
// workers over the given dataset. Artifacts are bitwise-identical across
// worker counts (asserted by TestRunParallelEqualsSerial); only wall-clock
// time should differ, and only when the hardware has the cores to use.
func benchPipelineWorkers(b *testing.B, d *ratings.Dataset) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Run(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineRun measures the parallel derivation pipeline at the
// Medium preset (2,000 users, 12 categories) across worker counts.
func BenchmarkPipelineRun(b *testing.B) {
	benchPipelineWorkers(b, env(b).Dataset)
}

// BenchmarkPipelineRunLarge is BenchmarkPipelineRun at the Large preset
// (6,000 users, 36 categories): a wider category axis for the fan-out.
func BenchmarkPipelineRunLarge(b *testing.B) {
	d, _, err := synth.Generate(synth.Large())
	if err != nil {
		b.Fatal(err)
	}
	benchPipelineWorkers(b, d)
}

// BenchmarkUpdateTouchedFraction measures core.Update against growth
// batches touching 1, a quarter, half and all of the Medium preset's 12
// categories, with a reused Scratch — the steady-state tailer ingest cost.
// Compare touched=1 with touched=12 (and with BenchmarkPipelineRun): the
// cost should track the touched fraction, not the total category count.
func BenchmarkUpdateTouchedFraction(b *testing.B) {
	e := env(b)
	oldD := e.Dataset
	numC := oldD.NumCategories()
	cfg := core.DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		b.Fatal(err)
	}
	for _, touched := range []int{1, numC / 4, numC / 2, numC} {
		newD := growTouching(b, oldD, touched)
		scratch := new(core.Scratch)
		b.Run(fmt.Sprintf("touched=%d of %d", touched, numC), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.UpdateScratch(oldArt, oldD, newD, scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUpdateCategoryScaling holds the touched set fixed at one
// category and scales the total category count (12 → 24 → 48 splits of
// the paper genres at 2,000 users), demonstrating that Update's cost no
// longer grows with the size of the untouched world the way a full
// rebuild does (BenchmarkPipelineRun is the comparison).
func BenchmarkUpdateCategoryScaling(b *testing.B) {
	for _, splits := range []int{1, 2, 4} {
		cfg := synth.Medium()
		if splits > 1 {
			var cats []synth.CategorySpec
			for _, g := range synth.PaperGenres() {
				for s := 0; s < splits; s++ {
					cats = append(cats, synth.CategorySpec{
						Name:   fmt.Sprintf("%s/%d", g.Name, s),
						Weight: g.Weight / float64(splits),
					})
				}
			}
			cfg.Categories = cats
		}
		oldD, _, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pc := core.DefaultConfig()
		oldArt, err := pc.Run(oldD)
		if err != nil {
			b.Fatal(err)
		}
		newD := growTouching(b, oldD, 1)
		scratch := new(core.Scratch)
		b.Run(fmt.Sprintf("cats=%d", oldD.NumCategories()), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pc.UpdateScratch(oldArt, oldD, newD, scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Incremental serving benchmarks (PR 7) --------------------------------

// webRows materialises a web's adjacency as the row-slices the graph
// constructors take, outside any benchmark timer.
func webRows(w *core.Web) (n int, to [][]int32, wt [][]float64) {
	n = w.NumUsers()
	to = make([][]int32, n)
	wt = make([][]float64, n)
	for u := 0; u < n; u++ {
		to[u], wt[u] = w.Neighbors(ratings.UserID(u))
	}
	return n, to, wt
}

// growInCategory extends d with one new user writing one rated review in
// the single given category.
func growInCategory(b *testing.B, d *ratings.Dataset, cat ratings.CategoryID) *ratings.Dataset {
	b.Helper()
	bld := rebuildBuilder(b, d)
	writer := bld.AddUser("bench-writer")
	rater := bld.AddUser("bench-rater")
	oid, err := bld.AddObject(cat, "")
	if err != nil {
		b.Fatal(err)
	}
	rid, err := bld.AddReview(writer, oid)
	if err != nil {
		b.Fatal(err)
	}
	if err := bld.AddRating(rater, rid, ratings.QuantizeRating(0.7)); err != nil {
		b.Fatal(err)
	}
	return bld.Build()
}

// BenchmarkSwapDelta compares the two ways to build the post-ingest CSR
// graph after a one-category tick on the Medium community: the delta
// constructor (graph.UpdateRows — per-edge work only on dirty rows and
// their targets' in-lists) against a full rebuild (graph.FromRows —
// O(U+E) validation and scatter). The delta's advantage tracks the dirty
// fraction, so the tick lands in the heaviest category (~37% of users
// dirty) and the lightest (~8%).
func BenchmarkSwapDelta(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	prev := model.WebOfTrust().Graph()
	for _, tc := range []struct {
		name string
		cat  ratings.CategoryID
	}{
		{"heavy", 0},
		{"light", ratings.CategoryID(e.Dataset.NumCategories() - 1)},
	} {
		upd, err := model.Update(growInCategory(b, e.Dataset, tc.cat))
		if err != nil {
			b.Fatal(err)
		}
		dirty := upd.DirtyUsers()
		if dirty == nil {
			b.Fatal("update produced no dirty set")
		}
		n, to, wt := webRows(upd.WebOfTrust())
		b.Run(tc.name+"/delta", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.UpdateRows(prev, n, dirty, to, wt); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/rebuild", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := graph.FromRows(n, to, wt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPropagatePruned measures a propagation cache miss on the
// Medium community with a tau=0.10 percolation-pruned traversal graph
// against the exact traversal over the complete graph, per algorithm.
func BenchmarkPropagatePruned(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset, weboftrust.WithPropagatePruneTau(0.10))
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, e.Dataset.NumUsers())
	for _, tc := range []struct {
		name string
		algo weboftrust.PropagationAlgo
	}{
		{"appleseed", weboftrust.PropagateAppleseed},
		{"moletrust", weboftrust.PropagateMoleTrust},
		{"tidaltrust", weboftrust.PropagateTidalTrust},
	} {
		b.Run(tc.name+"/pruned", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := model.PropagateInto(tc.algo, weboftrust.UserID(i%100), dst); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/exact", func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := model.PropagateExactInto(tc.algo, weboftrust.UserID(i%100), dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRankWarm compares the /v1/rank maintenance strategies after a
// one-category tick on the Medium community: the budgeted warm refresh
// an incremental swap runs (GlobalRanksFrom with the parent's vector)
// against a cold converged solve.
func BenchmarkRankWarm(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	prev, _, err := model.GlobalRanks()
	if err != nil {
		b.Fatal(err)
	}
	upd, err := model.Update(growTouching(b, e.Dataset, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := upd.GlobalRanksFrom(prev, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := upd.GlobalRanks(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnomalySwap measures the incremental suspicion-score refresh
// a parent-matched swap pays (anomaly.Update over a one-category ingest
// tick, O(dirty closure)) against the cold full pass (anomaly.Compute,
// O(users)) the refresh replaces — the same warm-vs-cold split as
// BenchmarkRankWarm, for the anomaly vector.
func BenchmarkAnomalySwap(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	grown := growTouching(b, e.Dataset, 1)
	upd, err := model.Update(grown)
	if err != nil {
		b.Fatal(err)
	}
	oldG := model.WebOfTrust().Graph()
	newG := upd.WebOfTrust().Graph()
	prev := anomaly.Compute(e.Dataset, oldG)
	dirty := upd.DirtyUsers()
	b.Run("warm", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			anomaly.Update(prev, e.Dataset, grown, oldG, newG, dirty)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			anomaly.Compute(grown, newG)
		}
	})
}

// BenchmarkServerAnomaly measures trustd's full /v1/anomaly handler path
// — routing, parameter validation, the per-user rank scan over the
// scored vector and JSON encoding — cycling through every user against
// an already-computed score vector (the steady state after a swap's
// eager refresh).
func BenchmarkServerAnomaly(b *testing.B) {
	e := env(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{}).Handler()
	numU := e.Dataset.NumUsers()
	// Force the lazy scoring pass outside the timer.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/anomaly?user=0", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup: %d %s", warm.Code, warm.Body.String())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/anomaly?user=%d", i%numU), nil)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("anomaly: %d %s", rec.Code, rec.Body.String())
		}
	}
}

// benchTaintSource extends d with one explicit trust edge out of source
// (to the first user the pair is new for), marking exactly that row
// dirty — the smallest growth that taints a hot source across a swap.
func benchTaintSource(b *testing.B, d *ratings.Dataset, source ratings.UserID) *ratings.Dataset {
	b.Helper()
	bld := rebuildBuilder(b, d)
	for to := 0; to < d.NumUsers(); to++ {
		if ratings.UserID(to) == source {
			continue
		}
		if err := bld.AddTrust(source, ratings.UserID(to)); err == nil {
			return bld.Build()
		}
	}
	b.Fatal("no free trust edge out of the source")
	return nil
}

// BenchmarkPropagatePrecompute measures the propagation precompute
// engine's serving win at Medium: after an incremental swap taints a hot
// source, PrewarmedHit serves /v1/propagate from the cache entry the
// swap-time engine inserted, while ColdMiss (caching disabled) pays the
// full traversal the engine saved. The PR 10 acceptance bar is
// PrewarmedHit at least 3x faster than ColdMiss.
func BenchmarkPropagatePrecompute(b *testing.B) {
	e := env(b)
	const path = "/v1/propagate?algo=appleseed&user=17&k=10"
	setup := func(b *testing.B, opts server.Options) http.Handler {
		b.Helper()
		model, err := weboftrust.Derive(e.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(model, 0, opts)
		h := srv.Handler()
		// Heat the source, then taint it and swap: with a budget the
		// engine re-warms the dropped entry on the ingest path.
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("warm: %d %s", rec.Code, rec.Body.String())
		}
		m2, err := model.Update(benchTaintSource(b, e.Dataset, 17))
		if err != nil {
			b.Fatal(err)
		}
		srv.Swap(m2, 1)
		return h
	}
	bench := func(b *testing.B, h http.Handler) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("propagate: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("PrewarmedHit", func(b *testing.B) {
		bench(b, setup(b, server.Options{PrecomputeBudget: 10 * time.Second}))
	})
	b.Run("ColdMiss", func(b *testing.B) {
		bench(b, setup(b, server.Options{CacheResults: -1}))
	})
}

// BenchmarkLandmarkApprox measures the `?approx=landmark` serving mode
// against the exact traversal at the Large preset, both with caching
// disabled so every request pays its compute: Landmark composes the
// source's frontier with 16 landmark vectors (O(L·U)), Exact walks the
// graph. The PR 10 acceptance bar is Landmark at most 1/3 of Exact.
func BenchmarkLandmarkApprox(b *testing.B) {
	e := envLarge(b)
	model, err := weboftrust.Derive(e.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	h := server.New(model, 0, server.Options{CacheResults: -1}).Handler()
	// Prime the landmark selection and the appleseed sketch (a lazy
	// one-time build) outside the timer.
	warm := httptest.NewRecorder()
	h.ServeHTTP(warm, httptest.NewRequest(http.MethodGet, "/v1/propagate?algo=appleseed&user=17&k=10&approx=landmark", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warm: %d %s", warm.Code, warm.Body.String())
	}
	bench := func(b *testing.B, path string) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("propagate: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("Exact", func(b *testing.B) {
		bench(b, "/v1/propagate?algo=appleseed&user=17&k=10")
	})
	b.Run("Landmark", func(b *testing.B) {
		bench(b, "/v1/propagate?algo=appleseed&user=17&k=10&approx=landmark")
	})
}
