#!/usr/bin/env bash
# check_allocs.sh is the CI allocation guard for the serving hot path: it
# runs the cached-hit benchmarks and fails if allocs/op regress above
# their recorded baselines, so those wins cannot silently erode as the
# serving surface grows. Guarded:
#   BenchmarkServerTopK      vs BENCH_pr3.json  (34 allocs/op — pooled
#                            scratch + heap selection)
#   BenchmarkServerPropagate vs BENCH_pr10.json (cached propagate hit —
#                            the path swap-time precompute pre-warms)
#
# Usage: scripts/check_allocs.sh
#   ALLOC_BASELINE_FILE            BenchmarkServerTopK baseline JSON (default BENCH_pr3.json)
#   ALLOC_PROPAGATE_BASELINE_FILE  BenchmarkServerPropagate baseline JSON (default BENCH_pr10.json)
#   ALLOC_BENCHTIME                iterations for the measurement (default 200x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${ALLOC_BENCHTIME:-200x}"
fail=0

# guard NAME BASELINE_FILE — measure Benchmark$NAME (anchored) and compare
# its allocs/op against the lowest figure recorded for it in the baseline.
guard() {
	local name="$1" baseline_file="$2" baseline current
	baseline="$(grep -o "\"name\": \"Benchmark${name}\"[^}]*" "$baseline_file" |
		grep -o '"allocs_per_op": [0-9]*' | awk '{print $2}' | sort -n | head -1)"
	if [ -z "$baseline" ]; then
		echo "check_allocs: no Benchmark${name} baseline in $baseline_file" >&2
		return 2
	fi
	current="$(go test -run '^$' -bench "${name}\$" -benchmem -benchtime "$benchtime" . |
		awk -v b="^Benchmark${name}(-[0-9]+)?[ \t]" '$0 ~ b {print $(NF-1)}')"
	if [ -z "$current" ]; then
		echo "check_allocs: Benchmark${name} produced no allocs/op figure" >&2
		return 2
	fi
	echo "Benchmark${name} allocs/op: current=$current baseline=$baseline"
	if [ "$current" -gt "$baseline" ]; then
		echo "check_allocs: FAIL — Benchmark${name} allocs/op regressed above the $baseline_file baseline" >&2
		return 1
	fi
}

guard ServerTopK "${ALLOC_BASELINE_FILE:-BENCH_pr3.json}" || fail=$?
guard ServerPropagate "${ALLOC_PROPAGATE_BASELINE_FILE:-BENCH_pr10.json}" || fail=$?

if [ "$fail" -ne 0 ]; then
	exit "$fail"
fi
echo "check_allocs: OK"
