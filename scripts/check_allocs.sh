#!/usr/bin/env bash
# check_allocs.sh is the CI allocation guard for the serving hot path: it
# runs BenchmarkServerTopK and fails if allocs/op regress above the
# baseline recorded in BENCH_pr3.json (34 allocs/op — the pooled-scratch
# + heap-selection read path), so that win cannot silently erode as the
# serving surface grows.
#
# Usage: scripts/check_allocs.sh
#   ALLOC_BASELINE_FILE  baseline JSON (default BENCH_pr3.json)
#   ALLOC_BENCHTIME      iterations for the measurement (default 200x)
set -euo pipefail
cd "$(dirname "$0")/.."

baseline_file="${ALLOC_BASELINE_FILE:-BENCH_pr3.json}"
benchtime="${ALLOC_BENCHTIME:-200x}"

# Lowest recorded allocs/op for BenchmarkServerTopK in the baseline file.
baseline="$(grep -o '"name": "BenchmarkServerTopK"[^}]*' "$baseline_file" |
	grep -o '"allocs_per_op": [0-9]*' | awk '{print $2}' | sort -n | head -1)"
if [ -z "$baseline" ]; then
	echo "check_allocs: no BenchmarkServerTopK baseline in $baseline_file" >&2
	exit 2
fi

current="$(go test -run '^$' -bench 'ServerTopK$' -benchmem -benchtime "$benchtime" . |
	awk '/^BenchmarkServerTopK/ {print $(NF-1)}')"
if [ -z "$current" ]; then
	echo "check_allocs: BenchmarkServerTopK produced no allocs/op figure" >&2
	exit 2
fi

echo "BenchmarkServerTopK allocs/op: current=$current baseline=$baseline"
if [ "$current" -gt "$baseline" ]; then
	echo "check_allocs: FAIL — allocs/op regressed above the $baseline_file baseline" >&2
	exit 1
fi
echo "check_allocs: OK"
