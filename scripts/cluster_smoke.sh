#!/usr/bin/env bash
# cluster_smoke.sh boots a real 3-shard trustd cluster behind the
# consistent-hash router, next to an unsharded reference process over the
# same event log, and proves end to end that:
#
#   1. every shard and the router come up and report ready,
#   2. routed responses are byte-identical to the unsharded server for a
#      sample of users across /v1/topk, /v1/trust, /v1/neighbors and
#      /v1/propagate (plus the merged /v1/graph/stats),
#   3. the cluster survives a loadgen burst through the router,
#   4. killing one replica of a two-replica shard mid-run is invisible
#      (responses stay byte-identical through failover), and restarting
#      it recovers with zero divergence,
#
# then tears everything down. This is the out-of-process complement to
# the in-process harnesses in internal/router/cluster_test.go and
# chaos_test.go: real binaries, real TCP, real flags, real SIGKILL.
#
# Usage: scripts/cluster_smoke.sh
#   CLUSTER_SMOKE_PORT  base port (default 8300; uses base..base+5)
set -euo pipefail
cd "$(dirname "$0")/.."

base_port="${CLUSTER_SMOKE_PORT:-8300}"
ref_port=$base_port
s0_port=$((base_port + 1))
s1_port=$((base_port + 2))
s2_port=$((base_port + 3))
router_port=$((base_port + 4))
s0b_port=$((base_port + 5))

workdir="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/trustd" ./cmd/trustd
go build -o "$workdir/trustctl" ./cmd/trustctl

echo "== generating community and event log"
"$workdir/trustctl" generate -preset small -out "$workdir/data.wot" >/dev/null
"$workdir/trustctl" exportlog -in "$workdir/data.wot" -log "$workdir/events.log" >/dev/null
users=300 # synth.Small community size

echo "== starting unsharded reference on :$ref_port"
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$ref_port" 2>"$workdir/ref.log" &
pids+=($!)

echo "== starting 3 shards on :$s0_port(+replica :$s0b_port) :$s1_port :$s2_port"
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$s0_port" -shard 0/3 2>"$workdir/shard0.log" &
s0a_pid=$!
pids+=($s0a_pid)
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$s0b_port" -shard 0/3 2>"$workdir/shard0b.log" &
pids+=($!)
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$s1_port" -shard 1/3 2>"$workdir/shard1.log" &
pids+=($!)
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$s2_port" -shard 2/3 2>"$workdir/shard2.log" &
pids+=($!)

echo "== starting router on :$router_port (waits for shard readiness)"
"$workdir/trustd" route -addr "127.0.0.1:$router_port" \
    -shards "http://127.0.0.1:$s0_port|http://127.0.0.1:$s0b_port,http://127.0.0.1:$s1_port,http://127.0.0.1:$s2_port" \
    -retries 2 -breaker-cooldown 250ms \
    -wait-ready 30s 2>"$workdir/router.log" &
pids+=($!)

wait_ready() {
    local url=$1 name=$2
    for _ in $(seq 1 150); do
        if curl -sf "$url/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "FAIL: $name never became ready" >&2
    tail -n 20 "$workdir"/*.log >&2 || true
    return 1
}
wait_ready "http://127.0.0.1:$ref_port" "reference"
wait_ready "http://127.0.0.1:$router_port" "router (all shards)"

check_equivalence() {
    local stage=$1
    local checked=0
    for u in 0 7 42 99 123 201 299; do
        to=$(((u + 1) % users))
        for path in \
            "/v1/topk?user=$u&k=7" \
            "/v1/trust?from=$u&to=$to" \
            "/v1/neighbors?user=$u" \
            "/v1/propagate?algo=appleseed&user=$u&k=5" \
            "/v1/propagate?algo=moletrust&user=$u&k=5&approx=landmark" \
            "/v1/rank?user=$u"; do
            ref_body="$(curl -s "http://127.0.0.1:$ref_port$path")"
            routed_body="$(curl -s "http://127.0.0.1:$router_port$path")"
            if [ "$ref_body" != "$routed_body" ]; then
                echo "FAIL($stage): $path differs through the router" >&2
                echo "  ref:    $ref_body" >&2
                echo "  router: $routed_body" >&2
                exit 1
            fi
            checked=$((checked + 1))
        done
    done
    for path in "/v1/graph/stats" "/v1/rank?k=5"; do
        ref_body="$(curl -s "http://127.0.0.1:$ref_port$path")"
        routed_body="$(curl -s "http://127.0.0.1:$router_port$path")"
        if [ "$ref_body" != "$routed_body" ]; then
            echo "FAIL($stage): global $path differs through the router" >&2
            exit 1
        fi
        checked=$((checked + 1))
    done
    echo "   $stage: $checked responses byte-identical"
}

echo "== equivalence: routed responses vs unsharded reference"
check_equivalence "healthy"

echo "== loadgen burst through the router"
"$workdir/trustd" loadgen -addr "http://127.0.0.1:$router_port" -duration 2s -concurrency 4 -users "$users"

echo "== killing shard 0 replica on :$s0_port mid-run"
kill -9 "$s0a_pid" 2>/dev/null || true
wait "$s0a_pid" 2>/dev/null || true
check_equivalence "replica-dead"

echo "== restarting the killed replica"
"$workdir/trustd" serve -log "$workdir/events.log" -addr "127.0.0.1:$s0_port" -shard 0/3 2>"$workdir/shard0_restart.log" &
pids+=($!)
wait_ready "http://127.0.0.1:$s0_port" "restarted shard 0 replica"
# Give the router's breaker a cooldown to re-probe the revived replica,
# then the full equivalence sweep must hold again with zero divergence.
sleep 0.5
check_equivalence "replica-restarted"

echo "== misdirected check: no shard saw a wrongly routed source"
for port in $s0_port $s0b_port $s1_port $s2_port; do
    mis="$(curl -s "http://127.0.0.1:$port/metrics" | awk '/^trustd_misdirected_requests_total/ {print $2}')"
    if [ "${mis:-0}" != "0" ]; then
        echo "FAIL: shard on :$port answered $mis misdirected requests" >&2
        exit 1
    fi
done

echo "cluster smoke OK"
