#!/usr/bin/env bash
# bench.sh runs the pipeline / incremental-update / serving benchmark
# suite and writes the parsed results as JSON, so speedups are recorded
# next to the machine shape they were measured on rather than asserted
# in prose.
#
# Usage: scripts/bench.sh [output.json]
#   BENCH_OUT     output path when no argument is given (default BENCH_pr10.json)
#   BENCH_SUITE   suite label recorded in the JSON (default: output basename)
#   BENCH_COUNT   repetitions per benchmark (default 5)
#   BENCH_FILTER  benchmark regexp (default: the boot + read-path + pipeline perf surface)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-${BENCH_OUT:-BENCH_pr10.json}}"
suite="${BENCH_SUITE:-$(basename "$out" .json)}"
count="${BENCH_COUNT:-5}"
filter="${BENCH_FILTER:-PipelineRun|UpdateTouchedFraction|UpdateCategoryScaling|ServerTopK|ServerPropagate|GraphBuild|IngestSwap|DerivedTrustRowSparse|TopKHeap|TopKQuickselect|ColdStart|WarmRestart|RouterTopK|SwapDelta|PropagatePruned|RankWarm|AnomalySwap|ServerAnomaly|PropagatePrecompute|LandmarkApprox}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchmem -count="$count" . | tee "$raw"

awk -v out="$out" -v suite="$suite" -v count="$count" '
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ && / ns\/op/ {
	name = $1
	entry = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, $3)
	for (i = 4; i < NF; i++) {
		if ($(i + 1) == "B/op")      entry = entry sprintf(", \"b_per_op\": %s", $i)
		if ($(i + 1) == "allocs/op") entry = entry sprintf(", \"allocs_per_op\": %s", $i)
	}
	results[++n] = entry "}"
}
END {
	printf "{\n" > out
	printf "  \"suite\": \"%s\",\n", suite >> out
	printf "  \"count\": %s,\n", count >> out
	printf "  \"goos\": \"%s\",\n", goos >> out
	printf "  \"goarch\": \"%s\",\n", goarch >> out
	printf "  \"cpu\": \"%s\",\n", cpu >> out
	printf "  \"benchmarks\": [\n" >> out
	for (i = 1; i <= n; i++)
		printf "%s%s\n", results[i], (i < n ? "," : "") >> out
	printf "  ]\n}\n" >> out
}
' "$raw"

echo "wrote $out"
