// Package weboftrust derives a web of trust from review-rating data,
// without explicit trust ratings — a from-scratch Go implementation of
// Kim, Le, Lauw, Lim, Liu and Srivastava, "Building a Web of Trust without
// Explicit Trust Ratings" (IEEE ICDE Workshops 2008).
//
// Online communities rarely have a usable explicit web of trust: users
// declare trust for only a handful of people, if at all. This library
// computes a dense, continuous trust matrix T̂ from the rating data such
// communities do have, in three steps performed per category (topic):
//
//  1. Expertise. Review quality and rater reputation are solved as a
//     fixed point of Riggs' model (quality = reputation-weighted average
//     of received ratings; reputation = consistency with the consensus,
//     discounted by inexperience). Writer reputation per category is the
//     experience-discounted average quality of the writer's reviews,
//     giving the Users x Categories expertise matrix E.
//  2. Affinity. Per-user activity counts (ratings given, reviews written)
//     are row-max normalised and blended into the affiliation matrix A.
//  3. Derived trust. T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic — user i trusts
//     user j to the degree j is an expert in what i cares about.
//
// The continuous matrix is then binarised into the web of trust itself —
// each user keeps their top ⌈k_i·n_i⌉ derived connections, sized by
// their own generosity k_i — and that graph is carried as a pipeline
// artifact: incrementally maintained by Update, persisted across
// restarts, and traversable with the propagation algorithms of the
// related work.
//
// The facade in this package wraps the full pipeline:
//
//	model, err := weboftrust.Derive(dataset)
//	top := model.TopTrusted(alice, 10)     // whom should alice trust?
//	score := model.Score(alice, bob)       // degree of trust in [0,1]
//	edges := model.Neighbors(alice)        // alice's web-of-trust out-edges
//	far, err := model.Propagate(weboftrust.PropagateAppleseed, alice, 10)
//
// Datasets are built with the ratings package's Builder, loaded from a
// snapshot or event log (internal/store), or generated synthetically
// (internal/synth). The internal packages expose every intermediate
// artifact — Riggs fixed points, expertise and affinity matrices,
// binarisation, evaluation metrics, and the TidalTrust / EigenTrust /
// Appleseed propagation algorithms the paper discusses.
//
// The cmd/experiments binary regenerates every table and figure of the
// paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package weboftrust
