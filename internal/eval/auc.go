package eval

import (
	"sort"

	"weboftrust/internal/ratings"
)

// AUC computes the area under the ROC curve for continuous scores against
// binary labels: the probability that a uniformly random positive outranks
// a uniformly random negative, with the standard tie correction (ties
// count half). It returns 0.5 when either class is empty — the
// uninformative value, so degenerate inputs never look predictive.
//
// The evaluation uses AUC as the threshold-free companion to Table 4: the
// binarised metrics depend on the generosity protocol, while AUC compares
// the raw orderings of T̂ and B directly.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		return 0.5
	}
	nPos, nNeg := 0, 0
	for _, l := range labels {
		if l {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Sum of positive ranks with average ranks over tie groups.
	var rankSum float64
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avgRank := float64(i+j)/2 + 1 // 1-based
		for k := i; k <= j; k++ {
			if labels[idx[k]] {
				rankSum += avgRank
			}
		}
		i = j + 1
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// PairScorer scores one directed user pair; used to evaluate continuous
// trust models over the direct-connection support.
type PairScorer func(from, to ratings.UserID) float64

// AUCOnConnections computes the AUC of a continuous trust scorer over all
// direct-connection pairs pooled together, labelling a pair positive iff
// it carries an explicit trust edge. This mirrors Table 4's restriction to
// R but needs no binarisation.
//
// Pooling penalises scores that are only rank-consistent *within* a user
// (T̂ rows are normalised by each user's own affinity mass, so absolute
// values are not comparable across users); see MeanPerUserAUC for the
// per-user view, which matches how the paper's binarisation consumes the
// scores.
func AUCOnConnections(d *ratings.Dataset, score PairScorer) float64 {
	var scores []float64
	var labels []bool
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			scores = append(scores, score(u, c.To))
			labels = append(labels, d.HasTrustEdge(u, c.To))
		})
	}
	return AUC(scores, labels)
}

// MeanPerUserAUC computes each user's AUC over their own connection row
// (positives = trusted connections) and averages across users that have
// at least one positive and one negative. It measures exactly the ranking
// ability the per-user top-k_i binarisation relies on.
func MeanPerUserAUC(d *ratings.Dataset, score PairScorer) float64 {
	var sum float64
	users := 0
	var scores []float64
	var labels []bool
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		scores = scores[:0]
		labels = labels[:0]
		pos, neg := 0, 0
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			trusted := d.HasTrustEdge(u, c.To)
			scores = append(scores, score(u, c.To))
			labels = append(labels, trusted)
			if trusted {
				pos++
			} else {
				neg++
			}
		})
		if pos == 0 || neg == 0 {
			continue
		}
		sum += AUC(scores, labels)
		users++
	}
	if users == 0 {
		return 0.5
	}
	return sum / float64(users)
}
