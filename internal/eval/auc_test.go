package eval

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{false, false, true, true}
	if got := AUC(scores, labels); got != 1 {
		t.Errorf("perfect separation AUC = %v, want 1", got)
	}
	inverted := []bool{true, true, false, false}
	if got := AUC(scores, inverted); got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be exactly 0.5 regardless of labels.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); got != 0.5 {
		t.Errorf("all-ties AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC([]float64{1, 2}, []bool{false, false}); got != 0.5 {
		t.Errorf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Errorf("empty AUC = %v, want 0.5", got)
	}
	if got := AUC([]float64{1}, []bool{true, false}); got != 0.5 {
		t.Errorf("mismatched lengths AUC = %v, want 0.5", got)
	}
}

func TestAUCHandComputed(t *testing.T) {
	// scores: pos {0.9, 0.4}, neg {0.6, 0.1}.
	// Pairs: (0.9>0.6)✓ (0.9>0.1)✓ (0.4<0.6)✗ (0.4>0.1)✓ -> 3/4.
	scores := []float64{0.9, 0.4, 0.6, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 0.75 {
		t.Errorf("AUC = %v, want 0.75", got)
	}
}

func TestAUCOnConnections(t *testing.T) {
	d := buildEvalFixture(t)
	// Scorer that gives trust edges the top score: AUC 1.
	perfect := AUCOnConnections(d, func(from, to ratings.UserID) float64 {
		if d.HasTrustEdge(from, to) {
			return 1
		}
		return 0
	})
	if perfect != 1 {
		t.Errorf("perfect scorer AUC = %v, want 1", perfect)
	}
	constant := AUCOnConnections(d, func(from, to ratings.UserID) float64 { return 0.5 })
	if constant != 0.5 {
		t.Errorf("constant scorer AUC = %v, want 0.5", constant)
	}
}

func TestMeanPerUserAUC(t *testing.T) {
	d := buildEvalFixture(t)
	// Only r2 has both a trusted (w0) and an untrusted (w1) connection;
	// r3's single connection is single-class and must be skipped.
	perfect := MeanPerUserAUC(d, func(from, to ratings.UserID) float64 {
		if d.HasTrustEdge(from, to) {
			return 1
		}
		return 0
	})
	if perfect != 1 {
		t.Errorf("perfect per-user AUC = %v, want 1", perfect)
	}
	inverted := MeanPerUserAUC(d, func(from, to ratings.UserID) float64 {
		if d.HasTrustEdge(from, to) {
			return 0
		}
		return 1
	})
	if inverted != 0 {
		t.Errorf("inverted per-user AUC = %v, want 0", inverted)
	}
	// A dataset with no two-class user yields the uninformative 0.5.
	b := ratings.NewBuilder()
	b.AddUser("a")
	b.AddUser("b")
	if got := MeanPerUserAUC(b.Build(), func(from, to ratings.UserID) float64 { return 0 }); got != 0.5 {
		t.Errorf("degenerate per-user AUC = %v, want 0.5", got)
	}
}

// Property: AUC is invariant under strictly monotone transforms of the
// scores and lies in [0, 1].
func TestAUCMonotoneInvarianceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(60)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = float64(rng.IntN(8)) / 8 // ties included
			labels[i] = rng.Float64() < 0.4
		}
		base := AUC(scores, labels)
		if base < 0 || base > 1 {
			return false
		}
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(2*s) + 1
		}
		return math.Abs(AUC(transformed, labels)-base) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: flipping all labels maps AUC to 1 - AUC (when both classes
// are non-empty).
func TestAUCComplementQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 4 + rng.IntN(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		labels[0], labels[1] = true, false // both classes present
		for i := range scores {
			scores[i] = rng.Float64()
			if i > 1 {
				labels[i] = rng.Float64() < 0.5
			}
		}
		flipped := make([]bool, n)
		for i, l := range labels {
			flipped[i] = !l
		}
		return math.Abs(AUC(scores, labels)+AUC(scores, flipped)-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
