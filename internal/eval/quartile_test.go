package eval

import (
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

func TestQuartilesBasic(t *testing.T) {
	users := []ratings.UserID{0, 1, 2, 3, 4, 5, 6, 7}
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}
	designated := map[ratings.UserID]bool{0: true, 3: true, 7: true}
	q := Quartiles(users, scores, designated)
	// Ranks: user0 -> rank0 (Q1), user3 -> rank3 (floor(12/8)=Q2),
	// user7 -> rank7 (Q4).
	if q[0] != 1 || q[1] != 1 || q[2] != 0 || q[3] != 1 {
		t.Errorf("quartiles = %v, want [1 1 0 1]", q)
	}
	if q.Total() != 3 {
		t.Errorf("Total = %d, want 3", q.Total())
	}
}

func TestQuartilesTieBreakDeterministic(t *testing.T) {
	users := []ratings.UserID{5, 1, 9, 3}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	// All tied: order by user id ascending -> 1, 3, 5, 9.
	q := Quartiles(users, scores, map[ratings.UserID]bool{1: true})
	if q[0] != 1 {
		t.Errorf("user 1 should rank first among ties: %v", q)
	}
	q = Quartiles(users, scores, map[ratings.UserID]bool{9: true})
	if q[3] != 1 {
		t.Errorf("user 9 should rank last among ties: %v", q)
	}
}

func TestQuartilesEdgeCases(t *testing.T) {
	if q := Quartiles(nil, nil, nil); q.Total() != 0 {
		t.Error("empty input should count nothing")
	}
	// Mismatched lengths are treated as empty.
	if q := Quartiles([]ratings.UserID{1}, []float64{0.5, 0.4}, nil); q.Total() != 0 {
		t.Error("mismatched lengths should count nothing")
	}
	// Single user: rank 0 of 1 -> 0*4/1 = Q1.
	q := Quartiles([]ratings.UserID{7}, []float64{0.3}, map[ratings.UserID]bool{7: true})
	if q[0] != 1 {
		t.Errorf("single user should be Q1: %v", q)
	}
}

func TestNewQuartileReport(t *testing.T) {
	rows := []QuartileRow{
		{Category: "a", Ranked: 100, Designated: 10, Counts: QuartileCounts{9, 1, 0, 0}},
		{Category: "b", Ranked: 50, Designated: 5, Counts: QuartileCounts{4, 0, 1, 0}},
	}
	rep := NewQuartileReport(rows)
	if rep.TotalDesignated != 15 || rep.TotalQ1 != 13 {
		t.Errorf("totals = %d/%d, want 15/13", rep.TotalDesignated, rep.TotalQ1)
	}
	want := 13.0 / 15.0
	if got := rep.Q1Fraction(); got != want {
		t.Errorf("Q1Fraction = %v, want %v", got, want)
	}
	empty := NewQuartileReport(nil)
	if empty.Q1Fraction() != 0 {
		t.Error("empty report Q1Fraction should be 0")
	}
}

// Property: quartile counts total the number of designated users present,
// and each quartile holds at most ceil(n/4) + designated ties... simply:
// the sum across quartiles of ALL users is n, and designated counts never
// exceed quartile capacity.
func TestQuartilesPartitionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 1 + rng.IntN(100)
		users := make([]ratings.UserID, n)
		scores := make([]float64, n)
		all := make(map[ratings.UserID]bool, n)
		for i := range users {
			users[i] = ratings.UserID(i)
			scores[i] = float64(rng.IntN(5)) // heavy ties
			all[users[i]] = true
		}
		q := Quartiles(users, scores, all)
		if q.Total() != n {
			return false
		}
		// Quartile sizes must match the rank partition exactly.
		for qi := 0; qi < 4; qi++ {
			want := 0
			for rank := 0; rank < n; rank++ {
				bucket := rank * 4 / n
				if bucket > 3 {
					bucket = 3
				}
				if bucket == qi {
					want++
				}
			}
			if q[qi] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: designating higher-scored users concentrates them in earlier
// quartiles — the top ceil(n/4) scorers all land in Q1.
func TestQuartilesTopScorersQ1Quick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 4 + rng.IntN(60)
		users := make([]ratings.UserID, n)
		scores := make([]float64, n)
		for i := range users {
			users[i] = ratings.UserID(i)
			scores[i] = rng.Float64()
		}
		// Designate the single top scorer.
		best := 0
		for i, s := range scores {
			if s > scores[best] {
				best = i
			}
		}
		q := Quartiles(users, scores, map[ratings.UserID]bool{users[best]: true})
		return q[0] == 1 && q.Total() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
