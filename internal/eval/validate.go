package eval

import (
	"math"

	"weboftrust/internal/core"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
)

// ValidationMetrics holds the three Table 4 metrics plus the raw counts
// they are computed from. All counting is restricted to pairs with a
// direct connection (R_ij = 1), exactly as in Section IV-C: outside R the
// absence of a trust edge is unknowable rather than negative.
type ValidationMetrics struct {
	// Recall = #(pred ∧ R ∧ T) / #(R ∧ T).
	Recall float64
	// PrecisionInR = #(pred ∧ R ∧ T) / #(pred ∧ R).
	PrecisionInR float64
	// NonTrustAsTrustRate = #(pred ∧ R ∧ ¬T) / #(R ∧ ¬T).
	NonTrustAsTrustRate float64

	// TruePositives counts pred ∧ R ∧ T; FalsePositivesInR counts
	// pred ∧ R ∧ ¬T; PredictedInR their sum. TrustInR counts R ∧ T and
	// NonTrustInR counts R ∧ ¬T.
	TruePositives     int
	FalsePositivesInR int
	PredictedInR      int
	TrustInR          int
	NonTrustInR       int
	// PredictedTotal counts every predicted edge, in or out of R (the
	// derived model predicts far beyond R; see the density analysis).
	PredictedTotal int
}

// ValidateTrust computes the Table 4 metrics for a binary prediction
// matrix against the dataset's explicit web of trust.
func ValidateTrust(d *ratings.Dataset, pred *mat.CSR) ValidationMetrics {
	var m ValidationMetrics
	m.PredictedTotal = pred.NNZ()
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			trusted := d.HasTrustEdge(u, c.To)
			predicted := pred.Has(int(u), int(c.To))
			if trusted {
				m.TrustInR++
				if predicted {
					m.TruePositives++
				}
			} else {
				m.NonTrustInR++
				if predicted {
					m.FalsePositivesInR++
				}
			}
		})
	}
	m.PredictedInR = m.TruePositives + m.FalsePositivesInR
	if m.TrustInR > 0 {
		m.Recall = float64(m.TruePositives) / float64(m.TrustInR)
	}
	if m.PredictedInR > 0 {
		m.PrecisionInR = float64(m.TruePositives) / float64(m.PredictedInR)
	}
	if m.NonTrustInR > 0 {
		m.NonTrustAsTrustRate = float64(m.FalsePositivesInR) / float64(m.NonTrustInR)
	}
	return m
}

// DensityReport is the content of Fig. 3: how large and dense the derived
// matrix T̂, the direct-connection matrix R and the explicit trust matrix T
// are, and how T splits across R.
type DensityReport struct {
	Users int
	// DerivedNNZ counts pairs (i,j), i≠j, with T̂_ij > 0; ConnectionNNZ
	// the non-zero cells of R; TrustNNZ the explicit trust edges.
	DerivedNNZ    int
	ConnectionNNZ int
	TrustNNZ      int
	// TrustInR = |T∩R|, TrustOutsideR = |T−R|.
	TrustInR      int
	TrustOutsideR int
	// Densities are fractions of the U*(U-1) possible directed pairs.
	DerivedDensity    float64
	ConnectionDensity float64
	TrustDensity      float64
}

// Density computes the Fig. 3 comparison for a dataset and its derived
// trust matrix.
func Density(d *ratings.Dataset, dt *core.DerivedTrust) DensityReport {
	rep := DensityReport{
		Users:         d.NumUsers(),
		DerivedNNZ:    dt.TotalSupport(),
		ConnectionNNZ: d.TotalConnections(),
		TrustNNZ:      d.NumTrustEdges(),
	}
	for _, e := range d.TrustEdges() {
		if d.HasConnection(e.From, e.To) {
			rep.TrustInR++
		} else {
			rep.TrustOutsideR++
		}
	}
	pairs := float64(rep.Users) * float64(rep.Users-1)
	if pairs > 0 {
		rep.DerivedDensity = float64(rep.DerivedNNZ) / pairs
		rep.ConnectionDensity = float64(rep.ConnectionNNZ) / pairs
		rep.TrustDensity = float64(rep.TrustNNZ) / pairs
	}
	return rep
}

// ValueComparison supports the paper's interpretation of the derived
// model's false positives: among predicted-trust pairs inside R, compare
// the T̂ values of pairs that carry an explicit trust edge (R∩T) against
// pairs that do not (R−T). The paper observes the R−T group has *higher*
// mean and minimum T̂ — i.e. the model flags connections likely to become
// trust.
type ValueComparison struct {
	// CountInRT / MeanInRT / MinInRT describe predicted pairs in R∩T.
	CountInRT int
	MeanInRT  float64
	MinInRT   float64
	// CountInRNotT / MeanInRNotT / MinInRNotT describe predicted pairs
	// in R−T.
	CountInRNotT int
	MeanInRNotT  float64
	MinInRNotT   float64
}

// CompareValues computes the ValueComparison for a prediction matrix.
func CompareValues(d *ratings.Dataset, dt *core.DerivedTrust, pred *mat.CSR) ValueComparison {
	vc := ValueComparison{MinInRT: math.Inf(1), MinInRNotT: math.Inf(1)}
	var sumRT, sumRNotT float64
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			if !pred.Has(int(u), int(c.To)) {
				return
			}
			v := dt.Value(u, c.To)
			if d.HasTrustEdge(u, c.To) {
				vc.CountInRT++
				sumRT += v
				if v < vc.MinInRT {
					vc.MinInRT = v
				}
			} else {
				vc.CountInRNotT++
				sumRNotT += v
				if v < vc.MinInRNotT {
					vc.MinInRNotT = v
				}
			}
		})
	}
	if vc.CountInRT > 0 {
		vc.MeanInRT = sumRT / float64(vc.CountInRT)
	} else {
		vc.MinInRT = 0
	}
	if vc.CountInRNotT > 0 {
		vc.MeanInRNotT = sumRNotT / float64(vc.CountInRNotT)
	} else {
		vc.MinInRNotT = 0
	}
	return vc
}
