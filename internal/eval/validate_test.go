package eval

import (
	"math"
	"testing"

	"weboftrust/internal/core"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

// buildEvalFixture creates a small community with known R and T structure:
//
//	w0, w1 write movie reviews; raters r2, r3 rate them.
//	R: r2->{w0,w1}, r3->{w0}
//	T: r2->w0 (in R), r3->w1 (outside R)
func buildEvalFixture(t *testing.T) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	w0 := b.AddUser("w0")
	w1 := b.AddUser("w1")
	r2 := b.AddUser("r2")
	r3 := b.AddUser("r3")
	var revs []ratings.ReviewID
	for _, w := range []ratings.UserID{w0, w1} {
		oid, err := b.AddObject(movies, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(w, oid)
		if err != nil {
			t.Fatal(err)
		}
		revs = append(revs, rid)
	}
	for _, c := range []struct {
		rater ratings.UserID
		rev   ratings.ReviewID
		v     float64
	}{
		{r2, revs[0], 1.0}, {r2, revs[1], 0.6}, {r3, revs[0], 0.8},
	} {
		if err := b.AddRating(c.rater, c.rev, c.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddTrust(r2, w0); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(r3, w1); err != nil { // T−R edge
		t.Fatal(err)
	}
	return b.Build()
}

func predMatrix(t *testing.T, numU int, edges ...[2]int) *mat.CSR {
	t.Helper()
	b := mat.NewBuilder(numU, numU)
	for _, e := range edges {
		b.Set(e[0], e[1], 1)
	}
	return b.Build()
}

func TestValidateTrustPerfect(t *testing.T) {
	d := buildEvalFixture(t)
	// Predict exactly the in-R trust edge.
	m := ValidateTrust(d, predMatrix(t, 4, [2]int{2, 0}))
	if m.Recall != 1 || m.PrecisionInR != 1 || m.NonTrustAsTrustRate != 0 {
		t.Errorf("metrics = %+v, want perfect", m)
	}
	if m.TrustInR != 1 || m.NonTrustInR != 2 {
		t.Errorf("counts = %+v, want TrustInR=1 NonTrustInR=2", m)
	}
}

func TestValidateTrustMixed(t *testing.T) {
	d := buildEvalFixture(t)
	// Predict r2->w1 (in R, non-trust) and r2->w0 (in R, trust) and
	// r3->w1 (outside R — ignored by the R-restricted metrics).
	m := ValidateTrust(d, predMatrix(t, 4, [2]int{2, 1}, [2]int{2, 0}, [2]int{3, 1}))
	if m.Recall != 1 {
		t.Errorf("recall = %v, want 1", m.Recall)
	}
	if m.PrecisionInR != 0.5 {
		t.Errorf("precision = %v, want 0.5", m.PrecisionInR)
	}
	if m.NonTrustAsTrustRate != 0.5 {
		t.Errorf("rate = %v, want 0.5 (1 of 2 non-trust pairs)", m.NonTrustAsTrustRate)
	}
	if m.PredictedTotal != 3 || m.PredictedInR != 2 {
		t.Errorf("predicted counts wrong: %+v", m)
	}
}

func TestValidateTrustEmptyPrediction(t *testing.T) {
	d := buildEvalFixture(t)
	m := ValidateTrust(d, predMatrix(t, 4))
	if m.Recall != 0 || m.PrecisionInR != 0 || m.NonTrustAsTrustRate != 0 {
		t.Errorf("empty prediction should zero all metrics: %+v", m)
	}
}

func TestDensityReport(t *testing.T) {
	d := buildEvalFixture(t)
	art, err := core.DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	rep := Density(d, art.Trust)
	if rep.Users != 4 {
		t.Errorf("Users = %d", rep.Users)
	}
	if rep.ConnectionNNZ != 3 {
		t.Errorf("ConnectionNNZ = %d, want 3", rep.ConnectionNNZ)
	}
	if rep.TrustNNZ != 2 || rep.TrustInR != 1 || rep.TrustOutsideR != 1 {
		t.Errorf("trust split wrong: %+v", rep)
	}
	// Derived support: every user has affinity (writers through writing,
	// raters through rating) and the experts are w0 and w1, so each user
	// derives trust toward both writers except themselves:
	// r2->{w0,w1}, r3->{w0,w1}, w0->{w1}, w1->{w0} = 6 pairs.
	if rep.DerivedNNZ != 6 {
		t.Errorf("DerivedNNZ = %d, want 6", rep.DerivedNNZ)
	}
	pairs := 4.0 * 3.0
	if math.Abs(rep.DerivedDensity-float64(rep.DerivedNNZ)/pairs) > 1e-12 {
		t.Errorf("DerivedDensity = %v", rep.DerivedDensity)
	}
	// The paper's headline: the derived matrix is denser than T and R.
	if rep.DerivedNNZ <= rep.TrustNNZ || rep.DerivedNNZ <= rep.ConnectionNNZ {
		t.Errorf("derived matrix should be densest here: %+v", rep)
	}
}

func TestCompareValues(t *testing.T) {
	d := buildEvalFixture(t)
	art, err := core.DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	// Predict both of r2's connections.
	pred := predMatrix(t, 4, [2]int{2, 0}, [2]int{2, 1})
	vc := CompareValues(d, art.Trust, pred)
	if vc.CountInRT != 1 || vc.CountInRNotT != 1 {
		t.Fatalf("counts = %+v", vc)
	}
	wantRT := art.Trust.Value(2, 0)
	wantRNotT := art.Trust.Value(2, 1)
	if math.Abs(vc.MeanInRT-wantRT) > 1e-12 || math.Abs(vc.MinInRT-wantRT) > 1e-12 {
		t.Errorf("RT stats = %v/%v, want %v", vc.MeanInRT, vc.MinInRT, wantRT)
	}
	if math.Abs(vc.MeanInRNotT-wantRNotT) > 1e-12 {
		t.Errorf("RNotT mean = %v, want %v", vc.MeanInRNotT, wantRNotT)
	}
}

func TestCompareValuesEmpty(t *testing.T) {
	d := buildEvalFixture(t)
	art, err := core.DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	vc := CompareValues(d, art.Trust, predMatrix(t, 4))
	if vc.CountInRT != 0 || vc.CountInRNotT != 0 || vc.MinInRT != 0 || vc.MinInRNotT != 0 {
		t.Errorf("empty prediction comparison should be zeroed: %+v", vc)
	}
}

// Integration: on a synthetic community, the full Table 4 protocol must
// reproduce the paper's shape — derived recall well above baseline recall,
// baseline false-trust rate below derived.
func TestTable4ShapeIntegration(t *testing.T) {
	cfg := synth.Small()
	cfg.Seed = 7
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	k := core.Generosity(d)
	predT, err := core.BinarizeDerived(art.Trust, k)
	if err != nil {
		t.Fatal(err)
	}
	predB, err := core.BinarizeSparse(core.BaselineMatrix(d), k)
	if err != nil {
		t.Fatal(err)
	}
	mT := ValidateTrust(d, predT)
	mB := ValidateTrust(d, predB)
	if mT.Recall <= mB.Recall {
		t.Errorf("derived recall %v should exceed baseline %v", mT.Recall, mB.Recall)
	}
	if mT.Recall < 0.5 {
		t.Errorf("derived recall %v unexpectedly low", mT.Recall)
	}
	if mB.NonTrustAsTrustRate >= mT.NonTrustAsTrustRate {
		t.Errorf("baseline false-trust rate %v should be below derived %v",
			mB.NonTrustAsTrustRate, mT.NonTrustAsTrustRate)
	}
	// Baseline's per-user selection size equals its in-R prediction count,
	// so precision ~= recall (the paper shows 0.308/0.308).
	if math.Abs(mB.Recall-mB.PrecisionInR) > 0.15 {
		t.Errorf("baseline recall %v and precision %v should be close", mB.Recall, mB.PrecisionInR)
	}
}
