// Package eval implements the paper's evaluation protocols: the quartile
// validation of the reputation models against editorial picks (Tables 2-3),
// the trust-connectivity validation of the binarised derived matrix against
// the explicit web of trust (Table 4), the density comparison of Fig. 3,
// and the T̂-value analysis the paper uses to interpret its false
// positives.
package eval

import (
	"sort"

	"weboftrust/internal/ratings"
)

// QuartileCounts is how many members of a designated group fall into each
// reputation quartile (index 0 = Q1, the top 25%).
type QuartileCounts [4]int

// Total returns the number of designated users ranked.
func (q QuartileCounts) Total() int { return q[0] + q[1] + q[2] + q[3] }

// Quartiles ranks the scored users (descending score, ties broken by
// ascending user id — fully deterministic) and counts how many of the
// designated users land in each quartile. users and scores are parallel.
// Quartile of rank p (0-based) among n is floor(4p/n).
func Quartiles(users []ratings.UserID, scores []float64, designated map[ratings.UserID]bool) QuartileCounts {
	var out QuartileCounts
	n := len(users)
	if n == 0 || len(scores) != n {
		return out
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := scores[order[a]], scores[order[b]]
		if sa != sb {
			return sa > sb
		}
		return users[order[a]] < users[order[b]]
	})
	for rank, idx := range order {
		if !designated[users[idx]] {
			continue
		}
		q := rank * 4 / n
		if q > 3 {
			q = 3
		}
		out[q]++
	}
	return out
}

// QuartileRow is one category's line of Table 2 or Table 3.
type QuartileRow struct {
	// Category is the genre name.
	Category string
	// Ranked is how many users were ranked in this category (raters for
	// Table 2, writers for Table 3).
	Ranked int
	// Designated is how many editorial picks are active in the category
	// (the paper re-selects Advisors per sub-category by dropping those
	// who never rated there).
	Designated int
	// Counts is the per-quartile distribution of the designated users.
	Counts QuartileCounts
}

// QuartileReport aggregates the per-category rows plus the overall line.
type QuartileReport struct {
	Rows []QuartileRow
	// TotalDesignated and TotalQ1 give the paper's "Overall" row; the
	// headline number is Q1Fraction.
	TotalDesignated int
	TotalQ1         int
}

// Q1Fraction returns the fraction of designated users in the top quartile
// across all categories (98.4% for raters and 89.4% for writers in the
// paper), or 0 when nothing was designated.
func (r *QuartileReport) Q1Fraction() float64 {
	if r.TotalDesignated == 0 {
		return 0
	}
	return float64(r.TotalQ1) / float64(r.TotalDesignated)
}

// NewQuartileReport assembles a report from per-category rows.
func NewQuartileReport(rows []QuartileRow) *QuartileReport {
	rep := &QuartileReport{Rows: rows}
	for _, row := range rows {
		rep.TotalDesignated += row.Counts.Total()
		rep.TotalQ1 += row.Counts[0]
	}
	return rep
}
