package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/core"
	"weboftrust/internal/eval"
	"weboftrust/internal/ratings"
	"weboftrust/internal/tables"
)

// Table4Result reproduces Table 4: the validation of the derived trust
// matrix T̂ against the explicit web of trust, compared with the baseline
// matrix B (average rating i gave to j's reviews), after per-user
// generosity binarisation. It also carries the paper's follow-up analysis:
// the T̂ values of predicted pairs in (R−T) versus (R∩T).
type Table4Result struct {
	Derived  eval.ValidationMetrics
	Baseline eval.ValidationMetrics
	Values   eval.ValueComparison
	// MeanGenerosity is the average k_i used for the binarisation.
	MeanGenerosity float64
	// DerivedAUC and BaselineAUC compare the *continuous* scores over the
	// R support without any binarisation — the threshold-free companion
	// to the paper's protocol. The pooled variants mix all users' scores
	// (penalising per-user scale differences); the per-user variants
	// average each user's own AUC, matching how the binarisation consumes
	// the scores.
	DerivedAUC         float64
	BaselineAUC        float64
	DerivedPerUserAUC  float64
	BaselinePerUserAUC float64
}

// RunTable4 executes the full Table 4 protocol on the environment.
func RunTable4(env *Env) (*Table4Result, error) {
	d := env.Dataset
	k := core.Generosity(d)
	predT, err := core.BinarizeDerived(env.Artifacts.Trust, k)
	if err != nil {
		return nil, err
	}
	baseline := core.BaselineMatrix(d)
	predB, err := core.BinarizeSparse(baseline, k)
	if err != nil {
		return nil, err
	}
	var meanK float64
	for _, v := range k {
		meanK += v
	}
	if len(k) > 0 {
		meanK /= float64(len(k))
	}
	return &Table4Result{
		Derived:        eval.ValidateTrust(d, predT),
		Baseline:       eval.ValidateTrust(d, predB),
		Values:         eval.CompareValues(d, env.Artifacts.Trust, predT),
		MeanGenerosity: meanK,
		DerivedAUC: eval.AUCOnConnections(d, func(from, to ratings.UserID) float64 {
			return env.Artifacts.Trust.Value(from, to)
		}),
		BaselineAUC: eval.AUCOnConnections(d, func(from, to ratings.UserID) float64 {
			return baseline.At(int(from), int(to))
		}),
		DerivedPerUserAUC: eval.MeanPerUserAUC(d, func(from, to ratings.UserID) float64 {
			return env.Artifacts.Trust.Value(from, to)
		}),
		BaselinePerUserAUC: eval.MeanPerUserAUC(d, func(from, to ratings.UserID) float64 {
			return baseline.At(int(from), int(to))
		}),
	}, nil
}

// Render prints the validation table plus the value analysis.
func (r *Table4Result) Render(w io.Writer) error {
	t := tables.New("Model", "Recall", "Precision", "Non-trust-as-trust rate").
		Title("TABLE 4 - THE VALIDATION RESULTS FOR TRUST MATRIX").
		AlignRight(1, 2, 3)
	t.AddRow("T̂ (our model)", r.Derived.Recall, r.Derived.PrecisionInR, r.Derived.NonTrustAsTrustRate)
	t.AddRow("B (a baseline)", r.Baseline.Recall, r.Baseline.PrecisionInR, r.Baseline.NonTrustAsTrustRate)
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"(paper: T̂ = 0.857 / 0.245 / 0.513; B = 0.308 / 0.308 / 0.134; mean k_i here = %.3f)\n"+
			"Threshold-free AUC over R pairs: pooled T̂ = %.3f, B = %.3f; per-user T̂ = %.3f, B = %.3f.\n",
		r.MeanGenerosity, r.DerivedAUC, r.BaselineAUC,
		r.DerivedPerUserAUC, r.BaselinePerUserAUC); err != nil {
		return err
	}
	v := r.Values
	t2 := tables.New("Predicted group", "Pairs", "Mean T̂", "Min T̂").
		Title("T̂ values of predicted pairs (the paper's false-positive analysis)").
		AlignRight(1, 2, 3)
	t2.AddRow("in T ∩ R", v.CountInRT, v.MeanInRT, fmt.Sprintf("%.4f", v.MinInRT))
	t2.AddRow("in R − T", v.CountInRNotT, v.MeanInRNotT, fmt.Sprintf("%.4f", v.MinInRNotT))
	if err := t2.Render(w); err != nil {
		return err
	}
	verdict := "NOT reproduced"
	if v.MeanInRNotT >= v.MeanInRT {
		verdict = "reproduced"
	}
	_, err := fmt.Fprintf(w,
		"Paper's observation (R−T values >= R∩T values, i.e. future trust): mean %s.\n", verdict)
	return err
}
