// Package experiments reproduces the paper's evaluation section: one
// runner per table and figure (Tables 2-4, Fig. 3), the future-work
// propagation comparison the conclusion proposes, and the ablations of the
// design choices DESIGN.md calls out (A-1..A-4). Every runner is
// deterministic given its Suite configuration and renders a paper-style
// text table.
package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

// Suite fixes the dataset and pipeline configuration shared by all
// experiment runners.
type Suite struct {
	// Synth configures the synthetic Epinions-like community (the
	// paper's crawl substitute; see DESIGN.md §2).
	Synth synth.Config
	// Pipeline configures the three framework steps.
	Pipeline core.Config
}

// DefaultSuite returns the configuration the experiment binary runs: the
// paper-scale community and the paper's pipeline settings.
func DefaultSuite() Suite {
	return Suite{Synth: synth.PaperScale(), Pipeline: core.DefaultConfig()}
}

// Env bundles the generated dataset, ground truth and pipeline artifacts
// so several experiments can share one expensive setup.
type Env struct {
	Suite     Suite
	Dataset   *ratings.Dataset
	Truth     *synth.GroundTruth
	Artifacts *core.Artifacts
}

// Setup generates the dataset and runs the pipeline once.
func (s Suite) Setup() (*Env, error) {
	d, gt, err := synth.Generate(s.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate: %w", err)
	}
	art, err := s.Pipeline.Run(d)
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline: %w", err)
	}
	return &Env{Suite: s, Dataset: d, Truth: gt, Artifacts: art}, nil
}

// Result is the common interface of every experiment's output: it renders
// a human-readable report.
type Result interface {
	Render(w io.Writer) error
}

// designatedIn returns the subset of picks active in category c according
// to the activity predicate, as a membership set.
func designatedIn(picks []ratings.UserID, active func(ratings.UserID) bool) map[ratings.UserID]bool {
	set := make(map[ratings.UserID]bool)
	for _, u := range picks {
		if active(u) {
			set[u] = true
		}
	}
	return set
}
