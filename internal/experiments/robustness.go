package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/core"
	"weboftrust/internal/eval"
	"weboftrust/internal/stats"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

// RobustnessResult is A-5: the Table 4 protocol repeated over independent
// seeds of the synthetic community, reporting the mean and standard
// deviation of every headline metric. The paper evaluates one crawl; this
// sweep establishes that the reproduction's shape claims are not an
// artifact of a particular random draw.
type RobustnessResult struct {
	Seeds []uint64
	// Per-seed series, parallel to Seeds.
	DerivedRecall  []float64
	BaselineRecall []float64
	DerivedRate    []float64
	BaselineRate   []float64
	RaterQ1        []float64
	WriterQ1       []float64
}

// RunRobustness executes the sweep. Each seed regenerates the community
// and re-runs the full pipeline; the env's suite supplies everything but
// the seed.
func RunRobustness(suite Suite, seeds []uint64) (*RobustnessResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: robustness needs at least one seed")
	}
	res := &RobustnessResult{Seeds: seeds}
	for _, seed := range seeds {
		cfg := suite.Synth
		cfg.Seed = seed
		d, gt, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		art, err := suite.Pipeline.Run(d)
		if err != nil {
			return nil, err
		}
		k := core.Generosity(d)
		predT, err := core.BinarizeDerived(art.Trust, k)
		if err != nil {
			return nil, err
		}
		predB, err := core.BinarizeSparse(core.BaselineMatrix(d), k)
		if err != nil {
			return nil, err
		}
		mT := eval.ValidateTrust(d, predT)
		mB := eval.ValidateTrust(d, predB)
		res.DerivedRecall = append(res.DerivedRecall, mT.Recall)
		res.BaselineRecall = append(res.BaselineRecall, mB.Recall)
		res.DerivedRate = append(res.DerivedRate, mT.NonTrustAsTrustRate)
		res.BaselineRate = append(res.BaselineRate, mB.NonTrustAsTrustRate)

		t2, err := table2From(d, gt, art.RiggsResults)
		if err != nil {
			return nil, err
		}
		t3, err := table3From(d, gt, art.RiggsResults, suite.Pipeline.Reputation)
		if err != nil {
			return nil, err
		}
		res.RaterQ1 = append(res.RaterQ1, t2.Report.Q1Fraction())
		res.WriterQ1 = append(res.WriterQ1, t3.Report.Q1Fraction())
	}
	return res, nil
}

// AlwaysWins reports whether the derived model beat the baseline's recall
// on every seed — the headline ordering's stability.
func (r *RobustnessResult) AlwaysWins() bool {
	for i := range r.Seeds {
		if r.DerivedRecall[i] <= r.BaselineRecall[i] {
			return false
		}
	}
	return true
}

// Render prints the sweep summary.
func (r *RobustnessResult) Render(w io.Writer) error {
	t := tables.New("Metric", "Mean", "StdDev", "Min", "Max").
		Title(fmt.Sprintf("A-5 - ROBUSTNESS OVER %d SEEDS", len(r.Seeds))).
		AlignRight(1, 2, 3, 4)
	row := func(name string, xs []float64) {
		t.AddRow(name, stats.Mean(xs), stats.StdDev(xs), stats.Min(xs), stats.Max(xs))
	}
	row("T̂ recall", r.DerivedRecall)
	row("B recall", r.BaselineRecall)
	row("T̂ non-trust rate", r.DerivedRate)
	row("B non-trust rate", r.BaselineRate)
	row("rater Q1 fraction", r.RaterQ1)
	row("writer Q1 fraction", r.WriterQ1)
	if err := t.Render(w); err != nil {
		return err
	}
	verdict := "on every seed"
	if !r.AlwaysWins() {
		verdict = "NOT on every seed"
	}
	_, err := fmt.Fprintf(w, "Derived model beats baseline recall %s.\n", verdict)
	return err
}
