package experiments

import (
	"io"

	"weboftrust/internal/eval"
	"weboftrust/internal/ratings"
	"weboftrust/internal/reputation"
	"weboftrust/internal/riggs"
	"weboftrust/internal/synth"
)

// Table3Result reproduces Table 3: per sub-category, rank review writers
// by their reputation (eq. 3) and count the simulated Top Reviewers per
// quartile. The paper reports 89.4% in Q1 overall — lower than the raters'
// model but still validating.
type Table3Result struct {
	Report *eval.QuartileReport
}

// RunTable3 executes the Table 3 protocol with the env's pipeline
// configuration.
func RunTable3(env *Env) (*Table3Result, error) {
	return table3From(env.Dataset, env.Truth, env.Artifacts.RiggsResults, env.Suite.Pipeline.Reputation)
}

// RunTable3WithOptions executes Table 3 with specific Riggs results and
// reputation options (used by the ablations).
func RunTable3WithOptions(env *Env, results []*riggs.CategoryResult, opts reputation.Options) (*Table3Result, error) {
	return table3From(env.Dataset, env.Truth, results, opts)
}

func table3From(d *ratings.Dataset, gt *synth.GroundTruth, results []*riggs.CategoryResult, opts reputation.Options) (*Table3Result, error) {
	rows := make([]eval.QuartileRow, 0, d.NumCategories())
	for c := 0; c < d.NumCategories(); c++ {
		cw, err := opts.Writers(d, results[c], ratings.CategoryID(c))
		if err != nil {
			return nil, err
		}
		designated := designatedIn(gt.TopReviewers, func(u ratings.UserID) bool {
			_, active := cw.ReputationOf(u)
			return active
		})
		rows = append(rows, eval.QuartileRow{
			Category:   d.CategoryName(ratings.CategoryID(c)),
			Ranked:     len(cw.Writers),
			Designated: len(designated),
			Counts:     eval.Quartiles(cw.Writers, cw.Reputation, designated),
		})
	}
	return &Table3Result{Report: eval.NewQuartileReport(rows)}, nil
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render(w io.Writer) error {
	return renderQuartileTable(w,
		"TABLE 3 - THE PERFORMANCE OF REVIEW WRITERS' REPUTATION MODEL",
		"Writers", r.Report)
}
