package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/affinity"
	"weboftrust/internal/core"
	"weboftrust/internal/eval"
	"weboftrust/internal/reputation"
	"weboftrust/internal/tables"
)

// AblationDiscountResult is A-1: the experience discount (1 − 1/(n+1)) of
// eqs. 2-3 toggled off, measured by the Table 2/3 Q1 fractions. Without
// the discount a one-lucky-review writer ties a prolific expert, so the
// editorial picks should sink out of Q1.
type AblationDiscountResult struct {
	WithDiscount    QuartilePair
	WithoutDiscount QuartilePair
}

// QuartilePair carries the two headline Q1 fractions.
type QuartilePair struct {
	RaterQ1  float64
	WriterQ1 float64
}

// RunAblationDiscount executes A-1.
func RunAblationDiscount(env *Env) (*AblationDiscountResult, error) {
	out := &AblationDiscountResult{}
	for _, withDiscount := range []bool{true, false} {
		model := env.Suite.Pipeline.Riggs
		model.DiscountExperience = withDiscount
		results, err := model.SolveAll(env.Dataset)
		if err != nil {
			return nil, err
		}
		t2, err := table2From(env.Dataset, env.Truth, results)
		if err != nil {
			return nil, err
		}
		t3, err := table3From(env.Dataset, env.Truth, results,
			reputation.Options{DiscountExperience: withDiscount})
		if err != nil {
			return nil, err
		}
		pair := QuartilePair{RaterQ1: t2.Report.Q1Fraction(), WriterQ1: t3.Report.Q1Fraction()}
		if withDiscount {
			out.WithDiscount = pair
		} else {
			out.WithoutDiscount = pair
		}
	}
	return out, nil
}

// Render prints A-1.
func (r *AblationDiscountResult) Render(w io.Writer) error {
	t := tables.New("Variant", "Rater Q1 fraction", "Writer Q1 fraction").
		Title("A-1 - ABLATION: EXPERIENCE DISCOUNT (1 - 1/(n+1))").
		AlignRight(1, 2)
	t.AddRow("with discount (paper)", tables.Percent(r.WithDiscount.RaterQ1), tables.Percent(r.WithDiscount.WriterQ1))
	t.AddRow("without discount", tables.Percent(r.WithoutDiscount.RaterQ1), tables.Percent(r.WithoutDiscount.WriterQ1))
	return t.Render(w)
}

// AblationIterationResult is A-2: a single unweighted quality pass versus
// the converged quality/reputation fixed point, measured on the Table 2
// protocol plus the iteration counts actually needed.
type AblationIterationResult struct {
	SinglePassQ1 float64
	ConvergedQ1  float64
	// MeanIterations is the average fixed-point rounds to convergence
	// across categories; MaxIterations the worst category.
	MeanIterations float64
	MaxIterations  int
}

// RunAblationIteration executes A-2.
func RunAblationIteration(env *Env) (*AblationIterationResult, error) {
	out := &AblationIterationResult{}

	single := env.Suite.Pipeline.Riggs
	single.MaxIter = 1
	singleRes, err := single.SolveAll(env.Dataset)
	if err != nil {
		return nil, err
	}
	t2, err := table2From(env.Dataset, env.Truth, singleRes)
	if err != nil {
		return nil, err
	}
	out.SinglePassQ1 = t2.Report.Q1Fraction()

	convRes := env.Artifacts.RiggsResults
	t2c, err := table2From(env.Dataset, env.Truth, convRes)
	if err != nil {
		return nil, err
	}
	out.ConvergedQ1 = t2c.Report.Q1Fraction()
	total := 0
	for _, cr := range convRes {
		total += cr.Iterations
		if cr.Iterations > out.MaxIterations {
			out.MaxIterations = cr.Iterations
		}
	}
	if len(convRes) > 0 {
		out.MeanIterations = float64(total) / float64(len(convRes))
	}
	return out, nil
}

// Render prints A-2.
func (r *AblationIterationResult) Render(w io.Writer) error {
	t := tables.New("Variant", "Rater Q1 fraction").
		Title("A-2 - ABLATION: RIGGS FIXED POINT vs SINGLE UNWEIGHTED PASS").
		AlignRight(1)
	t.AddRow("single pass (plain averages)", tables.Percent(r.SinglePassQ1))
	t.AddRow("converged fixed point (paper)", tables.Percent(r.ConvergedQ1))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "fixed point iterations: mean %.1f, max %d\n",
		r.MeanIterations, r.MaxIterations)
	return err
}

// AblationAffinityResult is A-3: the affinity blend of eq. 4 versus its
// single-signal variants, measured on the Table 4 protocol.
type AblationAffinityResult struct {
	Rows []AffinityRow
}

// AffinityRow is one affinity mode's Table 4 metrics.
type AffinityRow struct {
	Mode    affinity.Mode
	Metrics eval.ValidationMetrics
}

// RunAblationAffinity executes A-3.
func RunAblationAffinity(env *Env) (*AblationAffinityResult, error) {
	out := &AblationAffinityResult{}
	k := core.Generosity(env.Dataset)
	for _, mode := range []affinity.Mode{affinity.Blend, affinity.RatingsOnly, affinity.WritesOnly} {
		a, err := affinity.Matrix(env.Dataset, mode)
		if err != nil {
			return nil, err
		}
		dt, err := core.NewDerivedTrust(a, env.Artifacts.Expertise)
		if err != nil {
			return nil, err
		}
		pred, err := core.BinarizeDerived(dt, k)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AffinityRow{
			Mode:    mode,
			Metrics: eval.ValidateTrust(env.Dataset, pred),
		})
	}
	return out, nil
}

// Render prints A-3.
func (r *AblationAffinityResult) Render(w io.Writer) error {
	t := tables.New("Affinity mode", "Recall", "Precision", "Non-trust-as-trust rate").
		Title("A-3 - ABLATION: AFFINITY SIGNAL (eq. 4 blend vs single signals)").
		AlignRight(1, 2, 3)
	for _, row := range r.Rows {
		t.AddRow(row.Mode.String(), row.Metrics.Recall, row.Metrics.PrecisionInR, row.Metrics.NonTrustAsTrustRate)
	}
	return t.Render(w)
}

// AblationBinarizeResult is A-4: the paper's per-user generosity top-k
// binarisation versus a global threshold sweep, measured on the Table 4
// protocol.
type AblationBinarizeResult struct {
	PerUser    eval.ValidationMetrics
	Thresholds []ThresholdRow
}

// ThresholdRow is one global threshold's metrics.
type ThresholdRow struct {
	Tau     float64
	Metrics eval.ValidationMetrics
}

// RunAblationBinarize executes A-4 with the given threshold sweep.
func RunAblationBinarize(env *Env, taus []float64) (*AblationBinarizeResult, error) {
	out := &AblationBinarizeResult{}
	k := core.Generosity(env.Dataset)
	pred, err := core.BinarizeDerived(env.Artifacts.Trust, k)
	if err != nil {
		return nil, err
	}
	out.PerUser = eval.ValidateTrust(env.Dataset, pred)
	for _, tau := range taus {
		// The same policy-driven entry point the pipeline's web artifact
		// and the serving facade use, so the ablation measures exactly
		// the graph a threshold-configured deployment would serve.
		predTau, err := core.Binarize(env.Artifacts.Trust,
			core.WebPolicy{Policy: core.GlobalThreshold, Tau: tau}, nil, 0)
		if err != nil {
			return nil, err
		}
		out.Thresholds = append(out.Thresholds, ThresholdRow{
			Tau:     tau,
			Metrics: eval.ValidateTrust(env.Dataset, predTau),
		})
	}
	return out, nil
}

// Render prints A-4.
func (r *AblationBinarizeResult) Render(w io.Writer) error {
	t := tables.New("Policy", "Recall", "Precision", "Non-trust-as-trust rate").
		Title("A-4 - ABLATION: PER-USER GENEROSITY TOP-K vs GLOBAL THRESHOLD").
		AlignRight(1, 2, 3)
	t.AddRow("per-user k_i (paper)", r.PerUser.Recall, r.PerUser.PrecisionInR, r.PerUser.NonTrustAsTrustRate)
	t.AddSeparator()
	for _, row := range r.Thresholds {
		t.AddRow(fmt.Sprintf("tau = %.2f", row.Tau),
			row.Metrics.Recall, row.Metrics.PrecisionInR, row.Metrics.NonTrustAsTrustRate)
	}
	return t.Render(w)
}
