package experiments

import (
	"strings"
	"testing"

	"weboftrust/internal/core"
	"weboftrust/internal/synth"
)

// testSuite is a fast suite for the experiment tests.
func testSuite() Suite {
	cfg := synth.Small()
	cfg.Seed = 11
	return Suite{Synth: cfg, Pipeline: core.DefaultConfig()}
}

func setupEnv(t *testing.T) *Env {
	t.Helper()
	env, err := testSuite().Setup()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestTable2ShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunTable2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Rows) != env.Dataset.NumCategories() {
		t.Fatalf("rows = %d, want one per category", len(res.Report.Rows))
	}
	// The paper's headline: the vast majority of Advisors in Q1. The
	// Small test dataset is noisy; the paper-scale suite reaches ~0.97
	// (see EXPERIMENTS.md).
	if frac := res.Report.Q1Fraction(); frac < 0.7 {
		t.Errorf("rater Q1 fraction = %v, want >= 0.7 (paper: 0.984)", frac)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE 2") || !strings.Contains(sb.String(), "Overall") {
		t.Errorf("render missing sections:\n%s", sb.String())
	}
}

func TestTable3ShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.Report.Q1Fraction(); frac < 0.7 {
		t.Errorf("writer Q1 fraction = %v, want >= 0.7 (paper: 0.894)", frac)
	}
	// At paper scale the raters' model outperforms the writers' as in the
	// paper (98.4% vs 89.4%); at this small test scale both just need to
	// be strong — the cross-check lives in TestMediumScaleShape.
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TABLE 3") {
		t.Error("render missing title")
	}
}

func TestFig3ShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunFig3(env)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	// The paper's Fig. 3 structure: derived ≫ connections > trust; both
	// T∩R and T−R non-empty.
	if rep.DerivedNNZ <= rep.ConnectionNNZ || rep.ConnectionNNZ <= rep.TrustNNZ {
		t.Errorf("density ordering wrong: %+v", rep)
	}
	if rep.TrustInR == 0 || rep.TrustOutsideR == 0 {
		t.Errorf("trust split degenerate: %+v", rep)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FIG. 3") {
		t.Error("render missing title")
	}
}

func TestTable4ShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunTable4(env)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: derived recall well above baseline; baseline precision
	// >= its own recall-ish level; derived false-trust rate above
	// baseline's.
	if res.Derived.Recall <= res.Baseline.Recall {
		t.Errorf("derived recall %v should exceed baseline %v",
			res.Derived.Recall, res.Baseline.Recall)
	}
	if res.Derived.Recall < 1.5*res.Baseline.Recall {
		t.Errorf("derived recall %v should be >= 1.5x baseline %v (paper: 2.8x)",
			res.Derived.Recall, res.Baseline.Recall)
	}
	if res.Derived.NonTrustAsTrustRate <= res.Baseline.NonTrustAsTrustRate {
		t.Errorf("derived rate %v should exceed baseline %v",
			res.Derived.NonTrustAsTrustRate, res.Baseline.NonTrustAsTrustRate)
	}
	if res.MeanGenerosity <= 0 {
		t.Error("mean generosity should be positive")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "TABLE 4") || !strings.Contains(out, "future trust") {
		t.Errorf("render missing sections:\n%s", out)
	}
}

func TestPropagationShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	params := DefaultPropagationParams()
	params.NumSources = 20
	res, err := RunPropagation(env, params)
	if err != nil {
		t.Fatal(err)
	}
	// The derived web is denser, so propagation over it must reach more
	// pairs — the point of the paper's future-work proposal.
	if res.CoverageDerived <= res.CoverageExplicit {
		t.Errorf("derived coverage %v should exceed explicit %v",
			res.CoverageDerived, res.CoverageExplicit)
	}
	if res.DerivedEdges <= res.ExplicitEdges {
		t.Errorf("derived edges %d should exceed explicit %d",
			res.DerivedEdges, res.ExplicitEdges)
	}
	// The two webs should broadly agree on who is globally trusted.
	if res.EigenSpearman <= 0.1 {
		t.Errorf("EigenTrust Spearman = %v, want positive agreement", res.EigenSpearman)
	}
	if res.SampledSources == 0 {
		t.Error("no sources sampled")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E-X1") {
		t.Error("render missing title")
	}
}

func TestRecommendationShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunRecommendation(env, DefaultRecommendationParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d, want 3 predictors", len(res.Reports))
	}
	for _, rep := range res.Reports {
		if rep.MAE <= 0 || rep.Coverage <= 0 {
			t.Errorf("%s: degenerate report %+v", rep.Name, rep)
		}
		if rep.RMSE < rep.MAE {
			t.Errorf("%s: RMSE %v < MAE %v", rep.Name, rep.RMSE, rep.MAE)
		}
	}
	// The reputation-weighted quality should not lose clearly to the
	// plain mean.
	gm, rq := res.Reports[0], res.Reports[1]
	if rq.MAE > gm.MAE*1.05 {
		t.Errorf("riggs-quality MAE %v clearly worse than global-mean %v", rq.MAE, gm.MAE)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E-X2") {
		t.Error("render missing title")
	}
}

func TestTable4AUC(t *testing.T) {
	env := setupEnv(t)
	res, err := RunTable4(env)
	if err != nil {
		t.Fatal(err)
	}
	// Both continuous models must beat chance, and the derived model
	// should be competitive with the baseline ordering.
	if res.DerivedAUC <= 0.5 {
		t.Errorf("derived AUC = %v, want > 0.5", res.DerivedAUC)
	}
	if res.BaselineAUC <= 0.5 {
		t.Errorf("baseline AUC = %v, want > 0.5", res.BaselineAUC)
	}
}

func TestPropagationGuhaColumn(t *testing.T) {
	env := setupEnv(t)
	params := DefaultPropagationParams()
	params.NumSources = 15
	res, err := RunPropagation(env, params)
	if err != nil {
		t.Fatal(err)
	}
	// Guha propagation densifies the explicit web and buys coverage —
	// the related-work fix works when explicit trust exists.
	if res.GuhaEdges <= res.ExplicitEdges {
		t.Errorf("Guha edges %d should exceed explicit %d", res.GuhaEdges, res.ExplicitEdges)
	}
	if res.CoverageGuha < res.CoverageExplicit {
		t.Errorf("Guha coverage %v below explicit %v", res.CoverageGuha, res.CoverageExplicit)
	}
	// For cold-start sources (no explicit out-trust), the derived web
	// must clearly beat both explicit-web variants — the paper's core
	// sparsity argument.
	if res.ColdSources > 0 {
		if res.CoverageDerivedCold <= res.CoverageExplicitCold {
			t.Errorf("cold derived coverage %v should exceed explicit %v",
				res.CoverageDerivedCold, res.CoverageExplicitCold)
		}
		if res.CoverageDerivedCold <= res.CoverageGuhaCold {
			t.Errorf("cold derived coverage %v should exceed Guha %v",
				res.CoverageDerivedCold, res.CoverageGuhaCold)
		}
	}
}

func TestAblationDiscount(t *testing.T) {
	env := setupEnv(t)
	res, err := RunAblationDiscount(env)
	if err != nil {
		t.Fatal(err)
	}
	// The discount is what keeps prolific editorial picks on top;
	// removing it should not improve the rater Q1 fraction.
	if res.WithoutDiscount.RaterQ1 > res.WithDiscount.RaterQ1+1e-9 {
		t.Errorf("discount off (%v) should not beat discount on (%v)",
			res.WithoutDiscount.RaterQ1, res.WithDiscount.RaterQ1)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-1") {
		t.Error("render missing title")
	}
}

func TestAblationIteration(t *testing.T) {
	env := setupEnv(t)
	res, err := RunAblationIteration(env)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIterations < 1 {
		t.Errorf("mean iterations = %v, want >= 1", res.MeanIterations)
	}
	if res.ConvergedQ1 <= 0 || res.SinglePassQ1 <= 0 {
		t.Error("Q1 fractions should be positive")
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-2") {
		t.Error("render missing title")
	}
}

func TestAblationAffinity(t *testing.T) {
	env := setupEnv(t)
	res, err := RunAblationAffinity(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 modes", len(res.Rows))
	}
	// The blend should be competitive with the best single signal on
	// recall (within a small margin on this small dataset).
	blend := res.Rows[0].Metrics.Recall
	for _, row := range res.Rows[1:] {
		if blend < row.Metrics.Recall-0.15 {
			t.Errorf("blend recall %v far below %s recall %v",
				blend, row.Mode, row.Metrics.Recall)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-3") {
		t.Error("render missing title")
	}
}

func TestAblationBinarize(t *testing.T) {
	env := setupEnv(t)
	res, err := RunAblationBinarize(env, []float64{0.2, 0.4, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Thresholds) != 3 {
		t.Fatalf("thresholds = %d, want 3", len(res.Thresholds))
	}
	// Higher threshold -> fewer predictions -> recall non-increasing.
	for i := 1; i < len(res.Thresholds); i++ {
		if res.Thresholds[i].Metrics.Recall > res.Thresholds[i-1].Metrics.Recall+1e-9 {
			t.Errorf("recall should fall as tau rises: %v", res.Thresholds)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-4") {
		t.Error("render missing title")
	}
}

// TestMediumScaleShape runs the headline assertions at the Medium scale,
// where the synthetic community is large enough for the paper's ordering
// (raters' model above writers', both high) to be stable.
func TestMediumScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale integration test")
	}
	env, err := (Suite{Synth: synth.Medium(), Pipeline: core.DefaultConfig()}).Setup()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RunTable2(env)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := RunTable3(env)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Report.Q1Fraction() < 0.85 {
		t.Errorf("rater Q1 = %v, want >= 0.85 (paper: 0.984)", t2.Report.Q1Fraction())
	}
	if t3.Report.Q1Fraction() < 0.8 {
		t.Errorf("writer Q1 = %v, want >= 0.8 (paper: 0.894)", t3.Report.Q1Fraction())
	}
	t4, err := RunTable4(env)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Derived.Recall < 1.7*t4.Baseline.Recall {
		t.Errorf("derived recall %v should be >= 1.7x baseline %v (paper: 2.8x)",
			t4.Derived.Recall, t4.Baseline.Recall)
	}
	// The paper's false-positive analysis: mean T̂ of predicted pairs in
	// R−T at or above R∩T.
	if t4.Values.MeanInRNotT < t4.Values.MeanInRT-0.01 {
		t.Errorf("R−T mean T̂ (%v) should not be below R∩T mean (%v)",
			t4.Values.MeanInRNotT, t4.Values.MeanInRT)
	}
}

func TestStructureShapeAndRender(t *testing.T) {
	env := setupEnv(t)
	res, err := RunStructure(env, 100, 31)
	if err != nil {
		t.Fatal(err)
	}
	// The derived web is denser and, being synthesised from shared
	// expertise targets, should cluster at least as strongly.
	if res.Derived.Edges <= res.Explicit.Edges {
		t.Errorf("derived edges %d should exceed explicit %d",
			res.Derived.Edges, res.Explicit.Edges)
	}
	if res.Derived.MeanOutDegree <= res.Explicit.MeanOutDegree {
		t.Errorf("derived mean out-degree %v should exceed explicit %v",
			res.Derived.MeanOutDegree, res.Explicit.MeanOutDegree)
	}
	for _, s := range []WebStructure{res.Explicit, res.Derived} {
		if s.Reciprocity < 0 || s.Reciprocity > 1 ||
			s.MeanClustering < 0 || s.MeanClustering > 1 {
			t.Errorf("%s: statistics out of range: %+v", s.Name, s)
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "F-NET") {
		t.Error("render missing title")
	}
}

func TestRobustnessSweep(t *testing.T) {
	suite := testSuite()
	res, err := RunRobustness(suite, []uint64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DerivedRecall) != 3 || len(res.WriterQ1) != 3 {
		t.Fatalf("series lengths wrong: %+v", res)
	}
	if !res.AlwaysWins() {
		t.Error("derived model should beat baseline recall on every seed")
	}
	for i := range res.Seeds {
		if res.DerivedRecall[i] <= 0 || res.DerivedRecall[i] > 1 {
			t.Errorf("seed %d: recall %v out of range", res.Seeds[i], res.DerivedRecall[i])
		}
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A-5") {
		t.Error("render missing title")
	}
	if _, err := RunRobustness(suite, nil); err == nil {
		t.Error("empty seed list should error")
	}
}

func TestSuiteSetupErrors(t *testing.T) {
	bad := testSuite()
	bad.Synth.NumUsers = 0
	if _, err := bad.Setup(); err == nil {
		t.Error("invalid synth config should fail setup")
	}
	bad2 := testSuite()
	bad2.Pipeline.Riggs.MaxIter = 0
	if _, err := bad2.Setup(); err == nil {
		t.Error("invalid pipeline config should fail setup")
	}
}
