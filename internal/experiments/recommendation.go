package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/recommend"
	"weboftrust/internal/tables"
)

// RecommendationResult is E-X2: the paper's motivating application
// ("help users collect reliable information") evaluated as a prediction
// task. A fraction of ratings is held out; each predictor estimates the
// held-out helpfulness scores from the training data alone.
type RecommendationResult struct {
	HoldoutFrac float64
	TestSize    int
	Reports     []recommend.Report
}

// RecommendationParams tunes E-X2.
type RecommendationParams struct {
	// HoldoutFrac is the fraction of ratings held out for testing.
	HoldoutFrac float64
	// Seed drives the split.
	Seed uint64
}

// DefaultRecommendationParams returns the standard 80/20 split.
func DefaultRecommendationParams() RecommendationParams {
	return RecommendationParams{HoldoutFrac: 0.2, Seed: 29}
}

// RunRecommendation executes E-X2. It re-runs the pipeline on the
// training split (the env's artifacts saw the held-out ratings and must
// not be reused).
func RunRecommendation(env *Env, params RecommendationParams) (*RecommendationResult, error) {
	train, test, err := recommend.Holdout(env.Dataset, params.HoldoutFrac, params.Seed)
	if err != nil {
		return nil, err
	}
	art, err := env.Suite.Pipeline.Run(train)
	if err != nil {
		return nil, err
	}
	rq, err := recommend.NewRiggsQuality(train, art.RiggsResults)
	if err != nil {
		return nil, err
	}
	predictors := []recommend.Predictor{
		recommend.NewGlobalMean(train),
		rq,
		recommend.NewTrustWeighted(train, art.Trust),
	}
	res := &RecommendationResult{HoldoutFrac: params.HoldoutFrac, TestSize: len(test)}
	for _, p := range predictors {
		res.Reports = append(res.Reports, recommend.Evaluate(p, test))
	}
	return res, nil
}

// Render prints the accuracy table.
func (r *RecommendationResult) Render(w io.Writer) error {
	t := tables.New("Predictor", "MAE", "RMSE", "Coverage").
		Title(fmt.Sprintf("E-X2 - TRUST-AWARE HELPFULNESS PREDICTION (%d held-out ratings, %.0f%%)",
			r.TestSize, r.HoldoutFrac*100)).
		AlignRight(1, 2, 3)
	for _, rep := range r.Reports {
		t.AddRow(rep.Name, rep.MAE, rep.RMSE, tables.Percent(rep.Coverage))
	}
	return t.Render(w)
}
