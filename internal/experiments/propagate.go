package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/core"
	"weboftrust/internal/graph"
	"weboftrust/internal/mat"
	"weboftrust/internal/propagation"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
	"weboftrust/internal/tables"
)

// PropagationResult is the paper's stated future work (Section V): build a
// web of trust from the derived matrix, propagate it with the trust
// inference algorithms of the related work, and compare against
// propagation over the explicit web.
//
// Three comparisons are run:
//   - TidalTrust coverage: the fraction of (source, sink) pairs an
//     algorithm can answer at all — the sparsity complaint quantified.
//   - EigenTrust rank agreement: Spearman correlation of the global trust
//     vectors computed on each web.
//   - Appleseed neighbourhood overlap: mean Jaccard overlap of the top-K
//     personalised rankings from sampled sources.
type PropagationResult struct {
	ExplicitEdges int
	DerivedEdges  int
	// GuhaEdges is the explicit web densified by Guha et al.'s
	// propagation operators (the related-work answer to sparsity, the
	// paper's reference [5]) — the yardstick the derived web is measured
	// against.
	GuhaEdges int

	CoverageExplicit float64
	CoverageDerived  float64
	CoverageGuha     float64

	// Cold-source coverage restricts to sampled sources with no explicit
	// out-trust — the users the paper's framework is for. The explicit
	// web (propagated or not) has little to offer them beyond reverse
	// edges; the derived web serves them like anyone else.
	ColdSources          int
	CoverageExplicitCold float64
	CoverageGuhaCold     float64
	CoverageDerivedCold  float64

	EigenSpearman float64

	AppleseedJaccard float64
	SampledSources   int
	TopK             int
	MaxDepth         int
}

// PropagationParams tunes the comparison.
type PropagationParams struct {
	// NumSources is how many users with explicit out-trust are sampled
	// for the per-source analyses.
	NumSources int
	// TopK sizes the Appleseed neighbourhood overlap.
	TopK int
	// MaxDepth caps TidalTrust search depth.
	MaxDepth int
	// Seed drives the source sampling.
	Seed uint64
}

// DefaultPropagationParams returns sensible experiment defaults.
func DefaultPropagationParams() PropagationParams {
	return PropagationParams{NumSources: 60, TopK: 10, MaxDepth: 4, Seed: 17}
}

// RunPropagation executes the E-X1 comparison.
func RunPropagation(env *Env, params PropagationParams) (*PropagationResult, error) {
	d := env.Dataset
	numU := d.NumUsers()

	// Explicit web: the dataset's trust edges, weight 1 (Epinions trust
	// is binary).
	var explicitEdges []graph.Edge
	for _, e := range d.TrustEdges() {
		explicitEdges = append(explicitEdges, graph.Edge{From: int(e.From), To: int(e.To), Weight: 1})
	}
	explicit, err := graph.New(numU, explicitEdges)
	if err != nil {
		return nil, err
	}

	// Derived web: the binarised T̂′ support carrying continuous T̂
	// weights — the denser, weighted web the framework produces, built
	// through the same artifact path trustd serves (core.BuildWeb).
	// Users with no explicit trust cannot calibrate their own generosity
	// k_i; in a deployment the framework serves exactly those cold-start
	// users, so they fall back to the population's mean positive
	// generosity (the paper's framework "does not rely on a web of
	// trust"; only the binarisation threshold needs a default) — the
	// web policy's ColdGenerosity knob.
	k := core.Generosity(d)
	var kSum float64
	kPos := 0
	for _, v := range k {
		if v > 0 {
			kSum += v
			kPos++
		}
	}
	meanK := 0.0
	if kPos > 0 {
		meanK = kSum / float64(kPos)
	}
	web, err := core.BuildWeb(d, env.Artifacts.Trust,
		core.WebPolicy{Policy: core.PerUserTopK, ColdGenerosity: meanK}, 0)
	if err != nil {
		return nil, err
	}
	derived := web.Graph()

	res := &PropagationResult{
		ExplicitEdges: explicit.NumEdges(),
		DerivedEdges:  derived.NumEdges(),
		TopK:          params.TopK,
		MaxDepth:      params.MaxDepth,
	}

	// Sample sources among active raters — the population the framework
	// targets. Many of them have little or no explicit trust, which is
	// precisely the sparsity problem the derived web is meant to solve.
	rng := stats.NewRand(params.Seed)
	var candidates []int
	for u := 0; u < numU; u++ {
		if len(d.RatingsBy(ratings.UserID(u))) > 0 {
			candidates = append(candidates, u)
		}
	}
	sources := sampleInts(rng, candidates, params.NumSources)
	res.SampledSources = len(sources)

	tt := propagation.TidalTrust{MaxDepth: params.MaxDepth}
	res.CoverageExplicit = tt.Coverage(explicit, sources)
	res.CoverageDerived = tt.Coverage(derived, sources)

	// Related-work comparison: densify the explicit web with Guha et
	// al.'s operators and measure the coverage it buys. The derived web
	// needs no explicit trust at all and should still come out ahead.
	explicitCSR := mat.NewBuilder(numU, numU)
	for _, e := range d.TrustEdges() {
		explicitCSR.Set(int(e.From), int(e.To), 1)
	}
	guhaMat, err := propagation.DefaultGuha().Propagate(explicitCSR.Build())
	if err != nil {
		return nil, err
	}
	var guhaEdges []graph.Edge
	for i := 0; i < numU; i++ {
		cols, vals := guhaMat.Row(i)
		for n, j := range cols {
			if int(j) != i && vals[n] > 0 {
				guhaEdges = append(guhaEdges, graph.Edge{From: i, To: int(j), Weight: vals[n]})
			}
		}
	}
	guha, err := graph.New(numU, guhaEdges)
	if err != nil {
		return nil, err
	}
	res.GuhaEdges = guha.NumEdges()
	res.CoverageGuha = tt.Coverage(guha, sources)

	var cold []int
	for _, s := range sources {
		if len(d.TrustedBy(ratings.UserID(s))) == 0 {
			cold = append(cold, s)
		}
	}
	res.ColdSources = len(cold)
	if len(cold) > 0 {
		res.CoverageExplicitCold = tt.Coverage(explicit, cold)
		res.CoverageGuhaCold = tt.Coverage(guha, cold)
		res.CoverageDerivedCold = tt.Coverage(derived, cold)
	}

	et := propagation.DefaultEigenTrust()
	rankE, err := et.Ranks(explicit)
	if err != nil {
		return nil, err
	}
	rankD, err := et.Ranks(derived)
	if err != nil {
		return nil, err
	}
	res.EigenSpearman = stats.Spearman(rankE, rankD)

	as := propagation.DefaultAppleseed()
	var jaccardSum float64
	jaccardN := 0
	for _, s := range sources {
		re, err := as.Rank(explicit, s)
		if err != nil {
			return nil, err
		}
		rd, err := as.Rank(derived, s)
		if err != nil {
			return nil, err
		}
		topE := propagation.TopRanked(re, params.TopK)
		topD := propagation.TopRanked(rd, params.TopK)
		if len(topE) == 0 && len(topD) == 0 {
			continue
		}
		jaccardSum += jaccard(topE, topD)
		jaccardN++
	}
	if jaccardN > 0 {
		res.AppleseedJaccard = jaccardSum / float64(jaccardN)
	}
	return res, nil
}

func sampleInts(rng interface{ IntN(int) int }, pool []int, n int) []int {
	if n >= len(pool) {
		out := make([]int, len(pool))
		copy(out, pool)
		return out
	}
	// Partial Fisher-Yates over a copy.
	cp := make([]int, len(pool))
	copy(cp, pool)
	for i := 0; i < n; i++ {
		j := i + rng.IntN(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:n]
}

func jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	for _, x := range b {
		if set[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Render prints the comparison table.
func (r *PropagationResult) Render(w io.Writer) error {
	t := tables.New("Metric", "Explicit web (T)", "Guha-propagated T", "Derived web (T̂')").
		Title("E-X1 - PROPAGATION OVER DERIVED vs EXPLICIT WEB OF TRUST (paper's future work)").
		AlignRight(1, 2, 3)
	t.AddRow("Edges", r.ExplicitEdges, r.GuhaEdges, r.DerivedEdges)
	t.AddRow(fmt.Sprintf("TidalTrust coverage (depth<=%d)", r.MaxDepth),
		fmt.Sprintf("%.3f", r.CoverageExplicit),
		fmt.Sprintf("%.3f", r.CoverageGuha),
		fmt.Sprintf("%.3f", r.CoverageDerived))
	t.AddRow(fmt.Sprintf("... cold sources only (%d of %d)", r.ColdSources, r.SampledSources),
		fmt.Sprintf("%.3f", r.CoverageExplicitCold),
		fmt.Sprintf("%.3f", r.CoverageGuhaCold),
		fmt.Sprintf("%.3f", r.CoverageDerivedCold))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"EigenTrust global-rank Spearman between webs: %.3f\n"+
			"Appleseed top-%d neighbourhood Jaccard (mean over %d sources): %.3f\n",
		r.EigenSpearman, r.TopK, r.SampledSources, r.AppleseedJaccard)
	return err
}
