package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/eval"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

// Table2Result reproduces Table 2: per sub-category, rank all review
// raters by their Riggs reputation (eq. 2), split into quartiles, and
// count how many of the simulated Advisors land in each. The paper reports
// 98.4% of Advisors in Q1 overall.
type Table2Result struct {
	Report *eval.QuartileReport
}

// RunTable2 executes the Table 2 protocol. It reuses the Riggs results
// when env's pipeline config matches; otherwise pass a custom model via
// RunTable2WithModel.
func RunTable2(env *Env) (*Table2Result, error) {
	return table2From(env.Dataset, env.Truth, env.Artifacts.RiggsResults)
}

// RunTable2WithModel executes the Table 2 protocol with a specific Riggs
// model (used by the ablations).
func RunTable2WithModel(env *Env, model riggs.Model) (*Table2Result, error) {
	results, err := model.SolveAll(env.Dataset)
	if err != nil {
		return nil, err
	}
	return table2From(env.Dataset, env.Truth, results)
}

func table2From(d *ratings.Dataset, gt *synth.GroundTruth, results []*riggs.CategoryResult) (*Table2Result, error) {
	rows := make([]eval.QuartileRow, 0, d.NumCategories())
	for c := 0; c < d.NumCategories(); c++ {
		cr := results[c]
		// Paper protocol: drop Advisors who never rated in this
		// sub-category, then locate the rest among the ranked raters.
		designated := designatedIn(gt.Advisors, func(u ratings.UserID) bool {
			_, active := cr.ReputationOf(u)
			return active
		})
		rows = append(rows, eval.QuartileRow{
			Category:   d.CategoryName(ratings.CategoryID(c)),
			Ranked:     len(cr.Raters),
			Designated: len(designated),
			Counts:     eval.Quartiles(cr.Raters, cr.RaterRep, designated),
		})
	}
	return &Table2Result{Report: eval.NewQuartileReport(rows)}, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) error {
	return renderQuartileTable(w,
		"TABLE 2 - THE PERFORMANCE OF REVIEW RATERS' REPUTATION MODEL",
		"Raters", r.Report)
}

func renderQuartileTable(w io.Writer, title, rankedHeader string, rep *eval.QuartileReport) error {
	t := tables.New("Genre (Category)", rankedHeader, "Total", "Q1(Top)", "Q2", "Q3", "Q4").
		Title(title).
		AlignRight(1, 2, 3, 4, 5, 6)
	for _, row := range rep.Rows {
		q := row.Counts
		t.AddRow(row.Category, row.Ranked, row.Designated,
			tables.CountPct(q[0], q.Total()), q[1], q[2], q[3])
	}
	t.AddSeparator()
	t.AddRow("Overall", "", rep.TotalDesignated,
		tables.CountPct(rep.TotalQ1, rep.TotalDesignated), "", "", "")
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Q1 fraction: %s (paper: 98.4%% raters / 89.4%% writers)\n",
		tables.Percent(rep.Q1Fraction()))
	return err
}
