package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/core"
	"weboftrust/internal/graph"
	"weboftrust/internal/stats"
	"weboftrust/internal/tables"
)

// StructureResult is F-NET: a structural comparison of the explicit and
// derived webs of trust as networks — how the framework's synthetic web
// differs in shape, not just in size, from what users declare by hand.
type StructureResult struct {
	Explicit WebStructure
	Derived  WebStructure
	// SampledNodes is how many nodes the clustering estimate averaged.
	SampledNodes int
}

// WebStructure holds one web's statistics.
type WebStructure struct {
	Name           string
	Edges          int
	MeanOutDegree  float64
	MaxOutDegree   int
	MaxInDegree    int
	Isolated       int
	Reciprocity    float64
	MeanClustering float64
	LargestSCC     int
}

// RunStructure executes F-NET, sampling sampleSize nodes for the
// clustering estimate (quadratic per node on hub-heavy graphs).
func RunStructure(env *Env, sampleSize int, seed uint64) (*StructureResult, error) {
	d := env.Dataset
	numU := d.NumUsers()
	var explicitEdges []graph.Edge
	for _, e := range d.TrustEdges() {
		explicitEdges = append(explicitEdges, graph.Edge{From: int(e.From), To: int(e.To), Weight: 1})
	}
	explicit, err := graph.New(numU, explicitEdges)
	if err != nil {
		return nil, err
	}
	k := core.Generosity(d)
	pred, err := core.BinarizeDerived(env.Artifacts.Trust, k)
	if err != nil {
		return nil, err
	}
	var derivedEdges []graph.Edge
	for i := 0; i < numU; i++ {
		cols, _ := pred.Row(i)
		for _, j := range cols {
			derivedEdges = append(derivedEdges, graph.Edge{From: i, To: int(j), Weight: 1})
		}
	}
	derived, err := graph.New(numU, derivedEdges)
	if err != nil {
		return nil, err
	}

	rng := stats.NewRand(seed)
	if sampleSize <= 0 || sampleSize > numU {
		sampleSize = numU
	}
	sample := make([]int, sampleSize)
	for i := range sample {
		sample[i] = rng.IntN(numU)
	}
	res := &StructureResult{
		Explicit:     webStructure("explicit (T)", explicit, sample),
		Derived:      webStructure("derived (T̂')", derived, sample),
		SampledNodes: sampleSize,
	}
	return res, nil
}

func webStructure(name string, g *graph.Graph, sample []int) WebStructure {
	deg := g.Degrees()
	return WebStructure{
		Name:           name,
		Edges:          deg.Edges,
		MeanOutDegree:  deg.MeanOutDegree,
		MaxOutDegree:   deg.MaxOutDegree,
		MaxInDegree:    deg.MaxInDegree,
		Isolated:       deg.Isolated,
		Reciprocity:    g.Reciprocity(),
		MeanClustering: g.MeanClustering(sample),
		LargestSCC:     g.LargestSCCSize(),
	}
}

// Render prints the structural comparison.
func (r *StructureResult) Render(w io.Writer) error {
	t := tables.New("Statistic", r.Explicit.Name, r.Derived.Name).
		Title("F-NET - STRUCTURE OF THE EXPLICIT vs DERIVED WEB OF TRUST").
		AlignRight(1, 2)
	add := func(name string, f func(WebStructure) string) {
		t.AddRow(name, f(r.Explicit), f(r.Derived))
	}
	add("edges", func(s WebStructure) string { return fmt.Sprint(s.Edges) })
	add("mean out-degree", func(s WebStructure) string { return fmt.Sprintf("%.2f", s.MeanOutDegree) })
	add("max out-degree", func(s WebStructure) string { return fmt.Sprint(s.MaxOutDegree) })
	add("max in-degree", func(s WebStructure) string { return fmt.Sprint(s.MaxInDegree) })
	add("isolated users", func(s WebStructure) string { return fmt.Sprint(s.Isolated) })
	add("reciprocity", func(s WebStructure) string { return fmt.Sprintf("%.3f", s.Reciprocity) })
	add("mean clustering (sampled)", func(s WebStructure) string { return fmt.Sprintf("%.3f", s.MeanClustering) })
	add("largest SCC", func(s WebStructure) string { return fmt.Sprint(s.LargestSCC) })
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "(clustering averaged over %d sampled nodes)\n", r.SampledNodes)
	return err
}
