package experiments

import (
	"fmt"
	"io"

	"weboftrust/internal/eval"
	"weboftrust/internal/tables"
)

// Fig3Result reproduces Fig. 3: the density comparison between the
// derived matrix T̂, the direct-connection matrix R and the explicit trust
// matrix T, including the T∩R / T−R split the evaluation builds on.
type Fig3Result struct {
	Report eval.DensityReport
}

// RunFig3 computes the density report.
func RunFig3(env *Env) (*Fig3Result, error) {
	return &Fig3Result{Report: eval.Density(env.Dataset, env.Artifacts.Trust)}, nil
}

// Render prints the density comparison.
func (r *Fig3Result) Render(w io.Writer) error {
	rep := r.Report
	t := tables.New("Matrix", "Non-zero cells", "Density").
		Title("FIG. 3 - DENSITY OF THE DERIVED MATRIX, DIRECT CONNECTIONS AND TRUST").
		AlignRight(1, 2)
	t.AddRow("T̂ (derived trust)", rep.DerivedNNZ, fmt.Sprintf("%.6f", rep.DerivedDensity))
	t.AddRow("R (direct connections)", rep.ConnectionNNZ, fmt.Sprintf("%.6f", rep.ConnectionDensity))
	t.AddRow("T (explicit trust)", rep.TrustNNZ, fmt.Sprintf("%.6f", rep.TrustDensity))
	t.AddSeparator()
	t.AddRow("T ∩ R", rep.TrustInR, "")
	t.AddRow("T − R", rep.TrustOutsideR, "")
	if err := t.Render(w); err != nil {
		return err
	}
	ratio := 0.0
	if rep.TrustNNZ > 0 {
		ratio = float64(rep.DerivedNNZ) / float64(rep.TrustNNZ)
	}
	_, err := fmt.Fprintf(w,
		"Derived matrix is %.0fx denser than the explicit web of trust (users=%d).\n",
		ratio, rep.Users)
	return err
}
