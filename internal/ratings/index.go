package ratings

import (
	"slices"
	"sort"
)

// indexes holds the CSR-style groupings frozen at Build time. Every
// grouping is two slices: offsets (one per group, plus one) and a payload
// array sorted by group; group g owns payload[offsets[g]:offsets[g+1]].
type indexes struct {
	// Reviews grouped by category and by writer (payloads are ReviewIDs).
	reviewsByCategoryOff []int32
	reviewsByCategory    []ReviewID
	reviewsByWriterOff   []int32
	reviewsByWriter      []ReviewID

	// Ratings regrouped by review and by rater (payloads are copies of
	// the Rating records, so callers get cache-friendly scans).
	ratingsByReviewOff []int32
	ratingsByReview    []Rating
	ratingsByRaterOff  []int32
	ratingsByRater     []Rating

	// Direct connections: rater -> writer pairs with rating count and sum
	// (the paper's R matrix; sums yield the baseline B).
	connOff   []int32
	connTo    []UserID
	connCount []int32
	connSum   []float64

	// Explicit trust adjacency, sorted per source for binary search.
	trustOff []int32
	trustTo  []UserID
}

func buildIndexes(d *Dataset) *indexes {
	idx := &indexes{}
	numU := int32(d.NumUsers())
	numC := int32(d.NumCategories())
	numR := int32(d.NumReviews())

	// Reviews by category and writer via counting sort.
	idx.reviewsByCategoryOff, idx.reviewsByCategory = groupReviews(d.reviews, int(numC),
		func(r Review) int32 { return int32(r.Category) })
	idx.reviewsByWriterOff, idx.reviewsByWriter = groupReviews(d.reviews, int(numU),
		func(r Review) int32 { return int32(r.Writer) })

	// Ratings by review and rater.
	idx.ratingsByReviewOff, idx.ratingsByReview = groupRatings(d.ratingList, int(numR),
		func(r Rating) int32 { return int32(r.Review) })
	idx.ratingsByRaterOff, idx.ratingsByRater = groupRatings(d.ratingList, int(numU),
		func(r Rating) int32 { return int32(r.Rater) })

	// Direct connections: aggregate (rater, writer) pairs. Ratings are
	// already grouped by rater above, so each rater's row aggregates
	// independently: gather its (writer, value) pairs, stable-sort by
	// writer — stability keeps each pair's values in rating-list order,
	// so the run sums below accumulate in exactly the order the previous
	// global-map implementation added them, bit for bit — and collapse
	// runs. No global hash map (the old one dominated index-build time on
	// big datasets), and rows emerge writer-ascending with no second
	// sorting pass.
	type wv struct {
		writer int32
		value  float64
	}
	idx.connOff = make([]int32, numU+1)
	var scratch []wv
	for u := int32(0); u < numU; u++ {
		lo, hi := idx.ratingsByRaterOff[u], idx.ratingsByRaterOff[u+1]
		scratch = scratch[:0]
		for _, r := range idx.ratingsByRater[lo:hi] {
			scratch = append(scratch, wv{writer: int32(d.reviews[r.Review].Writer), value: r.Value})
		}
		// Stable sort by writer. Typical rows are a few dozen entries, so
		// insertion sort wins (and avoids sort.SliceStable's reflection
		// swapper, which dominated index builds); the generic stable sort
		// covers the power-law heavy raters.
		if len(scratch) <= 48 {
			for i := 1; i < len(scratch); i++ {
				for j := i; j > 0 && scratch[j].writer < scratch[j-1].writer; j-- {
					scratch[j], scratch[j-1] = scratch[j-1], scratch[j]
				}
			}
		} else {
			slices.SortStableFunc(scratch, func(a, b wv) int { return int(a.writer) - int(b.writer) })
		}
		for i := 0; i < len(scratch); {
			j := i
			var sum float64
			for ; j < len(scratch) && scratch[j].writer == scratch[i].writer; j++ {
				sum += scratch[j].value
			}
			idx.connTo = append(idx.connTo, UserID(scratch[i].writer))
			idx.connCount = append(idx.connCount, int32(j-i))
			idx.connSum = append(idx.connSum, sum)
			i = j
		}
		idx.connOff[u+1] = int32(len(idx.connTo))
	}

	// Trust adjacency.
	idx.trustOff = make([]int32, numU+1)
	for _, e := range d.trust {
		idx.trustOff[e.From+1]++
	}
	for u := int32(0); u < numU; u++ {
		idx.trustOff[u+1] += idx.trustOff[u]
	}
	idx.trustTo = make([]UserID, len(d.trust))
	nextT := make([]int32, numU)
	copy(nextT, idx.trustOff[:numU])
	for _, e := range d.trust {
		idx.trustTo[nextT[e.From]] = e.To
		nextT[e.From]++
	}
	for u := int32(0); u < numU; u++ {
		lo, hi := idx.trustOff[u], idx.trustOff[u+1]
		row := idx.trustTo[lo:hi]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
	return idx
}

func groupReviews(reviews []Review, groups int, key func(Review) int32) ([]int32, []ReviewID) {
	off := make([]int32, groups+1)
	for _, r := range reviews {
		off[key(r)+1]++
	}
	for g := 0; g < groups; g++ {
		off[g+1] += off[g]
	}
	payload := make([]ReviewID, len(reviews))
	next := make([]int32, groups)
	copy(next, off[:groups])
	for _, r := range reviews { // insertion order keeps ReviewIDs ascending per group
		g := key(r)
		payload[next[g]] = r.ID
		next[g]++
	}
	return off, payload
}

func groupRatings(list []Rating, groups int, key func(Rating) int32) ([]int32, []Rating) {
	off := make([]int32, groups+1)
	for _, r := range list {
		off[key(r)+1]++
	}
	for g := 0; g < groups; g++ {
		off[g+1] += off[g]
	}
	payload := make([]Rating, len(list))
	next := make([]int32, groups)
	copy(next, off[:groups])
	for _, r := range list {
		g := key(r)
		payload[next[g]] = r
		next[g]++
	}
	return off, payload
}

// ReviewsInCategory returns the ids of all reviews in category c, in
// ascending order. The returned slice is shared and must not be modified.
func (d *Dataset) ReviewsInCategory(c CategoryID) []ReviewID {
	lo, hi := d.idx.reviewsByCategoryOff[c], d.idx.reviewsByCategoryOff[c+1]
	return d.idx.reviewsByCategory[lo:hi]
}

// ReviewsByWriter returns the ids of all reviews written by u, in
// ascending order. The returned slice is shared and must not be modified.
func (d *Dataset) ReviewsByWriter(u UserID) []ReviewID {
	lo, hi := d.idx.reviewsByWriterOff[u], d.idx.reviewsByWriterOff[u+1]
	return d.idx.reviewsByWriter[lo:hi]
}

// RatingsOn returns all ratings received by review r. The returned slice
// is shared and must not be modified.
func (d *Dataset) RatingsOn(r ReviewID) []Rating {
	lo, hi := d.idx.ratingsByReviewOff[r], d.idx.ratingsByReviewOff[r+1]
	return d.idx.ratingsByReview[lo:hi]
}

// RatingsBy returns all ratings given by user u. The returned slice is
// shared and must not be modified.
func (d *Dataset) RatingsBy(u UserID) []Rating {
	lo, hi := d.idx.ratingsByRaterOff[u], d.idx.ratingsByRaterOff[u+1]
	return d.idx.ratingsByRater[lo:hi]
}

// Connection is one entry of the direct-connection matrix R: rater From
// has rated Count reviews written by To, with rating sum Sum.
type Connection struct {
	To    UserID
	Count int32
	Sum   float64
}

// AvgRating returns Sum / Count, the baseline B value for this pair.
func (c Connection) AvgRating() float64 { return c.Sum / float64(c.Count) }

// ConnectionsFrom invokes fn for every direct connection of user u (every
// distinct writer whose reviews u has rated), in ascending writer order.
func (d *Dataset) ConnectionsFrom(u UserID, fn func(Connection)) {
	lo, hi := d.idx.connOff[u], d.idx.connOff[u+1]
	for i := lo; i < hi; i++ {
		fn(Connection{To: d.idx.connTo[i], Count: d.idx.connCount[i], Sum: d.idx.connSum[i]})
	}
}

// NumConnections returns the number of distinct writers user u has rated
// (the size of row u of the R matrix).
func (d *Dataset) NumConnections(u UserID) int {
	return int(d.idx.connOff[u+1] - d.idx.connOff[u])
}

// TotalConnections returns the number of stored entries of the R matrix.
func (d *Dataset) TotalConnections() int { return len(d.idx.connTo) }

// HasConnection reports whether user from has rated any review written by
// user to (R_{from,to} = 1).
func (d *Dataset) HasConnection(from, to UserID) bool {
	lo, hi := d.idx.connOff[from], d.idx.connOff[from+1]
	row := d.idx.connTo[lo:hi]
	k := sort.Search(len(row), func(i int) bool { return row[i] >= to })
	return k < len(row) && row[k] == to
}

// TrustedBy returns the users that u explicitly trusts, in ascending
// order. The returned slice is shared and must not be modified.
func (d *Dataset) TrustedBy(u UserID) []UserID {
	lo, hi := d.idx.trustOff[u], d.idx.trustOff[u+1]
	return d.idx.trustTo[lo:hi]
}

// HasTrustEdge reports whether from explicitly trusts to.
func (d *Dataset) HasTrustEdge(from, to UserID) bool {
	row := d.TrustedBy(from)
	k := sort.Search(len(row), func(i int) bool { return row[i] >= to })
	return k < len(row) && row[k] == to
}

// NumReviewsByIn returns how many reviews user u wrote in category c (the
// affinity count a^w).
func (d *Dataset) NumReviewsByIn(u UserID, c CategoryID) int {
	n := 0
	for _, rid := range d.ReviewsByWriter(u) {
		if d.reviews[rid].Category == c {
			n++
		}
	}
	return n
}

// NumRatingsByIn returns how many ratings user u gave in category c (the
// affinity count a^r).
func (d *Dataset) NumRatingsByIn(u UserID, c CategoryID) int {
	n := 0
	for _, r := range d.RatingsBy(u) {
		if d.reviews[r.Review].Category == c {
			n++
		}
	}
	return n
}
