package ratings

import (
	"errors"
	"fmt"
	"testing"
)

// imageTestDataset builds a small community exercising every entity kind
// and both empty and loaded groups.
func imageTestDataset(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder()
	b.AddCategory("movies")
	b.AddCategory("books")
	b.AddCategory("empty") // category with no objects or reviews
	users := b.AddUsers(6)
	o0, _ := b.AddObject(0, "heat")
	o1, _ := b.AddObject(0, "ran")
	o2, _ := b.AddObject(1, "dune")
	r0, err := b.AddReview(users, o0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.AddReview(users+1, o1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.AddReview(users+1, o2)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []struct {
		u UserID
		r ReviewID
		v float64
	}{
		{users + 2, r0, 0.8}, {users + 3, r0, 0.6}, {users + 2, r1, 1.0},
		{users + 4, r2, 0.2}, {users + 2, r2, 0.4},
	} {
		if err := b.AddRating(rt.u, rt.r, rt.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddTrust(users, users+1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(users+2, users); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

// TestImageRoundTrip pins that an imaged dataset is indistinguishable
// from its original: entities, and every frozen index view the pipeline
// reads, element for element.
func TestImageRoundTrip(t *testing.T) {
	d := imageTestDataset(t)
	got, err := DatasetFromImage(AppendImage(nil, d))
	if err != nil {
		t.Fatal(err)
	}

	if got.String() != d.String() {
		t.Fatalf("shape: %v vs %v", got, d)
	}
	for c := 0; c < d.NumCategories(); c++ {
		if got.CategoryName(CategoryID(c)) != d.CategoryName(CategoryID(c)) {
			t.Fatalf("category %d name differs", c)
		}
		if fmt.Sprint(got.ReviewsInCategory(CategoryID(c))) != fmt.Sprint(d.ReviewsInCategory(CategoryID(c))) {
			t.Fatalf("ReviewsInCategory(%d) differs", c)
		}
	}
	for u := 0; u < d.NumUsers(); u++ {
		uid := UserID(u)
		if got.UserName(uid) != d.UserName(uid) {
			t.Fatalf("user %d name differs", u)
		}
		if fmt.Sprint(got.ReviewsByWriter(uid)) != fmt.Sprint(d.ReviewsByWriter(uid)) {
			t.Fatalf("ReviewsByWriter(%d) differs", u)
		}
		if fmt.Sprint(got.RatingsBy(uid)) != fmt.Sprint(d.RatingsBy(uid)) {
			t.Fatalf("RatingsBy(%d) differs", u)
		}
		if fmt.Sprint(got.TrustedBy(uid)) != fmt.Sprint(d.TrustedBy(uid)) {
			t.Fatalf("TrustedBy(%d) differs", u)
		}
		var wantConn, gotConn []Connection
		d.ConnectionsFrom(uid, func(c Connection) { wantConn = append(wantConn, c) })
		got.ConnectionsFrom(uid, func(c Connection) { gotConn = append(gotConn, c) })
		if fmt.Sprint(wantConn) != fmt.Sprint(gotConn) {
			t.Fatalf("ConnectionsFrom(%d): %v vs %v", u, gotConn, wantConn)
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		if got.Review(ReviewID(r)) != d.Review(ReviewID(r)) {
			t.Fatalf("review %d differs", r)
		}
		if fmt.Sprint(got.RatingsOn(ReviewID(r))) != fmt.Sprint(d.RatingsOn(ReviewID(r))) {
			t.Fatalf("RatingsOn(%d) differs", r)
		}
	}
	for i := range d.Ratings() {
		if got.Ratings()[i] != d.Ratings()[i] {
			t.Fatalf("rating %d differs", i)
		}
	}

	// And the round trip is byte-stable: image(decode(image)) == image.
	a := AppendImage(nil, d)
	bb := AppendImage(nil, got)
	if string(a) != string(bb) {
		t.Fatal("image round trip is not byte-stable")
	}
}

// TestImageRejectsDamage walks truncations and bit flips through the
// decoder: every one must fail with ErrBadImage, never panic.
func TestImageRejectsDamage(t *testing.T) {
	d := imageTestDataset(t)
	img := AppendImage(nil, d)

	for cut := 0; cut < len(img); cut += 7 {
		if _, err := DatasetFromImage(img[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !errors.Is(err, ErrBadImage) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadImage", cut, err)
		}
	}
	if _, err := DatasetFromImage(append(img[:len(img):len(img)], 0xff)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestImageEmptyDataset round-trips the degenerate empty community.
func TestImageEmptyDataset(t *testing.T) {
	d := NewBuilder().Build()
	got, err := DatasetFromImage(AppendImage(nil, d))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != 0 || got.NumRatings() != 0 {
		t.Fatalf("empty round trip: %v", got)
	}
}
