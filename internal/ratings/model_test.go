package ratings

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeRating(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0.2},
		{-1, 0.2},
		{0.1, 0.2},
		{0.29, 0.2},
		{0.31, 0.4},
		{0.5, 0.4}, // 0.5*5 = 2.5 rounds to 2 via round-half-away? math.Round(2.5)=3 -> 0.6
		{0.55, 0.6},
		{0.75, 0.8},
		{0.95, 1.0},
		{1.0, 1.0},
		{2.0, 1.0},
	}
	for _, c := range cases {
		got := QuantizeRating(c.in)
		if c.in == 0.5 {
			// math.Round rounds half away from zero: 2.5 -> 3 -> 0.6.
			if got != 0.6 {
				t.Errorf("QuantizeRating(0.5) = %v, want 0.6", got)
			}
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QuantizeRating(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValidRating(t *testing.T) {
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		if !ValidRating(v) {
			t.Errorf("ValidRating(%v) = false, want true", v)
		}
	}
	for _, v := range []float64{0, 0.1, 0.3, 1.2, -0.2, 0.20001} {
		if ValidRating(v) {
			t.Errorf("ValidRating(%v) = true, want false", v)
		}
	}
}

func TestRatingLevel(t *testing.T) {
	for level := 1; level <= RatingLevels; level++ {
		v := float64(level) / RatingLevels
		if got := RatingLevel(v); got != level {
			t.Errorf("RatingLevel(%v) = %d, want %d", v, got, level)
		}
	}
}

// Property: QuantizeRating always yields a valid rating and is idempotent.
func TestQuantizeRatingQuick(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		q := QuantizeRating(x)
		return ValidRating(q) && QuantizeRating(q) == q
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: quantization never moves a value by more than half a level
// (plus clamping at the ends).
func TestQuantizeRatingDistanceQuick(t *testing.T) {
	f := func(raw uint16) bool {
		x := MinRating + (MaxRating-MinRating)*float64(raw)/65535
		q := QuantizeRating(x)
		return math.Abs(q-x) <= 0.1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
