package ratings

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/stats"
)

func TestReviewsIndexes(t *testing.T) {
	d := buildTiny(t)
	movies := d.ReviewsInCategory(0)
	if len(movies) != 2 || movies[0] != 0 || movies[1] != 1 {
		t.Errorf("ReviewsInCategory(movies) = %v, want [0 1]", movies)
	}
	books := d.ReviewsInCategory(1)
	if len(books) != 1 || books[0] != 2 {
		t.Errorf("ReviewsInCategory(books) = %v, want [2]", books)
	}
	alice := d.ReviewsByWriter(0)
	if len(alice) != 2 {
		t.Errorf("alice reviews = %v, want 2 reviews", alice)
	}
	if len(d.ReviewsByWriter(4)) != 0 {
		t.Error("idle user should have no reviews")
	}
}

func TestRatingsIndexes(t *testing.T) {
	d := buildTiny(t)
	onR1 := d.RatingsOn(0)
	if len(onR1) != 2 {
		t.Fatalf("RatingsOn(r1) has %d entries, want 2", len(onR1))
	}
	var sum float64
	for _, r := range onR1 {
		if r.Review != 0 {
			t.Errorf("rating grouped into wrong review: %+v", r)
		}
		sum += r.Value
	}
	if math.Abs(sum-1.8) > 1e-12 {
		t.Errorf("sum of ratings on r1 = %v, want 1.8", sum)
	}
	byCarol := d.RatingsBy(2)
	if len(byCarol) != 3 {
		t.Errorf("carol gave %d ratings, want 3", len(byCarol))
	}
	if len(d.RatingsBy(4)) != 0 {
		t.Error("idle user should have no ratings")
	}
}

func TestConnections(t *testing.T) {
	d := buildTiny(t)
	// carol rated alice twice (1.0, 0.8) and bob once (0.6).
	if got := d.NumConnections(2); got != 2 {
		t.Fatalf("carol connections = %d, want 2", got)
	}
	var conns []Connection
	d.ConnectionsFrom(2, func(c Connection) { conns = append(conns, c) })
	if conns[0].To != 0 || conns[1].To != 1 {
		t.Fatalf("connections not sorted by target: %+v", conns)
	}
	if conns[0].Count != 2 || math.Abs(conns[0].AvgRating()-0.9) > 1e-12 {
		t.Errorf("carol->alice = %+v, want count 2 avg 0.9", conns[0])
	}
	if conns[1].Count != 1 || math.Abs(conns[1].AvgRating()-0.6) > 1e-12 {
		t.Errorf("carol->bob = %+v, want count 1 avg 0.6", conns[1])
	}
	if !d.HasConnection(2, 0) || !d.HasConnection(3, 0) {
		t.Error("expected connections missing")
	}
	if d.HasConnection(0, 2) || d.HasConnection(4, 0) {
		t.Error("unexpected connections present")
	}
	if d.TotalConnections() != 3 {
		t.Errorf("TotalConnections = %d, want 3", d.TotalConnections())
	}
}

func TestTrustIndex(t *testing.T) {
	d := buildTiny(t)
	if !d.HasTrustEdge(2, 0) || !d.HasTrustEdge(3, 0) {
		t.Error("expected trust edges missing")
	}
	if d.HasTrustEdge(0, 2) {
		t.Error("reverse trust edge should not exist")
	}
	got := d.TrustedBy(2)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("TrustedBy(carol) = %v, want [0]", got)
	}
	if len(d.TrustedBy(4)) != 0 {
		t.Error("idle user trusts no one")
	}
}

func TestAffinityCounts(t *testing.T) {
	d := buildTiny(t)
	if got := d.NumReviewsByIn(0, 0); got != 2 {
		t.Errorf("alice reviews in movies = %d, want 2", got)
	}
	if got := d.NumReviewsByIn(0, 1); got != 0 {
		t.Errorf("alice reviews in books = %d, want 0", got)
	}
	if got := d.NumRatingsByIn(2, 0); got != 2 {
		t.Errorf("carol ratings in movies = %d, want 2", got)
	}
	if got := d.NumRatingsByIn(2, 1); got != 1 {
		t.Errorf("carol ratings in books = %d, want 1", got)
	}
}

func TestStats(t *testing.T) {
	d := buildTiny(t)
	s := d.Stats()
	if s.ActiveUsers != 4 { // eve is idle
		t.Errorf("ActiveUsers = %d, want 4", s.ActiveUsers)
	}
	if s.Writers != 2 || s.Raters != 2 {
		t.Errorf("Writers=%d Raters=%d, want 2, 2", s.Writers, s.Raters)
	}
	if s.DirectConnections != 3 {
		t.Errorf("DirectConnections = %d, want 3", s.DirectConnections)
	}
	if s.TrustInR != 2 || s.TrustOutsideR != 0 {
		t.Errorf("TrustInR=%d TrustOutsideR=%d, want 2, 0", s.TrustInR, s.TrustOutsideR)
	}
	wantDensity := 2.0 / (5 * 4)
	if math.Abs(s.TrustDensity-wantDensity) > 1e-12 {
		t.Errorf("TrustDensity = %v, want %v", s.TrustDensity, wantDensity)
	}
	if s.MeanRatingsPerRater != 2 {
		t.Errorf("MeanRatingsPerRater = %v, want 2", s.MeanRatingsPerRater)
	}
	_ = s.String()
}

// randomDataset builds a random but valid dataset for property tests.
func randomDataset(seed uint64) *Dataset {
	rng := stats.NewRand(seed)
	b := NewBuilder()
	numCats := 1 + rng.IntN(4)
	for c := 0; c < numCats; c++ {
		b.AddCategory("")
	}
	numUsers := 2 + rng.IntN(20)
	b.AddUsers(numUsers)
	numObjects := 1 + rng.IntN(15)
	for o := 0; o < numObjects; o++ {
		if _, err := b.AddObject(CategoryID(rng.IntN(numCats)), ""); err != nil {
			panic(err)
		}
	}
	var reviews []ReviewID
	for k := 0; k < rng.IntN(40); k++ {
		w := UserID(rng.IntN(numUsers))
		o := ObjectID(rng.IntN(numObjects))
		if b.HasReview(w, o) {
			continue
		}
		id, err := b.AddReview(w, o)
		if err != nil {
			panic(err)
		}
		reviews = append(reviews, id)
	}
	for k := 0; k < rng.IntN(120) && len(reviews) > 0; k++ {
		rater := UserID(rng.IntN(numUsers))
		rev := reviews[rng.IntN(len(reviews))]
		v := QuantizeRating(rng.Float64())
		if b.HasRating(rater, rev) {
			continue
		}
		if err := b.AddRating(rater, rev, v); err != nil {
			continue // self-rating attempts are fine to skip
		}
	}
	for k := 0; k < rng.IntN(30); k++ {
		from := UserID(rng.IntN(numUsers))
		to := UserID(rng.IntN(numUsers))
		if from == to || b.HasTrust(from, to) {
			continue
		}
		if err := b.AddTrust(from, to); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Property: indexes are consistent with the flat lists — every rating
// appears exactly once in each grouping, and connection counts equal the
// number of distinct (rater, writer) pairs.
func TestIndexConsistencyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		// Sum of grouped ratings equals total.
		byReview, byRater := 0, 0
		for r := ReviewID(0); int(r) < d.NumReviews(); r++ {
			byReview += len(d.RatingsOn(r))
		}
		for u := UserID(0); int(u) < d.NumUsers(); u++ {
			byRater += len(d.RatingsBy(u))
		}
		if byReview != d.NumRatings() || byRater != d.NumRatings() {
			return false
		}
		// Connections match a reference recomputation.
		ref := make(map[uint64]int)
		for _, r := range d.Ratings() {
			ref[pairKey(int32(r.Rater), int32(d.Review(r.Review).Writer))]++
		}
		total := 0
		for u := UserID(0); int(u) < d.NumUsers(); u++ {
			d.ConnectionsFrom(u, func(c Connection) {
				total++
				if ref[pairKey(int32(u), int32(c.To))] != int(c.Count) {
					t.Errorf("seed %d: connection %d->%d count %d, ref %d",
						seed, u, c.To, c.Count, ref[pairKey(int32(u), int32(c.To))])
				}
			})
		}
		if total != len(ref) || total != d.TotalConnections() {
			return false
		}
		// Trust adjacency matches the edge list.
		for _, e := range d.TrustEdges() {
			if !d.HasTrustEdge(e.From, e.To) {
				return false
			}
		}
		nTrust := 0
		for u := UserID(0); int(u) < d.NumUsers(); u++ {
			nTrust += len(d.TrustedBy(u))
		}
		return nTrust == d.NumTrustEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: per-category review and rating counts sum to the totals.
func TestCategoryCountsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		revSum, ratSum := 0, 0
		for c := CategoryID(0); int(c) < d.NumCategories(); c++ {
			revSum += len(d.ReviewsInCategory(c))
			for u := UserID(0); int(u) < d.NumUsers(); u++ {
				ratSum += d.NumRatingsByIn(u, c)
			}
		}
		return revSum == d.NumReviews() && ratSum == d.NumRatings()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
