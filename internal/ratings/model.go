// Package ratings defines the review-community data model the whole
// framework operates on: users who write reviews on objects in categories,
// users who rate those reviews on Epinions' five-level helpfulness scale,
// and an optional explicit web of trust used as evaluation ground truth.
//
// A Dataset is immutable once built. Construct one through a Builder, which
// validates referential integrity and freezes CSR-style indexes for the
// access patterns the pipeline needs (reviews by writer, reviews by
// category, ratings by review, ratings by rater, rater-to-writer direct
// connections).
package ratings

import (
	"errors"
	"fmt"
	"math"
)

// Typed identifiers. IDs are dense: users are 0..NumUsers-1, categories
// 0..NumCategories-1, and so on, which lets every index be a slice.
type (
	// UserID identifies a community member (writer and/or rater).
	UserID int32
	// CategoryID identifies a review category (the paper's "context").
	CategoryID int32
	// ObjectID identifies a reviewable object (e.g. a movie).
	ObjectID int32
	// ReviewID identifies a single review.
	ReviewID int32
)

// NoUser is the sentinel for an absent user reference.
const NoUser UserID = -1

// Rating scale: Epinions' five helpfulness levels, scored 0.2 (not
// helpful) through 1.0 (most helpful) as in the paper's Section IV-A.
const (
	// RatingLevels is the number of discrete rating values.
	RatingLevels = 5
	// MinRating is the lowest expressible rating (0.2, "not helpful").
	MinRating = 1.0 / RatingLevels
	// MaxRating is the highest expressible rating (1.0, "most helpful").
	MaxRating = 1.0
)

// QuantizeRating snaps x to the nearest of the five rating levels,
// clamping to [MinRating, MaxRating]. It is how the synthetic generator
// (and any ingestion of continuous scores) discretises ratings.
func QuantizeRating(x float64) float64 {
	level := math.Round(x * RatingLevels)
	if level < 1 {
		level = 1
	}
	if level > RatingLevels {
		level = RatingLevels
	}
	return level / RatingLevels
}

// ValidRating reports whether v is exactly one of the five levels.
func ValidRating(v float64) bool {
	scaled := v * RatingLevels
	rounded := math.Round(scaled)
	return rounded >= 1 && rounded <= RatingLevels && math.Abs(scaled-rounded) < 1e-9
}

// RatingLevel returns the 1-based level of a valid rating value (0.2 -> 1,
// 1.0 -> 5). The result is unspecified for invalid values.
func RatingLevel(v float64) int {
	return int(math.Round(v * RatingLevels))
}

// Object is something users review, e.g. a movie in one of the Video & DVD
// sub-categories.
type Object struct {
	ID       ObjectID
	Category CategoryID
	Name     string
}

// Review is a text review written by a user about an object. The review's
// category is the category of its object, denormalised here because every
// pipeline step groups by category.
type Review struct {
	ID       ReviewID
	Writer   UserID
	Object   ObjectID
	Category CategoryID
}

// Rating is one user's helpfulness rating of one review.
type Rating struct {
	Rater  UserID
	Review ReviewID
	Value  float64
}

// TrustEdge is a directed explicit-trust statement: From trusts To. The
// paper treats explicit trust as binary, so an edge is presence-only.
type TrustEdge struct {
	From, To UserID
}

// Validation errors returned by the Builder.
var (
	// ErrUnknownUser marks a reference to a user that was never added.
	ErrUnknownUser = errors.New("ratings: unknown user")
	// ErrUnknownCategory marks a reference to an absent category.
	ErrUnknownCategory = errors.New("ratings: unknown category")
	// ErrUnknownObject marks a reference to an absent object.
	ErrUnknownObject = errors.New("ratings: unknown object")
	// ErrUnknownReview marks a reference to an absent review.
	ErrUnknownReview = errors.New("ratings: unknown review")
	// ErrInvalidRating marks a rating value off the five-level scale.
	ErrInvalidRating = errors.New("ratings: invalid rating value")
	// ErrDuplicate marks a duplicate review (same writer and object),
	// rating (same rater and review) or trust edge (same pair).
	ErrDuplicate = errors.New("ratings: duplicate")
	// ErrSelf marks a self-interaction: rating one's own review or
	// trusting oneself.
	ErrSelf = errors.New("ratings: self-interaction")
)

// Dataset is an immutable review community. All exported slice fields are
// owned by the dataset and must not be modified; concurrent reads are safe.
type Dataset struct {
	userNames  []string
	categories []string
	objects    []Object
	reviews    []Review
	ratingList []Rating
	trust      []TrustEdge

	idx *indexes
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.userNames) }

// NumCategories returns the number of categories.
func (d *Dataset) NumCategories() int { return len(d.categories) }

// NumObjects returns the number of objects.
func (d *Dataset) NumObjects() int { return len(d.objects) }

// NumReviews returns the number of reviews.
func (d *Dataset) NumReviews() int { return len(d.reviews) }

// NumRatings returns the number of ratings.
func (d *Dataset) NumRatings() int { return len(d.ratingList) }

// NumTrustEdges returns the number of explicit trust edges.
func (d *Dataset) NumTrustEdges() int { return len(d.trust) }

// UserName returns the display name of u.
func (d *Dataset) UserName(u UserID) string { return d.userNames[u] }

// CategoryName returns the display name of c.
func (d *Dataset) CategoryName(c CategoryID) string { return d.categories[c] }

// Categories returns all category names indexed by CategoryID. The caller
// must not modify the returned slice.
func (d *Dataset) Categories() []string { return d.categories }

// Object returns the object with the given id.
func (d *Dataset) Object(o ObjectID) Object { return d.objects[o] }

// Review returns the review with the given id.
func (d *Dataset) Review(r ReviewID) Review { return d.reviews[r] }

// Reviews returns all reviews indexed by ReviewID. The caller must not
// modify the returned slice.
func (d *Dataset) Reviews() []Review { return d.reviews }

// Ratings returns all ratings in insertion order. The caller must not
// modify the returned slice.
func (d *Dataset) Ratings() []Rating { return d.ratingList }

// TrustEdges returns all explicit trust edges. The caller must not modify
// the returned slice.
func (d *Dataset) TrustEdges() []TrustEdge { return d.trust }

// HasExplicitTrust reports whether the dataset carries an explicit web of
// trust (needed only for evaluation; the framework itself never reads it).
func (d *Dataset) HasExplicitTrust() bool { return len(d.trust) > 0 }

// String summarises the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("Dataset{users: %d, categories: %d, objects: %d, reviews: %d, ratings: %d, trust: %d}",
		d.NumUsers(), d.NumCategories(), d.NumObjects(), d.NumReviews(), d.NumRatings(), d.NumTrustEdges())
}
