package ratings

import (
	"fmt"
	"slices"
)

// Builder accumulates a dataset's entities, validates referential
// integrity, and freezes the result into an immutable Dataset. The zero
// value is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	userNames  []string
	categories []string
	objects    []Object
	reviews    []Review
	ratingList []Rating
	trust      []TrustEdge

	reviewByWriterObject map[uint64]struct{} // one review per (writer, object)
	ratingByRaterReview  map[uint64]struct{} // one rating per (rater, review)
	trustByPair          map[uint64]struct{} // one edge per (from, to)
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		reviewByWriterObject: make(map[uint64]struct{}),
		ratingByRaterReview:  make(map[uint64]struct{}),
		trustByPair:          make(map[uint64]struct{}),
	}
}

func pairKey(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// NewBuilderFrom returns a Builder holding exactly the entities of d, as
// if every one had been re-added in order, so appending can continue where
// the dataset left off — the shape a warm restart needs: a checkpoint
// restores the Dataset, and the event-log tailer requires a live Builder
// positioned at the same point. The dataset's slices are cloned (the
// builder mutates its backing arrays as it grows; the dataset must stay
// immutable), and the dedup maps are rebuilt from the entries themselves.
// Later snapshots of the returned builder extend d in the checkExtension
// sense: all of d's entities form a prefix, element for element.
func NewBuilderFrom(d *Dataset) *Builder {
	b := &Builder{
		userNames:            slices.Clone(d.userNames),
		categories:           slices.Clone(d.categories),
		objects:              slices.Clone(d.objects),
		reviews:              slices.Clone(d.reviews),
		ratingList:           slices.Clone(d.ratingList),
		trust:                slices.Clone(d.trust),
		reviewByWriterObject: make(map[uint64]struct{}, len(d.reviews)),
		ratingByRaterReview:  make(map[uint64]struct{}, len(d.ratingList)),
		trustByPair:          make(map[uint64]struct{}, len(d.trust)),
	}
	for _, r := range b.reviews {
		b.reviewByWriterObject[pairKey(int32(r.Writer), int32(r.Object))] = struct{}{}
	}
	for _, rt := range b.ratingList {
		b.ratingByRaterReview[pairKey(int32(rt.Rater), int32(rt.Review))] = struct{}{}
	}
	for _, e := range b.trust {
		b.trustByPair[pairKey(int32(e.From), int32(e.To))] = struct{}{}
	}
	return b
}

// AddUser registers a user and returns its id. Names need not be unique;
// an empty name is replaced with "user<N>".
func (b *Builder) AddUser(name string) UserID {
	id := UserID(len(b.userNames))
	if name == "" {
		name = fmt.Sprintf("user%d", id)
	}
	b.userNames = append(b.userNames, name)
	return id
}

// AddUsers registers n anonymous users and returns the id of the first.
func (b *Builder) AddUsers(n int) UserID {
	first := UserID(len(b.userNames))
	for i := 0; i < n; i++ {
		b.AddUser("")
	}
	return first
}

// AddCategory registers a category and returns its id.
func (b *Builder) AddCategory(name string) CategoryID {
	id := CategoryID(len(b.categories))
	if name == "" {
		name = fmt.Sprintf("category%d", id)
	}
	b.categories = append(b.categories, name)
	return id
}

// AddObject registers an object in a category and returns its id, or an
// error if the category does not exist.
func (b *Builder) AddObject(category CategoryID, name string) (ObjectID, error) {
	if int(category) < 0 || int(category) >= len(b.categories) {
		return 0, fmt.Errorf("%w: category %d", ErrUnknownCategory, category)
	}
	id := ObjectID(len(b.objects))
	if name == "" {
		name = fmt.Sprintf("object%d", id)
	}
	b.objects = append(b.objects, Object{ID: id, Category: category, Name: name})
	return id, nil
}

// AddReview records that writer reviewed object and returns the review id.
// A user may write at most one review per object (as on Epinions).
func (b *Builder) AddReview(writer UserID, object ObjectID) (ReviewID, error) {
	if int(writer) < 0 || int(writer) >= len(b.userNames) {
		return 0, fmt.Errorf("%w: writer %d", ErrUnknownUser, writer)
	}
	if int(object) < 0 || int(object) >= len(b.objects) {
		return 0, fmt.Errorf("%w: object %d", ErrUnknownObject, object)
	}
	key := pairKey(int32(writer), int32(object))
	if _, dup := b.reviewByWriterObject[key]; dup {
		return 0, fmt.Errorf("%w review: writer %d already reviewed object %d", ErrDuplicate, writer, object)
	}
	b.reviewByWriterObject[key] = struct{}{}
	id := ReviewID(len(b.reviews))
	b.reviews = append(b.reviews, Review{
		ID:       id,
		Writer:   writer,
		Object:   object,
		Category: b.objects[object].Category,
	})
	return id, nil
}

// AddRating records that rater rated review with value, which must be one
// of the five levels. Users cannot rate their own reviews, and may rate a
// given review at most once.
func (b *Builder) AddRating(rater UserID, review ReviewID, value float64) error {
	if int(rater) < 0 || int(rater) >= len(b.userNames) {
		return fmt.Errorf("%w: rater %d", ErrUnknownUser, rater)
	}
	if int(review) < 0 || int(review) >= len(b.reviews) {
		return fmt.Errorf("%w: review %d", ErrUnknownReview, review)
	}
	if !ValidRating(value) {
		return fmt.Errorf("%w: %v", ErrInvalidRating, value)
	}
	if b.reviews[review].Writer == rater {
		return fmt.Errorf("%w: user %d rating own review %d", ErrSelf, rater, review)
	}
	key := pairKey(int32(rater), int32(review))
	if _, dup := b.ratingByRaterReview[key]; dup {
		return fmt.Errorf("%w rating: rater %d already rated review %d", ErrDuplicate, rater, review)
	}
	b.ratingByRaterReview[key] = struct{}{}
	b.ratingList = append(b.ratingList, Rating{Rater: rater, Review: review, Value: value})
	return nil
}

// AddTrust records a directed explicit-trust edge from -> to. Self-trust
// and duplicate edges are rejected.
func (b *Builder) AddTrust(from, to UserID) error {
	if int(from) < 0 || int(from) >= len(b.userNames) {
		return fmt.Errorf("%w: truster %d", ErrUnknownUser, from)
	}
	if int(to) < 0 || int(to) >= len(b.userNames) {
		return fmt.Errorf("%w: trustee %d", ErrUnknownUser, to)
	}
	if from == to {
		return fmt.Errorf("%w: user %d trusting themselves", ErrSelf, from)
	}
	key := pairKey(int32(from), int32(to))
	if _, dup := b.trustByPair[key]; dup {
		return fmt.Errorf("%w trust edge: %d -> %d", ErrDuplicate, from, to)
	}
	b.trustByPair[key] = struct{}{}
	b.trust = append(b.trust, TrustEdge{From: from, To: to})
	return nil
}

// HasReview reports whether writer already reviewed object.
func (b *Builder) HasReview(writer UserID, object ObjectID) bool {
	_, ok := b.reviewByWriterObject[pairKey(int32(writer), int32(object))]
	return ok
}

// HasRating reports whether rater already rated review.
func (b *Builder) HasRating(rater UserID, review ReviewID) bool {
	_, ok := b.ratingByRaterReview[pairKey(int32(rater), int32(review))]
	return ok
}

// HasTrust reports whether the edge from -> to was already added.
func (b *Builder) HasTrust(from, to UserID) bool {
	_, ok := b.trustByPair[pairKey(int32(from), int32(to))]
	return ok
}

// NumUsers returns the number of users added so far.
func (b *Builder) NumUsers() int { return len(b.userNames) }

// NumCategories returns the number of categories added so far.
func (b *Builder) NumCategories() int { return len(b.categories) }

// NumObjects returns the number of objects added so far.
func (b *Builder) NumObjects() int { return len(b.objects) }

// NumReviews returns the number of reviews added so far.
func (b *Builder) NumReviews() int { return len(b.reviews) }

// Build freezes the accumulated entities into an immutable, fully indexed
// Dataset. The builder must not be used afterwards; use Snapshot to keep
// appending.
func (b *Builder) Build() *Dataset {
	return b.Snapshot()
}

// Snapshot freezes the entities added so far into an immutable, fully
// indexed Dataset without retiring the builder. The builder may keep
// appending and snapshot again; because the builder is append-only, every
// later snapshot extends every earlier one (the event-log-tailing shape),
// and earlier snapshots are never disturbed — appends land beyond their
// slice lengths.
func (b *Builder) Snapshot() *Dataset {
	d := &Dataset{
		userNames:  b.userNames,
		categories: b.categories,
		objects:    b.objects,
		reviews:    b.reviews,
		ratingList: b.ratingList,
		trust:      b.trust,
	}
	d.idx = buildIndexes(d)
	return d
}
