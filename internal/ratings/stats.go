package ratings

import "fmt"

// DatasetStats summarises a dataset's size and sparsity, mirroring the
// quantities the paper reports for its Epinions crawl (Section IV-A) and
// the density comparison of Fig. 3.
type DatasetStats struct {
	Users      int
	Categories int
	Objects    int
	Reviews    int
	Ratings    int
	TrustEdges int

	// ActiveUsers is the number of users who wrote or rated at least one
	// review (the paper keeps only such users: 44,197 in Video & DVD).
	ActiveUsers int
	// Writers and Raters count users with at least one review / rating.
	Writers int
	Raters  int

	// DirectConnections is the number of non-zero cells of R.
	DirectConnections int
	// TrustDensity, ConnectionDensity are nnz / (U*(U-1)) — fractions of
	// possible directed pairs.
	TrustDensity      float64
	ConnectionDensity float64

	// TrustInR / TrustOutsideR split the explicit trust edges into those
	// whose pair also has a direct connection (T∩R) and the rest (T−R).
	TrustInR      int
	TrustOutsideR int

	// MeanRatingsPerRater and MeanReviewsPerWriter describe activity.
	MeanRatingsPerRater  float64
	MeanReviewsPerWriter float64
}

// Stats computes summary statistics for the dataset.
func (d *Dataset) Stats() DatasetStats {
	s := DatasetStats{
		Users:      d.NumUsers(),
		Categories: d.NumCategories(),
		Objects:    d.NumObjects(),
		Reviews:    d.NumReviews(),
		Ratings:    d.NumRatings(),
		TrustEdges: d.NumTrustEdges(),
	}
	for u := UserID(0); int(u) < d.NumUsers(); u++ {
		wrote := len(d.ReviewsByWriter(u)) > 0
		rated := len(d.RatingsBy(u)) > 0
		if wrote {
			s.Writers++
		}
		if rated {
			s.Raters++
		}
		if wrote || rated {
			s.ActiveUsers++
		}
	}
	s.DirectConnections = d.TotalConnections()
	pairs := float64(d.NumUsers()) * float64(d.NumUsers()-1)
	if pairs > 0 {
		s.TrustDensity = float64(s.TrustEdges) / pairs
		s.ConnectionDensity = float64(s.DirectConnections) / pairs
	}
	for _, e := range d.trust {
		if d.HasConnection(e.From, e.To) {
			s.TrustInR++
		} else {
			s.TrustOutsideR++
		}
	}
	if s.Raters > 0 {
		s.MeanRatingsPerRater = float64(s.Ratings) / float64(s.Raters)
	}
	if s.Writers > 0 {
		s.MeanReviewsPerWriter = float64(s.Reviews) / float64(s.Writers)
	}
	return s
}

// String renders the stats in a compact human-readable block.
func (s DatasetStats) String() string {
	return fmt.Sprintf(
		"users=%d (active=%d, writers=%d, raters=%d) categories=%d objects=%d\n"+
			"reviews=%d ratings=%d trust=%d (inR=%d outsideR=%d)\n"+
			"connections=%d trustDensity=%.6f connDensity=%.6f\n"+
			"ratings/rater=%.2f reviews/writer=%.2f",
		s.Users, s.ActiveUsers, s.Writers, s.Raters, s.Categories, s.Objects,
		s.Reviews, s.Ratings, s.TrustEdges, s.TrustInR, s.TrustOutsideR,
		s.DirectConnections, s.TrustDensity, s.ConnectionDensity,
		s.MeanRatingsPerRater, s.MeanReviewsPerWriter)
}
