package ratings

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements the dataset *image*: a trusted bulk binary form of
// a Dataset, built for warm restarts. Where the store snapshot replays
// every record through a validating Builder (dedup maps, one lookup per
// record — right for data of unknown provenance, and ~10× slower), the
// image decodes entity columns straight into the Dataset's slices with
// O(1)-per-record structural checks only, and decodes the frozen indexes
// rather than rebuilding them — index construction (counting sorts plus
// the direct-connection aggregation) is the dominant cost of loading a
// dataset at scale, and the arrays round-trip verbatim, which also makes
// a restored dataset trivially index-for-index identical to its original.
//
// The image carries NO checksum of its own and performs NO duplicate
// detection: the caller must deliver bytes whose integrity is already
// established (the checkpoint codec wraps the image in its CRC) and that
// originate from a real Dataset. What the decoder does guarantee, for
// any byte string whatsoever, is memory safety: every count is bounded
// by the bytes actually present before any allocation, every id is
// range-checked, offset arrays are validated monotonic, and malformed
// input yields ErrBadImage — never a panic or an outsized allocation
// (pinned by the checkpoint fuzz target). A forged index section can
// therefore misgroup records (provenance is the caller's problem) but
// never read out of bounds.
//
// Layout — header counts are varints; every array that scales with the
// dataset is fixed-width little-endian so decoding is a bulk conversion
// loop rather than per-element varint branching:
//
//	version (currently 1)
//	counts: users, categories, objects, reviews, ratings, trust edges
//	category names, user names        (len-prefixed strings)
//	objects                           (category u32, name)
//	reviews                           (writer u32, object u32; category derived)
//	ratings                           flag byte, then per rating
//	                                  (rater u32, review u32, value: one
//	                                  level byte when flag=1, else exact
//	                                  8-byte float bits)
//	trust edges                       (from u32, to u32)
//	indexes: reviews-by-category and reviews-by-writer (u32 offsets + u32
//	         review ids), ratings-by-review and ratings-by-rater (u32
//	         offsets + u32 permutations of the rating list), direct
//	         connections (u32 offsets + u32 writer / u32 count / f64 sum
//	         columns), trust adjacency (u32 offsets + u32 trustee ids)
//
// Rating values are quantized to a level byte only when every value is
// bitwise float64(level)/RatingLevels (what the Builder's callers, the
// event log and the snapshot reader all produce); the flag keeps the
// exact 8-byte form for the off-grid values ValidRating's tolerance
// admits, so the image never changes a value's bits either way.

// ErrBadImage reports a structurally invalid dataset image.
var ErrBadImage = errors.New("ratings: bad dataset image")

const imageVersion = 1

// AppendImage appends the trusted binary image of d to dst and returns
// the extended slice.
func AppendImage(dst []byte, d *Dataset) []byte {
	dst = binary.AppendUvarint(dst, imageVersion)
	dst = binary.AppendUvarint(dst, uint64(d.NumUsers()))
	dst = binary.AppendUvarint(dst, uint64(d.NumCategories()))
	dst = binary.AppendUvarint(dst, uint64(d.NumObjects()))
	dst = binary.AppendUvarint(dst, uint64(d.NumReviews()))
	dst = binary.AppendUvarint(dst, uint64(d.NumRatings()))
	dst = binary.AppendUvarint(dst, uint64(d.NumTrustEdges()))
	appendStr := func(s string) {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	u32 := func(v int32) {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, name := range d.categories {
		appendStr(name)
	}
	for _, name := range d.userNames {
		appendStr(name)
	}
	for _, o := range d.objects {
		u32(int32(o.Category))
		appendStr(o.Name)
	}
	for _, r := range d.reviews {
		u32(int32(r.Writer))
		u32(int32(r.Object))
	}
	quantized := byte(1)
	for _, rt := range d.ratingList {
		if math.Float64bits(rt.Value) != math.Float64bits(float64(RatingLevel(rt.Value))/RatingLevels) {
			quantized = 0
			break
		}
	}
	dst = append(dst, quantized)
	for _, rt := range d.ratingList {
		u32(int32(rt.Rater))
		u32(int32(rt.Review))
		if quantized == 1 {
			dst = append(dst, byte(RatingLevel(rt.Value)))
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rt.Value))
		}
	}
	for _, e := range d.trust {
		u32(int32(e.From))
		u32(int32(e.To))
	}

	// Frozen indexes. The ratings groupings are stored as permutations of
	// the rating list (an index per entry), not as copies of the records.
	idx := d.idx
	u32s := func(vs []int32) {
		for _, v := range vs {
			u32(v)
		}
	}
	u32s(idx.reviewsByCategoryOff)
	for _, r := range idx.reviewsByCategory {
		u32(int32(r))
	}
	u32s(idx.reviewsByWriterOff)
	for _, r := range idx.reviewsByWriter {
		u32(int32(r))
	}
	u32s(idx.ratingsByReviewOff)
	u32s(ratingPerm(d.ratingList, d.NumReviews(), func(r Rating) int32 { return int32(r.Review) }))
	u32s(idx.ratingsByRaterOff)
	u32s(ratingPerm(d.ratingList, d.NumUsers(), func(r Rating) int32 { return int32(r.Rater) }))
	u32s(idx.connOff)
	for i, to := range idx.connTo {
		u32(int32(to))
		u32(idx.connCount[i])
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(idx.connSum[i]))
	}
	u32s(idx.trustOff)
	for _, to := range idx.trustTo {
		u32(int32(to))
	}
	return dst
}

// ratingPerm runs the same stable counting sort groupRatings freezes,
// but yields the source index of each grouped slot instead of the record
// — the permutation the image stores so the decoder can gather instead
// of re-sorting.
func ratingPerm(list []Rating, groups int, key func(Rating) int32) []int32 {
	off := make([]int32, groups+1)
	for _, r := range list {
		off[key(r)+1]++
	}
	for g := 0; g < groups; g++ {
		off[g+1] += off[g]
	}
	perm := make([]int32, len(list))
	next := off[:groups]
	for i, r := range list {
		g := key(r)
		perm[next[g]] = int32(i)
		next[g]++
	}
	return perm
}

// DatasetFromImage decodes an image produced by AppendImage. See the
// file comment for the trust model: bytes must be integrity-checked by
// the caller; the decoder guarantees memory safety and structural sanity
// for arbitrary input, not provenance.
func DatasetFromImage(data []byte) (*Dataset, error) {
	ir := &imageReader{rest: data}
	if v := ir.uvarint(); ir.err == nil && v != imageVersion {
		return nil, fmt.Errorf("%w: image version %d", ErrBadImage, v)
	}
	numU := ir.count("user", 1)
	numC := ir.count("category", 1)
	numO := ir.count("object", 5)
	numRv := ir.count("review", 8)
	numRt := ir.count("rating", 9)
	numT := ir.count("trust", 8)
	if ir.err != nil {
		return nil, ir.err
	}

	// Entity sections grow by capped append while bytes are consumed
	// rather than being pre-sized from the header counts: an in-memory
	// entry costs up to 16x its wire form, so a count-sized make would
	// let a forged header allocate many times the input before a single
	// section byte is read. With append, allocation stays within a small
	// constant of the bytes actually decoded, and a lying count dies on
	// EOF.
	d := &Dataset{}
	d.categories = ir.strs(numC)
	d.userNames = ir.strs(numU)
	d.objects = growEntity(d.objects, numO)
	for i := 0; i < numO && ir.err == nil; i++ {
		cat := ir.u32("object category", numC)
		d.objects = append(d.objects, Object{ID: ObjectID(i), Category: CategoryID(cat), Name: ir.str()})
	}
	d.reviews = growEntity(d.reviews, numRv)
	for i := 0; i < numRv && ir.err == nil; i++ {
		writer := ir.u32("review writer", numU)
		object := ir.u32("review object", numO)
		if ir.err != nil {
			break
		}
		d.reviews = append(d.reviews, Review{
			ID:       ReviewID(i),
			Writer:   UserID(writer),
			Object:   ObjectID(object),
			Category: d.objects[object].Category,
		})
	}
	quantized := ir.byte()
	if ir.err == nil && quantized > 1 {
		return nil, fmt.Errorf("%w: rating encoding flag %d", ErrBadImage, quantized)
	}
	d.ratingList = growEntity(d.ratingList, numRt)
	for i := 0; i < numRt && ir.err == nil; i++ {
		rater := ir.u32("rater", numU)
		review := ir.u32("rated review", numRv)
		var value float64
		if quantized == 1 {
			level := ir.byte()
			if ir.err == nil && (level < 1 || level > RatingLevels) {
				return nil, fmt.Errorf("%w: rating %d level %d", ErrBadImage, i, level)
			}
			value = float64(level) / RatingLevels
		} else {
			value = ir.floatBits()
			if ir.err == nil && !ValidRating(value) {
				return nil, fmt.Errorf("%w: rating %d value %v off scale", ErrBadImage, i, value)
			}
		}
		if ir.err != nil {
			break
		}
		d.ratingList = append(d.ratingList, Rating{Rater: UserID(rater), Review: ReviewID(review), Value: value})
	}
	d.trust = growEntity(d.trust, numT)
	for i := 0; i < numT && ir.err == nil; i++ {
		from := ir.u32("trust from", numU)
		to := ir.u32("trust to", numU)
		d.trust = append(d.trust, TrustEdge{From: UserID(from), To: UserID(to)})
	}
	if ir.err != nil {
		return nil, ir.err
	}

	// Frozen indexes: decode the arrays instead of rebuilding them.
	idx := &indexes{}
	idx.reviewsByCategoryOff = ir.offsets("reviews by category", numC, numRv, true)
	idx.reviewsByCategory = reviewIDs(ir.u32s("reviews by category ids", numRv, numRv))
	idx.reviewsByWriterOff = ir.offsets("reviews by writer", numU, numRv, true)
	idx.reviewsByWriter = reviewIDs(ir.u32s("reviews by writer ids", numRv, numRv))
	idx.ratingsByReviewOff = ir.offsets("ratings by review", numRv, numRt, true)
	idx.ratingsByReview = gather(d.ratingList, ir.u32s("ratings by review perm", numRt, numRt))
	idx.ratingsByRaterOff = ir.offsets("ratings by rater", numU, numRt, true)
	idx.ratingsByRater = gather(d.ratingList, ir.u32s("ratings by rater perm", numRt, numRt))
	idx.connOff = ir.offsets("connections", numU, numRt, false)
	if ir.err == nil {
		connN := int(idx.connOff[numU])
		idx.connTo = make([]UserID, connN)
		idx.connCount = make([]int32, connN)
		idx.connSum = make([]float64, connN)
		for i := 0; i < connN; i++ {
			idx.connTo[i] = UserID(ir.u32("connection writer", numU))
			count := ir.u32("connection count", numRt+1)
			if ir.err == nil && count == 0 {
				ir.fail("connection count 0")
			}
			idx.connCount[i] = count
			idx.connSum[i] = ir.floatBits()
		}
	}
	idx.trustOff = ir.offsets("trust adjacency", numU, numT, true)
	if ir.err == nil {
		idx.trustTo = make([]UserID, numT)
		for i, v := range ir.u32s("trustees", numT, numU) {
			idx.trustTo[i] = UserID(v)
		}
	}
	if ir.err != nil {
		return nil, ir.err
	}
	if len(ir.rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadImage, len(ir.rest))
	}
	d.idx = idx
	return d, nil
}

func reviewIDs(vs []int32) []ReviewID {
	out := make([]ReviewID, len(vs))
	for i, v := range vs {
		out[i] = ReviewID(v)
	}
	return out
}

// gather materialises a rating grouping from its stored (already
// range-checked) permutation.
func gather(list []Rating, perm []int32) []Rating {
	out := make([]Rating, len(perm))
	for i, p := range perm {
		out[i] = list[p]
	}
	return out
}

// imageReader decodes an image from an in-memory byte string, which lets
// every count be validated against the bytes actually remaining before
// anything is allocated.
type imageReader struct {
	rest []byte
	err  error
}

func (ir *imageReader) fail(format string, args ...any) {
	if ir.err == nil {
		ir.err = fmt.Errorf("%w: "+format, append([]any{ErrBadImage}, args...)...)
	}
}

func (ir *imageReader) uvarint() uint64 {
	if ir.err != nil {
		return 0
	}
	v, n := binary.Uvarint(ir.rest)
	if n <= 0 {
		ir.fail("truncated varint")
		return 0
	}
	ir.rest = ir.rest[n:]
	return v
}

// count reads a section count and bounds it: a section of n records, each
// at least minBytes long, cannot be larger than the bytes that remain —
// so no forged count can size an allocation past the input's own length.
func (ir *imageReader) count(what string, minBytes int) int {
	v := ir.uvarint()
	if ir.err != nil {
		return 0
	}
	if v > uint64(len(ir.rest)/minBytes) {
		ir.fail("%s count %d exceeds remaining %d bytes", what, v, len(ir.rest))
		return 0
	}
	return int(v)
}

// u32 reads one fixed-width identifier and range-checks it.
func (ir *imageReader) u32(what string, n int) int32 {
	if ir.err != nil {
		return 0
	}
	if len(ir.rest) < 4 {
		ir.fail("truncated %s", what)
		return 0
	}
	v := binary.LittleEndian.Uint32(ir.rest)
	ir.rest = ir.rest[4:]
	if v >= uint32(n) {
		ir.fail("%s id %d out of range %d", what, v, n)
		return 0
	}
	return int32(v)
}

// u32s bulk-decodes n fixed-width values, each range-checked below max —
// the hot path for payload and permutation arrays.
func (ir *imageReader) u32s(what string, n, max int) []int32 {
	if ir.err != nil {
		return nil
	}
	if len(ir.rest) < 4*n {
		ir.fail("truncated %s (%d entries)", what, n)
		return nil
	}
	raw := ir.rest[:4*n]
	ir.rest = ir.rest[4*n:]
	out := make([]int32, n)
	bound := uint32(max)
	for i := range out {
		v := binary.LittleEndian.Uint32(raw[4*i:])
		if v >= bound {
			ir.fail("%s entry %d out of range %d", what, v, max)
			return nil
		}
		out[i] = int32(v)
	}
	return out
}

// imageAllocChunk caps the initial capacity of count-sized entity
// slices; growth past it happens only as wire bytes are consumed.
const imageAllocChunk = 1 << 12

// growEntity returns a zero-length slice with capacity capped at
// imageAllocChunk entries regardless of the (untrusted) declared count.
func growEntity[T any](_ []T, n int) []T {
	return make([]T, 0, min(n, imageAllocChunk))
}

// strs decodes n length-prefixed strings by capped append.
func (ir *imageReader) strs(n int) []string {
	out := make([]string, 0, min(n, imageAllocChunk))
	for i := 0; i < n && ir.err == nil; i++ {
		out = append(out, ir.str())
	}
	return out
}

func (ir *imageReader) byte() byte {
	if ir.err != nil {
		return 0
	}
	if len(ir.rest) < 1 {
		ir.fail("truncated byte")
		return 0
	}
	b := ir.rest[0]
	ir.rest = ir.rest[1:]
	return b
}

func (ir *imageReader) str() string {
	n := ir.uvarint()
	if ir.err != nil {
		return ""
	}
	if n > uint64(len(ir.rest)) {
		ir.fail("string length %d exceeds remaining %d bytes", n, len(ir.rest))
		return ""
	}
	s := string(ir.rest[:n])
	ir.rest = ir.rest[n:]
	return s
}

func (ir *imageReader) floatBits() float64 {
	if ir.err != nil {
		return 0
	}
	if len(ir.rest) < 8 {
		ir.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(ir.rest))
	ir.rest = ir.rest[8:]
	return v
}

// offsets decodes a groups+1 fixed-width offset array, enforcing
// monotonicity within [0, payloadLen] starting at 0 — so any group slice
// taken through it is in bounds. When exact is set the final entry must
// equal payloadLen (the grouping covers the whole payload); the
// connection index instead treats payloadLen as an upper bound, its
// final entry defining the payload's actual length.
func (ir *imageReader) offsets(what string, groups, payloadLen int, exact bool) []int32 {
	if ir.err != nil {
		return nil
	}
	if len(ir.rest) < 4*(groups+1) {
		ir.fail("truncated %s offsets", what)
		return nil
	}
	offs := make([]int32, groups+1)
	prev := uint32(0)
	for i := range offs {
		v := binary.LittleEndian.Uint32(ir.rest[4*i:])
		if v < prev || v > uint32(payloadLen) {
			ir.fail("%s offsets not monotonic in [0,%d]", what, payloadLen)
			return nil
		}
		offs[i] = int32(v)
		prev = v
	}
	ir.rest = ir.rest[4*(groups+1):]
	if offs[0] != 0 {
		ir.fail("%s offsets start at %d", what, offs[0])
		return nil
	}
	if exact && int(offs[groups]) != payloadLen {
		ir.fail("%s offsets end at %d, want %d", what, offs[groups], payloadLen)
		return nil
	}
	return offs
}
