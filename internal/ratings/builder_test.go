package ratings

import (
	"errors"
	"testing"
)

// buildTiny constructs the canonical fixture used across packages:
//
//	categories: movies (0), books (1)
//	users: alice (0) writes in movies; bob (1) writes in books;
//	       carol (2) rates both; dave (3) rates movies only; eve (4) idle
//	trust: carol -> alice, dave -> alice
func buildTiny(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder()
	movies := b.AddCategory("movies")
	books := b.AddCategory("books")
	alice := b.AddUser("alice")
	bob := b.AddUser("bob")
	carol := b.AddUser("carol")
	dave := b.AddUser("dave")
	b.AddUser("eve")

	m1, err := b.AddObject(movies, "m1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.AddObject(movies, "m2")
	if err != nil {
		t.Fatal(err)
	}
	bk1, err := b.AddObject(books, "bk1")
	if err != nil {
		t.Fatal(err)
	}

	r1, err := b.AddReview(alice, m1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.AddReview(alice, m2)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := b.AddReview(bob, bk1)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []struct {
		rater  UserID
		review ReviewID
		v      float64
	}{
		{carol, r1, 1.0},
		{carol, r2, 0.8},
		{carol, r3, 0.6},
		{dave, r1, 0.8},
	} {
		if err := b.AddRating(c.rater, c.review, c.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddTrust(carol, alice); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(dave, alice); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestBuilderHappyPath(t *testing.T) {
	d := buildTiny(t)
	if d.NumUsers() != 5 || d.NumCategories() != 2 || d.NumObjects() != 3 {
		t.Fatalf("unexpected sizes: %v", d)
	}
	if d.NumReviews() != 3 || d.NumRatings() != 4 || d.NumTrustEdges() != 2 {
		t.Fatalf("unexpected content sizes: %v", d)
	}
	if d.UserName(0) != "alice" || d.CategoryName(1) != "books" {
		t.Error("names not preserved")
	}
	if d.Review(0).Category != 0 {
		t.Error("review category not denormalised from object")
	}
	if !d.HasExplicitTrust() {
		t.Error("HasExplicitTrust = false")
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	cat := b.AddCategory("c")
	u := b.AddUser("u")
	v := b.AddUser("v")
	obj, err := b.AddObject(cat, "o")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := b.AddReview(u, obj)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := b.AddObject(99, "bad"); !errors.Is(err, ErrUnknownCategory) {
		t.Errorf("bad category: %v", err)
	}
	if _, err := b.AddReview(99, obj); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("bad writer: %v", err)
	}
	if _, err := b.AddReview(u, 99); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("bad object: %v", err)
	}
	if _, err := b.AddReview(u, obj); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate review: %v", err)
	}
	if err := b.AddRating(99, rev, 0.8); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("bad rater: %v", err)
	}
	if err := b.AddRating(v, 99, 0.8); !errors.Is(err, ErrUnknownReview) {
		t.Errorf("bad review ref: %v", err)
	}
	if err := b.AddRating(v, rev, 0.35); !errors.Is(err, ErrInvalidRating) {
		t.Errorf("bad value: %v", err)
	}
	if err := b.AddRating(u, rev, 0.8); !errors.Is(err, ErrSelf) {
		t.Errorf("self rating: %v", err)
	}
	if err := b.AddRating(v, rev, 0.8); err != nil {
		t.Fatalf("valid rating rejected: %v", err)
	}
	if err := b.AddRating(v, rev, 0.6); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate rating: %v", err)
	}
	if err := b.AddTrust(u, u); !errors.Is(err, ErrSelf) {
		t.Errorf("self trust: %v", err)
	}
	if err := b.AddTrust(99, u); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("bad truster: %v", err)
	}
	if err := b.AddTrust(u, 99); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("bad trustee: %v", err)
	}
	if err := b.AddTrust(v, u); err != nil {
		t.Fatalf("valid trust rejected: %v", err)
	}
	if err := b.AddTrust(v, u); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate trust: %v", err)
	}
}

func TestBuilderHasHelpers(t *testing.T) {
	b := NewBuilder()
	cat := b.AddCategory("c")
	u := b.AddUser("u")
	v := b.AddUser("v")
	obj, _ := b.AddObject(cat, "o")
	rev, _ := b.AddReview(u, obj)
	_ = b.AddRating(v, rev, 0.8)
	_ = b.AddTrust(v, u)

	if !b.HasReview(u, obj) || b.HasReview(v, obj) {
		t.Error("HasReview wrong")
	}
	if !b.HasRating(v, rev) || b.HasRating(u, rev) {
		t.Error("HasRating wrong")
	}
	if !b.HasTrust(v, u) || b.HasTrust(u, v) {
		t.Error("HasTrust wrong")
	}
	if b.NumUsers() != 2 || b.NumCategories() != 1 || b.NumObjects() != 1 || b.NumReviews() != 1 {
		t.Error("builder counters wrong")
	}
}

func TestAddUsersBulk(t *testing.T) {
	b := NewBuilder()
	first := b.AddUsers(10)
	if first != 0 || b.NumUsers() != 10 {
		t.Errorf("AddUsers: first=%d n=%d", first, b.NumUsers())
	}
	second := b.AddUsers(5)
	if second != 10 || b.NumUsers() != 15 {
		t.Errorf("AddUsers second batch: first=%d n=%d", second, b.NumUsers())
	}
}

func TestEmptyDataset(t *testing.T) {
	d := NewBuilder().Build()
	if d.NumUsers() != 0 || d.NumRatings() != 0 {
		t.Error("empty dataset not empty")
	}
	s := d.Stats()
	if s.TrustDensity != 0 || s.ConnectionDensity != 0 {
		t.Error("empty dataset densities should be 0")
	}
	_ = d.String()
}
