package shard

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"0/1", "0/3", "2/3", "7/8"} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if sp.String() != s {
			t.Fatalf("Parse(%q).String() = %q", s, sp.String())
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, s := range []string{"", "3", "1/", "/3", "a/3", "1/b", "-1/3", "3/3", "0/0", "0/-2"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if err := (Spec{Index: 0, Count: 1}).Validate(); err != nil {
		t.Fatalf("0/1: %v", err)
	}
	if err := (Spec{Index: 1, Count: 1}).Validate(); err == nil {
		t.Fatal("1/1 accepted")
	}
	if err := (Spec{Index: 2, Count: 0}).Validate(); err == nil {
		t.Fatal("2/0 accepted")
	}
}

func TestCanon(t *testing.T) {
	if (Spec{}).Canon() != (Spec{Index: 0, Count: 1}) {
		t.Fatal("zero spec does not canonicalise to 0/1")
	}
	if (Spec{Index: 2, Count: 5}).Canon() != (Spec{Index: 2, Count: 5}) {
		t.Fatal("sharded spec changed by Canon")
	}
}

// TestOwnerPartition pins that exactly one shard owns every id.
func TestOwnerPartition(t *testing.T) {
	for _, count := range []int{1, 2, 3, 5, 8} {
		for id := 0; id < 1000; id++ {
			owner := Owner(id, count)
			if owner < 0 || owner >= count {
				t.Fatalf("Owner(%d, %d) = %d out of range", id, count, owner)
			}
			owners := 0
			for i := 0; i < count; i++ {
				if (Spec{Index: i, Count: count}).Owns(id) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("id %d owned by %d shards of %d", id, owners, count)
			}
		}
	}
}

// TestOwnerBalance checks the partition is roughly uniform: each shard of
// N holds n/N ± 20% of a 30k-id space.
func TestOwnerBalance(t *testing.T) {
	const n = 30000
	for _, count := range []int{2, 3, 4, 8} {
		perShard := make([]int, count)
		for id := 0; id < n; id++ {
			perShard[Owner(id, count)]++
		}
		want := n / count
		for i, got := range perShard {
			if got < want*8/10 || got > want*12/10 {
				t.Errorf("count %d: shard %d owns %d of %d (want ~%d)", count, i, got, n, want)
			}
		}
	}
}

// TestOwnerMinimalMovement checks the consistent-hash property: growing
// the cluster from N to N+1 shards moves only ids assigned to the new
// shard, and roughly 1/(N+1) of them.
func TestOwnerMinimalMovement(t *testing.T) {
	const n = 30000
	for _, count := range []int{1, 2, 3, 7} {
		moved := 0
		for id := 0; id < n; id++ {
			before, after := Owner(id, count), Owner(id, count+1)
			if before != after {
				moved++
				if after != count {
					t.Fatalf("id %d moved %d -> %d, not to the new shard %d", id, before, after, count)
				}
			}
		}
		want := n / (count + 1)
		if moved < want*8/10 || moved > want*12/10 {
			t.Errorf("count %d->%d moved %d ids (want ~%d)", count, count+1, moved, want)
		}
	}
}

// TestOwnerGolden pins the hash function itself: per-shard checkpoints
// record only the Spec, so the id -> shard mapping is part of the
// persistence format and must never change.
func TestOwnerGolden(t *testing.T) {
	cases := []struct{ id, count, want int }{
		{0, 2, Owner(0, 2)},
		{0, 3, Owner(0, 3)},
	}
	_ = cases
	golden := map[[2]int]int{}
	for _, count := range []int{2, 3, 5} {
		for id := 0; id < 16; id++ {
			golden[[2]int{id, count}] = Owner(id, count)
		}
	}
	// A change to splitmix64 or the jump loop shows up as a different
	// distribution signature; pin a digest of the first assignments.
	var sig uint64
	for _, count := range []int{2, 3, 5} {
		for id := 0; id < 16; id++ {
			sig = sig*31 + uint64(golden[[2]int{id, count}])
		}
	}
	const wantSig = 0x6a67c16e4f73efe7
	if sig != wantSig {
		t.Fatalf("ownership signature %#x, want %#x — the hash changed, which breaks every sharded checkpoint", sig, wantSig)
	}
}

func TestCountOwned(t *testing.T) {
	const n = 5000
	for _, count := range []int{1, 2, 3} {
		total := 0
		for i := 0; i < count; i++ {
			total += Spec{Index: i, Count: count}.CountOwned(n)
		}
		if total != n {
			t.Fatalf("count %d: shards own %d of %d ids", count, total, n)
		}
	}
	if got := (Spec{}).CountOwned(42); got != 42 {
		t.Fatalf("unsharded CountOwned = %d", got)
	}
}
