// Package shard defines the cluster's ownership rule: which shard of an
// N-shard deployment owns which source user. Every layer that partitions
// by source user — the core pipeline's dense-state retention, per-shard
// checkpoints, trustd's ownership guard, the request router — imports
// this one rule, so they can never disagree about who owns whom.
//
// Ownership is a consistent hash (Lamping & Veach's jump consistent hash
// over a splitmix64-mixed user id): deterministic across processes and
// restarts, uniform to within sampling noise, and minimal-movement when
// the shard count changes — growing N to N+1 reassigns only ~1/(N+1) of
// the users, which is what makes later rebalancing PRs tractable.
package shard

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec names one shard of an N-shard deployment. The zero value (and any
// Count <= 1) is the unsharded single-process deployment, which owns
// every user.
type Spec struct {
	// Index is this shard's position in [0, Count).
	Index int
	// Count is the total number of shards.
	Count int
}

// Parse reads the operator spelling "i/N" (for example "0/3").
func Parse(s string) (Spec, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Spec{}, fmt.Errorf("shard: spec %q is not i/N", s)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Spec{}, fmt.Errorf("shard: bad index in %q: %v", s, err)
	}
	n, err := strconv.Atoi(cnt)
	if err != nil {
		return Spec{}, fmt.Errorf("shard: bad count in %q: %v", s, err)
	}
	if n < 1 {
		return Spec{}, fmt.Errorf("shard: count %d < 1 in %q", n, s)
	}
	sp := Spec{Index: i, Count: n}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// String renders the spec in its operator spelling "i/N".
func (s Spec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Validate rejects impossible specs. The zero value is valid (unsharded).
func (s Spec) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil
	}
	if s.Count < 1 {
		return fmt.Errorf("shard: count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("shard: index %d outside [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Canon maps every unsharded spelling (the zero value, 0/1) to Spec{0, 1}
// so specs compare reliably across layers that record them differently.
func (s Spec) Canon() Spec {
	if s.Count <= 1 {
		return Spec{Index: 0, Count: 1}
	}
	return s
}

// IsSharded reports whether the spec names a real partition (Count > 1).
func (s Spec) IsSharded() bool { return s.Count > 1 }

// Owns reports whether this shard owns user id. Unsharded specs own
// everyone.
func (s Spec) Owns(id int) bool {
	if s.Count <= 1 {
		return true
	}
	return Owner(id, s.Count) == s.Index
}

// CountOwned returns how many of the ids in [0, n) this shard owns.
func (s Spec) CountOwned(n int) int {
	if s.Count <= 1 {
		return n
	}
	owned := 0
	for id := 0; id < n; id++ {
		if Owner(id, s.Count) == s.Index {
			owned++
		}
	}
	return owned
}

// Owner returns the shard index in [0, count) that owns user id, via jump
// consistent hash over a splitmix64-mixed id. count <= 1 returns 0.
//
// The function is part of the persistence format: per-shard checkpoints
// record which users' rows they hold by recording only the Spec, so the
// mapping must never change. The golden-value test pins it.
func Owner(id, count int) int {
	if count <= 1 {
		return 0
	}
	key := splitmix64(uint64(int64(id)))
	var b, j int64 = -1, 0
	for j < int64(count) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// splitmix64 mixes dense small ids into well-distributed 64-bit keys;
// jump consistent hash assumes a uniform key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
