// Native fuzz targets for the binary decoders, pinning the hardening
// invariant: no input — however corrupt or adversarial — may panic a
// decoder or make it allocate meaningfully beyond the input's own length.
// Any input that does decode must round-trip consistently. CI runs these
// for a short smoke (`make fuzz-smoke`); longer local runs just work:
//
//	go test -fuzz FuzzReadSnapshot -fuzztime 60s ./internal/store
package store

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"weboftrust/internal/ratings"
)

// fuzzDataset builds a tiny hand-rolled community for seed corpora
// (synth generation is too slow to run per fuzz iteration, and seeds
// should be minimal anyway).
func fuzzDataset(t testing.TB) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	b.AddCategory("movies")
	b.AddCategory("books")
	u0 := b.AddUser("ann")
	u1 := b.AddUser("bob")
	u2 := b.AddUser("cho")
	o0, err := b.AddObject(0, "heat")
	if err != nil {
		t.Fatal(err)
	}
	o1, err := b.AddObject(1, "dune")
	if err != nil {
		t.Fatal(err)
	}
	r0, err := b.AddReview(u0, o0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.AddReview(u1, o1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(u1, r0, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(u2, r1, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(u0, u1); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func FuzzReadSnapshot(f *testing.F) {
	d := fuzzDataset(f)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn
	f.Add(valid[:8])            // magic only
	f.Add([]byte{})
	f.Add([]byte("WOTDS001"))
	mutated := bytes.Clone(valid)
	mutated[len(mutated)/3] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// shape: the CRC means a successful read is a faithful one.
		var out bytes.Buffer
		if err := WriteSnapshot(&out, d); err != nil {
			t.Fatalf("re-encode of decoded snapshot failed: %v", err)
		}
		d2, err := ReadSnapshot(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if d2.NumUsers() != d.NumUsers() || d2.NumRatings() != d.NumRatings() ||
			d2.NumReviews() != d.NumReviews() || d2.NumTrustEdges() != d.NumTrustEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", d, d2)
		}
	})
}

func FuzzLogReader(f *testing.F) {
	d := fuzzDataset(f)
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	if err := AppendDataset(lw, d); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0x0a, 0x01}) // frame promising more than exists
	mutated := bytes.Clone(valid)
	mutated[len(mutated)/2] ^= 0x01
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		lr := NewLogReader(bytes.NewReader(data), 0)
		var events []Event
		var tornAt int64 = -1
		for {
			ev, err := lr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var trunc *TruncatedError
				if errors.As(err, &trunc) {
					tornAt = trunc.Offset
					if trunc.Offset != lr.Offset() {
						t.Fatalf("truncation offset %d != reader offset %d", trunc.Offset, lr.Offset())
					}
				}
				break
			}
			events = append(events, ev)
		}
		if int64(len(data)) < lr.Offset() {
			t.Fatalf("offset %d past end of %d-byte input", lr.Offset(), len(data))
		}
		if tornAt >= 0 && tornAt > int64(len(data)) {
			t.Fatalf("torn offset %d past end of %d-byte input", tornAt, len(data))
		}
		// Replaying whatever decoded must never panic; validation errors
		// are expected for fuzzed content.
		_ = Replay(events, ratings.NewBuilder())
	})
}
