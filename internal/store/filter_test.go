package store

import (
	"testing"

	"weboftrust/internal/ratings"
)

// TestFilterBySource pins the split rule: structural events always
// survive (they define the dense ID spaces), per-source actions only for
// kept sources — so a filtered log replays into a world with the same
// users, objects and reviews but only the kept sources' opinions.
func TestFilterBySource(t *testing.T) {
	events := []Event{
		{Kind: EvAddCategory, Name: "books"},
		{Kind: EvAddUser, Name: "u0"},
		{Kind: EvAddUser, Name: "u1"},
		{Kind: EvAddUser, Name: "u2"},
		{Kind: EvAddObject, Category: 0, Name: "o0"},
		{Kind: EvAddReview, User: 1, Object: 0},
		{Kind: EvAddRating, User: 0, Review: 0, Level: 4},
		{Kind: EvAddRating, User: 2, Review: 0, Level: 2},
		{Kind: EvAddTrust, User: 0, To: 1},
		{Kind: EvAddTrust, User: 2, To: 1},
	}
	filtered := FilterBySource(append([]Event(nil), events...), func(u ratings.UserID) bool { return u == 2 })

	var ratingsKept, trustKept, structural int
	for _, ev := range filtered {
		switch ev.Kind {
		case EvAddRating:
			ratingsKept++
			if ev.User != 2 {
				t.Fatalf("kept rating by %d, want only source 2", ev.User)
			}
		case EvAddTrust:
			trustKept++
			if ev.User != 2 {
				t.Fatalf("kept trust by %d, want only source 2", ev.User)
			}
		default:
			structural++
		}
	}
	if structural != 6 {
		t.Fatalf("structural events: %d, want all 6 kept", structural)
	}
	if ratingsKept != 1 || trustKept != 1 {
		t.Fatalf("kept %d ratings and %d trust edges, want 1 each", ratingsKept, trustKept)
	}

	// The review written by the filtered-out user 1 must still exist after
	// replay: review IDs are dense and later events index them.
	b := ratings.NewBuilder()
	if err := Replay(filtered, b); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if d.NumUsers() != 3 || d.NumReviews() != 1 {
		t.Fatalf("replayed %d users, %d reviews; want 3 users, 1 review", d.NumUsers(), d.NumReviews())
	}
	if d.NumRatings() != 1 {
		t.Fatalf("replayed %d ratings, want 1", d.NumRatings())
	}
}
