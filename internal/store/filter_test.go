package store

import (
	"testing"

	"weboftrust/internal/ratings"
)

// TestFilterBySource pins the split rule: structural events always
// survive (they define the dense ID spaces), per-source actions only for
// kept sources — so a filtered log replays into a world with the same
// users, objects and reviews but only the kept sources' opinions.
func TestFilterBySource(t *testing.T) {
	events := []Event{
		{Kind: EvAddCategory, Name: "books"},
		{Kind: EvAddUser, Name: "u0"},
		{Kind: EvAddUser, Name: "u1"},
		{Kind: EvAddUser, Name: "u2"},
		{Kind: EvAddObject, Category: 0, Name: "o0"},
		{Kind: EvAddReview, User: 1, Object: 0},
		{Kind: EvAddRating, User: 0, Review: 0, Level: 4},
		{Kind: EvAddRating, User: 2, Review: 0, Level: 2},
		{Kind: EvAddTrust, User: 0, To: 1},
		{Kind: EvAddTrust, User: 2, To: 1},
	}
	filtered := FilterBySource(append([]Event(nil), events...), func(u ratings.UserID) bool { return u == 2 })

	var ratingsKept, trustKept, structural int
	for _, ev := range filtered {
		switch ev.Kind {
		case EvAddRating:
			ratingsKept++
			if ev.User != 2 {
				t.Fatalf("kept rating by %d, want only source 2", ev.User)
			}
		case EvAddTrust:
			trustKept++
			if ev.User != 2 {
				t.Fatalf("kept trust by %d, want only source 2", ev.User)
			}
		default:
			structural++
		}
	}
	if structural != 6 {
		t.Fatalf("structural events: %d, want all 6 kept", structural)
	}
	if ratingsKept != 1 || trustKept != 1 {
		t.Fatalf("kept %d ratings and %d trust edges, want 1 each", ratingsKept, trustKept)
	}

	// The review written by the filtered-out user 1 must still exist after
	// replay: review IDs are dense and later events index them.
	b := ratings.NewBuilder()
	if err := Replay(filtered, b); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if d.NumUsers() != 3 || d.NumReviews() != 1 {
		t.Fatalf("replayed %d users, %d reviews; want 3 users, 1 review", d.NumUsers(), d.NumReviews())
	}
	if d.NumRatings() != 1 {
		t.Fatalf("replayed %d ratings, want 1", d.NumRatings())
	}
}

// TestParseUserFilter pins the shared -users spec grammar: shard specs
// select exactly the consistent hash's owned set, id lists select
// exactly the listed ids, and malformed specs are rejected — one code
// path for `trustctl exportlog` and `trustctl attack -export-log`.
func TestParseUserFilter(t *testing.T) {
	keep, desc, err := ParseUserFilter("3,1, 3")
	if err != nil {
		t.Fatal(err)
	}
	if !keep(1) || !keep(3) || keep(0) || keep(2) {
		t.Errorf("id list filter wrong: %s", desc)
	}

	keep0, _, err := ParseUserFilter("0/2")
	if err != nil {
		t.Fatal(err)
	}
	keep1, _, err := ParseUserFilter("1/2")
	if err != nil {
		t.Fatal(err)
	}
	// The two shards partition the id space.
	for u := ratings.UserID(0); u < 200; u++ {
		if keep0(u) == keep1(u) {
			t.Fatalf("user %d owned by %v shards, want exactly one", u, keep0(u))
		}
	}

	for _, bad := range []string{"", "x", "-1", "2/2", "1,-3"} {
		if _, _, err := ParseUserFilter(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestDatasetEvents pins the render-as-events path: replaying the
// returned stream rebuilds the identical dataset (same serialisation
// path as AppendDataset, by construction).
func TestDatasetEvents(t *testing.T) {
	b := ratings.NewBuilder()
	b.AddCategory("books")
	u0, u1 := b.AddUser("a"), b.AddUser("b")
	oid, err := b.AddObject(0, "o")
	if err != nil {
		t.Fatal(err)
	}
	rid, err := b.AddReview(u0, oid)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(u1, rid, ratings.QuantizeRating(0.8)); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTrust(u1, u0); err != nil {
		t.Fatal(err)
	}
	d := b.Snapshot()

	events, err := DatasetEvents(d)
	if err != nil {
		t.Fatal(err)
	}
	nb := ratings.NewBuilder()
	if err := Replay(events, nb); err != nil {
		t.Fatal(err)
	}
	rebuilt := nb.Snapshot()
	if rebuilt.NumUsers() != d.NumUsers() || rebuilt.NumRatings() != d.NumRatings() ||
		rebuilt.NumTrustEdges() != d.NumTrustEdges() || rebuilt.NumReviews() != d.NumReviews() {
		t.Fatalf("replayed %v, want %v", rebuilt, d)
	}
}
