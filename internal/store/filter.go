package store

import (
	"fmt"
	"strconv"
	"strings"

	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
)

// FilterBySource returns the subsequence of a log's events that a
// source-filtered export keeps. Structural events — categories, users,
// objects, reviews — always survive: they define the dense ID spaces
// (user i, review j) that every later event and every consumer indexes
// by, so dropping any of them would renumber the world. Only the
// per-source ACTION events are filtered: a rating goes with its rater, a
// trust edge with its origin. The result is a log whose replay yields
// the same users/objects/reviews but only the chosen sources' opinions —
// the physical-split counterpart of a shard's retained dense state.
//
// The returned slice shares the input's backing array when everything is
// kept; callers must treat the input as consumed.
func FilterBySource(events []Event, keep func(ratings.UserID) bool) []Event {
	out := events[:0]
	for _, ev := range events {
		switch ev.Kind {
		case EvAddRating, EvAddTrust:
			if !keep(ev.User) {
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}

// ParseUserFilter interprets a -users spec shared by every source-
// filtered export (`trustctl exportlog`, `trustctl attack -export-log`):
// "i/N" selects the sources the cluster's consistent hash assigns shard
// i — so a filtered log replays exactly the opinions that shard owns —
// otherwise a comma-separated list of explicit user ids. The returned
// description names the selection for log lines.
func ParseUserFilter(spec string) (func(ratings.UserID) bool, string, error) {
	if strings.Contains(spec, "/") {
		sp, err := shard.Parse(spec)
		if err != nil {
			return nil, "", err
		}
		return func(u ratings.UserID) bool { return sp.Owns(int(u)) },
			fmt.Sprintf("shard %s", sp), nil
	}
	ids := make(map[ratings.UserID]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, err := strconv.Atoi(part)
		if err != nil || id < 0 {
			return nil, "", fmt.Errorf("bad user id %q in -users", part)
		}
		ids[ratings.UserID(id)] = true
	}
	if len(ids) == 0 {
		return nil, "", fmt.Errorf("-users %q selects no users", spec)
	}
	return func(u ratings.UserID) bool { return ids[u] },
		fmt.Sprintf("%d listed users", len(ids)), nil
}

// DatasetEvents renders a dataset as its event stream by appending it to
// an in-memory log and reading that back — one serialisation path, no
// second enumeration of the dataset's contents to drift from it.
func DatasetEvents(d *ratings.Dataset) ([]Event, error) {
	var buf strings.Builder
	lw := NewLogWriter(&buf)
	if err := AppendDataset(lw, d); err != nil {
		return nil, err
	}
	events, _, err := ReadLogFrom(strings.NewReader(buf.String()), 0)
	return events, err
}
