package store

import "weboftrust/internal/ratings"

// FilterBySource returns the subsequence of a log's events that a
// source-filtered export keeps. Structural events — categories, users,
// objects, reviews — always survive: they define the dense ID spaces
// (user i, review j) that every later event and every consumer indexes
// by, so dropping any of them would renumber the world. Only the
// per-source ACTION events are filtered: a rating goes with its rater, a
// trust edge with its origin. The result is a log whose replay yields
// the same users/objects/reviews but only the chosen sources' opinions —
// the physical-split counterpart of a shard's retained dense state.
//
// The returned slice shares the input's backing array when everything is
// kept; callers must treat the input as consumed.
func FilterBySource(events []Event, keep func(ratings.UserID) bool) []Event {
	out := events[:0]
	for _, ev := range events {
		switch ev.Kind {
		case EvAddRating, EvAddTrust:
			if !keep(ev.User) {
				continue
			}
		}
		out = append(out, ev)
	}
	return out
}
