// Package store persists datasets: a compact binary snapshot format with
// CRC-32 integrity checking, an append-only event log that replays into a
// dataset builder (the shape a crawler or online ingest pipeline would
// write), and CSV import/export for interoperability.
//
// Snapshot layout (all integers varint-encoded unless noted):
//
//	magic "WOTDS001" (8 bytes)
//	section: categories   count, then each name (len-prefixed string)
//	section: users        count, then each name
//	section: objects      count, then each (category, name)
//	section: reviews      count, then each (writer, object)
//	section: ratings      count, then each (rater, review, level byte)
//	section: trust        count, then each (from, to)
//	crc32c of everything after the magic (4 bytes little-endian)
//
// Reads validate the magic, the checksum and every record through a
// ratings.Builder, so a corrupted or inconsistent snapshot never yields a
// dataset.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"weboftrust/internal/ratings"
)

var (
	// ErrBadMagic reports a stream that is not a snapshot.
	ErrBadMagic = errors.New("store: bad magic")
	// ErrChecksum reports snapshot corruption.
	ErrChecksum = errors.New("store: checksum mismatch")
	// ErrCorrupt reports a structurally invalid snapshot or log record.
	ErrCorrupt = errors.New("store: corrupt data")
)

var magic = [8]byte{'W', 'O', 'T', 'D', 'S', '0', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteSnapshot serialises the dataset to w.
func WriteSnapshot(w io.Writer, d *ratings.Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)

	enc := encoder{w: out}
	enc.uvarint(uint64(d.NumCategories()))
	for c := 0; c < d.NumCategories(); c++ {
		enc.str(d.CategoryName(ratings.CategoryID(c)))
	}
	enc.uvarint(uint64(d.NumUsers()))
	for u := 0; u < d.NumUsers(); u++ {
		enc.str(d.UserName(ratings.UserID(u)))
	}
	enc.uvarint(uint64(d.NumObjects()))
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		enc.uvarint(uint64(obj.Category))
		enc.str(obj.Name)
	}
	enc.uvarint(uint64(d.NumReviews()))
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		enc.uvarint(uint64(rev.Writer))
		enc.uvarint(uint64(rev.Object))
	}
	enc.uvarint(uint64(d.NumRatings()))
	for _, rt := range d.Ratings() {
		enc.uvarint(uint64(rt.Rater))
		enc.uvarint(uint64(rt.Review))
		enc.byte(byte(ratings.RatingLevel(rt.Value)))
	}
	enc.uvarint(uint64(d.NumTrustEdges()))
	for _, e := range d.TrustEdges() {
		enc.uvarint(uint64(e.From))
		enc.uvarint(uint64(e.To))
	}
	if enc.err != nil {
		return enc.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSnapshot deserialises a dataset from r, verifying the checksum and
// re-validating every record.
func ReadSnapshot(r io.Reader) (*ratings.Dataset, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	crc := crc32.New(castagnoli)
	dec := decoder{r: br, crc: crc}
	b := ratings.NewBuilder()

	numCats := dec.count("categories")
	for i := uint64(0); i < numCats; i++ {
		b.AddCategory(dec.str())
	}
	numUsers := dec.count("users")
	for i := uint64(0); i < numUsers; i++ {
		b.AddUser(dec.str())
	}
	numObjects := dec.count("objects")
	for i := uint64(0); i < numObjects; i++ {
		cat := dec.id("object category")
		name := dec.str()
		if dec.err != nil {
			break
		}
		if _, err := b.AddObject(ratings.CategoryID(cat), name); err != nil {
			return nil, fmt.Errorf("%w: object %d: %v", ErrCorrupt, i, err)
		}
	}
	numReviews := dec.count("reviews")
	for i := uint64(0); i < numReviews; i++ {
		writer := dec.id("review writer")
		object := dec.id("review object")
		if dec.err != nil {
			break
		}
		if _, err := b.AddReview(ratings.UserID(writer), ratings.ObjectID(object)); err != nil {
			return nil, fmt.Errorf("%w: review %d: %v", ErrCorrupt, i, err)
		}
	}
	numRatings := dec.count("ratings")
	for i := uint64(0); i < numRatings; i++ {
		rater := dec.id("rater")
		review := dec.id("rated review")
		level := dec.byte()
		if dec.err != nil {
			break
		}
		if level < 1 || level > ratings.RatingLevels {
			return nil, fmt.Errorf("%w: rating %d: level %d", ErrCorrupt, i, level)
		}
		if err := b.AddRating(ratings.UserID(rater), ratings.ReviewID(review), float64(level)/ratings.RatingLevels); err != nil {
			return nil, fmt.Errorf("%w: rating %d: %v", ErrCorrupt, i, err)
		}
	}
	numTrust := dec.count("trust edges")
	for i := uint64(0); i < numTrust; i++ {
		from := dec.id("trust from")
		to := dec.id("trust to")
		if dec.err != nil {
			break
		}
		if err := b.AddTrust(ratings.UserID(from), ratings.UserID(to)); err != nil {
			return nil, fmt.Errorf("%w: trust %d: %v", ErrCorrupt, i, err)
		}
	}
	if dec.err != nil {
		return nil, dec.err
	}
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return nil, ErrChecksum
	}
	return b.Build(), nil
}

type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) byte(b byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write([]byte{b})
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

type decoder struct {
	r   *bufio.Reader
	crc io.Writer
	err error
}

// Decoder hardening bounds. The invariant across this package's decoders
// (snapshot, event log, and the checkpoint decoder built on them) is that
// NO allocation is ever sized by an unvalidated count from the wire:
// section counts are loop bounds whose iterations each consume stream
// bytes (so a forged count dies on EOF after reading only what exists),
// and the only count-sized allocation — a string's byte buffer — is
// capped at maxStringBytes first. The fuzz targets in fuzz_test.go pin
// this: no input may panic or allocate past its own length.
const (
	// maxCount bounds any section size; large enough for the
	// million-user north star, small enough to reject garbage varints.
	maxCount = 1 << 31
	// maxStringBytes bounds a single name's length — the one allocation
	// sized directly by wire data.
	maxStringBytes = 1 << 20
)

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(crcByteReader{d})
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	return v
}

func (d *decoder) count(what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > maxCount {
		d.err = fmt.Errorf("%w: %s count %d too large", ErrCorrupt, what, v)
		return 0
	}
	return v
}

func (d *decoder) id(what string) uint64 {
	v := d.uvarint()
	if d.err == nil && v > math.MaxInt32 {
		d.err = fmt.Errorf("%w: %s id %d too large", ErrCorrupt, what, v)
		return 0
	}
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	d.crc.Write([]byte{b})
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringBytes {
		d.err = fmt.Errorf("%w: string length %d too large", ErrCorrupt, n)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return ""
	}
	d.crc.Write(buf)
	return string(buf)
}

// crcByteReader feeds single bytes to the varint reader while keeping the
// checksum in sync.
type crcByteReader struct{ d *decoder }

func (c crcByteReader) ReadByte() (byte, error) {
	b, err := c.d.r.ReadByte()
	if err == nil {
		c.d.crc.Write([]byte{b})
	}
	return b, err
}
