package store

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"weboftrust/internal/ratings"
)

// ErrCSV reports a malformed CSV export during import.
var ErrCSV = errors.New("store: invalid csv")

// ExportCSV writes the dataset as four CSV documents to the given writers
// (any may be nil to skip that section):
//
//	users:   id,name
//	objects: id,category,name       (category by name)
//	reviews: id,writer,object
//	ratings: rater,review,value
//	trust:   from,to
type CSVWriters struct {
	Users, Objects, Reviews, Ratings, Trust io.Writer
}

// ExportCSV writes the dataset's sections to the non-nil writers in ws.
func ExportCSV(ws CSVWriters, d *ratings.Dataset) error {
	if ws.Users != nil {
		w := csv.NewWriter(ws.Users)
		if err := w.Write([]string{"id", "name"}); err != nil {
			return err
		}
		for u := 0; u < d.NumUsers(); u++ {
			if err := w.Write([]string{strconv.Itoa(u), d.UserName(ratings.UserID(u))}); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	if ws.Objects != nil {
		w := csv.NewWriter(ws.Objects)
		if err := w.Write([]string{"id", "category", "name"}); err != nil {
			return err
		}
		for o := 0; o < d.NumObjects(); o++ {
			obj := d.Object(ratings.ObjectID(o))
			rec := []string{strconv.Itoa(o), d.CategoryName(obj.Category), obj.Name}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	if ws.Reviews != nil {
		w := csv.NewWriter(ws.Reviews)
		if err := w.Write([]string{"id", "writer", "object"}); err != nil {
			return err
		}
		for r := 0; r < d.NumReviews(); r++ {
			rev := d.Review(ratings.ReviewID(r))
			rec := []string{strconv.Itoa(r), strconv.Itoa(int(rev.Writer)), strconv.Itoa(int(rev.Object))}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	if ws.Ratings != nil {
		w := csv.NewWriter(ws.Ratings)
		if err := w.Write([]string{"rater", "review", "value"}); err != nil {
			return err
		}
		for _, rt := range d.Ratings() {
			rec := []string{
				strconv.Itoa(int(rt.Rater)),
				strconv.Itoa(int(rt.Review)),
				strconv.FormatFloat(rt.Value, 'g', -1, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	if ws.Trust != nil {
		w := csv.NewWriter(ws.Trust)
		if err := w.Write([]string{"from", "to"}); err != nil {
			return err
		}
		for _, e := range d.TrustEdges() {
			rec := []string{strconv.Itoa(int(e.From)), strconv.Itoa(int(e.To))}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
	}
	return nil
}

// CSVReaders carries the five sections for import. Users, Objects and
// Reviews are required; Ratings and Trust may be nil.
type CSVReaders struct {
	Users, Objects, Reviews, Ratings, Trust io.Reader
}

// ImportCSV reconstructs a dataset from CSV sections written by ExportCSV.
// Categories are created on first reference (in object order).
func ImportCSV(rs CSVReaders) (*ratings.Dataset, error) {
	if rs.Users == nil || rs.Objects == nil || rs.Reviews == nil {
		return nil, fmt.Errorf("%w: users, objects and reviews sections are required", ErrCSV)
	}
	b := ratings.NewBuilder()

	users, err := readAll(rs.Users, 2)
	if err != nil {
		return nil, fmt.Errorf("users: %w", err)
	}
	for i, rec := range users {
		if rec[0] != strconv.Itoa(i) {
			return nil, fmt.Errorf("%w: users row %d: id %q out of order", ErrCSV, i, rec[0])
		}
		b.AddUser(rec[1])
	}

	objects, err := readAll(rs.Objects, 3)
	if err != nil {
		return nil, fmt.Errorf("objects: %w", err)
	}
	catIDs := map[string]ratings.CategoryID{}
	for i, rec := range objects {
		if rec[0] != strconv.Itoa(i) {
			return nil, fmt.Errorf("%w: objects row %d: id %q out of order", ErrCSV, i, rec[0])
		}
		cid, ok := catIDs[rec[1]]
		if !ok {
			cid = b.AddCategory(rec[1])
			catIDs[rec[1]] = cid
		}
		if _, err := b.AddObject(cid, rec[2]); err != nil {
			return nil, fmt.Errorf("%w: objects row %d: %v", ErrCSV, i, err)
		}
	}

	reviews, err := readAll(rs.Reviews, 3)
	if err != nil {
		return nil, fmt.Errorf("reviews: %w", err)
	}
	for i, rec := range reviews {
		if rec[0] != strconv.Itoa(i) {
			return nil, fmt.Errorf("%w: reviews row %d: id %q out of order", ErrCSV, i, rec[0])
		}
		writer, err1 := strconv.Atoi(rec[1])
		object, err2 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: reviews row %d: bad ids", ErrCSV, i)
		}
		if _, err := b.AddReview(ratings.UserID(writer), ratings.ObjectID(object)); err != nil {
			return nil, fmt.Errorf("%w: reviews row %d: %v", ErrCSV, i, err)
		}
	}

	if rs.Ratings != nil {
		recs, err := readAll(rs.Ratings, 3)
		if err != nil {
			return nil, fmt.Errorf("ratings: %w", err)
		}
		for i, rec := range recs {
			rater, err1 := strconv.Atoi(rec[0])
			review, err2 := strconv.Atoi(rec[1])
			value, err3 := strconv.ParseFloat(rec[2], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("%w: ratings row %d: bad fields", ErrCSV, i)
			}
			if err := b.AddRating(ratings.UserID(rater), ratings.ReviewID(review), value); err != nil {
				return nil, fmt.Errorf("%w: ratings row %d: %v", ErrCSV, i, err)
			}
		}
	}
	if rs.Trust != nil {
		recs, err := readAll(rs.Trust, 2)
		if err != nil {
			return nil, fmt.Errorf("trust: %w", err)
		}
		for i, rec := range recs {
			from, err1 := strconv.Atoi(rec[0])
			to, err2 := strconv.Atoi(rec[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: trust row %d: bad ids", ErrCSV, i)
			}
			if err := b.AddTrust(ratings.UserID(from), ratings.UserID(to)); err != nil {
				return nil, fmt.Errorf("%w: trust row %d: %v", ErrCSV, i, err)
			}
		}
	}
	return b.Build(), nil
}

// readAll reads a CSV document, checks the field count, and strips the
// header row.
func readAll(r io.Reader, fields int) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = fields
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCSV, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: missing header", ErrCSV)
	}
	return recs[1:], nil
}
