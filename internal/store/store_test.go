package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
	"weboftrust/internal/synth"
)

func genDataset(t *testing.T) *ratings.Dataset {
	t.Helper()
	cfg := synth.Small()
	cfg.NumUsers = 60
	cfg.TotalObjects = 30
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func datasetsEqual(a, b *ratings.Dataset) bool {
	if a.NumUsers() != b.NumUsers() || a.NumCategories() != b.NumCategories() ||
		a.NumObjects() != b.NumObjects() || a.NumReviews() != b.NumReviews() ||
		a.NumRatings() != b.NumRatings() || a.NumTrustEdges() != b.NumTrustEdges() {
		return false
	}
	for u := 0; u < a.NumUsers(); u++ {
		if a.UserName(ratings.UserID(u)) != b.UserName(ratings.UserID(u)) {
			return false
		}
	}
	for c := 0; c < a.NumCategories(); c++ {
		if a.CategoryName(ratings.CategoryID(c)) != b.CategoryName(ratings.CategoryID(c)) {
			return false
		}
	}
	for o := 0; o < a.NumObjects(); o++ {
		if a.Object(ratings.ObjectID(o)) != b.Object(ratings.ObjectID(o)) {
			return false
		}
	}
	for r := 0; r < a.NumReviews(); r++ {
		if a.Review(ratings.ReviewID(r)) != b.Review(ratings.ReviewID(r)) {
			return false
		}
	}
	for i, rt := range a.Ratings() {
		if rt != b.Ratings()[i] {
			return false
		}
	}
	for i, e := range a.TrustEdges() {
		if e != b.TrustEdges()[i] {
			return false
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := genDataset(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, got) {
		t.Error("snapshot round trip lost data")
	}
}

func TestSnapshotEmptyDataset(t *testing.T) {
	d := ratings.NewBuilder().Build()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumUsers() != 0 {
		t.Error("empty dataset round trip not empty")
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("NOTMAGIC-extra"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("error = %v, want ErrBadMagic", err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty stream error = %v, want ErrBadMagic", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	d := genDataset(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte somewhere in the middle of the payload.
	corrupted := make([]byte, len(raw))
	copy(corrupted, raw)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(corrupted)); err == nil {
		t.Error("corrupted snapshot accepted")
	}
	// Truncations must also fail.
	if _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSnapshotChecksumFlip(t *testing.T) {
	d := genDataset(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x01 // corrupt the checksum itself
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Errorf("error = %v, want ErrChecksum", err)
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	d := genDataset(t)
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	if err := AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	events, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := ratings.NewBuilder()
	if err := Replay(events, b); err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, b.Build()) {
		t.Error("event log round trip lost data")
	}
}

func TestEventLogIncrementalAppend(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	events := []Event{
		{Kind: EvAddCategory, Name: "movies"},
		{Kind: EvAddUser, Name: "alice"},
		{Kind: EvAddUser, Name: "bob"},
		{Kind: EvAddObject, Category: 0, Name: "m1"},
		{Kind: EvAddReview, User: 0, Object: 0},
		{Kind: EvAddRating, User: 1, Review: 0, Level: 4},
		{Kind: EvAddTrust, User: 1, To: 0},
	}
	for _, ev := range events {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	b := ratings.NewBuilder()
	if err := Replay(got, b); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if d.NumUsers() != 2 || d.NumRatings() != 1 || d.NumTrustEdges() != 1 {
		t.Errorf("replayed dataset wrong: %v", d)
	}
	if d.Ratings()[0].Value != 0.8 {
		t.Errorf("rating value = %v, want 0.8 (level 4)", d.Ratings()[0].Value)
	}
}

func TestEventLogCorruption(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	if err := lw.Append(Event{Kind: EvAddUser, Name: "u"}); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] ^= 0xFF // corrupt payload
	if _, err := ReadLog(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
		t.Errorf("error = %v, want checksum/corrupt", err)
	}
}

func TestEventLogTruncation(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	_ = lw.Append(Event{Kind: EvAddUser, Name: "u"})
	firstEnd := -1
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	firstEnd = buf.Len()
	_ = lw.Append(Event{Kind: EvAddUser, Name: "v"})
	_ = lw.Flush()
	raw := buf.Bytes()
	// Cut the log at every point inside the second record: each cut must
	// yield the intact first event plus ErrTruncated at its exact end.
	for cut := firstEnd + 1; cut < len(raw); cut++ {
		events, err := ReadLog(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: error = %v, want ErrTruncated", cut, err)
		}
		var trunc *TruncatedError
		if !errors.As(err, &trunc) {
			t.Fatalf("cut %d: error %T does not carry the offset", cut, err)
		}
		if trunc.Offset != int64(firstEnd) {
			t.Errorf("cut %d: last good offset = %d, want %d", cut, trunc.Offset, firstEnd)
		}
		if len(events) != 1 {
			t.Errorf("cut %d: expected the intact first record, got %d", cut, len(events))
		}
	}
	// A clean cut at a record boundary is not truncation.
	if _, err := ReadLog(bytes.NewReader(raw[:firstEnd])); err != nil {
		t.Errorf("boundary cut: %v", err)
	}
}

func TestReadLogFromResume(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	all := []Event{
		{Kind: EvAddCategory, Name: "movies"},
		{Kind: EvAddUser, Name: "alice"},
		{Kind: EvAddUser, Name: "bob"},
		{Kind: EvAddObject, Category: 0, Name: "m1"},
		{Kind: EvAddReview, User: 0, Object: 0},
		{Kind: EvAddRating, User: 1, Review: 0, Level: 4},
	}
	for _, ev := range all[:3] {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	batch1, off1, err := ReadLogFrom(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch1) != 3 || off1 != int64(buf.Len()) {
		t.Fatalf("first tail: %d events, offset %d (log is %d bytes)", len(batch1), off1, buf.Len())
	}
	// Append more, including a torn final record, and resume from off1.
	for _, ev := range all[3:] {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	buf.Write([]byte{0x09, 0x02}) // torn: length prefix + partial payload
	batch2, off2, err := ReadLogFrom(bytes.NewReader(buf.Bytes()), off1)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail: error = %v, want ErrTruncated", err)
	}
	if len(batch2) != 3 || off2 != int64(whole) {
		t.Fatalf("resumed tail: %d events, offset %d, want 3 events at %d", len(batch2), off2, whole)
	}
	got := append(append([]Event(nil), batch1...), batch2...)
	for i := range all {
		if got[i] != all[i] {
			t.Errorf("event %d = %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestReplayValidationError(t *testing.T) {
	b := ratings.NewBuilder()
	err := Replay([]Event{{Kind: EvAddRating, User: 0, Review: 0, Level: 3}}, b)
	if err == nil {
		t.Error("replay of dangling rating should fail")
	}
	err = Replay([]Event{{Kind: EventKind(99)}}, ratings.NewBuilder())
	if !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("error = %v, want ErrUnknownEvent", err)
	}
	b2 := ratings.NewBuilder()
	b2.AddCategory("c")
	b2.AddUser("w")
	b2.AddUser("r")
	obj, _ := b2.AddObject(0, "")
	if _, err := b2.AddReview(0, obj); err != nil {
		t.Fatal(err)
	}
	err = Replay([]Event{{Kind: EvAddRating, User: 1, Review: 0, Level: 9}}, b2)
	if !errors.Is(err, ratings.ErrInvalidRating) {
		t.Errorf("error = %v, want ErrInvalidRating", err)
	}
}

func TestLogWriterUnknownKind(t *testing.T) {
	lw := NewLogWriter(io.Discard)
	if err := lw.Append(Event{Kind: EventKind(42)}); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("error = %v, want ErrUnknownEvent", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := genDataset(t)
	var users, objects, reviews, ratingsBuf, trust bytes.Buffer
	err := ExportCSV(CSVWriters{
		Users: &users, Objects: &objects, Reviews: &reviews,
		Ratings: &ratingsBuf, Trust: &trust,
	}, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(CSVReaders{
		Users: &users, Objects: &objects, Reviews: &reviews,
		Ratings: &ratingsBuf, Trust: &trust,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(d, got) {
		t.Error("csv round trip lost data")
	}
}

func TestCSVImportErrors(t *testing.T) {
	if _, err := ImportCSV(CSVReaders{}); !errors.Is(err, ErrCSV) {
		t.Errorf("missing sections: %v", err)
	}
	bad := CSVReaders{
		Users:   bytes.NewReader([]byte("id,name\n5,x\n")), // out of order
		Objects: bytes.NewReader([]byte("id,category,name\n")),
		Reviews: bytes.NewReader([]byte("id,writer,object\n")),
	}
	if _, err := ImportCSV(bad); !errors.Is(err, ErrCSV) {
		t.Errorf("out-of-order ids: %v", err)
	}
	empty := CSVReaders{
		Users:   bytes.NewReader(nil),
		Objects: bytes.NewReader(nil),
		Reviews: bytes.NewReader(nil),
	}
	if _, err := ImportCSV(empty); !errors.Is(err, ErrCSV) {
		t.Errorf("empty sections: %v", err)
	}
}

// Property: snapshot round trip is lossless for arbitrary random datasets.
func TestSnapshotRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, d); err != nil {
			return false
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		return datasetsEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every single-byte corruption of a snapshot is rejected.
func TestSnapshotAnyCorruptionRejectedQuick(t *testing.T) {
	d := randomDataset(7)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, d); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	f := func(posRaw uint16, flip uint8) bool {
		if flip == 0 {
			return true // no-op flip
		}
		pos := int(posRaw) % len(raw)
		corrupted := make([]byte, len(raw))
		copy(corrupted, raw)
		corrupted[pos] ^= flip
		got, err := ReadSnapshot(bytes.NewReader(corrupted))
		if err != nil {
			return true
		}
		// A successful read after corruption is only acceptable if the
		// data decoded identically (e.g. flip inside a name is caught by
		// CRC, so this should not happen).
		return datasetsEqual(d, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomDataset(seed uint64) *ratings.Dataset {
	rng := stats.NewRand(seed)
	b := ratings.NewBuilder()
	numCats := 1 + rng.IntN(3)
	for c := 0; c < numCats; c++ {
		b.AddCategory("")
	}
	numUsers := 2 + rng.IntN(10)
	b.AddUsers(numUsers)
	numObjects := 1 + rng.IntN(8)
	for o := 0; o < numObjects; o++ {
		if _, err := b.AddObject(ratings.CategoryID(rng.IntN(numCats)), ""); err != nil {
			panic(err)
		}
	}
	var reviews []ratings.ReviewID
	for k := 0; k < rng.IntN(20); k++ {
		w := ratings.UserID(rng.IntN(numUsers))
		o := ratings.ObjectID(rng.IntN(numObjects))
		if b.HasReview(w, o) {
			continue
		}
		id, err := b.AddReview(w, o)
		if err != nil {
			panic(err)
		}
		reviews = append(reviews, id)
	}
	for k := 0; k < rng.IntN(50) && len(reviews) > 0; k++ {
		rater := ratings.UserID(rng.IntN(numUsers))
		rev := reviews[rng.IntN(len(reviews))]
		if b.HasRating(rater, rev) {
			continue
		}
		_ = b.AddRating(rater, rev, ratings.QuantizeRating(rng.Float64()))
	}
	for k := 0; k < rng.IntN(15); k++ {
		from := ratings.UserID(rng.IntN(numUsers))
		to := ratings.UserID(rng.IntN(numUsers))
		if from != to && !b.HasTrust(from, to) {
			_ = b.AddTrust(from, to)
		}
	}
	return b.Build()
}
