package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"weboftrust/internal/ratings"
)

// EventKind tags a log record. The event log is the ingestion shape: a
// crawler or online community appends events as it discovers entities, and
// Replay folds them into a validated dataset.
type EventKind uint8

// Event kinds.
const (
	EvAddCategory EventKind = iota + 1
	EvAddUser
	EvAddObject
	EvAddReview
	EvAddRating
	EvAddTrust
)

// ErrUnknownEvent reports an unrecognised event kind during replay.
var ErrUnknownEvent = errors.New("store: unknown event kind")

// maxFrameBytes bounds one log record's payload — the only allocation a
// log decoder sizes from wire data. Real records are tens of bytes; the
// cap keeps a forged frame length from preallocating the daemon into an
// OOM while leaving generous headroom for long names.
const maxFrameBytes = 1 << 20

// ErrTruncated reports an event log whose final record is incomplete —
// the shape a crash during append leaves behind. Unlike ErrCorrupt, the
// complete prefix is intact and usable; errors carrying ErrTruncated are
// always a *TruncatedError, whose Offset says where the good prefix ends
// so a tailer can resume once the writer completes the record.
var ErrTruncated = errors.New("store: truncated log tail")

// TruncatedError is the concrete error for a mid-record end of log. It
// wraps ErrTruncated, so errors.Is(err, ErrTruncated) matches.
type TruncatedError struct {
	// Offset is the byte offset just past the last complete record: the
	// position to resume reading from after the writer finishes (or the
	// length to truncate the log to when discarding the torn tail).
	Offset int64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("store: truncated log tail (last good offset %d)", e.Offset)
}

func (e *TruncatedError) Unwrap() error { return ErrTruncated }

// Event is one log record. Which fields are meaningful depends on Kind:
//
//	EvAddCategory: Name
//	EvAddUser:     Name
//	EvAddObject:   Category, Name
//	EvAddReview:   User (writer), Object
//	EvAddRating:   User (rater), Review, Level (1..5)
//	EvAddTrust:    User (from), To
type Event struct {
	Kind     EventKind
	Name     string
	Category ratings.CategoryID
	Object   ratings.ObjectID
	Review   ratings.ReviewID
	User     ratings.UserID
	To       ratings.UserID
	Level    uint8
}

// LogWriter appends events to an underlying writer. Each record is framed
// as: payload length (uvarint), payload, crc32c of payload (4 bytes LE).
// Call Flush before closing the underlying writer.
type LogWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewLogWriter wraps w for appending.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{w: bufio.NewWriter(w)}
}

// Append writes one event record.
func (lw *LogWriter) Append(ev Event) error {
	lw.buf = lw.buf[:0]
	lw.buf = append(lw.buf, byte(ev.Kind))
	switch ev.Kind {
	case EvAddCategory, EvAddUser:
		lw.buf = appendString(lw.buf, ev.Name)
	case EvAddObject:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Category))
		lw.buf = appendString(lw.buf, ev.Name)
	case EvAddReview:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Object))
	case EvAddRating:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Review))
		lw.buf = append(lw.buf, ev.Level)
	case EvAddTrust:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.To))
	default:
		return fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
	}
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(lw.buf)))
	if _, err := lw.w.Write(frame[:n]); err != nil {
		return err
	}
	if _, err := lw.w.Write(lw.buf); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(lw.buf, castagnoli))
	_, err := lw.w.Write(sum[:])
	return err
}

// Flush flushes buffered records to the underlying writer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// LogReader decodes event records one at a time, tracking the byte offset
// of the last complete record so callers can checkpoint their position and
// resume later — the shape a tailing daemon needs. It distinguishes a torn
// final record (*TruncatedError, recoverable by re-reading from Offset once
// the writer finishes) from genuine corruption (ErrCorrupt / ErrChecksum).
type LogReader struct {
	br     *bufio.Reader
	offset int64 // bytes of complete, validated records consumed
}

// NewLogReader wraps r for record-at-a-time decoding. The reader's offset
// starts at base, which must be the stream position of r's first byte
// (0 for a whole log, the saved checkpoint when r was seeked there).
func NewLogReader(r io.Reader, base int64) *LogReader {
	return &LogReader{br: bufio.NewReader(r), offset: base}
}

// Offset returns the byte offset just past the last complete record read.
func (lr *LogReader) Offset() int64 { return lr.offset }

// readUvarint is binary.ReadUvarint with byte accounting, so truncation
// inside the length prefix is detected and the offset stays exact.
func (lr *LogReader) readUvarint() (v uint64, n int, err error) {
	for shift := uint(0); ; shift += 7 {
		b, err := lr.br.ReadByte()
		if err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 {
			return 0, n, fmt.Errorf("%w: frame length overflows uvarint", ErrCorrupt)
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, n, nil
		}
		v |= uint64(b&0x7f) << shift
	}
}

// Next decodes the next record. At a clean end of log it returns io.EOF;
// at a mid-record end it returns a *TruncatedError carrying the last good
// offset. Any other error means the log is corrupt at the current offset.
func (lr *LogReader) Next() (Event, error) {
	length, lenBytes, err := lr.readUvarint()
	if err == io.EOF {
		if lenBytes == 0 {
			return Event{}, io.EOF
		}
		return Event{}, &TruncatedError{Offset: lr.offset}
	}
	if err != nil {
		return Event{}, fmt.Errorf("%w: frame length: %v", ErrCorrupt, err)
	}
	if length == 0 || length > maxFrameBytes {
		return Event{}, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(lr.br, payload); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Event{}, &TruncatedError{Offset: lr.offset}
		}
		return Event{}, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	var sum [4]byte
	if _, err := io.ReadFull(lr.br, sum[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Event{}, &TruncatedError{Offset: lr.offset}
		}
		return Event{}, fmt.Errorf("%w: record checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc32.Checksum(payload, castagnoli) {
		return Event{}, ErrChecksum
	}
	ev, err := decodeEvent(payload)
	if err != nil {
		return Event{}, err
	}
	lr.offset += int64(lenBytes) + int64(length) + 4
	return ev, nil
}

// ReadAll decodes records until the end of the log, returning every
// complete event. A clean end returns a nil error; a torn final record
// returns the complete prefix alongside a *TruncatedError.
func (lr *LogReader) ReadAll() ([]Event, error) {
	var events []Event
	for {
		ev, err := lr.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
}

// ReadLog decodes all event records from r. It fails on framing or
// checksum errors; a truncated final record is reported as a
// *TruncatedError (matching ErrTruncated) alongside the intact prefix.
func ReadLog(r io.Reader) ([]Event, error) {
	return NewLogReader(r, 0).ReadAll()
}

// ReadLogFrom seeks r to offset and decodes every complete record from
// there, returning the events and the offset just past the last complete
// record. A clean end of log returns a nil error; a torn final record
// returns the events read so far with a *TruncatedError whose Offset
// equals the returned offset — the caller keeps the events, checkpoints
// the offset, and retries after the writer finishes the record. This is
// the resumable-tail primitive trustd's ingest loop is built on.
func ReadLogFrom(r io.ReadSeeker, offset int64) ([]Event, int64, error) {
	if _, err := r.Seek(offset, io.SeekStart); err != nil {
		return nil, offset, fmt.Errorf("store: seek to log offset %d: %w", offset, err)
	}
	lr := NewLogReader(r, offset)
	events, err := lr.ReadAll()
	return events, lr.Offset(), err
}

func decodeEvent(payload []byte) (Event, error) {
	var ev Event
	ev.Kind = EventKind(payload[0])
	rest := payload[1:]
	u := func() uint64 {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			rest = nil
			return 0
		}
		rest = rest[n:]
		return v
	}
	str := func() string {
		n := u()
		if uint64(len(rest)) < n {
			rest = nil
			return ""
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s
	}
	switch ev.Kind {
	case EvAddCategory, EvAddUser:
		ev.Name = str()
	case EvAddObject:
		ev.Category = ratings.CategoryID(u())
		ev.Name = str()
	case EvAddReview:
		ev.User = ratings.UserID(u())
		ev.Object = ratings.ObjectID(u())
	case EvAddRating:
		ev.User = ratings.UserID(u())
		ev.Review = ratings.ReviewID(u())
		if len(rest) < 1 {
			return ev, fmt.Errorf("%w: rating event too short", ErrCorrupt)
		}
		ev.Level = rest[0]
		rest = rest[1:]
	case EvAddTrust:
		ev.User = ratings.UserID(u())
		ev.To = ratings.UserID(u())
	default:
		return ev, fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
	}
	if rest == nil {
		return ev, fmt.Errorf("%w: short event payload", ErrCorrupt)
	}
	return ev, nil
}

// Replay folds events into a builder, validating each. It returns the
// first validation error with the offending record index.
func Replay(events []Event, b *ratings.Builder) error {
	for i, ev := range events {
		var err error
		switch ev.Kind {
		case EvAddCategory:
			b.AddCategory(ev.Name)
		case EvAddUser:
			b.AddUser(ev.Name)
		case EvAddObject:
			_, err = b.AddObject(ev.Category, ev.Name)
		case EvAddReview:
			_, err = b.AddReview(ev.User, ev.Object)
		case EvAddRating:
			if ev.Level < 1 || ev.Level > ratings.RatingLevels {
				err = fmt.Errorf("%w: level %d", ratings.ErrInvalidRating, ev.Level)
			} else {
				err = b.AddRating(ev.User, ev.Review, float64(ev.Level)/ratings.RatingLevels)
			}
		case EvAddTrust:
			err = b.AddTrust(ev.User, ev.To)
		default:
			err = fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
		}
		if err != nil {
			return fmt.Errorf("store: replay event %d: %w", i, err)
		}
	}
	return nil
}

// AppendDataset writes the whole dataset to the log as events, in
// dependency order, so a fresh replay reconstructs it exactly.
func AppendDataset(lw *LogWriter, d *ratings.Dataset) error {
	for c := 0; c < d.NumCategories(); c++ {
		if err := lw.Append(Event{Kind: EvAddCategory, Name: d.CategoryName(ratings.CategoryID(c))}); err != nil {
			return err
		}
	}
	for u := 0; u < d.NumUsers(); u++ {
		if err := lw.Append(Event{Kind: EvAddUser, Name: d.UserName(ratings.UserID(u))}); err != nil {
			return err
		}
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if err := lw.Append(Event{Kind: EvAddObject, Category: obj.Category, Name: obj.Name}); err != nil {
			return err
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if err := lw.Append(Event{Kind: EvAddReview, User: rev.Writer, Object: rev.Object}); err != nil {
			return err
		}
	}
	for _, rt := range d.Ratings() {
		ev := Event{Kind: EvAddRating, User: rt.Rater, Review: rt.Review, Level: uint8(ratings.RatingLevel(rt.Value))}
		if err := lw.Append(ev); err != nil {
			return err
		}
	}
	for _, e := range d.TrustEdges() {
		if err := lw.Append(Event{Kind: EvAddTrust, User: e.From, To: e.To}); err != nil {
			return err
		}
	}
	return lw.Flush()
}
