package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"weboftrust/internal/ratings"
)

// EventKind tags a log record. The event log is the ingestion shape: a
// crawler or online community appends events as it discovers entities, and
// Replay folds them into a validated dataset.
type EventKind uint8

// Event kinds.
const (
	EvAddCategory EventKind = iota + 1
	EvAddUser
	EvAddObject
	EvAddReview
	EvAddRating
	EvAddTrust
)

// ErrUnknownEvent reports an unrecognised event kind during replay.
var ErrUnknownEvent = errors.New("store: unknown event kind")

// Event is one log record. Which fields are meaningful depends on Kind:
//
//	EvAddCategory: Name
//	EvAddUser:     Name
//	EvAddObject:   Category, Name
//	EvAddReview:   User (writer), Object
//	EvAddRating:   User (rater), Review, Level (1..5)
//	EvAddTrust:    User (from), To
type Event struct {
	Kind     EventKind
	Name     string
	Category ratings.CategoryID
	Object   ratings.ObjectID
	Review   ratings.ReviewID
	User     ratings.UserID
	To       ratings.UserID
	Level    uint8
}

// LogWriter appends events to an underlying writer. Each record is framed
// as: payload length (uvarint), payload, crc32c of payload (4 bytes LE).
// Call Flush before closing the underlying writer.
type LogWriter struct {
	w   *bufio.Writer
	buf []byte
}

// NewLogWriter wraps w for appending.
func NewLogWriter(w io.Writer) *LogWriter {
	return &LogWriter{w: bufio.NewWriter(w)}
}

// Append writes one event record.
func (lw *LogWriter) Append(ev Event) error {
	lw.buf = lw.buf[:0]
	lw.buf = append(lw.buf, byte(ev.Kind))
	switch ev.Kind {
	case EvAddCategory, EvAddUser:
		lw.buf = appendString(lw.buf, ev.Name)
	case EvAddObject:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Category))
		lw.buf = appendString(lw.buf, ev.Name)
	case EvAddReview:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Object))
	case EvAddRating:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.Review))
		lw.buf = append(lw.buf, ev.Level)
	case EvAddTrust:
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.User))
		lw.buf = binary.AppendUvarint(lw.buf, uint64(ev.To))
	default:
		return fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
	}
	var frame [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(frame[:], uint64(len(lw.buf)))
	if _, err := lw.w.Write(frame[:n]); err != nil {
		return err
	}
	if _, err := lw.w.Write(lw.buf); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(lw.buf, castagnoli))
	_, err := lw.w.Write(sum[:])
	return err
}

// Flush flushes buffered records to the underlying writer.
func (lw *LogWriter) Flush() error { return lw.w.Flush() }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ReadLog decodes all event records from r. It fails on framing or
// checksum errors; a truncated final record is reported as ErrCorrupt.
func ReadLog(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var events []Event
	for {
		length, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, fmt.Errorf("%w: frame length: %v", ErrCorrupt, err)
		}
		if length == 0 || length > 1<<20 {
			return events, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return events, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
		}
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return events, fmt.Errorf("%w: record checksum: %v", ErrCorrupt, err)
		}
		if binary.LittleEndian.Uint32(sum[:]) != crc32.Checksum(payload, castagnoli) {
			return events, ErrChecksum
		}
		ev, err := decodeEvent(payload)
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
}

func decodeEvent(payload []byte) (Event, error) {
	var ev Event
	ev.Kind = EventKind(payload[0])
	rest := payload[1:]
	u := func() uint64 {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			rest = nil
			return 0
		}
		rest = rest[n:]
		return v
	}
	str := func() string {
		n := u()
		if uint64(len(rest)) < n {
			rest = nil
			return ""
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s
	}
	switch ev.Kind {
	case EvAddCategory, EvAddUser:
		ev.Name = str()
	case EvAddObject:
		ev.Category = ratings.CategoryID(u())
		ev.Name = str()
	case EvAddReview:
		ev.User = ratings.UserID(u())
		ev.Object = ratings.ObjectID(u())
	case EvAddRating:
		ev.User = ratings.UserID(u())
		ev.Review = ratings.ReviewID(u())
		if len(rest) < 1 {
			return ev, fmt.Errorf("%w: rating event too short", ErrCorrupt)
		}
		ev.Level = rest[0]
		rest = rest[1:]
	case EvAddTrust:
		ev.User = ratings.UserID(u())
		ev.To = ratings.UserID(u())
	default:
		return ev, fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
	}
	if rest == nil {
		return ev, fmt.Errorf("%w: short event payload", ErrCorrupt)
	}
	return ev, nil
}

// Replay folds events into a builder, validating each. It returns the
// first validation error with the offending record index.
func Replay(events []Event, b *ratings.Builder) error {
	for i, ev := range events {
		var err error
		switch ev.Kind {
		case EvAddCategory:
			b.AddCategory(ev.Name)
		case EvAddUser:
			b.AddUser(ev.Name)
		case EvAddObject:
			_, err = b.AddObject(ev.Category, ev.Name)
		case EvAddReview:
			_, err = b.AddReview(ev.User, ev.Object)
		case EvAddRating:
			if ev.Level < 1 || ev.Level > ratings.RatingLevels {
				err = fmt.Errorf("%w: level %d", ratings.ErrInvalidRating, ev.Level)
			} else {
				err = b.AddRating(ev.User, ev.Review, float64(ev.Level)/ratings.RatingLevels)
			}
		case EvAddTrust:
			err = b.AddTrust(ev.User, ev.To)
		default:
			err = fmt.Errorf("%w: %d", ErrUnknownEvent, ev.Kind)
		}
		if err != nil {
			return fmt.Errorf("store: replay event %d: %w", i, err)
		}
	}
	return nil
}

// AppendDataset writes the whole dataset to the log as events, in
// dependency order, so a fresh replay reconstructs it exactly.
func AppendDataset(lw *LogWriter, d *ratings.Dataset) error {
	for c := 0; c < d.NumCategories(); c++ {
		if err := lw.Append(Event{Kind: EvAddCategory, Name: d.CategoryName(ratings.CategoryID(c))}); err != nil {
			return err
		}
	}
	for u := 0; u < d.NumUsers(); u++ {
		if err := lw.Append(Event{Kind: EvAddUser, Name: d.UserName(ratings.UserID(u))}); err != nil {
			return err
		}
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if err := lw.Append(Event{Kind: EvAddObject, Category: obj.Category, Name: obj.Name}); err != nil {
			return err
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if err := lw.Append(Event{Kind: EvAddReview, User: rev.Writer, Object: rev.Object}); err != nil {
			return err
		}
	}
	for _, rt := range d.Ratings() {
		ev := Event{Kind: EvAddRating, User: rt.Rater, Review: rt.Review, Level: uint8(ratings.RatingLevel(rt.Value))}
		if err := lw.Append(ev); err != nil {
			return err
		}
	}
	for _, e := range d.TrustEdges() {
		if err := lw.Append(Event{Kind: EvAddTrust, User: e.From, To: e.To}); err != nil {
			return err
		}
	}
	return lw.Flush()
}
