// Package anomaly computes per-user suspicion scores from rating
// behavior and trust-graph shape — the serving tier's defensive signal
// against the attacks internal/adversary generates (DESIGN.md §13).
//
// A user's score combines three signals, each in [0, 1]:
//
//   - rating-pattern outlier: how far the user's given ratings sit from
//     the rating distributions of the categories they rate in, plus how
//     concentrated they are at the scale's extremes. Ballot stuffers and
//     slanderers rate 5-star or 1-star regardless of quality; honest
//     raters track it.
//   - graph reciprocity/clustering: how mutual and how internally
//     connected the user's neighborhood in the served web of trust is.
//     Collusion rings are near-cliques of reciprocated edges; organic
//     derived trust is overwhelmingly one-directional.
//   - rating-burst concentration: how concentrated the user's rating
//     volume is on few target writers (a Herfindahl index over the
//     direct-connection row). Sybil farms spend their whole budget on
//     one beneficiary.
//
// Scores are a pure function of (dataset, web graph): Update produces
// bit-identical results to a from-scratch Compute (pinned by test), so
// every replica of a cluster serves identical scores regardless of its
// swap cadence — the property that lets the router fan /v1/anomaly out
// to any shard.
package anomaly

import (
	"math"

	"weboftrust/internal/graph"
	"weboftrust/internal/ratings"
)

// Signal weights. Rating-pattern evidence is the strongest single
// discriminator (every attack family must emit ratings to matter);
// graph shape separates coordinated cohorts from lone zealots; burst
// concentration catches single-target farms the other two can miss.
const (
	weightRating = 0.40
	weightGraph  = 0.35
	weightBurst  = 0.25
)

// maxClusterNeighbors caps the neighborhood size the clustering term
// inspects: local clustering is quadratic in degree, and a hub with
// hundreds of neighbours is the opposite of a small tight ring, so
// over-cap users take clustering 0 instead of an O(deg²) scan.
const maxClusterNeighbors = 128

// defaultCatMean is the category rating mean assumed for a category
// that has no ratings yet (the scale's midpoint).
const defaultCatMean = 0.6

// Scores is one dataset version's immutable per-user suspicion state.
// Construct with Compute (full) or Update (incremental); never mutate.
type Scores struct {
	rating []float64 // rating-pattern outlier signal
	graphS []float64 // reciprocity/clustering signal
	burst  []float64 // rating-burst concentration signal
	total  []float64 // weighted combination

	// Per-category rating count and value sum — the sufficient
	// statistics behind the category means, carried across incremental
	// updates so a delta tick pays O(new ratings), not O(all ratings).
	catCount []int64
	catSum   []float64
}

// NumUsers returns the number of scored users.
func (s *Scores) NumUsers() int { return len(s.total) }

// Total returns the combined per-user suspicion vector, indexed by user
// id. The slice is shared; do not modify.
func (s *Scores) Total() []float64 { return s.total }

// Signals returns user u's per-signal breakdown.
func (s *Scores) Signals(u ratings.UserID) (rating, graphS, burst float64) {
	return s.rating[u], s.graphS[u], s.burst[u]
}

// Score returns user u's combined suspicion score.
func (s *Scores) Score(u ratings.UserID) float64 { return s.total[u] }

// MaxScore returns the largest combined score (0 for an empty community).
func (s *Scores) MaxScore() float64 {
	m := 0.0
	for _, v := range s.total {
		if v > m {
			m = v
		}
	}
	return m
}

// Compute scores every user of d against the web-of-trust graph g (which
// may be nil when no graph consumer has built one; graph signals are then
// 0). It is the from-scratch path; Update is the per-swap delta path.
func Compute(d *ratings.Dataset, g *graph.Graph) *Scores {
	s := newScores(d.NumUsers(), d.NumCategories())
	accumulateCategories(s, d, 0)
	means := s.categoryMeans()
	for u := 0; u < d.NumUsers(); u++ {
		s.rescoreUser(d, g, means, ratings.UserID(u))
	}
	return s
}

// Update advances prev — the scores of (oldD, oldG) — to (newD, newG),
// recomputing only users whose inputs could have changed: users with new
// ratings, new users, every rater in a category whose rating mean moved,
// and the graph-dirty closure (webDirty rows plus their old- and
// new-graph neighbours, whose reciprocity and clustering read those
// rows). The result is bit-identical to Compute(newD, newG); webDirty
// nil (or a nil oldG against a non-nil newG) degrades the graph side to
// a full rescore rather than guessing.
func Update(prev *Scores, oldD, newD *ratings.Dataset, oldG, newG *graph.Graph, webDirty []bool) *Scores {
	numU := newD.NumUsers()
	s := &Scores{
		rating:   growCopy(prev.rating, numU),
		graphS:   growCopy(prev.graphS, numU),
		burst:    growCopy(prev.burst, numU),
		total:    growCopy(prev.total, numU),
		catCount: growCopy(prev.catCount, newD.NumCategories()),
		catSum:   growCopy(prev.catSum, newD.NumCategories()),
	}
	accumulateCategories(s, newD, oldD.NumRatings())
	means := s.categoryMeans()

	dirty := make([]bool, numU)
	for u := oldD.NumUsers(); u < numU; u++ {
		dirty[u] = true
	}
	// New ratings dirty their rater directly and — because they move a
	// category's mean — every other rater in that category.
	touchedCat := make(map[ratings.CategoryID]bool)
	for _, rt := range newD.Ratings()[oldD.NumRatings():] {
		dirty[rt.Rater] = true
		touchedCat[newD.Review(rt.Review).Category] = true
	}
	for c := range touchedCat {
		for _, rid := range newD.ReviewsInCategory(c) {
			for _, rt := range newD.RatingsOn(rid) {
				dirty[rt.Rater] = true
			}
		}
	}
	// Graph closure: a dirty row changes its own reciprocity and
	// clustering AND that of every node whose neighbourhood contains it,
	// in either graph (an edge may have moved away). markNeighbors over
	// old and new covers both sides of every added or dropped edge.
	switch {
	case webDirty == nil && newG != nil:
		for u := range dirty {
			dirty[u] = true
		}
	case webDirty != nil:
		for u := 0; u < len(webDirty) && u < numU; u++ {
			if !webDirty[u] {
				continue
			}
			dirty[u] = true
			markNeighbors(oldG, u, dirty)
			markNeighbors(newG, u, dirty)
		}
	}
	for u := 0; u < numU; u++ {
		if dirty[u] {
			s.rescoreUser(newD, newG, means, ratings.UserID(u))
		}
	}
	return s
}

func newScores(numU, numC int) *Scores {
	return &Scores{
		rating:   make([]float64, numU),
		graphS:   make([]float64, numU),
		burst:    make([]float64, numU),
		total:    make([]float64, numU),
		catCount: make([]int64, numC),
		catSum:   make([]float64, numC),
	}
}

func growCopy[T int64 | float64](src []T, n int) []T {
	out := make([]T, n)
	copy(out, src)
	return out
}

// accumulateCategories folds ratings from index `from` onward into the
// per-category sufficient statistics, in dataset order — the same
// association a from-scratch pass uses, so incremental sums stay
// bit-identical.
func accumulateCategories(s *Scores, d *ratings.Dataset, from int) {
	for _, rt := range d.Ratings()[from:] {
		c := d.Review(rt.Review).Category
		s.catCount[c]++
		s.catSum[c] += rt.Value
	}
}

func (s *Scores) categoryMeans() []float64 {
	means := make([]float64, len(s.catCount))
	for c := range means {
		if s.catCount[c] > 0 {
			means[c] = s.catSum[c] / float64(s.catCount[c])
		} else {
			means[c] = defaultCatMean
		}
	}
	return means
}

func markNeighbors(g *graph.Graph, u int, dirty []bool) {
	if g == nil || u >= g.NumNodes() {
		return
	}
	to, _ := g.Out(u)
	for _, v := range to {
		if int(v) < len(dirty) {
			dirty[v] = true
		}
	}
	from, _ := g.In(u)
	for _, v := range from {
		if int(v) < len(dirty) {
			dirty[v] = true
		}
	}
}

// rescoreUser recomputes all of user u's signals from scratch against
// the current dataset index, category means and graph. Both Compute and
// Update funnel through it, which is what makes them agree bitwise.
func (s *Scores) rescoreUser(d *ratings.Dataset, g *graph.Graph, catMean []float64, u ratings.UserID) {
	rating, burst := ratingSignals(d, catMean, u)
	s.rating[u] = rating
	s.burst[u] = burst
	s.graphS[u] = graphSignal(g, int(u))
	s.total[u] = weightRating*rating + weightGraph*s.graphS[u] + weightBurst*burst
}

// ratingSignals computes the rating-pattern outlier and burst
// concentration signals from u's given ratings.
func ratingSignals(d *ratings.Dataset, catMean []float64, u ratings.UserID) (rating, burst float64) {
	rs := d.RatingsBy(u)
	n := len(rs)
	if n == 0 {
		return 0, 0
	}
	extreme := 0
	var devSum float64
	for _, rt := range rs {
		if rt.Value <= ratings.MinRating+1e-9 || rt.Value >= 1-1e-9 {
			extreme++
		}
		devSum += rt.Value - catMean[d.Review(rt.Review).Category]
	}
	// conf damps every signal by volume: a two-rating account can look
	// extreme by chance; a twenty-rating one cannot.
	conf := float64(n) / float64(n+4)
	extremity := float64(extreme) / float64(n)
	// Signed mean deviation: attackers push one direction systematically,
	// honest noise cancels. 0.8 is the scale's widest possible gap; the
	// 0.45 knee saturates the term at "half a scale away on average".
	dev := math.Abs(devSum) / (0.8 * float64(n))
	rating = conf * clamp01(0.45*extremity+0.55*math.Min(1, dev/0.45))

	// Burst concentration: Herfindahl index of the user's rating volume
	// over target writers, rescaled so an even spread scores 0 and a
	// single-target burst scores 1.
	var herf float64
	writers := 0
	d.ConnectionsFrom(u, func(c ratings.Connection) {
		f := float64(c.Count) / float64(n)
		herf += f * f
		writers++
	})
	if writers <= 1 {
		burst = conf
	} else {
		floor := 1 / float64(writers)
		// clamp01: an exactly even spread can land a hair below the floor
		// through float cancellation.
		burst = conf * clamp01((herf-floor)/(1-floor))
	}
	return rating, burst
}

// graphSignal computes the ring signal: the fraction of u's web
// out-edges that are reciprocated, amplified by how internally connected
// u's (capped) neighbourhood is.
func graphSignal(g *graph.Graph, u int) float64 {
	if g == nil || u >= g.NumNodes() {
		return 0
	}
	to, _ := g.Out(u)
	if len(to) == 0 {
		return 0
	}
	recip := 0
	for _, v := range to {
		if _, ok := g.Weight(int(v), u); ok {
			recip++
		}
	}
	recipFrac := float64(recip) / float64(len(to))
	clust := 0.0
	if g.OutDegree(u)+g.InDegree(u) <= maxClusterNeighbors {
		clust = g.LocalClustering(u)
	}
	conf := float64(len(to)) / float64(len(to)+2)
	return conf * recipFrac * (0.35 + 0.65*clust)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
