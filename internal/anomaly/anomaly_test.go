package anomaly_test

import (
	"strings"
	"testing"

	"weboftrust"
	"weboftrust/internal/anomaly"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

func smallDataset(t testing.TB) *ratings.Dataset {
	t.Helper()
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func derive(t testing.TB, d *ratings.Dataset) *weboftrust.TrustModel {
	t.Helper()
	m, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestComputeDeterministic(t *testing.T) {
	d := smallDataset(t)
	g := derive(t, d).WebOfTrust().Graph()
	a, b := anomaly.Compute(d, g), anomaly.Compute(d, g)
	if len(a.Total()) != d.NumUsers() {
		t.Fatalf("scored %d users, want %d", len(a.Total()), d.NumUsers())
	}
	for u, v := range a.Total() {
		if b.Total()[u] != v {
			t.Fatalf("user %d: %v != %v across identical computes", u, v, b.Total()[u])
		}
	}
}

func TestScoresInRange(t *testing.T) {
	d := smallDataset(t)
	g := derive(t, d).WebOfTrust().Graph()
	s := anomaly.Compute(d, g)
	for u := 0; u < d.NumUsers(); u++ {
		r, gs, bu := s.Signals(ratings.UserID(u))
		total := s.Score(ratings.UserID(u))
		for _, v := range []float64{r, gs, bu, total} {
			if v < 0 || v > 1 {
				t.Fatalf("user %d: signal out of [0,1]: rating=%v graph=%v burst=%v total=%v", u, r, gs, bu, total)
			}
		}
	}
}

func TestNilGraphZerosGraphSignal(t *testing.T) {
	d := smallDataset(t)
	s := anomaly.Compute(d, nil)
	for u := 0; u < d.NumUsers(); u++ {
		if _, gs, _ := s.Signals(ratings.UserID(u)); gs != 0 {
			t.Fatalf("user %d: graph signal %v with nil graph", u, gs)
		}
	}
}

// TestUpdateMatchesCompute pins the property the sharded router depends
// on: an incremental Update across an ingest tick is bit-identical to a
// from-scratch Compute on the new dataset, so scores are a pure function
// of dataset version regardless of swap cadence.
func TestUpdateMatchesCompute(t *testing.T) {
	full := smallDataset(t)
	var buf strings.Builder
	lw := store.NewLogWriter(&buf)
	if err := store.AppendDataset(lw, full); err != nil {
		t.Fatal(err)
	}
	events, _, err := store.ReadLogFrom(strings.NewReader(buf.String()), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Replay a prefix, snapshot, replay the rest — the tailer shape.
	cut := len(events) * 9 / 10
	b := ratings.NewBuilder()
	if err := store.Replay(events[:cut], b); err != nil {
		t.Fatal(err)
	}
	oldD := b.Snapshot()
	if err := store.Replay(events[cut:], b); err != nil {
		t.Fatal(err)
	}
	newD := b.Snapshot()

	oldModel := derive(t, oldD)
	newModel, err := oldModel.Update(newD)
	if err != nil {
		t.Fatal(err)
	}
	oldG := oldModel.WebOfTrust().Graph()
	newG := newModel.WebOfTrust().Graph()

	prev := anomaly.Compute(oldD, oldG)
	inc := anomaly.Update(prev, oldD, newD, oldG, newG, newModel.DirtyUsers())
	fresh := anomaly.Compute(newD, newG)
	if inc.NumUsers() != fresh.NumUsers() {
		t.Fatalf("incremental scored %d users, fresh %d", inc.NumUsers(), fresh.NumUsers())
	}
	for u := 0; u < fresh.NumUsers(); u++ {
		ir, ig, ib := inc.Signals(ratings.UserID(u))
		fr, fg, fb := fresh.Signals(ratings.UserID(u))
		if ir != fr || ig != fg || ib != fb || inc.Total()[u] != fresh.Total()[u] {
			t.Fatalf("user %d: incremental (%v,%v,%v,%v) != fresh (%v,%v,%v,%v)",
				u, ir, ig, ib, inc.Total()[u], fr, fg, fb, fresh.Total()[u])
		}
	}
}

// TestUpdateNilDirtyFallsBack: with no dirty information the update must
// still be exact (it rescores everyone).
func TestUpdateNilDirtyFallsBack(t *testing.T) {
	d := smallDataset(t)
	g := derive(t, d).WebOfTrust().Graph()
	prev := anomaly.Compute(d, nil)
	upd := anomaly.Update(prev, d, d, nil, g, nil)
	fresh := anomaly.Compute(d, g)
	for u, v := range fresh.Total() {
		if upd.Total()[u] != v {
			t.Fatalf("user %d: nil-dirty update %v != fresh %v", u, upd.Total()[u], v)
		}
	}
}
