package propagation

import (
	"math"
	"math/rand"
	"testing"

	"weboftrust/internal/graph"
)

func randomTrustGraph(t *testing.T, rng *rand.Rand, n int, p float64) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if v != u && rng.Float64() < p {
				edges = append(edges, graph.Edge{From: v, To: u, Weight: 0.1 + 0.9*rng.Float64()})
			}
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRanksFromColdMatchesRanks: a nil warm-start vector must reproduce
// the historical Ranks output bit for bit.
func TestRanksFromColdMatchesRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomTrustGraph(t, rng, 40, 0.1)
	et := DefaultEigenTrust()
	want, err := et.Ranks(g)
	if err != nil {
		t.Fatal(err)
	}
	got, iters, err := et.RanksFrom(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatalf("cold start reported %d iterations", iters)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d]: cold RanksFrom %v != Ranks %v", i, got[i], want[i])
		}
	}
}

// TestRanksFromWarmConverges: warm-starting from the converged vector of
// a slightly perturbed graph re-converges in far fewer iterations and to
// the same fixed point (within tolerance of the cold solve).
func TestRanksFromWarmConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomTrustGraph(t, rng, 60, 0.08)
	et := DefaultEigenTrust()
	base, coldIters, err := et.RanksFrom(g, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Perturb a single edge weight slightly — the kind of drift one
	// incremental tick produces. Power iteration converges geometrically,
	// so the warm start's head start (L1 error ~ the perturbation) buys
	// iterations proportional to log of the error ratio.
	n := g.NumNodes()
	to := make([][]int32, n)
	w := make([][]float64, n)
	var touched bool
	for v := 0; v < n; v++ {
		tt, ww := g.Out(v)
		to[v] = tt
		if !touched && len(ww) > 0 {
			w[v] = append([]float64(nil), ww...)
			w[v][0] *= 1 + 1e-8
			touched = true
		} else {
			w[v] = ww
		}
	}
	if !touched {
		t.Fatal("graph has no edges to perturb")
	}
	g2, err := graph.FromRows(n, to, w)
	if err != nil {
		t.Fatal(err)
	}

	coldV, cold2, err := et.RanksFrom(g2, nil)
	if err != nil {
		t.Fatal(err)
	}
	warmV, warm, err := et.RanksFrom(g2, base)
	if err != nil {
		t.Fatal(err)
	}
	if warm*2 > cold2 {
		t.Fatalf("warm start took %d iterations vs %d cold", warm, cold2)
	}
	var l1 float64
	for i := range warmV {
		l1 += math.Abs(warmV[i] - coldV[i])
	}
	if l1 > 1e-8 {
		t.Fatalf("warm and cold solves disagree: L1 %g", l1)
	}
	_ = coldIters
}

// TestRanksFromScratchReuse: repeated scratch solves return the same
// vector as allocating solves.
func TestRanksFromScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	et := DefaultEigenTrust()
	var s RankScratch
	for trial := 0; trial < 5; trial++ {
		g := randomTrustGraph(t, rng, 10+trial*7, 0.15)
		want, _, err := et.RanksFrom(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := et.RanksFromScratch(g, nil, &s)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("scratch solve has %d entries, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank[%d]: %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRanksFromRejectsOversizedPrev(t *testing.T) {
	g, err := graph.New(2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DefaultEigenTrust().RanksFrom(g, make([]float64, 5)); err == nil {
		t.Fatal("oversized warm-start vector accepted")
	}
}
