package propagation

import (
	"fmt"
	"math"

	"weboftrust/internal/graph"
)

// Appleseed computes personalised trust ranks by spreading activation
// (Ziegler & Lausen, the paper's reference [9]): energy is injected at the
// source and flows along trust edges; each visited node keeps a (1−d)
// share of its incoming energy as trust and forwards the d share along its
// outgoing edges proportionally to their weights. A virtual backward edge
// from every reached node to the source (weight 1) implements Appleseed's
// normalisation trick, returning energy to the source's neighbourhood and
// guaranteeing convergence.
type Appleseed struct {
	// Injection is the energy injected at the source (Ziegler uses 200).
	Injection float64
	// Spreading is d, the fraction of energy forwarded, in (0, 1).
	Spreading float64
	// Tol stops iterating when no node's pending energy exceeds it.
	Tol float64
	// MaxIter caps iterations.
	MaxIter int
}

// DefaultAppleseed returns Ziegler's conventional parameterisation.
func DefaultAppleseed() Appleseed {
	return Appleseed{Injection: 200, Spreading: 0.85, Tol: 0.01, MaxIter: 200}
}

// Rank computes trust energy for every node from the source's viewpoint.
// The source's own entry is 0 (it does not rank itself). It returns an
// error for invalid parameters or an out-of-range source.
func (as Appleseed) Rank(g *graph.Graph, source int) ([]float64, error) {
	return as.RankTruncated(g, source, Truncate{})
}

// RankTruncated is Rank under a truncation bound: with tr.MaxDepth > 0
// the spread is confined to the depth-ball around the source (edges
// leaving the ball are excluded from the spreading split, exactly as
// self-loops are), and with tr.MassEps > 0 parcels whose energy has
// decayed to tr.MassEps or below are dropped instead of retained and
// forwarded — the low-mass walk tail that costs iterations without
// moving the ranking. A zero tr takes the identical code path as Rank,
// so the untruncated result is bitwise-unchanged.
func (as Appleseed) RankTruncated(g *graph.Graph, source int, tr Truncate) ([]float64, error) {
	if as.Injection <= 0 {
		return nil, fmt.Errorf("%w: injection %v", ErrBadConfig, as.Injection)
	}
	if as.Spreading <= 0 || as.Spreading >= 1 {
		return nil, fmt.Errorf("%w: spreading %v outside (0,1)", ErrBadConfig, as.Spreading)
	}
	if as.MaxIter < 1 || !(as.Tol > 0) {
		return nil, fmt.Errorf("%w: MaxIter %d / Tol %v", ErrBadConfig, as.MaxIter, as.Tol)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("%w: source %d out of range %d", ErrBadConfig, source, n)
	}
	var depth []int // nil = unbounded horizon
	if tr.MaxDepth > 0 {
		depth = g.BFSDepths(source, tr.MaxDepth)
	}
	eps := tr.MassEps
	trust := make([]float64, n)
	in := make([]float64, n)
	nextIn := make([]float64, n)
	in[source] = as.Injection

	for iter := 0; iter < as.MaxIter; iter++ {
		active := false
		for i := range nextIn {
			nextIn[i] = 0
		}
		for v := 0; v < n; v++ {
			e := in[v]
			if e <= eps && v != source {
				continue
			}
			if e <= 0 {
				continue
			}
			if e > as.Tol {
				active = true
			}
			if v != source {
				trust[v] += (1 - as.Spreading) * e
			}
			forward := as.Spreading * e
			to, w := g.Out(v)
			// Virtual backward edge to the source with weight 1,
			// excluded for the source itself.
			total := 0.0
			for i2, u := range to {
				if int(u) != v && (depth == nil || depth[u] >= 0) {
					total += w[i2]
				}
			}
			backWeight := 0.0
			if v != source {
				backWeight = 1
				total += backWeight
			}
			if total <= 0 {
				// Dead end: all energy returns to the source.
				if v != source {
					nextIn[source] += forward
				}
				continue
			}
			for i2, u := range to {
				if int(u) == v {
					continue // self-loops carry no trust
				}
				if depth != nil && depth[u] < 0 {
					continue // beyond the truncation horizon
				}
				nextIn[u] += forward * w[i2] / total
			}
			if backWeight > 0 {
				nextIn[source] += forward * backWeight / total
			}
		}
		in, nextIn = nextIn, in
		if !active {
			break
		}
	}
	return trust, nil
}

// TopRanked returns the indices of the k highest-trust nodes from ranks,
// excluding zeros, in descending order (ties by ascending index).
func TopRanked(ranks []float64, k int) []int {
	type pair struct {
		idx int
		v   float64
	}
	var pairs []pair
	for i, v := range ranks {
		if v > 0 {
			pairs = append(pairs, pair{idx: i, v: v})
		}
	}
	// Insertion-sort into the top-k (k is small in practice).
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int, 0, k)
	used := make(map[int]bool, k)
	for len(out) < k {
		best := -1
		for _, p := range pairs {
			if used[p.idx] {
				continue
			}
			if best == -1 || p.v > ranks[best] || (p.v == ranks[best] && p.idx < best) {
				best = p.idx
			}
		}
		if best == -1 {
			break
		}
		used[best] = true
		out = append(out, best)
	}
	return out
}

// L1Distance returns the L1 distance between two equal-length vectors,
// used to compare propagation outputs across webs. It panics on length
// mismatch.
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("propagation: L1Distance length mismatch")
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
