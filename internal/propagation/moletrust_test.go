package propagation

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/graph"
	"weboftrust/internal/stats"
)

func TestMoleTrustChain(t *testing.T) {
	// 0 --1.0--> 1 --0.8--> 2: trust(1) = 1.0... trust(1) = (1*1)/1 = 1;
	// trust(2) = (1*0.8)/1 = 0.8.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 1, Weight: 1.0},
		{From: 1, To: 2, Weight: 0.8},
	})
	ranks, err := DefaultMoleTrust().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 1 {
		t.Errorf("source trust = %v, want 1", ranks[0])
	}
	if math.Abs(ranks[1]-1.0) > 1e-12 {
		t.Errorf("trust(1) = %v, want 1.0", ranks[1])
	}
	if math.Abs(ranks[2]-0.8) > 1e-12 {
		t.Errorf("trust(2) = %v, want 0.8", ranks[2])
	}
}

func TestMoleTrustThresholdCutsPropagators(t *testing.T) {
	// Node 1 ends with trust 0.3 < threshold 0.6, so it must not
	// propagate to node 2; node 2 stays unrated.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 1, Weight: 0.3},
		{From: 1, To: 2, Weight: 1.0},
	})
	ranks, err := DefaultMoleTrust().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[2] != 0 {
		t.Errorf("trust(2) = %v, want 0 (propagator below threshold)", ranks[2])
	}
}

func TestMoleTrustWeightedAverage(t *testing.T) {
	// Two depth-1 nodes with trust 1.0 rate node 3 differently: 0.8 and
	// 0.4 -> average (1*0.8 + 1*0.4)/(1+1) = 0.6.
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 1.0}, {From: 0, To: 2, Weight: 1.0},
		{From: 1, To: 3, Weight: 0.8}, {From: 2, To: 3, Weight: 0.4},
	})
	ranks, err := DefaultMoleTrust().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ranks[3]-0.6) > 1e-12 {
		t.Errorf("trust(3) = %v, want 0.6", ranks[3])
	}
}

func TestMoleTrustHorizon(t *testing.T) {
	g := mustGraph(t, 5, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
		{From: 2, To: 3, Weight: 1}, {From: 3, To: 4, Weight: 1},
	})
	mt := MoleTrust{MaxDepth: 2, Threshold: 0.6}
	ranks, err := mt.Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[2] <= 0 {
		t.Error("depth-2 node should be rated")
	}
	if ranks[3] != 0 || ranks[4] != 0 {
		t.Errorf("beyond-horizon nodes rated: %v, %v", ranks[3], ranks[4])
	}
}

func TestMoleTrustIgnoresCycleBackEdges(t *testing.T) {
	// 0 -> 1 -> 0 cycle: the back edge must not feed node 0's trust (it
	// is pinned to 1) or double-count into depth-1 nodes.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 1, Weight: 0.9}, {From: 1, To: 0, Weight: 0.1},
		{From: 1, To: 2, Weight: 0.7},
	})
	ranks, err := DefaultMoleTrust().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 1 {
		t.Errorf("source trust mutated to %v", ranks[0])
	}
	if math.Abs(ranks[2]-0.7) > 1e-12 {
		t.Errorf("trust(2) = %v, want 0.7", ranks[2])
	}
}

func TestMoleTrustBadConfig(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	for i, mt := range []MoleTrust{
		{MaxDepth: 0, Threshold: 0.5},
		{MaxDepth: 2, Threshold: -0.1},
		{MaxDepth: 2, Threshold: 1.1},
	} {
		if _, err := mt.Rank(g, 0); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	if _, err := DefaultMoleTrust().Rank(g, 7); !errors.Is(err, ErrBadConfig) {
		t.Error("out-of-range source accepted")
	}
	_ = DefaultMoleTrust().String()
}

func TestMoleTrustCoverage(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1},
	})
	cov, err := DefaultMoleTrust().Coverage(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Errorf("coverage = %v, want 2/3", cov)
	}
	empty, err := DefaultMoleTrust().Coverage(g, nil)
	if err != nil || empty != 0 {
		t.Errorf("empty sources: %v, %v", empty, err)
	}
}

// Property: MoleTrust outputs stay in [0,1] for weights in [0,1], and the
// source is always 1.
func TestMoleTrustRangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(12)
		seen := make(map[[2]int]bool)
		var edges []graph.Edge
		for k := 0; k < rng.IntN(4*n); k++ {
			from, to := rng.IntN(n), rng.IntN(n)
			if from != to && !seen[[2]int{from, to}] {
				seen[[2]int{from, to}] = true
				edges = append(edges, graph.Edge{From: from, To: to, Weight: rng.Float64()})
			}
		}
		g, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		source := rng.IntN(n)
		ranks, err := DefaultMoleTrust().Rank(g, source)
		if err != nil {
			return false
		}
		if ranks[source] != 1 {
			return false
		}
		for _, r := range ranks {
			if r < 0 || r > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
