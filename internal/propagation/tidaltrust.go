// Package propagation implements the trust-propagation algorithms the
// paper positions itself against and proposes as future work: TidalTrust
// (Golbeck, the paper's reference [3]), EigenTrust (Kamvar et al., [8])
// and Appleseed-style spreading activation (Ziegler & Lausen, [9]).
//
// The paper's conclusion proposes propagating the *derived* web of trust
// and comparing against propagation over the explicit web; the experiments
// package builds both graphs and runs these algorithms over each.
package propagation

import (
	"errors"
	"fmt"

	"weboftrust/internal/graph"
)

// ErrBadConfig reports invalid algorithm parameters.
var ErrBadConfig = errors.New("propagation: invalid configuration")

// TidalTrust infers a personalised trust value from a source to a sink
// over a weighted trust network, following Golbeck's algorithm: restrict
// to shortest paths, compute the path-strength threshold (the maximum over
// shortest paths of the minimum edge weight), then average trust backward
// from the sink over edges meeting the threshold:
//
//	t(u, sink) = Σ_{v: t_uv >= max} t_uv · t(v, sink) / Σ t_uv
//
// Golbeck's evaluation showed shorter paths and higher-trust neighbours
// predict best; both principles are what the threshold encodes.
type TidalTrust struct {
	// MaxDepth caps the BFS search depth (path length). Zero or negative
	// means unlimited, which on large graphs can be slow.
	MaxDepth int
}

// Infer computes the trust value from source to sink. ok is false when no
// path within MaxDepth exists (the network cannot answer). A direct edge
// source->sink returns its weight.
func (tt TidalTrust) Infer(g *graph.Graph, source, sink int) (value float64, ok bool) {
	n := g.NumNodes()
	if source < 0 || source >= n || sink < 0 || sink >= n || source == sink {
		return 0, false
	}
	if w, direct := g.Weight(source, sink); direct {
		return w, true
	}
	maxDepth := tt.MaxDepth
	if maxDepth <= 0 {
		maxDepth = -1
	}
	depth := g.BFSDepths(source, maxDepth)
	sinkDepth := depth[sink]
	if sinkDepth < 0 {
		return 0, false
	}

	// Forward pass over shortest-path edges: strength(v) is the best
	// bottleneck weight of any shortest path source->v.
	// Process nodes in BFS depth order.
	byDepth := make([][]int, sinkDepth+1)
	for v, d := range depth {
		if d >= 0 && d <= sinkDepth {
			byDepth[d] = append(byDepth[d], v)
		}
	}
	const inf = 1e18
	strength := make([]float64, n)
	for i := range strength {
		strength[i] = -1
	}
	strength[source] = inf
	for d := 0; d < sinkDepth; d++ {
		for _, u := range byDepth[d] {
			if strength[u] < 0 {
				continue // not on a live shortest path
			}
			to, w := g.Out(u)
			for i, v := range to {
				if depth[v] != d+1 {
					continue
				}
				s := strength[u]
				if w[i] < s {
					s = w[i]
				}
				if s > strength[v] {
					strength[v] = s
				}
			}
		}
	}
	threshold := strength[sink]
	if threshold < 0 {
		return 0, false
	}

	// Backward pass: value(v) for nodes on shortest paths, from the
	// sink's predecessors up to the source. Nodes at depth sinkDepth-1
	// use their direct edge to the sink; shallower nodes average their
	// shortest-path successors over edges meeting the threshold.
	value2 := make([]float64, n)
	known := make([]bool, n)
	value2[sink] = 1
	known[sink] = true
	for d := sinkDepth - 1; d >= 0; d-- {
		for _, u := range byDepth[d] {
			if strength[u] < 0 {
				continue
			}
			var num, den float64
			to, w := g.Out(u)
			for i, v := range to {
				if int(v) == sink {
					// Direct raters of the sink contribute their own
					// edge weight with full confidence.
					num += w[i] * w[i]
					den += w[i]
					continue
				}
				if depth[v] != d+1 || !known[v] || w[i] < threshold {
					continue
				}
				num += w[i] * value2[v]
				den += w[i]
			}
			if den > 0 {
				value2[u] = num / den
				known[u] = true
			}
		}
	}
	if !known[source] {
		return 0, false
	}
	return value2[source], true
}

// InferAll runs Infer for every sink from one source, reusing the BFS
// where profitable. The result slice has one entry per node; entries for
// unreachable sinks (or the source itself) have OK=false.
type InferResult struct {
	Value float64
	OK    bool
}

// InferAll computes trust from source to every other node.
func (tt TidalTrust) InferAll(g *graph.Graph, source int) []InferResult {
	return tt.InferAllTruncated(g, source, Truncate{})
}

// InferAllTruncated is InferAll under a truncation bound: tr.MaxDepth
// tightens the shortest-path search horizon to min(MaxDepth,
// tr.MaxDepth) — every sink beyond it becomes unanswerable instead of
// paying a deep search — and tr.MassEps floors inferred values at or
// below it (an inference that weak is served as "no path"). A zero tr
// is bitwise-identical to InferAll.
func (tt TidalTrust) InferAllTruncated(g *graph.Graph, source int, tr Truncate) []InferResult {
	eff := tt
	eff.MaxDepth = tr.depthCap(tt.MaxDepth)
	out := make([]InferResult, g.NumNodes())
	for sink := 0; sink < g.NumNodes(); sink++ {
		if sink == source {
			continue
		}
		v, ok := eff.Infer(g, source, sink)
		if ok && tr.MassEps > 0 && v <= tr.MassEps {
			v, ok = 0, false
		}
		out[sink] = InferResult{Value: v, OK: ok}
	}
	return out
}

// Coverage reports the fraction of (source, sink) pairs from the given
// sources for which the network can produce an inference. It is the
// paper's sparsity complaint quantified: sparse explicit webs leave many
// pairs unanswerable.
func (tt TidalTrust) Coverage(g *graph.Graph, sources []int) float64 {
	if len(sources) == 0 || g.NumNodes() < 2 {
		return 0
	}
	answered := 0
	total := 0
	for _, s := range sources {
		if s < 0 || s >= g.NumNodes() {
			continue
		}
		maxDepth := tt.MaxDepth
		if maxDepth <= 0 {
			maxDepth = -1
		}
		depth := g.BFSDepths(s, maxDepth)
		for v, d := range depth {
			if v == s {
				continue
			}
			total++
			if d >= 0 {
				answered++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(answered) / float64(total)
}

func (tt TidalTrust) String() string { return fmt.Sprintf("TidalTrust(maxDepth=%d)", tt.MaxDepth) }
