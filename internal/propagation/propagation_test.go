package propagation

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/graph"
	"weboftrust/internal/stats"
)

func mustGraph(t *testing.T, n int, edges []graph.Edge) *graph.Graph {
	t.Helper()
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTidalTrustDirectEdge(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{From: 0, To: 1, Weight: 0.7}})
	v, ok := TidalTrust{}.Infer(g, 0, 1)
	if !ok || v != 0.7 {
		t.Errorf("direct edge: %v, %v; want 0.7, true", v, ok)
	}
}

func TestTidalTrustSingleChain(t *testing.T) {
	// 0 --0.9--> 1 --0.8--> 2: value = (0.9 * 0.8) / 0.9 = 0.8.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 1, Weight: 0.9},
		{From: 1, To: 2, Weight: 0.8},
	})
	v, ok := TidalTrust{}.Infer(g, 0, 2)
	if !ok || math.Abs(v-0.8) > 1e-12 {
		t.Errorf("chain: %v, %v; want 0.8, true", v, ok)
	}
}

func TestTidalTrustWeightedAverage(t *testing.T) {
	// Two 2-hop paths: via 1 (0.9 then 1.0) and via 2 (0.3 then 0.2).
	// Threshold = max(min(0.9,1.0), min(0.3,0.2)) = 0.9, so only the
	// strong path participates: value = 1.0.
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.9}, {From: 1, To: 3, Weight: 1.0},
		{From: 0, To: 2, Weight: 0.3}, {From: 2, To: 3, Weight: 0.2},
	})
	v, ok := TidalTrust{}.Infer(g, 0, 3)
	if !ok || math.Abs(v-1.0) > 1e-12 {
		t.Errorf("threshold filtering: %v, %v; want 1.0, true", v, ok)
	}
}

func TestTidalTrustEqualStrengthPathsAverage(t *testing.T) {
	// Both paths share bottleneck 0.5: average weighted by first-hop
	// trust. Edges: 0->1 (0.5), 1->3 (0.8); 0->2 (0.5), 2->3 (0.6).
	// value = (0.5*0.8 + 0.5*0.6) / (0.5+0.5) = 0.7.
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.5}, {From: 1, To: 3, Weight: 0.8},
		{From: 0, To: 2, Weight: 0.5}, {From: 2, To: 3, Weight: 0.6},
	})
	v, ok := TidalTrust{}.Infer(g, 0, 3)
	if !ok || math.Abs(v-0.7) > 1e-12 {
		t.Errorf("averaging: %v, %v; want 0.7, true", v, ok)
	}
}

func TestTidalTrustShortestPathOnly(t *testing.T) {
	// Direct 2-hop path plus a longer 3-hop path with huge weights: only
	// the shortest path counts.
	g := mustGraph(t, 5, []graph.Edge{
		{From: 0, To: 1, Weight: 0.4}, {From: 1, To: 4, Weight: 0.4},
		{From: 0, To: 2, Weight: 1}, {From: 2, To: 3, Weight: 1}, {From: 3, To: 4, Weight: 1},
	})
	v, ok := TidalTrust{}.Infer(g, 0, 4)
	if !ok || math.Abs(v-0.4) > 1e-12 {
		t.Errorf("shortest-path restriction: %v, %v; want 0.4", v, ok)
	}
}

func TestTidalTrustNoPath(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{From: 1, To: 2, Weight: 1}})
	if _, ok := (TidalTrust{}).Infer(g, 0, 2); ok {
		t.Error("unreachable sink should not infer")
	}
	if _, ok := (TidalTrust{}).Infer(g, 0, 0); ok {
		t.Error("self-inference should be rejected")
	}
	if _, ok := (TidalTrust{}).Infer(g, -1, 2); ok {
		t.Error("invalid source should be rejected")
	}
}

func TestTidalTrustMaxDepth(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 3, Weight: 1},
	})
	if _, ok := (TidalTrust{MaxDepth: 2}).Infer(g, 0, 3); ok {
		t.Error("depth-3 sink should be out of reach at MaxDepth=2")
	}
	if v, ok := (TidalTrust{MaxDepth: 3}).Infer(g, 0, 3); !ok || v != 1 {
		t.Errorf("depth-3 sink at MaxDepth=3: %v, %v", v, ok)
	}
}

func TestTidalTrustInferAllAndCoverage(t *testing.T) {
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.9}, {From: 1, To: 2, Weight: 0.8},
	})
	res := TidalTrust{}.InferAll(g, 0)
	if !res[1].OK || !res[2].OK || res[3].OK || res[0].OK {
		t.Errorf("InferAll OK flags wrong: %+v", res)
	}
	cov := TidalTrust{}.Coverage(g, []int{0})
	if math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Errorf("coverage = %v, want 2/3", cov)
	}
	if (TidalTrust{}).Coverage(g, nil) != 0 {
		t.Error("empty sources coverage should be 0")
	}
	_ = TidalTrust{MaxDepth: 3}.String()
}

func TestEigenTrustUniformOnSymmetric(t *testing.T) {
	// A symmetric cycle should rank everyone equally.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 1},
	})
	ranks, err := DefaultEigenTrust().Ranks(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranks {
		if math.Abs(r-1.0/3.0) > 1e-6 {
			t.Errorf("rank[%d] = %v, want 1/3", i, r)
		}
	}
}

func TestEigenTrustFavorsTrusted(t *testing.T) {
	// Everyone trusts node 2; node 2 trusts node 0 weakly.
	g := mustGraph(t, 3, []graph.Edge{
		{From: 0, To: 2, Weight: 1}, {From: 1, To: 2, Weight: 1}, {From: 2, To: 0, Weight: 0.2},
	})
	ranks, err := DefaultEigenTrust().Ranks(g)
	if err != nil {
		t.Fatal(err)
	}
	if !(ranks[2] > ranks[0] && ranks[2] > ranks[1]) {
		t.Errorf("node 2 should rank highest: %v", ranks)
	}
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Errorf("negative rank: %v", ranks)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
}

func TestEigenTrustBadConfig(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	for _, et := range []EigenTrust{
		{Alpha: 0, MaxIter: 10, Tol: 1e-9},
		{Alpha: 1, MaxIter: 10, Tol: 1e-9},
		{Alpha: 0.15, MaxIter: 0, Tol: 1e-9},
		{Alpha: 0.15, MaxIter: 10, Tol: 0},
	} {
		if _, err := et.Ranks(g); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%+v: error = %v, want ErrBadConfig", et, err)
		}
	}
	empty := mustGraph(t, 0, nil)
	ranks, err := DefaultEigenTrust().Ranks(empty)
	if err != nil || ranks != nil {
		t.Errorf("empty graph: %v, %v", ranks, err)
	}
}

func TestAppleseedBasic(t *testing.T) {
	// Source trusts 1 strongly and 2 weakly; 1 trusts 3.
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.9}, {From: 0, To: 2, Weight: 0.1},
		{From: 1, To: 3, Weight: 1.0},
	})
	ranks, err := DefaultAppleseed().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[0] != 0 {
		t.Errorf("source should not rank itself: %v", ranks[0])
	}
	if !(ranks[1] > ranks[2]) {
		t.Errorf("strongly trusted neighbour should outrank weak one: %v", ranks)
	}
	if ranks[3] <= 0 {
		t.Errorf("2-hop node should receive energy: %v", ranks)
	}
	if !(ranks[1] > ranks[3]) {
		t.Errorf("closer node should outrank farther: %v", ranks)
	}
}

func TestAppleseedUnreachable(t *testing.T) {
	g := mustGraph(t, 3, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	ranks, err := DefaultAppleseed().Rank(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[2] != 0 {
		t.Errorf("unreachable node got energy: %v", ranks)
	}
}

func TestAppleseedBadConfig(t *testing.T) {
	g := mustGraph(t, 2, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	for _, as := range []Appleseed{
		{Injection: 0, Spreading: 0.85, Tol: 0.01, MaxIter: 10},
		{Injection: 200, Spreading: 0, Tol: 0.01, MaxIter: 10},
		{Injection: 200, Spreading: 1, Tol: 0.01, MaxIter: 10},
		{Injection: 200, Spreading: 0.85, Tol: 0, MaxIter: 10},
		{Injection: 200, Spreading: 0.85, Tol: 0.01, MaxIter: 0},
	} {
		if _, err := as.Rank(g, 0); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%+v: error = %v, want ErrBadConfig", as, err)
		}
	}
	if _, err := DefaultAppleseed().Rank(g, 9); !errors.Is(err, ErrBadConfig) {
		t.Error("out-of-range source accepted")
	}
}

func TestTopRankedAndL1(t *testing.T) {
	ranks := []float64{0, 5, 3, 0, 7}
	top := TopRanked(ranks, 2)
	if len(top) != 2 || top[0] != 4 || top[1] != 1 {
		t.Errorf("TopRanked = %v, want [4 1]", top)
	}
	all := TopRanked(ranks, 10)
	if len(all) != 3 {
		t.Errorf("TopRanked should exclude zeros: %v", all)
	}
	if d := L1Distance([]float64{1, 2}, []float64{2, 0}); d != 3 {
		t.Errorf("L1 = %v, want 3", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("L1Distance length mismatch should panic")
		}
	}()
	L1Distance([]float64{1}, []float64{1, 2})
}

// Property: TidalTrust values stay within [0, 1] when edge weights do, and
// a direct edge always short-circuits.
func TestTidalTrustRangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 3 + rng.IntN(12)
		// Deduplicate pairs: graph.New accumulates duplicate edge weights,
		// which would push weights above 1 and void the [0,1] invariant.
		seen := make(map[[2]int]bool)
		var edges []graph.Edge
		for k := 0; k < rng.IntN(4*n); k++ {
			from, to := rng.IntN(n), rng.IntN(n)
			if from != to && !seen[[2]int{from, to}] {
				seen[[2]int{from, to}] = true
				edges = append(edges, graph.Edge{From: from, To: to, Weight: 0.2 + 0.8*rng.Float64()})
			}
		}
		g, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		tt := TidalTrust{MaxDepth: 6}
		for trial := 0; trial < 10; trial++ {
			s, k := rng.IntN(n), rng.IntN(n)
			v, ok := tt.Infer(g, s, k)
			if !ok {
				continue
			}
			if v < 0 || v > 1+1e-9 {
				return false
			}
			if w, direct := g.Weight(s, k); direct && v != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: EigenTrust outputs a probability vector.
func TestEigenTrustStochasticQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 1 + rng.IntN(15)
		var edges []graph.Edge
		for k := 0; k < rng.IntN(3*n); k++ {
			edges = append(edges, graph.Edge{From: rng.IntN(n), To: rng.IntN(n), Weight: rng.Float64()})
		}
		g, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		ranks, err := DefaultEigenTrust().Ranks(g)
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range ranks {
			if r < 0 || math.IsNaN(r) {
				return false
			}
			sum += r
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: total Appleseed trust is bounded by the injected energy.
func TestAppleseedEnergyBoundQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(12)
		var edges []graph.Edge
		for k := 0; k < rng.IntN(3*n); k++ {
			from, to := rng.IntN(n), rng.IntN(n)
			edges = append(edges, graph.Edge{From: from, To: to, Weight: 0.1 + 0.9*rng.Float64()})
		}
		g, err := graph.New(n, edges)
		if err != nil {
			return false
		}
		as := DefaultAppleseed()
		ranks, err := as.Rank(g, 0)
		if err != nil {
			return false
		}
		var total float64
		for _, r := range ranks {
			if r < 0 {
				return false
			}
			total += r
		}
		return total <= as.Injection+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
