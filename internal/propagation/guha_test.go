package propagation

import (
	"errors"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/stats"
)

func trustCSR(n int, edges [][3]float64) *mat.CSR {
	b := mat.NewBuilder(n, n)
	for _, e := range edges {
		b.Set(int(e[0]), int(e[1]), e[2])
	}
	return b.Build()
}

func TestGuhaDirectPropagation(t *testing.T) {
	// 0 trusts 1, 1 trusts 2: direct propagation must create belief
	// 0 -> 2 even though no base edge exists.
	base := trustCSR(3, [][3]float64{{0, 1, 1}, {1, 2, 1}})
	g := Guha{Alpha: [4]float64{1, 0, 0, 0}, Steps: 1, Gamma: 0.5}
	out, err := g.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 2) <= 0 {
		t.Errorf("0->2 belief = %v, want positive (direct propagation)", out.At(0, 2))
	}
	// Base edges survive with weight 1.
	if out.At(0, 1) < 1 {
		t.Errorf("base edge lost: %v", out.At(0, 1))
	}
}

func TestGuhaCoCitation(t *testing.T) {
	// i=0 and l=1 both trust j=2; l also trusts k=3. Co-citation should
	// give 0 some belief in 3.
	base := trustCSR(4, [][3]float64{{0, 2, 1}, {1, 2, 1}, {1, 3, 1}})
	g := Guha{Alpha: [4]float64{0, 1, 0, 0}, Steps: 1, Gamma: 1}
	out, err := g.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 3) <= 0 {
		t.Errorf("0->3 belief = %v, want positive (co-citation)", out.At(0, 3))
	}
}

func TestGuhaTranspose(t *testing.T) {
	base := trustCSR(2, [][3]float64{{0, 1, 1}})
	g := Guha{Alpha: [4]float64{0, 0, 1, 0}, Steps: 1, Gamma: 1}
	out, err := g.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1, 0) <= 0 {
		t.Errorf("1->0 belief = %v, want positive (transpose trust)", out.At(1, 0))
	}
}

func TestGuhaCoupling(t *testing.T) {
	// 0 and 1 trust the same person 2; 1 trusts 3. Coupling: 0 adopts
	// 1's trust of 3 via B·Bᵀ·T.
	base := trustCSR(4, [][3]float64{{0, 2, 1}, {1, 2, 1}, {1, 3, 1}})
	g := Guha{Alpha: [4]float64{0, 0, 0, 1}, Steps: 1, Gamma: 1}
	out, err := g.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 3) <= 0 {
		t.Errorf("0->3 belief = %v, want positive (coupling)", out.At(0, 3))
	}
}

func TestGuhaDensifies(t *testing.T) {
	// A sparse chain should gain many edges after propagation — the
	// sparsity-reduction claim the paper cites Guha et al. for.
	edges := make([][3]float64, 0, 9)
	for i := 0; i < 9; i++ {
		edges = append(edges, [3]float64{float64(i), float64(i + 1), 1})
	}
	base := trustCSR(10, edges)
	out, err := DefaultGuha().Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() <= base.NNZ() {
		t.Errorf("propagation did not densify: %d -> %d", base.NNZ(), out.NNZ())
	}
}

func TestGuhaPruning(t *testing.T) {
	// Dense-ish base with aggressive pruning: every row of the result
	// respects the cap.
	rng := stats.NewRand(9)
	b := mat.NewBuilder(12, 12)
	for k := 0; k < 60; k++ {
		i, j := rng.IntN(12), rng.IntN(12)
		if i != j {
			b.Set(i, j, rng.Float64())
		}
	}
	base := b.Build()
	g := DefaultGuha()
	g.PruneTopK = 4
	out, err := g.Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if out.RowNNZ(i) > 4 {
			t.Errorf("row %d has %d entries, cap 4", i, out.RowNNZ(i))
		}
	}
}

func TestGuhaBadConfig(t *testing.T) {
	base := trustCSR(2, [][3]float64{{0, 1, 1}})
	for i, g := range []Guha{
		{Alpha: [4]float64{0, 0, 0, 0}, Steps: 1, Gamma: 0.5},
		{Alpha: [4]float64{-1, 1, 0, 0}, Steps: 1, Gamma: 0.5},
		{Alpha: [4]float64{1, 0, 0, 0}, Steps: 0, Gamma: 0.5},
		{Alpha: [4]float64{1, 0, 0, 0}, Steps: 1, Gamma: 0},
		{Alpha: [4]float64{1, 0, 0, 0}, Steps: 1, Gamma: 1.5},
	} {
		if _, err := g.Propagate(base); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: error = %v, want ErrBadConfig", i, err)
		}
	}
	rect := mat.NewBuilder(2, 3).Build()
	if _, err := DefaultGuha().Propagate(rect); !errors.Is(err, ErrBadConfig) {
		t.Error("non-square matrix accepted")
	}
}

func TestGuhaEmptyBase(t *testing.T) {
	base := mat.NewBuilder(5, 5).Build()
	out, err := DefaultGuha().Propagate(base)
	if err != nil {
		t.Fatal(err)
	}
	if out.NNZ() != 0 {
		t.Errorf("empty base produced %d edges", out.NNZ())
	}
}

// Property: propagated beliefs are non-negative and include the base
// support (every base edge keeps positive belief).
func TestGuhaInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(10)
		b := mat.NewBuilder(n, n)
		for k := 0; k < rng.IntN(3*n); k++ {
			i, j := rng.IntN(n), rng.IntN(n)
			if i != j {
				b.Set(i, j, 0.2+0.8*rng.Float64())
			}
		}
		base := b.Build()
		g := DefaultGuha()
		g.Steps = 2
		g.PruneTopK = 0 // unpruned so base support is provably retained
		out, err := g.Propagate(base)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			cols, vals := out.Row(i)
			for k := range cols {
				if vals[k] < 0 {
					return false
				}
			}
			bCols, _ := base.Row(i)
			for _, c := range bCols {
				if out.At(i, int(c)) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGuhaPropagate(b *testing.B) {
	rng := stats.NewRand(4)
	bb := mat.NewBuilder(300, 300)
	for k := 0; k < 1500; k++ {
		i, j := rng.IntN(300), rng.IntN(300)
		if i != j {
			bb.Set(i, j, rng.Float64())
		}
	}
	base := bb.Build()
	g := DefaultGuha()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Propagate(base); err != nil {
			b.Fatal(err)
		}
	}
}
