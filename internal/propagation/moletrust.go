package propagation

import (
	"fmt"

	"weboftrust/internal/graph"
)

// MoleTrust implements Massa and Avesani's local trust metric, the other
// canonical propagation algorithm of the trust-aware recommender
// literature the paper builds toward. The graph is DAG-ified by BFS
// distance from the source (only depth d-1 → d edges propagate, removing
// cycles), and each node's predicted trust is the trust-weighted average
// of its accepted predecessors:
//
//	trust(v) = Σ_{u: trust(u) >= Threshold} trust(u)·w(u,v) / Σ trust(u)
//
// Nodes farther than MaxDepth (the "trust horizon") are not evaluated.
type MoleTrust struct {
	// MaxDepth is the trust horizon; must be >= 1.
	MaxDepth int
	// Threshold is the minimum trust a node needs to propagate onwards,
	// in [0, 1]. Massa & Avesani use 0.6 on a [0,1] scale.
	Threshold float64
}

// DefaultMoleTrust returns the conventional parameterisation.
func DefaultMoleTrust() MoleTrust {
	return MoleTrust{MaxDepth: 3, Threshold: 0.6}
}

// Rank computes predicted trust from the source's viewpoint for every
// node within the horizon. The source's own entry is 1 (it trusts itself
// fully); unreachable or beyond-horizon nodes are 0.
func (mt MoleTrust) Rank(g *graph.Graph, source int) ([]float64, error) {
	return mt.RankTruncated(g, source, Truncate{})
}

// RankTruncated is Rank under a truncation bound: tr.MaxDepth tightens
// the trust horizon to min(MaxDepth, tr.MaxDepth) — MoleTrust's native
// cost knob, so the depth cap is the real traversal saving — and
// tr.MassEps floors predicted values at or below it to zero (values
// under the propagation Threshold never spread anyway, so the floor
// only trims the served tail). A zero tr is bitwise-identical to Rank.
func (mt MoleTrust) RankTruncated(g *graph.Graph, source int, tr Truncate) ([]float64, error) {
	if mt.MaxDepth < 1 {
		return nil, fmt.Errorf("%w: MaxDepth %d < 1", ErrBadConfig, mt.MaxDepth)
	}
	if mt.Threshold < 0 || mt.Threshold > 1 {
		return nil, fmt.Errorf("%w: Threshold %v outside [0,1]", ErrBadConfig, mt.Threshold)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if source < 0 || source >= n {
		return nil, fmt.Errorf("%w: source %d out of range %d", ErrBadConfig, source, n)
	}
	maxDepth := tr.depthCap(mt.MaxDepth)
	depth := g.BFSDepths(source, maxDepth)
	byDepth := make([][]int, maxDepth+1)
	for v, d := range depth {
		if d >= 0 && d <= maxDepth {
			byDepth[d] = append(byDepth[d], v)
		}
	}
	trust := make([]float64, n)
	trust[source] = 1
	for d := 1; d <= maxDepth; d++ {
		for _, v := range byDepth[d] {
			from, w := g.In(v)
			var num, den float64
			for k, u := range from {
				if depth[u] != d-1 {
					continue // distance DAG: only previous-ring edges
				}
				tu := trust[u]
				if tu < mt.Threshold {
					continue
				}
				num += tu * w[k]
				den += tu
			}
			if den > 0 {
				trust[v] = num / den
			}
		}
	}
	if tr.MassEps > 0 {
		save := trust[source]
		floorInPlace(trust, tr.MassEps)
		trust[source] = save
	}
	return trust, nil
}

// Coverage reports the fraction of (source, sink) pairs for which
// MoleTrust produces a positive prediction, over the sampled sources.
func (mt MoleTrust) Coverage(g *graph.Graph, sources []int) (float64, error) {
	if len(sources) == 0 || g.NumNodes() < 2 {
		return 0, nil
	}
	answered, total := 0, 0
	for _, s := range sources {
		if s < 0 || s >= g.NumNodes() {
			continue
		}
		ranks, err := mt.Rank(g, s)
		if err != nil {
			return 0, err
		}
		for v, r := range ranks {
			if v == s {
				continue
			}
			total++
			if r > 0 {
				answered++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(answered) / float64(total), nil
}

func (mt MoleTrust) String() string {
	return fmt.Sprintf("MoleTrust(maxDepth=%d, threshold=%.2f)", mt.MaxDepth, mt.Threshold)
}
