package propagation

import (
	"fmt"
	"math"

	"weboftrust/internal/graph"
)

// EigenTrust computes the global trust ranking of Kamvar, Schlosser and
// Garcia-Molina (the paper's reference [8]): the principal eigenvector of
// the row-normalised local trust matrix, with uniform-prior damping for
// convergence on graphs with dangling nodes:
//
//	t_{k+1} = (1 − alpha) · Cᵀ t_k + alpha · p
//
// where C is the row-normalised trust matrix and p the uniform prior.
// The output is a probability vector: global trust scores summing to 1.
type EigenTrust struct {
	// Alpha is the damping weight on the uniform prior, in (0, 1).
	Alpha float64
	// MaxIter caps power iterations; Tol is the L1 convergence threshold.
	MaxIter int
	Tol     float64
}

// DefaultEigenTrust returns the conventional parameterisation.
func DefaultEigenTrust() EigenTrust {
	return EigenTrust{Alpha: 0.15, MaxIter: 100, Tol: 1e-10}
}

// Ranks computes the global trust vector. It returns an error for invalid
// parameters; an empty graph yields an empty vector.
func (et EigenTrust) Ranks(g *graph.Graph) ([]float64, error) {
	t, _, err := et.RanksFrom(g, nil)
	return t, err
}

// RanksFrom computes the global trust vector warm-started from prev, a
// rank vector for an earlier revision of the graph. New nodes (indices
// past len(prev)) start at the uniform prior and the vector is
// renormalised before iterating, so a converged prev over a slightly
// changed graph re-converges in a handful of iterations where a cold
// start needs dozens. A nil prev is a cold start and reproduces Ranks
// bit for bit. It also reports the number of power iterations executed.
func (et EigenTrust) RanksFrom(g *graph.Graph, prev []float64) ([]float64, int, error) {
	return et.RanksFromScratch(g, prev, nil)
}

// RankScratch carries the power-iteration buffers for repeated solves, in
// the same spirit as core's RankRowScratch: pass the same scratch to
// consecutive calls to avoid per-call allocation. The zero value is ready
// to use; buffers grow on demand.
type RankScratch struct {
	outSum, vec, next []float64
}

// RanksFromScratch is RanksFrom with caller-owned buffers. The returned
// vector aliases the scratch, so callers that retain it across calls must
// copy it out (or pass a nil scratch, which allocates fresh buffers).
func (et EigenTrust) RanksFromScratch(g *graph.Graph, prev []float64, s *RankScratch) ([]float64, int, error) {
	if et.Alpha <= 0 || et.Alpha >= 1 {
		return nil, 0, fmt.Errorf("%w: alpha %v outside (0,1)", ErrBadConfig, et.Alpha)
	}
	if et.MaxIter < 1 || !(et.Tol > 0) {
		return nil, 0, fmt.Errorf("%w: MaxIter %d / Tol %v", ErrBadConfig, et.MaxIter, et.Tol)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, 0, nil
	}
	if len(prev) > n {
		return nil, 0, fmt.Errorf("%w: warm-start vector has %d entries for %d nodes", ErrBadConfig, len(prev), n)
	}
	if s == nil {
		s = &RankScratch{}
	}
	// Precompute out-weight sums for row normalisation; dangling nodes
	// (no outgoing trust) redistribute to the uniform prior.
	outSum := growFloats(&s.outSum, n)
	for v := 0; v < n; v++ {
		outSum[v] = g.OutWeightSum(v)
	}
	t := growFloats(&s.vec, n)
	next := growFloats(&s.next, n)
	uniform := 1 / float64(n)
	if len(prev) == 0 {
		for i := range t {
			t[i] = uniform
		}
	} else {
		copy(t, prev)
		var sum float64
		for i := len(prev); i < n; i++ {
			t[i] = uniform
		}
		for _, x := range t {
			sum += x
		}
		if sum > 0 {
			inv := 1 / sum
			for i := range t {
				t[i] *= inv
			}
		} else {
			for i := range t {
				t[i] = uniform
			}
		}
	}
	iters := 0
	for iter := 0; iter < et.MaxIter; iter++ {
		iters = iter + 1
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if outSum[v] <= 0 {
				dangling += t[v]
				continue
			}
			share := t[v] / outSum[v]
			to, w := g.Out(v)
			for i, u := range to {
				next[u] += (1 - et.Alpha) * share * w[i]
			}
		}
		base := et.Alpha*uniform + (1-et.Alpha)*dangling*uniform
		var delta float64
		for i := range next {
			next[i] += base
			delta += math.Abs(next[i] - t[i])
		}
		t, next = next, t
		if delta < et.Tol {
			break
		}
	}
	s.vec, s.next = t, next
	return t, iters, nil
}

// growFloats resizes *buf to exactly n entries, reallocating only when
// capacity is short, and returns the resized slice.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
