package propagation

import (
	"fmt"
	"math"

	"weboftrust/internal/graph"
)

// EigenTrust computes the global trust ranking of Kamvar, Schlosser and
// Garcia-Molina (the paper's reference [8]): the principal eigenvector of
// the row-normalised local trust matrix, with uniform-prior damping for
// convergence on graphs with dangling nodes:
//
//	t_{k+1} = (1 − alpha) · Cᵀ t_k + alpha · p
//
// where C is the row-normalised trust matrix and p the uniform prior.
// The output is a probability vector: global trust scores summing to 1.
type EigenTrust struct {
	// Alpha is the damping weight on the uniform prior, in (0, 1).
	Alpha float64
	// MaxIter caps power iterations; Tol is the L1 convergence threshold.
	MaxIter int
	Tol     float64
}

// DefaultEigenTrust returns the conventional parameterisation.
func DefaultEigenTrust() EigenTrust {
	return EigenTrust{Alpha: 0.15, MaxIter: 100, Tol: 1e-10}
}

// Ranks computes the global trust vector. It returns an error for invalid
// parameters; an empty graph yields an empty vector.
func (et EigenTrust) Ranks(g *graph.Graph) ([]float64, error) {
	if et.Alpha <= 0 || et.Alpha >= 1 {
		return nil, fmt.Errorf("%w: alpha %v outside (0,1)", ErrBadConfig, et.Alpha)
	}
	if et.MaxIter < 1 || !(et.Tol > 0) {
		return nil, fmt.Errorf("%w: MaxIter %d / Tol %v", ErrBadConfig, et.MaxIter, et.Tol)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	// Precompute out-weight sums for row normalisation; dangling nodes
	// (no outgoing trust) redistribute to the uniform prior.
	outSum := make([]float64, n)
	for v := 0; v < n; v++ {
		outSum[v] = g.OutWeightSum(v)
	}
	t := make([]float64, n)
	next := make([]float64, n)
	uniform := 1 / float64(n)
	for i := range t {
		t[i] = uniform
	}
	for iter := 0; iter < et.MaxIter; iter++ {
		var dangling float64
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			if outSum[v] <= 0 {
				dangling += t[v]
				continue
			}
			share := t[v] / outSum[v]
			to, w := g.Out(v)
			for i, u := range to {
				next[u] += (1 - et.Alpha) * share * w[i]
			}
		}
		base := et.Alpha*uniform + (1-et.Alpha)*dangling*uniform
		var delta float64
		for i := range next {
			next[i] += base
			delta += math.Abs(next[i] - t[i])
		}
		t, next = next, t
		if delta < et.Tol {
			break
		}
	}
	return t, nil
}
