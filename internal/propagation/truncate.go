package propagation

import "fmt"

// Truncate bounds a propagation traversal: MaxDepth confines it to the
// BFS depth-ball around the source (0 = unbounded) and MassEps drops
// walk tails whose carried trust mass has decayed to MassEps or below
// (0 = keep everything). Richters & Peixoto's percolation analysis is
// the license for both: trust transitivity decays multiplicatively
// along a chain, so mass that has decayed below a threshold — or that
// must travel beyond a depth horizon to arrive — cannot move a ranking,
// and a traversal that never generates it trades a small, test-pinned
// score error for a proportionally smaller walk. The zero value
// disables truncation entirely, and every algorithm's truncated
// entry point takes the bitwise-identical code path in that case.
type Truncate struct {
	// MaxDepth confines the walk to nodes within this BFS depth of the
	// source. 0 (or negative) means unbounded.
	MaxDepth int
	// MassEps drops trust parcels at or below this mass: Appleseed stops
	// spreading energy parcels that have decayed to MassEps, MoleTrust
	// and TidalTrust floor predicted values at or below it to zero. 0
	// disables the bound. Must not be negative or NaN.
	MassEps float64
}

// Enabled reports whether the truncation bounds anything.
func (tr Truncate) Enabled() bool { return tr.MaxDepth > 0 || tr.MassEps > 0 }

// Validate rejects a malformed truncation.
func (tr Truncate) Validate() error {
	if tr.MassEps != tr.MassEps || tr.MassEps < 0 {
		return fmt.Errorf("%w: mass eps %v", ErrBadConfig, tr.MassEps)
	}
	return nil
}

// depthCap returns the effective horizon when an algorithm with its own
// depth bound base (<= 0 = unbounded) composes with the truncation: the
// tighter of the two.
func (tr Truncate) depthCap(base int) int {
	if tr.MaxDepth <= 0 {
		return base
	}
	if base <= 0 || tr.MaxDepth < base {
		return tr.MaxDepth
	}
	return base
}

// floorInPlace zeroes entries at or below eps — the shared mass floor of
// the [0,1]-scaled algorithms. eps <= 0 leaves vec untouched.
func floorInPlace(vec []float64, eps float64) {
	if eps <= 0 {
		return
	}
	for i, v := range vec {
		if v <= eps {
			vec[i] = 0
		}
	}
}
