package propagation

import (
	"errors"
	"math"
	"testing"

	"weboftrust/internal/graph"
)

// truncGraph builds a deterministic ~3-out-degree digraph large enough
// for multi-hop walks to carry mass past any small depth horizon.
func truncGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, 3*n)
	for u := 0; u < n; u++ {
		for j := 1; j <= 3; j++ {
			v := (u*7 + j*j + 1) % n
			if v == u {
				continue
			}
			w := 0.2 + float64((u+5*j)%8)/10
			edges = append(edges, graph.Edge{From: u, To: v, Weight: w})
		}
	}
	g, err := graph.New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTruncateValidate(t *testing.T) {
	for _, tr := range []Truncate{{}, {MaxDepth: 3}, {MassEps: 0.01}, {MaxDepth: 1, MassEps: 1}} {
		if err := tr.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", tr, err)
		}
	}
	for _, tr := range []Truncate{{MassEps: -0.1}, {MassEps: math.NaN()}} {
		if err := tr.Validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("Validate(%+v) = %v, want ErrBadConfig", tr, err)
		}
	}
}

func TestTruncateDepthCap(t *testing.T) {
	cases := []struct {
		trDepth, base, want int
	}{
		{0, 0, 0},  // both unbounded
		{0, 4, 4},  // truncation unbounded: algorithm's own bound wins
		{3, 0, 3},  // algorithm unbounded: truncation wins
		{3, 5, 3},  // tighter truncation wins
		{5, 3, 3},  // tighter native bound wins
		{-1, 4, 4}, // negative = unbounded
	}
	for _, c := range cases {
		if got := (Truncate{MaxDepth: c.trDepth}).depthCap(c.base); got != c.want {
			t.Errorf("Truncate{MaxDepth:%d}.depthCap(%d) = %d, want %d", c.trDepth, c.base, got, c.want)
		}
	}
}

// TestZeroTruncateBitwise pins the contract that the zero Truncate takes
// the bitwise-identical code path: every algorithm's truncated entry
// point with Truncate{} returns exactly what the plain entry point does.
func TestZeroTruncateBitwise(t *testing.T) {
	g := truncGraph(t, 40)
	as, mt, tt := DefaultAppleseed(), DefaultMoleTrust(), TidalTrust{MaxDepth: 4}
	for src := 0; src < 40; src += 7 {
		plain, err := as.Rank(g, src)
		if err != nil {
			t.Fatal(err)
		}
		trunc, err := as.RankTruncated(g, src, Truncate{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != trunc[i] {
				t.Fatalf("appleseed(%d)[%d]: %v != %v with zero Truncate", src, i, plain[i], trunc[i])
			}
		}
		plain, err = mt.Rank(g, src)
		if err != nil {
			t.Fatal(err)
		}
		trunc, err = mt.RankTruncated(g, src, Truncate{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != trunc[i] {
				t.Fatalf("moletrust(%d)[%d]: %v != %v with zero Truncate", src, i, plain[i], trunc[i])
			}
		}
		pr := tt.InferAll(g, src)
		tr := tt.InferAllTruncated(g, src, Truncate{})
		for i := range pr {
			if pr[i] != tr[i] {
				t.Fatalf("tidaltrust(%d)[%d]: %+v != %+v with zero Truncate", src, i, pr[i], tr[i])
			}
		}
	}
}

// TestTruncateDepthConfinesWalk pins the depth bound: with MaxDepth d,
// no node beyond BFS depth d of the source scores nonzero, under any of
// the three algorithms.
func TestTruncateDepthConfinesWalk(t *testing.T) {
	g := truncGraph(t, 40)
	const d = 2
	tr := Truncate{MaxDepth: d}
	depth := g.BFSDepths(3, -1)
	check := func(algo string, vec []float64) {
		t.Helper()
		for v, s := range vec {
			if s != 0 && v != 3 && (depth[v] < 0 || depth[v] > d) {
				t.Errorf("%s: node %v at depth %d scored %v beyond horizon %d", algo, v, depth[v], s, d)
			}
		}
	}
	asv, err := DefaultAppleseed().RankTruncated(g, 3, tr)
	if err != nil {
		t.Fatal(err)
	}
	check("appleseed", asv)
	mtv, err := (MoleTrust{MaxDepth: 10, Threshold: 0.1}).RankTruncated(g, 3, tr)
	if err != nil {
		t.Fatal(err)
	}
	check("moletrust", mtv)
	ttv := (TidalTrust{}).InferAllTruncated(g, 3, tr)
	for v, r := range ttv {
		if r.OK && v != 3 && (depth[v] < 0 || depth[v] > d) {
			t.Errorf("tidaltrust: node %v at depth %d answered %v beyond horizon %d", v, depth[v], r.Value, d)
		}
	}
}

// TestTruncateMassEpsFloors pins the mass bound: no served score lands
// in (0, eps] — tails at or below the floor are exactly zero — and the
// source keeps its self-trust entry where the algorithm defines one.
func TestTruncateMassEpsFloors(t *testing.T) {
	g := truncGraph(t, 40)
	const eps = 0.05
	tr := Truncate{MassEps: eps}
	mtv, err := DefaultMoleTrust().RankTruncated(g, 3, tr)
	if err != nil {
		t.Fatal(err)
	}
	if mtv[3] != 1 {
		t.Errorf("moletrust floored the source's self-trust: %v", mtv[3])
	}
	for v, s := range mtv {
		if v != 3 && s > 0 && s <= eps {
			t.Errorf("moletrust[%d] = %v inside (0, %v]", v, s, eps)
		}
	}
	ttv := (TidalTrust{MaxDepth: 4}).InferAllTruncated(g, 3, tr)
	for v, r := range ttv {
		if r.OK && r.Value <= eps {
			t.Errorf("tidaltrust[%d] = %v OK inside (0, %v]", v, r.Value, eps)
		}
		if !r.OK && r.Value != 0 {
			t.Errorf("tidaltrust[%d] floored to not-OK but kept value %v", v, r.Value)
		}
	}
	// Appleseed's eps drops parcels, not output scores, so just pin that
	// the truncated walk deposits no more total energy than the exact one
	// and stays nonnegative.
	asv, err := DefaultAppleseed().RankTruncated(g, 3, Truncate{MassEps: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := DefaultAppleseed().Rank(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sumT, sumE float64
	for v := range asv {
		if asv[v] < 0 {
			t.Fatalf("appleseed[%d] = %v negative under truncation", v, asv[v])
		}
		sumT += asv[v]
		sumE += exact[v]
	}
	if sumT > sumE+1e-9 {
		t.Errorf("appleseed truncated deposited %v energy, exact %v — truncation created mass", sumT, sumE)
	}
}

func TestSelectLandmarks(t *testing.T) {
	rank := []float64{0.1, 0.5, 0, 0.5, 0.9, 0.05}
	got := SelectLandmarks(rank, 4)
	want := []int32{4, 1, 3, 0} // score desc, id asc on the 0.5 tie
	if len(got) != len(want) {
		t.Fatalf("SelectLandmarks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SelectLandmarks = %v, want %v", got, want)
		}
	}
	// Zero-rank nodes are never selected even when l exceeds the supply.
	if got := SelectLandmarks(rank, 10); len(got) != 5 {
		t.Errorf("SelectLandmarks over-asked = %v, want the 5 nonzero-rank nodes", got)
	}
	if got := SelectLandmarks(rank, 0); got != nil {
		t.Errorf("SelectLandmarks(_, 0) = %v, want nil", got)
	}
}

// TestSketchComposeBasics pins the composition contract on a graph small
// enough to reason about: the direct frontier appears, a landmark's
// vector is gated by the source's best path into it, and the source
// never ranks itself.
func TestSketchComposeBasics(t *testing.T) {
	// 0 -> 1 (0.8), 1 -> 2 (0.5), 2 -> 3 (0.9). Landmark: node 1.
	g := mustGraph(t, 4, []graph.Edge{
		{From: 0, To: 1, Weight: 0.8},
		{From: 1, To: 2, Weight: 0.5},
		{From: 2, To: 3, Weight: 0.9},
	})
	lvec, err := DefaultMoleTrust().Rank(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	lvec[1] = 0
	sk := Sketch{IDs: []int32{1}, Vecs: [][]float64{lvec}}
	dst := make([]float64, 4)
	if err := sk.Compose(g, 0, UnitFrontier, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 {
		t.Errorf("compose ranked the source itself: %v", dst[0])
	}
	if dst[1] != 0.8 {
		t.Errorf("direct frontier dst[1] = %v, want 0.8", dst[1])
	}
	// Node 2 is visible only through the landmark: gate (direct edge 0.8)
	// times the landmark's trust in 2.
	if want := 0.8 * lvec[2]; math.Abs(dst[2]-want) > 1e-12 {
		t.Errorf("through-landmark dst[2] = %v, want %v", dst[2], want)
	}
	// A landmark the source cannot reach within 2 hops contributes nothing.
	sk2 := Sketch{IDs: []int32{3}, Vecs: [][]float64{{0.1, 0.2, 0.3, 0}}}
	dst2 := make([]float64, 4)
	if err := sk2.Compose(g, 0, UnitFrontier, dst2); err != nil {
		t.Fatal(err)
	}
	for v := 2; v < 4; v++ {
		if dst2[v] != 0 {
			t.Errorf("unreachable landmark leaked mass: dst[%d] = %v", v, dst2[v])
		}
	}
	if err := sk.Compose(g, 0, UnitFrontier, make([]float64, 3)); err == nil {
		t.Error("short dst accepted")
	}
	if err := sk.Compose(g, 9, UnitFrontier, dst); err == nil {
		t.Error("out-of-range source accepted")
	}
}
