package propagation

import (
	"fmt"
	"sort"

	"weboftrust/internal/graph"
)

// Landmark sketches approximate personalised propagation without a
// per-source traversal. Pavlovic's hub observation is the license: a
// few globally-trusted nodes carry most propagation mass, so keeping
// the full propagation vector of L such hubs lets any source's view be
// assembled as "what I see directly, plus what my best paths into each
// hub let me see through it" — a triangle-inequality-style composition
// that costs O(L·n) instead of a traversal.

// Sketch holds the full propagation vectors of the selected landmarks,
// in the raw (unnormalised) score scale of the generating algorithm so
// composed scores are comparable to exact ones.
type Sketch struct {
	// IDs are the landmark node ids, in selection order.
	IDs []int32
	// Vecs[i] is the full propagation vector of IDs[i]; Vecs[i][v] is the
	// landmark's trust in node v, with Vecs[i][IDs[i]] == 0.
	Vecs [][]float64
}

// Landmark returns the position of node id in the sketch, or -1.
func (sk Sketch) Landmark(id int32) int {
	for i, l := range sk.IDs {
		if l == id {
			return i
		}
	}
	return -1
}

// SelectLandmarks picks the L highest-ranked nodes as landmarks —
// score descending, id ascending on ties, so selection is deterministic
// for a given rank vector. Zero-rank nodes are never selected (a node
// nobody trusts carries no propagation mass worth sketching).
func SelectLandmarks(rank []float64, l int) []int32 {
	if l <= 0 {
		return nil
	}
	ids := make([]int32, 0, len(rank))
	for v, r := range rank {
		if r > 0 {
			ids = append(ids, int32(v))
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if rank[a] != rank[b] {
			return rank[a] > rank[b]
		}
		return a < b
	})
	if l > len(ids) {
		l = len(ids)
	}
	return append([]int32(nil), ids[:l]...)
}

// Frontier maps a direct edge (weight w out of a source whose positive
// out-weight totals total) to the score the source's one-hop view
// assigns the target. Each algorithm supplies its own: Appleseed's
// first hop retains (1−d)·d·Injection·w/total energy; the [0,1]-scaled
// algorithms score a direct neighbour by the edge weight itself.
type Frontier func(w, total float64) float64

// AppleseedFrontier is the one-hop retained energy under as.
func AppleseedFrontier(as Appleseed) Frontier {
	return func(w, total float64) float64 {
		if total <= 0 {
			return 0
		}
		return (1 - as.Spreading) * as.Spreading * as.Injection * w / total
	}
}

// UnitFrontier scores a direct neighbour by its edge weight — the
// first-hop behaviour MoleTrust and TidalTrust share.
func UnitFrontier(w, total float64) float64 { return w }

// Compose assembles the approximate propagation vector for source into
// dst (len n, overwritten): the direct-neighbour frontier, upper-bounded
// per node by each landmark's vector scaled by the source's best ≤2-hop
// path strength into that landmark. dst[source] is 0, matching the
// exact algorithms' "a source does not rank itself" contract.
func (sk Sketch) Compose(g *graph.Graph, source int, frontier Frontier, dst []float64) error {
	n := g.NumNodes()
	if len(dst) != n {
		return fmt.Errorf("%w: compose dst len %d != %d nodes", ErrBadConfig, len(dst), n)
	}
	if source < 0 || source >= n {
		return fmt.Errorf("%w: source %d out of range %d", ErrBadConfig, source, n)
	}
	for i := range dst {
		dst[i] = 0
	}
	to, w := g.Out(source)
	total := 0.0
	for i, u := range to {
		if int(u) != source {
			total += w[i]
		}
	}
	for i, u := range to {
		if int(u) == source {
			continue
		}
		if f := frontier(w[i], total); f > dst[u] {
			dst[u] = f
		}
	}
	for li, l := range sk.IDs {
		if int(l) == source {
			continue
		}
		// Gate: the source's best path strength into the landmark —
		// the direct edge if present, else the strongest 2-hop product.
		gate, direct := g.Weight(source, int(l))
		if !direct {
			gate = 0
			for i, t := range to {
				if int(t) == source {
					continue
				}
				if wt, ok := g.Weight(int(t), int(l)); ok {
					if p := w[i] * wt; p > gate {
						gate = p
					}
				}
			}
		}
		if gate <= 0 {
			continue
		}
		vec := sk.Vecs[li]
		for v, lv := range vec {
			if s := gate * lv; s > dst[v] {
				dst[v] = s
			}
		}
	}
	dst[source] = 0
	return nil
}
