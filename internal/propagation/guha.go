package propagation

import (
	"fmt"

	"weboftrust/internal/mat"
)

// Guha implements the trust-propagation framework of Guha, Kumar,
// Raghavan and Tomkins, "Propagation of Trust and Distrust" (WWW 2004) —
// the paper's reference [5], which it credits with reducing web-of-trust
// sparsity through co-citation, transposition and coupling. This
// implementation covers the trust half (the paper notes distrust data "is
// not always possible to get" in online communities).
//
// One atomic propagation step combines four operators on the current
// belief matrix B with the base trust matrix T:
//
//	C(B) = α1·B·T  +  α2·Bᵀ·T  +  α3·Tᵀ... — concretely, following the
//	paper's operator list:
//	  direct propagation   B·T        (i trusts j, j trusts k)
//	  co-citation          Bᵀ·B? — Guha: B·Tᵀ·T  (i and l both trust j;
//	                       l also trusts k ⇒ i gains trust in k)
//	  transpose trust      Bᵀ         (j trusts i ⇒ weak reverse belief)
//	  trust coupling       B·Bᵀ·T     (i and j trust common people ⇒ i
//	                       adopts j's trust)
//
// Propagated belief after K steps accumulates γ-discounted powers:
//
//	P = Σ_{k=1..K} γ^k · C^(k)(T)
//
// Iterated sparse products fill in rapidly; PruneTopK bounds each row
// between steps (a standard practical device; set it generously).
type Guha struct {
	// Alpha weights the four atomic operators (direct, co-citation,
	// transpose, coupling) — Guha et al. use (0.4, 0.4, 0.1, 0.1).
	Alpha [4]float64
	// Steps is K, the number of atomic propagation rounds.
	Steps int
	// Gamma discounts longer propagation chains, in (0, 1].
	Gamma float64
	// PruneTopK bounds fill-in: after each round every row keeps only
	// its PruneTopK largest entries. <= 0 disables pruning.
	PruneTopK int
}

// DefaultGuha returns Guha et al.'s weighting with moderate depth.
func DefaultGuha() Guha {
	return Guha{Alpha: [4]float64{0.4, 0.4, 0.1, 0.1}, Steps: 3, Gamma: 0.8, PruneTopK: 200}
}

func (g Guha) validate() error {
	sum := 0.0
	for _, a := range g.Alpha {
		if a < 0 {
			return fmt.Errorf("%w: negative alpha %v", ErrBadConfig, a)
		}
		sum += a
	}
	if sum == 0 {
		return fmt.Errorf("%w: all alphas zero", ErrBadConfig)
	}
	if g.Steps < 1 {
		return fmt.Errorf("%w: steps %d < 1", ErrBadConfig, g.Steps)
	}
	if g.Gamma <= 0 || g.Gamma > 1 {
		return fmt.Errorf("%w: gamma %v outside (0,1]", ErrBadConfig, g.Gamma)
	}
	return nil
}

// Propagate expands the base trust matrix trust (square, non-negative)
// into a denser propagated belief matrix. The result is row-pruned per
// PruneTopK and includes the γ-discounted contribution of every step; the
// base matrix itself is included with weight 1.
func (g Guha) Propagate(trust *mat.CSR) (*mat.CSR, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	rows, cols := trust.Dims()
	if rows != cols {
		return nil, fmt.Errorf("%w: trust matrix %dx%d not square", ErrBadConfig, rows, cols)
	}
	tT := trust.Transpose()
	belief := trust // current chain matrix C^(k)(T)
	total := trust  // accumulated P (starts with the base matrix)
	discount := 1.0
	for step := 0; step < g.Steps; step++ {
		next, err := g.atomic(belief, trust, tT)
		if err != nil {
			return nil, err
		}
		// Row-normalise each round, as Guha et al. do: the raw operator
		// values are path counts that would otherwise dwarf the base
		// edges (weight <= 1) and evict them under pruning.
		next = mat.RowNormalize(next)
		if g.PruneTopK > 0 {
			next = mat.PruneRows(next, g.PruneTopK)
		}
		discount *= g.Gamma
		total, err = mat.Add(total, next, discount)
		if err != nil {
			return nil, err
		}
		if g.PruneTopK > 0 {
			total = mat.PruneRows(total, g.PruneTopK)
		}
		belief = next
		if belief.NNZ() == 0 {
			break
		}
	}
	return total, nil
}

// atomic applies one round of the four operators to the belief matrix.
func (g Guha) atomic(belief, trust, trustT *mat.CSR) (*mat.CSR, error) {
	rows, _ := belief.Dims()
	acc := emptyLike(rows)
	var err error

	if g.Alpha[0] > 0 { // direct propagation: B·T
		m, e := mat.Mul(belief, trust)
		if e != nil {
			return nil, e
		}
		acc, err = mat.Add(acc, m, g.Alpha[0])
		if err != nil {
			return nil, err
		}
	}
	if g.Alpha[1] > 0 { // co-citation: B·Tᵀ·T
		m, e := mat.Mul(belief, trustT)
		if e != nil {
			return nil, e
		}
		m, e = mat.Mul(m, trust)
		if e != nil {
			return nil, e
		}
		acc, err = mat.Add(acc, m, g.Alpha[1])
		if err != nil {
			return nil, err
		}
	}
	if g.Alpha[2] > 0 { // transpose trust: Bᵀ
		acc, err = mat.Add(acc, belief.Transpose(), g.Alpha[2])
		if err != nil {
			return nil, err
		}
	}
	if g.Alpha[3] > 0 { // trust coupling: B·Bᵀ·T
		m, e := mat.Mul(belief, belief.Transpose())
		if e != nil {
			return nil, e
		}
		m, e = mat.Mul(m, trust)
		if e != nil {
			return nil, e
		}
		acc, err = mat.Add(acc, m, g.Alpha[3])
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func emptyLike(n int) *mat.CSR {
	return mat.NewBuilder(n, n).Build()
}
