package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"weboftrust"
)

// ErrNoCheckpoint reports a directory holding no usable checkpoint (none
// at all, or only corrupt/torn/stale ones). Boot paths treat it as "go
// cold": replay the log and run a full Derive.
var ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint")

// Checkpoint files are named ckpt-<seq>.wck with a zero-padded, strictly
// increasing sequence number. Ordering is by sequence, NOT by the log
// offset inside the file: compaction rewrites the log and rebases offsets,
// so the offset of an older checkpoint may numerically exceed a newer
// one's while describing a stale log epoch. The sequence number is
// assigned at write time and always increases, so descending-sequence is
// always newest-model-first.
const (
	filePrefix = "ckpt-"
	fileSuffix = ".wck"
	tempSuffix = ".tmp"
	seqDigits  = 16
)

// fileName returns the checkpoint filename for a sequence number.
func fileName(seq uint64) string {
	return fmt.Sprintf("%s%0*d%s", filePrefix, seqDigits, seq, fileSuffix)
}

// parseSeq extracts the sequence number from a checkpoint filename, or
// false if the name is not a (final, non-temporary) checkpoint file.
func parseSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	if digits == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// candidate is one checkpoint file found in a directory.
type candidate struct {
	seq  uint64
	path string
}

// scan lists a directory's checkpoint files newest-first (descending
// sequence). A missing directory scans as empty. Temp-file leftovers from
// crashed writes are never candidates (they fail the name filter).
func scan(dir string) ([]candidate, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan %s: %w", dir, err)
	}
	var out []candidate
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name()); ok {
			out = append(out, candidate{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out, nil
}

// nextSeq returns one past the highest sequence number present in dir.
func nextSeq(dir string) (uint64, error) {
	cands, err := scan(dir)
	if err != nil {
		return 0, err
	}
	if len(cands) == 0 {
		return 1, nil
	}
	return cands[0].seq + 1, nil
}

// WriteDir atomically adds a checkpoint of the model to dir and returns
// its path. offset and logSize locate the model against its event log
// (see Write; pass offset as logSize when the size is unknown). The
// bundle is written to a temp file in the same directory, fsynced, and
// renamed into its final sequence-numbered name, then the directory is
// fsynced — so a crash at any point leaves either no new checkpoint or a
// complete one, never a torn file under a final name. Torn temp files
// from crashed writers are ignored by Restore and cleaned up by
// RemoveTemps.
func WriteDir(dir string, m *weboftrust.TrustModel, offset, logSize int64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	seq, err := nextSeq(dir)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, fileName(seq))
	tmp := final + tempSuffix

	f, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := Write(f, m, offset, logSize); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("checkpoint: publish %s: %w", final, err)
	}
	syncDir(dir)
	return final, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Errors are ignored: some filesystems refuse directory fsync, and the
// rename itself already happened.
func syncDir(dir string) {
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
}

// ReadFile restores a model from one checkpoint file. Knowing the file's
// size lets the decoder allocate bulk sections exactly instead of
// growing defensively (see read).
func ReadFile(path string, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Info{}, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var sizeHint int64
	if st, err := f.Stat(); err == nil {
		sizeHint = st.Size()
	}
	m, info, err := read(f, sizeHint, opts...)
	if err != nil {
		return nil, Info{}, err
	}
	info.Path = path
	return m, info, nil
}

// Restore loads the newest usable checkpoint in dir: candidates are tried
// in descending sequence order, and one that fails to decode (torn,
// corrupt, wrong version) or carries a different config fingerprint is
// skipped in favour of the next-newest — boot prefers serving a slightly
// older valid model over refusing to start. It returns the model and its
// Info (offset, recorded log size, winning path); ErrNoCheckpoint
// (wrapping the per-file failures) when nothing in dir is usable.
func Restore(dir string, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	cands, err := scan(dir)
	if err != nil {
		return nil, Info{}, err
	}
	var failures []error
	for _, c := range cands {
		m, info, err := ReadFile(c.path, opts...)
		if err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", filepath.Base(c.path), err))
			continue
		}
		return m, info, nil
	}
	if len(failures) > 0 {
		return nil, Info{}, fmt.Errorf("%w: %w", ErrNoCheckpoint, errors.Join(failures...))
	}
	return nil, Info{}, ErrNoCheckpoint
}

// Prune deletes all but the newest keep checkpoints in dir (keep < 1 is
// treated as 1). It never touches temp files; pair with RemoveTemps.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	cands, err := scan(dir)
	if err != nil {
		return err
	}
	var errs []error
	for _, c := range cands[min(keep, len(cands)):] {
		if err := os.Remove(c.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// RemoveTemps deletes temp-file leftovers from crashed checkpoint writes.
// Call it at boot, where no writer can be mid-flight.
func RemoveTemps(dir string) error {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var errs []error
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), fileSuffix+tempSuffix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
