package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

// bootModel reproduces the daemon's boot decision in miniature: restore
// the newest usable checkpoint and tail the log from its (rebased)
// offset, falling back to a cold replay + Derive when no checkpoint is
// usable. The crash-consistency tests drive it over every intermediate
// on-disk state a crash can leave and demand the same served model.
func bootModel(t *testing.T, logPath, dir string) *weboftrust.TrustModel {
	t.Helper()
	var model *weboftrust.TrustModel
	var resume int64

	restored, info, err := Restore(dir)
	warm := err == nil
	if !warm && !errors.Is(err, ErrNoCheckpoint) {
		t.Fatal(err)
	}
	st, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		model = restored
		resume = info.Resume(st.Size())
	}

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, _, err := store.ReadLogFrom(f, resume)
	if err != nil && !errors.Is(err, store.ErrTruncated) {
		t.Fatal(err)
	}
	if warm {
		if len(events) == 0 {
			return model
		}
		b := ratings.NewBuilderFrom(model.Dataset())
		if err := store.Replay(events, b); err != nil {
			t.Fatal(err)
		}
		updated, err := model.Update(b.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return updated
	}
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		t.Fatal(err)
	}
	cold, err := weboftrust.Derive(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return cold
}

// TestRestoreSkipsTornAndTempFiles plants a valid checkpoint, a torn
// newer one, a checkpoint-shaped file of garbage, and a temp leftover,
// then asserts boot lands on the valid one and RemoveTemps clears the
// leftover.
func TestRestoreSkipsTornAndTempFiles(t *testing.T) {
	d := smallDataset(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpts")

	good, err := WriteDir(dir, model, 42, 42)
	if err != nil {
		t.Fatal(err)
	}

	// A "crash mid-write under a final name" — should be impossible given
	// the temp+rename protocol, but boot must survive it anyway.
	torn, err := WriteDir(dir, model, 43, 43)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Garbage under the next sequence number.
	garbage := filepath.Join(dir, fileName(99))
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A crashed writer's temp file.
	tmp := filepath.Join(dir, fileName(100)+tempSuffix)
	if err := os.WriteFile(tmp, raw[:16], 0o644); err != nil {
		t.Fatal(err)
	}

	restored, info, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != good || info.Offset != 42 {
		t.Fatalf("restored %+v, want %s at 42", info, good)
	}
	modelsEqual(t, model, restored)

	if err := RemoveTemps(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp leftover survived RemoveTemps: %v", err)
	}
}

// cloneState copies a log file and checkpoint directory into a fresh
// temp location, so each interruption scenario starts from pristine
// state.
func cloneState(t *testing.T, logPath, dir string) (string, string) {
	t.Helper()
	root := t.TempDir()
	newLog := filepath.Join(root, "events.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newLog, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	newDir := filepath.Join(root, "ckpts")
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(newDir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return newLog, newDir
}

// TestCompactInterruptedAtEveryStage aborts Compact after each stage of
// its protocol and proves that (a) booting from the interrupted state
// yields the same model a from-scratch replay does, and (b) re-running
// Compact to completion from the interrupted state converges to the
// clean post-compaction state.
func TestCompactInterruptedAtEveryStage(t *testing.T) {
	d := smallDataset(t)
	root := t.TempDir()
	logPath := writeLog(t, root, d)
	dir := filepath.Join(root, "ckpts")

	// Seed the directory with a mid-log checkpoint so compaction has both
	// a warm start and older checkpoints to prune.
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := store.ReadLogFrom(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	cut := len(events) / 2
	pb := ratings.NewBuilder()
	if err := store.Replay(events[:cut], pb); err != nil {
		t.Fatal(err)
	}
	prefix, err := weboftrust.Derive(pb.Build())
	if err != nil {
		t.Fatal(err)
	}
	// The byte offset of the cut: re-read that many records.
	var cutOffset int64
	{
		f, err := os.Open(logPath)
		if err != nil {
			t.Fatal(err)
		}
		lr := store.NewLogReader(f, 0)
		for i := 0; i < cut; i++ {
			if _, err := lr.Next(); err != nil {
				t.Fatal(err)
			}
		}
		cutOffset = lr.Offset()
		f.Close()
	}
	logSt, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteDir(dir, prefix, cutOffset, logSt.Size()); err != nil {
		t.Fatal(err)
	}

	want := bootModel(t, logPath, dir) // == full derive; compaction must preserve it

	errInjected := errors.New("injected crash")
	for _, stage := range []string{"fold", "checkpoint", "prune", "swap", ""} {
		t.Run("crash after "+stage, func(t *testing.T) {
			log2, dir2 := cloneState(t, logPath, dir)
			if stage != "" {
				compactFault = func(s string) error {
					if s == stage {
						return errInjected
					}
					return nil
				}
				defer func() { compactFault = nil }()
				if _, err := Compact(log2, dir2, false); !errors.Is(err, errInjected) {
					t.Fatalf("Compact err = %v, want injected crash", err)
				}
				compactFault = nil
				modelsEqual(t, want, bootModel(t, log2, dir2))
			}

			// Finish (or run from scratch) and verify the end state.
			res, err := Compact(log2, dir2, false)
			if err != nil {
				t.Fatal(err)
			}
			if res.RemainderBytes != 0 {
				t.Fatalf("remainder = %d bytes, want 0", res.RemainderBytes)
			}
			st, err := os.Stat(log2)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() != 0 {
				t.Fatalf("log size = %d after compaction, want 0", st.Size())
			}
			// Compaction leaves the rebased checkpoint plus the fold-point
			// one it deliberately keeps (the only other copy of the folded
			// history); both must be usable, newest first.
			cands, err := scan(dir2)
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) != 2 {
				t.Fatalf("%d checkpoints after compaction, want 2 (rebased + kept fold)", len(cands))
			}
			for _, c := range cands {
				if _, _, err := ReadFile(c.path); err != nil {
					t.Fatalf("post-compaction checkpoint %s unusable: %v", c.path, err)
				}
			}
			modelsEqual(t, want, bootModel(t, log2, dir2))

			// The kept fold checkpoint must also boot correctly on its own
			// (the redundancy it exists for: the rebased file corrupting).
			if err := os.Remove(cands[0].path); err != nil {
				t.Fatal(err)
			}
			modelsEqual(t, want, bootModel(t, log2, dir2))

			// Life goes on: append fresh events and boot again.
			af, err := os.OpenFile(log2, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			lw := store.NewLogWriter(af)
			newUser := want.Dataset().NumUsers()
			for _, ev := range []store.Event{
				{Kind: store.EvAddUser, Name: "post-compact"},
				{Kind: store.EvAddObject, Category: 0, Name: "obj"},
				{Kind: store.EvAddReview, User: ratings.UserID(newUser), Object: ratings.ObjectID(want.Dataset().NumObjects())},
			} {
				if err := lw.Append(ev); err != nil {
					t.Fatal(err)
				}
			}
			if err := lw.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := af.Close(); err != nil {
				t.Fatal(err)
			}
			grown := bootModel(t, log2, dir2)
			if grown.Dataset().NumUsers() != newUser+1 {
				t.Fatalf("post-compact tail lost: %d users, want %d", grown.Dataset().NumUsers(), newUser+1)
			}
		})
	}
}

// TestCompactTornTail verifies a torn final record fails compaction by
// default, and is preserved in the log under allowTruncated while the
// intact prefix folds.
func TestCompactTornTail(t *testing.T) {
	d := smallDataset(t)
	root := t.TempDir()
	logPath := writeLog(t, root, d)
	dir := filepath.Join(root, "ckpts")

	// Append the first 3 bytes of a record a crashed writer never
	// finished: frame length 10, two payload bytes, end of file.
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(raw, 0x0a, byte(store.EvAddUser), 'x')
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Compact(logPath, dir, false); !errors.Is(err, store.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	res, err := Compact(logPath, dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemainderBytes != 3 {
		t.Fatalf("remainder = %d, want the 3 torn bytes", res.RemainderBytes)
	}
	left, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 3 {
		t.Fatalf("log holds %d bytes, want 3", len(left))
	}
}

// TestCompactResultShape sanity-checks the warm/cold reporting.
func TestCompactResultShape(t *testing.T) {
	d := smallDataset(t)
	root := t.TempDir()
	logPath := writeLog(t, root, d)
	dir := filepath.Join(root, "ckpts")

	res, err := Compact(logPath, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Warm {
		t.Fatal("first compaction reported warm")
	}
	if res.FoldedEvents == 0 || res.FoldedBytes == 0 {
		t.Fatalf("nothing folded: %+v", res)
	}

	// Second compaction warm-starts from the rebased checkpoint and has
	// nothing to fold.
	res2, err := Compact(logPath, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Warm {
		t.Fatal("second compaction reported cold")
	}
	if res2.FoldedEvents != 0 {
		t.Fatalf("second compaction folded %d events, want 0", res2.FoldedEvents)
	}
	if fmt.Sprint(res2.RemainderBytes) != "0" {
		t.Fatalf("remainder = %d", res2.RemainderBytes)
	}
}
