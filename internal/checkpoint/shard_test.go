package checkpoint

// Tests for per-shard checkpoints: a sharded bundle round-trips the
// shard's compact state plus the replicated web graph bitwise, keeps
// Update continuity after restore, and is refused under any other shard
// spec (or web policy) than it was written with.

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
)

// shardedModelsEqual asserts two sharded models serve identically:
// everything for owned sources (scores, rankings, affinity), web rows
// and generosity for ALL users (unowned rows come from the replicated
// graph), expertise for all users.
func shardedModelsEqual(t *testing.T, want, got *weboftrust.TrustModel, spec shard.Spec) {
	t.Helper()
	wi, wc := want.ShardSpec()
	gi, gc := got.ShardSpec()
	if wi != spec.Index || wc != spec.Count || gi != spec.Index || gc != spec.Count {
		t.Fatalf("shard specs: want %d/%d and %d/%d, expected %v", wi, wc, gi, gc, spec)
	}
	numU := want.Dataset().NumUsers()
	if got.Dataset().NumUsers() != numU {
		t.Fatalf("user counts differ: %d vs %d", numU, got.Dataset().NumUsers())
	}
	websEqual(t, want.WebOfTrust(), got.WebOfTrust())
	for u := 0; u < numU; u++ {
		uid := ratings.UserID(u)
		we, ge := want.Expertise(uid), got.Expertise(uid)
		for c := range we {
			if we[c] != ge[c] {
				t.Fatalf("expertise[%d][%d]: want %v, got %v", u, c, we[c], ge[c])
			}
		}
		if o := spec.Owns(u); want.Owns(uid) != o || got.Owns(uid) != o {
			t.Fatalf("Owns(%d): want %v on both sides", u, o)
		}
		if !spec.Owns(u) {
			continue
		}
		wa, ga := want.Affinity(uid), got.Affinity(uid)
		for c := range wa {
			if wa[c] != ga[c] {
				t.Fatalf("affinity[%d][%d]: want %v, got %v", u, c, wa[c], ga[c])
			}
		}
		for j := 0; j < numU; j++ {
			if w, g := want.Score(uid, ratings.UserID(j)), got.Score(uid, ratings.UserID(j)); w != g {
				t.Fatalf("score[%d][%d]: want %v, got %v", u, j, w, g)
			}
		}
		wt, gt := want.TopTrusted(uid, 10), got.TopTrusted(uid, 10)
		if len(wt) != len(gt) {
			t.Fatalf("topk[%d]: %d vs %d results", u, len(wt), len(gt))
		}
		for k := range wt {
			if wt[k] != gt[k] {
				t.Fatalf("topk[%d][%d]: want %+v, got %+v", u, k, wt[k], gt[k])
			}
		}
	}
}

// TestShardedRestoreTailEqualsFreshDerive is the sharded warm-restart
// property: a per-shard checkpoint restores bitwise, and Update continues
// from the restored model exactly as it would from the original — ending
// at the model a fresh sharded Derive over the grown dataset produces.
func TestShardedRestoreTailEqualsFreshDerive(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	logPath := writeLog(t, dir, d)
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := store.ReadLogFrom(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 60 {
		t.Fatalf("only %d events", len(events))
	}
	split := len(events) - 40
	b := ratings.NewBuilder()
	if err := store.Replay(events[:split], b); err != nil {
		t.Fatal(err)
	}
	d0 := b.Snapshot()
	if err := store.Replay(events[split:], b); err != nil {
		t.Fatal(err)
	}
	d1 := b.Snapshot()

	for _, spec := range []shard.Spec{{Index: 0, Count: 2}, {Index: 2, Count: 3}} {
		opts := []weboftrust.Option{weboftrust.WithShard(spec.Index, spec.Count)}
		m0, err := weboftrust.Derive(d0, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m0, 100, 100); err != nil {
			t.Fatal(err)
		}
		restored, info, err := Read(bytes.NewReader(buf.Bytes()), opts...)
		if err != nil {
			t.Fatalf("shard %v: %v", spec, err)
		}
		if info.Offset != 100 {
			t.Fatalf("offset %d, want 100", info.Offset)
		}
		shardedModelsEqual(t, m0, restored, spec)

		up, err := restored.Update(d1)
		if err != nil {
			t.Fatalf("shard %v update after restore: %v", spec, err)
		}
		fresh, err := weboftrust.Derive(d1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		shardedModelsEqual(t, fresh, up, spec)
	}
}

// TestReadRejectsShardMismatch pins that a bundle only restores under the
// exact shard spec it was written with.
func TestReadRejectsShardMismatch(t *testing.T) {
	d := smallDataset(t)
	sharded, err := weboftrust.Derive(d, weboftrust.WithShard(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	var shardedBuf bytes.Buffer
	if err := Write(&shardedBuf, sharded, 0, 0); err != nil {
		t.Fatal(err)
	}
	unsharded, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	var unshardedBuf bytes.Buffer
	if err := Write(&unshardedBuf, unsharded, 0, 0); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		raw  []byte
		opts []weboftrust.Option
	}{
		{"sharded bundle, unsharded serving", shardedBuf.Bytes(), nil},
		{"sharded bundle, wrong index", shardedBuf.Bytes(), []weboftrust.Option{weboftrust.WithShard(0, 3)}},
		{"sharded bundle, wrong count", shardedBuf.Bytes(), []weboftrust.Option{weboftrust.WithShard(1, 4)}},
		{"unsharded bundle, sharded serving", unshardedBuf.Bytes(), []weboftrust.Option{weboftrust.WithShard(1, 3)}},
	}
	for _, tc := range cases {
		if _, _, err := Read(bytes.NewReader(tc.raw), tc.opts...); !errors.Is(err, ErrShardMismatch) {
			t.Errorf("%s: err = %v, want ErrShardMismatch", tc.name, err)
		}
	}

	// The matching spec still restores.
	if _, _, err := Read(bytes.NewReader(shardedBuf.Bytes()), weboftrust.WithShard(1, 3)); err != nil {
		t.Fatalf("matching spec: %v", err)
	}
}

// TestShardedReadRejectsPolicyChange pins that a sharded bundle — whose
// graph cannot be re-binarised from its compact affinity — refuses to
// restore under a different web policy.
func TestShardedReadRejectsPolicyChange(t *testing.T) {
	d := smallDataset(t)
	m, err := weboftrust.Derive(d, weboftrust.WithShard(0, 2), weboftrust.WithWebColdStartGenerosity(0.2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(bytes.NewReader(buf.Bytes()), weboftrust.WithShard(0, 2)); !errors.Is(err, ErrStale) {
		t.Fatalf("policy change: err = %v, want ErrStale", err)
	}
	if _, _, err := Read(bytes.NewReader(buf.Bytes()),
		weboftrust.WithShard(0, 2), weboftrust.WithWebColdStartGenerosity(0.2)); err != nil {
		t.Fatalf("matching policy: %v", err)
	}
}
