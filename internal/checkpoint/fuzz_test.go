package checkpoint

import (
	"bytes"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
)

// fuzzModel derives a model over a tiny hand-rolled community — small
// enough that the seed checkpoint stays a few KB and a fuzz iteration
// that somehow decodes still rehydrates fast.
func fuzzModel(t testing.TB) *weboftrust.TrustModel {
	t.Helper()
	b := ratings.NewBuilder()
	b.AddCategory("movies")
	b.AddCategory("books")
	u0 := b.AddUser("ann")
	u1 := b.AddUser("bob")
	u2 := b.AddUser("cho")
	o0, err := b.AddObject(0, "heat")
	if err != nil {
		t.Fatal(err)
	}
	o1, err := b.AddObject(1, "dune")
	if err != nil {
		t.Fatal(err)
	}
	r0, err := b.AddReview(u0, o0)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b.AddReview(u1, o1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(u1, r0, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRating(u2, r1, 0.4); err != nil {
		t.Fatal(err)
	}
	m, err := weboftrust.Derive(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// FuzzReadCheckpoint pins the checkpoint decoder's hardening: no input
// may panic it or allocate meaningfully past the input's own length, and
// anything that decodes must serve the exact values it re-encodes to.
func FuzzReadCheckpoint(f *testing.F) {
	model := fuzzModel(f)
	var buf bytes.Buffer
	if err := Write(&buf, model, 77, 100); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn mid-artifacts
	f.Add(valid[:9])            // magic + version only
	f.Add([]byte{})
	f.Add([]byte("WOTCK001"))
	mutated := bytes.Clone(valid)
	mutated[len(mutated)/4] ^= 0x20
	f.Add(mutated)
	flippedTail := bytes.Clone(valid)
	flippedTail[len(flippedTail)-1] ^= 0xff // checksum damage
	f.Add(flippedTail)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, info, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if info.Offset < 0 || info.LogSize < info.Offset {
			t.Fatalf("implausible position %+v from successful read", info)
		}
		// A successful read is CRC-clean, so re-encoding must be
		// deterministic and re-decodable.
		var out bytes.Buffer
		if err := Write(&out, m, info.Offset, info.LogSize); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		m2, info2, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if info2.Offset != info.Offset || m2.Dataset().NumUsers() != m.Dataset().NumUsers() {
			t.Fatalf("round trip drifted: offset %d→%d, users %d→%d",
				info.Offset, info2.Offset, m.Dataset().NumUsers(), m2.Dataset().NumUsers())
		}
	})
}
