// Package checkpoint persists the derived trust model so a serving
// process can restart in milliseconds instead of replaying its whole
// history: a versioned, CRC-32C-checked binary bundle holding the
// dataset, the pipeline artifacts (Riggs results, expertise, affinity)
// and the event-log offset the model reflects, plus directory-level
// atomic-write/restore/prune/compact protocols built on it (see dir.go
// and compact.go, and DESIGN.md §8).
//
// Bundle layout (all integers varint-encoded unless noted):
//
//	magic "WOTCK001" (8 bytes)
//	format version (uvarint, currently 2; version-1 bundles — which
//	lack the shard fields below and always hold a full affinity
//	matrix — are still read, as unsharded)
//	config fingerprint (8 bytes little-endian; see core.Config.Fingerprint)
//	shard index, shard count (uvarints; 0/1 when unsharded — see
//	internal/shard. The spec a bundle was written under is part of
//	its identity: restore refuses a mismatched spec, because the
//	affinity section below holds exactly the owned rows)
//	event-log offset the model reflects (uvarint)
//	event-log size observed at write time (uvarint, >= offset; how a
//	boot detects that the log was rewritten by compaction — see
//	Info.Resume)
//	dataset     byte length, then a ratings dataset image (the trusted
//	            bulk form — see ratings.AppendImage; integrity comes
//	            from this bundle's CRC, and decoding rebuilds the
//	            dataset's indexes without the validating Builder the
//	            generic snapshot path replays through, which is what
//	            makes restore-time O(bulk read) instead of
//	            O(map insert per record))
//	riggs       per category: review ids, qualities, rater ids,
//	            reputations, rating counts, iterations, converged flag
//	expertise   U·C float64 cells (8-byte little-endian bits, row-major)
//	affinity    owned·C float64 cells — the full U rows when unsharded,
//	            only the shard's owned users' rows (ascending user id)
//	            when sharded: the whole point of the partitioning is
//	            that a shard never materialises the other rows
//	web         sharded bundles only: the binarise policy (kind, tau,
//	            cold generosity), the per-user generosity vector
//	            (U floats), and the complete replicated adjacency (per
//	            user: degree, ascending target ids, T̂ weights). An
//	            unsharded restore rebuilds the web from A lazily; a
//	            sharded one cannot — its A is compact — so the graph
//	            rides in the bundle and restore decodes it eagerly
//	crc32c of everything after the magic (4 bytes little-endian)
//
// Floats are serialised as their exact IEEE-754 bits, and the
// derived-trust index (row sums, expert bitsets, packed expert lists and
// score columns) is deliberately NOT serialised: it is rebuilt from the
// decoded matrices by core.RehydrateArtifacts (or, sharded, from the
// compact matrix and decoded graph by core.RehydrateShardedArtifacts),
// which is bitwise-deterministic at any worker count. A restored model
// therefore serves values bitwise-identical to the Derive it checkpoints
// — pinned by the round-trip property tests.
//
// The decoder is hardened against corrupt or adversarial input: bulk
// sections are read through a chunk-growing buffer bounded by the bytes
// actually present, the embedded image applies the same
// remaining-bytes bound to every entity count, every later count is
// validated against the dataset's (now-decoded) dimensions before any
// allocation, and the trailing checksum rejects any surviving bit-rot.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
	"weboftrust/internal/shard"
)

var (
	// ErrBadMagic reports a stream that is not a checkpoint.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrBadVersion reports a checkpoint from an unknown format version.
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	// ErrChecksum reports checkpoint corruption caught by the CRC.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
	// ErrCorrupt reports a structurally invalid checkpoint (including a
	// torn tail from a crash mid-write: unlike the event log, a partial
	// checkpoint is worthless, so truncation is not distinguished).
	ErrCorrupt = errors.New("checkpoint: corrupt data")
	// ErrStale reports a checkpoint whose config fingerprint does not
	// match the options the caller is serving with; restoring it would
	// serve values a fresh Derive would not produce.
	ErrStale = errors.New("checkpoint: config fingerprint mismatch")
	// ErrShardMismatch reports a checkpoint written under a different
	// shard spec than the configuration restoring it. A sharded bundle
	// holds only its shard's dense rows, so restoring it as any other
	// shard (or unsharded) would serve the wrong partition.
	ErrShardMismatch = errors.New("checkpoint: shard spec mismatch")
)

var magic = [8]byte{'W', 'O', 'T', 'C', 'K', '0', '0', '1'}

// formatVersion is bumped on any incompatible layout change. Version 2
// added the shard spec (and, for sharded bundles, the compact affinity
// section and the serialised web graph); version-1 bundles are still
// readable and mean "unsharded".
const formatVersion = 2

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxDatasetBytes caps the embedded snapshot's declared length. The
// snapshot is read through a chunk-growing buffer regardless, so a forged
// length under the cap still cannot allocate more than the bytes actually
// present — this bound just fails obvious garbage fast.
const maxDatasetBytes = 1 << 31

// Info locates a checkpoint against its event log.
type Info struct {
	// Offset is the event-log offset the model reflects — where tailing
	// resumes in the log the checkpoint was written against.
	Offset int64
	// LogSize is the log's size observed at write time (at least
	// Offset). A current log SMALLER than this proves the log was
	// rewritten since — compaction dropped the folded prefix — which is
	// what Resume keys on.
	LogSize int64
	// Path is the file the checkpoint was read from ("" for stream
	// reads).
	Path string
}

// Resume maps the checkpoint's recorded offset onto the log as it
// exists now. Normally the recorded offset is a position within the log
// and tailing resumes there; the log only ever grows, so its current
// size is at least the recorded LogSize. A current log SMALLER than the
// recorded size means the log was compacted at exactly this checkpoint
// (Compact swaps the folded prefix out from under the offset before it
// writes the rebased replacement; a crash in that window leaves this
// state): the log's remaining bytes are precisely the records after the
// checkpoint, so tailing resumes at 0. The rule is unambiguous because
// Compact deletes every other checkpoint before swapping the log — the
// only checkpoint that can observe a shrunken log is the one written at
// the compaction point itself, whose recorded size strictly exceeds the
// remainder it leaves behind (it folded a non-empty prefix).
func (in Info) Resume(currentLogSize int64) int64 {
	if currentLogSize < in.LogSize {
		return 0
	}
	return in.Offset
}

// Write serialises the model, the event-log offset it reflects, and the
// log size observed at that moment (pass offset itself when the size is
// unknown: the log held at least the bytes the model consumed, which is
// all Info.Resume needs from non-compaction checkpoints).
func Write(w io.Writer, m *weboftrust.TrustModel, offset, logSize int64) error {
	if m == nil {
		return fmt.Errorf("checkpoint: nil model")
	}
	if offset < 0 {
		return fmt.Errorf("checkpoint: negative offset %d", offset)
	}
	if logSize < offset {
		return fmt.Errorf("checkpoint: log size %d below offset %d", logSize, offset)
	}
	d, art := m.Dataset(), m.Artifacts()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	enc := &encoder{w: io.MultiWriter(bw, crc)}

	enc.uvarint(formatVersion)
	enc.fixed64(m.Fingerprint())
	shardIndex, shardCount := m.ShardSpec()
	enc.uvarint(uint64(shardIndex))
	enc.uvarint(uint64(shardCount))
	enc.uvarint(uint64(offset))
	enc.uvarint(uint64(logSize))

	// Embedded dataset image, length-prefixed so the decoder can bound
	// the section before decoding it.
	img := ratings.AppendImage(nil, d)
	enc.uvarint(uint64(len(img)))
	enc.bytes(img)

	if len(art.RiggsResults) != d.NumCategories() {
		return fmt.Errorf("checkpoint: %d riggs results for %d categories",
			len(art.RiggsResults), d.NumCategories())
	}
	for c, cr := range art.RiggsResults {
		if cr == nil || len(cr.Quality) != len(cr.Reviews) ||
			len(cr.RaterRep) != len(cr.Raters) || len(cr.RaterCount) != len(cr.Raters) {
			return fmt.Errorf("checkpoint: malformed riggs result %d", c)
		}
		enc.uvarint(uint64(len(cr.Reviews)))
		for _, r := range cr.Reviews {
			enc.uvarint(uint64(r))
		}
		enc.floats(cr.Quality)
		enc.uvarint(uint64(len(cr.Raters)))
		for _, u := range cr.Raters {
			enc.uvarint(uint64(u))
		}
		enc.floats(cr.RaterRep)
		for _, n := range cr.RaterCount {
			enc.uvarint(uint64(n))
		}
		enc.uvarint(uint64(cr.Iterations))
		enc.boolByte(cr.Converged)
	}

	enc.matrix(art.Expertise, d.NumUsers(), d.NumCategories())
	// Sharded models retain only their owned affinity rows; OwnedUsers is
	// U for an unsharded model, so this is the historical U·C section
	// exactly when the spec is 0/1.
	enc.matrix(art.Affinity, art.Trust.OwnedUsers(), d.NumCategories())

	if shardCount > 1 {
		// The compact A cannot rebuild the web, so sharded bundles carry
		// the graph: the policy it was binarised under, the effective
		// generosity vector, and the complete replicated adjacency.
		web := art.Web
		if web == nil {
			return fmt.Errorf("checkpoint: sharded model missing web artifact")
		}
		p := web.Policy()
		enc.uvarint(uint64(p.Policy))
		enc.fixed64(math.Float64bits(p.Tau))
		enc.fixed64(math.Float64bits(p.ColdGenerosity))
		enc.floats(web.GenerosityVector())
		g := web.Graph()
		for u := 0; u < d.NumUsers(); u++ {
			to, wts := g.Out(u)
			enc.uvarint(uint64(len(to)))
			for _, t := range to {
				enc.uvarint(uint64(t))
			}
			enc.floats(wts)
		}
	}
	if enc.err != nil {
		return enc.err
	}

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read restores a model from r. opts must be the derive options the
// caller serves with: the recorded config fingerprint is checked against
// them (ErrStale on mismatch), and the derived-trust index is rebuilt
// under their worker setting. The returned offset is the event-log
// position the model reflects — the place to resume tailing from.
func Read(r io.Reader, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	return read(r, 0, opts...)
}

// read is Read with a total-size hint (0 = unknown): when the caller
// knows how many bytes the stream can possibly hold (ReadFile stats the
// file), bulk sections under that bound allocate exactly once instead of
// growing geometrically.
func read(r io.Reader, sizeHint int64, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	servingCfg, err := weboftrust.ResolveConfig(opts...)
	if err != nil {
		return nil, Info{}, err
	}
	servingFingerprint := servingCfg.Fingerprint()

	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if m != magic {
		return nil, Info{}, ErrBadMagic
	}
	crc := crc32.New(castagnoli)
	dec := &decoder{r: br, crc: crc, sizeHint: sizeHint}

	version := dec.uvarint()
	if dec.err == nil && version != 1 && version != 2 {
		return nil, Info{}, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	fingerprint := dec.fixed64()
	spec := shard.Spec{Index: 0, Count: 1}
	if version >= 2 {
		idx, cnt := dec.uvarint(), dec.uvarint()
		if dec.err == nil {
			if cnt < 1 || cnt > math.MaxInt32 || idx >= cnt {
				return nil, Info{}, fmt.Errorf("%w: shard spec %d/%d", ErrCorrupt, idx, cnt)
			}
			spec = shard.Spec{Index: int(idx), Count: int(cnt)}.Canon()
		}
	}
	offset := dec.uvarint()
	logSize := dec.uvarint()
	if dec.err == nil && (offset > math.MaxInt64 || logSize > math.MaxInt64 || logSize < offset) {
		return nil, Info{}, fmt.Errorf("%w: offset %d / log size %d", ErrCorrupt, offset, logSize)
	}

	imgLen := dec.uvarint()
	if dec.err == nil && imgLen > maxDatasetBytes {
		return nil, Info{}, fmt.Errorf("%w: dataset section %d bytes too large", ErrCorrupt, imgLen)
	}
	img := dec.chunked(int64(imgLen))
	if dec.err != nil {
		return nil, Info{}, dec.err
	}
	d, err := ratings.DatasetFromImage(img)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: embedded dataset: %v", ErrCorrupt, err)
	}

	// Every count below is bounded by the validated dataset's dimensions
	// before any slice is allocated.
	numU, numC, numR := d.NumUsers(), d.NumCategories(), d.NumReviews()
	results := make([]*riggs.CategoryResult, numC)
	for c := range results {
		cr := &riggs.CategoryResult{Category: ratings.CategoryID(c)}
		nrev := int(dec.count("reviews", uint64(numR)))
		cr.Reviews = make([]ratings.ReviewID, nrev)
		for i := range cr.Reviews {
			cr.Reviews[i] = ratings.ReviewID(dec.id("review", uint64(numR)))
		}
		cr.Quality = dec.floats(nrev)
		nrat := int(dec.count("raters", uint64(numU)))
		cr.Raters = make([]ratings.UserID, nrat)
		for i := range cr.Raters {
			cr.Raters[i] = ratings.UserID(dec.id("rater", uint64(numU)))
		}
		cr.RaterRep = dec.floats(nrat)
		cr.RaterCount = make([]int, nrat)
		for i := range cr.RaterCount {
			cr.RaterCount[i] = int(dec.count("rater count", uint64(numR)))
		}
		cr.Iterations = int(dec.count("iterations", 1<<30))
		cr.Converged = dec.boolByte()
		if dec.err != nil {
			return nil, Info{}, dec.err
		}
		results[c] = cr
	}

	e := dec.matrix(numU, numC)
	a := dec.matrix(spec.CountOwned(numU), numC)

	// Sharded bundles carry the web graph (their compact A cannot rebuild
	// it). Decoded here, validated structurally by graph construction and
	// against the serving policy after integrity is established below.
	var webPolicy core.WebPolicy
	var generosity []float64
	var webTo [][]int32
	var webW [][]float64
	if spec.IsSharded() {
		webPolicy = core.WebPolicy{
			Policy:         core.BinarizePolicy(dec.count("web policy", 8)),
			Tau:            math.Float64frombits(dec.fixed64()),
			ColdGenerosity: math.Float64frombits(dec.fixed64()),
		}
		generosity = dec.floats(numU)
		webTo = make([][]int32, numU)
		webW = make([][]float64, numU)
		for u := 0; u < numU && dec.err == nil; u++ {
			deg := int(dec.count("web degree", uint64(numU)))
			to := make([]int32, deg)
			for i := range to {
				to[i] = int32(dec.id("web target", uint64(numU)))
			}
			webTo[u] = to
			webW[u] = dec.floats(deg)
		}
	}
	if dec.err != nil {
		return nil, Info{}, dec.err
	}

	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, Info{}, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return nil, Info{}, ErrChecksum
	}

	// Integrity is now established; only reject on staleness after the
	// bytes themselves are known good, so ErrStale reliably means "valid
	// checkpoint, different configuration" (and ErrShardMismatch "valid
	// checkpoint, different shard").
	if fingerprint != servingFingerprint {
		return nil, Info{}, fmt.Errorf("%w: checkpoint %#x, serving config %#x",
			ErrStale, fingerprint, servingFingerprint)
	}
	if want := servingCfg.Shard.Canon(); spec != want {
		return nil, Info{}, fmt.Errorf("%w: checkpoint is shard %v, serving config says %v",
			ErrShardMismatch, spec, want)
	}

	if spec.IsSharded() {
		// The bundle's graph was binarised under the recorded policy; a
		// different serving policy would need the full A to re-binarise,
		// which is exactly what a sharded bundle does not carry.
		if webPolicy != servingCfg.Web {
			return nil, Info{}, fmt.Errorf("%w: checkpoint web policy %v, serving %v",
				ErrStale, webPolicy, servingCfg.Web)
		}
		web, err := core.NewShardedWeb(webPolicy, generosity, webTo, webW, spec)
		if err != nil {
			return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		art, err := core.RehydrateShardedArtifacts(results, e, a, spec, web, servingCfg.Workers)
		if err != nil {
			return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		model, err := weboftrust.Restore(d, art, opts...)
		if err != nil {
			return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return model, Info{Offset: int64(offset), LogSize: int64(logSize)}, nil
	}

	// A nil Trust asks Restore to rebuild the derived-trust index from
	// the decoded matrices (core.RehydrateArtifacts, under the options'
	// worker setting) — the one place that rehydration logic lives.
	art := &core.Artifacts{RiggsResults: results, Expertise: e, Affinity: a}
	model, err := weboftrust.Restore(d, art, opts...)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return model, Info{Offset: int64(offset), LogSize: int64(logSize)}, nil
}

type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) fixed64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) boolByte(b bool) {
	var v byte
	if b {
		v = 1
	}
	e.bytes([]byte{v})
}

func (e *encoder) floats(fs []float64) {
	for _, f := range fs {
		e.fixed64(math.Float64bits(f))
	}
}

func (e *encoder) matrix(m *mat.Dense, rows, cols int) {
	if e.err != nil {
		return
	}
	if m == nil || m.Rows() != rows || m.Cols() != cols {
		e.err = fmt.Errorf("checkpoint: matrix shape mismatch (want %dx%d)", rows, cols)
		return
	}
	for i := 0; i < rows; i++ {
		e.floats(m.Row(i))
	}
}

type decoder struct {
	r   *bufio.Reader
	crc io.Writer
	err error
	// sizeHint, when positive, bounds the stream's total length: bulk
	// sections no larger than it allocate exactly once.
	sizeHint int64
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(crcByteReader{d})
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	return v
}

// count reads a uvarint and rejects values above max before the caller
// allocates anything sized by it.
func (d *decoder) count(what string, max uint64) uint64 {
	v := d.uvarint()
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%w: %s count %d exceeds bound %d", ErrCorrupt, what, v, max)
		return 0
	}
	return v
}

// id reads a uvarint identifier and range-checks it against the dataset.
func (d *decoder) id(what string, n uint64) uint64 {
	v := d.uvarint()
	if d.err == nil && v >= n {
		d.err = fmt.Errorf("%w: %s id %d out of range %d", ErrCorrupt, what, v, n)
		return 0
	}
	return v
}

func (d *decoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	d.crc.Write(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (d *decoder) boolByte() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return false
	}
	d.crc.Write([]byte{b})
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		d.err = fmt.Errorf("%w: bool byte %d", ErrCorrupt, b)
		return false
	}
}

// floats reads n exact float64 bit patterns in one bulk read (the E and
// A sections are hundreds of thousands of cells at scale; per-cell reads
// would dominate restore time). n is always derived from an
// already-validated count.
func (d *decoder) floats(n int) []float64 {
	if d.err != nil {
		return nil
	}
	raw := d.chunked(int64(n) * 8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

func (d *decoder) matrix(rows, cols int) *mat.Dense {
	if d.err != nil {
		return nil
	}
	data := d.floats(rows * cols)
	if d.err != nil {
		return nil
	}
	m, err := mat.NewDenseData(rows, cols, data)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	return m
}

// chunked reads exactly n bytes, growing the buffer geometrically but
// never past the bytes actually delivered (doubling, clamped to n): a
// forged length cannot preallocate more than ~2× what the stream really
// holds, and a genuine multi-megabyte section costs O(n) copying, not
// O(n²/chunk).
func (d *decoder) chunked(n int64) []byte {
	if d.err != nil {
		return nil
	}
	if d.sizeHint > 0 && n <= d.sizeHint {
		// The caller vouched the stream can hold n bytes, so a declared
		// length within that bound is safe to allocate in one piece.
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			d.err = fmt.Errorf("%w: bulk section: %v", ErrCorrupt, err)
			return nil
		}
		d.crc.Write(buf)
		return buf
	}
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for int64(len(buf)) < n {
		take := min(n-int64(len(buf)), chunk)
		if need := int64(len(buf)) + take; int64(cap(buf)) < need {
			grown := make([]byte, len(buf), min(max(2*int64(cap(buf)), need), n))
			copy(grown, buf)
			buf = grown
		}
		start := len(buf)
		buf = buf[:start+int(take)]
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			d.err = fmt.Errorf("%w: bulk section: %v", ErrCorrupt, err)
			return nil
		}
	}
	d.crc.Write(buf)
	return buf
}

// crcByteReader feeds single bytes to the varint reader while keeping the
// checksum in sync.
type crcByteReader struct{ d *decoder }

func (c crcByteReader) ReadByte() (byte, error) {
	b, err := c.d.r.ReadByte()
	if err == nil {
		c.d.crc.Write([]byte{b})
	}
	return b, err
}
