// Package checkpoint persists the derived trust model so a serving
// process can restart in milliseconds instead of replaying its whole
// history: a versioned, CRC-32C-checked binary bundle holding the
// dataset, the pipeline artifacts (Riggs results, expertise, affinity)
// and the event-log offset the model reflects, plus directory-level
// atomic-write/restore/prune/compact protocols built on it (see dir.go
// and compact.go, and DESIGN.md §8).
//
// Bundle layout (all integers varint-encoded unless noted):
//
//	magic "WOTCK001" (8 bytes)
//	format version (uvarint, currently 1)
//	config fingerprint (8 bytes little-endian; see core.Config.Fingerprint)
//	event-log offset the model reflects (uvarint)
//	event-log size observed at write time (uvarint, >= offset; how a
//	boot detects that the log was rewritten by compaction — see
//	Info.Resume)
//	dataset     byte length, then a ratings dataset image (the trusted
//	            bulk form — see ratings.AppendImage; integrity comes
//	            from this bundle's CRC, and decoding rebuilds the
//	            dataset's indexes without the validating Builder the
//	            generic snapshot path replays through, which is what
//	            makes restore-time O(bulk read) instead of
//	            O(map insert per record))
//	riggs       per category: review ids, qualities, rater ids,
//	            reputations, rating counts, iterations, converged flag
//	expertise   U·C float64 cells (8-byte little-endian bits, row-major)
//	affinity    U·C float64 cells
//	crc32c of everything after the magic (4 bytes little-endian)
//
// Floats are serialised as their exact IEEE-754 bits, and the
// derived-trust index (row sums, expert bitsets, packed expert lists and
// score columns) is deliberately NOT serialised: it is rebuilt from the
// decoded matrices by core.RehydrateArtifacts, which is
// bitwise-deterministic at any worker count. A restored model therefore
// serves values bitwise-identical to the Derive it checkpoints — pinned
// by the round-trip property tests.
//
// The decoder is hardened against corrupt or adversarial input: bulk
// sections are read through a chunk-growing buffer bounded by the bytes
// actually present, the embedded image applies the same
// remaining-bytes bound to every entity count, every later count is
// validated against the dataset's (now-decoded) dimensions before any
// allocation, and the trailing checksum rejects any surviving bit-rot.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"weboftrust"
	"weboftrust/internal/core"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
)

var (
	// ErrBadMagic reports a stream that is not a checkpoint.
	ErrBadMagic = errors.New("checkpoint: bad magic")
	// ErrBadVersion reports a checkpoint from an unknown format version.
	ErrBadVersion = errors.New("checkpoint: unsupported format version")
	// ErrChecksum reports checkpoint corruption caught by the CRC.
	ErrChecksum = errors.New("checkpoint: checksum mismatch")
	// ErrCorrupt reports a structurally invalid checkpoint (including a
	// torn tail from a crash mid-write: unlike the event log, a partial
	// checkpoint is worthless, so truncation is not distinguished).
	ErrCorrupt = errors.New("checkpoint: corrupt data")
	// ErrStale reports a checkpoint whose config fingerprint does not
	// match the options the caller is serving with; restoring it would
	// serve values a fresh Derive would not produce.
	ErrStale = errors.New("checkpoint: config fingerprint mismatch")
)

var magic = [8]byte{'W', 'O', 'T', 'C', 'K', '0', '0', '1'}

// formatVersion is bumped on any incompatible layout change.
const formatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxDatasetBytes caps the embedded snapshot's declared length. The
// snapshot is read through a chunk-growing buffer regardless, so a forged
// length under the cap still cannot allocate more than the bytes actually
// present — this bound just fails obvious garbage fast.
const maxDatasetBytes = 1 << 31

// Info locates a checkpoint against its event log.
type Info struct {
	// Offset is the event-log offset the model reflects — where tailing
	// resumes in the log the checkpoint was written against.
	Offset int64
	// LogSize is the log's size observed at write time (at least
	// Offset). A current log SMALLER than this proves the log was
	// rewritten since — compaction dropped the folded prefix — which is
	// what Resume keys on.
	LogSize int64
	// Path is the file the checkpoint was read from ("" for stream
	// reads).
	Path string
}

// Resume maps the checkpoint's recorded offset onto the log as it
// exists now. Normally the recorded offset is a position within the log
// and tailing resumes there; the log only ever grows, so its current
// size is at least the recorded LogSize. A current log SMALLER than the
// recorded size means the log was compacted at exactly this checkpoint
// (Compact swaps the folded prefix out from under the offset before it
// writes the rebased replacement; a crash in that window leaves this
// state): the log's remaining bytes are precisely the records after the
// checkpoint, so tailing resumes at 0. The rule is unambiguous because
// Compact deletes every other checkpoint before swapping the log — the
// only checkpoint that can observe a shrunken log is the one written at
// the compaction point itself, whose recorded size strictly exceeds the
// remainder it leaves behind (it folded a non-empty prefix).
func (in Info) Resume(currentLogSize int64) int64 {
	if currentLogSize < in.LogSize {
		return 0
	}
	return in.Offset
}

// Write serialises the model, the event-log offset it reflects, and the
// log size observed at that moment (pass offset itself when the size is
// unknown: the log held at least the bytes the model consumed, which is
// all Info.Resume needs from non-compaction checkpoints).
func Write(w io.Writer, m *weboftrust.TrustModel, offset, logSize int64) error {
	if m == nil {
		return fmt.Errorf("checkpoint: nil model")
	}
	if offset < 0 {
		return fmt.Errorf("checkpoint: negative offset %d", offset)
	}
	if logSize < offset {
		return fmt.Errorf("checkpoint: log size %d below offset %d", logSize, offset)
	}
	d, art := m.Dataset(), m.Artifacts()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	enc := &encoder{w: io.MultiWriter(bw, crc)}

	enc.uvarint(formatVersion)
	enc.fixed64(m.Fingerprint())
	enc.uvarint(uint64(offset))
	enc.uvarint(uint64(logSize))

	// Embedded dataset image, length-prefixed so the decoder can bound
	// the section before decoding it.
	img := ratings.AppendImage(nil, d)
	enc.uvarint(uint64(len(img)))
	enc.bytes(img)

	if len(art.RiggsResults) != d.NumCategories() {
		return fmt.Errorf("checkpoint: %d riggs results for %d categories",
			len(art.RiggsResults), d.NumCategories())
	}
	for c, cr := range art.RiggsResults {
		if cr == nil || len(cr.Quality) != len(cr.Reviews) ||
			len(cr.RaterRep) != len(cr.Raters) || len(cr.RaterCount) != len(cr.Raters) {
			return fmt.Errorf("checkpoint: malformed riggs result %d", c)
		}
		enc.uvarint(uint64(len(cr.Reviews)))
		for _, r := range cr.Reviews {
			enc.uvarint(uint64(r))
		}
		enc.floats(cr.Quality)
		enc.uvarint(uint64(len(cr.Raters)))
		for _, u := range cr.Raters {
			enc.uvarint(uint64(u))
		}
		enc.floats(cr.RaterRep)
		for _, n := range cr.RaterCount {
			enc.uvarint(uint64(n))
		}
		enc.uvarint(uint64(cr.Iterations))
		enc.boolByte(cr.Converged)
	}

	enc.matrix(art.Expertise, d.NumUsers(), d.NumCategories())
	enc.matrix(art.Affinity, d.NumUsers(), d.NumCategories())
	if enc.err != nil {
		return enc.err
	}

	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Read restores a model from r. opts must be the derive options the
// caller serves with: the recorded config fingerprint is checked against
// them (ErrStale on mismatch), and the derived-trust index is rebuilt
// under their worker setting. The returned offset is the event-log
// position the model reflects — the place to resume tailing from.
func Read(r io.Reader, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	return read(r, 0, opts...)
}

// read is Read with a total-size hint (0 = unknown): when the caller
// knows how many bytes the stream can possibly hold (ReadFile stats the
// file), bulk sections under that bound allocate exactly once instead of
// growing geometrically.
func read(r io.Reader, sizeHint int64, opts ...weboftrust.Option) (*weboftrust.TrustModel, Info, error) {
	servingFingerprint, err := weboftrust.Fingerprint(opts...)
	if err != nil {
		return nil, Info{}, err
	}

	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if m != magic {
		return nil, Info{}, ErrBadMagic
	}
	crc := crc32.New(castagnoli)
	dec := &decoder{r: br, crc: crc, sizeHint: sizeHint}

	if v := dec.uvarint(); dec.err == nil && v != formatVersion {
		return nil, Info{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	fingerprint := dec.fixed64()
	offset := dec.uvarint()
	logSize := dec.uvarint()
	if dec.err == nil && (offset > math.MaxInt64 || logSize > math.MaxInt64 || logSize < offset) {
		return nil, Info{}, fmt.Errorf("%w: offset %d / log size %d", ErrCorrupt, offset, logSize)
	}

	imgLen := dec.uvarint()
	if dec.err == nil && imgLen > maxDatasetBytes {
		return nil, Info{}, fmt.Errorf("%w: dataset section %d bytes too large", ErrCorrupt, imgLen)
	}
	img := dec.chunked(int64(imgLen))
	if dec.err != nil {
		return nil, Info{}, dec.err
	}
	d, err := ratings.DatasetFromImage(img)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: embedded dataset: %v", ErrCorrupt, err)
	}

	// Every count below is bounded by the validated dataset's dimensions
	// before any slice is allocated.
	numU, numC, numR := d.NumUsers(), d.NumCategories(), d.NumReviews()
	results := make([]*riggs.CategoryResult, numC)
	for c := range results {
		cr := &riggs.CategoryResult{Category: ratings.CategoryID(c)}
		nrev := int(dec.count("reviews", uint64(numR)))
		cr.Reviews = make([]ratings.ReviewID, nrev)
		for i := range cr.Reviews {
			cr.Reviews[i] = ratings.ReviewID(dec.id("review", uint64(numR)))
		}
		cr.Quality = dec.floats(nrev)
		nrat := int(dec.count("raters", uint64(numU)))
		cr.Raters = make([]ratings.UserID, nrat)
		for i := range cr.Raters {
			cr.Raters[i] = ratings.UserID(dec.id("rater", uint64(numU)))
		}
		cr.RaterRep = dec.floats(nrat)
		cr.RaterCount = make([]int, nrat)
		for i := range cr.RaterCount {
			cr.RaterCount[i] = int(dec.count("rater count", uint64(numR)))
		}
		cr.Iterations = int(dec.count("iterations", 1<<30))
		cr.Converged = dec.boolByte()
		if dec.err != nil {
			return nil, Info{}, dec.err
		}
		results[c] = cr
	}

	e := dec.matrix(numU, numC)
	a := dec.matrix(numU, numC)
	if dec.err != nil {
		return nil, Info{}, dec.err
	}

	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, Info{}, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if binary.LittleEndian.Uint32(sum[:]) != crc.Sum32() {
		return nil, Info{}, ErrChecksum
	}

	// Integrity is now established; only reject on staleness after the
	// bytes themselves are known good, so ErrStale reliably means "valid
	// checkpoint, different configuration".
	if fingerprint != servingFingerprint {
		return nil, Info{}, fmt.Errorf("%w: checkpoint %#x, serving config %#x",
			ErrStale, fingerprint, servingFingerprint)
	}

	// A nil Trust asks Restore to rebuild the derived-trust index from
	// the decoded matrices (core.RehydrateArtifacts, under the options'
	// worker setting) — the one place that rehydration logic lives.
	art := &core.Artifacts{RiggsResults: results, Expertise: e, Affinity: a}
	model, err := weboftrust.Restore(d, art, opts...)
	if err != nil {
		return nil, Info{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return model, Info{Offset: int64(offset), LogSize: int64(logSize)}, nil
}

type encoder struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) fixed64(v uint64) {
	if e.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	_, e.err = e.w.Write(e.buf[:8])
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) boolByte(b bool) {
	var v byte
	if b {
		v = 1
	}
	e.bytes([]byte{v})
}

func (e *encoder) floats(fs []float64) {
	for _, f := range fs {
		e.fixed64(math.Float64bits(f))
	}
}

func (e *encoder) matrix(m *mat.Dense, rows, cols int) {
	if e.err != nil {
		return
	}
	if m == nil || m.Rows() != rows || m.Cols() != cols {
		e.err = fmt.Errorf("checkpoint: matrix shape mismatch (want %dx%d)", rows, cols)
		return
	}
	for i := 0; i < rows; i++ {
		e.floats(m.Row(i))
	}
}

type decoder struct {
	r   *bufio.Reader
	crc io.Writer
	err error
	// sizeHint, when positive, bounds the stream's total length: bulk
	// sections no larger than it allocate exactly once.
	sizeHint int64
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(crcByteReader{d})
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	return v
}

// count reads a uvarint and rejects values above max before the caller
// allocates anything sized by it.
func (d *decoder) count(what string, max uint64) uint64 {
	v := d.uvarint()
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%w: %s count %d exceeds bound %d", ErrCorrupt, what, v, max)
		return 0
	}
	return v
}

// id reads a uvarint identifier and range-checks it against the dataset.
func (d *decoder) id(what string, n uint64) uint64 {
	v := d.uvarint()
	if d.err == nil && v >= n {
		d.err = fmt.Errorf("%w: %s id %d out of range %d", ErrCorrupt, what, v, n)
		return 0
	}
	return v
}

func (d *decoder) fixed64() uint64 {
	if d.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(d.r, buf[:]); err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0
	}
	d.crc.Write(buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (d *decoder) boolByte() bool {
	if d.err != nil {
		return false
	}
	b, err := d.r.ReadByte()
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return false
	}
	d.crc.Write([]byte{b})
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		d.err = fmt.Errorf("%w: bool byte %d", ErrCorrupt, b)
		return false
	}
}

// floats reads n exact float64 bit patterns in one bulk read (the E and
// A sections are hundreds of thousands of cells at scale; per-cell reads
// would dominate restore time). n is always derived from an
// already-validated count.
func (d *decoder) floats(n int) []float64 {
	if d.err != nil {
		return nil
	}
	raw := d.chunked(int64(n) * 8)
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

func (d *decoder) matrix(rows, cols int) *mat.Dense {
	if d.err != nil {
		return nil
	}
	data := d.floats(rows * cols)
	if d.err != nil {
		return nil
	}
	m, err := mat.NewDenseData(rows, cols, data)
	if err != nil {
		d.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return nil
	}
	return m
}

// chunked reads exactly n bytes, growing the buffer geometrically but
// never past the bytes actually delivered (doubling, clamped to n): a
// forged length cannot preallocate more than ~2× what the stream really
// holds, and a genuine multi-megabyte section costs O(n) copying, not
// O(n²/chunk).
func (d *decoder) chunked(n int64) []byte {
	if d.err != nil {
		return nil
	}
	if d.sizeHint > 0 && n <= d.sizeHint {
		// The caller vouched the stream can hold n bytes, so a declared
		// length within that bound is safe to allocate in one piece.
		buf := make([]byte, n)
		if _, err := io.ReadFull(d.r, buf); err != nil {
			d.err = fmt.Errorf("%w: bulk section: %v", ErrCorrupt, err)
			return nil
		}
		d.crc.Write(buf)
		return buf
	}
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for int64(len(buf)) < n {
		take := min(n-int64(len(buf)), chunk)
		if need := int64(len(buf)) + take; int64(cap(buf)) < need {
			grown := make([]byte, len(buf), min(max(2*int64(cap(buf)), need), n))
			copy(grown, buf)
			buf = grown
		}
		start := len(buf)
		buf = buf[:start+int(take)]
		if _, err := io.ReadFull(d.r, buf[start:]); err != nil {
			d.err = fmt.Errorf("%w: bulk section: %v", ErrCorrupt, err)
			return nil
		}
	}
	d.crc.Write(buf)
	return buf
}

// crcByteReader feeds single bytes to the varint reader while keeping the
// checksum in sync.
type crcByteReader struct{ d *decoder }

func (c crcByteReader) ReadByte() (byte, error) {
	b, err := c.d.r.ReadByte()
	if err == nil {
		c.d.crc.Write([]byte{b})
	}
	return b, err
}
