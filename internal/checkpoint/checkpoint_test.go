package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// smallDataset generates the Small synthetic community once per test
// binary.
func smallDataset(t testing.TB) *ratings.Dataset {
	t.Helper()
	cfg := synth.Small()
	cfg.Seed = 7
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// writeLog writes the dataset's events to a fresh log file and returns
// its path.
func writeLog(t testing.TB, dir string, d *ratings.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// modelsEqual asserts that every value the serving endpoints read —
// /v1/trust scores for all pairs, /v1/topk rankings, /v1/expertise
// profiles — is bitwise identical between two models.
func modelsEqual(t *testing.T, want, got *weboftrust.TrustModel) {
	t.Helper()
	wd, gd := want.Dataset(), got.Dataset()
	if wd.NumUsers() != gd.NumUsers() || wd.NumCategories() != gd.NumCategories() ||
		wd.NumReviews() != gd.NumReviews() || wd.NumRatings() != gd.NumRatings() {
		t.Fatalf("dataset shape differs: want %v, got %v", wd, gd)
	}
	numU := wd.NumUsers()
	for i := 0; i < numU; i++ {
		ui := weboftrust.UserID(i)
		we, ge := want.Expertise(ui), got.Expertise(ui)
		wa, ga := want.Affinity(ui), got.Affinity(ui)
		for c := range we {
			if we[c] != ge[c] {
				t.Fatalf("expertise[%d][%d]: want %v, got %v", i, c, we[c], ge[c])
			}
			if wa[c] != ga[c] {
				t.Fatalf("affinity[%d][%d]: want %v, got %v", i, c, wa[c], ga[c])
			}
		}
		for j := 0; j < numU; j++ {
			if w, g := want.Score(ui, weboftrust.UserID(j)), got.Score(ui, weboftrust.UserID(j)); w != g {
				t.Fatalf("score[%d][%d]: want %v, got %v", i, j, w, g)
			}
		}
		wt, gt := want.TopTrusted(ui, 10), got.TopTrusted(ui, 10)
		if len(wt) != len(gt) {
			t.Fatalf("topk[%d]: %d vs %d results", i, len(wt), len(gt))
		}
		for k := range wt {
			if wt[k] != gt[k] {
				t.Fatalf("topk[%d][%d]: want %+v, got %+v", i, k, wt[k], gt[k])
			}
		}
	}
	websEqual(t, want.WebOfTrust(), got.WebOfTrust())
}

// websEqual pins the restored (or restored-and-tailed) web-of-trust
// artifact bitwise against the fresh derive's: policy, generosity, every
// edge and weight, and the graph shape the propagation endpoints serve.
func websEqual(t *testing.T, want, got *weboftrust.Web) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("missing web artifact: want %v, got %v", want != nil, got != nil)
	}
	if want.Policy() != got.Policy() || want.NumUsers() != got.NumUsers() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("web shape: want %v %d/%d, got %v %d/%d",
			want.Policy(), want.NumUsers(), want.NumEdges(),
			got.Policy(), got.NumUsers(), got.NumEdges())
	}
	for u := 0; u < want.NumUsers(); u++ {
		uid := ratings.UserID(u)
		if want.Generosity(uid) != got.Generosity(uid) {
			t.Fatalf("generosity[%d]: want %v, got %v", u, want.Generosity(uid), got.Generosity(uid))
		}
		wTo, wW := want.Neighbors(uid)
		gTo, gW := got.Neighbors(uid)
		if len(wTo) != len(gTo) {
			t.Fatalf("web row %d: want %d edges, got %d", u, len(wTo), len(gTo))
		}
		for i := range wTo {
			if wTo[i] != gTo[i] || wW[i] != gW[i] {
				t.Fatalf("web row %d edge %d: want (%d, %v), got (%d, %v)",
					u, i, wTo[i], wW[i], gTo[i], gW[i])
			}
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := smallDataset(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, model, 12345, 20000); err != nil {
		t.Fatal(err)
	}
	restored, info, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Offset != 12345 || info.LogSize != 20000 {
		t.Fatalf("info = %+v, want offset 12345, log size 20000", info)
	}
	modelsEqual(t, model, restored)

	// Restored Riggs results answer the secondary queries too.
	wq, wok := model.ReviewQuality(0)
	gq, gok := restored.ReviewQuality(0)
	if wq != gq || wok != gok {
		t.Fatalf("review quality: want (%v, %v), got (%v, %v)", wq, wok, gq, gok)
	}
}

// TestRestoreTailEqualsFreshDerive is the PR's acceptance property: a
// checkpoint of a log prefix, restored and tailed through Update over the
// remaining events, serves values bitwise-identical to a from-scratch
// Derive over the whole log — at every worker-count combination for the
// checkpointing and restoring sides.
func TestRestoreTailEqualsFreshDerive(t *testing.T) {
	d := smallDataset(t)
	dir := t.TempDir()
	logPath := writeLog(t, dir, d)
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := store.ReadLogFrom(f, 0)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	full, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}

	for _, split := range []float64{0.5, 0.9, 1.0} {
		cut := int(float64(len(events)) * split)
		for _, wWrite := range []int{1, 4} {
			for _, wRead := range []int{1, 3, 0} {
				t.Run(fmt.Sprintf("split=%v/write=%d/read=%d", split, wWrite, wRead), func(t *testing.T) {
					// Derive the prefix model and checkpoint it.
					b := ratings.NewBuilder()
					if err := store.Replay(events[:cut], b); err != nil {
						t.Fatal(err)
					}
					prefix, err := weboftrust.Derive(b.Build(), weboftrust.WithWorkers(wWrite))
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := Write(&buf, prefix, int64(cut), int64(cut)); err != nil {
						t.Fatal(err)
					}

					// Restore under a different worker count and tail the rest.
					restored, info, err := Read(bytes.NewReader(buf.Bytes()), weboftrust.WithWorkers(wRead))
					if err != nil {
						t.Fatal(err)
					}
					if info.Offset != int64(cut) {
						t.Fatalf("offset = %d, want %d", info.Offset, cut)
					}
					model := restored
					if cut < len(events) {
						rb := ratings.NewBuilderFrom(restored.Dataset())
						if err := store.Replay(events[cut:], rb); err != nil {
							t.Fatal(err)
						}
						model, err = restored.Update(rb.Snapshot())
						if err != nil {
							t.Fatal(err)
						}
					}
					modelsEqual(t, full, model)
				})
			}
		}
	}
}

func TestReadRejectsStaleFingerprint(t *testing.T) {
	d := smallDataset(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, model, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, _, err = Read(bytes.NewReader(buf.Bytes()), weboftrust.WithoutExperienceDiscount())
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	// Worker count is not part of the fingerprint.
	if _, _, err := Read(bytes.NewReader(buf.Bytes()), weboftrust.WithWorkers(3)); err != nil {
		t.Fatalf("workers-only option rejected: %v", err)
	}
}

func TestReadRejectsDamage(t *testing.T) {
	d := smallDataset(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, model, 99, 99); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[0] ^= 0xff
		if _, _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[8] = 0x7f // version uvarint
		if _, _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		bad := bytes.Clone(raw)
		bad[len(bad)/2] ^= 0x10
		_, _, err := Read(bytes.NewReader(bad))
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want checksum or corrupt", err)
		}
	})
	t.Run("torn tail", func(t *testing.T) {
		for _, frac := range []int{4, 2, 1} {
			cut := len(raw) - len(raw)/frac
			if cut >= len(raw) {
				cut = len(raw) - 1
			}
			_, _, err := Read(bytes.NewReader(raw[:cut]))
			if err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
}

// TestForgedCountsFailFastWithoutAllocation hand-crafts headers declaring
// absurd section sizes and asserts decoding fails quickly and cleanly —
// the adversarial-input hardening the count caps exist for.
func TestForgedCountsFailFastWithoutAllocation(t *testing.T) {
	forge := func(f func(e *encoder)) []byte {
		var buf bytes.Buffer
		buf.Write(magic[:])
		e := &encoder{w: &buf}
		e.uvarint(formatVersion)
		e.fixed64(0)
		e.uvarint(0)
		e.uvarint(0)
		f(e)
		if e.err != nil {
			t.Fatal(e.err)
		}
		return buf.Bytes()
	}

	t.Run("huge dataset length", func(t *testing.T) {
		raw := forge(func(e *encoder) { e.uvarint(1 << 40) })
		if _, _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("dataset length beyond stream", func(t *testing.T) {
		// Under the cap, but the stream ends immediately: the chunked
		// reader must fail after reading what exists, not preallocate.
		raw := forge(func(e *encoder) { e.uvarint(1 << 28) })
		if _, _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("huge riggs review count", func(t *testing.T) {
		d := smallDataset(t)
		var snap bytes.Buffer
		if err := store.WriteSnapshot(&snap, d); err != nil {
			t.Fatal(err)
		}
		raw := forge(func(e *encoder) {
			e.uvarint(uint64(snap.Len()))
			e.bytes(snap.Bytes())
			e.uvarint(1 << 50) // reviews count for category 0
		})
		if _, _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestWriteDirRestorePrune(t *testing.T) {
	d := smallDataset(t)
	model, err := weboftrust.Derive(d)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpts")

	p1, err := WriteDir(dir, model, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WriteDir(dir, model, 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) >= filepath.Base(p2) {
		t.Fatalf("sequence not increasing: %s then %s", p1, p2)
	}

	_, info, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Path != p2 || info.Offset != 20 || info.LogSize != 25 {
		t.Fatalf("restored %+v, want %s at 20 (log size 25)", info, p2)
	}

	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p1); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("pruned file still present: %v", err)
	}
	if _, err := os.Stat(p2); err != nil {
		t.Fatalf("newest checkpoint pruned: %v", err)
	}

	if _, _, err := Restore(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := Restore(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

// TestInfoResume pins the log-rewrite detection rule, including the
// equality corner an offset-only rule got wrong: a remainder exactly as
// long as the folded prefix must still read as "compacted here".
func TestInfoResume(t *testing.T) {
	cases := []struct {
		name        string
		info        Info
		currentSize int64
		want        int64
	}{
		{"steady tail", Info{Offset: 100, LogSize: 150}, 150, 100},
		{"log grew", Info{Offset: 100, LogSize: 150}, 900, 100},
		{"checkpoint at log end", Info{Offset: 150, LogSize: 150}, 150, 150},
		{"compacted, empty remainder", Info{Offset: 100, LogSize: 150}, 0, 0},
		{"compacted, remainder equals folded prefix", Info{Offset: 100, LogSize: 200}, 100, 0},
		{"rebased post-compact", Info{Offset: 0, LogSize: 50}, 50, 0},
	}
	for _, c := range cases {
		if got := c.info.Resume(c.currentSize); got != c.want {
			t.Errorf("%s: Resume(%d) on %+v = %d, want %d", c.name, c.currentSize, c.info, got, c.want)
		}
	}
}

func TestParseSeq(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{fileName(42), 42, true},
		{fileName(1), 1, true},
		{"ckpt-0000000000000001.wck.tmp", 0, false},
		{"ckpt-.wck", 0, false},
		{"ckpt-abc.wck", 0, false},
		{"events.log", 0, false},
	}
	for _, c := range cases {
		seq, ok := parseSeq(c.name)
		if ok != c.ok || seq != c.seq {
			t.Errorf("parseSeq(%q) = (%d, %v), want (%d, %v)", c.name, seq, ok, c.seq, c.ok)
		}
	}
}
