package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
)

// CompactResult reports what Compact did.
type CompactResult struct {
	// Path is the final (offset-rebased) checkpoint holding the folded
	// prefix.
	Path string
	// FoldedEvents is how many log records were folded into the
	// checkpoint beyond what a restored checkpoint already carried.
	FoldedEvents int
	// FoldedBytes is the length of the log prefix removed from the log.
	FoldedBytes int64
	// RemainderBytes is what the log holds afterwards: 0 after a clean
	// compaction, or the torn final record preserved by -allow-truncated.
	RemainderBytes int64
	// Warm reports whether an existing checkpoint seeded the fold (only
	// the log suffix past it was replayed).
	Warm bool
}

// compactFault, when non-nil, can abort Compact after a named stage —
// the crash-consistency tests use it to materialise every intermediate
// on-disk state and prove each one boots to the same model.
var compactFault func(stage string) error

func faultAt(stage string) error {
	if compactFault != nil {
		return compactFault(stage)
	}
	return nil
}

// Compact folds the event log's complete prefix into a checkpoint in dir
// and removes that prefix from the log, bounding both boot time and log
// growth. It is an offline operation: no writer may be appending and no
// daemon tailing while it runs.
//
// The protocol is ordered so that an interruption at any point leaves a
// state that boots to the same model (see DESIGN.md §8):
//
//  1. Build the model for the log's complete prefix — restoring the
//     newest usable checkpoint and tailing from its offset when
//     possible, else replaying cold.
//  2. Write a checkpoint at the prefix-end offset and read it back to
//     verify it, so the log's information provably exists twice before
//     anything is deleted.
//  3. Delete every other checkpoint (they become ambiguous once the log
//     is rewritten) and stale temp files.
//  4. Atomically replace the log with its own suffix past the folded
//     prefix (usually empty; the torn tail survives under
//     allowTruncated).
//  5. Write the rebased replacement checkpoint (same model, offset 0).
//     A crash between 4 and 5 is covered by the Info.Resume rule. The
//     step-2 checkpoint is deliberately KEPT: after compaction it holds
//     the only other copy of the folded history (the log no longer has
//     it), it remains boot-safe under Info.Resume (its recorded log
//     size exceeds anything the rewritten log can shrink to until new
//     checkpoints supersede it), and a daemon's normal keep-N pruning
//     retires it once fresher checkpoints exist.
//
// A torn final record fails the whole compaction unless allowTruncated is
// set, in which case the intact prefix is folded and the torn bytes stay
// in the log for the writer to finish (mirroring trustctl ingest).
func Compact(logPath, dir string, allowTruncated bool, opts ...weboftrust.Option) (*CompactResult, error) {
	f, err := os.Open(logPath)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: compact: %w", err)
	}
	defer f.Close()

	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: compact: %w", err)
	}

	// Stage 1: model for the complete prefix, warm when a checkpoint
	// already covers part of it.
	model, goodOffset, folded, warm, err := loadPrefix(f, dir, allowTruncated, opts...)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := faultAt("fold"); err != nil {
		return nil, err
	}

	// Stage 2: the prefix now exists in checkpoint form; verify before
	// deleting anything.
	// The recorded log size is the true pre-swap size: it strictly
	// exceeds whatever remainder the swap leaves behind whenever a
	// non-empty prefix is folded, which is exactly what Info.Resume
	// needs to recognise the crash window between stages 4 and 5.
	foldPath, err := WriteDir(dir, model, goodOffset, st.Size())
	if err != nil {
		return nil, err
	}
	if _, _, err := ReadFile(foldPath, opts...); err != nil {
		return nil, fmt.Errorf("checkpoint: compact: verify %s: %w", foldPath, err)
	}
	if err := faultAt("checkpoint"); err != nil {
		return nil, err
	}

	// Stage 3: older checkpoints would be ambiguous against the rewritten
	// log; remove them while the log still matches their offsets.
	if err := Prune(dir, 1); err != nil {
		return nil, err
	}
	if err := RemoveTemps(dir); err != nil {
		return nil, err
	}
	if err := faultAt("prune"); err != nil {
		return nil, err
	}

	// Stage 4: swap the log for its suffix past the fold.
	if _, err := f.Seek(goodOffset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("checkpoint: compact: %w", err)
	}
	remainder, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: compact: read remainder: %w", err)
	}
	if err := replaceFile(logPath, remainder); err != nil {
		return nil, err
	}
	if err := faultAt("swap"); err != nil {
		return nil, err
	}

	// Stage 5: rebase — same model, offset 0 against the rewritten log.
	finalPath, err := WriteDir(dir, model, 0, int64(len(remainder)))
	if err != nil {
		return nil, err
	}
	if _, _, err := ReadFile(finalPath, opts...); err != nil {
		return nil, fmt.Errorf("checkpoint: compact: verify %s: %w", finalPath, err)
	}

	return &CompactResult{
		Path:           finalPath,
		FoldedEvents:   folded,
		FoldedBytes:    goodOffset,
		RemainderBytes: int64(len(remainder)),
		Warm:           warm,
	}, nil
}

// loadPrefix builds the model reflecting the log's complete prefix,
// restoring the newest usable checkpoint in dir and tailing from its
// (rebased) offset when possible, else replaying cold. It returns the
// model, the byte offset the intact prefix ends at, how many records
// were replayed, and whether a checkpoint seeded the load. A torn final
// record fails the load unless allowTruncated is set.
func loadPrefix(f *os.File, dir string, allowTruncated bool, opts ...weboftrust.Option) (*weboftrust.TrustModel, int64, int, bool, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, false, err
	}
	model, info, restoreErr := Restore(dir, opts...)
	warm := restoreErr == nil
	var resume int64
	if warm {
		resume = info.Resume(st.Size())
	} else if !errors.Is(restoreErr, ErrNoCheckpoint) {
		return nil, 0, 0, false, restoreErr
	}

	events, goodOffset, err := store.ReadLogFrom(f, resume)
	if err != nil {
		if !errors.Is(err, store.ErrTruncated) {
			return nil, 0, 0, false, fmt.Errorf("read log: %w", err)
		}
		if !allowTruncated {
			return nil, 0, 0, false, fmt.Errorf("%w (re-run with truncation allowed to fold the intact prefix)", err)
		}
	}
	if len(events) > 0 || !warm {
		var builder *ratings.Builder
		if warm {
			builder = ratings.NewBuilderFrom(model.Dataset())
		} else {
			builder = ratings.NewBuilder()
		}
		if err := store.Replay(events, builder); err != nil {
			return nil, 0, 0, false, err
		}
		if warm {
			model, err = model.Update(builder.Snapshot())
		} else {
			model, err = weboftrust.Derive(builder.Snapshot(), opts...)
		}
		if err != nil {
			return nil, 0, 0, false, err
		}
	}
	return model, goodOffset, len(events), warm, nil
}

// WriteResult reports what WriteFromLog did.
type WriteResult struct {
	// Path is the checkpoint written.
	Path string
	// Offset is the event-log offset it reflects (the end of the log's
	// intact prefix).
	Offset int64
	// TailedEvents is how many records were replayed beyond what a
	// restored checkpoint already carried.
	TailedEvents int
	// Warm reports whether an existing checkpoint seeded the build.
	Warm bool
}

// WriteFromLog folds the event log's complete prefix into a new
// checkpoint in dir without touching the log or the other checkpoints —
// the offline warm-start builder behind `trustctl checkpoint`. Like
// Compact it is warm when dir already holds a usable checkpoint: only the
// log suffix past it is replayed.
func WriteFromLog(logPath, dir string, allowTruncated bool, opts ...weboftrust.Option) (*WriteResult, error) {
	f, err := os.Open(logPath)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	model, goodOffset, tailed, warm, err := loadPrefix(f, dir, allowTruncated, opts...)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path, err := WriteDir(dir, model, goodOffset, st.Size())
	if err != nil {
		return nil, err
	}
	return &WriteResult{Path: path, Offset: goodOffset, TailedEvents: tailed, Warm: warm}, nil
}

// replaceFile atomically replaces path's contents via a same-directory
// temp file, fsync and rename.
func replaceFile(path string, contents []byte) error {
	tmp := path + ".compact.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	if _, err := f.Write(contents); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: compact: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}
