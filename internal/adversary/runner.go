package adversary

import (
	"fmt"
	"io"

	"weboftrust"
	"weboftrust/internal/anomaly"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
	"weboftrust/internal/synth"
	"weboftrust/internal/tables"
)

// The propagation algorithms every scenario measures inflation under.
var measuredAlgos = []weboftrust.PropagationAlgo{
	weboftrust.PropagateAppleseed,
	weboftrust.PropagateMoleTrust,
	weboftrust.PropagateTidalTrust,
}

// Runner executes scenarios against cached clean baselines. The zero
// value is not ready; use NewRunner.
type Runner struct {
	// TopKSources is how many honest users' TopTrusted(10) lists the
	// exposure metric samples (deterministically: lowest ids first).
	TopKSources int
	// PropSources is how many honest sources the per-algorithm
	// propagation-inflation metric averages over.
	PropSources int
	// DeriveOpts are applied to every Derive (clean baseline and attacked
	// model alike), so scenarios can be replayed against the serving
	// tier's configuration — percolation pruning, truncated walks.
	DeriveOpts []weboftrust.Option
	// Landmarks, when positive, measures propagation inflation through
	// the landmark-sketch composition (`?approx=landmark` serving mode)
	// with this many landmarks instead of exact traversals — pinning that
	// attack signals survive the approximation.
	Landmarks int

	baselines map[string]*baseline
}

// baseline caches one synth preset's clean community and derived model,
// shared across every scenario in a suite that uses the same preset.
type baseline struct {
	d     *ratings.Dataset
	model *weboftrust.TrustModel
	ranks []float64
}

// NewRunner returns a Runner with the default sampling sizes.
func NewRunner() *Runner {
	return &Runner{TopKSources: 100, PropSources: 15, baselines: make(map[string]*baseline)}
}

// AttackResult is one cohort's measured impact.
type AttackResult struct {
	Kind       string  `json:"kind"`
	Size       int     `json:"size"`
	Activity   int     `json:"activity"`
	Camouflage float64 `json:"camouflage"`

	Beneficiary int `json:"beneficiary"` // -1 when none
	Victim      int `json:"victim"`      // -1 when none

	// EigenTrust leaderboard positions (1 = most trusted), as /v1/rank
	// serves them. CleanRank is 0 for injected beneficiaries (no clean
	// identity to rank).
	CleanRank    int `json:"clean_rank,omitempty"`
	AttackedRank int `json:"attacked_rank,omitempty"`
	RankLift     int `json:"rank_lift,omitempty"`

	VictimCleanRank    int `json:"victim_clean_rank,omitempty"`
	VictimAttackedRank int `json:"victim_attacked_rank,omitempty"`
	VictimRankDrop     int `json:"victim_rank_drop,omitempty"`

	// Fraction of sampled honest users whose TopTrusted(10) list carries
	// the beneficiary, clean vs attacked.
	TopKExposureClean    float64 `json:"topk_exposure_clean"`
	TopKExposureAttacked float64 `json:"topk_exposure_attacked"`

	// Mean personalised trust honest sources assign the beneficiary,
	// per propagation algorithm: attacked minus clean.
	PropagationInflation map[string]float64 `json:"propagation_inflation,omitempty"`

	// Same delta for the victim — slander should drive it negative.
	VictimPropagationChange map[string]float64 `json:"victim_propagation_change,omitempty"`

	// Median anomaly score of this cohort's attackers.
	AttackerAnomalyMedian float64 `json:"attacker_anomaly_median"`
}

// ScenarioResult is one scenario's full measurement plus its verdict.
type ScenarioResult struct {
	Name          string         `json:"name"`
	Base          string         `json:"base"`
	Seed          uint64         `json:"seed"`
	CleanUsers    int            `json:"clean_users"`
	AttackedUsers int            `json:"attacked_users"`
	Attacks       []AttackResult `json:"attacks"`

	// Community-level anomaly statistics over the attacked dataset.
	HonestAnomalyMedian        float64 `json:"honest_anomaly_median"`
	AttackerAnomalyMedian      float64 `json:"attacker_anomaly_median"`
	AnomalySeparation          float64 `json:"anomaly_separation"`
	AttackersAboveHonestMedian float64 `json:"attackers_above_honest_median"`

	Failures []string `json:"failures,omitempty"`
	Passed   bool     `json:"passed"`
}

// Report aggregates a suite run, in scenario order — the JSON artifact
// CI publishes for trend tracking.
type Report struct {
	Scenarios []*ScenarioResult `json:"scenarios"`
	Passed    bool              `json:"passed"`
}

func (r *Runner) baseline(sc *Scenario) (*baseline, error) {
	key := sc.Base
	if b, ok := r.baselines[key]; ok {
		return b, nil
	}
	cfg, err := sc.BaseConfig()
	if err != nil {
		return nil, err
	}
	d, _, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	model, err := weboftrust.Derive(d, r.DeriveOpts...)
	if err != nil {
		return nil, err
	}
	ranks, _, err := model.GlobalRanks()
	if err != nil {
		return nil, err
	}
	b := &baseline{d: d, model: model, ranks: ranks}
	r.baselines[key] = b
	return b, nil
}

// Run executes one scenario: inject, re-derive, measure, assert.
func (r *Runner) Run(sc *Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	base, err := r.baseline(sc)
	if err != nil {
		return nil, err
	}
	attackedD, cohorts, err := Inject(base.d, sc.Attacks, sc.Seed)
	if err != nil {
		return nil, err
	}
	attacked, err := weboftrust.Derive(attackedD, r.DeriveOpts...)
	if err != nil {
		return nil, err
	}
	attackedRanks, _, err := attacked.GlobalRanks()
	if err != nil {
		return nil, err
	}

	res := &ScenarioResult{
		Name:          sc.Name,
		Base:          sc.Base,
		Seed:          sc.Seed,
		CleanUsers:    base.d.NumUsers(),
		AttackedUsers: attackedD.NumUsers(),
	}

	// Anomaly statistics over the attacked community, scored against the
	// web the serving tier would derive from it.
	scores := anomaly.Compute(attackedD, attacked.WebOfTrust().Graph())
	totals := scores.Total()
	honest := totals[:base.d.NumUsers()]
	res.HonestAnomalyMedian = stats.Quantile(honest, 0.5)
	var allAttackers []ratings.UserID
	for _, c := range cohorts {
		allAttackers = append(allAttackers, c.Attackers...)
	}
	attackerScores := make([]float64, 0, len(allAttackers))
	above := 0
	for _, a := range allAttackers {
		attackerScores = append(attackerScores, totals[a])
		if totals[a] > res.HonestAnomalyMedian {
			above++
		}
	}
	res.AttackerAnomalyMedian = stats.Quantile(attackerScores, 0.5)
	res.AnomalySeparation = res.AttackerAnomalyMedian - res.HonestAnomalyMedian
	if len(allAttackers) > 0 {
		res.AttackersAboveHonestMedian = float64(above) / float64(len(allAttackers))
	}

	// Per-algorithm propagation vectors from sampled honest sources are
	// shared by every cohort, so compute them once per model.
	cleanProp := r.propagationMeans(base.model, base.ranks, base.d.NumUsers())
	attackedProp := r.propagationMeans(attacked, attackedRanks, base.d.NumUsers())

	for _, c := range cohorts {
		ar := AttackResult{
			Kind:        string(c.Spec.Kind),
			Size:        c.Spec.Size,
			Activity:    c.Spec.Activity,
			Camouflage:  c.Spec.Camouflage,
			Beneficiary: int(c.Beneficiary),
			Victim:      int(c.Victim),
		}
		cohortScores := make([]float64, 0, len(c.Attackers))
		for _, a := range c.Attackers {
			cohortScores = append(cohortScores, totals[a])
		}
		ar.AttackerAnomalyMedian = stats.Quantile(cohortScores, 0.5)

		if b := c.Beneficiary; b != ratings.NoUser {
			ar.AttackedRank = rankOf(attackedRanks, b)
			if int(b) < base.d.NumUsers() {
				ar.CleanRank = rankOf(base.ranks, b)
				ar.RankLift = ar.CleanRank - ar.AttackedRank
				ar.TopKExposureClean = r.topKExposure(base.model, b, base.d.NumUsers())
			}
			ar.TopKExposureAttacked = r.topKExposure(attacked, b, base.d.NumUsers())
			ar.PropagationInflation = make(map[string]float64, len(measuredAlgos))
			for _, algo := range measuredAlgos {
				clean := 0.0
				if int(b) < base.d.NumUsers() {
					clean = cleanProp[algo][b]
				}
				ar.PropagationInflation[algo.String()] = attackedProp[algo][b] - clean
			}
		}
		if v := c.Victim; v != ratings.NoUser {
			ar.VictimCleanRank = rankOf(base.ranks, v)
			ar.VictimAttackedRank = rankOf(attackedRanks, v)
			ar.VictimRankDrop = ar.VictimAttackedRank - ar.VictimCleanRank
			ar.VictimPropagationChange = make(map[string]float64, len(measuredAlgos))
			for _, algo := range measuredAlgos {
				ar.VictimPropagationChange[algo.String()] = attackedProp[algo][v] - cleanProp[algo][v]
			}
		}
		res.Attacks = append(res.Attacks, ar)
	}

	res.Failures = sc.Assert.check(res)
	res.Passed = len(res.Failures) == 0
	return res, nil
}

// RunSuite runs every scenario and aggregates the verdict.
func (r *Runner) RunSuite(scs []*Scenario) (*Report, error) {
	rep := &Report{Passed: true}
	for _, sc := range scs {
		res, err := r.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, res)
		rep.Passed = rep.Passed && res.Passed
	}
	return rep, nil
}

// rankOf converts a global trust vector into u's leaderboard position,
// with exactly the tie-break /v1/rank serves: 1 + the number of users
// strictly above, counting equal scores with lower ids as above.
func rankOf(vec []float64, u ratings.UserID) int {
	s := vec[u]
	pos := 1
	for id, v := range vec {
		if v > s || (v == s && ratings.UserID(id) < u) {
			pos++
		}
	}
	return pos
}

// topKExposure measures how often the beneficiary appears in sampled
// honest users' top-10 trusted lists (the /v1/topk surface).
func (r *Runner) topKExposure(m *weboftrust.TrustModel, b ratings.UserID, honestUsers int) float64 {
	n := min(r.TopKSources, honestUsers)
	if n == 0 {
		return 0
	}
	hits, sources := 0, 0
	for u := 0; u < n; u++ {
		if ratings.UserID(u) == b {
			continue
		}
		sources++
		for _, rk := range m.TopTrusted(ratings.UserID(u), 10) {
			if rk.User == b {
				hits++
				break
			}
		}
	}
	if sources == 0 {
		return 0
	}
	return float64(hits) / float64(sources)
}

// propagationMeans computes, per algorithm, the mean personalised trust
// vector over the first PropSources honest sources — one propagation per
// (algo, source), shared across cohorts. In landmark mode (Landmarks > 0)
// each source's vector is the landmark-sketch composition over the
// model's rank vector — the `?approx=landmark` serving mode — so the
// inflation assertions measure what an approximating cluster would see.
func (r *Runner) propagationMeans(m *weboftrust.TrustModel, ranks []float64, honestUsers int) map[weboftrust.PropagationAlgo][]float64 {
	n := min(r.PropSources, honestUsers)
	numU := m.Dataset().NumUsers()
	var ids []int32
	if r.Landmarks > 0 {
		ids = weboftrust.SelectLandmarkIDs(ranks, r.Landmarks)
	}
	out := make(map[weboftrust.PropagationAlgo][]float64, len(measuredAlgos))
	dst := make([]float64, numU)
	for _, algo := range measuredAlgos {
		var sk *weboftrust.LandmarkSketch
		if r.Landmarks > 0 {
			var err error
			if sk, err = m.BuildLandmarkSketch(algo, ids); err != nil {
				continue
			}
		}
		mean := make([]float64, numU)
		for src := 0; src < n; src++ {
			var err error
			if sk != nil {
				err = m.ComposeLandmarks(sk, ratings.UserID(src), dst)
			} else {
				err = m.PropagateExactInto(algo, ratings.UserID(src), dst)
			}
			if err != nil {
				continue
			}
			for i, v := range dst {
				mean[i] += v
			}
		}
		if n > 0 {
			for i := range mean {
				mean[i] /= float64(n)
			}
		}
		out[algo] = mean
	}
	return out
}

// check evaluates every pinned assertion against the measurements,
// returning one failure string per violated bound.
func (a Assertions) check(res *ScenarioResult) []string {
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	for _, ar := range res.Attacks {
		if ar.Beneficiary >= 0 {
			existing := ar.Beneficiary < res.CleanUsers
			if a.MinBeneficiaryRankLift != nil && existing && ar.RankLift < *a.MinBeneficiaryRankLift {
				failf("%s: beneficiary %d rank lift %d < %d", ar.Kind, ar.Beneficiary, ar.RankLift, *a.MinBeneficiaryRankLift)
			}
			if a.MaxBeneficiaryRank != nil && ar.AttackedRank > *a.MaxBeneficiaryRank {
				failf("%s: beneficiary %d attacked rank %d > %d", ar.Kind, ar.Beneficiary, ar.AttackedRank, *a.MaxBeneficiaryRank)
			}
			if a.MinTopKExposureGain != nil && ar.TopKExposureAttacked-ar.TopKExposureClean < *a.MinTopKExposureGain {
				failf("%s: beneficiary %d topk exposure gain %.3f < %.3f", ar.Kind, ar.Beneficiary,
					ar.TopKExposureAttacked-ar.TopKExposureClean, *a.MinTopKExposureGain)
			}
			for algo, minInfl := range a.MinPropagationInflation {
				if got, ok := ar.PropagationInflation[algo]; ok && got < minInfl {
					failf("%s: beneficiary %d %s inflation %.4f < %.4f", ar.Kind, ar.Beneficiary, algo, got, minInfl)
				}
			}
		}
		if ar.Victim >= 0 {
			if a.MinVictimRankDrop != nil && ar.VictimRankDrop < *a.MinVictimRankDrop {
				failf("%s: victim %d rank drop %d < %d", ar.Kind, ar.Victim, ar.VictimRankDrop, *a.MinVictimRankDrop)
			}
			for algo, maxChange := range a.MaxVictimPropagationChange {
				if got, ok := ar.VictimPropagationChange[algo]; ok && got > maxChange {
					failf("%s: victim %d %s change %.4f > %.4f", ar.Kind, ar.Victim, algo, got, maxChange)
				}
			}
		}
	}
	if a.MinAnomalySeparation != nil && res.AnomalySeparation < *a.MinAnomalySeparation {
		failf("anomaly separation %.3f < %.3f", res.AnomalySeparation, *a.MinAnomalySeparation)
	}
	if a.MinAttackersAboveHonestMedian != nil && res.AttackersAboveHonestMedian < *a.MinAttackersAboveHonestMedian {
		failf("attackers above honest median %.3f < %.3f", res.AttackersAboveHonestMedian, *a.MinAttackersAboveHonestMedian)
	}
	return fails
}

// Render writes the scenario's measurements as tables, in the style of
// internal/experiments.
func (res *ScenarioResult) Render(w io.Writer) error {
	t := tables.New("Attack", "Size", "Rank clean→attacked", "Lift", "TopK exposure", "Anomaly median").
		Title(fmt.Sprintf("Scenario %s (base %s, %d→%d users)", res.Name, res.Base, res.CleanUsers, res.AttackedUsers)).
		AlignRight(1, 3)
	for _, ar := range res.Attacks {
		rank, lift := "—", "—"
		switch {
		case ar.Beneficiary >= 0 && ar.CleanRank > 0:
			rank = fmt.Sprintf("%d→%d", ar.CleanRank, ar.AttackedRank)
			lift = fmt.Sprintf("%+d", ar.RankLift)
		case ar.Beneficiary >= 0:
			rank = fmt.Sprintf("new→%d", ar.AttackedRank)
		case ar.Victim >= 0:
			rank = fmt.Sprintf("%d→%d", ar.VictimCleanRank, ar.VictimAttackedRank)
			lift = fmt.Sprintf("%+d", -ar.VictimRankDrop)
		}
		t.AddRow(ar.Kind, ar.Size, rank, lift,
			fmt.Sprintf("%.2f→%.2f", ar.TopKExposureClean, ar.TopKExposureAttacked),
			ar.AttackerAnomalyMedian)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	a := tables.New("Honest median", "Attacker median", "Separation", "Attackers above median", "Verdict").
		Title("Anomaly detection")
	verdict := "PASS"
	if !res.Passed {
		verdict = "FAIL"
	}
	a.AddRow(res.HonestAnomalyMedian, res.AttackerAnomalyMedian, res.AnomalySeparation,
		tables.Percent(res.AttackersAboveHonestMedian), verdict)
	if err := a.Render(w); err != nil {
		return err
	}
	for _, f := range res.Failures {
		if _, err := fmt.Fprintf(w, "  FAIL: %s\n", f); err != nil {
			return err
		}
	}
	return nil
}
