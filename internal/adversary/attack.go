// Package adversary generates adversarial cohorts inside synthetic
// review communities and measures how the derived web of trust and its
// serving tier resist them (DESIGN.md §13).
//
// The package has two layers: attack generators (this file) inject
// seeded, deterministic attacker cohorts — collusion rings, ballot-
// stuffing sybil farms, slandering cliques, self-promoting experts —
// into any existing dataset, composably; the scenario runner
// (scenario.go, runner.go) loads declarative scenario suites, replays
// them against a clean baseline and emits resistance metrics.
package adversary

import (
	"fmt"
	"math/rand/v2"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// Kind names an attack family.
type Kind string

// The attack families (the classic recommendation-trust gaming moves,
// instantiated on the paper's rating substrate).
const (
	// CollusionRing: a clique of new accounts that review prolifically
	// and rate each other's reviews 5-star, with mutual explicit-trust
	// edges — manufactured reciprocal expertise.
	CollusionRing Kind = "collusion-ring"
	// SybilFarm: disposable accounts that each spend their whole rating
	// budget 5-starring one existing beneficiary's reviews (ballot
	// stuffing) and trust-listing them.
	SybilFarm Kind = "sybil-farm"
	// SlanderClique: coordinated accounts that 1-star one existing
	// victim's reviews to destroy their derived expertise.
	SlanderClique Kind = "slander-clique"
	// SelfPromotion: one "expert" account mass-produces low-effort
	// reviews while its sock puppets 5-star and trust-list it.
	SelfPromotion Kind = "self-promotion"
)

// Spec parameterises one attack. Attacks are composable: Inject applies
// a list of specs to one dataset, each with its own derived seed.
type Spec struct {
	Kind Kind `json:"kind"`
	// Size is the cohort size: accounts injected by this attack.
	Size int `json:"size"`
	// Activity scales per-attacker effort: reviews written per ring
	// member or promoter, ratings fired per sybil or slanderer.
	Activity int `json:"activity"`
	// Camouflage in [0, 1) is the fraction of each attacker's actions
	// spent mimicking honest behavior (rating random honest reviews near
	// the category mean, trusting random honest users) to dilute their
	// signal.
	Camouflage float64 `json:"camouflage"`
	// Target pins the beneficiary (sybil-farm) or victim
	// (slander-clique) to an explicit user id; nil auto-picks the most
	// prolific honest writer not already auto-picked.
	Target *int `json:"target,omitempty"`
}

// Validate rejects malformed specs.
func (s Spec) Validate() error {
	switch s.Kind {
	case CollusionRing, SelfPromotion:
		if s.Size < 2 {
			return fmt.Errorf("adversary: %s needs size >= 2, got %d", s.Kind, s.Size)
		}
	case SybilFarm, SlanderClique:
		if s.Size < 1 {
			return fmt.Errorf("adversary: %s needs size >= 1, got %d", s.Kind, s.Size)
		}
	default:
		return fmt.Errorf("adversary: unknown attack kind %q", s.Kind)
	}
	if s.Activity < 1 {
		return fmt.Errorf("adversary: %s needs activity >= 1, got %d", s.Kind, s.Activity)
	}
	if s.Camouflage < 0 || s.Camouflage >= 1 {
		return fmt.Errorf("adversary: camouflage %v outside [0, 1)", s.Camouflage)
	}
	return nil
}

// Cohort records one injected attack's membership, for assertions and
// anomaly evaluation.
type Cohort struct {
	Spec      Spec
	Attackers []ratings.UserID // accounts this attack created
	// Beneficiary is the user the attack boosts (the sybil farm's
	// target, the ring's first member, the self-promoter);
	// ratings.NoUser when the attack has none.
	Beneficiary ratings.UserID
	// Victim is the user the attack suppresses; ratings.NoUser when none.
	Victim ratings.UserID
}

// Inject applies the attacks to d in order and returns the attacked
// dataset plus one cohort per spec. The input dataset is not modified.
// Injection is seed-deterministic: the same (dataset, specs, seed)
// produce a byte-identical dataset; each spec derives an independent
// sub-seed so one attack's randomness does not perturb the others'.
func Inject(d *ratings.Dataset, specs []Spec, seed uint64) (*ratings.Dataset, []Cohort, error) {
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, nil, fmt.Errorf("attack %d: %w", i, err)
		}
	}
	inj := &injector{
		base:    d,
		b:       ratings.NewBuilderFrom(d),
		catMean: categoryMeans(d),
	}
	cohorts := make([]Cohort, 0, len(specs))
	for i, s := range specs {
		rng := stats.NewRand(seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
		var c Cohort
		var err error
		switch s.Kind {
		case CollusionRing:
			c, err = inj.collusionRing(rng, s)
		case SybilFarm:
			c, err = inj.sybilFarm(rng, s)
		case SlanderClique:
			c, err = inj.slanderClique(rng, s)
		case SelfPromotion:
			c, err = inj.selfPromotion(rng, s)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("attack %d (%s): %w", i, s.Kind, err)
		}
		cohorts = append(cohorts, c)
	}
	return inj.b.Snapshot(), cohorts, nil
}

// injector carries the shared state of one Inject call.
type injector struct {
	base    *ratings.Dataset // the clean community; honest ids < base.NumUsers()
	b       *ratings.Builder
	catMean []float64
	// autoPicks counts targets chosen automatically, so composed attacks
	// pick distinct honest targets deterministically.
	autoPicks int
}

// categoryMeans returns each category's mean rating in d (the value
// camouflage ratings imitate), defaulting to mid-scale.
func categoryMeans(d *ratings.Dataset) []float64 {
	count := make([]int, d.NumCategories())
	sum := make([]float64, d.NumCategories())
	for _, rt := range d.Ratings() {
		c := d.Review(rt.Review).Category
		count[c]++
		sum[c] += rt.Value
	}
	means := make([]float64, d.NumCategories())
	for c := range means {
		if count[c] > 0 {
			means[c] = sum[c] / float64(count[c])
		} else {
			means[c] = 0.6
		}
	}
	return means
}

// pickTarget resolves an attack's honest target: the explicit id when
// pinned, else the (autoPicks+1)-th most prolific honest writer (review
// count desc, id asc).
func (inj *injector) pickTarget(s Spec) (ratings.UserID, error) {
	if s.Target != nil {
		id := *s.Target
		if id < 0 || id >= inj.base.NumUsers() {
			return 0, fmt.Errorf("target %d outside the honest community [0, %d)", id, inj.base.NumUsers())
		}
		u := ratings.UserID(id)
		if len(inj.base.ReviewsByWriter(u)) == 0 {
			return 0, fmt.Errorf("target %d has no reviews to attack", id)
		}
		return u, nil
	}
	u, reviews := inj.nthWriter(inj.autoPicks)
	if reviews == 0 {
		return 0, fmt.Errorf("no honest writer with reviews left to target")
	}
	inj.autoPicks++
	return u, nil
}

// nthWriter returns the honest writer with the (n+1)-th most reviews
// (ties by ascending id) and that review count, or (0, 0) when fewer
// than n+1 writers exist.
func (inj *injector) nthWriter(n int) (ratings.UserID, int) {
	type wc struct {
		u ratings.UserID
		c int
	}
	// Top-(n+1) by insertion; n is one per composed attack, so tiny.
	top := make([]wc, 0, n+1)
	for u := 0; u < inj.base.NumUsers(); u++ {
		c := len(inj.base.ReviewsByWriter(ratings.UserID(u)))
		if c == 0 {
			continue
		}
		pos := len(top)
		for pos > 0 && top[pos-1].c < c {
			pos--
		}
		if pos > n {
			continue
		}
		top = append(top, wc{})
		copy(top[pos+1:], top[pos:])
		top[pos] = wc{u: ratings.UserID(u), c: c}
		if len(top) > n+1 {
			top = top[:n+1]
		}
	}
	if n >= len(top) {
		return 0, 0
	}
	return top[n].u, top[n].c
}

// addAttackers registers size new accounts with a deterministic name
// prefix and returns their ids.
func (inj *injector) addAttackers(prefix string, size int) []ratings.UserID {
	ids := make([]ratings.UserID, size)
	for j := range ids {
		ids[j] = inj.b.AddUser(fmt.Sprintf("%s%d", prefix, inj.b.NumUsers()))
	}
	return ids
}

// attackCategory picks the category the attack concentrates in: the one
// with the most reviews (expertise there is worth the most).
func (inj *injector) attackCategory() ratings.CategoryID {
	best, bestN := ratings.CategoryID(0), -1
	for c := 0; c < inj.base.NumCategories(); c++ {
		if n := len(inj.base.ReviewsInCategory(ratings.CategoryID(c))); n > bestN {
			best, bestN = ratings.CategoryID(c), n
		}
	}
	return best
}

// writeReviews has writer author n low-effort reviews (one fresh object
// each) in category c, returning the review ids.
func (inj *injector) writeReviews(writer ratings.UserID, c ratings.CategoryID, n int) ([]ratings.ReviewID, error) {
	out := make([]ratings.ReviewID, 0, n)
	for i := 0; i < n; i++ {
		obj, err := inj.b.AddObject(c, "")
		if err != nil {
			return nil, err
		}
		rid, err := inj.b.AddReview(writer, obj)
		if err != nil {
			return nil, err
		}
		out = append(out, rid)
	}
	return out, nil
}

// camouflage spends mimicry actions for one attacker: after the
// attacker performed attackActs attack ratings and attackTrust attack
// trust edges, it adds enough honest-looking ratings (random honest
// reviews, valued near the category mean) to make camouflage the q
// fraction of total rating actions, plus proportionally many trust
// edges toward random honest users.
func (inj *injector) camouflage(rng *rand.Rand, attacker ratings.UserID, attackActs, attackTrust int, q float64) error {
	if q <= 0 {
		return nil
	}
	camoRatings := int(q*float64(attackActs)/(1-q) + 0.5)
	for i, guard := 0, 0; i < camoRatings && guard < camoRatings*20; guard++ {
		rid := ratings.ReviewID(rng.IntN(inj.base.NumReviews()))
		if inj.base.Review(rid).Writer == attacker || inj.b.HasRating(attacker, rid) {
			continue
		}
		c := inj.base.Review(rid).Category
		v := ratings.QuantizeRating(stats.NormalClamped01(rng, inj.catMean[c], 0.15))
		if err := inj.b.AddRating(attacker, rid, v); err != nil {
			return err
		}
		i++
	}
	camoTrust := int(q*float64(attackTrust) + 0.5)
	for i, guard := 0, 0; i < camoTrust && guard < camoTrust*20; guard++ {
		to := ratings.UserID(rng.IntN(inj.base.NumUsers()))
		if to == attacker || inj.b.HasTrust(attacker, to) {
			continue
		}
		if err := inj.b.AddTrust(attacker, to); err != nil {
			return err
		}
		i++
	}
	return nil
}

func (inj *injector) collusionRing(rng *rand.Rand, s Spec) (Cohort, error) {
	members := inj.addAttackers("ring", s.Size)
	cat := inj.attackCategory()
	reviews := make([][]ratings.ReviewID, s.Size)
	for j, m := range members {
		rs, err := inj.writeReviews(m, cat, s.Activity)
		if err != nil {
			return Cohort{}, err
		}
		reviews[j] = rs
	}
	for j, m := range members {
		acts := 0
		for k, peer := range members {
			if k == j {
				continue
			}
			if err := inj.b.AddTrust(m, peer); err != nil {
				return Cohort{}, err
			}
			for _, rid := range reviews[k] {
				if err := inj.b.AddRating(m, rid, ratings.MaxRating); err != nil {
					return Cohort{}, err
				}
				acts++
			}
		}
		if err := inj.camouflage(rng, m, acts, s.Size-1, s.Camouflage); err != nil {
			return Cohort{}, err
		}
	}
	return Cohort{Spec: s, Attackers: members, Beneficiary: members[0], Victim: ratings.NoUser}, nil
}

func (inj *injector) sybilFarm(rng *rand.Rand, s Spec) (Cohort, error) {
	target, err := inj.pickTarget(s)
	if err != nil {
		return Cohort{}, err
	}
	sybils := inj.addAttackers("sybil", s.Size)
	targetReviews := inj.base.ReviewsByWriter(target)
	for _, sy := range sybils {
		acts := 0
		for i := 0; i < len(targetReviews) && acts < s.Activity; i++ {
			if err := inj.b.AddRating(sy, targetReviews[i], ratings.MaxRating); err != nil {
				return Cohort{}, err
			}
			acts++
		}
		if err := inj.b.AddTrust(sy, target); err != nil {
			return Cohort{}, err
		}
		if err := inj.camouflage(rng, sy, acts, 1, s.Camouflage); err != nil {
			return Cohort{}, err
		}
	}
	return Cohort{Spec: s, Attackers: sybils, Beneficiary: target, Victim: ratings.NoUser}, nil
}

func (inj *injector) slanderClique(rng *rand.Rand, s Spec) (Cohort, error) {
	victim, err := inj.pickTarget(s)
	if err != nil {
		return Cohort{}, err
	}
	clique := inj.addAttackers("slander", s.Size)
	victimReviews := inj.base.ReviewsByWriter(victim)
	for _, a := range clique {
		acts := 0
		for i := 0; i < len(victimReviews) && acts < s.Activity; i++ {
			if err := inj.b.AddRating(a, victimReviews[i], ratings.MinRating); err != nil {
				return Cohort{}, err
			}
			acts++
		}
		if err := inj.camouflage(rng, a, acts, 0, s.Camouflage); err != nil {
			return Cohort{}, err
		}
	}
	return Cohort{Spec: s, Attackers: clique, Beneficiary: ratings.NoUser, Victim: victim}, nil
}

func (inj *injector) selfPromotion(rng *rand.Rand, s Spec) (Cohort, error) {
	cohort := inj.addAttackers("promo", s.Size)
	promoter, puppets := cohort[0], cohort[1:]
	reviews, err := inj.writeReviews(promoter, inj.attackCategory(), s.Activity)
	if err != nil {
		return Cohort{}, err
	}
	for _, p := range puppets {
		for _, rid := range reviews {
			if err := inj.b.AddRating(p, rid, ratings.MaxRating); err != nil {
				return Cohort{}, err
			}
		}
		if err := inj.b.AddTrust(p, promoter); err != nil {
			return Cohort{}, err
		}
		if err := inj.camouflage(rng, p, len(reviews), 1, s.Camouflage); err != nil {
			return Cohort{}, err
		}
	}
	return Cohort{Spec: s, Attackers: cohort, Beneficiary: promoter, Victim: ratings.NoUser}, nil
}
