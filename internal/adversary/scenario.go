package adversary

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"weboftrust/internal/synth"
)

// Scenario is one declarative attack experiment: a clean baseline
// community, a set of attacks to inject, and the resistance assertions
// the system must uphold. Scenarios are stored as JSON files in
// scenarios/ (the repo carries no YAML dependency) and loaded by
// `trustctl attack` and the Go harness.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Base names the synth preset of the clean community: "small",
	// "medium" or "paper".
	Base string `json:"base"`
	// Seed drives attack injection (synth presets carry their own seeds).
	Seed    uint64     `json:"seed"`
	Attacks []Spec     `json:"attacks"`
	Assert  Assertions `json:"assert"`
}

// Assertions are the scenario's pinned resistance bounds. Nil fields are
// not checked. Rank bounds are in EigenTrust leaderboard positions
// (1 = most trusted, as served by /v1/rank); fractions are in [0, 1].
type Assertions struct {
	// MinBeneficiaryRankLift: every cohort boosting an *existing* user
	// must lift that user at least this many positions vs the clean run.
	MinBeneficiaryRankLift *int `json:"min_beneficiary_rank_lift,omitempty"`
	// MaxBeneficiaryRank: every beneficiary (including injected accounts,
	// which have no clean rank) must reach at least this position — the
	// "did the attack actually work" bound that keeps scenarios honest.
	MaxBeneficiaryRank *int `json:"max_beneficiary_rank,omitempty"`
	// MinVictimRankDrop: every victim must fall at least this many
	// positions vs the clean run.
	MinVictimRankDrop *int `json:"min_victim_rank_drop,omitempty"`
	// MinTopKExposureGain: every beneficiary's appearance frequency in
	// honest users' /v1/topk lists must grow by at least this much.
	MinTopKExposureGain *float64 `json:"min_topk_exposure_gain,omitempty"`
	// MinPropagationInflation: per algorithm ("appleseed", "moletrust",
	// "tidaltrust"), the mean personalised trust honest sources assign a
	// beneficiary must inflate by at least this much vs clean.
	MinPropagationInflation map[string]float64 `json:"min_propagation_inflation,omitempty"`
	// MaxVictimPropagationChange: per algorithm, the mean personalised
	// trust honest sources assign a victim must change by at most this
	// much vs clean (negative bounds pin an actual deflation).
	MaxVictimPropagationChange map[string]float64 `json:"max_victim_propagation_change,omitempty"`
	// MinAnomalySeparation: the attacker cohort's median anomaly score
	// must exceed the honest median by at least this much.
	MinAnomalySeparation *float64 `json:"min_anomaly_separation,omitempty"`
	// MinAttackersAboveHonestMedian: at least this fraction of injected
	// attackers must score above the honest median — the acceptance
	// criterion's per-scenario detection bound.
	MinAttackersAboveHonestMedian *float64 `json:"min_attackers_above_honest_median,omitempty"`
}

// BaseConfig resolves the scenario's synth preset.
func (sc *Scenario) BaseConfig() (synth.Config, error) {
	switch strings.ToLower(sc.Base) {
	case "", "small":
		return synth.Small(), nil
	case "medium":
		return synth.Medium(), nil
	case "large":
		return synth.Large(), nil
	case "paper":
		return synth.PaperScale(), nil
	default:
		return synth.Config{}, fmt.Errorf("adversary: unknown base preset %q (small, medium, large, paper)", sc.Base)
	}
}

// Validate checks the scenario is well-formed without running it.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("adversary: scenario has no name")
	}
	if len(sc.Attacks) == 0 {
		return fmt.Errorf("adversary: scenario %q has no attacks", sc.Name)
	}
	if _, err := sc.BaseConfig(); err != nil {
		return err
	}
	for i, a := range sc.Attacks {
		if err := a.Validate(); err != nil {
			return fmt.Errorf("scenario %q attack %d: %w", sc.Name, i, err)
		}
	}
	for _, bounds := range []map[string]float64{sc.Assert.MinPropagationInflation, sc.Assert.MaxVictimPropagationChange} {
		for algo := range bounds {
			switch strings.ToLower(algo) {
			case "appleseed", "moletrust", "tidaltrust":
			default:
				return fmt.Errorf("adversary: scenario %q asserts on unknown algorithm %q", sc.Name, algo)
			}
		}
	}
	return nil
}

// LoadScenario reads and validates one scenario file.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("adversary: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: %s: %w", path, err)
	}
	return &sc, nil
}

// LoadDir loads every *.json scenario in dir, sorted by file name so
// suite order (and therefore report order) is stable.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("adversary: no *.json scenarios in %s", dir)
	}
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := LoadScenario(p)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
