package adversary

import (
	"strings"
	"testing"

	"weboftrust/internal/ratings"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

func smallBase(t testing.TB) *ratings.Dataset {
	t.Helper()
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func allSpecs() []Spec {
	return []Spec{
		{Kind: CollusionRing, Size: 8, Activity: 3, Camouflage: 0.2},
		{Kind: SybilFarm, Size: 12, Activity: 4, Camouflage: 0.1},
		{Kind: SlanderClique, Size: 6, Activity: 5},
		{Kind: SelfPromotion, Size: 7, Activity: 6, Camouflage: 0.3},
	}
}

// serialize renders a dataset to its event-log bytes — the byte-identity
// notion the acceptance criteria pin.
func serialize(t testing.TB, d *ratings.Dataset) string {
	t.Helper()
	var buf strings.Builder
	if err := store.AppendDataset(store.NewLogWriter(&buf), d); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestInjectDeterministic: same (dataset, specs, seed) must produce a
// byte-identical dataset and identical cohorts.
func TestInjectDeterministic(t *testing.T) {
	base := smallBase(t)
	d1, c1, err := Inject(base, allSpecs(), 99)
	if err != nil {
		t.Fatal(err)
	}
	d2, c2, err := Inject(base, allSpecs(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serialize(t, d1), serialize(t, d2); a != b {
		t.Fatal("same specs + seed produced different datasets")
	}
	for i := range c1 {
		if len(c1[i].Attackers) != len(c2[i].Attackers) ||
			c1[i].Beneficiary != c2[i].Beneficiary || c1[i].Victim != c2[i].Victim {
			t.Fatalf("cohort %d differs across identical injections", i)
		}
	}
}

// TestInjectSeedSensitive: camouflaged attacks draw randomness, so a
// different seed must change the dataset.
func TestInjectSeedSensitive(t *testing.T) {
	base := smallBase(t)
	specs := []Spec{{Kind: SybilFarm, Size: 10, Activity: 4, Camouflage: 0.4}}
	d1, _, err := Inject(base, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := Inject(base, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if serialize(t, d1) == serialize(t, d2) {
		t.Fatal("different seeds produced identical camouflage")
	}
}

// TestInjectExtendsBase: the attacked dataset must extend the clean one
// element for element — honest history is never rewritten.
func TestInjectExtendsBase(t *testing.T) {
	base := smallBase(t)
	d, cohorts, err := Inject(base, allSpecs(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, rt := range base.Ratings() {
		if d.Ratings()[i] != rt {
			t.Fatalf("honest rating %d rewritten", i)
		}
	}
	for i, rv := range base.Reviews() {
		if d.Review(ratings.ReviewID(i)) != rv {
			t.Fatalf("honest review %d rewritten", i)
		}
	}
	for i, e := range base.TrustEdges() {
		if d.TrustEdges()[i] != e {
			t.Fatalf("honest trust edge %d rewritten", i)
		}
	}
	if d.NumUsers() <= base.NumUsers() {
		t.Fatalf("no attackers injected: %d users before and after", d.NumUsers())
	}
	// Every attacker is a new account; targets are honest.
	for _, c := range cohorts {
		for _, a := range c.Attackers {
			if int(a) < base.NumUsers() {
				t.Fatalf("%s attacker %d is an honest user", c.Spec.Kind, a)
			}
		}
		if c.Victim != ratings.NoUser && int(c.Victim) >= base.NumUsers() {
			t.Fatalf("victim %d is not an honest user", c.Victim)
		}
	}
}

// TestInjectComposable: composed attacks with auto-picked targets must
// choose distinct honest targets.
func TestInjectComposable(t *testing.T) {
	base := smallBase(t)
	specs := []Spec{
		{Kind: SybilFarm, Size: 5, Activity: 3},
		{Kind: SlanderClique, Size: 5, Activity: 3},
	}
	_, cohorts, err := Inject(base, specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cohorts[0].Beneficiary == cohorts[1].Victim {
		t.Fatalf("composed attacks auto-picked the same target %d", cohorts[0].Beneficiary)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: "bogus", Size: 5, Activity: 1},
		{Kind: CollusionRing, Size: 1, Activity: 1},
		{Kind: SybilFarm, Size: 0, Activity: 1},
		{Kind: SybilFarm, Size: 5, Activity: 0},
		{Kind: SybilFarm, Size: 5, Activity: 1, Camouflage: 1.0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) passed validation", i, s)
		}
	}
	target := 3
	good := Spec{Kind: SlanderClique, Size: 2, Activity: 2, Camouflage: 0.5, Target: &target}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
