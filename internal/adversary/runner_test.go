package adversary

import (
	"encoding/json"
	"strings"
	"testing"
)

const corpusDir = "../../scenarios"

// TestSeedCorpus runs the checked-in scenario suite — the same corpus
// `make attack-smoke` runs in CI — and holds it to the acceptance
// criteria: every scenario's pinned assertions pass, and anomaly scoring
// ranks the attacker cohort above the honest median in at least 5 of 6
// scenarios.
func TestSeedCorpus(t *testing.T) {
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 6 {
		t.Fatalf("seed corpus has %d scenarios, want >= 6", len(scs))
	}
	rep, err := NewRunner().RunSuite(scs)
	if err != nil {
		t.Fatal(err)
	}
	separated := 0
	for _, res := range rep.Scenarios {
		for _, f := range res.Failures {
			t.Errorf("%s: %s", res.Name, f)
		}
		if res.AnomalySeparation > 0 {
			separated++
		}
		var sb strings.Builder
		if err := res.Render(&sb); err != nil {
			t.Fatalf("%s: render: %v", res.Name, err)
		}
		t.Logf("\n%s", sb.String())
	}
	if !rep.Passed {
		t.Error("suite verdict is fail")
	}
	if separated < 5 {
		t.Errorf("attacker cohort separated from honest median in only %d/%d scenarios, want >= 5",
			separated, len(rep.Scenarios))
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-serialisable: %v", err)
	}
}

// TestScenarioLoading pins loader behavior: unknown fields and invalid
// specs are rejected, valid files round-trip.
func TestScenarioLoading(t *testing.T) {
	if _, err := LoadScenario(corpusDir + "/collusion-ring.json"); err != nil {
		t.Fatalf("corpus scenario failed to load: %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir loaded without error")
	}
	bad := Scenario{Name: "x", Base: "nope", Attacks: []Spec{{Kind: SybilFarm, Size: 1, Activity: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown base preset passed validation")
	}
	bad = Scenario{Name: "x", Base: "small"}
	if err := bad.Validate(); err == nil {
		t.Error("scenario with no attacks passed validation")
	}
	bad = Scenario{Name: "x", Base: "small",
		Attacks: []Spec{{Kind: SybilFarm, Size: 1, Activity: 1}},
		Assert:  Assertions{MinPropagationInflation: map[string]float64{"pagerank": 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown algorithm in assertions passed validation")
	}
}
