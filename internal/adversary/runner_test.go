package adversary

import (
	"encoding/json"
	"strings"
	"testing"

	"weboftrust"
)

const corpusDir = "../../scenarios"

// TestSeedCorpus runs the checked-in scenario suite — the same corpus
// `make attack-smoke` runs in CI — and holds it to the acceptance
// criteria: every scenario's pinned assertions pass, and anomaly scoring
// ranks the attacker cohort above the honest median in at least 5 of 6
// scenarios.
func TestSeedCorpus(t *testing.T) {
	scs, err := LoadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 6 {
		t.Fatalf("seed corpus has %d scenarios, want >= 6", len(scs))
	}
	rep, err := NewRunner().RunSuite(scs)
	if err != nil {
		t.Fatal(err)
	}
	separated := 0
	for _, res := range rep.Scenarios {
		for _, f := range res.Failures {
			t.Errorf("%s: %s", res.Name, f)
		}
		if res.AnomalySeparation > 0 {
			separated++
		}
		var sb strings.Builder
		if err := res.Render(&sb); err != nil {
			t.Fatalf("%s: render: %v", res.Name, err)
		}
		t.Logf("\n%s", sb.String())
	}
	if !rep.Passed {
		t.Error("suite verdict is fail")
	}
	if separated < 5 {
		t.Errorf("attacker cohort separated from honest median in only %d/%d scenarios, want >= 5",
			separated, len(rep.Scenarios))
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-serialisable: %v", err)
	}
}

// TestScenarioLoading pins loader behavior: unknown fields and invalid
// specs are rejected, valid files round-trip.
func TestScenarioLoading(t *testing.T) {
	if _, err := LoadScenario(corpusDir + "/collusion-ring.json"); err != nil {
		t.Fatalf("corpus scenario failed to load: %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir loaded without error")
	}
	bad := Scenario{Name: "x", Base: "nope", Attacks: []Spec{{Kind: SybilFarm, Size: 1, Activity: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown base preset passed validation")
	}
	bad = Scenario{Name: "x", Base: "small"}
	if err := bad.Validate(); err == nil {
		t.Error("scenario with no attacks passed validation")
	}
	bad = Scenario{Name: "x", Base: "small",
		Attacks: []Spec{{Kind: SybilFarm, Size: 1, Activity: 1}},
		Assert:  Assertions{MinPropagationInflation: map[string]float64{"pagerank": 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown algorithm in assertions passed validation")
	}
}

// TestApproximateModeScenario pins that attack signals survive the
// serving-tier approximations: the collusion-ring scenario still passes
// its assertions when the models derive with percolation pruning and the
// propagation-inflation metric is measured through 16-landmark sketch
// composition (the `?approx=landmark` serving mode) — the same
// configuration `make attack-smoke` replays.
func TestApproximateModeScenario(t *testing.T) {
	sc, err := LoadScenario(corpusDir + "/collusion-ring.json")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	r.DeriveOpts = append(r.DeriveOpts, weboftrust.WithPropagatePruneTau(0.10))
	r.Landmarks = 16
	res, err := r.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("approximate mode: %s", f)
	}
	if !res.Passed {
		t.Error("collusion-ring fails under prune tau 0.10 + landmark measurement")
	}
	// The landmark-mode measurement must actually differ from the exact
	// one somewhere — otherwise the mode flag is dead.
	exact, err := NewRunner().Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, ar := range res.Attacks {
		for algo, v := range ar.PropagationInflation {
			if exact.Attacks[i].PropagationInflation[algo] != v {
				same = false
			}
		}
	}
	if same {
		t.Error("landmark-mode inflation identical to exact mode — approximation not exercised")
	}
}
