package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	if got := Normalize(3); got != 3 {
		t.Errorf("Normalize(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Normalize(0); got != want {
		t.Errorf("Normalize(0) = %d, want %d", got, want)
	}
	if got := Normalize(-7); got != want {
		t.Errorf("Normalize(-7) = %d, want %d", got, want)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 63, 1000} {
			counts := make([]atomic.Int32, n)
			Do(workers, n, func(i int) {
				counts[i].Add(1)
			})
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDoWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 200
	var bad atomic.Int32
	seen := make([]atomic.Int32, workers)
	DoWorker(workers, n, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
			return
		}
		seen[w].Add(1)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw out-of-range worker ids", bad.Load())
	}
	var total int32
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("worker tallies sum to %d, want %d", total, n)
	}
}

func TestDoWorkerSerialWhenOneWorker(t *testing.T) {
	// With workers == 1 items must run in order on the calling goroutine.
	var order []int
	DoWorker(1, 10, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d with one worker", w)
		}
		order = append(order, i) // no locking: must be inline
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d", i, got)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError([]error{nil, nil}); err != nil {
		t.Errorf("FirstError(all nil) = %v", err)
	}
	e1, e2 := errors.New("one"), errors.New("two")
	if err := FirstError([]error{nil, e1, e2}); err != e1 {
		t.Errorf("FirstError = %v, want first non-nil", err)
	}
}
