// Package par is the shared worker-pool substrate the derivation pipeline
// fans out on. Every stage of the pipeline (the per-category Riggs fixed
// points, the affinity and expertise passes, the derived-trust assembly)
// is embarrassingly parallel: each work item writes only to its own output
// slot, so results are bitwise-identical at any worker count and the knob
// trades nothing but wall-clock time.
//
// Items are handed out dynamically through an atomic counter rather than
// static striding, because the pipeline's work items are heavily skewed
// (the paper's category sizes span two orders of magnitude); dynamic
// dealing keeps all workers busy until the last item without affecting
// which slot an item writes to.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Normalize returns the effective worker count for a configuration knob:
// n itself when n >= 1, otherwise one worker per available CPU
// (runtime.GOMAXPROCS(0)).
func Normalize(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n) exactly once, across at most
// Normalize(workers) goroutines. fn must be safe to call concurrently for
// distinct i and should write only to state owned by item i. With
// workers == 1 (or n <= 1) everything runs inline on the calling
// goroutine with no synchronisation at all.
func Do(workers, n int, fn func(i int)) {
	DoWorker(workers, n, func(_, i int) { fn(i) })
}

// DoWorker is Do for callers that keep per-worker scratch: fn receives the
// worker id w in [0, min(Normalize(workers), n)) alongside the item index,
// so a caller may allocate Normalize(workers) scratch slots and index them
// by w without locking.
func DoWorker(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// FirstError returns the lowest-index non-nil error, or nil. Parallel
// stages record per-item errors into a slot slice and pick the winner
// deterministically afterwards, so the reported error does not depend on
// goroutine scheduling.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
