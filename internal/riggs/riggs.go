// Package riggs implements Step 1a/1b of the paper's framework: the
// mutually recursive computation of review quality and review-rater
// reputation within one category, following Riggs' model for automated
// rating of reviewers (the paper's reference [7], adopted in its eqs. 1-2).
//
// Review quality is the rater-reputation-weighted average of the ratings a
// review received (eq. 1):
//
//	q_j = Σ_i rep(uᵣᵢ)·ρ_ij / Σ_i rep(uᵣᵢ)
//
// Rater reputation rewards raters who consistently rate near the final
// quality, discounted by inexperience (eq. 2):
//
//	rep(uᵣᵢ) = (1 − Σ_j |ρ_ij − q_j| / n_i) · (1 − 1/(n_i+1))
//
// where n_i is the number of reviews user i rated in the category. Both
// quantities live in [0, 1] and are solved by fixed-point iteration with
// rater reputations initialised to 1 (so the first quality pass is the
// plain average, Riggs' starting point).
//
// Categories are mutually independent, which makes them the natural
// parallel axis: SolveAll fans them out across workers and the result is
// bitwise-identical to solving them one by one.
package riggs

import (
	"errors"
	"fmt"
	"math"

	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
)

// Numerical and iteration defaults.
const (
	// DefaultTol is the convergence tolerance on the maximum change of
	// any reputation or quality value between iterations.
	DefaultTol = 1e-9
	// DefaultMaxIter caps the number of fixed-point iterations.
	DefaultMaxIter = 100
)

// ErrBadConfig reports an invalid Model configuration.
var ErrBadConfig = errors.New("riggs: invalid configuration")

// Model configures the fixed-point computation. The zero value is not
// valid; use DefaultModel or fill the fields explicitly.
type Model struct {
	// MaxIter caps fixed-point iterations; must be >= 1.
	MaxIter int
	// Tol is the convergence tolerance; must be > 0.
	Tol float64
	// DiscountExperience applies the (1 − 1/(n+1)) inexperience discount
	// of eq. 2. Disabling it is the A-1 ablation.
	DiscountExperience bool
	// UnratedQuality is the quality assigned to reviews that received no
	// ratings. The paper never defines it; 0 penalises ignored reviews
	// (see DESIGN.md).
	UnratedQuality float64
}

// DefaultModel returns the configuration used throughout the paper's
// experiments.
func DefaultModel() Model {
	return Model{
		MaxIter:            DefaultMaxIter,
		Tol:                DefaultTol,
		DiscountExperience: true,
		UnratedQuality:     0,
	}
}

func (m Model) validate() error {
	if m.MaxIter < 1 {
		return fmt.Errorf("%w: MaxIter %d < 1", ErrBadConfig, m.MaxIter)
	}
	if !(m.Tol > 0) {
		return fmt.Errorf("%w: Tol %v <= 0", ErrBadConfig, m.Tol)
	}
	if m.UnratedQuality < 0 || m.UnratedQuality > 1 {
		return fmt.Errorf("%w: UnratedQuality %v outside [0,1]", ErrBadConfig, m.UnratedQuality)
	}
	return nil
}

// CategoryResult holds the converged quantities for one category.
type CategoryResult struct {
	// Category is the category this result describes.
	Category ratings.CategoryID
	// Reviews lists the reviews of the category, parallel to Quality.
	Reviews []ratings.ReviewID
	// Quality[k] is the quality of Reviews[k] (eq. 1), in [0, 1].
	Quality []float64
	// Raters lists the users who rated at least one review in the
	// category, parallel to RaterRep.
	Raters []ratings.UserID
	// RaterRep[k] is the reputation of Raters[k] (eq. 2), in [0, 1].
	RaterRep []float64
	// RaterCount[k] is n for Raters[k]: how many of the category's
	// reviews they rated.
	RaterCount []int
	// Iterations is how many fixed-point rounds ran; Converged reports
	// whether the tolerance was met within MaxIter.
	Iterations int
	Converged  bool

	qualityByReview map[ratings.ReviewID]float64
	repByRater      map[ratings.UserID]float64
}

// Reindex rebuilds the lookup maps behind QualityOf and ReputationOf from
// the exported parallel slices. Solve populates them itself; Reindex exists
// for results rehydrated from a checkpoint, where only the exported fields
// survive serialisation. The maps are derived state, so a reindexed result
// is indistinguishable from a freshly solved one.
func (cr *CategoryResult) Reindex() {
	cr.qualityByReview = make(map[ratings.ReviewID]float64, len(cr.Reviews))
	for k, r := range cr.Reviews {
		cr.qualityByReview[r] = cr.Quality[k]
	}
	cr.repByRater = make(map[ratings.UserID]float64, len(cr.Raters))
	for i, u := range cr.Raters {
		cr.repByRater[u] = cr.RaterRep[i]
	}
}

// QualityOf returns the quality of review r and whether r belongs to this
// category's result.
func (cr *CategoryResult) QualityOf(r ratings.ReviewID) (float64, bool) {
	q, ok := cr.qualityByReview[r]
	return q, ok
}

// ReputationOf returns the rater reputation of u and whether u rated
// anything in this category.
func (cr *CategoryResult) ReputationOf(u ratings.UserID) (float64, bool) {
	rep, ok := cr.repByRater[u]
	return rep, ok
}

// obs is one (review, rater, value) observation in a category's local
// dense numbering.
type obs struct {
	review int // local review index
	rater  int // local rater index
	value  float64
}

// Scratch holds the iteration buffers of Solve so callers that solve many
// categories — SolveAll across a dataset, or core.Update on every trustd
// ingest tick — reuse one set of allocations instead of paying for
// qNum/qDen/dev/newRep/newQ (and the observation list) per category per
// call. The zero value is ready to use. A Scratch may serve any number of
// sequential Solve calls but must not be shared by concurrent ones; give
// each worker its own.
type Scratch struct {
	observations []obs
	raterLocal   map[ratings.UserID]int
	qNum, qDen   []float64
	newQ         []float64
	fallback     []float64
	dev, newRep  []float64
}

// NewScratch returns an empty Scratch. Equivalent to new(Scratch); it
// exists to make call sites explicit about buffer reuse.
func NewScratch() *Scratch { return new(Scratch) }

// grow returns buf resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers overwrite.
func grow(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// Solve computes the fixed point for one category of the dataset.
func (m Model) Solve(d *ratings.Dataset, cat ratings.CategoryID) (*CategoryResult, error) {
	return m.SolveScratch(d, cat, nil)
}

// SolveScratch is Solve with caller-provided iteration buffers; pass nil
// to allocate fresh ones. The returned result never aliases the scratch.
func (m Model) SolveScratch(d *ratings.Dataset, cat ratings.CategoryID, s *Scratch) (*CategoryResult, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if int(cat) < 0 || int(cat) >= d.NumCategories() {
		return nil, fmt.Errorf("riggs: category %d out of range %d", cat, d.NumCategories())
	}
	if s == nil {
		s = NewScratch()
	}
	if s.raterLocal == nil {
		s.raterLocal = make(map[ratings.UserID]int)
	} else {
		clear(s.raterLocal)
	}

	reviews := d.ReviewsInCategory(cat)
	numReviews := len(reviews)
	cr := &CategoryResult{
		Category: cat,
		Reviews:  reviews,
		Quality:  make([]float64, numReviews),
	}

	// Size the observation list exactly before filling it, and hoist the
	// zero-denominator fallback quality per review out of the iteration
	// loop: the plain average when the review has ratings (the guard for
	// all-zero-reputation raters), UnratedQuality otherwise.
	totalObs := 0
	for _, rid := range reviews {
		totalObs += len(d.RatingsOn(rid))
	}
	if cap(s.observations) < totalObs {
		s.observations = make([]obs, 0, totalObs)
	} else {
		s.observations = s.observations[:0]
	}
	s.fallback = grow(s.fallback, numReviews)
	for k, rid := range reviews {
		rs := d.RatingsOn(rid)
		if len(rs) == 0 {
			s.fallback[k] = m.UnratedQuality
			continue
		}
		var sum float64
		for _, rt := range rs {
			li, seen := s.raterLocal[rt.Rater]
			if !seen {
				li = len(cr.Raters)
				s.raterLocal[rt.Rater] = li
				cr.Raters = append(cr.Raters, rt.Rater)
			}
			s.observations = append(s.observations, obs{review: k, rater: li, value: rt.Value})
			sum += rt.Value
		}
		s.fallback[k] = sum / float64(len(rs))
	}
	observations := s.observations
	numRaters := len(cr.Raters)
	cr.RaterRep = make([]float64, numRaters)
	cr.RaterCount = make([]int, numRaters)
	for _, o := range observations {
		cr.RaterCount[o.rater]++
	}

	// Initialise reputations to 1: first pass is the unweighted mean.
	for i := range cr.RaterRep {
		cr.RaterRep[i] = 1
	}
	for k := range cr.Quality {
		cr.Quality[k] = m.UnratedQuality
	}

	qNum := grow(s.qNum, numReviews)
	qDen := grow(s.qDen, numReviews)
	newQ := grow(s.newQ, numReviews)
	dev := grow(s.dev, numRaters)
	newRep := grow(s.newRep, numRaters)
	s.qNum, s.qDen, s.newQ, s.dev, s.newRep = qNum, qDen, newQ, dev, newRep

	for iter := 1; iter <= m.MaxIter; iter++ {
		cr.Iterations = iter
		// Quality pass (eq. 1): reputation-weighted average, falling back
		// to the precomputed plain average (or UnratedQuality) when the
		// review's raters all have zero reputation.
		for k := range qNum {
			qNum[k], qDen[k] = 0, 0
		}
		for _, o := range observations {
			w := cr.RaterRep[o.rater]
			qNum[o.review] += w * o.value
			qDen[o.review] += w
		}
		for k := range newQ {
			if qDen[k] > 0 {
				newQ[k] = qNum[k] / qDen[k]
			} else {
				newQ[k] = s.fallback[k]
			}
		}

		// Reputation pass (eq. 2): one minus the mean absolute deviation
		// from the current quality, optionally experience-discounted.
		for i := range dev {
			dev[i] = 0
		}
		for _, o := range observations {
			dev[o.rater] += math.Abs(o.value - newQ[o.review])
		}
		for i := range newRep {
			n := float64(cr.RaterCount[i])
			rep := 1 - dev[i]/n
			if m.DiscountExperience {
				rep *= 1 - 1/(n+1)
			}
			if rep < 0 {
				rep = 0
			}
			newRep[i] = rep
		}

		delta := 0.0
		for k := range newQ {
			if d := math.Abs(newQ[k] - cr.Quality[k]); d > delta {
				delta = d
			}
		}
		for i := range newRep {
			if d := math.Abs(newRep[i] - cr.RaterRep[i]); d > delta {
				delta = d
			}
		}
		copy(cr.Quality, newQ)
		copy(cr.RaterRep, newRep)
		if delta < m.Tol {
			cr.Converged = true
			break
		}
	}

	cr.qualityByReview = make(map[ratings.ReviewID]float64, numReviews)
	for k, r := range reviews {
		cr.qualityByReview[r] = cr.Quality[k]
	}
	cr.repByRater = make(map[ratings.UserID]float64, numRaters)
	for i, u := range cr.Raters {
		cr.repByRater[u] = cr.RaterRep[i]
	}
	return cr, nil
}

// SolveAll runs Solve for every category and returns the results indexed
// by CategoryID, fanning categories out to one worker per available CPU.
func (m Model) SolveAll(d *ratings.Dataset) ([]*CategoryResult, error) {
	return m.SolveAllWorkers(d, 0)
}

// SolveAllWorkers is SolveAll with an explicit worker count (<= 0 means
// one per available CPU). Each category's fixed point is independent and
// each worker keeps its own Scratch, so the results are bitwise-identical
// at any worker count.
func (m Model) SolveAllWorkers(d *ratings.Dataset, workers int) ([]*CategoryResult, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	numC := d.NumCategories()
	out := make([]*CategoryResult, numC)
	errs := make([]error, numC)
	// Normalize once so the scratch slice length and DoWorker's ids come
	// from the same evaluation even if GOMAXPROCS changes concurrently.
	workers = par.Normalize(workers)
	scratch := make([]*Scratch, workers)
	par.DoWorker(workers, numC, func(w, c int) {
		if scratch[w] == nil {
			scratch[w] = NewScratch()
		}
		cr, err := m.SolveScratch(d, ratings.CategoryID(c), scratch[w])
		if err != nil {
			errs[c] = fmt.Errorf("riggs: category %d: %w", c, err)
			return
		}
		out[c] = cr
	})
	if err := par.FirstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}
