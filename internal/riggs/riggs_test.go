package riggs

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// fixture builds one category with three reviews and a configurable set of
// (rater, review, value) observations over extra raters.
func fixture(t *testing.T, obs []struct {
	rater  int
	review int
	value  float64
}) (*ratings.Dataset, []ratings.ReviewID) {
	t.Helper()
	b := ratings.NewBuilder()
	cat := b.AddCategory("movies")
	writer := b.AddUser("writer")
	maxRater := 0
	for _, o := range obs {
		if o.rater > maxRater {
			maxRater = o.rater
		}
	}
	for i := 0; i <= maxRater; i++ {
		b.AddUser("")
	}
	var reviews []ratings.ReviewID
	for i := 0; i < 3; i++ {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(writer, oid)
		if err != nil {
			t.Fatal(err)
		}
		reviews = append(reviews, rid)
	}
	for _, o := range obs {
		// rater ids start at 1 because user 0 is the writer.
		if err := b.AddRating(ratings.UserID(o.rater+1), reviews[o.review], o.value); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build(), reviews
}

func TestSingleRaterSingleReview(t *testing.T) {
	d, reviews := fixture(t, []struct {
		rater  int
		review int
		value  float64
	}{
		{0, 0, 0.8},
	})
	cr, err := DefaultModel().Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Converged {
		t.Error("expected convergence")
	}
	q, ok := cr.QualityOf(reviews[0])
	if !ok || math.Abs(q-0.8) > 1e-9 {
		t.Errorf("quality = %v, want 0.8", q)
	}
	// Sole rater has zero deviation; discount for n=1 is 1 - 1/2 = 0.5.
	rep, ok := cr.ReputationOf(1)
	if !ok || math.Abs(rep-0.5) > 1e-9 {
		t.Errorf("reputation = %v, want 0.5", rep)
	}
}

func TestUnratedReviewGetsConfiguredQuality(t *testing.T) {
	d, reviews := fixture(t, []struct {
		rater  int
		review int
		value  float64
	}{
		{0, 0, 0.8},
	})
	m := DefaultModel()
	m.UnratedQuality = 0.35
	cr, err := m.Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := cr.QualityOf(reviews[1])
	if !ok || q != 0.35 {
		t.Errorf("unrated quality = %v, want 0.35", q)
	}
}

func TestConsistentRaterBeatsInconsistent(t *testing.T) {
	// Two raters rate the same three reviews; rater A always agrees with
	// the consensus, rater B always deviates. A third rater anchors the
	// consensus.
	d, _ := fixture(t, []struct {
		rater  int
		review int
		value  float64
	}{
		{0, 0, 0.8}, {0, 1, 0.8}, {0, 2, 0.8}, // A: consistent
		{1, 0, 0.2}, {1, 1, 0.2}, {1, 2, 0.2}, // B: contrarian
		{2, 0, 0.8}, {2, 1, 0.8}, {2, 2, 0.8}, // anchor sides with A
	})
	cr, err := DefaultModel().Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	repA, _ := cr.ReputationOf(1)
	repB, _ := cr.ReputationOf(2)
	if repA <= repB {
		t.Errorf("consistent rater rep %v should exceed contrarian %v", repA, repB)
	}
	// Quality should be pulled above the unweighted mean (0.6) toward the
	// consistent raters' value of 0.8.
	q := cr.Quality[0]
	if q <= 0.6 {
		t.Errorf("quality = %v, want > 0.6 (weighted toward consistent raters)", q)
	}
}

func TestExperienceDiscount(t *testing.T) {
	// Same perfect consistency, different volume: the rater with more
	// ratings must end up with strictly higher reputation.
	d, _ := fixture(t, []struct {
		rater  int
		review int
		value  float64
	}{
		{0, 0, 0.6}, {0, 1, 0.6}, {0, 2, 0.6},
		{1, 0, 0.6},
	})
	cr, err := DefaultModel().Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	repMany, _ := cr.ReputationOf(1)
	repOne, _ := cr.ReputationOf(2)
	if repMany <= repOne {
		t.Errorf("experienced rater %v should beat newcomer %v", repMany, repOne)
	}
	// Exact values: zero deviation, so rep = 1 - 1/(n+1).
	if math.Abs(repMany-0.75) > 1e-9 {
		t.Errorf("repMany = %v, want 0.75", repMany)
	}
	if math.Abs(repOne-0.5) > 1e-9 {
		t.Errorf("repOne = %v, want 0.5", repOne)
	}
}

func TestDiscountDisabledAblation(t *testing.T) {
	d, _ := fixture(t, []struct {
		rater  int
		review int
		value  float64
	}{
		{0, 0, 0.6}, {0, 1, 0.6}, {0, 2, 0.6},
		{1, 0, 0.6},
	})
	m := DefaultModel()
	m.DiscountExperience = false
	cr, err := m.Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	repMany, _ := cr.ReputationOf(1)
	repOne, _ := cr.ReputationOf(2)
	if math.Abs(repMany-1) > 1e-9 || math.Abs(repOne-1) > 1e-9 {
		t.Errorf("without discount both perfect raters should have rep 1; got %v, %v", repMany, repOne)
	}
}

func TestBadConfig(t *testing.T) {
	d, _ := fixture(t, nil)
	for _, m := range []Model{
		{MaxIter: 0, Tol: 1e-9},
		{MaxIter: 10, Tol: 0},
		{MaxIter: 10, Tol: 1e-9, UnratedQuality: 2},
		{MaxIter: 10, Tol: 1e-9, UnratedQuality: -0.1},
	} {
		if _, err := m.Solve(d, 0); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %+v: error = %v, want ErrBadConfig", m, err)
		}
	}
	if _, err := DefaultModel().Solve(d, 5); err == nil {
		t.Error("out-of-range category should error")
	}
}

func TestEmptyCategory(t *testing.T) {
	b := ratings.NewBuilder()
	b.AddCategory("empty")
	b.AddUser("u")
	d := b.Build()
	cr, err := DefaultModel().Solve(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Reviews) != 0 || len(cr.Raters) != 0 {
		t.Error("empty category should have empty result")
	}
	if !cr.Converged {
		t.Error("empty category should converge trivially")
	}
}

func TestSolveAll(t *testing.T) {
	b := ratings.NewBuilder()
	c0 := b.AddCategory("a")
	c1 := b.AddCategory("b")
	w := b.AddUser("w")
	r := b.AddUser("r")
	o0, _ := b.AddObject(c0, "")
	o1, _ := b.AddObject(c1, "")
	rev0, _ := b.AddReview(w, o0)
	rev1, _ := b.AddReview(w, o1)
	_ = b.AddRating(r, rev0, 1.0)
	_ = b.AddRating(r, rev1, 0.2)
	d := b.Build()

	res, err := DefaultModel().SolveAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	q0, _ := res[0].QualityOf(rev0)
	q1, _ := res[1].QualityOf(rev1)
	if q0 != 1.0 || q1 != 0.2 {
		t.Errorf("qualities = %v, %v; want 1.0, 0.2 (categories independent)", q0, q1)
	}
	// Reputation of the same rater differs by category: both have n=1 and
	// zero deviation, so both are 0.5 — but the results must be distinct
	// objects keyed by category.
	if res[0].Category != 0 || res[1].Category != 1 {
		t.Error("category labels wrong")
	}
}

// randomCategory builds a single-category dataset with random ratings.
func randomCategory(seed uint64) *ratings.Dataset {
	rng := stats.NewRand(seed)
	b := ratings.NewBuilder()
	cat := b.AddCategory("c")
	numWriters := 1 + rng.IntN(5)
	numRaters := 1 + rng.IntN(10)
	for i := 0; i < numWriters+numRaters; i++ {
		b.AddUser("")
	}
	var reviews []ratings.ReviewID
	for w := 0; w < numWriters; w++ {
		for k := 0; k < 1+rng.IntN(4); k++ {
			oid, err := b.AddObject(cat, "")
			if err != nil {
				panic(err)
			}
			rid, err := b.AddReview(ratings.UserID(w), oid)
			if err != nil {
				panic(err)
			}
			reviews = append(reviews, rid)
		}
	}
	for r := 0; r < numRaters; r++ {
		rater := ratings.UserID(numWriters + r)
		for k := 0; k < rng.IntN(6); k++ {
			rev := reviews[rng.IntN(len(reviews))]
			if b.HasRating(rater, rev) {
				continue
			}
			_ = b.AddRating(rater, rev, ratings.QuantizeRating(rng.Float64()))
		}
	}
	return b.Build()
}

// Property: all qualities and reputations are in [0,1]; rated reviews have
// quality within the span of their received ratings; the solver converges.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomCategory(seed)
		cr, err := DefaultModel().Solve(d, 0)
		if err != nil {
			return false
		}
		if !cr.Converged {
			return false
		}
		for k, q := range cr.Quality {
			if q < 0 || q > 1 {
				return false
			}
			rs := d.RatingsOn(cr.Reviews[k])
			if len(rs) == 0 {
				continue
			}
			lo, hi := 1.0, 0.0
			for _, r := range rs {
				if r.Value < lo {
					lo = r.Value
				}
				if r.Value > hi {
					hi = r.Value
				}
			}
			if q < lo-1e-9 || q > hi+1e-9 {
				return false // weighted average must stay inside the span
			}
		}
		for _, rep := range cr.RaterRep {
			if rep < 0 || rep > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: reputation is monotone in experience for perfectly consistent
// raters — rep = 1 - 1/(n+1) increases with n.
func TestMonotoneExperienceQuick(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%20
		b := ratings.NewBuilder()
		cat := b.AddCategory("c")
		w := b.AddUser("w")
		r1 := b.AddUser("r1") // rates n+1 reviews
		r2 := b.AddUser("r2") // rates n reviews
		var reviews []ratings.ReviewID
		for i := 0; i < n+1; i++ {
			oid, _ := b.AddObject(cat, "")
			rid, _ := b.AddReview(w, oid)
			reviews = append(reviews, rid)
		}
		for i, rev := range reviews {
			_ = b.AddRating(r1, rev, 0.8)
			if i < n {
				_ = b.AddRating(r2, rev, 0.8)
			}
		}
		cr, err := DefaultModel().Solve(b.Build(), 0)
		if err != nil {
			return false
		}
		rep1, _ := cr.ReputationOf(r1)
		rep2, _ := cr.ReputationOf(r2)
		return rep1 > rep2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveCategory(b *testing.B) {
	d := randomCategory(12345)
	m := DefaultModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(d, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// resultsEqual reports whether two category results are bitwise identical
// in every exported field.
func resultsEqual(a, b *CategoryResult) bool {
	if a.Category != b.Category || a.Iterations != b.Iterations || a.Converged != b.Converged ||
		len(a.Reviews) != len(b.Reviews) || len(a.Raters) != len(b.Raters) {
		return false
	}
	for k := range a.Reviews {
		if a.Reviews[k] != b.Reviews[k] || a.Quality[k] != b.Quality[k] {
			return false
		}
	}
	for i := range a.Raters {
		if a.Raters[i] != b.Raters[i] || a.RaterRep[i] != b.RaterRep[i] || a.RaterCount[i] != b.RaterCount[i] {
			return false
		}
	}
	return true
}

// Property: reusing one Scratch across many categories yields exactly the
// results of scratch-free solves — stale buffer contents never leak.
func TestScratchReuseQuick(t *testing.T) {
	m := DefaultModel()
	scratch := NewScratch()
	f := func(seed uint64) bool {
		d := randomCategory(seed)
		fresh, err := m.Solve(d, 0)
		if err != nil {
			return false
		}
		reused, err := m.SolveScratch(d, 0, scratch)
		if err != nil {
			return false
		}
		return resultsEqual(fresh, reused)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSolveAllWorkersIdentical asserts the parallel fan-out is
// bitwise-identical to the serial solve at several worker counts.
func TestSolveAllWorkersIdentical(t *testing.T) {
	var ds []*ratings.Dataset
	for seed := uint64(1); seed <= 4; seed++ {
		ds = append(ds, randomCategory(seed))
	}
	m := DefaultModel()
	for _, d := range ds {
		serial, err := m.SolveAllWorkers(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			parallel, err := m.SolveAllWorkers(d, workers)
			if err != nil {
				t.Fatal(err)
			}
			for c := range serial {
				if !resultsEqual(serial[c], parallel[c]) {
					t.Fatalf("workers=%d: category %d differs from serial", workers, c)
				}
			}
		}
	}
}

// BenchmarkSolveCategoryScratch is BenchmarkSolveCategory with a reused
// Scratch: the steady-state per-category solve cost on an ingest tick.
func BenchmarkSolveCategoryScratch(b *testing.B) {
	d := randomCategory(31)
	m := DefaultModel()
	s := NewScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveScratch(d, 0, s); err != nil {
			b.Fatal(err)
		}
	}
}
