package recommend

import (
	"errors"
	"math"
	"testing"

	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

// fixture: one category, writer w, raters a (reliable, rates 0.8) and b
// (noisy, rates 0.2), asker u with heavy rating activity toward w.
func fixture(t *testing.T) (*ratings.Dataset, *core.Artifacts) {
	t.Helper()
	b := ratings.NewBuilder()
	cat := b.AddCategory("movies")
	w := b.AddUser("w")
	ra := b.AddUser("ra")
	rb := b.AddUser("rb")
	u := b.AddUser("u")
	var reviews []ratings.ReviewID
	for i := 0; i < 4; i++ {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(w, oid)
		if err != nil {
			t.Fatal(err)
		}
		reviews = append(reviews, rid)
	}
	for _, rid := range reviews {
		if err := b.AddRating(ra, rid, 0.8); err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(rb, rid, 0.2); err != nil {
			t.Fatal(err)
		}
	}
	// The asker rates three of the four reviews highly (so their derived
	// affinity lives in movies); the fourth is the prediction target.
	for _, rid := range reviews[:3] {
		if err := b.AddRating(u, rid, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	d := b.Build()
	art, err := core.DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, art
}

func TestGlobalMean(t *testing.T) {
	d, _ := fixture(t)
	g := NewGlobalMean(d)
	// Review 3 has ratings 0.8 (ra) and 0.2 (rb): mean 0.5.
	v, ok := g.Predict(3, 3)
	if !ok || math.Abs(v-0.5) > 1e-12 {
		t.Errorf("Predict = %v, %v; want 0.5", v, ok)
	}
	if g.Name() == "" {
		t.Error("empty name")
	}
}

func TestGlobalMeanExcludesAsker(t *testing.T) {
	d, _ := fixture(t)
	g := NewGlobalMean(d)
	// Review 0 has ratings by ra (0.8), rb (0.2) and u (0.8). Asking for
	// u must exclude u's own rating: (0.8+0.2)/2 = 0.5.
	v, ok := g.Predict(3, 0)
	if !ok || math.Abs(v-0.5) > 1e-12 {
		t.Errorf("Predict = %v, %v; want 0.5 (own rating excluded)", v, ok)
	}
}

func TestGlobalMeanNoRatings(t *testing.T) {
	b := ratings.NewBuilder()
	cat := b.AddCategory("c")
	w := b.AddUser("w")
	b.AddUser("u")
	oid, _ := b.AddObject(cat, "")
	if _, err := b.AddReview(w, oid); err != nil {
		t.Fatal(err)
	}
	d := b.Build()
	if _, ok := NewGlobalMean(d).Predict(1, 0); ok {
		t.Error("unrated review should be unpredictable")
	}
}

func TestRiggsQuality(t *testing.T) {
	d, art := fixture(t)
	q, err := NewRiggsQuality(d, art.RiggsResults)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := q.Predict(3, 3)
	if !ok {
		t.Fatal("no prediction")
	}
	// The reliable rater should pull the estimate above the plain mean
	// eventually; at minimum it must stay within the rating span.
	if v < 0.2 || v > 0.8 {
		t.Errorf("quality prediction %v outside rating span", v)
	}
	if _, ok := q.Predict(3, 999); ok {
		t.Error("absent review should be unpredictable")
	}
	if _, err := NewRiggsQuality(d, nil); err == nil {
		t.Error("mismatched results should error")
	}
}

func TestTrustWeighted(t *testing.T) {
	d, art := fixture(t)
	tw := NewTrustWeighted(d, art.Trust)
	v, ok := tw.Predict(3, 3)
	if !ok {
		t.Fatal("no prediction")
	}
	if v < 0.2 || v > 0.8 {
		t.Errorf("prediction %v outside rating span", v)
	}
	if _, ok := tw.Predict(3, 3); !ok {
		t.Error("prediction should be deterministic")
	}
}

func TestTrustWeightedFallsBackToPlainMean(t *testing.T) {
	// An asker with zero affinity trusts nobody: the predictor must fall
	// back to the unweighted mean rather than fail.
	d, art := fixture(t)
	tw := NewTrustWeighted(d, art.Trust)
	// User w (the writer) has writes-affinity, but raters ra/rb have no
	// expertise, so T̂(w, ra) = T̂(w, rb) = 0.
	v, ok := tw.Predict(0, 3)
	if !ok || math.Abs(v-0.5) > 1e-12 {
		t.Errorf("fallback = %v, %v; want plain mean 0.5", v, ok)
	}
}

func TestHoldoutSplit(t *testing.T) {
	cfg := synth.Small()
	cfg.NumUsers = 100
	cfg.TotalObjects = 40
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Holdout(d, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumRatings()+len(test) != d.NumRatings() {
		t.Errorf("split loses ratings: %d + %d != %d",
			train.NumRatings(), len(test), d.NumRatings())
	}
	frac := float64(len(test)) / float64(d.NumRatings())
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("held-out fraction = %v, want ~0.2", frac)
	}
	// Everything else is preserved.
	if train.NumUsers() != d.NumUsers() || train.NumReviews() != d.NumReviews() ||
		train.NumTrustEdges() != d.NumTrustEdges() {
		t.Error("non-rating entities changed")
	}
	// Deterministic.
	train2, test2, err := Holdout(d, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train2.NumRatings() != train.NumRatings() || len(test2) != len(test) {
		t.Error("holdout not deterministic")
	}
}

func TestHoldoutBadFrac(t *testing.T) {
	d, _ := fixture(t)
	for _, f := range []float64{0, 1, -0.5, 2} {
		if _, _, err := Holdout(d, f, 1); !errors.Is(err, ErrBadSplit) {
			t.Errorf("frac %v: error = %v, want ErrBadSplit", f, err)
		}
	}
}

func TestEvaluate(t *testing.T) {
	d, art := fixture(t)
	test := []ratings.Rating{
		{Rater: 3, Review: 3, Value: 0.8},
		{Rater: 3, Review: 999, Value: 0.8}, // unpredictable
	}
	// Guard the fake test entry against panics in predictors that index
	// reviews: only RiggsQuality and review-existence checks handle 999,
	// so evaluate GlobalMean with a valid subset.
	rep := Evaluate(NewGlobalMean(d), test[:1])
	if rep.N != 1 || rep.Coverage != 1 {
		t.Errorf("report = %+v", rep)
	}
	if math.Abs(rep.MAE-0.3) > 1e-12 { // |0.5 - 0.8|
		t.Errorf("MAE = %v, want 0.3", rep.MAE)
	}
	if math.Abs(rep.RMSE-0.3) > 1e-12 {
		t.Errorf("RMSE = %v, want 0.3", rep.RMSE)
	}
	q, err := NewRiggsQuality(d, art.RiggsResults)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := Evaluate(q, test)
	if rep2.Coverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5 (one of two predictable)", rep2.Coverage)
	}
	empty := Evaluate(q, nil)
	if empty.N != 0 || empty.Coverage != 0 || empty.MAE != 0 {
		t.Errorf("empty evaluation = %+v", empty)
	}
}

// Integration: on synthetic data the reputation-weighted quality should
// not lose to the plain mean (it down-weights careless raters), and the
// personalised predictor must keep full coverage via its fallback.
func TestPredictorsIntegration(t *testing.T) {
	cfg := synth.Small()
	cfg.Seed = 23
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Holdout(d, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	art, err := core.DefaultConfig().Run(train)
	if err != nil {
		t.Fatal(err)
	}
	gm := Evaluate(NewGlobalMean(train), test)
	rq, err := NewRiggsQuality(train, art.RiggsResults)
	if err != nil {
		t.Fatal(err)
	}
	riggsRep := Evaluate(rq, test)
	tw := Evaluate(NewTrustWeighted(train, art.Trust), test)

	if gm.Coverage < 0.5 {
		t.Errorf("global mean coverage %v unexpectedly low", gm.Coverage)
	}
	if tw.Coverage < gm.Coverage {
		t.Errorf("trust-weighted coverage %v below global mean %v (fallback broken?)",
			tw.Coverage, gm.Coverage)
	}
	// Reputation weighting should help, or at least not hurt much.
	if riggsRep.MAE > gm.MAE*1.05 {
		t.Errorf("riggs MAE %v clearly worse than global mean %v", riggsRep.MAE, gm.MAE)
	}
	for _, r := range []Report{gm, riggsRep, tw} {
		if r.MAE < 0 || r.RMSE < r.MAE {
			t.Errorf("%s: inconsistent errors MAE=%v RMSE=%v", r.Name, r.MAE, r.RMSE)
		}
	}
}
