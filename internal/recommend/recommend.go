// Package recommend applies the derived web of trust to the paper's
// motivating application: helping users "collect reliable information" by
// predicting how helpful a review will be *to a particular user*. It
// implements three predictors of increasing sophistication —
//
//   - GlobalMean: the plain average of a review's observed ratings (what a
//     site shows everyone);
//   - RiggsQuality: the paper's eq. 1 quality — the rater-reputation-
//     weighted average, discounting unreliable raters;
//   - TrustWeighted: a personalised score that weights each rater's
//     opinion by the asking user's derived trust T̂ in them (the
//     FilmTrust-style application of a web of trust);
//
// — and a deterministic holdout harness measuring MAE/RMSE/coverage.
package recommend

import (
	"errors"
	"fmt"
	"math"

	"weboftrust/internal/core"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
	"weboftrust/internal/stats"
)

// ErrBadSplit reports an invalid holdout fraction.
var ErrBadSplit = errors.New("recommend: invalid holdout fraction")

// Predictor estimates the rating a user would give a review.
type Predictor interface {
	// Predict returns the estimated rating value and whether an estimate
	// is possible for this (user, review) pair.
	Predict(u ratings.UserID, r ratings.ReviewID) (float64, bool)
	// Name identifies the predictor in reports.
	Name() string
}

// GlobalMean predicts the unweighted average of the review's observed
// ratings.
type GlobalMean struct {
	d *ratings.Dataset
}

// NewGlobalMean builds the baseline predictor over the training dataset.
func NewGlobalMean(d *ratings.Dataset) *GlobalMean { return &GlobalMean{d: d} }

// Name implements Predictor.
func (g *GlobalMean) Name() string { return "global-mean" }

// Predict implements Predictor.
func (g *GlobalMean) Predict(u ratings.UserID, r ratings.ReviewID) (float64, bool) {
	rs := g.d.RatingsOn(r)
	var sum float64
	n := 0
	for _, rt := range rs {
		if rt.Rater == u {
			continue // never peek at the asking user's own rating
		}
		sum += rt.Value
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// RiggsQuality predicts the eq. 1 review quality: the rater-reputation-
// weighted average from the category's converged fixed point.
type RiggsQuality struct {
	d       *ratings.Dataset
	results []*riggs.CategoryResult
}

// NewRiggsQuality builds the quality predictor from per-category Riggs
// results (as produced by the pipeline).
func NewRiggsQuality(d *ratings.Dataset, results []*riggs.CategoryResult) (*RiggsQuality, error) {
	if len(results) != d.NumCategories() {
		return nil, fmt.Errorf("recommend: %d riggs results for %d categories", len(results), d.NumCategories())
	}
	return &RiggsQuality{d: d, results: results}, nil
}

// Name implements Predictor.
func (q *RiggsQuality) Name() string { return "riggs-quality" }

// Predict implements Predictor.
func (q *RiggsQuality) Predict(u ratings.UserID, r ratings.ReviewID) (float64, bool) {
	if int(r) < 0 || int(r) >= q.d.NumReviews() {
		return 0, false
	}
	if len(q.d.RatingsOn(r)) == 0 {
		return 0, false // unrated reviews carry no signal, only the prior
	}
	rev := q.d.Review(r)
	v, ok := q.results[rev.Category].QualityOf(r)
	return v, ok
}

// TrustWeighted personalises the estimate: each rater's opinion is
// weighted by the asking user's derived trust in that rater, falling back
// to unweighted when the user trusts none of them.
type TrustWeighted struct {
	d     *ratings.Dataset
	trust *core.DerivedTrust
}

// NewTrustWeighted builds the personalised predictor.
func NewTrustWeighted(d *ratings.Dataset, trust *core.DerivedTrust) *TrustWeighted {
	return &TrustWeighted{d: d, trust: trust}
}

// Name implements Predictor.
func (t *TrustWeighted) Name() string { return "trust-weighted" }

// Predict implements Predictor.
func (t *TrustWeighted) Predict(u ratings.UserID, r ratings.ReviewID) (float64, bool) {
	rs := t.d.RatingsOn(r)
	var num, den float64
	var plainSum float64
	n := 0
	for _, rt := range rs {
		if rt.Rater == u {
			continue
		}
		w := t.trust.Value(u, rt.Rater)
		num += w * rt.Value
		den += w
		plainSum += rt.Value
		n++
	}
	if n == 0 {
		return 0, false
	}
	if den == 0 {
		return plainSum / float64(n), true // no trusted raters: plain mean
	}
	return num / den, true
}

// Holdout deterministically splits a dataset's ratings into a training
// dataset (with the held-out ratings removed) and the held-out test set.
// frac is the held-out fraction in (0, 1).
func Holdout(d *ratings.Dataset, frac float64, seed uint64) (*ratings.Dataset, []ratings.Rating, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadSplit, frac)
	}
	rng := stats.NewRand(seed)
	var test []ratings.Rating
	b := ratings.NewBuilder()
	for c := 0; c < d.NumCategories(); c++ {
		b.AddCategory(d.CategoryName(ratings.CategoryID(c)))
	}
	for u := 0; u < d.NumUsers(); u++ {
		b.AddUser(d.UserName(ratings.UserID(u)))
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if _, err := b.AddObject(obj.Category, obj.Name); err != nil {
			return nil, nil, err
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if _, err := b.AddReview(rev.Writer, rev.Object); err != nil {
			return nil, nil, err
		}
	}
	for _, rt := range d.Ratings() {
		if rng.Float64() < frac {
			test = append(test, rt)
			continue
		}
		if err := b.AddRating(rt.Rater, rt.Review, rt.Value); err != nil {
			return nil, nil, err
		}
	}
	for _, e := range d.TrustEdges() {
		if err := b.AddTrust(e.From, e.To); err != nil {
			return nil, nil, err
		}
	}
	return b.Build(), test, nil
}

// Report holds a predictor's held-out accuracy.
type Report struct {
	Name string
	// MAE and RMSE are over the covered test ratings; Coverage is the
	// fraction of test ratings the predictor could estimate at all.
	MAE      float64
	RMSE     float64
	Coverage float64
	N        int
}

// Evaluate measures a predictor against held-out ratings.
func Evaluate(p Predictor, test []ratings.Rating) Report {
	rep := Report{Name: p.Name()}
	var absSum, sqSum float64
	covered := 0
	for _, rt := range test {
		pred, ok := p.Predict(rt.Rater, rt.Review)
		if !ok {
			continue
		}
		covered++
		diff := pred - rt.Value
		absSum += math.Abs(diff)
		sqSum += diff * diff
	}
	rep.N = covered
	if len(test) > 0 {
		rep.Coverage = float64(covered) / float64(len(test))
	}
	if covered > 0 {
		rep.MAE = absSum / float64(covered)
		rep.RMSE = math.Sqrt(sqSum / float64(covered))
	}
	return rep
}
