package router_test

// The chaos harness: the cluster-equivalence property under failure.
// Two shards × two replicas, every replica behind its own fault
// injector (internal/faulty), an unsharded reference over the same log,
// and the router in front. Each scenario — replica kill/restart, slow
// replica, flapping replica, total shard death — asserts the honesty
// contract from DESIGN.md §12: every successful response is
// byte-identical to the unsharded reference, and anything that is NOT
// the fresh answer is explicitly labeled (X-Trustd-Degraded) — never a
// silently wrong body, and never a router-synthesised 502 while a
// labeled-degraded path exists. Run with -race (make chaos-smoke).

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/faulty"
	"weboftrust/internal/router"
	"weboftrust/internal/server"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

const (
	chaosShards   = 2
	chaosReplicas = 2
	// chaosCooldown is the breaker cooldown every chaos router runs with —
	// short enough that recovery scenarios converge in test time.
	chaosCooldown = 50 * time.Millisecond
)

// chaosReplica is one shard replica behind its own fault injector.
type chaosReplica struct {
	inj *faulty.Injector
	ts  *httptest.Server
}

type chaosCluster struct {
	ref      *httptest.Server // unsharded reference
	reps     [chaosShards][chaosReplicas]*chaosReplica
	shardMap [][]string
	// users holds sample user ids per owning shard, for building
	// shard-targeted query paths.
	users [chaosShards][]int
}

var (
	chaosOnce sync.Once
	chaosFix  *chaosCluster
	chaosErr  error
)

// getChaosCluster builds the shared chaos fixture once: a synth.Small
// log, five server processes (4 shard replicas + the reference), each
// replica wrapped in a passthrough injector. Tests mutate only injector
// fault sets (restored via clearFaults) and build their own routers, so
// sharing the expensive server boots is safe.
func getChaosCluster(t *testing.T) *chaosCluster {
	t.Helper()
	chaosOnce.Do(func() { chaosFix, chaosErr = buildChaosCluster() })
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosFix
}

func buildChaosCluster() (*chaosCluster, error) {
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "chaos")
	if err != nil {
		return nil, err
	}
	logPath := filepath.Join(dir, "events.log")
	f, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	c := &chaosCluster{}
	startServer := func(opts ...weboftrust.Option) (*httptest.Server, error) {
		srv, _, err := server.Open(logPath, time.Hour, server.Options{}, opts...)
		if err != nil {
			return nil, err
		}
		return httptest.NewServer(srv.Handler()), nil
	}
	if c.ref, err = startServer(); err != nil {
		return nil, err
	}
	c.shardMap = make([][]string, chaosShards)
	for i := 0; i < chaosShards; i++ {
		for j := 0; j < chaosReplicas; j++ {
			srv, _, err := server.Open(logPath, time.Hour, server.Options{}, weboftrust.WithShard(i, chaosShards))
			if err != nil {
				return nil, err
			}
			inj := faulty.New(uint64(1 + i*chaosReplicas + j))
			ts := httptest.NewServer(inj.Wrap(srv.Handler()))
			c.reps[i][j] = &chaosReplica{inj: inj, ts: ts}
			c.shardMap[i] = append(c.shardMap[i], ts.URL)
		}
	}
	// Sample low user ids per owning shard (low enough that u and u+1 are
	// always in range for every query shape the scenarios build).
	for u := 0; (len(c.users[0]) < 6 || len(c.users[1]) < 6) && u < 100; u++ {
		owner := shard.Owner(u, chaosShards)
		if len(c.users[owner]) < 6 {
			c.users[owner] = append(c.users[owner], u)
		}
	}
	if len(c.users[0]) < 6 || len(c.users[1]) < 6 {
		return nil, fmt.Errorf("chaos fixture: jump hash starved a shard of sample users")
	}
	return c, nil
}

// clearFaults returns every injector to passthrough — registered as a
// cleanup by each chaos test so a failed scenario cannot poison the
// next.
func (c *chaosCluster) clearFaults() {
	for i := range c.reps {
		for j := range c.reps[i] {
			c.reps[i][j].inj.SetFaults()
		}
	}
}

// newChaosRouter builds a fresh router over the shared cluster (fresh
// breakers, fresh metrics) with test-speed failure handling: immediate
// retries, short cooldown.
func newChaosRouter(t *testing.T, c *chaosCluster, mutate func(*router.Config)) *httptest.Server {
	t.Helper()
	cfg := router.Config{
		Shards:          c.shardMap,
		Retries:         3,
		RetryBackoff:    -1, // immediate: scenarios assert outcomes, not pacing
		BreakerCooldown: chaosCooldown,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// chaosGet is fetch plus response headers (the degraded label lives
// there).
func chaosGet(t *testing.T, base, path string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body, resp.Header
}

// metricValue scrapes one counter/gauge from a Prometheus text surface.
func metricValue(t *testing.T, base, name string) int64 {
	t.Helper()
	_, body, _ := chaosGet(t, base, "/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: parse %q: %v", name, f[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found on %s/metrics", name, base)
	return 0
}

// chaosPaths builds the per-source sample paths for one shard's users.
func chaosPaths(users []int) []string {
	var paths []string
	for _, u := range users {
		paths = append(paths,
			fmt.Sprintf("/v1/topk?user=%d&k=7", u),
			fmt.Sprintf("/v1/trust?from=%d&to=%d", u, u+1),
			fmt.Sprintf("/v1/neighbors?user=%d", u),
		)
	}
	return paths
}

// TestChaosReplicaKillFailover kills one replica of shard 0 (every
// connection reset — the shape of a killed process) and drives
// concurrent traffic at both shards: every response must stay a fresh
// 200, byte-identical to the unsharded reference, with no degraded
// label — failover is invisible to clients. The replica's breaker must
// trip (observable in /metrics), and after the replica is revived a
// half-open probe must close it again (the recovery counter moves).
func TestChaosReplicaKillFailover(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, nil)

	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})

	paths := append(chaosPaths(c.users[0]), chaosPaths(c.users[1])...)
	want := make(map[string][]byte, len(paths))
	for _, p := range paths {
		code, body, _ := chaosGet(t, c.ref.URL, p)
		if code != http.StatusOK {
			t.Fatalf("reference %s: %d", p, code)
		}
		want[p] = body
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 3*len(paths); i++ {
				p := paths[(i+w)%len(paths)]
				resp, err := client.Get(rts.URL + p)
				if err != nil {
					errCh <- fmt.Errorf("GET %s: %v", p, err)
					return
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errCh <- fmt.Errorf("GET %s: read: %v", p, rerr)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("GET %s: %d %s", p, resp.StatusCode, body)
					return
				}
				if resp.Header.Get(router.DegradedHeader) != "" {
					errCh <- fmt.Errorf("GET %s: unexpectedly degraded (a healthy replica exists)", p)
					return
				}
				if string(body) != string(want[p]) {
					errCh <- fmt.Errorf("GET %s: body diverged from unsharded reference under failover", p)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	if trips := metricValue(t, rts.URL, "trustrouter_breaker_trips_total"); trips < 1 {
		t.Fatalf("breaker never tripped for the killed replica: trips=%d", trips)
	}

	// Revive the replica: within a few cooldowns a half-open probe must
	// close its breaker again.
	c.reps[0][0].inj.SetFaults()
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, rts.URL, "trustrouter_breaker_recoveries_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("revived replica never recovered (no half-open probe succeeded)")
		}
		for _, p := range chaosPaths(c.users[0]) {
			code, body, _ := chaosGet(t, rts.URL, p)
			if code != http.StatusOK || string(body) != string(want[p]) {
				t.Fatalf("during recovery %s: %d, body match=%v", p, code, string(body) == string(want[p]))
			}
		}
		time.Sleep(chaosCooldown)
	}
	if open := metricValue(t, rts.URL, "trustrouter_breaker_open"); open != 0 {
		t.Fatalf("breaker_open gauge = %d after recovery, want 0", open)
	}
}

// TestChaosSlowReplicaHedging makes one replica of shard 0 pathologically
// slow (300ms on every request) and routes with hedging enabled: the
// router must launch hedge requests, serve the fast replica's answer
// (hedge wins observable in /metrics), and every body must stay
// byte-identical to the reference — a slow replica costs latency, never
// correctness.
func TestChaosSlowReplicaHedging(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, func(cfg *router.Config) {
		cfg.HedgeAfter = 20 * time.Millisecond
	})

	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Latency: 300 * time.Millisecond})

	// Enough sequential shard-0 requests that the replica rotation lands
	// the first attempt on the slow replica several times.
	paths := chaosPaths(c.users[0])
	for round := 0; round < 2; round++ {
		for _, p := range paths {
			wantCode, wantBody, _ := chaosGet(t, c.ref.URL, p)
			gotCode, gotBody, hdr := chaosGet(t, rts.URL, p)
			if gotCode != wantCode || string(gotBody) != string(wantBody) {
				t.Fatalf("%s under slow replica: %d vs ref %d, body match=%v",
					p, gotCode, wantCode, string(gotBody) == string(wantBody))
			}
			if hdr.Get(router.DegradedHeader) != "" {
				t.Fatalf("%s: hedged response labeled degraded", p)
			}
		}
	}
	if hedges := metricValue(t, rts.URL, "trustrouter_hedges_total"); hedges < 1 {
		t.Fatalf("no hedges launched against the slow replica")
	}
	if wins := metricValue(t, rts.URL, "trustrouter_hedge_wins_total"); wins < 1 {
		t.Fatalf("no hedge ever won against a 300ms replica with a 20ms hedge trigger")
	}
}

// TestChaosFlappingReplica gives one replica of shard 0 a coin-flip 503
// (a process stuck in overload, answering but useless): the retry layer
// must absorb every flap — all responses 200, byte-identical, never the
// injected error body, never a degraded label.
func TestChaosFlappingReplica(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, nil)

	c.reps[0][1].inj.SetFaults(faulty.Fault{Probability: 0.5, Status: http.StatusServiceUnavailable})

	paths := append(chaosPaths(c.users[0]), chaosPaths(c.users[1])...)
	for round := 0; round < 3; round++ {
		for _, p := range paths {
			wantCode, wantBody, _ := chaosGet(t, c.ref.URL, p)
			gotCode, gotBody, hdr := chaosGet(t, rts.URL, p)
			if gotCode != wantCode {
				t.Fatalf("%s under flapping replica: %d (%s), ref %d", p, gotCode, gotBody, wantCode)
			}
			if strings.Contains(string(gotBody), "injected fault") {
				t.Fatalf("%s: the injected 503 body leaked through the retry layer", p)
			}
			if string(gotBody) != string(wantBody) {
				t.Fatalf("%s: body diverged under flapping replica", p)
			}
			if hdr.Get(router.DegradedHeader) != "" {
				t.Fatalf("%s: flap-absorbed response labeled degraded", p)
			}
		}
	}
}

// TestChaosWaitReadyWithHungReplica blackholes one replica of shard 0's
// /readyz (accepts, never answers — the shape of a hung process) and
// asserts WaitReady still converges: every shard has a healthy replica,
// and readiness probes run concurrently, so the hung replica burns only
// its own goroutine's wait, never the sweep budget of the replicas
// behind it.
func TestChaosWaitReadyWithHungReplica(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	c.reps[0][0].inj.SetFaults(faulty.Fault{PathPrefix: "/readyz", Probability: 1, Blackhole: true})

	rt, err := router.New(router.Config{Shards: c.shardMap})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady with one hung replica: %v (every shard has a healthy replica)", err)
	}
}

// TestChaosHedgedProbeLoserReleasesBreaker pins the probe-abandonment
// regression: with hedging enabled, a half-open probe granted to a
// pathologically slow replica loses the hedge race and is canceled —
// the reaper must resolve the probe (recording a failure, reopening the
// breaker) so that once the replica heals a later probe can still close
// it. A wedged half-open breaker would blacklist the replica until
// restart: recoveries would never move and the open gauge never drain.
func TestChaosHedgedProbeLoserReleasesBreaker(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, func(cfg *router.Config) {
		cfg.HedgeAfter = 20 * time.Millisecond
	})

	// Trip replica 0's breaker (connection resets, default threshold).
	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})
	paths := chaosPaths(c.users[0])
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, rts.URL, "trustrouter_breaker_trips_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped for the reset replica")
		}
		for _, p := range paths {
			chaosGet(t, rts.URL, p)
		}
	}

	// The replica now answers, but slower than the hedge trigger: every
	// half-open probe it is granted loses the race and is canceled.
	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Latency: 150 * time.Millisecond})
	time.Sleep(2 * chaosCooldown)
	for i := 0; i < 10; i++ {
		for _, p := range paths {
			if code, body, _ := chaosGet(t, rts.URL, p); code != http.StatusOK {
				t.Fatalf("%s during slow half-open probes: %d %s", p, code, body)
			}
		}
		time.Sleep(chaosCooldown / 2)
	}

	// Heal the replica: a later probe must still be granted and close
	// the breaker — impossible if an abandoned race-loser probe wedged
	// it half-open.
	c.reps[0][0].inj.SetFaults()
	deadline = time.Now().Add(5 * time.Second)
	for metricValue(t, rts.URL, "trustrouter_breaker_recoveries_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered after heal: an abandoned hedge-race probe wedged it half-open")
		}
		for _, p := range paths {
			chaosGet(t, rts.URL, p)
		}
		time.Sleep(chaosCooldown)
	}
	if open := metricValue(t, rts.URL, "trustrouter_breaker_open"); open != 0 {
		t.Fatalf("breaker_open gauge = %d after recovery, want 0", open)
	}
}

// TestChaosColdStaleReadyzWaiting kills a whole shard behind a router
// with degraded serving enabled but a COLD last-known-good cache:
// /readyz must stay 503 "waiting", because demoting to 200 "degraded"
// is only honest when the cache can actually answer something — an
// empty cache would keep the router in the LB rotation while every
// dead-shard request 502s.
func TestChaosColdStaleReadyzWaiting(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, func(cfg *router.Config) {
		cfg.StaleEntries = 64
	})

	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})
	c.reps[0][1].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})

	code, body, _ := chaosGet(t, rts.URL, "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "waiting") {
		t.Fatalf("/readyz with dead shard + empty stale cache = %d %s, want 503 waiting", code, body)
	}
}

// TestChaosExhaustedRetryableCountsUpstreamError pins the metrics
// contract on the terminal-retryable path: when every attempt returns a
// gateway-ish status and no stale fallback exists, the relayed shard
// error is an upstream error, not a proxied success — otherwise
// exhausted requests are invisible in trustrouter_upstream_errors_total
// whenever the dying shard still manages to emit 503s.
func TestChaosExhaustedRetryableCountsUpstreamError(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, nil)

	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Status: http.StatusServiceUnavailable})
	c.reps[0][1].inj.SetFaults(faulty.Fault{Probability: 1, Status: http.StatusServiceUnavailable})

	p := fmt.Sprintf("/v1/topk?user=%d&k=7", c.users[0][0])
	code, body, _ := chaosGet(t, rts.URL, p)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retryable attempts: %d (%s), want the shard's own 503 relayed", code, body)
	}
	if v := metricValue(t, rts.URL, "trustrouter_upstream_errors_total"); v < 1 {
		t.Fatalf("upstream_errors_total = %d after exhausting attempts on a 503-only shard, want >= 1", v)
	}
	if v := metricValue(t, rts.URL, "trustrouter_proxied_total"); v != 0 {
		t.Fatalf("proxied_total = %d, want 0 (an exhausted-attempts relay is not a proxied success)", v)
	}
}

// TestChaosShardDeathDegradedServing kills BOTH replicas of shard 0 and
// pins graceful degradation end to end: warmed request URIs serve their
// last known good body as 200 + X-Trustd-Degraded: stale (byte-identical
// to the fresh answer they cached), never-seen URIs get the aggregated
// 502, the other shard keeps serving fresh, /readyz reports degraded
// (not 503 — the router still answers), and after revival fresh serving
// resumes with the degraded label gone.
func TestChaosShardDeathDegradedServing(t *testing.T) {
	c := getChaosCluster(t)
	t.Cleanup(c.clearFaults)
	rts := newChaosRouter(t, c, func(cfg *router.Config) {
		cfg.StaleEntries = 64
	})

	// Warm the last-known-good cache through the router while healthy.
	warm := chaosPaths(c.users[0])[:4]
	want := make(map[string][]byte, len(warm))
	for _, p := range warm {
		code, body, hdr := chaosGet(t, rts.URL, p)
		if code != http.StatusOK {
			t.Fatalf("warmup %s: %d", p, code)
		}
		if hdr.Get(router.DegradedHeader) != "" {
			t.Fatalf("warmup %s labeled degraded", p)
		}
		want[p] = body
	}

	// Total shard loss: both replicas reset every connection.
	c.reps[0][0].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})
	c.reps[0][1].inj.SetFaults(faulty.Fault{Probability: 1, Reset: true})

	for round := 0; round < 2; round++ {
		for _, p := range warm {
			code, body, hdr := chaosGet(t, rts.URL, p)
			if code != http.StatusOK {
				t.Fatalf("%s with shard dead: %d, want 200 stale (a labeled-degraded path exists)", p, code)
			}
			if hdr.Get(router.DegradedHeader) != "stale" {
				t.Fatalf("%s with shard dead: served without the stale label", p)
			}
			if string(body) != string(want[p]) {
				t.Fatalf("%s: stale body diverged from the fresh body that warmed it", p)
			}
		}
	}
	// A URI the cache never saw cannot be served honestly: the aggregated
	// 502 names every failed attempt.
	coldPath := fmt.Sprintf("/v1/topk?user=%d&k=42", c.users[0][5])
	code, body, _ := chaosGet(t, rts.URL, coldPath)
	if code != http.StatusBadGateway {
		t.Fatalf("uncached URI with shard dead: %d (%s), want 502", code, body)
	}
	if !strings.Contains(string(body), "unavailable after") || !strings.Contains(string(body), "attempts") {
		t.Fatalf("502 body lacks aggregated attempt errors: %s", body)
	}
	// The healthy shard is untouched: fresh, unlabeled, byte-identical.
	for _, p := range chaosPaths(c.users[1])[:3] {
		wantCode, wantBody, _ := chaosGet(t, c.ref.URL, p)
		gotCode, gotBody, hdr := chaosGet(t, rts.URL, p)
		if gotCode != wantCode || string(gotBody) != string(wantBody) || hdr.Get(router.DegradedHeader) != "" {
			t.Fatalf("healthy shard path %s degraded by the other shard's death: %d", p, gotCode)
		}
	}
	// Readiness: degraded, not down.
	code, body, _ = chaosGet(t, rts.URL, "/readyz")
	if code != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("/readyz with shard dead + stale serving: %d %s, want 200 degraded", code, body)
	}
	if served := metricValue(t, rts.URL, "trustrouter_stale_served_total"); served < int64(2*len(warm)) {
		t.Fatalf("stale_served_total = %d, want >= %d", served, 2*len(warm))
	}
	if entries := metricValue(t, rts.URL, "trustrouter_stale_entries"); entries < int64(len(warm)) {
		t.Fatalf("stale_entries gauge = %d, want >= %d", entries, len(warm))
	}

	// Revival: fresh serving must resume (label gone) within a few
	// breaker cooldowns, byte-identical to the reference.
	c.reps[0][0].inj.SetFaults()
	c.reps[0][1].inj.SetFaults()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p := warm[0]
		code, gotBody, hdr := chaosGet(t, rts.URL, p)
		if code == http.StatusOK && hdr.Get(router.DegradedHeader) == "" {
			if string(gotBody) != string(want[p]) {
				t.Fatalf("%s after revival: fresh body diverged", p)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard revived but router kept serving degraded (last: %d, label=%q)",
				code, hdr.Get(router.DegradedHeader))
		}
		time.Sleep(chaosCooldown)
	}
	// readyz back to plain ready.
	deadline = time.Now().Add(5 * time.Second)
	for {
		code, body, _ := chaosGet(t, rts.URL, "/readyz")
		if code == http.StatusOK && strings.Contains(string(body), "ready") && !strings.Contains(string(body), "degraded") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never returned to ready after revival: %d %s", code, body)
		}
		time.Sleep(chaosCooldown)
	}
}
