package router

// White-box tests for the small pure pieces of the routing layer: the
// circuit-breaker state machine, shard-list parsing edge cases, and the
// allocation-free query scanner.

import (
	"testing"
	"time"
)

func TestBreakerTripCooldownProbeRecover(t *testing.T) {
	var b breaker
	now := time.Now().UnixNano()
	cooldown := int64(time.Second)

	if ok, probe := b.acquire(now, cooldown); !ok || probe {
		t.Fatalf("fresh breaker: acquire = (%v, %v), want plain admission", ok, probe)
	}
	// threshold-1 failures: still closed.
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		if tripped := b.onFailure(now, DefaultBreakerThreshold); tripped {
			t.Fatalf("tripped after %d failures, threshold %d", i+1, DefaultBreakerThreshold)
		}
	}
	if ok, _ := b.acquire(now, cooldown); !ok {
		t.Fatalf("breaker under threshold refused an attempt")
	}
	if tripped := b.onFailure(now, DefaultBreakerThreshold); !tripped {
		t.Fatalf("threshold-th failure did not report a trip")
	}
	if b.stateName() != "open" {
		t.Fatalf("state after trip = %q, want open", b.stateName())
	}
	// Open + cooldown not elapsed: everyone is refused.
	if ok, _ := b.acquire(now+cooldown/2, cooldown); ok {
		t.Fatalf("open breaker admitted before cooldown")
	}
	// Cooldown elapsed: exactly one caller wins the half-open probe.
	probeAt := now + cooldown + 1
	if ok, probe := b.acquire(probeAt, cooldown); !ok || !probe {
		t.Fatalf("cooldown elapsed: acquire = (%v, %v), want the probe grant", ok, probe)
	}
	if b.stateName() != "half-open" {
		t.Fatalf("state during probe = %q, want half-open", b.stateName())
	}
	if ok, _ := b.acquire(probeAt, cooldown); ok {
		t.Fatalf("second caller also got the half-open probe")
	}
	// Probe succeeds: recovered, closed, failure count reset.
	if recovered := b.onSuccess(); !recovered {
		t.Fatalf("successful probe did not report recovery")
	}
	if b.stateName() != "closed" {
		t.Fatalf("state after recovery = %q, want closed", b.stateName())
	}
	if ok, probe := b.acquire(probeAt, cooldown); !ok || probe {
		t.Fatalf("recovered breaker: acquire = (%v, %v), want plain admission", ok, probe)
	}
	// The consecutive counter was reset: threshold-1 new failures must
	// not trip.
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		if b.onFailure(probeAt, DefaultBreakerThreshold) {
			t.Fatalf("stale failure count survived recovery")
		}
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	var b breaker
	cooldown := int64(time.Second)
	now := int64(1)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		b.onFailure(now, DefaultBreakerThreshold)
	}
	probeAt := now + cooldown + 1
	if ok, probe := b.acquire(probeAt, cooldown); !ok || !probe {
		t.Fatalf("probe refused after cooldown: (%v, %v)", ok, probe)
	}
	// Probe fails: reopen silently (no second trip), fresh cooldown from
	// the probe failure's timestamp.
	if tripped := b.onFailure(probeAt, DefaultBreakerThreshold); tripped {
		t.Fatalf("failed probe double-counted as a trip")
	}
	if b.stateName() != "open" {
		t.Fatalf("state after failed probe = %q, want open", b.stateName())
	}
	if ok, _ := b.acquire(probeAt+cooldown/2, cooldown); ok {
		t.Fatalf("reopened breaker admitted before the fresh cooldown")
	}
	if ok, _ := b.acquire(probeAt+cooldown+1, cooldown); !ok {
		t.Fatalf("reopened breaker refused the next probe")
	}
}

// TestBreakerAbandonedProbeReleases pins the wedge regression: a granted
// half-open probe that is abandoned (request gone during backoff, hedge
// race canceled the probe) must be resolved via onFailure — the breaker
// reopens for a fresh cooldown and a LATER caller gets to probe, instead
// of the breaker sticking half-open and blacklisting the replica until
// restart.
func TestBreakerAbandonedProbeReleases(t *testing.T) {
	var b breaker
	cooldown := int64(time.Second)
	now := int64(1)
	for i := 0; i < DefaultBreakerThreshold; i++ {
		b.onFailure(now, DefaultBreakerThreshold)
	}
	probeAt := now + cooldown + 1
	if ok, probe := b.acquire(probeAt, cooldown); !ok || !probe {
		t.Fatalf("probe refused after cooldown: (%v, %v)", ok, probe)
	}
	// The probe is abandoned: the holder records a failure in lieu of an
	// outcome. The breaker must be open (not half-open) with the cooldown
	// restarted at the abandonment time.
	abandonAt := probeAt + 7
	if tripped := b.onFailure(abandonAt, DefaultBreakerThreshold); tripped {
		t.Fatalf("abandoning the probe double-counted as a trip")
	}
	if b.stateName() != "open" {
		t.Fatalf("state after abandoned probe = %q, want open", b.stateName())
	}
	if ok, _ := b.acquire(abandonAt+cooldown/2, cooldown); ok {
		t.Fatalf("admitted before the refreshed cooldown elapsed")
	}
	if ok, probe := b.acquire(abandonAt+cooldown+1, cooldown); !ok || !probe {
		t.Fatalf("breaker wedged after an abandoned probe: (%v, %v)", ok, probe)
	}
	if recovered := b.onSuccess(); !recovered {
		t.Fatalf("successful re-probe did not recover the breaker")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	var b breaker
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		b.onFailure(1, DefaultBreakerThreshold)
	}
	if recovered := b.onSuccess(); recovered {
		t.Fatalf("success on a closed breaker reported recovery")
	}
	// The streak restarts: threshold-1 more failures must not trip.
	for i := 0; i < DefaultBreakerThreshold-1; i++ {
		if b.onFailure(1, DefaultBreakerThreshold) {
			t.Fatalf("failure streak survived an intervening success")
		}
	}
}

func TestParseShards(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want [][]string
		err  bool
	}{
		{"single", "http://a:1", [][]string{{"http://a:1"}}, false},
		{"three shards", "a,b,c", [][]string{{"a"}, {"b"}, {"c"}}, false},
		{"replicas", "a|a2,b", [][]string{{"a", "a2"}, {"b"}}, false},
		{"spaces trimmed", " a | a2 , b ", [][]string{{"a", "a2"}, {"b"}}, false},
		{"empty replica dropped", "a||a2,b", [][]string{{"a", "a2"}, {"b"}}, false},
		{"empty", "", nil, true},
		{"only whitespace", "   ", nil, true},
		{"trailing comma", "a,b,", nil, true},
		{"leading comma", ",a", nil, true},
		{"whitespace-only shard", "a, ,b", nil, true},
		{"whitespace-only replica list", "a, | ,b", nil, true},
		{"double comma", "a,,b", nil, true},
	}
	for _, tc := range cases {
		got, err := ParseShards(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%s: ParseShards(%q) = %v, want error", tc.name, tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: ParseShards(%q): %v", tc.name, tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d shards, want %d", tc.name, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if len(got[i]) != len(tc.want[i]) {
				t.Errorf("%s: shard %d has %v, want %v", tc.name, i, got[i], tc.want[i])
				continue
			}
			for j := range got[i] {
				if got[i][j] != tc.want[i][j] {
					t.Errorf("%s: shard %d replica %d = %q, want %q", tc.name, i, j, got[i][j], tc.want[i][j])
				}
			}
		}
	}
}

func TestQueryInt(t *testing.T) {
	cases := []struct {
		name  string
		query string
		key   string
		want  int
		ok    bool
	}{
		{"simple", "user=7", "user", 7, true},
		{"second pair", "k=10&user=7", "user", 7, true},
		{"missing", "k=10", "user", 0, false},
		{"empty query", "", "user", 0, false},
		{"empty value", "user=", "user", 0, false},
		{"non-numeric", "user=abc", "user", 0, false},
		// Percent-escaped digits are NOT decoded: the scanner works on
		// the raw query, and shards see the same raw query — a router
		// that decoded here could route to a different shard than the
		// one the shard's own parser implies. Reject, don't guess.
		{"escaped value", "user=%37", "user", 0, false},
		{"escaped key no match", "us%65r=7", "user", 0, false},
		// Duplicates: first occurrence wins, even when invalid — the
		// scanner never falls through to a later duplicate.
		{"duplicate first wins", "user=3&user=9", "user", 3, true},
		{"duplicate invalid first", "user=x&user=9", "user", 0, false},
		{"key prefix no match", "username=5", "user", 0, false},
		{"negative", "user=-2", "user", -2, true},
		{"flag without equals", "user", "user", 0, false},
	}
	for _, tc := range cases {
		got, ok := queryInt(tc.query, tc.key)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: queryInt(%q, %q) = (%d, %v), want (%d, %v)",
				tc.name, tc.query, tc.key, got, ok, tc.want, tc.ok)
		}
	}
}

func TestStaleCacheLRU(t *testing.T) {
	c := newStaleCache(2)
	c.put("a", "application/json", []byte("A"))
	c.put("b", "application/json", []byte("B"))
	if ct, body, ok := c.get("a"); !ok || string(body) != "A" || ct != "application/json" {
		t.Fatalf("get a: %q %q %v", ct, body, ok)
	}
	// "b" is now the LRU entry; inserting "c" must evict it.
	c.put("c", "application/json", []byte("C"))
	if _, _, ok := c.get("b"); ok {
		t.Fatalf("LRU entry b survived eviction")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatalf("recently used entry a was evicted")
	}
	// Update-in-place must not grow the cache.
	c.put("a", "application/json", []byte("A2"))
	if _, body, _ := c.get("a"); string(body) != "A2" {
		t.Fatalf("update-in-place lost: %q", body)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
