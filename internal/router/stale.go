package router

import (
	"container/list"
	"sync"
)

// staleCache is the router's flag-gated last-known-good store: the most
// recent 200 body for each per-source request URI, served with an
// explicit degraded marking when every replica of the owning shard is
// unreachable. It is a plain mutex-guarded LRU bounded by entry count —
// it sits off the success hot path only when disabled, so enabling
// degraded serving is an explicit trade of one lock and one body copy
// per proxied success for availability under total shard loss.
type staleCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	ll  *list.List // front = most recent
}

type staleEntry struct {
	key  string
	ct   string
	body []byte
}

func newStaleCache(max int) *staleCache {
	return &staleCache{max: max, m: make(map[string]*list.Element), ll: list.New()}
}

// put records the latest good body for a request URI. body is retained;
// callers must pass an unshared copy.
func (c *staleCache) put(key, ct string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*staleEntry)
		e.ct, e.body = ct, body
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&staleEntry{key: key, ct: ct, body: body})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*staleEntry).key)
	}
}

// get returns the last known good body for a request URI, refreshing its
// recency. The returned slice is shared: serve it, don't mutate it.
func (c *staleCache) get(key string) (ct string, body []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	if !found {
		return "", nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*staleEntry)
	return e.ct, e.body, true
}

// len reports the resident entry count (stats surface).
func (c *staleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
