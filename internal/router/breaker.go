package router

import (
	"sync/atomic"
	"time"
)

// breaker is one replica's circuit breaker: consecutive-failure trip,
// cooldown, single half-open probe. All state is atomic — acquire sits
// on the proxy hot path and must stay lock- and allocation-free.
//
// States: closed (healthy, requests flow), open (tripped; requests are
// skipped until the cooldown elapses), half-open (exactly one probe
// request is in flight; everyone else keeps skipping). A successful
// response — any response at all that is not a retryable gateway status —
// closes the breaker; a failed probe reopens it for a fresh cooldown.
type breaker struct {
	state    atomic.Int32 // bClosed | bOpen | bHalfOpen
	consec   atomic.Int32 // consecutive failures while closed
	openedAt atomic.Int64 // unix nanos of the trip (valid while open)
}

const (
	bClosed int32 = iota
	bOpen
	bHalfOpen
)

// DefaultBreakerThreshold trips a replica's breaker after this many
// consecutive failures.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is how long a tripped replica rests before the
// half-open probe.
const DefaultBreakerCooldown = time.Second

// acquire reports whether an attempt may be sent to this replica now.
// While open it returns false until the cooldown elapses, then grants
// exactly one caller the half-open probe (CAS-arbitrated); while
// half-open every non-probe caller keeps skipping. probe reports that
// THIS caller holds the half-open probe: it then owes the breaker an
// outcome — onSuccess, or onFailure on every abandonment path — or the
// breaker wedges half-open and blacklists the replica forever.
func (b *breaker) acquire(now int64, cooldown int64) (ok, probe bool) {
	switch b.state.Load() {
	case bClosed:
		return true, false
	case bOpen:
		if now-b.openedAt.Load() < cooldown {
			return false, false
		}
		ok = b.state.CompareAndSwap(bOpen, bHalfOpen)
		return ok, ok
	default: // half-open: the probe is in flight
		return false, false
	}
}

// onSuccess records a healthy response, reporting whether it recovered a
// previously tripped breaker (the half-open probe succeeding).
func (b *breaker) onSuccess() (recovered bool) {
	// Load-before-store keeps the steady-state happy path to two reads
	// and zero read-modify-writes on the shared breaker cache line.
	if b.consec.Load() != 0 {
		b.consec.Store(0)
	}
	if b.state.Load() == bClosed {
		return false
	}
	return b.state.Swap(bClosed) != bClosed
}

// onFailure records a failed attempt, reporting whether it tripped the
// breaker closed→open. A failed half-open probe reopens silently (the
// trip was already counted).
func (b *breaker) onFailure(now int64, threshold int32) (tripped bool) {
	if b.state.Load() == bHalfOpen {
		b.openedAt.Store(now)
		b.state.Store(bOpen)
		return false
	}
	if b.consec.Add(1) >= threshold {
		// Stamp before the CAS so a concurrent acquire never reads a
		// stale openedAt on a freshly opened breaker.
		b.openedAt.Store(now)
		return b.state.CompareAndSwap(bClosed, bOpen)
	}
	return false
}

// stateName labels the breaker for stats surfaces.
func (b *breaker) stateName() string {
	switch b.state.Load() {
	case bOpen:
		return "open"
	case bHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
