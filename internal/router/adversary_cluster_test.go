package router_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"weboftrust"
	"weboftrust/internal/adversary"
	"weboftrust/internal/ratings"
	"weboftrust/internal/router"
	"weboftrust/internal/server"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// TestClusterAnomalyUnderAttack is the sharded form of the adversarial
// acceptance criterion: inject a seeded attack into a synth community,
// serve it from a 3-shard cluster behind the router, and require that
// (a) every anomaly response — per-attacker, per-honest-user and the
// leaderboard — comes back byte-identical to an unsharded reference
// server over the same log, and (b) the routed scores still separate the
// attacker cohort from the honest median, i.e. detection quality
// survives sharding untouched.
func TestClusterAnomalyUnderAttack(t *testing.T) {
	cfg := synth.Small()
	clean, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	honest := clean.NumUsers()
	attacked, cohorts, err := adversary.Inject(clean, []adversary.Spec{
		{Kind: adversary.CollusionRing, Size: 8, Activity: 3},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(t.TempDir(), "events.log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, attacked); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ref := startNode(t, logPath)
	const n = 3
	shardMap := make([][]string, n)
	for i := 0; i < n; i++ {
		nd := startNode(t, logPath, weboftrust.WithShard(i, n))
		shardMap[i] = []string{nd.ts.URL}
	}
	rt, err := router.New(router.Config{Shards: shardMap})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	// Byte-identity: attackers, a sweep of honest users, the leaderboard.
	paths := []string{fmt.Sprintf("/v1/anomaly/top?k=%d", attacked.NumUsers())}
	for _, c := range cohorts {
		for _, a := range c.Attackers {
			paths = append(paths, fmt.Sprintf("/v1/anomaly?user=%d", a))
		}
	}
	for u := 0; u < honest; u += 37 {
		paths = append(paths, fmt.Sprintf("/v1/anomaly?user=%d", u))
	}
	for _, p := range paths {
		wantCode, wantCT, wantBody := fetch(t, ref.ts.URL, p)
		gotCode, gotCT, gotBody := fetch(t, rts.URL, p)
		if wantCode != http.StatusOK {
			t.Fatalf("reference %s = %d %s", p, wantCode, wantBody)
		}
		if gotCode != wantCode || gotCT != wantCT || string(gotBody) != string(wantBody) {
			t.Fatalf("%s:\nrouter: %d %s %s\nref:    %d %s %s",
				p, gotCode, gotCT, gotBody, wantCode, wantCT, wantBody)
		}
	}

	// Detection through the router: the attacker cohort's median suspicion
	// beats the honest median, read entirely from routed responses.
	score := func(u ratings.UserID) float64 {
		_, _, body := fetch(t, rts.URL, fmt.Sprintf("/v1/anomaly?user=%d", u))
		var resp server.AnomalyResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatalf("anomaly(%d): %v", u, err)
		}
		return resp.Score
	}
	var honestScores, attackerScores []float64
	for u := 0; u < honest; u += 3 {
		honestScores = append(honestScores, score(ratings.UserID(u)))
	}
	for _, c := range cohorts {
		for _, a := range c.Attackers {
			attackerScores = append(attackerScores, score(a))
		}
	}
	median := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	if hm, am := median(honestScores), median(attackerScores); am <= hm {
		t.Errorf("routed attacker median %v <= honest median %v", am, hm)
	}
}
