// Package router serves a shard-by-source trustd cluster behind one
// address. It is a thin, stateless consistent-hash proxy: each per-source
// query names a source user, the user's owning shard is computed with the
// same jump hash the shards themselves retain state under
// (internal/shard), and the request is forwarded to one of that shard's
// replicas over a pooled connection. The router holds no model, no
// cache and no cluster state beyond its static shard map, so any number
// of router processes can front the same cluster.
//
// Because every shard answers its owned sources bitwise-identically to
// an unsharded process (the core retention property), the router's
// responses are byte-for-byte what a single trustd serving the whole
// community would produce — including error bodies, which are proxied
// from real shards rather than synthesised here. The cluster harness
// test pins exactly that.
//
// Failure handling is bounded retry-on-next-replica: a transport error
// or gateway-ish status (502/503/504) moves the request to the shard's
// next replica, at most Config.Retries extra attempts, each attempt
// bounded by Config.Timeout. A 421 (Misdirected Request) is NOT retried:
// it means the shard map disagrees with the shard's own spec, which no
// other replica of the same shard will fix.
//
// The proxy hot path is deliberately allocation-lean — the acceptance
// bar is ≤2× a direct cached shard hit, which leaves almost no room on
// top of the second network hop: query parameters are scanned without
// materialising url.Values, upstream calls go straight to the pooled
// Transport (no per-request timer; the transport enforces the header
// timeout), and bodies stream through pooled copy buffers.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weboftrust/internal/shard"
)

// Config describes the cluster a Router fronts.
type Config struct {
	// Shards maps shard index -> replica base URLs (e.g.
	// "http://10.0.0.7:7070"). Every shard needs at least one replica;
	// the outer length IS the cluster's shard count and must match the
	// -shard i/N the shards were started with.
	Shards [][]string
	// Timeout bounds each upstream attempt (time to response headers).
	// 0 means DefaultTimeout.
	Timeout time.Duration
	// Retries caps the extra replica attempts after a transport error or
	// 502/503/504. 0 means DefaultRetries; negative disables retrying.
	Retries int
	// MaxIdleConnsPerHost sizes the per-replica connection pool. 0 means
	// DefaultMaxIdleConnsPerHost.
	MaxIdleConnsPerHost int
}

// DefaultTimeout bounds each upstream attempt.
const DefaultTimeout = 5 * time.Second

// DefaultRetries is the extra replica attempts on retryable failures.
const DefaultRetries = 1

// DefaultMaxIdleConnsPerHost keeps a small warm pool per replica.
const DefaultMaxIdleConnsPerHost = 16

// Router proxies cluster queries to their owning shards. Create with
// New, mount Handler. Safe for concurrent use.
type Router struct {
	shards [][]string
	// parsed mirrors shards with pre-parsed URLs, so the per-request path
	// never re-parses a base URL.
	parsed  [][]url.URL
	timeout time.Duration
	retries int
	// transport is the pooled upstream path; client wraps it for the
	// non-hot fan-out and readiness surfaces.
	transport *http.Transport
	client    *http.Client
	start     time.Time
	// rr rotates unroutable requests (no parsable source user) across
	// shards so their error responses still come from real shards.
	rr      atomic.Uint64
	metrics routerMetrics
}

type routerMetrics struct {
	requests   atomic.Int64
	proxied    atomic.Int64
	retries    atomic.Int64
	upstreamErrors atomic.Int64 // requests that exhausted every attempt
	misdirected    atomic.Int64 // 421s from shards (shard-map skew alarm)
}

// New validates the shard map and builds the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	parsed := make([][]url.URL, len(cfg.Shards))
	for i, replicas := range cfg.Shards {
		if len(replicas) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		parsed[i] = make([]url.URL, len(replicas))
		for j, base := range replicas {
			u, err := url.Parse(base)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("router: shard %d replica %q is not an absolute URL", i, base)
			}
			u.Path = strings.TrimSuffix(u.Path, "/")
			parsed[i][j] = *u
		}
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	maxIdle := cfg.MaxIdleConnsPerHost
	if maxIdle == 0 {
		maxIdle = DefaultMaxIdleConnsPerHost
	}
	// The transport enforces the per-attempt timeout itself
	// (ResponseHeaderTimeout), so the hot path never allocates a
	// per-request timer.
	transport := &http.Transport{
		MaxIdleConnsPerHost:   maxIdle,
		MaxIdleConns:          maxIdle * len(cfg.Shards) * 2,
		ResponseHeaderTimeout: timeout,
		// The shards serve small JSON bodies over the local network;
		// transparent gzip would cost latency on every hop to save bytes
		// nobody is short of — and the router must relay bodies verbatim.
		DisableCompression: true,
	}
	return &Router{
		shards:    cfg.Shards,
		parsed:    parsed,
		timeout:   timeout,
		retries:   retries,
		transport: transport,
		client:    &http.Client{Transport: transport},
		start:     time.Now(),
	}, nil
}

// NumShards returns the cluster's shard count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Owner returns the shard index owning a user id — the same jump hash
// the shards retain state under.
func (rt *Router) Owner(user int) int { return shard.Owner(user, len(rt.shards)) }

// Handler returns the router's HTTP routes: the shard-routed query
// endpoints plus the router's own health and metrics surfaces.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	byUser := func(param string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			rt.routeByParam(w, r, param)
		}
	}
	mux.HandleFunc("GET /v1/topk", byUser("user"))
	mux.HandleFunc("GET /v1/trust", byUser("from"))
	mux.HandleFunc("GET /v1/expertise", byUser("user"))
	mux.HandleFunc("GET /v1/neighbors", byUser("user"))
	mux.HandleFunc("GET /v1/propagate", byUser("user"))
	mux.HandleFunc("GET /v1/rank", rt.handleRank)
	mux.HandleFunc("GET /v1/graph/stats", rt.handleGraphStats)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// routeByParam forwards the request to the shard owning the named source
// user. Requests whose parameter is missing or unparsable are forwarded
// to a rotating shard: any shard rejects them exactly as an unsharded
// server would, so the error body stays byte-identical to single-process
// serving (ids out of range hash to SOME shard and 404 there for the
// same reason).
func (rt *Router) routeByParam(w http.ResponseWriter, r *http.Request, param string) {
	rt.metrics.requests.Add(1)
	var idx int
	if id, ok := queryInt(r.URL.RawQuery, param); ok {
		idx = rt.Owner(id)
	} else {
		idx = int(rt.rr.Add(1)) % len(rt.shards)
	}
	rt.proxy(w, r, idx)
}

// queryInt scans rawQuery for name's first value and parses it as an
// integer, without materialising url.Values (this runs per proxied
// request). Escaped or malformed values report !ok — the caller falls
// back to rotating, and the shard produces the authoritative error.
func queryInt(rawQuery, name string) (int, bool) {
	for q := rawQuery; q != ""; {
		var pair string
		pair, q = pair0(q)
		k, v, _ := strings.Cut(pair, "=")
		if k != name {
			continue
		}
		id, err := strconv.Atoi(v)
		return id, err == nil
	}
	return 0, false
}

// pair0 splits off the first &-separated pair of a raw query.
func pair0(q string) (string, string) {
	if i := strings.IndexByte(q, '&'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return q, ""
}

// proxy forwards the request to shard idx, walking its replicas on
// retryable failures. The first non-retryable response is streamed back
// verbatim (status, content type, body).
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, idx int) {
	replicas := rt.parsed[idx]
	attempts := min(1+rt.retries, len(replicas))
	ctx := r.Context()

	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			rt.metrics.retries.Add(1)
		}
		resp, err := rt.fetch(ctx, &replicas[a], r.URL)
		if err != nil {
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && a+1 < attempts {
			lastErr = fmt.Errorf("%s: %s", rt.shards[idx][a], resp.Status)
			resp.Body.Close()
			continue
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			rt.metrics.misdirected.Add(1)
		}
		rt.metrics.proxied.Add(1)
		copyResponse(w, resp)
		return
	}
	rt.metrics.upstreamErrors.Add(1)
	writeJSON(w, http.StatusBadGateway, map[string]string{
		"error": fmt.Sprintf("shard %d unavailable after %d attempts: %v", idx, attempts, lastErr),
	})
}

// fetch issues one upstream GET preserving the original path and query,
// straight through the pooled transport (no client bookkeeping, no URL
// re-parse; the transport's ResponseHeaderTimeout bounds the attempt).
func (rt *Router) fetch(ctx context.Context, base *url.URL, orig *url.URL) (*http.Response, error) {
	req := (&http.Request{
		Method: http.MethodGet,
		URL: &url.URL{
			Scheme:   base.Scheme,
			Host:     base.Host,
			Path:     base.Path + orig.Path,
			RawQuery: orig.RawQuery,
		},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{},
		Host:       base.Host,
	}).WithContext(ctx)
	return rt.transport.RoundTrip(req)
}

func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// copyBufs pools the body-relay buffers so the hot path does not pay a
// fresh io.Copy scratch allocation per proxied request.
var copyBufs = sync.Pool{New: func() any {
	b := make([]byte, 16<<10)
	return &b
}}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	buf := copyBufs.Get().(*[]byte)
	_, _ = io.CopyBuffer(w, resp.Body, *buf)
	copyBufs.Put(buf)
}

// handleGraphStats fans /v1/graph/stats out to every shard and returns
// the freshest body: the replicated graph is identical on every shard at
// a given model version, so the response with the highest version (ties
// to the lowest shard index) is THE cluster answer, byte-identical to an
// unsharded server at that version.
func (rt *Router) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/graph/stats")
}

// handleRank serves the global EigenTrust ranking the same way: the rank
// vector is derived from the replicated graph through a deterministic
// warm chain, so every shard at a given version serves byte-identical
// bodies and the freshest one is the cluster answer. The query string
// (k= or user=) rides along on the fan-out; first non-OK freshest body
// (e.g. a 404 for an out-of-range user) is relayed verbatim.
func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/rank")
}

// proxyFreshest fans a replicated-state endpoint out to every shard and
// relays the highest-version OK body (ties to the lowest shard index),
// preserving the request's query string. When no shard answers 200, the
// first real non-OK shard response is relayed instead (the shards agree
// on parameter validation), and only transport-level silence on every
// shard produces a router-synthesised 502.
func (rt *Router) proxyFreshest(w http.ResponseWriter, r *http.Request, path string) {
	rt.metrics.requests.Add(1)
	type result struct {
		idx     int
		status  int
		body    []byte
		version uint64
		ct      string
	}
	results := rt.fanOut(r, path, func(idx, status int, ct string, body []byte) any {
		var v struct {
			Version uint64 `json:"version"`
		}
		if status == http.StatusOK {
			_ = json.Unmarshal(body, &v)
		}
		return result{idx: idx, status: status, body: body, version: v.Version, ct: ct}
	})
	best := -1
	var bestRes result
	for _, a := range results {
		res, ok := a.(result)
		if !ok || res.status != http.StatusOK {
			continue
		}
		if best == -1 || res.version > bestRes.version ||
			(res.version == bestRes.version && res.idx < bestRes.idx) {
			best, bestRes = res.idx, res
		}
	}
	if best == -1 {
		// No shard answered 200: relay the lowest-index real response so
		// error bodies stay shard-authored (all shards validate parameters
		// identically).
		for _, a := range results {
			res, ok := a.(result)
			if !ok || res.status == 0 {
				continue
			}
			rt.metrics.proxied.Add(1)
			if res.ct != "" {
				w.Header().Set("Content-Type", res.ct)
			}
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		}
		rt.metrics.upstreamErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no shard answered " + path})
		return
	}
	rt.metrics.proxied.Add(1)
	if bestRes.ct != "" {
		w.Header().Set("Content-Type", bestRes.ct)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bestRes.body)
}

// handleStats aggregates every shard's /v1/stats under the router's own
// envelope: per-shard bodies keyed by index, plus router-level counters.
// (Unlike graph stats, per-shard stats genuinely differ — owned users,
// cache fill — so they are reported side by side, not merged.)
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.metrics.requests.Add(1)
	shards := rt.fanOut(r, "/v1/stats", func(idx, status int, ct string, body []byte) any {
		if status != http.StatusOK {
			return map[string]any{"shard": idx, "error": fmt.Sprintf("status %d", status)}
		}
		var v json.RawMessage = body
		return map[string]any{"shard": idx, "stats": v}
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"shards":         len(rt.shards),
			"requests":       rt.metrics.requests.Load(),
			"proxied":        rt.metrics.proxied.Load(),
			"retries":        rt.metrics.retries.Load(),
			"upstreamErrors": rt.metrics.upstreamErrors.Load(),
			"uptimeSeconds":  time.Since(rt.start).Seconds(),
		},
		"shards": shards,
	})
}

// fanOut queries one replica chain per shard concurrently and maps each
// shard's best response through fn (status 0 and nil body when no
// replica answered). The original request's query string is preserved on
// every upstream call. Results are indexed by shard.
func (rt *Router) fanOut(r *http.Request, path string, fn func(idx, status int, ct string, body []byte) any) []any {
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	out := make([]any, len(rt.shards))
	var wg sync.WaitGroup
	for idx := range rt.shards {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			u := &url.URL{Path: path, RawQuery: r.URL.RawQuery}
			replicas := rt.parsed[idx]
			attempts := min(1+rt.retries, len(replicas))
			for a := 0; a < attempts; a++ {
				resp, err := rt.fetch(ctx, &replicas[a], u)
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				ct := resp.Header.Get("Content-Type")
				resp.Body.Close()
				if rerr != nil || (retryableStatus(resp.StatusCode) && a+1 < attempts) {
					continue
				}
				out[idx] = fn(idx, resp.StatusCode, ct, body)
				return
			}
			out[idx] = fn(idx, 0, "", nil)
		}(idx)
	}
	wg.Wait()
	return out
}

// handleHealthz is the ROUTER's liveness: the proxy process is up. Shard
// health is /readyz's business.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "shards": len(rt.shards)})
}

// handleReadyz reports cluster readiness: 200 only when every shard has
// at least one replica answering /readyz with 200. The per-shard
// verdicts ride along so an operator can see which shard is lagging.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	verdicts := rt.fanOut(r, "/readyz", func(idx, status int, ct string, body []byte) any {
		return status == http.StatusOK
	})
	ready := true
	perShard := make([]bool, len(verdicts))
	for i, v := range verdicts {
		ok, _ := v.(bool)
		perShard[i] = ok
		if !ok {
			ready = false
		}
	}
	status := http.StatusOK
	state := "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		state = "waiting"
	}
	writeJSON(w, status, map[string]any{"status": state, "shards": perShard})
}

// handleMetrics exposes the router's counters in Prometheus text format,
// namespaced apart from the shards' trustd_* metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("trustrouter_requests_total", "Requests received by the router.", rt.metrics.requests.Load())
	counter("trustrouter_proxied_total", "Requests successfully proxied to a shard.", rt.metrics.proxied.Load())
	counter("trustrouter_retries_total", "Replica retries after transport errors or gateway statuses.", rt.metrics.retries.Load())
	counter("trustrouter_upstream_errors_total", "Requests that exhausted every replica attempt.", rt.metrics.upstreamErrors.Load())
	counter("trustrouter_misdirected_total", "421 responses proxied from shards (shard-map skew alarm).", rt.metrics.misdirected.Load())
	fmt.Fprintf(w, "# HELP trustrouter_shards Shards in the routed cluster.\n# TYPE trustrouter_shards gauge\ntrustrouter_shards %d\n", len(rt.shards))
}

// WaitReady polls every shard's /readyz until the whole cluster is ready
// or the context expires — how `trustd route -wait-ready` gates its own
// readiness on the shards it fronts.
func (rt *Router) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		if rt.allReady(ctx) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("router: cluster not ready: %w", ctx.Err())
		case <-tick.C:
		}
	}
}

func (rt *Router) allReady(ctx context.Context) bool {
	u := &url.URL{Path: "/readyz"}
	for _, replicas := range rt.parsed {
		shardReady := false
		for i := range replicas {
			cctx, cancel := context.WithTimeout(ctx, time.Second)
			resp, err := rt.fetch(cctx, &replicas[i], u)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					shardReady = true
				}
			}
			cancel()
			if shardReady {
				break
			}
		}
		if !shardReady {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// ParseShards parses the -shards flag grammar: shards separated by
// commas, replicas of one shard separated by "|".
//
//	http://a:1,http://b:2,http://c:3          three shards
//	http://a:1|http://a2:1,http://b:2         shard 0 has two replicas
func ParseShards(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("router: empty shard list")
	}
	var shards [][]string
	for _, part := range strings.Split(s, ",") {
		var replicas []string
		for _, rep := range strings.Split(part, "|") {
			rep = strings.TrimSpace(rep)
			if rep != "" {
				replicas = append(replicas, rep)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas in %q", len(shards), s)
		}
		shards = append(shards, replicas)
	}
	return shards, nil
}
