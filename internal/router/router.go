// Package router serves a shard-by-source trustd cluster behind one
// address. It is a thin, stateless consistent-hash proxy: each per-source
// query names a source user, the user's owning shard is computed with the
// same jump hash the shards themselves retain state under
// (internal/shard), and the request is forwarded to one of that shard's
// replicas over a pooled connection. The router holds no model, no
// cache and no cluster state beyond its static shard map, so any number
// of router processes can front the same cluster.
//
// Because every shard answers its owned sources bitwise-identically to
// an unsharded process (the core retention property), the router's
// responses are byte-for-byte what a single trustd serving the whole
// community would produce — including error bodies, which are proxied
// from real shards rather than synthesised here. The cluster harness
// test pins exactly that.
//
// Failure handling is layered (see DESIGN.md §12). First attempts
// rotate across a shard's replicas, skipping replicas whose per-replica
// circuit breaker is open (consecutive-failure trip, cooldown, single
// half-open probe), so no replica absorbs every first attempt and a dead
// replica is probed, not hammered. A transport error or gateway-ish
// status (502/503/504) costs an exponential-backoff-with-jitter pause
// and moves the request to the next allowed replica, at most
// Config.Retries extra attempts, each attempt bounded by Config.Timeout.
// With Config.HedgeAfter set, a slow attempt is hedged: a second copy of
// the (idempotent, GET-only) request races on the next allowed replica
// and the first response wins. A 421 (Misdirected Request) is NOT
// retried: it means the shard map disagrees with the shard's own spec,
// which no other replica of the same shard will fix. When every attempt
// at a shard is exhausted and Config.StaleEntries is set, the router
// serves the last known good body for that exact request URI, marked
// X-Trustd-Degraded: stale — honest staleness instead of a 502.
//
// The proxy hot path is deliberately allocation-lean — the acceptance
// bar is ≤2× a direct cached shard hit, which leaves almost no room on
// top of the second network hop: query parameters are scanned without
// materialising url.Values, upstream calls go straight to the pooled
// Transport (no per-request timer; the transport enforces the header
// timeout), and bodies stream through pooled copy buffers.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weboftrust/internal/shard"
)

// Config describes the cluster a Router fronts.
type Config struct {
	// Shards maps shard index -> replica base URLs (e.g.
	// "http://10.0.0.7:7070"). Every shard needs at least one replica;
	// the outer length IS the cluster's shard count and must match the
	// -shard i/N the shards were started with.
	Shards [][]string
	// Timeout bounds each upstream attempt (time to response headers).
	// 0 means DefaultTimeout.
	Timeout time.Duration
	// Retries caps the extra replica attempts after a transport error or
	// 502/503/504. 0 means DefaultRetries; negative disables retrying.
	Retries int
	// MaxIdleConnsPerHost sizes the per-replica connection pool. 0 means
	// DefaultMaxIdleConnsPerHost.
	MaxIdleConnsPerHost int
	// RetryBackoff is the base pause before the first retry attempt,
	// doubled per further attempt and jittered ±50% so synchronized
	// routers don't stampede a recovering shard. 0 means
	// DefaultRetryBackoff; negative retries immediately (the tests' knob).
	RetryBackoff time.Duration
	// BreakerThreshold trips a replica's circuit breaker after this many
	// consecutive failures. 0 means DefaultBreakerThreshold; negative
	// disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped replica rests before a single
	// half-open probe is allowed through. 0 means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// HedgeAfter, when positive, hedges slow attempts on per-source GET
	// endpoints: if a replica has not answered within HedgeAfter, a
	// second copy of the request races on the shard's next allowed
	// replica and the first response wins. 0 disables hedging (the
	// default: it costs a goroutine + context per hedged attempt).
	HedgeAfter time.Duration
	// StaleEntries, when positive, bounds a last-known-good response
	// cache: per-source requests that exhaust every replica serve their
	// most recent 200 body marked X-Trustd-Degraded: stale instead of a
	// 502. Bodies over maxStaleBody are streamed but never cached, so
	// the cache is bounded at StaleEntries × maxStaleBody bytes. 0
	// disables degraded serving (the default: it costs one body copy per
	// proxied success).
	StaleEntries int
}

// DefaultTimeout bounds each upstream attempt.
const DefaultTimeout = 5 * time.Second

// DefaultRetries is the extra replica attempts on retryable failures.
const DefaultRetries = 1

// DefaultMaxIdleConnsPerHost keeps a small warm pool per replica.
const DefaultMaxIdleConnsPerHost = 16

// DefaultRetryBackoff is the base retry pause (doubled per attempt,
// jittered ±50%).
const DefaultRetryBackoff = 25 * time.Millisecond

// maxRetryBackoff caps the exponential retry pause.
const maxRetryBackoff = 250 * time.Millisecond

// DegradedHeader marks responses the router served from its
// last-known-good cache because the owning shard was unreachable. Its
// value names the degradation mode (currently always "stale").
const DegradedHeader = "X-Trustd-Degraded"

// Router proxies cluster queries to their owning shards. Create with
// New, mount Handler. Safe for concurrent use.
type Router struct {
	shards [][]string
	// parsed mirrors shards with pre-parsed URLs, so the per-request path
	// never re-parses a base URL.
	parsed  [][]url.URL
	timeout time.Duration
	retries int
	// transport is the pooled upstream path; client wraps it for the
	// non-hot fan-out and readiness surfaces.
	transport *http.Transport
	client    *http.Client
	start     time.Time
	// rr rotates unroutable requests (no parsable source user) across
	// shards so their error responses still come from real shards.
	rr atomic.Uint64
	// replicaRR rotates each shard's first-attempt replica so replica 0
	// stops absorbing every request (health-aware: open breakers are
	// skipped on top of the rotation). Indexed by shard.
	replicaRR []atomic.Uint64
	// breakers holds one circuit breaker per replica, mirroring parsed.
	// breakerThreshold < 0 disables them (every acquire passes).
	breakers         [][]breaker
	breakerThreshold int32
	breakerCooldown  int64 // nanos
	retryBackoff     time.Duration
	hedgeAfter       time.Duration
	// stale is the flag-gated last-known-good cache; nil when disabled.
	stale *staleCache
	// jitterSeq feeds the cheap backoff-jitter mixer (no rand state, no
	// allocation).
	jitterSeq atomic.Uint64
	metrics   routerMetrics
}

type routerMetrics struct {
	requests          atomic.Int64
	proxied           atomic.Int64
	retries           atomic.Int64
	upstreamErrors    atomic.Int64 // requests that exhausted every attempt
	misdirected       atomic.Int64 // 421s from shards (shard-map skew alarm)
	breakerTrips      atomic.Int64 // replica breakers tripped closed→open
	breakerRecoveries atomic.Int64 // half-open probes that closed a breaker
	hedges            atomic.Int64 // hedge requests launched
	hedgeWins         atomic.Int64 // hedges whose response was served
	staleServed       atomic.Int64 // degraded last-known-good responses
}

// New validates the shard map and builds the router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	parsed := make([][]url.URL, len(cfg.Shards))
	for i, replicas := range cfg.Shards {
		if len(replicas) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", i)
		}
		parsed[i] = make([]url.URL, len(replicas))
		for j, base := range replicas {
			u, err := url.Parse(base)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return nil, fmt.Errorf("router: shard %d replica %q is not an absolute URL", i, base)
			}
			u.Path = strings.TrimSuffix(u.Path, "/")
			parsed[i][j] = *u
		}
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	retries := cfg.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	maxIdle := cfg.MaxIdleConnsPerHost
	if maxIdle == 0 {
		maxIdle = DefaultMaxIdleConnsPerHost
	}
	// The transport enforces the per-attempt timeout itself
	// (ResponseHeaderTimeout), so the hot path never allocates a
	// per-request timer.
	transport := &http.Transport{
		MaxIdleConnsPerHost:   maxIdle,
		MaxIdleConns:          maxIdle * len(cfg.Shards) * 2,
		ResponseHeaderTimeout: timeout,
		// The shards serve small JSON bodies over the local network;
		// transparent gzip would cost latency on every hop to save bytes
		// nobody is short of — and the router must relay bodies verbatim.
		DisableCompression: true,
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = DefaultRetryBackoff
	} else if backoff < 0 {
		backoff = 0
	}
	threshold := int32(cfg.BreakerThreshold)
	if threshold == 0 {
		threshold = DefaultBreakerThreshold
	} else if threshold < 0 {
		threshold = -1
	}
	cooldown := cfg.BreakerCooldown
	if cooldown == 0 {
		cooldown = DefaultBreakerCooldown
	}
	breakers := make([][]breaker, len(cfg.Shards))
	for i, replicas := range cfg.Shards {
		breakers[i] = make([]breaker, len(replicas))
	}
	rt := &Router{
		shards:           cfg.Shards,
		parsed:           parsed,
		timeout:          timeout,
		retries:          retries,
		transport:        transport,
		client:           &http.Client{Transport: transport},
		start:            time.Now(),
		replicaRR:        make([]atomic.Uint64, len(cfg.Shards)),
		breakers:         breakers,
		breakerThreshold: threshold,
		breakerCooldown:  int64(cooldown),
		retryBackoff:     backoff,
		hedgeAfter:       cfg.HedgeAfter,
	}
	if cfg.StaleEntries > 0 {
		rt.stale = newStaleCache(cfg.StaleEntries)
	}
	return rt, nil
}

// NumShards returns the cluster's shard count.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Owner returns the shard index owning a user id — the same jump hash
// the shards retain state under.
func (rt *Router) Owner(user int) int { return shard.Owner(user, len(rt.shards)) }

// Handler returns the router's HTTP routes: the shard-routed query
// endpoints plus the router's own health and metrics surfaces.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	byUser := func(param string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			rt.routeByParam(w, r, param)
		}
	}
	mux.HandleFunc("GET /v1/topk", byUser("user"))
	mux.HandleFunc("GET /v1/trust", byUser("from"))
	mux.HandleFunc("GET /v1/expertise", byUser("user"))
	mux.HandleFunc("GET /v1/neighbors", byUser("user"))
	mux.HandleFunc("GET /v1/propagate", byUser("user"))
	mux.HandleFunc("GET /v1/rank", rt.handleRank)
	mux.HandleFunc("GET /v1/anomaly", rt.handleAnomaly)
	mux.HandleFunc("GET /v1/anomaly/top", rt.handleAnomalyTop)
	mux.HandleFunc("GET /v1/graph/stats", rt.handleGraphStats)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// routeByParam forwards the request to the shard owning the named source
// user. Requests whose parameter is missing or unparsable are forwarded
// to a rotating shard: any shard rejects them exactly as an unsharded
// server would, so the error body stays byte-identical to single-process
// serving (ids out of range hash to SOME shard and 404 there for the
// same reason).
func (rt *Router) routeByParam(w http.ResponseWriter, r *http.Request, param string) {
	rt.metrics.requests.Add(1)
	var idx int
	if id, ok := queryInt(r.URL.RawQuery, param); ok {
		idx = rt.Owner(id)
	} else {
		idx = int(rt.rr.Add(1)) % len(rt.shards)
	}
	rt.proxy(w, r, idx)
}

// queryInt scans rawQuery for name's first value and parses it as an
// integer, without materialising url.Values (this runs per proxied
// request). Escaped or malformed values report !ok — the caller falls
// back to rotating, and the shard produces the authoritative error.
func queryInt(rawQuery, name string) (int, bool) {
	for q := rawQuery; q != ""; {
		var pair string
		pair, q = pair0(q)
		k, v, _ := strings.Cut(pair, "=")
		if k != name {
			continue
		}
		id, err := strconv.Atoi(v)
		return id, err == nil
	}
	return 0, false
}

// pair0 splits off the first &-separated pair of a raw query.
func pair0(q string) (string, string) {
	if i := strings.IndexByte(q, '&'); i >= 0 {
		return q[:i], q[i+1:]
	}
	return q, ""
}

// proxy forwards the request to shard idx. The attempt loop rotates over
// the shard's replicas from a per-shard round-robin start, skipping
// replicas whose circuit breaker is open; a transport error or retryable
// gateway status records a breaker failure and costs a jittered
// exponential backoff before the next attempt (up to Config.Retries
// extra attempts — same-replica retries are meaningful now that they are
// spaced, so single-replica shards retry too). The first non-retryable
// response is streamed back verbatim (status, content type, body). When
// every attempt fails and degraded serving is enabled, the last known
// good body for this exact request URI is served marked
// X-Trustd-Degraded: stale; otherwise the per-replica failures are
// aggregated into the 502 body.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, idx int) {
	replicas := rt.parsed[idx]
	n := len(replicas)
	attempts := 1 + rt.retries
	ctx := r.Context()
	var staleKey string
	if rt.stale != nil {
		staleKey = r.URL.Path + "?" + r.URL.RawQuery
	}

	// errs aggregates every failed attempt for the 502 body — earlier
	// replicas can fail differently than the last one, and the operator
	// debugging an outage wants all of them. Allocated only off the
	// success path.
	var errs []string
	now := time.Now().UnixNano()
	start := 0
	if n > 1 {
		start = int(rt.replicaRR[idx].Add(1) % uint64(n))
	}
	fetched, consecSkips := 0, 0
	for step := 0; fetched < attempts; step++ {
		ri := (start + step) % n
		ok, probe := rt.acquireReplica(idx, ri, now)
		if !ok {
			consecSkips++
			if consecSkips >= n {
				// Every replica is tripped and cooling down: fail fast
				// into stale serving (or the 502) — that is the point of
				// the breaker.
				errs = append(errs, "all replica circuit breakers open")
				break
			}
			continue
		}
		consecSkips = 0
		if fetched > 0 {
			rt.metrics.retries.Add(1)
			if !rt.backoffSleep(ctx, fetched) {
				if probe {
					// The granted half-open probe was never issued: give the
					// outcome back (reopen, fresh cooldown) or the breaker
					// wedges half-open forever.
					rt.recordFailure(idx, ri)
				}
				errs = append(errs, "request ended during retry backoff")
				break
			}
			now = time.Now().UnixNano()
		}
		fetched++
		resp, winRi, err := rt.fetchMaybeHedged(ctx, idx, ri, probe, r.URL)
		if err != nil {
			rt.recordFailure(idx, winRi)
			errs = append(errs, rt.shards[idx][winRi]+": "+err.Error())
			continue
		}
		if retryableStatus(resp.StatusCode) {
			rt.recordFailure(idx, winRi)
			if fetched < attempts {
				errs = append(errs, rt.shards[idx][winRi]+": "+resp.Status)
				resp.Body.Close()
				continue
			}
			// Out of attempts on a gateway-ish status: labeled stale beats
			// relaying an unavailable shard's error, when we have it.
			if rt.serveStale(w, staleKey) {
				resp.Body.Close()
				return
			}
			// No stale fallback: the shard's own error body is still the
			// most honest answer, but this request DID exhaust its
			// attempts — count it as an upstream error, not a proxied
			// success.
			rt.metrics.upstreamErrors.Add(1)
			rt.relay(w, resp, "")
			return
		}
		rt.recordSuccess(idx, winRi)
		if resp.StatusCode == http.StatusMisdirectedRequest {
			rt.metrics.misdirected.Add(1)
		}
		rt.metrics.proxied.Add(1)
		rt.relay(w, resp, staleKey)
		return
	}
	if rt.serveStale(w, staleKey) {
		return
	}
	rt.metrics.upstreamErrors.Add(1)
	writeJSON(w, http.StatusBadGateway, map[string]any{
		"error":    fmt.Sprintf("shard %d unavailable after %d attempts", idx, fetched),
		"attempts": errs,
	})
}

// acquireReplica asks replica ri's breaker for permission to attempt.
// probe reports that the caller was granted the replica's single
// half-open probe and MUST resolve it (recordSuccess or recordFailure)
// on every path, including abandonment.
func (rt *Router) acquireReplica(idx, ri int, now int64) (ok, probe bool) {
	if rt.breakerThreshold < 0 {
		return true, false
	}
	return rt.breakers[idx][ri].acquire(now, rt.breakerCooldown)
}

// recordSuccess closes the replica's breaker (any real response, even an
// application error, proves the replica alive).
func (rt *Router) recordSuccess(idx, ri int) {
	if rt.breakerThreshold < 0 {
		return
	}
	if rt.breakers[idx][ri].onSuccess() {
		rt.metrics.breakerRecoveries.Add(1)
	}
}

// recordFailure feeds the replica's breaker a transport error or
// gateway-ish status.
func (rt *Router) recordFailure(idx, ri int) {
	if rt.breakerThreshold < 0 {
		return
	}
	if rt.breakers[idx][ri].onFailure(time.Now().UnixNano(), rt.breakerThreshold) {
		rt.metrics.breakerTrips.Add(1)
	}
}

// backoffSleep pauses before extra attempt k (1-based): base·2^(k-1)
// capped at maxRetryBackoff, jittered to 50–150% so synchronized routers
// spread their retries. Returns false when the request context ended
// first.
func (rt *Router) backoffSleep(ctx context.Context, k int) bool {
	if rt.retryBackoff <= 0 {
		return ctx.Err() == nil
	}
	d := rt.retryBackoff << (k - 1)
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	u := splitmix64(rt.jitterSeq.Add(1))
	d = time.Duration(float64(d) * (0.5 + float64(u>>11)/(1<<53)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// hedgeTarget picks the hedge replica: the first replica other than
// exclude whose breaker is closed (hedges are a latency optimisation —
// they never probe tripped replicas).
func (rt *Router) hedgeTarget(idx, exclude int) (int, bool) {
	reps := rt.breakers[idx]
	for ri := range reps {
		if ri == exclude {
			continue
		}
		if rt.breakerThreshold < 0 || reps[ri].state.Load() == bClosed {
			return ri, true
		}
	}
	return 0, false
}

// cancelBody ties a hedged attempt's context to its response body: the
// context is released when the body is closed, never before the relay
// finished reading it.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// fetchMaybeHedged issues one attempt against replica ri, racing a hedge
// copy on the shard's next closed-breaker replica if the first has not
// answered within hedgeAfter. It returns the winning response and the
// replica it came from; the caller records the winner's breaker outcome.
// probe means ri holds its breaker's half-open probe — if ri loses the
// race and its reaped outcome is not a genuine success, the reaper must
// record the failure (reopening the breaker) so the probe is never left
// dangling half-open. With hedging disabled (or a single-replica shard)
// this is exactly rt.fetch — zero extra cost on that path.
func (rt *Router) fetchMaybeHedged(ctx context.Context, idx, ri int, probe bool, orig *url.URL) (*http.Response, int, error) {
	if rt.hedgeAfter <= 0 || len(rt.parsed[idx]) < 2 {
		resp, err := rt.fetch(ctx, &rt.parsed[idx][ri], orig)
		return resp, ri, err
	}
	type hres struct {
		resp *http.Response
		err  error
		ri   int
		slot int
	}
	ch := make(chan hres, 2)
	var cancels [2]context.CancelFunc
	launch := func(slot, ri int) {
		cctx, cancel := context.WithCancel(ctx)
		cancels[slot] = cancel
		go func() {
			resp, err := rt.fetch(cctx, &rt.parsed[idx][ri], orig)
			if err != nil {
				cancel()
			} else {
				resp.Body = cancelBody{resp.Body, cancel}
			}
			ch <- hres{resp, err, ri, slot}
		}()
	}
	launch(0, ri)
	launched := 1
	timer := time.NewTimer(rt.hedgeAfter)
	var res hres
	select {
	case res = <-ch:
		timer.Stop()
	case <-timer.C:
		if hi, ok := rt.hedgeTarget(idx, ri); ok {
			rt.metrics.hedges.Add(1)
			launch(1, hi)
			launched = 2
		}
		res = <-ch
	}
	consumed := 1
	if launched == 2 && consumed == 1 && (res.err != nil || retryableStatus(res.resp.StatusCode)) {
		// The first finisher failed; the racer may still save the
		// request. The failure is recorded here because only the final
		// result reaches the caller.
		rt.recordFailure(idx, res.ri)
		if res.resp != nil {
			resp := res.resp
			go func() { resp.Body.Close() }() // may block on the hijacked conn; reap off-path
		}
		res = <-ch
		consumed = 2
	}
	if launched > consumed {
		// A racer is still in flight: abort it and reap it off-path. Its
		// abort is self-inflicted, so it feeds no breaker bookkeeping —
		// except a genuine success, which proves the replica healthy, and
		// except when the loser is the primary holding its breaker's
		// half-open probe: the probe owes the breaker an outcome, so a
		// canceled or retryable-status probe records a failure (reopen,
		// fresh cooldown) instead of wedging the breaker half-open.
		cancels[1-res.slot]()
		go func() {
			lr := <-ch
			if lr.resp != nil && !retryableStatus(lr.resp.StatusCode) {
				rt.recordSuccess(idx, lr.ri)
			} else if probe && lr.ri == ri {
				rt.recordFailure(idx, lr.ri)
			}
			if lr.resp != nil {
				lr.resp.Body.Close()
			}
		}()
	}
	if res.err == nil && res.slot == 1 {
		rt.metrics.hedgeWins.Add(1)
	}
	return res.resp, res.ri, res.err
}

// maxStaleBody caps how large a response body the stale cache will
// retain, bounding the cache at StaleEntries × maxStaleBody bytes.
// Oversized bodies still stream through to the client — they are just
// not cacheable for degraded serving.
const maxStaleBody = 1 << 20

// relay streams a shard response back verbatim. With degraded serving
// enabled a 200 body is captured en route (up to maxStaleBody, still
// streaming chunk by chunk, never buffered whole) and becomes the last
// known good answer for this request URI.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, staleKey string) {
	if rt.stale == nil || staleKey == "" || resp.StatusCode != http.StatusOK {
		copyResponse(w, resp)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	var capture bytes.Buffer
	oversize := false
	buf := copyBufs.Get().(*[]byte)
	defer copyBufs.Put(buf)
	for {
		n, rerr := resp.Body.Read(*buf)
		if n > 0 {
			if _, werr := w.Write((*buf)[:n]); werr != nil {
				// Client gone mid-body: the capture is incomplete, so it
				// must not become the last known good answer.
				return
			}
			if !oversize {
				if capture.Len()+n > maxStaleBody {
					oversize = true
					capture = bytes.Buffer{}
				} else {
					capture.Write((*buf)[:n])
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return // truncated upstream body: relay what we sent, cache nothing
		}
	}
	if !oversize {
		rt.stale.put(staleKey, resp.Header.Get("Content-Type"), capture.Bytes())
	}
}

// serveStale answers from the last-known-good cache, honestly labeled:
// X-Trustd-Degraded: stale on a 200 with the cached body. Reports false
// when degraded serving is disabled or this URI was never served.
func (rt *Router) serveStale(w http.ResponseWriter, staleKey string) bool {
	if rt.stale == nil || staleKey == "" {
		return false
	}
	ct, body, ok := rt.stale.get(staleKey)
	if !ok {
		return false
	}
	if ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(DegradedHeader, "stale")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	rt.metrics.staleServed.Add(1)
	return true
}

// splitmix64 feeds the backoff jitter: a full-avalanche mix of a plain
// counter, no rand state and no allocation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fetch issues one upstream GET preserving the original path and query,
// straight through the pooled transport (no client bookkeeping, no URL
// re-parse; the transport's ResponseHeaderTimeout bounds the attempt).
func (rt *Router) fetch(ctx context.Context, base *url.URL, orig *url.URL) (*http.Response, error) {
	req := (&http.Request{
		Method: http.MethodGet,
		URL: &url.URL{
			Scheme:   base.Scheme,
			Host:     base.Host,
			Path:     base.Path + orig.Path,
			RawQuery: orig.RawQuery,
		},
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{},
		Host:       base.Host,
	}).WithContext(ctx)
	return rt.transport.RoundTrip(req)
}

func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// copyBufs pools the body-relay buffers so the hot path does not pay a
// fresh io.Copy scratch allocation per proxied request.
var copyBufs = sync.Pool{New: func() any {
	b := make([]byte, 16<<10)
	return &b
}}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	buf := copyBufs.Get().(*[]byte)
	_, _ = io.CopyBuffer(w, resp.Body, *buf)
	copyBufs.Put(buf)
}

// handleGraphStats fans /v1/graph/stats out to every shard and returns
// the freshest body: the replicated graph is identical on every shard at
// a given model version, so the response with the highest version (ties
// to the lowest shard index) is THE cluster answer, byte-identical to an
// unsharded server at that version.
func (rt *Router) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/graph/stats")
}

// handleRank serves the global EigenTrust ranking the same way: the rank
// vector is derived from the replicated graph through a deterministic
// warm chain, so every shard at a given version serves byte-identical
// bodies and the freshest one is the cluster answer. The query string
// (k= or user=) rides along on the fan-out; first non-OK freshest body
// (e.g. a 404 for an out-of-range user) is relayed verbatim.
func (rt *Router) handleRank(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/rank")
}

// handleAnomaly and handleAnomalyTop relay the suspicion scores the same
// way: internal/anomaly is a pure function of the replicated (dataset,
// web) pair and its incremental refresh is bit-identical to a cold pass,
// so every shard at a version serves byte-identical bodies and any one
// of them is the cluster answer.
func (rt *Router) handleAnomaly(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/anomaly")
}

func (rt *Router) handleAnomalyTop(w http.ResponseWriter, r *http.Request) {
	rt.proxyFreshest(w, r, "/v1/anomaly/top")
}

// proxyFreshest fans a replicated-state endpoint out to every shard and
// relays the highest-version OK body (ties to the lowest shard index),
// preserving the request's query string. When no shard answers 200, the
// first real non-OK shard response is relayed instead (the shards agree
// on parameter validation), and only transport-level silence on every
// shard produces a router-synthesised 502.
func (rt *Router) proxyFreshest(w http.ResponseWriter, r *http.Request, path string) {
	rt.metrics.requests.Add(1)
	type result struct {
		idx     int
		status  int
		body    []byte
		version uint64
		ct      string
	}
	results := rt.fanOut(r, path, func(idx, status int, ct string, body []byte) any {
		var v struct {
			Version uint64 `json:"version"`
		}
		if status == http.StatusOK {
			_ = json.Unmarshal(body, &v)
		}
		return result{idx: idx, status: status, body: body, version: v.Version, ct: ct}
	})
	best := -1
	var bestRes result
	for _, a := range results {
		res, ok := a.(result)
		if !ok || res.status != http.StatusOK {
			continue
		}
		if best == -1 || res.version > bestRes.version ||
			(res.version == bestRes.version && res.idx < bestRes.idx) {
			best, bestRes = res.idx, res
		}
	}
	if best == -1 {
		// No shard answered 200: relay the lowest-index real response so
		// error bodies stay shard-authored (all shards validate parameters
		// identically).
		for _, a := range results {
			res, ok := a.(result)
			if !ok || res.status == 0 {
				continue
			}
			rt.metrics.proxied.Add(1)
			if res.ct != "" {
				w.Header().Set("Content-Type", res.ct)
			}
			w.WriteHeader(res.status)
			_, _ = w.Write(res.body)
			return
		}
		rt.metrics.upstreamErrors.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no shard answered " + path})
		return
	}
	rt.metrics.proxied.Add(1)
	if bestRes.ct != "" {
		w.Header().Set("Content-Type", bestRes.ct)
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(bestRes.body)
}

// handleStats aggregates every shard's /v1/stats under the router's own
// envelope: per-shard bodies keyed by index, plus router-level counters.
// (Unlike graph stats, per-shard stats genuinely differ — owned users,
// cache fill — so they are reported side by side, not merged.)
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.metrics.requests.Add(1)
	shards := rt.fanOut(r, "/v1/stats", func(idx, status int, ct string, body []byte) any {
		if status != http.StatusOK {
			return map[string]any{"shard": idx, "error": fmt.Sprintf("status %d", status)}
		}
		var v json.RawMessage = body
		return map[string]any{"shard": idx, "stats": v}
	})
	// breakers reports every replica's circuit state so an operator can
	// see which replica of which shard is tripped at a glance.
	breakers := make([][]string, len(rt.breakers))
	for i := range rt.breakers {
		breakers[i] = make([]string, len(rt.breakers[i]))
		for j := range rt.breakers[i] {
			breakers[i][j] = rt.breakers[i][j].stateName()
		}
	}
	routerBlock := map[string]any{
		"shards":            len(rt.shards),
		"requests":          rt.metrics.requests.Load(),
		"proxied":           rt.metrics.proxied.Load(),
		"retries":           rt.metrics.retries.Load(),
		"upstreamErrors":    rt.metrics.upstreamErrors.Load(),
		"misdirected":       rt.metrics.misdirected.Load(),
		"breakerTrips":      rt.metrics.breakerTrips.Load(),
		"breakerRecoveries": rt.metrics.breakerRecoveries.Load(),
		"breakers":          breakers,
		"hedges":            rt.metrics.hedges.Load(),
		"hedgeWins":         rt.metrics.hedgeWins.Load(),
		"staleServed":       rt.metrics.staleServed.Load(),
		"uptimeSeconds":     time.Since(rt.start).Seconds(),
	}
	if rt.stale != nil {
		routerBlock["staleEntries"] = rt.stale.len()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router": routerBlock,
		"shards": shards,
	})
}

// fanOut queries one replica chain per shard concurrently and maps each
// shard's best response through fn (status 0 and nil body when no
// replica answered). The original request's query string is preserved on
// every upstream call. Results are indexed by shard.
func (rt *Router) fanOut(r *http.Request, path string, fn func(idx, status int, ct string, body []byte) any) []any {
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	out := make([]any, len(rt.shards))
	var wg sync.WaitGroup
	for idx := range rt.shards {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			u := &url.URL{Path: path, RawQuery: r.URL.RawQuery}
			replicas := rt.parsed[idx]
			attempts := min(1+rt.retries, len(replicas))
			for a := 0; a < attempts; a++ {
				resp, err := rt.fetch(ctx, &replicas[a], u)
				if err != nil {
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				ct := resp.Header.Get("Content-Type")
				resp.Body.Close()
				if rerr != nil || (retryableStatus(resp.StatusCode) && a+1 < attempts) {
					continue
				}
				out[idx] = fn(idx, resp.StatusCode, ct, body)
				return
			}
			out[idx] = fn(idx, 0, "", nil)
		}(idx)
	}
	wg.Wait()
	return out
}

// handleHealthz is the ROUTER's liveness: the proxy process is up. Shard
// health is /readyz's business.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "router", "shards": len(rt.shards)})
}

// handleReadyz reports cluster readiness: 200 "ready" only when every
// shard has at least one replica answering /readyz with 200. With
// degraded serving enabled AND something in the last-known-good cache,
// an unready shard demotes the verdict to 200 "degraded" instead of
// 503 — the router can still answer from the cache, so taking it out of
// rotation would only turn partial degradation into total
// unavailability. An empty cache (cold start) stays 503 "waiting":
// degraded serving cannot answer anything yet. The per-shard verdicts
// ride along so an operator can see which shard is lagging.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	verdicts := rt.fanOut(r, "/readyz", func(idx, status int, ct string, body []byte) any {
		return status == http.StatusOK
	})
	ready := true
	perShard := make([]bool, len(verdicts))
	for i, v := range verdicts {
		ok, _ := v.(bool)
		perShard[i] = ok
		if !ok {
			ready = false
		}
	}
	status := http.StatusOK
	state := "ready"
	if !ready {
		if rt.stale != nil && rt.stale.len() > 0 {
			state = "degraded"
		} else {
			status = http.StatusServiceUnavailable
			state = "waiting"
		}
	}
	writeJSON(w, status, map[string]any{"status": state, "shards": perShard})
}

// handleMetrics exposes the router's counters in Prometheus text format,
// namespaced apart from the shards' trustd_* metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("trustrouter_requests_total", "Requests received by the router.", rt.metrics.requests.Load())
	counter("trustrouter_proxied_total", "Requests successfully proxied to a shard.", rt.metrics.proxied.Load())
	counter("trustrouter_retries_total", "Replica retries after transport errors or gateway statuses.", rt.metrics.retries.Load())
	counter("trustrouter_upstream_errors_total", "Requests that exhausted every replica attempt.", rt.metrics.upstreamErrors.Load())
	counter("trustrouter_misdirected_total", "421 responses proxied from shards (shard-map skew alarm).", rt.metrics.misdirected.Load())
	counter("trustrouter_breaker_trips_total", "Replica circuit breakers tripped open by consecutive failures.", rt.metrics.breakerTrips.Load())
	counter("trustrouter_breaker_recoveries_total", "Replica circuit breakers closed by a successful half-open probe.", rt.metrics.breakerRecoveries.Load())
	counter("trustrouter_hedges_total", "Hedge requests launched against slow replicas.", rt.metrics.hedges.Load())
	counter("trustrouter_hedge_wins_total", "Requests answered by the hedge instead of the primary attempt.", rt.metrics.hedgeWins.Load())
	counter("trustrouter_stale_served_total", "Degraded responses served from the last-known-good cache.", rt.metrics.staleServed.Load())
	var open int64
	for i := range rt.breakers {
		for j := range rt.breakers[i] {
			if rt.breakers[i][j].state.Load() != bClosed {
				open++
			}
		}
	}
	fmt.Fprintf(w, "# HELP trustrouter_breaker_open Replica circuit breakers currently open or half-open.\n# TYPE trustrouter_breaker_open gauge\ntrustrouter_breaker_open %d\n", open)
	if rt.stale != nil {
		fmt.Fprintf(w, "# HELP trustrouter_stale_entries Last-known-good responses currently cached for degraded serving.\n# TYPE trustrouter_stale_entries gauge\ntrustrouter_stale_entries %d\n", rt.stale.len())
	}
	fmt.Fprintf(w, "# HELP trustrouter_shards Shards in the routed cluster.\n# TYPE trustrouter_shards gauge\ntrustrouter_shards %d\n", len(rt.shards))
}

// WaitReady polls every shard's /readyz until the whole cluster is ready
// or the context expires — how `trustd route -wait-ready` gates its own
// readiness on the shards it fronts. Sweeps are spaced by jittered
// exponential backoff (25ms doubling to a 1s cap, 50–150% jitter)
// instead of a fixed 50ms hammer: a slow-booting cluster gets probed
// gently, and N routers waiting on the same shards don't synchronize.
func (rt *Router) WaitReady(ctx context.Context) error {
	backoff := 25 * time.Millisecond
	const maxBackoff = time.Second
	for {
		if rt.allReady(ctx) {
			return nil
		}
		u := splitmix64(rt.jitterSeq.Add(1))
		d := time.Duration(float64(backoff) * (0.5 + float64(u>>11)/(1<<53)))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("router: cluster not ready: %w", ctx.Err())
		case <-t.C:
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// allReady probes every replica concurrently under ONE per-sweep 1s
// deadline: a hung or blackholed replica burns only its own goroutine's
// wait, never another replica's budget, so a cluster whose every shard
// has a healthy replica passes even while some replica hangs. The sweep
// is cancelled early once every shard has reported a ready replica.
func (rt *Router) allReady(ctx context.Context) bool {
	sctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	u := &url.URL{Path: "/readyz"}
	ready := make([]atomic.Bool, len(rt.parsed))
	var unreadyShards atomic.Int32
	unreadyShards.Store(int32(len(rt.parsed)))
	var wg sync.WaitGroup
	for si := range rt.parsed {
		for ri := range rt.parsed[si] {
			wg.Add(1)
			go func(si, ri int) {
				defer wg.Done()
				resp, err := rt.fetch(sctx, &rt.parsed[si][ri], u)
				if err != nil {
					return
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && ready[si].CompareAndSwap(false, true) {
					if unreadyShards.Add(-1) == 0 {
						cancel() // all shards ready: release hung probes
					}
				}
			}(si, ri)
		}
	}
	wg.Wait()
	return unreadyShards.Load() == 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// ParseShards parses the -shards flag grammar: shards separated by
// commas, replicas of one shard separated by "|".
//
//	http://a:1,http://b:2,http://c:3          three shards
//	http://a:1|http://a2:1,http://b:2         shard 0 has two replicas
func ParseShards(s string) ([][]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("router: empty shard list")
	}
	var shards [][]string
	for _, part := range strings.Split(s, ",") {
		var replicas []string
		for _, rep := range strings.Split(part, "|") {
			rep = strings.TrimSpace(rep)
			if rep != "" {
				replicas = append(replicas, rep)
			}
		}
		if len(replicas) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas in %q", len(shards), s)
		}
		shards = append(shards, replicas)
	}
	return shards, nil
}
