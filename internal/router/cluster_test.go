package router_test

// The cluster harness: N sharded trustd servers plus the router,
// in-process, against a single unsharded reference server over the same
// synth.Medium event log. Every served per-source endpoint must come back
// BYTE-identical through the router — status, content type and body —
// before and after live ingest ticks. This is the end-to-end form of the
// core layer's bitwise-equivalence property: sharding is a memory
// transform, never a behavior change.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"weboftrust"
	"weboftrust/internal/ratings"
	"weboftrust/internal/router"
	"weboftrust/internal/server"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// mediumLogBytes generates the synth.Medium community once and renders it
// as event-log bytes; each subtest replays its own copy so live-ingest
// appends cannot leak across shard counts.
func mediumLogBytes(t *testing.T) ([]byte, *ratings.Dataset) {
	t.Helper()
	d, _, err := synth.Generate(synth.Medium())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "events.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, d
}

type node struct {
	ts     *httptest.Server
	tailer *server.Tailer
}

func startNode(t *testing.T, logPath string, opts ...weboftrust.Option) node {
	t.Helper()
	srv, tailer, err := server.Open(logPath, time.Hour, server.Options{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return node{ts: ts, tailer: tailer}
}

// fetch GETs base+path and returns status, content type and body.
func fetch(t *testing.T, base, path string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

// appendGrowth appends a deterministic ingest tick to the log: a new
// user, object and review, then ratings and trust edges from sources
// spread across the whole id space, so every shard's owned set and the
// replicated artifacts all change.
func appendGrowth(t *testing.T, logPath string, d *ratings.Dataset) {
	t.Helper()
	numU := d.NumUsers()
	writer := ratings.UserID(5)
	rid := ratings.ReviewID(d.NumReviews())
	evs := []store.Event{
		{Kind: store.EvAddUser, Name: "grown-user"},
		{Kind: store.EvAddObject, Category: 0, Name: "grown-object"},
		{Kind: store.EvAddReview, User: writer, Object: ratings.ObjectID(d.NumObjects())},
	}
	for i := 0; i < 40; i++ {
		rater := ratings.UserID((i*97 + 13) % numU)
		if rater == writer {
			continue
		}
		evs = append(evs, store.Event{Kind: store.EvAddRating, User: rater, Review: rid, Level: uint8(1 + i%5)})
	}
	// The freshly added user acts too: its ownership hash lands on some
	// shard that must fold it in.
	evs = append(evs, store.Event{Kind: store.EvAddRating, User: ratings.UserID(numU), Review: rid, Level: 4})
	for i := 0; i < 20; i++ {
		from := ratings.UserID((i*31 + 7) % numU)
		to := ratings.UserID((int(from) + 3) % numU)
		if from == to {
			continue
		}
		evs = append(evs, store.Event{Kind: store.EvAddTrust, User: from, To: to})
	}
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	lw := store.NewLogWriter(f)
	for _, ev := range evs {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterMatchesUnsharded spins up, for N ∈ {1, 2, 3}: N sharded
// servers over one log, the router in front of them, and an unsharded
// reference server over the same log — then asserts every routed
// response is byte-identical to the reference, before and after a live
// ingest tick folded in lockstep across all tailers.
func TestClusterMatchesUnsharded(t *testing.T) {
	raw, d := mediumLogBytes(t)
	numU := d.NumUsers()
	algos := []string{"appleseed", "moletrust", "tidaltrust"}

	for _, n := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			logPath := filepath.Join(t.TempDir(), "events.log")
			if err := os.WriteFile(logPath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			ref := startNode(t, logPath)
			nodes := make([]node, n)
			shardMap := make([][]string, n)
			for i := range nodes {
				nodes[i] = startNode(t, logPath, weboftrust.WithShard(i, n))
				shardMap[i] = []string{nodes[i].ts.URL}
			}
			rt, err := router.New(router.Config{Shards: shardMap})
			if err != nil {
				t.Fatal(err)
			}
			rts := httptest.NewServer(rt.Handler())
			t.Cleanup(rts.Close)

			compare := func(stage string) {
				t.Helper()
				var paths []string
				for u := 0; u < numU; u += 101 {
					paths = append(paths,
						fmt.Sprintf("/v1/topk?user=%d&k=7", u),
						fmt.Sprintf("/v1/trust?from=%d&to=%d", u, (u+1)%numU),
						fmt.Sprintf("/v1/neighbors?user=%d", u),
						fmt.Sprintf("/v1/propagate?algo=%s&user=%d&k=5", algos[(u/101)%3], u),
						// The landmark approximation must route byte-identically
						// too: the selection derives from the replicated rank
						// chain and the sketches from the shared global graph, so
						// shard and reference compose the same answer.
						fmt.Sprintf("/v1/propagate?algo=%s&user=%d&k=5&approx=landmark", algos[(u/101+1)%3], u),
						fmt.Sprintf("/v1/rank?user=%d", u),
						fmt.Sprintf("/v1/anomaly?user=%d", u),
					)
				}
				paths = append(paths,
					"/v1/graph/stats",
					// The global EigenTrust ranking is replicated state: any
					// shard at the served version answers it, and its
					// deterministic warm chain must match the unsharded
					// reference byte for byte — before and after ingest.
					"/v1/rank?k=5",
					// The anomaly leaderboard is replicated the same way: the
					// suspicion vector is a pure function of (dataset, web),
					// refreshed bit-identically across swaps on every shard.
					"/v1/anomaly/top?k=10",
					"/v1/propagate?algo=appleseed&user=0&k=5&exact=1",
					// Approximation-mode error paths proxy byte-identically:
					// unknown mode and the exact/approx conflict are both 400s
					// from the owning shard.
					"/v1/propagate?algo=appleseed&user=0&k=5&approx=bogus",
					"/v1/propagate?algo=appleseed&user=0&k=5&approx=landmark&exact=1",
					// Error paths must proxy byte-identically too: out of
					// range (404 from whichever shard it hashes to) and
					// unparsable (400 from the rotating fallback shard).
					fmt.Sprintf("/v1/topk?user=%d", numU+100000),
					"/v1/topk?user=notanumber",
					"/v1/trust?from=0",
				)
				for _, p := range paths {
					wantCode, wantCT, wantBody := fetch(t, ref.ts.URL, p)
					gotCode, gotCT, gotBody := fetch(t, rts.URL, p)
					if gotCode != wantCode || gotCT != wantCT || string(gotBody) != string(wantBody) {
						t.Fatalf("%s: %s:\nrouter: %d %s %s\nref:    %d %s %s",
							stage, p, gotCode, gotCT, gotBody, wantCode, wantCT, wantBody)
					}
				}
			}
			compare("cold")

			// A live ingest tick: append once, poll every tailer in
			// lockstep (reference included) so all states land on the same
			// version, then the equivalence must still hold.
			appendGrowth(t, logPath, d)
			if in, err := ref.tailer.Poll(); err != nil || in == 0 {
				t.Fatalf("ref poll: %d events, %v", in, err)
			}
			for i, nd := range nodes {
				if in, err := nd.tailer.Poll(); err != nil || in == 0 {
					t.Fatalf("shard %d poll: %d events, %v", i, in, err)
				}
			}
			compare("after-ingest")
		})
	}
}

// TestRouterReadyzAggregates pins that the router's readiness is the
// conjunction of its shards': all ready → 200, any missing → 503.
func TestRouterReadyzAggregates(t *testing.T) {
	raw, _ := mediumLogBytes(t)
	logPath := filepath.Join(t.TempDir(), "events.log")
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	up := startNode(t, logPath, weboftrust.WithShard(0, 2))
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)

	rt, err := router.New(router.Config{Shards: [][]string{{up.ts.URL}, {down.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	if code, _, body := fetch(t, rts.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("one shard down: /readyz = %d %s, want 503", code, body)
	}
	if code, _, body := fetch(t, rts.URL, "/healthz"); code != http.StatusOK {
		t.Fatalf("router liveness must not depend on shards: /healthz = %d %s", code, body)
	}

	healthy, err := router.New(router.Config{Shards: [][]string{{up.ts.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(healthy.Handler())
	t.Cleanup(hts.Close)
	if code, _, body := fetch(t, hts.URL, "/readyz"); code != http.StatusOK {
		t.Fatalf("all shards ready: /readyz = %d %s, want 200", code, body)
	}
}
