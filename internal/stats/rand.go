package stats

import (
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-based generator for the given seed.
// All randomness in this repository flows through generators created here,
// so a dataset or experiment is fully reproducible from its seed.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Normal samples a normal distribution with the given mean and standard
// deviation.
func Normal(rng *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*rng.NormFloat64()
}

// NormalClamped01 samples Normal(mean, stddev) clamped into [0, 1]; handy
// for latent qualities and skills.
func NormalClamped01(rng *rand.Rand, mean, stddev float64) float64 {
	return Clamp01(Normal(rng, mean, stddev))
}

// Gamma samples a Gamma(shape, 1) variate using the Marsaglia–Tsang
// squeeze method, with the standard alpha<1 boost. shape must be positive;
// it panics otherwise.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("stats: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples a Beta(alpha, beta) variate via the ratio of Gamma
// variates. Both parameters must be positive; it panics otherwise.
func Beta(rng *rand.Rand, alpha, beta float64) float64 {
	x := Gamma(rng, alpha)
	y := Gamma(rng, beta)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Pareto samples a bounded Pareto distribution on [lo, hi] with tail index
// alpha > 0 by inverse-CDF. Useful for power-law activity levels. It panics
// if lo <= 0, hi <= lo, or alpha <= 0.
func Pareto(rng *rand.Rand, lo, hi, alpha float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("stats: Pareto requires 0 < lo < hi and alpha > 0")
	}
	u := rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Dirichlet fills out with a Dirichlet(alpha, ..., alpha) sample of
// dimension len(out): a random point on the simplex (sums to 1). Smaller
// alpha concentrates mass on fewer coordinates. It panics if alpha <= 0;
// a zero-length out is returned unchanged.
func Dirichlet(rng *rand.Rand, alpha float64, out []float64) {
	if len(out) == 0 {
		return
	}
	var sum float64
	for i := range out {
		out[i] = Gamma(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// WeightedChoice returns an index sampled proportionally to the
// non-negative weights, or -1 if the weights sum to zero or the slice is
// empty.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack lands on the last index
}

// Sampler draws indices from a fixed non-negative weight vector in O(log n)
// per draw using a cumulative-sum table. Build once, draw many times.
type Sampler struct {
	cum []float64
}

// NewSampler builds a Sampler over weights. It returns nil if the weights
// sum to zero or the slice is empty.
func NewSampler(weights []float64) *Sampler {
	if len(weights) == 0 {
		return nil
	}
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil
	}
	return &Sampler{cum: cum}
}

// Draw samples an index proportionally to the weights.
func (s *Sampler) Draw(rng *rand.Rand) int {
	r := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
