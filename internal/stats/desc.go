// Package stats provides the descriptive statistics, rank correlations and
// random samplers shared by the synthetic community generator and the
// experiment evaluation code.
//
// Everything here is deterministic given its inputs; samplers take an
// explicit *rand.Rand (math/rand/v2) so experiments are reproducible from a
// single seed.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, or 0 for an empty slice. q is
// clamped to [0, 1]. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the five-number-plus-moments summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// Histogram counts xs into n equal-width bins spanning [lo, hi]. Values
// outside the range are clamped into the first or last bin. It returns nil
// if n <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	bins := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		bins[b]++
	}
	return bins
}

// Clamp01 clamps x into [0, 1].
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Clamp clamps x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
