package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of the paired samples
// x and y. It returns 0 when either sample has zero variance or the lengths
// differ or are below 2.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks of xs (1-based), assigning tied values
// the average of the ranks they span, as required by Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation of the paired samples x
// and y (Pearson correlation of their fractional ranks). It returns 0 for
// mismatched or too-short inputs or zero rank variance.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(Ranks(x), Ranks(y))
}

// KendallTau returns the Kendall tau-b rank correlation of the paired
// samples, which adjusts for ties. It is O(n^2) and intended for evaluation
// on modest sample sizes. It returns 0 for mismatched or too-short inputs
// or when either sample is entirely tied.
func KendallTau(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	var concordant, discordant, tiesX, tiesY float64
	n := len(x)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// Tied in both; contributes to neither.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}
