package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanVarianceEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Error("Variance of short input != 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty input != 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1.5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 4 {
		t.Errorf("Max = %v, want 4", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile of empty != 0")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v, %v, want 2, 4", s.Q1, s.Q3)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 10}
	bins := Histogram(xs, 0, 1, 2)
	if len(bins) != 2 {
		t.Fatalf("len(bins) = %d, want 2", len(bins))
	}
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("bins = %v, want [3 3] (out-of-range clamped)", bins)
	}
	if Histogram(xs, 0, 1, 0) != nil {
		t.Error("n=0 should return nil")
	}
	if Histogram(xs, 1, 0, 3) != nil {
		t.Error("hi<=lo should return nil")
	}
}

func TestClamp(t *testing.T) {
	if Clamp01(-0.5) != 0 || Clamp01(1.5) != 1 || Clamp01(0.3) != 0.3 {
		t.Error("Clamp01 wrong")
	}
	if Clamp(5, 1, 3) != 3 || Clamp(-5, 1, 3) != 1 || Clamp(2, 1, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

// Property: Quantile output is always within [Min, Max] and monotone in q.
func TestQuantileQuick(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 >= Min(xs) && v2 <= Max(xs) && v1 <= v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Mean is bounded by Min and Max.
func TestMeanBoundsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
