package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Float64() == c.Float64() {
			continue
		}
		same = false
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRand(1)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(rng, 2, 0.5)
	}
	if m := Mean(xs); !almostEq(m, 2, 0.02) {
		t.Errorf("sample mean = %v, want ~2", m)
	}
	if s := StdDev(xs); !almostEq(s, 0.5, 0.02) {
		t.Errorf("sample stddev = %v, want ~0.5", s)
	}
}

func TestNormalClamped01(t *testing.T) {
	rng := NewRand(2)
	for i := 0; i < 1000; i++ {
		v := NormalClamped01(rng, 0.5, 2)
		if v < 0 || v > 1 {
			t.Fatalf("value %v out of [0,1]", v)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	rng := NewRand(3)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			v := Gamma(rng, shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) produced negative %v", shape, v)
			}
			sum += v
		}
		mean := sum / float64(n)
		if !almostEq(mean, shape, 0.15*shape+0.05) {
			t.Errorf("Gamma(%v) sample mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gamma(NewRand(1), 0)
}

func TestBetaMomentsAndRange(t *testing.T) {
	rng := NewRand(4)
	alpha, beta := 2.0, 5.0
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := Beta(rng, alpha, beta)
		if v < 0 || v > 1 {
			t.Fatalf("Beta out of range: %v", v)
		}
		sum += v
	}
	want := alpha / (alpha + beta)
	if mean := sum / float64(n); !almostEq(mean, want, 0.01) {
		t.Errorf("Beta mean = %v, want ~%v", mean, want)
	}
}

func TestParetoRange(t *testing.T) {
	rng := NewRand(5)
	lo, hi := 1.0, 100.0
	for i := 0; i < 2000; i++ {
		v := Pareto(rng, lo, hi, 1.3)
		if v < lo || v > hi {
			t.Fatalf("Pareto out of [%v, %v]: %v", lo, hi, v)
		}
	}
}

func TestParetoSkew(t *testing.T) {
	// A power law should put most mass near lo.
	rng := NewRand(6)
	below := 0
	n := 5000
	for i := 0; i < n; i++ {
		if Pareto(rng, 1, 1000, 1.5) < 10 {
			below++
		}
	}
	if frac := float64(below) / float64(n); frac < 0.8 {
		t.Errorf("only %v of mass below 10; expected heavy head", frac)
	}
}

func TestParetoPanics(t *testing.T) {
	for i, f := range []func(){
		func() { Pareto(NewRand(1), 0, 1, 1) },
		func() { Pareto(NewRand(1), 2, 1, 1) },
		func() { Pareto(NewRand(1), 1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDirichletSimplex(t *testing.T) {
	rng := NewRand(7)
	out := make([]float64, 6)
	Dirichlet(rng, 0.5, out)
	var sum float64
	for _, v := range out {
		if v < 0 {
			t.Fatalf("negative component %v", v)
		}
		sum += v
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("sum = %v, want 1", sum)
	}
	Dirichlet(rng, 1, nil) // must not panic
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(8)
	if WeightedChoice(rng, nil) != -1 {
		t.Error("empty weights should return -1")
	}
	if WeightedChoice(rng, []float64{0, 0}) != -1 {
		t.Error("zero weights should return -1")
	}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(rng, []float64{1, 2, 7})]++
	}
	if frac := float64(counts[2]) / 30000; !almostEq(frac, 0.7, 0.02) {
		t.Errorf("weight-7 index frequency = %v, want ~0.7", frac)
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("low-weight indices never drawn")
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	rng := NewRand(9)
	s := NewSampler([]float64{1, 0, 3})
	if s == nil {
		t.Fatal("NewSampler returned nil for valid weights")
	}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.Draw(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	if frac := float64(counts[2]) / 40000; !almostEq(frac, 0.75, 0.02) {
		t.Errorf("weight-3 frequency = %v, want ~0.75", frac)
	}
}

func TestSamplerNilCases(t *testing.T) {
	if NewSampler(nil) != nil {
		t.Error("NewSampler(nil) should be nil")
	}
	if NewSampler([]float64{0, 0}) != nil {
		t.Error("NewSampler(zero weights) should be nil")
	}
	if NewSampler([]float64{-1, 2}) == nil {
		t.Error("negative weights are clamped; sampler should build")
	}
}

// Property: Sampler.Draw only returns indices with positive weight.
func TestSamplerSupportQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRand(seed)
		n := 1 + rng.IntN(20)
		weights := make([]float64, n)
		any := false
		for i := range weights {
			if rng.Float64() < 0.5 {
				weights[i] = rng.Float64() + 0.01
				any = true
			}
		}
		s := NewSampler(weights)
		if !any {
			return s == nil
		}
		for k := 0; k < 50; k++ {
			if i := s.Draw(rng); weights[i] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Beta stays in [0,1] for a range of parameters.
func TestBetaRangeQuick(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		rng := NewRand(seed)
		alpha := 0.1 + float64(aRaw)/16
		beta := 0.1 + float64(bRaw)/16
		for i := 0; i < 20; i++ {
			v := Beta(rng, alpha, beta)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
