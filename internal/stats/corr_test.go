package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 2}, []float64{1}) != 0 {
		t.Error("mismatched lengths should give 0")
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Error("n<2 should give 0")
	}
	if Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance should give 0")
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ranks[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Error("Ranks(nil) should be empty")
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{5, 5, 5})
	for i, r := range got {
		if r != 2 {
			t.Errorf("Ranks[%d] = %v, want 2", i, r)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	if got := Spearman(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1 for monotone data", got)
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 3, 4}
	if got := KendallTau(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("KendallTau identical = %v, want 1", got)
	}
	rev := []float64{4, 3, 2, 1}
	if got := KendallTau(x, rev); !almostEq(got, -1, 1e-12) {
		t.Errorf("KendallTau reversed = %v, want -1", got)
	}
	if KendallTau([]float64{1, 1}, []float64{1, 2}) != 0 {
		t.Error("all-tied x should give 0")
	}
	if KendallTau([]float64{1}, []float64{1}) != 0 {
		t.Error("n<2 should give 0")
	}
}

func TestKendallTauPartial(t *testing.T) {
	// One discordant pair among six: tau = (5-1)/6.
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 2, 4, 3}
	if got := KendallTau(x, y); !almostEq(got, 4.0/6.0, 1e-12) {
		t.Errorf("KendallTau = %v, want %v", got, 4.0/6.0)
	}
}

// Property: correlations live in [-1, 1] and are symmetric.
func TestCorrelationRangeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRand(seed)
		n := 2 + rng.IntN(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.IntN(10))
			y[i] = float64(rng.IntN(10))
		}
		p, s, k := Pearson(x, y), Spearman(x, y), KendallTau(x, y)
		const tol = 1e-9
		inRange := func(v float64) bool { return v >= -1-tol && v <= 1+tol }
		if !inRange(p) || !inRange(s) || !inRange(k) {
			return false
		}
		return almostEq(p, Pearson(y, x), 1e-12) &&
			almostEq(s, Spearman(y, x), 1e-12) &&
			almostEq(k, KendallTau(y, x), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvarianceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRand(seed)
		n := 3 + rng.IntN(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		base := Spearman(x, y)
		tx := make([]float64, n)
		for i, v := range x {
			tx[i] = math.Exp(3 * v) // strictly increasing
		}
		return almostEq(base, Spearman(tx, y), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
