package graph

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/stats"
)

func TestReciprocity(t *testing.T) {
	// 0<->1 reciprocal, 0->2 one-way: 2 of 3 edges reciprocated.
	g := mustNew(t, 3, []Edge{{0, 1, 1}, {1, 0, 1}, {0, 2, 1}})
	if got := g.Reciprocity(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Reciprocity = %v, want 2/3", got)
	}
	empty := mustNew(t, 2, nil)
	if empty.Reciprocity() != 0 {
		t.Error("empty graph reciprocity should be 0")
	}
	full := mustNew(t, 2, []Edge{{0, 1, 1}, {1, 0, 1}})
	if full.Reciprocity() != 1 {
		t.Error("fully reciprocal graph should be 1")
	}
}

func TestLocalClusteringTriangle(t *testing.T) {
	// Triangle 0-1-2 (directed arbitrarily): every node clusters at 1.
	g := mustNew(t, 3, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})
	for v := 0; v < 3; v++ {
		if got := g.LocalClustering(v); got != 1 {
			t.Errorf("LocalClustering(%d) = %v, want 1", v, got)
		}
	}
}

func TestLocalClusteringStar(t *testing.T) {
	// Star: hub 0 with leaves 1..3, no leaf-leaf edges: hub clusters 0.
	g := mustNew(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	if got := g.LocalClustering(0); got != 0 {
		t.Errorf("hub clustering = %v, want 0", got)
	}
	// Leaves have a single neighbour: 0 by convention.
	if got := g.LocalClustering(1); got != 0 {
		t.Errorf("leaf clustering = %v, want 0", got)
	}
}

func TestLocalClusteringPartial(t *testing.T) {
	// Hub 0 with neighbours 1,2,3; only 1-2 connected: 1 of 3 pairs.
	g := mustNew(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1}})
	if got := g.LocalClustering(0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("clustering = %v, want 1/3", got)
	}
}

func TestMeanClustering(t *testing.T) {
	g := mustNew(t, 3, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})
	if got := g.MeanClustering(nil); got != 1 {
		t.Errorf("MeanClustering(all) = %v, want 1", got)
	}
	if got := g.MeanClustering([]int{0}); got != 1 {
		t.Errorf("MeanClustering(sample) = %v, want 1", got)
	}
	if got := g.MeanClustering([]int{}); got != 0 {
		t.Errorf("MeanClustering(empty) = %v, want 0", got)
	}
}

func TestLargestSCCSize(t *testing.T) {
	g := mustNew(t, 5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 0, 1}})
	if got := g.LargestSCCSize(); got != 3 {
		t.Errorf("LargestSCCSize = %d, want 3", got)
	}
	if got := mustNew(t, 0, nil).LargestSCCSize(); got != 0 {
		t.Errorf("empty graph = %d, want 0", got)
	}
}

// Property: clustering coefficients live in [0,1]; reciprocity too.
func TestStructureRangesQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(12)
		var edges []Edge
		for k := 0; k < rng.IntN(4*n); k++ {
			edges = append(edges, Edge{From: rng.IntN(n), To: rng.IntN(n), Weight: 1})
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		r := g.Reciprocity()
		if r < 0 || r > 1 {
			return false
		}
		for v := 0; v < n; v++ {
			c := g.LocalClustering(v)
			if c < 0 || c > 1 {
				return false
			}
		}
		m := g.MeanClustering(nil)
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
