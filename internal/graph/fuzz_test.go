package graph

import (
	"encoding/binary"
	"testing"
)

// FuzzGraphNew drives the graph constructor with adversarial edge lists
// decoded from raw bytes: node counts and endpoints far outside range,
// duplicate and self edges, pathological weights. The constructor must
// either reject the input or return a structurally sound graph — never
// panic, never index out of bounds — because the serving path hands New
// and FromRows data derived from decoded (checkpointed) artifacts.
func FuzzGraphNew(f *testing.F) {
	seed := func(n uint16, triples ...uint16) []byte {
		b := binary.LittleEndian.AppendUint16(nil, n)
		for _, v := range triples {
			b = binary.LittleEndian.AppendUint16(b, v)
		}
		return b
	}
	f.Add(seed(0))
	f.Add(seed(3, 0, 1, 100, 1, 2, 200, 2, 0, 300))
	f.Add(seed(2, 0, 0, 1, 1, 5, 2))     // self-loop + out-of-range
	f.Add(seed(4, 0, 1, 7, 0, 1, 9))     // duplicate edge (weights merge)
	f.Add(seed(65535, 0, 65534, 1))      // huge node count, sparse
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// Bound n so a fuzzed node count cannot legitimately allocate
		// gigabytes: the validation under test is about edges, not n.
		n := int(binary.LittleEndian.Uint16(data)) % 4096
		data = data[2:]
		var edges []Edge
		for len(data) >= 6 {
			edges = append(edges, Edge{
				From:   int(int16(binary.LittleEndian.Uint16(data))),
				To:     int(int16(binary.LittleEndian.Uint16(data[2:]))),
				Weight: float64(binary.LittleEndian.Uint16(data[4:])) / 65536,
			})
			data = data[6:]
		}
		g, err := New(n, edges)
		if err != nil {
			for _, e := range edges {
				if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
					return // rejection justified
				}
			}
			t.Fatalf("New rejected %d in-range edges: %v", len(edges), err)
		}
		validate(t, g, n, len(edges))

		// Re-pack the merged adjacency through FromRows: it must accept
		// output New itself produced and build the identical graph.
		to := make([][]int32, n)
		w := make([][]float64, n)
		for v := 0; v < n; v++ {
			to[v], w[v] = g.Out(v)
		}
		g2, err := FromRows(n, to, w)
		if err != nil {
			t.Fatalf("FromRows rejected New's own adjacency: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip edge count %d != %d", g2.NumEdges(), g.NumEdges())
		}
		validate(t, g2, n, len(edges))
	})
}

// validate checks the CSR invariants a structurally sound graph holds.
func validate(t *testing.T, g *Graph, n, maxEdges int) {
	t.Helper()
	if g.NumNodes() != n {
		t.Fatalf("NumNodes = %d, want %d", g.NumNodes(), n)
	}
	if g.NumEdges() > maxEdges {
		t.Fatalf("NumEdges = %d exceeds %d inputs", g.NumEdges(), maxEdges)
	}
	outSum, inSum := 0, 0
	for v := 0; v < n; v++ {
		to, wts := g.Out(v)
		if len(to) != len(wts) || len(to) != g.OutDegree(v) {
			t.Fatalf("node %d: inconsistent out lists", v)
		}
		for i, u := range to {
			if u < 0 || int(u) >= n {
				t.Fatalf("node %d: out target %d out of range", v, u)
			}
			if i > 0 && to[i-1] >= u {
				t.Fatalf("node %d: out targets not strictly ascending", v)
			}
		}
		from, iw := g.In(v)
		if len(from) != len(iw) || len(from) != g.InDegree(v) {
			t.Fatalf("node %d: inconsistent in lists", v)
		}
		outSum += len(to)
		inSum += len(from)
	}
	if outSum != g.NumEdges() || inSum != g.NumEdges() {
		t.Fatalf("degree sums %d/%d != %d edges", outSum, inSum, g.NumEdges())
	}
}
