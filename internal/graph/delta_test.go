package graph

import (
	"math/rand"
	"testing"
)

// randomRows generates random sorted adjacency for n nodes with edge
// probability p.
func randomRows(rng *rand.Rand, n int, p float64) (to [][]int32, w [][]float64) {
	to = make([][]int32, n)
	w = make([][]float64, n)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if rng.Float64() < p {
				to[v] = append(to[v], int32(u))
				w[v] = append(w[v], rng.Float64())
			}
		}
	}
	return to, w
}

func requireSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: %d/%d vs %d/%d", got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for v := 0; v < want.NumNodes(); v++ {
		gt, gw := got.Out(v)
		wt, ww := want.Out(v)
		if len(gt) != len(wt) {
			t.Fatalf("node %d out: %d vs %d", v, len(gt), len(wt))
		}
		for i := range gt {
			if gt[i] != wt[i] || gw[i] != ww[i] {
				t.Fatalf("node %d out edge %d: (%d,%v) vs (%d,%v)", v, i, gt[i], gw[i], wt[i], ww[i])
			}
		}
		gf, gwi := got.In(v)
		wf, wwi := want.In(v)
		if len(gf) != len(wf) {
			t.Fatalf("node %d in: %d vs %d", v, len(gf), len(wf))
		}
		for i := range gf {
			if gf[i] != wf[i] || gwi[i] != wwi[i] {
				t.Fatalf("node %d in edge %d: (%d,%v) vs (%d,%v)", v, i, gf[i], gwi[i], wf[i], wwi[i])
			}
		}
	}
}

// TestUpdateRowsMatchesFromRows: for random base graphs and random dirty
// sets (rewrites, emptied rows, appended nodes), UpdateRows produces a
// graph structurally identical to a full FromRows rebuild of the new rows.
func TestUpdateRowsMatchesFromRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(25)
		to, w := randomRows(rng, n, 0.15+rng.Float64()*0.25)
		prev, err := FromRows(n, to, w)
		if err != nil {
			t.Fatal(err)
		}

		// Grow by up to 3 nodes on some trials; appended rows are dirty.
		newN := n
		if rng.Intn(2) == 0 {
			newN += rng.Intn(4)
		}
		dirty := make([]bool, newN)
		newTo := make([][]int32, newN)
		newW := make([][]float64, newN)
		for v := 0; v < n; v++ {
			switch {
			case rng.Float64() < 0.25: // rewrite the row from scratch
				dirty[v] = true
				for u := 0; u < newN; u++ {
					if rng.Float64() < 0.2 {
						newTo[v] = append(newTo[v], int32(u))
						newW[v] = append(newW[v], rng.Float64())
					}
				}
			case rng.Float64() < 0.1: // dirty but unchanged content
				dirty[v] = true
				newTo[v] = append([]int32(nil), to[v]...)
				newW[v] = append([]float64(nil), w[v]...)
			default: // clean: share the old row
				newTo[v] = to[v]
				newW[v] = w[v]
			}
		}
		for v := n; v < newN; v++ {
			dirty[v] = true
			for u := 0; u < newN; u++ {
				if rng.Float64() < 0.2 {
					newTo[v] = append(newTo[v], int32(u))
					newW[v] = append(newW[v], rng.Float64())
				}
			}
		}

		delta, err := UpdateRows(prev, newN, dirty, newTo, newW)
		if err != nil {
			t.Fatal(err)
		}
		full, err := FromRows(newN, newTo, newW)
		if err != nil {
			t.Fatal(err)
		}
		requireSameGraph(t, delta, full)
	}
}

func TestUpdateRowsAllCleanSharesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	to, w := randomRows(rng, 12, 0.3)
	prev, err := FromRows(12, to, w)
	if err != nil {
		t.Fatal(err)
	}
	g, err := UpdateRows(prev, 12, make([]bool, 12), to, w)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, g, prev)
}

func TestUpdateRowsRejectsInvalid(t *testing.T) {
	prev, err := FromRows(3, [][]int32{{1, 2}, {2}, nil}, [][]float64{{1, 1}, {1}, nil})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		n     int
		dirty []bool
		to    [][]int32
		w     [][]float64
	}{
		{"shrink", 2, []bool{false, false}, [][]int32{{1}, nil}, [][]float64{{1}, nil}},
		{"dirty flag count", 3, []bool{false, false}, [][]int32{{1, 2}, {2}, nil}, [][]float64{{1, 1}, {1}, nil}},
		{"clean row mismatch", 3, []bool{false, false, false}, [][]int32{{1}, {2}, nil}, [][]float64{{1}, {1}, nil}},
		{"dirty out of range", 3, []bool{true, false, false}, [][]int32{{3}, {2}, nil}, [][]float64{{1}, {1}, nil}},
		{"dirty unsorted", 3, []bool{true, false, false}, [][]int32{{2, 1}, {2}, nil}, [][]float64{{1, 1}, {1}, nil}},
		{"dirty ragged", 3, []bool{true, false, false}, [][]int32{{1, 2}, {2}, nil}, [][]float64{{1}, {1}, nil}},
	}
	for _, tc := range cases {
		if _, err := UpdateRows(prev, tc.n, tc.dirty, tc.to, tc.w); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := UpdateRows(nil, 3, make([]bool, 3), make([][]int32, 3), make([][]float64, 3)); err == nil {
		t.Error("nil prev: accepted")
	}
}
