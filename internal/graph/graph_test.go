package graph

import (
	"testing"
	"testing/quick"

	"weboftrust/internal/stats"
)

func mustNew(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBasic(t *testing.T) {
	g := mustNew(t, 4, []Edge{
		{0, 1, 0.5}, {0, 2, 0.8}, {1, 2, 1}, {3, 0, 0.2},
	})
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	to, w := g.Out(0)
	if len(to) != 2 || to[0] != 1 || to[1] != 2 || w[0] != 0.5 || w[1] != 0.8 {
		t.Errorf("Out(0) = %v %v", to, w)
	}
	from, _ := g.In(2)
	if len(from) != 2 || from[0] != 0 || from[1] != 1 {
		t.Errorf("In(2) = %v", from)
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 || g.OutDegree(2) != 0 {
		t.Error("degrees wrong")
	}
	if wt, ok := g.Weight(0, 2); !ok || wt != 0.8 {
		t.Errorf("Weight(0,2) = %v, %v", wt, ok)
	}
	if _, ok := g.Weight(2, 0); ok {
		t.Error("Weight(2,0) should not exist")
	}
	if s := g.OutWeightSum(0); s != 1.3 {
		t.Errorf("OutWeightSum(0) = %v, want 1.3", s)
	}
}

func TestNewDuplicateEdgesAccumulate(t *testing.T) {
	g := mustNew(t, 2, []Edge{{0, 1, 0.3}, {0, 1, 0.4}})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.Weight(0, 1); w != 0.7 {
		t.Errorf("weight = %v, want 0.7", w)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New(2, []Edge{{-1, 0, 1}}); err == nil {
		t.Error("negative endpoint accepted")
	}
}

func TestBFSDepths(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, plus 0 -> 2 shortcut.
	g := mustNew(t, 5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 2, 1}})
	d := g.BFSDepths(0, -1)
	want := []int{0, 1, 1, 2, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	limited := g.BFSDepths(0, 1)
	if limited[3] != -1 {
		t.Error("maxDepth=1 should not reach node 3")
	}
	if limited[1] != 1 || limited[2] != 1 {
		t.Error("maxDepth=1 should reach depth-1 nodes")
	}
	if g.Reachable(0, -1) != 3 {
		t.Errorf("Reachable = %d, want 3", g.Reachable(0, -1))
	}
	bad := g.BFSDepths(-1, -1)
	for _, v := range bad {
		if v != -1 {
			t.Error("invalid source should reach nothing")
		}
	}
}

func TestSCC(t *testing.T) {
	// Cycle 0->1->2->0, plus 3->0 and isolated 4.
	g := mustNew(t, 5, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 0, 1}})
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("numComps = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle not one component: %v", comp)
	}
	if comp[3] == comp[0] || comp[4] == comp[0] || comp[3] == comp[4] {
		t.Errorf("separate components wrong: %v", comp)
	}
	// Reverse topological order: the cycle (a sink component) gets the
	// smallest id.
	if comp[0] != 0 {
		t.Errorf("sink SCC should be component 0, got %d", comp[0])
	}
}

func TestSCCLongChainNoOverflow(t *testing.T) {
	// A long path exercises the iterative Tarjan implementation.
	const n = 200000
	edges := make([]Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = Edge{From: i, To: i + 1, Weight: 1}
	}
	g := mustNew(t, n, edges)
	_, comps := g.SCC()
	if comps != n {
		t.Errorf("comps = %d, want %d (all singletons)", comps, n)
	}
}

func TestDegrees(t *testing.T) {
	g := mustNew(t, 4, []Edge{{0, 1, 1}, {0, 2, 1}, {1, 2, 1}})
	s := g.Degrees()
	if s.Nodes != 4 || s.Edges != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Errorf("max degrees = %d/%d, want 2/2", s.MaxOutDegree, s.MaxInDegree)
	}
	if s.Isolated != 1 {
		t.Errorf("isolated = %d, want 1 (node 3)", s.Isolated)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustNew(t, 0, nil)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph not empty")
	}
	comp, n := g.SCC()
	if len(comp) != 0 || n != 0 {
		t.Error("empty SCC wrong")
	}
	_ = g.Degrees()
}

// Property: SCC returns a valid partition — every node gets a component in
// [0, numComps), and mutually reachable nodes share components.
func TestSCCPartitionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.IntN(20)
		var edges []Edge
		for k := 0; k < rng.IntN(40); k++ {
			edges = append(edges, Edge{From: rng.IntN(n), To: rng.IntN(n), Weight: 1})
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		comp, numComps := g.SCC()
		for _, c := range comp {
			if c < 0 || c >= numComps {
				return false
			}
		}
		// Mutual reachability implies same component.
		for u := 0; u < n; u++ {
			du := g.BFSDepths(u, -1)
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				dv := g.BFSDepths(v, -1)
				mutual := du[v] >= 0 && dv[u] >= 0
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: In is the exact mirror of Out.
func TestInOutMirrorQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		n := 1 + rng.IntN(15)
		var edges []Edge
		for k := 0; k < rng.IntN(40); k++ {
			edges = append(edges, Edge{From: rng.IntN(n), To: rng.IntN(n), Weight: rng.Float64()})
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		outCount, inCount := 0, 0
		for v := 0; v < n; v++ {
			to, w := g.Out(v)
			outCount += len(to)
			for i, t2 := range to {
				wt, ok := g.Weight(v, int(t2))
				if !ok || wt != w[i] {
					return false
				}
				// The reverse index must contain this edge.
				from, fw := g.In(int(t2))
				found := false
				for j, f2 := range from {
					if int(f2) == v && fw[j] == w[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			in, _ := g.In(v)
			inCount += len(in)
		}
		return outCount == inCount && outCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
