// Package graph provides the directed weighted graph substrate used by the
// trust-propagation algorithms (package propagation) and by network
// analyses of explicit and derived webs of trust. Nodes are dense ints
// (user ids); adjacency is CSR-packed for cache-friendly traversal.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed weighted edge.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is an immutable directed weighted graph. Build one with New.
type Graph struct {
	n      int
	outOff []int32
	outTo  []int32
	outW   []float64
	inOff  []int32
	inFrom []int32
	inW    []float64
}

// New builds a graph with n nodes from the given edges. Duplicate edges
// accumulate their weights. Self-loops are allowed but the trust
// algorithms ignore them. It returns an error for out-of-range endpoints.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	merged := make(map[uint64]float64, len(edges))
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("graph: edge (%d, %d) out of range %d", e.From, e.To, n)
		}
		merged[uint64(uint32(e.From))<<32|uint64(uint32(e.To))] += e.Weight
	}
	type flat struct {
		from, to int32
		w        float64
	}
	flats := make([]flat, 0, len(merged))
	for k, w := range merged {
		flats = append(flats, flat{from: int32(k >> 32), to: int32(uint32(k)), w: w})
	}
	sort.Slice(flats, func(a, b int) bool {
		if flats[a].from != flats[b].from {
			return flats[a].from < flats[b].from
		}
		return flats[a].to < flats[b].to
	})
	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outTo:  make([]int32, len(flats)),
		outW:   make([]float64, len(flats)),
		inOff:  make([]int32, n+1),
		inFrom: make([]int32, len(flats)),
		inW:    make([]float64, len(flats)),
	}
	for i, f := range flats {
		g.outOff[f.from+1]++
		g.outTo[i] = f.to
		g.outW[i] = f.w
		g.inOff[f.to+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	next := make([]int32, n)
	copy(next, g.inOff[:n])
	for _, f := range flats {
		pos := next[f.to]
		g.inFrom[pos] = f.from
		g.inW[pos] = f.w
		next[f.to]++
	}
	return g, nil
}

// FromRows builds a graph directly from per-node adjacency rows: to[v]
// lists node v's out-neighbours in strictly ascending order (therefore
// unique) and w[v] the matching edge weights. This is the fast path for
// callers that already hold CSR-shaped adjacency (the derived web of
// trust's per-user edge rows): where New merges arbitrary edge lists
// through a map and a global sort, FromRows only validates and copies,
// so building the graph is one O(E) pass. A nil to[v] (or w[v] for a
// nil-row) is an empty row. It returns an error for out-of-range
// endpoints, unsorted or duplicated targets, or mismatched row lengths.
func FromRows(n int, to [][]int32, w [][]float64) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(to) != n || len(w) != n {
		return nil, fmt.Errorf("graph: %d target rows / %d weight rows for %d nodes", len(to), len(w), n)
	}
	nnz := 0
	for v := 0; v < n; v++ {
		if len(to[v]) != len(w[v]) {
			return nil, fmt.Errorf("graph: row %d has %d targets but %d weights", v, len(to[v]), len(w[v]))
		}
		for i, t := range to[v] {
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("graph: edge (%d, %d) out of range %d", v, t, n)
			}
			if i > 0 && to[v][i-1] >= t {
				return nil, fmt.Errorf("graph: row %d targets not strictly ascending at %d", v, t)
			}
		}
		nnz += len(to[v])
	}
	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outTo:  make([]int32, nnz),
		outW:   make([]float64, nnz),
		inOff:  make([]int32, n+1),
		inFrom: make([]int32, nnz),
		inW:    make([]float64, nnz),
	}
	pos := 0
	for v := 0; v < n; v++ {
		copy(g.outTo[pos:], to[v])
		copy(g.outW[pos:], w[v])
		pos += len(to[v])
		g.outOff[v+1] = int32(pos)
		for _, t := range to[v] {
			g.inOff[t+1]++
		}
	}
	for v := 0; v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	next := make([]int32, n)
	copy(next, g.inOff[:n])
	// Rows are visited in ascending source order, so each in-list fills in
	// ascending source order — the same layout New produces.
	for v := 0; v < n; v++ {
		for i, t := range to[v] {
			p := next[t]
			g.inFrom[p] = int32(v)
			g.inW[p] = w[v][i]
			next[t]++
		}
	}
	return g, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// Out returns node v's outgoing targets and weights as shared slices that
// must not be modified. Targets are in ascending order.
func (g *Graph) Out(v int) (to []int32, w []float64) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outTo[lo:hi], g.outW[lo:hi]
}

// In returns node v's incoming sources and weights as shared slices that
// must not be modified. Sources are in ascending order.
func (g *Graph) In(v int) (from []int32, w []float64) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inFrom[lo:hi], g.inW[lo:hi]
}

// OutDegree returns the number of outgoing edges of v.
func (g *Graph) OutDegree(v int) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of incoming edges of v.
func (g *Graph) InDegree(v int) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Weight returns the weight of edge (u, v) and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	to, w := g.Out(u)
	k := sort.Search(len(to), func(i int) bool { return to[i] >= int32(v) })
	if k < len(to) && to[k] == int32(v) {
		return w[k], true
	}
	return 0, false
}

// OutWeightSum returns the total outgoing weight of v.
func (g *Graph) OutWeightSum(v int) float64 {
	_, w := g.Out(v)
	var s float64
	for _, x := range w {
		s += x
	}
	return s
}

// BFSDepths returns the BFS depth of every node from source (-1 if
// unreachable), stopping at maxDepth (no limit if maxDepth < 0).
func (g *Graph) BFSDepths(source, maxDepth int) []int {
	depth := make([]int, g.n)
	for i := range depth {
		depth[i] = -1
	}
	if source < 0 || source >= g.n {
		return depth
	}
	depth[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && depth[v] >= maxDepth {
			continue
		}
		to, _ := g.Out(v)
		for _, t := range to {
			if depth[t] == -1 {
				depth[t] = depth[v] + 1
				queue = append(queue, int(t))
			}
		}
	}
	return depth
}

// Reachable counts nodes reachable from source within maxDepth hops
// (excluding the source itself); maxDepth < 0 means unlimited.
func (g *Graph) Reachable(source, maxDepth int) int {
	depths := g.BFSDepths(source, maxDepth)
	count := 0
	for v, d := range depths {
		if v != source && d >= 0 {
			count++
		}
	}
	return count
}

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so deep graphs cannot overflow the stack). It returns the
// component id of every node; ids are dense starting at 0 in reverse
// topological order of the condensation.
func (g *Graph) SCC() (comp []int, numComps int) {
	const unvisited = -1
	comp = make([]int, g.n)
	index := make([]int32, g.n)
	low := make([]int32, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int32
	var next int32
	type frame struct {
		v    int32
		edge int32 // next out-edge offset to explore
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: int32(root), edge: g.outOff[root]}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			if f.edge < g.outOff[v+1] {
				w := g.outTo[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w, edge: g.outOff[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComps
					if w == v {
						break
					}
				}
				numComps++
			}
		}
	}
	return comp, numComps
}

// DegreeStats summarises the degree distribution.
type DegreeStats struct {
	Nodes, Edges              int
	MaxOutDegree, MaxInDegree int
	MeanOutDegree             float64
	Isolated                  int // nodes with no in or out edges
}

// Degrees computes degree statistics.
func (g *Graph) Degrees() DegreeStats {
	s := DegreeStats{Nodes: g.n, Edges: g.NumEdges()}
	for v := 0; v < g.n; v++ {
		out, in := g.OutDegree(v), g.InDegree(v)
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out == 0 && in == 0 {
			s.Isolated++
		}
	}
	if g.n > 0 {
		s.MeanOutDegree = float64(s.Edges) / float64(g.n)
	}
	return s
}
