package graph

import (
	"math/rand"
	"testing"
)

// TestFromRowsMatchesNew: for random already-sorted adjacency, FromRows
// builds exactly the graph New builds from the equivalent edge list —
// out and in lists, weights, offsets.
func TestFromRowsMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		to := make([][]int32, n)
		w := make([][]float64, n)
		var edges []Edge
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if rng.Float64() < 0.2 {
					weight := rng.Float64()
					to[v] = append(to[v], int32(u))
					w[v] = append(w[v], weight)
					edges = append(edges, Edge{From: v, To: u, Weight: weight})
				}
			}
		}
		fast, err := FromRows(n, to, w)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := New(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if fast.NumNodes() != slow.NumNodes() || fast.NumEdges() != slow.NumEdges() {
			t.Fatalf("shape: %d/%d vs %d/%d", fast.NumNodes(), fast.NumEdges(), slow.NumNodes(), slow.NumEdges())
		}
		for v := 0; v < n; v++ {
			ft, fw := fast.Out(v)
			st, sw := slow.Out(v)
			if len(ft) != len(st) {
				t.Fatalf("node %d out: %d vs %d", v, len(ft), len(st))
			}
			for i := range ft {
				if ft[i] != st[i] || fw[i] != sw[i] {
					t.Fatalf("node %d out edge %d: (%d,%v) vs (%d,%v)", v, i, ft[i], fw[i], st[i], sw[i])
				}
			}
			ff, fiw := fast.In(v)
			sf, siw := slow.In(v)
			if len(ff) != len(sf) {
				t.Fatalf("node %d in: %d vs %d", v, len(ff), len(sf))
			}
			for i := range ff {
				if ff[i] != sf[i] || fiw[i] != siw[i] {
					t.Fatalf("node %d in edge %d: (%d,%v) vs (%d,%v)", v, i, ff[i], fiw[i], sf[i], siw[i])
				}
			}
		}
	}
}

func TestFromRowsRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		n    int
		to   [][]int32
		w    [][]float64
	}{
		{"negative n", -1, nil, nil},
		{"row count mismatch", 2, [][]int32{{0}}, [][]float64{{1}}},
		{"weight count mismatch", 1, [][]int32{{0}}, [][]float64{}},
		{"ragged row", 2, [][]int32{{0, 1}, nil}, [][]float64{{1}, nil}},
		{"out of range", 2, [][]int32{{2}, nil}, [][]float64{{1}, nil}},
		{"negative target", 2, [][]int32{{-1}, nil}, [][]float64{{1}, nil}},
		{"unsorted", 3, [][]int32{{2, 1}, nil, nil}, [][]float64{{1, 1}, nil, nil}},
		{"duplicate", 3, [][]int32{{1, 1}, nil, nil}, [][]float64{{1, 1}, nil, nil}},
	}
	for _, tc := range cases {
		if _, err := FromRows(tc.n, tc.to, tc.w); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFromRowsEmpty(t *testing.T) {
	g, err := FromRows(0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
}
