package graph

import "sort"

// Reciprocity returns the fraction of directed edges whose reverse edge
// also exists — a standard social-network statistic (explicit trust webs
// are notoriously reciprocal; derived webs need not be). An empty graph
// returns 0.
func (g *Graph) Reciprocity() float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	recip := 0
	for v := 0; v < g.n; v++ {
		to, _ := g.Out(v)
		for _, u := range to {
			if _, ok := g.Weight(int(u), v); ok {
				recip++
			}
		}
	}
	return float64(recip) / float64(g.NumEdges())
}

// LocalClustering returns node v's local clustering coefficient treating
// the graph as undirected: of all pairs of v's neighbours (union of in-
// and out-neighbours, excluding v), the fraction connected by an edge in
// either direction. Nodes with fewer than two neighbours return 0.
func (g *Graph) LocalClustering(v int) float64 {
	neighbours := g.undirectedNeighbours(v)
	k := len(neighbours)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			a, b := neighbours[i], neighbours[j]
			if _, ok := g.Weight(a, b); ok {
				links++
				continue
			}
			if _, ok := g.Weight(b, a); ok {
				links++
			}
		}
	}
	return float64(links) / float64(k*(k-1)/2)
}

// MeanClustering averages LocalClustering over the given nodes (all nodes
// when sample is nil). Sampling keeps the quadratic per-node cost
// tractable on hub-heavy graphs.
func (g *Graph) MeanClustering(sample []int) float64 {
	if sample == nil {
		sample = make([]int, g.n)
		for i := range sample {
			sample[i] = i
		}
	}
	if len(sample) == 0 {
		return 0
	}
	var sum float64
	for _, v := range sample {
		sum += g.LocalClustering(v)
	}
	return sum / float64(len(sample))
}

// undirectedNeighbours returns the sorted union of v's in- and
// out-neighbours, excluding v itself.
func (g *Graph) undirectedNeighbours(v int) []int {
	to, _ := g.Out(v)
	from, _ := g.In(v)
	set := make(map[int]struct{}, len(to)+len(from))
	for _, u := range to {
		if int(u) != v {
			set[int(u)] = struct{}{}
		}
	}
	for _, u := range from {
		if int(u) != v {
			set[int(u)] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// LargestSCCSize returns the size of the largest strongly connected
// component (0 for an empty graph).
func (g *Graph) LargestSCCSize() int {
	comp, numComps := g.SCC()
	if numComps == 0 {
		return 0
	}
	sizes := make([]int, numComps)
	for _, c := range comp {
		sizes[c]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}
