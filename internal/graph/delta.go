package graph

import (
	"fmt"
	"sort"
)

// UpdateRows builds the graph for a new set of adjacency rows by reusing
// prev's packed arrays for every row the caller marks clean. It is the
// incremental companion to FromRows: rows follow the same shape (to[v]
// strictly ascending, w[v] matching), but clean rows are trusted to hold
// exactly prev's adjacency (they are length-checked) and move as bulk
// copies of whole runs. Dirty rows that turn out bitwise-unchanged are
// demoted to clean by a sequential compare; rows that truly changed are
// validated and scattered, and their edge diffs drive the in-side: only
// targets that gain or lose an edge have their in-lists rebuilt, while
// weight-only changes are patched into bulk-copied lists in place. All
// per-edge work therefore scales with the rows that actually differ and
// the edges that structurally move; the remaining cost is O(n) offset
// arrays and sequential memcpy of the clean regions.
//
// n may exceed prev.NumNodes(); appended rows are implicitly dirty.
// Shrinking the node count is not supported. The result is structurally
// identical to FromRows(n, to, w) — same arrays, same ordering — so
// callers may use the two interchangeably.
func UpdateRows(prev *Graph, n int, dirty []bool, to [][]int32, w [][]float64) (*Graph, error) {
	if prev == nil {
		return nil, fmt.Errorf("graph: UpdateRows requires a previous graph")
	}
	prevN := prev.n
	if n < prevN {
		return nil, fmt.Errorf("graph: UpdateRows cannot shrink node count %d -> %d", prevN, n)
	}
	if len(to) != n || len(w) != n || len(dirty) != n {
		return nil, fmt.Errorf("graph: %d target rows / %d weight rows / %d dirty flags for %d nodes",
			len(to), len(w), len(dirty), n)
	}
	// The caller's dirty set is a conservative superset of the rows that
	// actually changed (the core layer taints whole categories); a row
	// that is bitwise what prev already holds needs no validation (prev
	// was valid) and no in-list rebuild of its targets. Demote such rows
	// to clean so all per-edge work below scales with the rows that truly
	// differ — `changed` replaces the caller's flags from here on.
	changed := make([]bool, n)
	for v := 0; v < n; v++ {
		if v >= prevN {
			changed[v] = true
			continue
		}
		if !dirty[v] {
			continue
		}
		pt, pw := prev.Out(v)
		if len(to[v]) != len(pt) || len(w[v]) != len(pt) {
			changed[v] = true
			continue
		}
		for i := range pt {
			if to[v][i] != pt[i] || w[v][i] != pw[i] {
				changed[v] = true
				break
			}
		}
	}
	isDirty := func(v int) bool { return changed[v] }

	// Size the edge arrays and validate changed rows under FromRows' rules.
	nnz := prev.NumEdges()
	for v := 0; v < n; v++ {
		if !isDirty(v) {
			if len(to[v]) != prev.OutDegree(v) || len(w[v]) != len(to[v]) {
				return nil, fmt.Errorf("graph: clean row %d does not match previous graph (%d targets, %d weights, had %d)",
					v, len(to[v]), len(w[v]), prev.OutDegree(v))
			}
			continue
		}
		if len(to[v]) != len(w[v]) {
			return nil, fmt.Errorf("graph: row %d has %d targets but %d weights", v, len(to[v]), len(w[v]))
		}
		for i, t := range to[v] {
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("graph: edge (%d, %d) out of range %d", v, t, n)
			}
			if i > 0 && to[v][i-1] >= t {
				return nil, fmt.Errorf("graph: row %d targets not strictly ascending at %d", v, t)
			}
		}
		if v < prevN {
			nnz -= prev.OutDegree(v)
		}
		nnz += len(to[v])
	}

	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outTo:  make([]int32, nnz),
		outW:   make([]float64, nnz),
		inOff:  make([]int32, n+1),
		inFrom: make([]int32, nnz),
		inW:    make([]float64, nnz),
	}

	// Out-adjacency: maximal runs of consecutive clean rows copy straight
	// out of prev's packed arrays with a single offset shift.
	pos := int32(0)
	for v := 0; v < n; {
		if !isDirty(v) {
			run := v
			for run < n && !isDirty(run) {
				run++
			}
			lo, hi := prev.outOff[v], prev.outOff[run]
			copy(g.outTo[pos:], prev.outTo[lo:hi])
			copy(g.outW[pos:], prev.outW[lo:hi])
			shift := pos - lo
			for u := v; u < run; u++ {
				g.outOff[u+1] = prev.outOff[u+1] + shift
			}
			pos += hi - lo
			v = run
			continue
		}
		copy(g.outTo[pos:], to[v])
		copy(g.outW[pos:], w[v])
		pos += int32(len(to[v]))
		g.outOff[v+1] = pos
		v++
	}

	// In-adjacency: diff each changed row against its previous self with a
	// two-pointer walk (both are source-sorted). An edge that appears or
	// disappears makes its target STRUCTURAL — that in-list is rebuilt by
	// merge below. A weight-only change leaves the target's source list
	// intact, so the list moves as a bulk copy and the weight is patched
	// in place afterwards. In a typical ingest tick almost every changed
	// row is a re-normalisation (same targets, shifted weights), so this
	// keeps per-edge merge work proportional to the handful of edges that
	// truly appear or disappear, not to the changed rows' full fan-out.
	structural := make([]bool, n)
	inDeg := make([]int32, n)
	type wpatch struct {
		t, from int32
		w       float64
	}
	var patches []wpatch
	for t := 0; t < prevN; t++ {
		inDeg[t] = prev.inOff[t+1] - prev.inOff[t]
	}
	for v := 0; v < n; v++ {
		if !isDirty(v) {
			continue
		}
		var pt []int32
		var pw []float64
		if v < prevN {
			pt, pw = prev.Out(v)
		}
		nt, nw := to[v], w[v]
		i, j := 0, 0
		for i < len(pt) || j < len(nt) {
			switch {
			case j >= len(nt) || (i < len(pt) && pt[i] < nt[j]):
				inDeg[pt[i]]--
				structural[pt[i]] = true
				i++
			case i >= len(pt) || pt[i] > nt[j]:
				inDeg[nt[j]]++
				structural[nt[j]] = true
				j++
			default:
				if pw[i] != nw[j] {
					patches = append(patches, wpatch{t: nt[j], from: int32(v), w: nw[j]})
				}
				i++
				j++
			}
		}
	}
	for t := 0; t < n; t++ {
		g.inOff[t+1] = g.inOff[t] + inDeg[t]
	}

	// Gather the changed rows' edges into structural targets as a
	// per-target additions index, filled in ascending source order so each
	// list stays source-sorted.
	addOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		if !isDirty(v) {
			continue
		}
		for _, t := range to[v] {
			if structural[t] {
				addOff[t+1]++
			}
		}
	}
	for t := 0; t < n; t++ {
		addOff[t+1] += addOff[t]
	}
	addFrom := make([]int32, addOff[n])
	addW := make([]float64, addOff[n])
	next := make([]int32, n)
	copy(next, addOff[:n])
	for v := 0; v < n; v++ {
		if !isDirty(v) {
			continue
		}
		for i, t := range to[v] {
			if !structural[t] {
				continue
			}
			p := next[t]
			addFrom[p] = int32(v)
			addW[p] = w[v][i]
			next[t]++
		}
	}

	// Non-structural targets bulk-copy in maximal runs; structural targets
	// merge prev's in-list (minus changed sources — their surviving edges
	// arrive through the additions index) with the additions.
	for t := 0; t < n; {
		if t < prevN && !structural[t] {
			run := t
			for run < prevN && !structural[run] {
				run++
			}
			lo, hi := prev.inOff[t], prev.inOff[run]
			dpos := g.inOff[t]
			copy(g.inFrom[dpos:], prev.inFrom[lo:hi])
			copy(g.inW[dpos:], prev.inW[lo:hi])
			t = run
			continue
		}
		dpos := g.inOff[t]
		var pi, phi int32
		if t < prevN {
			pi, phi = prev.inOff[t], prev.inOff[t+1]
		}
		ai, aend := addOff[t], addOff[t+1]
		for {
			for pi < phi && isDirty(int(prev.inFrom[pi])) {
				pi++
			}
			if pi >= phi {
				copy(g.inFrom[dpos:], addFrom[ai:aend])
				copy(g.inW[dpos:], addW[ai:aend])
				break
			}
			if ai < aend && addFrom[ai] < prev.inFrom[pi] {
				g.inFrom[dpos] = addFrom[ai]
				g.inW[dpos] = addW[ai]
				dpos++
				ai++
				continue
			}
			g.inFrom[dpos] = prev.inFrom[pi]
			g.inW[dpos] = prev.inW[pi]
			dpos++
			pi++
		}
		t++
	}

	// Weight-only changes: the copied in-lists hold prev's weights at the
	// right positions; overwrite each patched edge by binary search for
	// its source. (Patches whose target turned structural are redundant —
	// the merge already wrote the new weight — but rewriting it is
	// harmless and cheaper than filtering.)
	for _, p := range patches {
		lo, hi := g.inOff[p.t], g.inOff[p.t+1]
		k := int32(sort.Search(int(hi-lo), func(k int) bool { return g.inFrom[lo+int32(k)] >= p.from }))
		g.inW[lo+k] = p.w
	}
	return g, nil
}
