// Package tables renders aligned plain-text tables in the style of the
// paper's result tables. It is used by the experiment runners and CLIs to
// print Tables 2-4 and the figure summaries.
package tables

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// displayWidth approximates the rendered width of a cell: runes minus
// combining marks (so "T̂" counts as one column, not two bytes).
func displayWidth(s string) int {
	w := 0
	for _, r := range s {
		if !unicode.Is(unicode.Mn, r) {
			w++
		}
	}
	return w
}

// Align controls the alignment of a column.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table is a simple text table with a header row and an optional title.
// The zero value is not usable; create one with New.
type Table struct {
	title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// New creates a table with the given column headers. Columns default to
// left alignment.
func New(headers ...string) *Table {
	t := &Table{headers: headers, aligns: make([]Align, len(headers))}
	return t
}

// Title sets a title printed above the table and returns the table.
func (t *Table) Title(title string) *Table {
	t.title = title
	return t
}

// AlignRight marks the given column indices as right-aligned (useful for
// numbers) and returns the table. Out-of-range indices are ignored.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		if c >= 0 && c < len(t.aligns) {
			t.aligns[c] = Right
		}
	}
	return t
}

// AddRow appends a row. Each cell is formatted with the default %v verb;
// float64 cells are formatted with 3 decimal places and float32 likewise.
// Rows shorter than the header are padded with empty cells; longer rows are
// truncated to the header width.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = formatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddSeparator appends a horizontal rule row.
func (t *Table) AddSeparator() *Table {
	t.rows = append(t.rows, nil)
	return t
}

// NumRows returns the number of data rows added (separators included).
func (t *Table) NumRows() int { return len(t.rows) }

func formatCell(v any) string {
	switch x := v.(type) {
	case float64:
		return fmt.Sprintf("%.3f", x)
	case float32:
		return fmt.Sprintf("%.3f", x)
	case string:
		return x
	default:
		return fmt.Sprint(v)
	}
}

// Render writes the table to w. It returns the first write error
// encountered, if any.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	rule := t.ruleLine(widths)
	sb.WriteString(rule)
	t.writeRow(&sb, t.headers, widths)
	sb.WriteString(rule)
	for _, row := range t.rows {
		if row == nil {
			sb.WriteString(rule)
			continue
		}
		t.writeRow(&sb, row, widths)
	}
	sb.WriteString(rule)
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb) // strings.Builder never errors
	return sb.String()
}

func (t *Table) ruleLine(widths []int) string {
	var sb strings.Builder
	sb.WriteByte('+')
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteByte('+')
	}
	sb.WriteByte('\n')
	return sb.String()
}

func (t *Table) writeRow(sb *strings.Builder, cells []string, widths []int) {
	sb.WriteByte('|')
	for i, w := range widths {
		c := ""
		if i < len(cells) {
			c = cells[i]
		}
		pad := w - displayWidth(c)
		if pad < 0 {
			pad = 0
		}
		sb.WriteByte(' ')
		if t.aligns[i] == Right {
			sb.WriteString(strings.Repeat(" ", pad))
			sb.WriteString(c)
		} else {
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		sb.WriteString(" |")
	}
	sb.WriteByte('\n')
}

// Percent formats a fraction as a percentage with one decimal, e.g. 0.984
// renders as "98.4%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// CountPct formats "count (pct%)" as the paper's tables do, e.g.
// "22(100%)".
func CountPct(count, total int) string {
	if total == 0 {
		return fmt.Sprintf("%d(-)", count)
	}
	return fmt.Sprintf("%d(%.1f%%)", count, 100*float64(count)/float64(total))
}
