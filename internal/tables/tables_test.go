package tables

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tbl := New("Genre", "Raters").AlignRight(1)
	tbl.AddRow("Comedies", 14406)
	tbl.AddRow("Dramas", 18879)
	got := tbl.String()
	if !strings.Contains(got, "| Genre") {
		t.Errorf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "Comedies") || !strings.Contains(got, "14406") {
		t.Errorf("missing row content:\n%s", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width {
			t.Errorf("line %d has width %d, want %d:\n%s", i, len(l), width, got)
		}
	}
}

func TestRenderTitleAndSeparator(t *testing.T) {
	tbl := New("A").Title("THE TITLE")
	tbl.AddRow("x").AddSeparator().AddRow("y")
	got := tbl.String()
	if !strings.HasPrefix(got, "THE TITLE\n") {
		t.Errorf("title missing:\n%s", got)
	}
	// header rule + after-header rule + separator + closing rule = 4 rules
	if n := strings.Count(got, "+---"); n != 4 {
		t.Errorf("rule count = %d, want 4:\n%s", n, got)
	}
}

func TestAddRowPadTruncate(t *testing.T) {
	tbl := New("A", "B")
	tbl.AddRow("only")
	tbl.AddRow("x", "y", "overflow")
	got := tbl.String()
	if strings.Contains(got, "overflow") {
		t.Errorf("extra cell not truncated:\n%s", got)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
}

func TestFloatFormatting(t *testing.T) {
	tbl := New("V")
	tbl.AddRow(0.857)
	tbl.AddRow(float32(0.25))
	got := tbl.String()
	if !strings.Contains(got, "0.857") || !strings.Contains(got, "0.250") {
		t.Errorf("float formatting wrong:\n%s", got)
	}
}

func TestRightAlignment(t *testing.T) {
	tbl := New("N").AlignRight(0)
	tbl.AddRow(5)
	tbl.AddRow(12345)
	got := tbl.String()
	if !strings.Contains(got, "|     5 |") {
		t.Errorf("right alignment wrong:\n%s", got)
	}
}

func TestAlignRightIgnoresOutOfRange(t *testing.T) {
	tbl := New("A").AlignRight(-1, 5) // must not panic
	tbl.AddRow("v")
	_ = tbl.String()
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestRenderPropagatesWriteError(t *testing.T) {
	tbl := New("A")
	tbl.AddRow("x")
	if err := tbl.Render(failWriter{}); err == nil {
		t.Error("expected write error")
	}
}

func TestPercentAndCountPct(t *testing.T) {
	if got := Percent(0.984); got != "98.4%" {
		t.Errorf("Percent = %q, want 98.4%%", got)
	}
	if got := CountPct(22, 22); got != "22(100.0%)" {
		t.Errorf("CountPct = %q", got)
	}
	if got := CountPct(0, 0); got != "0(-)" {
		t.Errorf("CountPct zero total = %q", got)
	}
	if got := CountPct(1, 3); got != "1(33.3%)" {
		t.Errorf("CountPct = %q", got)
	}
}
