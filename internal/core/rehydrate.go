package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"weboftrust/internal/mat"
	"weboftrust/internal/riggs"
)

// Fingerprint returns a stable hash of every configuration knob that
// affects the derived model's values: the Riggs fixed-point parameters,
// the reputation discount and the affinity mode. Workers is deliberately
// excluded — the pipeline is bitwise-identical at any worker count, so a
// checkpoint written under one parallelism setting restores under any
// other. The web binarize policy (Config.Web) is excluded for the same
// reason checkpoints stay portable across it: none of the persisted
// artifacts depend on it, and the graph is rebuilt deterministically
// under the restoring side's policy. Checkpoints record the fingerprint
// of the config they were derived with, and a restore under a different
// fingerprint is rejected as stale: the persisted artifacts would not
// match what Derive produces.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(1) // fingerprint schema version
	word(uint64(c.Riggs.MaxIter))
	word(math.Float64bits(c.Riggs.Tol))
	word(boolWord(c.Riggs.DiscountExperience))
	word(math.Float64bits(c.Riggs.UnratedQuality))
	word(boolWord(c.Reputation.DiscountExperience))
	word(uint64(c.AffinityMode))
	return h.Sum64()
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RehydrateArtifacts reassembles pipeline Artifacts from their persisted
// parts: the per-category Riggs results, the expertise matrix E and the
// affinity matrix A. The DerivedTrust index (row sums, expert bitsets,
// packed expert lists and score columns) is not persisted at all — it is
// rebuilt here from A and E with NewDerivedTrustWorkers, which is
// bitwise-deterministic at any worker count, so a rehydrated model serves
// exactly the values a fresh Derive over the same dataset would. Each
// Riggs result is reindexed (its lookup maps are derived state that does
// not survive serialisation). The web-of-trust graph — equally derived,
// equally deterministic — is deliberately NOT built here: restore is the
// time-to-serving path, and the facade rebuilds the graph lazily on
// first use (first graph query or first incremental update) instead,
// keeping warm boot O(load + index rebuild).
//
// The inputs are validated against each other: one result per E/A column,
// each result labelled with its own index, and matching E/A shapes (the
// shape check itself lives in the DerivedTrust constructor).
func RehydrateArtifacts(results []*riggs.CategoryResult, expertise, affinity *mat.Dense, workers int) (*Artifacts, error) {
	if expertise == nil || affinity == nil {
		return nil, fmt.Errorf("core: rehydrate: nil matrices")
	}
	if err := validateRiggsResults(results, expertise.Cols()); err != nil {
		return nil, fmt.Errorf("core: rehydrate: %w", err)
	}
	dt, err := NewDerivedTrustWorkers(affinity, expertise, workers)
	if err != nil {
		return nil, fmt.Errorf("core: rehydrate: %w", err)
	}
	return &Artifacts{
		RiggsResults: results,
		Expertise:    expertise,
		Affinity:     affinity,
		Trust:        dt,
	}, nil
}

// validateRiggsResults checks decoded per-category Riggs results against
// the expertise matrix they must pair with — one result per column, each
// labelled with its own index, parallel slices consistent — and reindexes
// each (the lookup maps are derived state that does not survive
// serialisation). Shared by the unsharded and sharded rehydrate paths.
func validateRiggsResults(results []*riggs.CategoryResult, numCategories int) error {
	if len(results) != numCategories {
		return fmt.Errorf("%d riggs results for %d expertise columns", len(results), numCategories)
	}
	for i, cr := range results {
		if cr == nil {
			return fmt.Errorf("missing riggs result %d", i)
		}
		if int(cr.Category) != i {
			return fmt.Errorf("riggs result %d labelled category %d", i, cr.Category)
		}
		if len(cr.Quality) != len(cr.Reviews) ||
			len(cr.RaterRep) != len(cr.Raters) || len(cr.RaterCount) != len(cr.Raters) {
			return fmt.Errorf("riggs result %d has mismatched parallel slices", i)
		}
		cr.Reindex()
	}
	return nil
}
