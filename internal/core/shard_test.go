package core

// Tests for the shard-by-source retention transform: every shard of an
// N-way partition must answer for the sources it owns bitwise-identically
// to an unsharded model — after a cold Run and after incremental Updates
// — while retaining dense rows only for those sources. This is the
// property the cluster's one-endpoint illusion rests on.

import (
	"bytes"
	"testing"

	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
	"weboftrust/internal/store"
)

// assertShardMatches checks one shard's artifacts against the unsharded
// reference: replicated state identical, owned dense rows bitwise equal,
// unowned web rows still served (from the graph) with identical content.
func assertShardMatches(t *testing.T, sh, ref *Artifacts, spec shard.Spec) {
	t.Helper()
	numU := ref.Trust.NumUsers()
	if got := sh.Trust.NumUsers(); got != numU {
		t.Fatalf("shard %v: NumUsers %d, want %d", spec, got, numU)
	}
	if got, want := sh.Trust.OwnedUsers(), spec.CountOwned(numU); got != want {
		t.Fatalf("shard %v: OwnedUsers %d, want %d", spec, got, want)
	}
	if sh.Affinity.Rows() != sh.Trust.OwnedUsers() {
		t.Fatalf("shard %v: affinity has %d rows, owned %d", spec, sh.Affinity.Rows(), sh.Trust.OwnedUsers())
	}
	// Replicated artifacts are the complete ones.
	if !sh.Expertise.Equal(ref.Expertise, 0) {
		t.Fatalf("shard %v: expertise differs from unsharded", spec)
	}
	if len(sh.RiggsResults) != len(ref.RiggsResults) {
		t.Fatalf("shard %v: %d riggs results, want %d", spec, len(sh.RiggsResults), len(ref.RiggsResults))
	}
	refG, shG := ref.Web.Graph(), sh.Web.Graph()
	if shG.NumEdges() != refG.NumEdges() {
		t.Fatalf("shard %v: graph has %d edges, want %d", spec, shG.NumEdges(), refG.NumEdges())
	}
	for u := 0; u < numU; u++ {
		rt, rw := refG.Out(u)
		st, sw := shG.Out(u)
		if !equalRows(rt, rw, st, sw) {
			t.Fatalf("shard %v: graph row %d differs", spec, u)
		}
	}
	for u := 0; u < numU; u++ {
		if sh.Web.Generosity(ratings.UserID(u)) != ref.Web.Generosity(ratings.UserID(u)) {
			t.Fatalf("shard %v: generosity[%d] differs", spec, u)
		}
	}

	for u := 0; u < numU; u++ {
		uid := ratings.UserID(u)
		owned := spec.Owns(u)
		if got := sh.Trust.Owns(uid); got != owned {
			t.Fatalf("shard %v: Owns(%d) = %v, want %v", spec, u, got, owned)
		}
		// The web row is readable regardless of ownership (unowned rows
		// come from the replicated graph) and identical either way.
		rr, sr := ref.Web.Row(uid), sh.Web.Row(uid)
		if !equalRows(rr.To, rr.W, sr.To, sr.W) {
			t.Fatalf("shard %v: web row %d differs (owned=%v)", spec, u, owned)
		}
		if !owned {
			continue
		}
		// Owned dense state is bitwise the unsharded model's.
		refRow := ref.Trust.AffinityRow(uid)
		shRow := sh.Trust.AffinityRow(uid)
		for c := range refRow {
			if shRow[c] != refRow[c] {
				t.Fatalf("shard %v: A[%d][%d] = %v, want %v", spec, u, c, shRow[c], refRow[c])
			}
		}
		for j := 0; j < numU; j++ {
			jid := ratings.UserID(j)
			if got, want := sh.Trust.Value(uid, jid), ref.Trust.Value(uid, jid); got != want {
				t.Fatalf("shard %v: T̂[%d][%d] = %v, want %v", spec, u, j, got, want)
			}
		}
		if got, want := sh.Trust.RowSupport(uid), ref.Trust.RowSupport(uid); got != want {
			t.Fatalf("shard %v: RowSupport(%d) = %d, want %d", spec, u, got, want)
		}
	}
}

func equalRows(at []int32, aw []float64, bt []int32, bw []float64) bool {
	if len(at) != len(bt) || len(aw) != len(bw) {
		return false
	}
	for i := range at {
		if at[i] != bt[i] || aw[i] != bw[i] {
			return false
		}
	}
	return true
}

// TestShardEquivalence pins the tentpole property: for N ∈ {1, 2, 3} and
// serial vs parallel builds, every shard serves its owned sources exactly
// as the unsharded model does — from the cold Run and again after an
// incremental Update folds in new events — and the shards' owned sets
// partition the community.
func TestShardEquivalence(t *testing.T) {
	raw := logCommunity(t)
	_, d0, off := replayAll(t, raw)

	// Grow the log once so every variant updates over the same tail.
	var buf bytes.Buffer
	buf.Write(raw)
	lw := store.NewLogWriter(&buf)
	for _, ev := range growthEvents(d0, 11, true) {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	grown := buf.Bytes()

	refCfg := DefaultConfig()
	ref0, err := refCfg.Run(d0)
	if err != nil {
		t.Fatal(err)
	}
	_, fullD, _ := replayAll(t, grown)
	ref1, err := refCfg.Update(ref0, d0, fullD)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 0} {
		for _, count := range []int{1, 2, 3} {
			ownedTotal := 0
			for idx := 0; idx < count; idx++ {
				spec := shard.Spec{Index: idx, Count: count}
				cfg := DefaultConfig()
				cfg.Workers = workers
				cfg.Shard = spec

				// Cold run equivalence.
				b, shD0, off0 := replayAll(t, raw)
				if off0 != off {
					t.Fatalf("replay offset %d, want %d", off0, off)
				}
				art0, err := cfg.Run(shD0)
				if err != nil {
					t.Fatalf("shard %v run: %v", spec, err)
				}
				assertShardMatches(t, art0, ref0, spec)

				// Incremental equivalence: tail-replay the growth events
				// and fold them in, exactly as a sharded tailer would.
				tail, _, err := store.ReadLogFrom(bytes.NewReader(grown), off)
				if err != nil {
					t.Fatal(err)
				}
				if err := store.Replay(tail, b); err != nil {
					t.Fatal(err)
				}
				newD := b.Snapshot()
				art1, err := cfg.Update(art0, shD0, newD)
				if err != nil {
					t.Fatalf("shard %v update: %v", spec, err)
				}
				assertShardMatches(t, art1, ref1, spec)

				if workers == 1 {
					ownedTotal += art1.Trust.OwnedUsers()
				}
			}
			// The shards partition the community: owned sets are disjoint
			// (assertShardMatches pins Owns against spec.Owns) and cover it.
			if workers == 1 && ownedTotal != fullD.NumUsers() {
				t.Fatalf("count %d: shards own %d users of %d", count, ownedTotal, fullD.NumUsers())
			}
		}
	}
}

// TestShardMemoryCompaction pins the point of the exercise: a shard's
// dense affinity matrix holds only its ~U/N owned rows, not all U.
func TestShardMemoryCompaction(t *testing.T) {
	raw := logCommunity(t)
	_, d0, _ := replayAll(t, raw)
	const count = 3
	for idx := 0; idx < count; idx++ {
		cfg := DefaultConfig()
		cfg.Shard = shard.Spec{Index: idx, Count: count}
		art, err := cfg.Run(d0)
		if err != nil {
			t.Fatal(err)
		}
		numU := d0.NumUsers()
		owned := cfg.Shard.CountOwned(numU)
		if art.Affinity.Rows() != owned {
			t.Fatalf("shard %d: %d affinity rows, want %d", idx, art.Affinity.Rows(), owned)
		}
		if owned >= numU {
			t.Fatalf("shard %d of %d owns %d of %d users — no compaction", idx, count, owned, numU)
		}
		// Unowned sources must not be silently answerable: the dense row
		// accessor panics rather than returning someone else's row.
		for u := 0; u < numU; u++ {
			if cfg.Shard.Owns(u) {
				continue
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("shard %d: AffinityRow(%d) served an unowned source", idx, u)
					}
				}()
				art.Trust.AffinityRow(ratings.UserID(u))
			}()
			break
		}
	}
}
