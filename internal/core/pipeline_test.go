package core

import (
	"testing"

	"weboftrust/internal/affinity"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
)

func TestPipelineRun(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.RiggsResults) != d.NumCategories() {
		t.Fatalf("riggs results = %d, want %d", len(art.RiggsResults), d.NumCategories())
	}
	if r, c := art.Expertise.Dims(); r != d.NumUsers() || c != d.NumCategories() {
		t.Errorf("E dims = (%d,%d)", r, c)
	}
	if r, c := art.Affinity.Dims(); r != d.NumUsers() || c != d.NumCategories() {
		t.Errorf("A dims = (%d,%d)", r, c)
	}
	// w0 wrote two well-rated movie reviews: positive movie expertise,
	// zero books expertise.
	if art.Expertise.At(0, 0) <= 0 {
		t.Error("w0 should have positive movies expertise")
	}
	if art.Expertise.At(0, 1) != 0 {
		t.Error("w0 should have zero books expertise")
	}
	// r2 rates more in movies than books: higher movie affinity.
	if art.Affinity.At(2, 0) <= art.Affinity.At(2, 1) {
		t.Error("r2 movie affinity should exceed books affinity")
	}
	// The derived trust of r2 toward the movie expert must be positive.
	if art.Trust.Value(2, 0) <= 0 {
		t.Error("T̂[r2][w0] should be positive")
	}
}

func TestPipelineBadConfigPropagates(t *testing.T) {
	d := buildCommunity(t)
	cfg := DefaultConfig()
	cfg.Riggs = riggs.Model{} // invalid
	if _, err := cfg.Run(d); err == nil {
		t.Error("expected error from invalid riggs config")
	}
	cfg = DefaultConfig()
	cfg.AffinityMode = affinity.Mode(99)
	if _, err := cfg.Run(d); err == nil {
		t.Error("expected error from invalid affinity mode")
	}
}

func TestPipelineEmptyDataset(t *testing.T) {
	d := ratings.NewBuilder().Build()
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if art.Trust.NumUsers() != 0 {
		t.Error("empty dataset should produce empty trust")
	}
	if art.Trust.TotalSupport() != 0 {
		t.Error("empty dataset support should be 0")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	d := buildCommunity(t)
	a1, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Expertise.Equal(a2.Expertise, 0) || !a1.Affinity.Equal(a2.Affinity, 0) {
		t.Error("pipeline is not deterministic")
	}
}
