package core

import (
	"fmt"

	"weboftrust/internal/graph"
	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/riggs"
	"weboftrust/internal/shard"
)

// This file implements the shard-by-source retention transform. The
// pipeline always computes the complete model — the Riggs fixed points
// and E aggregate every user's events, and the replicated CSR graph
// needs every user's selected edges — so sharding changes what Run and
// Update KEEP, not what they compute: after the full (transient) build,
// dense per-source-user state is compacted to the rows the shard owns.
// Because the retained rows are references to (or exact copies of) the
// full build's rows, a shard's answers for owned sources are bitwise
// what an unsharded process serves — the property the cluster equals one
// endpoint on, pinned by TestShardEquivalence and the router harness.

// shardRowIndex builds the user-id -> compact-row mapping for a spec:
// owned users get ascending dense indices, everyone else -1.
func shardRowIndex(spec shard.Spec, numUsers int) (rowIndex []int32, owned int) {
	rowIndex = make([]int32, numUsers)
	for u := 0; u < numUsers; u++ {
		if spec.Owns(u) {
			rowIndex[u] = int32(owned)
			owned++
		} else {
			rowIndex[u] = -1
		}
	}
	return rowIndex, owned
}

// shardArtifacts compacts freshly built full artifacts down to the dense
// state the shard retains: the affinity matrix keeps only owned rows
// (copied bitwise), the web keeps only owned edge rows (the complete
// graph already holds the rest), and everything global — Riggs results,
// E, the expert index, row sums, generosity — is shared with the full
// build unchanged.
func shardArtifacts(art *Artifacts, spec shard.Spec) *Artifacts {
	spec = spec.Canon()
	dt := art.Trust
	numU := dt.NumUsers()
	rowIndex, owned := shardRowIndex(spec, numU)
	compact := mat.NewDense(owned, dt.NumCategories())
	for u := 0; u < numU; u++ {
		if r := rowIndex[u]; r >= 0 {
			copy(compact.Row(int(r)), dt.affinity.Row(u))
		}
	}
	sdt := &DerivedTrust{
		affinity:          compact,
		expertise:         dt.expertise,
		rowSum:            dt.rowSum,
		expertsByCategory: dt.expertsByCategory,
		expertLists:       dt.expertLists,
		expertScores:      dt.expertScores,
		affinityNNZ:       dt.affinityNNZ,
		numUsers:          numU,
		spec:              spec,
		rowIndex:          rowIndex,
	}
	return &Artifacts{
		RiggsResults: art.RiggsResults,
		Expertise:    art.Expertise,
		Affinity:     compact,
		Trust:        sdt,
		Web:          art.Web.withShard(spec),
	}
}

// withShard drops the dense rows of users the shard does not own; their
// edges remain reachable through the replicated graph (see Web.rowAt).
func (w *Web) withShard(spec shard.Spec) *Web {
	rows := make([]WebRow, len(w.rows))
	for u := range w.rows {
		if spec.Owns(u) {
			rows[u] = w.rows[u]
		}
	}
	return &Web{
		policy:     w.policy,
		generosity: w.generosity,
		rows:       rows,
		g:          w.g,
		numEdges:   w.numEdges,
		spec:       spec,
		pruned:     w.pruned,
		dirty:      w.dirty,
	}
}

// NewShardedWeb reassembles a sharded web artifact from its persisted
// parts: the policy it was binarised under, the full per-user generosity
// vector, and the complete replicated adjacency (to[u] strictly
// ascending, w[u] the parallel T̂ weights). Owned users' dense rows are
// served from the rebuilt graph's packed storage — the same bytes the
// checkpoint recorded.
func NewShardedWeb(policy WebPolicy, generosity []float64, to [][]int32, wts [][]float64, spec shard.Spec) (*Web, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Canon()
	numU := len(generosity)
	g, err := graph.FromRows(numU, to, wts)
	if err != nil {
		return nil, fmt.Errorf("core: sharded web: %w", err)
	}
	rows := make([]WebRow, numU)
	for u := 0; u < numU; u++ {
		if spec.Owns(u) {
			gt, gw := g.Out(u)
			rows[u] = WebRow{To: gt, W: gw}
		}
	}
	var pruned *graph.Graph
	if policy.PruneTau > 0 {
		pruned, err = buildPruned(g, nil, nil, policy.PruneTau)
		if err != nil {
			return nil, fmt.Errorf("core: sharded web: pruned graph: %w", err)
		}
	}
	return &Web{
		policy:     policy,
		generosity: generosity,
		rows:       rows,
		g:          g,
		numEdges:   g.NumEdges(),
		spec:       spec,
		pruned:     pruned,
	}, nil
}

// RehydrateShardedArtifacts is RehydrateArtifacts for a per-shard
// checkpoint: compactA holds only the owned users' affinity rows (in
// ascending user-id order) while expertise is the complete U x C matrix,
// and the web — which cannot be rebuilt from a compact A — arrives
// already reassembled (see NewShardedWeb). Row sums and the expert index
// are rebuilt exactly as the unsharded path rebuilds them: owned row
// sums from the compact rows (bitwise copies of the full rows, so the
// sums match), the expert index from the complete E.
func RehydrateShardedArtifacts(results []*riggs.CategoryResult, expertise, compactA *mat.Dense, spec shard.Spec, web *Web, workers int) (*Artifacts, error) {
	if expertise == nil || compactA == nil || web == nil {
		return nil, fmt.Errorf("core: rehydrate sharded: nil artifacts")
	}
	spec = spec.Canon()
	if err := validateRiggsResults(results, expertise.Cols()); err != nil {
		return nil, fmt.Errorf("core: rehydrate sharded: %w", err)
	}
	numU := expertise.Rows()
	rowIndex, owned := shardRowIndex(spec, numU)
	if compactA.Rows() != owned || compactA.Cols() != expertise.Cols() {
		return nil, fmt.Errorf("core: rehydrate sharded: affinity is %dx%d, want %dx%d (shard %v of %d users)",
			compactA.Rows(), compactA.Cols(), owned, expertise.Cols(), spec, numU)
	}
	if web.NumUsers() != numU || web.ShardSpec() != spec {
		return nil, fmt.Errorf("core: rehydrate sharded: web is %d users shard %v, want %d users shard %v",
			web.NumUsers(), web.ShardSpec(), numU, spec)
	}

	dt := &DerivedTrust{
		affinity:    compactA,
		expertise:   expertise,
		rowSum:      make([]float64, numU),
		affinityNNZ: make([]int32, numU),
		numUsers:    numU,
		spec:        spec,
		rowIndex:    rowIndex,
	}
	par.Do(workers, numU, func(u int) {
		r := rowIndex[u]
		if r < 0 {
			return // unowned: no dense row, sum stays 0 and is never read
		}
		var sum float64
		var nnz int32
		for _, v := range compactA.Row(int(r)) {
			sum += v
			if v != 0 {
				nnz++
			}
		}
		dt.rowSum[u] = sum
		dt.affinityNNZ[u] = nnz
	})
	numC := expertise.Cols()
	dt.expertsByCategory = make([]*mat.Bitset, numC)
	dt.expertLists = make([][]int32, numC)
	dt.expertScores = make([][]float64, numC)
	par.Do(workers, numC, func(c int) {
		bs := mat.NewBitset(numU)
		var list []int32
		var scores []float64
		for u := 0; u < numU; u++ {
			if v := expertise.At(u, c); v > 0 {
				bs.Set(u)
				list = append(list, int32(u))
				scores = append(scores, v)
			}
		}
		dt.expertsByCategory[c] = bs
		dt.expertLists[c] = list
		dt.expertScores[c] = scores
	})
	return &Artifacts{
		RiggsResults: results,
		Expertise:    expertise,
		Affinity:     compactA,
		Trust:        dt,
		Web:          web,
	}, nil
}
