package core

import (
	"fmt"
	"slices"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// websEqual asserts two webs are bitwise identical: policy, generosity
// vector, every edge row (ids and weights) and the CSR graph shape.
func websEqual(t *testing.T, want, got *Web) {
	t.Helper()
	if want.Policy() != got.Policy() {
		t.Fatalf("policy: want %v, got %v", want.Policy(), got.Policy())
	}
	if want.NumUsers() != got.NumUsers() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape: want %d users / %d edges, got %d / %d",
			want.NumUsers(), want.NumEdges(), got.NumUsers(), got.NumEdges())
	}
	for u := 0; u < want.NumUsers(); u++ {
		uid := ratings.UserID(u)
		if want.Generosity(uid) != got.Generosity(uid) {
			t.Fatalf("generosity[%d]: want %v, got %v", u, want.Generosity(uid), got.Generosity(uid))
		}
		wTo, wW := want.Neighbors(uid)
		gTo, gW := got.Neighbors(uid)
		if len(wTo) != len(gTo) {
			t.Fatalf("row %d: want %d edges, got %d", u, len(wTo), len(gTo))
		}
		for i := range wTo {
			if wTo[i] != gTo[i] || wW[i] != gW[i] {
				t.Fatalf("row %d edge %d: want (%d, %v), got (%d, %v)",
					u, i, wTo[i], wW[i], gTo[i], gW[i])
			}
		}
	}
}

// sharesRow reports whether two webs share user u's row backing arrays
// (the incremental-update reuse discipline), vacuously true for empty
// rows.
func sharesRow(a, b *Web, u ratings.UserID) bool {
	ra, rb := a.Row(u), b.Row(u)
	if len(ra.To) == 0 && len(rb.To) == 0 {
		return true
	}
	return len(ra.To) == len(rb.To) && len(ra.To) > 0 && &ra.To[0] == &rb.To[0] && &ra.W[0] == &rb.W[0]
}

// TestWebMatchesBinarize pins the artifact to the paper's protocol: the
// web's edge support equals BinarizeDerived's prediction matrix, and each
// edge carries exactly the T̂ value eq. 5 produces for that cell.
func TestWebMatchesBinarize(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	web := art.Web
	if web == nil {
		t.Fatal("Run produced no web artifact")
	}
	k := Generosity(d)
	pred, err := BinarizeDerived(art.Trust, k)
	if err != nil {
		t.Fatal(err)
	}
	if web.NumEdges() != pred.NNZ() {
		t.Fatalf("web has %d edges, binarised matrix %d", web.NumEdges(), pred.NNZ())
	}
	for u := 0; u < d.NumUsers(); u++ {
		uid := ratings.UserID(u)
		if web.Generosity(uid) != k[u] {
			t.Errorf("generosity[%d] = %v, want %v", u, web.Generosity(uid), k[u])
		}
		cols, _ := pred.Row(u)
		to, w := web.Neighbors(uid)
		if len(cols) != len(to) {
			t.Fatalf("row %d: web %d edges, matrix %d", u, len(to), len(cols))
		}
		for i := range cols {
			if cols[i] != to[i] {
				t.Fatalf("row %d edge %d: web %d, matrix %d", u, i, to[i], cols[i])
			}
			if want := art.Trust.Value(uid, ratings.UserID(to[i])); w[i] != want {
				t.Fatalf("weight[%d][%d] = %v, want T̂ value %v", u, to[i], w[i], want)
			}
		}
	}
	// The CSR graph agrees with the rows it was packed from.
	g := web.Graph()
	if g.NumNodes() != d.NumUsers() || g.NumEdges() != web.NumEdges() {
		t.Fatalf("graph shape %d/%d, want %d/%d", g.NumNodes(), g.NumEdges(), d.NumUsers(), web.NumEdges())
	}
}

// TestWebThresholdPolicy pins the GlobalThreshold policy to its
// binarisation and checks policy validation.
func TestWebThresholdPolicy(t *testing.T) {
	d := buildCommunity(t)
	cfg := DefaultConfig()
	cfg.Web = WebPolicy{Policy: GlobalThreshold, Tau: 0.5}
	art, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	pred := BinarizeDerivedThreshold(art.Trust, 0.5)
	if art.Web.NumEdges() != pred.NNZ() {
		t.Fatalf("web has %d edges, threshold matrix %d", art.Web.NumEdges(), pred.NNZ())
	}
	for u := 0; u < d.NumUsers(); u++ {
		to, _ := art.Web.Neighbors(ratings.UserID(u))
		cols, _ := pred.Row(u)
		for i := range cols {
			if cols[i] != to[i] {
				t.Fatalf("row %d edge %d differs", u, i)
			}
		}
	}
	if _, err := BuildWeb(d, art.Trust, WebPolicy{Policy: BinarizePolicy(9)}, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := BuildWeb(d, art.Trust, WebPolicy{Policy: PerUserTopK, ColdGenerosity: 1.5}, 0); err == nil {
		t.Error("out-of-range cold generosity accepted")
	}
}

// TestWebColdGenerosity: users whose history cannot calibrate a k_i get
// the fallback and therefore out-edges, while calibrated users are
// unchanged.
func TestWebColdGenerosity(t *testing.T) {
	d := buildCommunity(t)
	cfg := DefaultConfig()
	art, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := BuildWeb(d, art.Trust, WebPolicy{Policy: PerUserTopK, ColdGenerosity: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := art.Web
	foundCold := false
	for u := 0; u < d.NumUsers(); u++ {
		uid := ratings.UserID(u)
		if base.Generosity(uid) > 0 {
			if cold.Generosity(uid) != base.Generosity(uid) {
				t.Fatalf("calibrated user %d generosity changed", u)
			}
			continue
		}
		foundCold = true
		if cold.Generosity(uid) != 1 {
			t.Fatalf("cold user %d generosity = %v, want fallback 1", u, cold.Generosity(uid))
		}
		if baseTo, _ := base.Neighbors(uid); len(baseTo) != 0 {
			t.Fatalf("cold user %d has edges without fallback", u)
		}
	}
	if !foundCold {
		t.Skip("community has no cold users; fixture changed")
	}
	if cold.NumEdges() <= base.NumEdges() {
		t.Errorf("fallback did not add edges: %d vs %d", cold.NumEdges(), base.NumEdges())
	}
}

// TestGraphUpdateEqualsFreshDerive is the PR's acceptance property: after
// random dataset growth, the incrementally maintained web is bitwise
// identical to a from-scratch derive at every worker-count combination,
// and every untouched user's edge row is shared with the old web by
// reference (not merely equal).
func TestGraphUpdateEqualsFreshDerive(t *testing.T) {
	property := func(seed uint64) bool {
		oldD := randomGrowableDataset(seed)
		newD, _ := growDataset(oldD, seed^0xbeef)
		for _, wOld := range []int{1, 3} {
			for _, wNew := range []int{1, 2, 0} {
				cfg := DefaultConfig()
				cfg.Workers = wOld
				oldArt, err := cfg.Run(oldD)
				if err != nil {
					t.Logf("seed %d: run: %v", seed, err)
					return false
				}
				cfg.Workers = wNew
				upd, err := cfg.Update(oldArt, oldD, newD)
				if err != nil {
					t.Logf("seed %d: update: %v", seed, err)
					return false
				}
				fresh, err := cfg.Run(newD)
				if err != nil {
					t.Logf("seed %d: fresh run: %v", seed, err)
					return false
				}
				websEqual(t, fresh.Web, upd.Web)

				// Shared-ref reuse for every untouched user: recompute the
				// dirty set the way the update did and require bitwise row
				// sharing outside it.
				touched := make([]bool, newD.NumCategories())
				for c := oldD.NumCategories(); c < newD.NumCategories(); c++ {
					touched[c] = true
				}
				for r := oldD.NumReviews(); r < newD.NumReviews(); r++ {
					touched[newD.Review(ratings.ReviewID(r)).Category] = true
				}
				for _, rt := range newD.Ratings()[oldD.NumRatings():] {
					touched[newD.Review(rt.Review).Category] = true
				}
				dirty := dirtyUsers(oldD, newD, touched, upd.Affinity)
				shared := 0
				for u := 0; u < oldD.NumUsers(); u++ {
					if dirty[u] {
						continue
					}
					if !sharesRow(oldArt.Web, upd.Web, ratings.UserID(u)) {
						t.Logf("seed %d: untouched user %d row not shared", seed, u)
						return false
					}
					if oldArt.Web.Generosity(ratings.UserID(u)) != upd.Web.Generosity(ratings.UserID(u)) {
						t.Logf("seed %d: untouched user %d generosity changed", seed, u)
						return false
					}
					shared++
				}
				_ = shared
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// buildSplitCommunity creates two disjoint sub-communities (categories
// "alpha" and "beta", three users each, activity strictly within their
// own category) and returns the dataset plus the beta reviews. Growth
// confined to alpha leaves the beta users' every web input untouched, so
// their rows must be shared by reference across an update.
func buildSplitCommunity(t *testing.T) (*ratings.Dataset, []ratings.ReviewID) {
	t.Helper()
	b := ratings.NewBuilder()
	b.AddCategory("alpha")
	b.AddCategory("beta")
	users := make([]ratings.UserID, 6)
	for i := range users {
		users[i] = b.AddUser("")
	}
	var alphaReviews, betaReviews []ratings.ReviewID
	for cat := 0; cat < 2; cat++ {
		base := cat * 3 // users 0-2 live in alpha, 3-5 in beta
		for w := 0; w < 3; w++ {
			oid, err := b.AddObject(ratings.CategoryID(cat), "")
			if err != nil {
				t.Fatal(err)
			}
			rid, err := b.AddReview(users[base+w], oid)
			if err != nil {
				t.Fatal(err)
			}
			if cat == 0 {
				alphaReviews = append(alphaReviews, rid)
			} else {
				betaReviews = append(betaReviews, rid)
			}
			for r := 0; r < 3; r++ {
				if r == w {
					continue // no self-rating
				}
				if err := b.AddRating(users[base+r], rid, ratings.QuantizeRating(float64(1+((w+r)%5))/5)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := b.AddTrust(users[base], users[base+1]); err != nil {
			t.Fatal(err)
		}
	}
	_ = alphaReviews
	return b.Build(), betaReviews
}

// growAlpha rebuilds d plus fresh alpha-only activity: a new user who
// writes and gets rated in alpha. The beta community is untouched.
func growAlpha(d *ratings.Dataset, round int) *ratings.Dataset {
	b := ratings.NewBuilderFrom(d)
	nu := b.AddUser("")
	oid, err := b.AddObject(0, "")
	if err != nil {
		panic(err)
	}
	rid, err := b.AddReview(nu, oid)
	if err != nil {
		panic(err)
	}
	if err := b.AddRating(0, rid, ratings.QuantizeRating(float64(1+round%5)/5)); err != nil {
		panic(err)
	}
	return b.Snapshot()
}

// TestWebUpdateChain folds several alpha-only growth rounds through
// Update and pins the final web against a fresh derive, asserting that
// the untouched beta users' rows are shared by reference at every round.
func TestWebUpdateChain(t *testing.T) {
	d, _ := buildSplitCommunity(t)
	cfg := DefaultConfig()
	art, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		newD := growAlpha(d, round)
		upd, err := cfg.Update(art, d, newD)
		if err != nil {
			t.Fatal(err)
		}
		for u := 3; u < 6; u++ { // beta users
			if !sharesRow(art.Web, upd.Web, ratings.UserID(u)) {
				t.Fatalf("round %d: beta user %d row not shared", round, u)
			}
		}
		d, art = newD, upd
	}
	fresh, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	websEqual(t, fresh.Web, art.Web)
	// Sanity: beta users actually have edges, so sharing is not vacuous.
	if to, _ := art.Web.Neighbors(3); len(to) == 0 {
		t.Error("beta user 3 has no edges; sharing assertion is vacuous")
	}
}

// TestBinarizeUnifiedEntry checks the policy dispatch and validation of
// the unified Binarize entry point the legacy helpers delegate to.
func TestBinarizeUnifiedEntry(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	k := Generosity(d)
	for _, workers := range []int{1, 2, 0} {
		uni, err := Binarize(art.Trust, WebPolicy{Policy: PerUserTopK}, k, workers)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := BinarizeDerived(art.Trust, k)
		if err != nil {
			t.Fatal(err)
		}
		if uni.NNZ() != legacy.NNZ() {
			t.Fatalf("workers=%d: unified %d nnz, legacy %d", workers, uni.NNZ(), legacy.NNZ())
		}
		for u := 0; u < d.NumUsers(); u++ {
			a, _ := uni.Row(u)
			b, _ := legacy.Row(u)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("workers=%d row %d: %v vs %v", workers, u, a, b)
			}
		}
	}
	if _, err := Binarize(art.Trust, WebPolicy{Policy: PerUserTopK}, nil, 0); err == nil {
		t.Error("missing generosity accepted for per-user top-k")
	}
	if _, err := Binarize(art.Trust, WebPolicy{Policy: BinarizePolicy(7)}, nil, 0); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestPolicyRowMatchesTopKOracle pins the threshold-based selection in
// policyRowInto against mat.TopK as an independent oracle: for random
// derived matrices and generosities, the selected set must be exactly
// TopK's deterministic top-take (value descending, ties toward the
// smaller index), emitted ascending with the row's own weights. This is
// the one test of the selection that does not route through the code
// under test on both sides.
func TestPolicyRowMatchesTopKOracle(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		rng := stats.NewRand(seed ^ 0x517a)
		numU := dt.NumUsers()
		sc := newSelectScratch(numU)
		oracle := make([]float64, numU)
		for i := 0; i < numU; i++ {
			k := rng.Float64()
			got := policyRowInto(dt, ratings.UserID(i), WebPolicy{Policy: PerUserTopK}, k, sc, true)

			dt.RowSparse(ratings.UserID(i), oracle)
			oracle[i] = 0
			candidates := 0
			for _, v := range oracle {
				if v > 0 {
					candidates++
				}
			}
			take := topCount(k, candidates)
			want := mat.TopK(oracle, take) // descending by value, ties by index
			wantIDs := make([]int, len(want))
			copy(wantIDs, want)
			slices.Sort(wantIDs)
			if len(got.To) != len(wantIDs) {
				t.Logf("seed %d user %d: %d selected, oracle %d", seed, i, len(got.To), len(wantIDs))
				return false
			}
			for n, j := range wantIDs {
				if int(got.To[n]) != j || got.W[n] != oracle[j] {
					t.Logf("seed %d user %d slot %d: got (%d, %v), oracle (%d, %v)",
						seed, i, n, got.To[n], got.W[n], j, oracle[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// prunedOracle filters g's rows by the percolation threshold the slow,
// obvious way: keep every edge with weight >= tau.
func prunedOracle(t *testing.T, w *Web, tau float64) ([][]int32, [][]float64) {
	t.Helper()
	g := w.Graph()
	n := g.NumNodes()
	to := make([][]int32, n)
	wts := make([][]float64, n)
	for u := 0; u < n; u++ {
		gt, gw := g.Out(u)
		for i := range gt {
			if gw[i] >= tau {
				to[u] = append(to[u], gt[i])
				wts[u] = append(wts[u], gw[i])
			}
		}
	}
	return to, wts
}

// TestPrunedGraphMatchesFilter: the percolation-pruned companion holds
// exactly the edges at or above tau, both on a fresh derive and along an
// incremental update chain (where clean users' pruned rows are reused),
// and the full graph itself is unchanged by the policy.
func TestPrunedGraphMatchesFilter(t *testing.T) {
	property := func(seed uint64) bool {
		oldD := randomGrowableDataset(seed)
		newD, _ := growDataset(oldD, seed^0xbeef)
		const tau = 0.25
		cfg := DefaultConfig()
		cfg.Web.PruneTau = tau
		plain := DefaultConfig()

		oldArt, err := cfg.Run(oldD)
		if err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		oldPlain, err := plain.Run(oldD)
		if err != nil {
			t.Logf("seed %d: plain run: %v", seed, err)
			return false
		}
		websEqual(t, oldPlain.Web, oldArt.Web.withoutPrune())
		checkPruned := func(w *Web) bool {
			pg := w.PrunedGraph()
			if pg == nil {
				t.Logf("seed %d: no pruned graph", seed)
				return false
			}
			wantTo, wantW := prunedOracle(t, w, tau)
			for u := 0; u < pg.NumNodes(); u++ {
				gt, gw := pg.Out(u)
				if len(gt) != len(wantTo[u]) {
					t.Logf("seed %d: pruned row %d has %d edges, want %d", seed, u, len(gt), len(wantTo[u]))
					return false
				}
				for i := range gt {
					if gt[i] != wantTo[u][i] || gw[i] != wantW[u][i] {
						t.Logf("seed %d: pruned row %d edge %d mismatch", seed, u, i)
						return false
					}
				}
			}
			return true
		}
		if !checkPruned(oldArt.Web) {
			return false
		}
		upd, err := cfg.Update(oldArt, oldD, newD)
		if err != nil {
			t.Logf("seed %d: update: %v", seed, err)
			return false
		}
		if !checkPruned(upd.Web) {
			return false
		}
		// The incremental pruned graph must equal a fresh derive's bitwise.
		fresh, err := cfg.Run(newD)
		if err != nil {
			t.Logf("seed %d: fresh run: %v", seed, err)
			return false
		}
		fg, ug := fresh.Web.PrunedGraph(), upd.Web.PrunedGraph()
		if fg.NumEdges() != ug.NumEdges() {
			t.Logf("seed %d: pruned edges %d vs fresh %d", seed, ug.NumEdges(), fg.NumEdges())
			return false
		}
		for u := 0; u < fg.NumNodes(); u++ {
			ft, fw := fg.Out(u)
			ut, uw := ug.Out(u)
			if len(ft) != len(ut) {
				t.Logf("seed %d: pruned row %d len mismatch", seed, u)
				return false
			}
			for i := range ft {
				if ft[i] != ut[i] || fw[i] != uw[i] {
					t.Logf("seed %d: pruned row %d edge %d mismatch vs fresh", seed, u, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// withoutPrune returns a shallow copy presenting the same web minus the
// pruned companion, so websEqual can compare policies that differ only
// in PruneTau (the full graph must not depend on it).
func (w *Web) withoutPrune() *Web {
	cp := *w
	cp.pruned = nil
	cp.policy.PruneTau = 0
	return &cp
}
