package core

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// buildCommunity creates a small community with explicit trust so the
// generosity computation has ground truth to work from:
//
//	writers: w0 (movies expert), w1 (books expert)
//	raters:  r2 rates w0 twice and w1 once, trusts w0 only
//	         r3 rates w0 once, trusts nobody
func buildCommunity(t *testing.T) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	books := b.AddCategory("books")
	w0 := b.AddUser("w0")
	w1 := b.AddUser("w1")
	r2 := b.AddUser("r2")
	r3 := b.AddUser("r3")

	var revs []ratings.ReviewID
	for _, spec := range []struct {
		writer ratings.UserID
		cat    ratings.CategoryID
	}{
		{w0, movies}, {w0, movies}, {w1, books},
	} {
		oid, err := b.AddObject(spec.cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(spec.writer, oid)
		if err != nil {
			t.Fatal(err)
		}
		revs = append(revs, rid)
	}
	for _, c := range []struct {
		rater ratings.UserID
		rev   ratings.ReviewID
		v     float64
	}{
		{r2, revs[0], 1.0}, {r2, revs[1], 0.8}, {r2, revs[2], 0.4},
		{r3, revs[0], 0.6},
	} {
		if err := b.AddRating(c.rater, c.rev, c.v); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddTrust(r2, w0); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestGenerosity(t *testing.T) {
	d := buildCommunity(t)
	k := Generosity(d)
	// r2: 2 connections (w0, w1), trusts w0 -> 0.5.
	if math.Abs(k[2]-0.5) > 1e-12 {
		t.Errorf("k[r2] = %v, want 0.5", k[2])
	}
	// r3: 1 connection, no trust -> 0.
	if k[3] != 0 {
		t.Errorf("k[r3] = %v, want 0", k[3])
	}
	// Writers have no connections (they rated nothing).
	if k[0] != 0 || k[1] != 0 {
		t.Errorf("writers should have k=0, got %v, %v", k[0], k[1])
	}
}

func TestTopCount(t *testing.T) {
	cases := []struct {
		k    float64
		n    int
		want int
	}{
		{0, 10, 0},
		{0.5, 10, 5},
		{0.5, 9, 5},   // ceil(4.5)
		{0.01, 10, 1}, // any positive k selects at least 1
		{1, 10, 10},
		{2, 10, 10}, // clamped
		{0.3, 0, 0},
		{-1, 10, 0},
		{0.2, 5, 1}, // exactly 1.0 -> 1, not 2 (epsilon guard)
	}
	for _, c := range cases {
		if got := topCount(c.k, c.n); got != c.want {
			t.Errorf("topCount(%v, %d) = %d, want %d", c.k, c.n, got, c.want)
		}
	}
}

func TestBinarizeDerivedEndToEnd(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	k := Generosity(d)
	pred, err := BinarizeDerived(art.Trust, k)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := pred.Dims(); r != 4 || c != 4 {
		t.Fatalf("pred dims = (%d,%d), want (4,4)", r, c)
	}
	// r2 has generosity 0.5; its derived candidates are the expert
	// writers. It must predict trust in w0 (movies expert, where r2 is
	// most active) rather than w1.
	if !pred.Has(2, 0) {
		t.Error("r2 should predict trust in w0")
	}
	// r3 has generosity 0 -> no predictions at all.
	if pred.RowNNZ(3) != 0 {
		t.Errorf("r3 predicted %d edges, want 0", pred.RowNNZ(3))
	}
	// Nobody predicts self-trust.
	for i := 0; i < 4; i++ {
		if pred.Has(i, i) {
			t.Errorf("self-trust predicted for user %d", i)
		}
	}
}

func TestBinarizeDerivedLengthMismatch(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BinarizeDerived(art.Trust, []float64{1}); err == nil {
		t.Error("expected error for generosity length mismatch")
	}
	if _, err := BinarizeSparse(BaselineMatrix(d), []float64{1}); err == nil {
		t.Error("expected error for generosity length mismatch")
	}
}

func TestBaselineMatrix(t *testing.T) {
	d := buildCommunity(t)
	bm := BaselineMatrix(d)
	// B[r2][w0] = (1.0 + 0.8)/2 = 0.9; B[r2][w1] = 0.4; B[r3][w0] = 0.6.
	if got := bm.At(2, 0); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("B[r2][w0] = %v, want 0.9", got)
	}
	if got := bm.At(2, 1); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("B[r2][w1] = %v, want 0.4", got)
	}
	if got := bm.At(3, 0); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("B[r3][w0] = %v, want 0.6", got)
	}
	if bm.NNZ() != 3 {
		t.Errorf("B nnz = %d, want 3", bm.NNZ())
	}
}

func TestBinarizeSparse(t *testing.T) {
	d := buildCommunity(t)
	bm := BaselineMatrix(d)
	k := Generosity(d)
	pred, err := BinarizeSparse(bm, k)
	if err != nil {
		t.Fatal(err)
	}
	// r2: 2 candidates, k=0.5 -> top 1 by value = w0 (0.9 > 0.4).
	if !pred.Has(2, 0) || pred.Has(2, 1) {
		t.Errorf("r2 baseline prediction wrong: row nnz=%d", pred.RowNNZ(2))
	}
	if pred.RowNNZ(3) != 0 {
		t.Error("r3 with k=0 should predict nothing")
	}
}

func TestBinarizeThresholdVariants(t *testing.T) {
	d := buildCommunity(t)
	art, err := DefaultConfig().Run(d)
	if err != nil {
		t.Fatal(err)
	}
	all := BinarizeDerivedThreshold(art.Trust, 0.0000001)
	some := BinarizeDerivedThreshold(art.Trust, 0.5)
	none := BinarizeDerivedThreshold(art.Trust, 1.1)
	if all.NNZ() < some.NNZ() || some.NNZ() < none.NNZ() {
		t.Errorf("threshold monotonicity violated: %d, %d, %d", all.NNZ(), some.NNZ(), none.NNZ())
	}
	if none.NNZ() != 0 {
		t.Errorf("tau > 1 should predict nothing, got %d", none.NNZ())
	}
	bm := BaselineMatrix(d)
	bt := BinarizeSparseThreshold(bm, 0.7)
	// Only r2->w0 (0.9) passes 0.7; r3->w0 is 0.6, r2->w1 is 0.4.
	if bt.NNZ() != 1 || !bt.Has(2, 0) {
		t.Errorf("baseline threshold wrong: nnz=%d", bt.NNZ())
	}
}

func TestBinarizePolicyString(t *testing.T) {
	if PerUserTopK.String() == "" || GlobalThreshold.String() == "" || BinarizePolicy(9).String() == "" {
		t.Error("policy names empty")
	}
}

// Property: for every user, the number of predicted edges is exactly
// topCount(k_i, candidates_i), predictions only land on positive-score
// candidates, and every predicted score >= every unpredicted candidate
// score (the selection is a true top-k).
func TestBinarizeDerivedSelectionQuick(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		rng := stats.NewRand(seed ^ 0xabc)
		numU := dt.NumUsers()
		k := make([]float64, numU)
		for i := range k {
			k[i] = rng.Float64()
		}
		pred, err := BinarizeDerived(dt, k)
		if err != nil {
			return false
		}
		row := make([]float64, numU)
		for i := 0; i < numU; i++ {
			dt.Row(ratings.UserID(i), row)
			row[i] = 0
			candidates := 0
			for _, v := range row {
				if v > 0 {
					candidates++
				}
			}
			want := topCount(k[i], candidates)
			if pred.RowNNZ(i) != want {
				return false
			}
			cols, _ := pred.Row(i)
			minSelected := math.Inf(1)
			selected := make(map[int32]bool, len(cols))
			for _, j := range cols {
				if row[j] <= 0 {
					return false
				}
				selected[j] = true
				if row[j] < minSelected {
					minSelected = row[j]
				}
			}
			for j, v := range row {
				if v > 0 && !selected[int32(j)] && v > minSelected {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BinarizeSparse never predicts outside the score support and
// respects topCount sizes.
func TestBinarizeSparseQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRand(seed)
		numU := 2 + rng.IntN(12)
		b := mat.NewBuilder(numU, numU)
		for n := 0; n < rng.IntN(40); n++ {
			i, j := rng.IntN(numU), rng.IntN(numU)
			if i != j {
				b.Set(i, j, 0.2+0.8*rng.Float64())
			}
		}
		scores := b.Build()
		k := make([]float64, numU)
		for i := range k {
			k[i] = rng.Float64()
		}
		pred, err := BinarizeSparse(scores, k)
		if err != nil {
			return false
		}
		for i := 0; i < numU; i++ {
			if pred.RowNNZ(i) != topCount(k[i], scores.RowNNZ(i)) {
				return false
			}
			cols, _ := pred.Row(i)
			for _, j := range cols {
				if !scores.Has(i, int(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
