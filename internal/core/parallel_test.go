package core

import (
	"fmt"
	"testing"

	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
	"weboftrust/internal/synth"
)

// synthDataset generates the shared Small synthetic community the
// parallel-equivalence tests run on: rich enough (4 categories, 300
// users, skewed activity) that scheduling differences would surface.
func synthDataset(t *testing.T) *ratings.Dataset {
	t.Helper()
	d, _, err := synth.Generate(synth.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// requireSameRiggs asserts two category results are bitwise identical.
func requireSameRiggs(t *testing.T, label string, a, b *riggs.CategoryResult) {
	t.Helper()
	if a == b {
		return
	}
	if a.Category != b.Category || a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("%s: result metadata differs", label)
	}
	if len(a.Quality) != len(b.Quality) || len(a.RaterRep) != len(b.RaterRep) {
		t.Fatalf("%s: result shapes differ", label)
	}
	for k := range a.Quality {
		if a.Reviews[k] != b.Reviews[k] || a.Quality[k] != b.Quality[k] {
			t.Fatalf("%s: quality[%d] %v != %v", label, k, a.Quality[k], b.Quality[k])
		}
	}
	for i := range a.RaterRep {
		if a.Raters[i] != b.Raters[i] || a.RaterRep[i] != b.RaterRep[i] || a.RaterCount[i] != b.RaterCount[i] {
			t.Fatalf("%s: rater %d differs", label, i)
		}
	}
}

// requireSameArtifacts asserts every artifact of b is bitwise identical to
// a: Riggs results, E, A, and every derived-trust row (via both the dense
// and sparse evaluators, which also covers rowSum and the expert lists).
func requireSameArtifacts(t *testing.T, label string, a, b *Artifacts, d *ratings.Dataset) {
	t.Helper()
	if len(a.RiggsResults) != len(b.RiggsResults) {
		t.Fatalf("%s: riggs result counts differ", label)
	}
	for c := range a.RiggsResults {
		requireSameRiggs(t, fmt.Sprintf("%s: category %d", label, c), a.RiggsResults[c], b.RiggsResults[c])
	}
	if a.Expertise.MaxAbsDiff(b.Expertise) != 0 {
		t.Fatalf("%s: expertise differs", label)
	}
	if a.Affinity.MaxAbsDiff(b.Affinity) != 0 {
		t.Fatalf("%s: affinity differs", label)
	}
	numU := d.NumUsers()
	rowA := make([]float64, numU)
	rowB := make([]float64, numU)
	for u := 0; u < numU; u += 7 {
		a.Trust.Row(ratings.UserID(u), rowA)
		b.Trust.Row(ratings.UserID(u), rowB)
		for j := range rowA {
			if rowA[j] != rowB[j] {
				t.Fatalf("%s: T̂[%d][%d] %v != %v", label, u, j, rowA[j], rowB[j])
			}
		}
		b.Trust.RowSparse(ratings.UserID(u), rowB)
		for j := range rowA {
			if rowA[j] != rowB[j] {
				t.Fatalf("%s: sparse T̂[%d][%d] %v != %v", label, u, j, rowA[j], rowB[j])
			}
		}
		if a.Trust.RowSupport(ratings.UserID(u)) != b.Trust.RowSupport(ratings.UserID(u)) {
			t.Fatalf("%s: row support differs for user %d", label, u)
		}
	}
}

// TestRunParallelEqualsSerial is the tentpole's determinism property: the
// full pipeline produces bitwise-identical artifacts at any worker count.
// Run under -race this also exercises every parallel stage for data races.
func TestRunParallelEqualsSerial(t *testing.T) {
	d := synthDataset(t)
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		cfg.Workers = workers
		parallel, err := cfg.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		requireSameArtifacts(t, fmt.Sprintf("workers=%d", workers), serial, parallel, d)
	}
}

// growFraction extends d with one new user writing a rated review in each
// of the first touchedCats categories, returning the grown dataset.
func growFraction(t *testing.T, d *ratings.Dataset, touchedCats int) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	for c := 0; c < d.NumCategories(); c++ {
		b.AddCategory(d.CategoryName(ratings.CategoryID(c)))
	}
	for u := 0; u < d.NumUsers(); u++ {
		b.AddUser(d.UserName(ratings.UserID(u)))
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if _, err := b.AddObject(obj.Category, obj.Name); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if _, err := b.AddReview(rev.Writer, rev.Object); err != nil {
			t.Fatal(err)
		}
	}
	for _, rt := range d.Ratings() {
		if err := b.AddRating(rt.Rater, rt.Review, rt.Value); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range d.TrustEdges() {
		if err := b.AddTrust(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	writer := b.AddUser("grow-writer")
	rater := b.AddUser("grow-rater")
	for c := 0; c < touchedCats; c++ {
		oid, err := b.AddObject(ratings.CategoryID(c), "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(writer, oid)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.AddRating(rater, rid, ratings.QuantizeRating(0.7)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestUpdateEquivalenceTouchedFractions asserts that the reuse-heavy
// Update matches a from-scratch Run bitwise at several touched-category
// fractions (none, one, half, all), at several worker counts, and that a
// shared Scratch chained across successive updates stays correct.
func TestUpdateEquivalenceTouchedFractions(t *testing.T) {
	oldD := synthDataset(t)
	numC := oldD.NumCategories()
	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		oldArt, err := cfg.Run(oldD)
		if err != nil {
			t.Fatal(err)
		}
		scratch := new(Scratch)
		for _, touchedCats := range []int{0, 1, numC / 2, numC} {
			newD := growFraction(t, oldD, touchedCats)
			incremental, err := cfg.UpdateScratch(oldArt, oldD, newD, scratch)
			if err != nil {
				t.Fatal(err)
			}
			full, err := cfg.Run(newD)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("workers=%d touched=%d/%d", workers, touchedCats, numC)
			requireSameArtifacts(t, label, full, incremental, newD)
			for c := 0; c < numC; c++ {
				reused := incremental.RiggsResults[c] == oldArt.RiggsResults[c]
				if c < touchedCats && reused {
					t.Errorf("%s: touched category %d not recomputed", label, c)
				}
				if c >= touchedCats && !reused {
					t.Errorf("%s: untouched category %d recomputed", label, c)
				}
			}
		}
	}
}

// TestUpdateChainWithScratch walks several successive grow+update steps
// through one model chain sharing one Scratch, comparing against full
// recomputation at each step — the tailer's steady-state shape.
func TestUpdateChainWithScratch(t *testing.T) {
	d := synthDataset(t)
	cfg := DefaultConfig()
	art, err := cfg.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	scratch := new(Scratch)
	for step, touched := range []int{1, 2, 1, 3} {
		newD := growFraction(t, d, touched)
		next, err := cfg.UpdateScratch(art, d, newD, scratch)
		if err != nil {
			t.Fatal(err)
		}
		full, err := cfg.Run(newD)
		if err != nil {
			t.Fatal(err)
		}
		requireSameArtifacts(t, fmt.Sprintf("step %d", step), full, next, newD)
		d, art = newD, next
	}
}
