// Package core implements the paper's primary contribution: deriving a
// dense, continuous web of trust from review-rating data (Step 3, eq. 5),
// together with the evaluation constructs the paper builds around it — the
// per-user generosity used to binarise the continuous matrix, the direct-
// connection baseline B, and the Pipeline that orchestrates Steps 1-3.
//
// The degree of trust user i holds for user j is the affinity-weighted
// average of j's per-category expertise:
//
//	T̂_ij = Σ_c A_ic·E_jc / Σ_c A_ic
//
// T̂ is dense (U x U) and is therefore never materialised: DerivedTrust
// computes rows on demand in O(U·C), which is what every consumer
// (binarisation, evaluation, top-k queries) needs anyway.
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"

	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
)

// ErrShape reports mismatched matrix dimensions between A and E.
var ErrShape = errors.New("core: affinity/expertise shape mismatch")

// DerivedTrust is the derived trust matrix T̂ in functional form: it holds
// the affinity matrix A and expertise matrix E and evaluates eq. 5 on
// demand. It is immutable and safe for concurrent use.
//
// A sharded instance (see Config.Shard) retains dense affinity rows only
// for the users its shard owns: the affinity matrix is compacted to the
// owned rows and rowIndex maps user ids onto it. Everything a row
// evaluation needs about TARGETS — the expertise matrix and the expert
// index — stays complete, so a sharded model answers any query whose
// SOURCE it owns, bitwise-identically to an unsharded model, and panics
// on sources it does not own (serving layers guard ownership first).
type DerivedTrust struct {
	affinity  *mat.Dense // owned-users x C (U x C when unsharded)
	expertise *mat.Dense // U x C
	rowSum    []float64  // Σ_c A_ic per user

	// expertsByCategory[c] marks users with E_jc > 0; used to count row
	// support without scanning all U·C products.
	expertsByCategory []*mat.Bitset
	// expertLists[c] holds the same sets as ascending id slices, for the
	// sparse row evaluation path (RowSparse).
	expertLists [][]int32
	// expertScores[c] is the CSC-style score column packed parallel to
	// expertLists[c]: expertScores[c][i] == E[expertLists[c][i]][c]. The
	// sparse paths stream these two contiguous slices per category
	// instead of gathering E.At(j, c) with a C-element stride, and Value
	// binary-searches a list for single-cell queries.
	expertScores [][]float64
	// affinityNNZ[u] counts user u's non-zero affinities, so Value can
	// decide between the dense dot and the indexed path without
	// re-scanning A's row.
	affinityNNZ []int32

	// numUsers is U — explicit because a sharded affinity matrix has
	// fewer rows than the community has users.
	numUsers int
	// spec is the shard this index serves sources for; the zero value
	// (unsharded) owns everyone.
	spec shard.Spec
	// rowIndex maps user id -> compacted affinity row, -1 for users this
	// shard does not own. nil when unsharded (identity mapping).
	rowIndex []int32
}

// NewDerivedTrust builds the derived trust matrix from the affinity matrix
// A and expertise matrix E, both U x C, fanning the per-user and
// per-category index construction out to one worker per available CPU.
func NewDerivedTrust(affinity, expertise *mat.Dense) (*DerivedTrust, error) {
	return NewDerivedTrustWorkers(affinity, expertise, 0)
}

// NewDerivedTrustWorkers is NewDerivedTrust with an explicit worker count
// (<= 0 means one per available CPU). Row sums shard by user and expert
// sets by category — every slot has exactly one writer — so the result is
// identical at any worker count.
func NewDerivedTrustWorkers(affinity, expertise *mat.Dense, workers int) (*DerivedTrust, error) {
	return newDerivedTrust(affinity, expertise, workers, nil, nil)
}

// newDerivedTrust builds the derived structures. When old and touched are
// given (the incremental-update path), the expert set of every untouched
// category is taken from old instead of scanning its E column: the column
// was copied verbatim and rows past old's user count are zero, so the set
// — and the packed score column beside it — is unchanged. Expert lists
// and score columns are shared with old outright (both sides are
// immutable); bitsets are shared too when the user count is unchanged, and
// rebuilt from the (typically short) expert list when it grew.
func newDerivedTrust(affinity, expertise *mat.Dense, workers int, old *DerivedTrust, touched []bool) (*DerivedTrust, error) {
	au, ac := affinity.Dims()
	eu, ec := expertise.Dims()
	if au != eu || ac != ec {
		return nil, fmt.Errorf("%w: A is %dx%d, E is %dx%d", ErrShape, au, ac, eu, ec)
	}
	dt := &DerivedTrust{
		affinity:    affinity,
		expertise:   expertise,
		rowSum:      make([]float64, au),
		affinityNNZ: make([]int32, au),
		numUsers:    au,
	}
	par.Do(workers, au, func(u int) {
		var sum float64
		var nnz int32
		for _, v := range affinity.Row(u) {
			sum += v
			if v != 0 {
				nnz++
			}
		}
		dt.rowSum[u] = sum
		dt.affinityNNZ[u] = nnz
	})
	dt.expertsByCategory = make([]*mat.Bitset, ac)
	dt.expertLists = make([][]int32, ac)
	dt.expertScores = make([][]float64, ac)
	par.Do(workers, ac, func(c int) {
		if old != nil && c < len(touched) && !touched[c] && c < old.NumCategories() {
			list := old.expertLists[c]
			dt.expertLists[c] = list
			dt.expertScores[c] = old.expertScores[c]
			if old.NumUsers() == au {
				dt.expertsByCategory[c] = old.expertsByCategory[c]
			} else {
				bs := mat.NewBitset(au)
				for _, u := range list {
					bs.Set(int(u))
				}
				dt.expertsByCategory[c] = bs
			}
			return
		}
		bs := mat.NewBitset(au)
		var list []int32
		var scores []float64
		for u := 0; u < au; u++ {
			if v := expertise.At(u, c); v > 0 {
				bs.Set(u)
				list = append(list, int32(u))
				scores = append(scores, v)
			}
		}
		dt.expertsByCategory[c] = bs
		dt.expertLists[c] = list
		dt.expertScores[c] = scores
	})
	return dt, nil
}

// NumUsers returns U.
func (dt *DerivedTrust) NumUsers() int { return dt.numUsers }

// NumCategories returns C.
func (dt *DerivedTrust) NumCategories() int { return dt.expertise.Cols() }

// Affinity returns the A matrix (shared; do not modify). On a sharded
// index the matrix holds only the owned users' rows, in ascending user-id
// order; AffinityRow maps a user id onto it.
func (dt *DerivedTrust) Affinity() *mat.Dense { return dt.affinity }

// ShardSpec returns the shard this index retains dense rows for; the
// unsharded spelling (0/1) means every user is owned.
func (dt *DerivedTrust) ShardSpec() shard.Spec { return dt.spec.Canon() }

// Owns reports whether this index holds user u's dense state — whether u
// is a source this model can answer for.
func (dt *DerivedTrust) Owns(u ratings.UserID) bool {
	return dt.rowIndex == nil || dt.rowIndex[u] >= 0
}

// OwnedUsers returns how many users' dense rows this index retains (U
// when unsharded) — the per-shard memory the partitioning buys back.
func (dt *DerivedTrust) OwnedUsers() int { return dt.affinity.Rows() }

// AffinityRow returns user u's affinity row (shared; do not modify). It
// panics when a sharded index does not own u.
func (dt *DerivedTrust) AffinityRow(u ratings.UserID) []float64 {
	return dt.affinityRow(int(u))
}

// affinityRow resolves user i's dense affinity row through the shard
// compaction; every per-source evaluation path reads A through it.
func (dt *DerivedTrust) affinityRow(i int) []float64 {
	if dt.rowIndex == nil {
		return dt.affinity.Row(i)
	}
	r := dt.rowIndex[i]
	if r < 0 {
		panic(fmt.Sprintf("core: user %d is not owned by shard %v", i, dt.spec))
	}
	return dt.affinity.Row(int(r))
}

// Expertise returns the E matrix (shared; do not modify).
func (dt *DerivedTrust) Expertise() *mat.Dense { return dt.expertise }

// Value returns T̂_ij, the degree of trust user i holds for user j
// (eq. 5). It is 0 when i has no category affinity or no overlap exists
// between i's interests and j's expertise. Self-trust T̂_ii is computed
// like any other cell; callers that need to exclude it do so themselves.
//
// When i's affinity is narrow relative to the category count, the cell is
// evaluated through the expert-score index (one binary search per
// interest) instead of the dense C-element dot; both paths add the same
// non-zero products in the same ascending-category order, so the result
// is identical either way.
func (dt *DerivedTrust) Value(i, j ratings.UserID) float64 {
	sum := dt.rowSum[i]
	if sum == 0 {
		return 0
	}
	// A binary search costs ~log2(U) branchy probes against one
	// contiguous multiply-add per category for the dense dot.
	if int(dt.affinityNNZ[i])*(bits.Len(uint(dt.NumUsers()))+1) < dt.NumCategories() {
		return dt.valueIndexed(i, j) / sum
	}
	return mat.Dot(dt.affinityRow(int(i)), dt.expertise.Row(int(j))) / sum
}

// valueIndexed evaluates the eq. 5 numerator for cell (i, j) through the
// expert-score index: for each category i has affinity for, binary-search
// j in the (ascending) expert list and, when present, add the packed
// score. Products skipped relative to the dense dot are exactly the zero
// ones, and all summands here are non-negative, so the partial sums are
// bit-for-bit the same as mat.Dot's.
func (dt *DerivedTrust) valueIndexed(i, j ratings.UserID) float64 {
	var acc float64
	target := int32(j)
	for c, wc := range dt.affinityRow(int(i)) {
		if wc == 0 {
			continue
		}
		list := dt.expertLists[c]
		if pos, ok := slices.BinarySearch(list, target); ok {
			acc += wc * dt.expertScores[c][pos]
		}
	}
	return acc
}

// Row fills dst (length U) with row i of T̂ and returns it. If dst is nil
// a new slice is allocated.
func (dt *DerivedTrust) Row(i ratings.UserID, dst []float64) []float64 {
	numU := dt.NumUsers()
	if dst == nil {
		dst = make([]float64, numU)
	} else if len(dst) != numU {
		panic(fmt.Sprintf("core: Row dst length %d, want %d", len(dst), numU))
	}
	sum := dt.rowSum[i]
	if sum == 0 {
		for k := range dst {
			dst[k] = 0
		}
		return dst
	}
	w := dt.affinityRow(int(i))
	inv := 1 / sum
	for j := 0; j < numU; j++ {
		dst[j] = mat.Dot(w, dt.expertise.Row(j)) * inv
	}
	return dst
}

// RowSparse fills dst (length U) with row i of T̂ like Row, but iterates
// only the experts of the categories user i has affinity for, instead of
// all U·C products. When interests are narrow and expertise is sparse this
// is much cheaper; the result is bitwise identical to Row up to float
// summation order (each (j, c) product is added exactly once, in ascending
// category order, matching Row's inner loop order for the touched cells).
func (dt *DerivedTrust) RowSparse(i ratings.UserID, dst []float64) []float64 {
	numU := dt.NumUsers()
	if dst == nil {
		dst = make([]float64, numU)
	} else if len(dst) != numU {
		panic(fmt.Sprintf("core: RowSparse dst length %d, want %d", len(dst), numU))
	}
	for k := range dst {
		dst[k] = 0
	}
	sum := dt.rowSum[i]
	if sum == 0 {
		return dst
	}
	w := dt.affinityRow(int(i))
	for c, wc := range w {
		if wc == 0 {
			continue
		}
		// Stream the packed (id, score) columns: two contiguous slices
		// per category instead of a C-stride gather through E.
		scores := dt.expertScores[c]
		for idx, j := range dt.expertLists[c] {
			dst[j] += wc * scores[idx]
		}
	}
	inv := 1 / sum
	for k := range dst {
		dst[k] *= inv
	}
	return dst
}

// sparseCost estimates the number of multiply-adds RowSparse performs for
// source i: the total expert-list length over the categories i has
// affinity for, plus the O(U) clear and scale passes.
func (dt *DerivedTrust) sparseCost(i ratings.UserID) int {
	cost := 2 * dt.NumUsers()
	for c, wc := range dt.affinityRow(int(i)) {
		if wc != 0 {
			cost += len(dt.expertLists[c])
		}
	}
	return cost
}

// RowAuto fills dst (length U) with row i of T̂, routing to RowSparse when
// user i's affinity is narrow enough that walking only the relevant expert
// lists beats the dense U·C sweep, and to Row otherwise. Both paths add
// the same products in the same order, so the result is identical either
// way; only the cost differs.
func (dt *DerivedTrust) RowAuto(i ratings.UserID, dst []float64) []float64 {
	if dt.sparseCost(i) < dt.NumUsers()*dt.NumCategories() {
		return dt.RowSparse(i, dst)
	}
	return dt.Row(i, dst)
}

// RowSupport returns the number of users j != i with T̂_ij > 0: the size
// of user i's "derived connections" set that binarisation draws from.
func (dt *DerivedTrust) RowSupport(i ratings.UserID) int {
	if dt.rowSum[i] == 0 {
		return 0
	}
	union := mat.NewBitset(dt.NumUsers())
	w := dt.affinityRow(int(i))
	for c, bs := range dt.expertsByCategory {
		if w[c] > 0 {
			bs.OrInto(union)
		}
	}
	n := union.Count()
	if union.Test(int(i)) {
		n-- // exclude self
	}
	return n
}

// TotalSupport returns Σ_i RowSupport(i): the number of non-zero
// off-diagonal cells of T̂ (the derived matrix's size in Fig. 3).
func (dt *DerivedTrust) TotalSupport() int {
	total := 0
	for i := 0; i < dt.NumUsers(); i++ {
		total += dt.RowSupport(ratings.UserID(i))
	}
	return total
}

// Ranked pairs a user with a trust score, for top-k query results.
type Ranked struct {
	User  ratings.UserID
	Score float64
}

// TopTrusted returns the k users with the highest T̂_ij for source i,
// excluding i itself and zero scores, in descending score order (ties by
// ascending user id). The row is evaluated through RowAuto, so sources
// with narrow interests pay only for the experts they can reach, and
// selection runs through the bounded heap (O(U log k), O(k) working
// memory) rather than a full-row sort-select.
func (dt *DerivedTrust) TopTrusted(i ratings.UserID, k int) []Ranked {
	row := dt.RowAuto(i, nil)
	row[i] = 0 // exclude self
	return RankRow(row, k)
}

// RankRow selects the top-k positive scores from a precomputed trust row
// (self already excluded), in descending score order with ties by
// ascending user id — the selection half of TopTrusted, split out so
// serving layers that cache ranked results can rank without recomputing
// rows. The row is only read.
func RankRow(row []float64, k int) []Ranked {
	return RankRowScratch(row, k, nil)
}

// RankRowScratch is RankRow with a caller-owned index scratch slice for
// the heap selection (see mat.TopKHeapInto): a scratch with capacity k
// makes the selection allocation-free, leaving the returned []Ranked —
// which callers typically retain — as the only allocation. The scratch's
// contents are overwritten; pass nil to allocate per call.
func RankRowScratch(row []float64, k int, scratch []int) []Ranked {
	idx := mat.TopKHeapInto(row, k, scratch)
	out := make([]Ranked, 0, len(idx))
	for _, j := range idx {
		if row[j] <= 0 {
			break // the selection is sorted descending; the rest are zeros too
		}
		out = append(out, Ranked{User: ratings.UserID(j), Score: row[j]})
	}
	return out
}
