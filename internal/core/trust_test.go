package core

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// buildAE constructs small A and E matrices directly:
//
//	3 users, 2 categories
//	A: u0 = (1, 0.5), u1 = (0, 1), u2 = (0, 0)   (u2 has no affinity)
//	E: u0 = (0, 0),   u1 = (0.8, 0.2), u2 = (0, 0.9)
func buildAE(t *testing.T) *DerivedTrust {
	t.Helper()
	a := mat.NewDense(3, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 0.5)
	a.Set(1, 1, 1)
	e := mat.NewDense(3, 2)
	e.Set(1, 0, 0.8)
	e.Set(1, 1, 0.2)
	e.Set(2, 1, 0.9)
	dt, err := NewDerivedTrust(a, e)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestValueEquation5(t *testing.T) {
	dt := buildAE(t)
	// T̂_01 = (1*0.8 + 0.5*0.2) / 1.5 = 0.9/1.5 = 0.6
	if got := dt.Value(0, 1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("T̂_01 = %v, want 0.6", got)
	}
	// T̂_02 = (0.5*0.9)/1.5 = 0.3
	if got := dt.Value(0, 2); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("T̂_02 = %v, want 0.3", got)
	}
	// T̂_12 = (1*0.9)/1 = 0.9
	if got := dt.Value(1, 2); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("T̂_12 = %v, want 0.9", got)
	}
	// No affinity -> 0 regardless of target expertise.
	if got := dt.Value(2, 1); got != 0 {
		t.Errorf("T̂_21 = %v, want 0 (no affinity)", got)
	}
	// No expertise overlap -> 0.
	if got := dt.Value(1, 0); got != 0 {
		t.Errorf("T̂_10 = %v, want 0 (target has no expertise)", got)
	}
}

func TestRowMatchesValue(t *testing.T) {
	dt := buildAE(t)
	for i := 0; i < 3; i++ {
		row := dt.Row(ratings.UserID(i), nil)
		for j := 0; j < 3; j++ {
			if math.Abs(row[j]-dt.Value(ratings.UserID(i), ratings.UserID(j))) > 1e-12 {
				t.Errorf("Row(%d)[%d] = %v != Value = %v", i, j, row[j], dt.Value(ratings.UserID(i), ratings.UserID(j)))
			}
		}
	}
	// Reuse destination.
	dst := make([]float64, 3)
	out := dt.Row(0, dst)
	if &out[0] != &dst[0] {
		t.Error("Row did not reuse dst")
	}
}

func TestRowBadDstPanics(t *testing.T) {
	dt := buildAE(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dt.Row(0, make([]float64, 2))
}

func TestNewDerivedTrustShapeMismatch(t *testing.T) {
	if _, err := NewDerivedTrust(mat.NewDense(2, 2), mat.NewDense(3, 2)); err == nil {
		t.Error("expected shape error")
	}
	if _, err := NewDerivedTrust(mat.NewDense(2, 2), mat.NewDense(2, 3)); err == nil {
		t.Error("expected shape error")
	}
}

func TestRowSupport(t *testing.T) {
	dt := buildAE(t)
	// u0 has affinity in both categories; experts: u1 (cat 0 and 1), u2
	// (cat 1). Support excludes self, so {u1, u2} -> 2.
	if got := dt.RowSupport(0); got != 2 {
		t.Errorf("RowSupport(0) = %d, want 2", got)
	}
	// u1 has affinity only in cat 1; experts there: u1 (self, excluded),
	// u2 -> 1.
	if got := dt.RowSupport(1); got != 1 {
		t.Errorf("RowSupport(1) = %d, want 1", got)
	}
	if got := dt.RowSupport(2); got != 0 {
		t.Errorf("RowSupport(2) = %d, want 0", got)
	}
	if got := dt.TotalSupport(); got != 3 {
		t.Errorf("TotalSupport = %d, want 3", got)
	}
}

func TestTopTrusted(t *testing.T) {
	dt := buildAE(t)
	top := dt.TopTrusted(0, 5)
	if len(top) != 2 {
		t.Fatalf("len = %d, want 2 (zero scores excluded)", len(top))
	}
	if top[0].User != 1 || math.Abs(top[0].Score-0.6) > 1e-12 {
		t.Errorf("top[0] = %+v, want user 1 score 0.6", top[0])
	}
	if top[1].User != 2 || math.Abs(top[1].Score-0.3) > 1e-12 {
		t.Errorf("top[1] = %+v, want user 2 score 0.3", top[1])
	}
	if got := dt.TopTrusted(2, 3); len(got) != 0 {
		t.Errorf("user with no affinity should trust nobody, got %v", got)
	}
}

func TestAccessors(t *testing.T) {
	dt := buildAE(t)
	if dt.NumUsers() != 3 || dt.NumCategories() != 2 {
		t.Error("dims wrong")
	}
	if dt.Affinity() == nil || dt.Expertise() == nil {
		t.Error("accessors returned nil")
	}
}

// randomDT builds a random derived-trust instance.
func randomDT(seed uint64) *DerivedTrust {
	rng := stats.NewRand(seed)
	numU := 2 + rng.IntN(15)
	numC := 1 + rng.IntN(5)
	a := mat.NewDense(numU, numC)
	e := mat.NewDense(numU, numC)
	for u := 0; u < numU; u++ {
		for c := 0; c < numC; c++ {
			if rng.Float64() < 0.5 {
				a.Set(u, c, rng.Float64())
			}
			if rng.Float64() < 0.5 {
				e.Set(u, c, rng.Float64())
			}
		}
	}
	dt, err := NewDerivedTrust(a, e)
	if err != nil {
		panic(err)
	}
	return dt
}

// Property (eq. 5 bounds): T̂_ij ∈ [0,1] and lies between the min and max
// expertise of j over the categories i has affinity for.
func TestValueBoundsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		numU, numC := dt.NumUsers(), dt.NumCategories()
		for i := 0; i < numU; i++ {
			for j := 0; j < numU; j++ {
				v := dt.Value(ratings.UserID(i), ratings.UserID(j))
				if v < 0 || v > 1 {
					return false
				}
				if dt.rowSum[i] == 0 {
					if v != 0 {
						return false
					}
					continue
				}
				// Weighted average bound over supported categories.
				lo, hi := math.Inf(1), math.Inf(-1)
				for c := 0; c < numC; c++ {
					if dt.affinity.At(i, c) > 0 {
						ev := dt.expertise.At(j, c)
						if ev < lo {
							lo = ev
						}
						if ev > hi {
							hi = ev
						}
					}
				}
				if v < lo-1e-9 || v > hi+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RowSparse computes the same row as Row (up to float rounding).
func TestRowSparseMatchesRowQuick(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		numU := dt.NumUsers()
		dense := make([]float64, numU)
		sparse := make([]float64, numU)
		for i := 0; i < numU; i++ {
			dt.Row(ratings.UserID(i), dense)
			dt.RowSparse(ratings.UserID(i), sparse)
			for j := range dense {
				if math.Abs(dense[j]-sparse[j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RowAuto is bitwise identical to Row regardless of which path
// the cost estimate picks — the serving layer caches RowAuto output, so
// routing must never change a score.
func TestRowAutoBitwiseIdenticalQuick(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		numU := dt.NumUsers()
		dense := make([]float64, numU)
		auto := make([]float64, numU)
		for i := 0; i < numU; i++ {
			dt.Row(ratings.UserID(i), dense)
			dt.RowAuto(ratings.UserID(i), auto)
			for j := range dense {
				if dense[j] != auto[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRowSparseEdgeCases(t *testing.T) {
	dt := buildAE(t)
	// No affinity -> zero row.
	row := dt.RowSparse(2, nil)
	for j, v := range row {
		if v != 0 {
			t.Errorf("RowSparse(no-affinity)[%d] = %v, want 0", j, v)
		}
	}
	// Reused dst must be fully overwritten.
	dst := []float64{9, 9, 9}
	dt.RowSparse(2, dst)
	for j, v := range dst {
		if v != 0 {
			t.Errorf("stale dst[%d] = %v not cleared", j, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	dt.RowSparse(0, make([]float64, 2))
}

// Property: RowSupport equals the number of positive off-diagonal entries
// of the computed row.
func TestRowSupportMatchesRowQuick(t *testing.T) {
	f := func(seed uint64) bool {
		dt := randomDT(seed)
		for i := 0; i < dt.NumUsers(); i++ {
			row := dt.Row(ratings.UserID(i), nil)
			count := 0
			for j, v := range row {
				if j != i && v > 0 {
					count++
				}
			}
			if count != dt.RowSupport(ratings.UserID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
