package core

import (
	"errors"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// growDataset rebuilds d and appends extra activity: new users, new
// reviews in a subset of categories, and new ratings. It returns the
// grown dataset and the set of touched categories.
func growDataset(d *ratings.Dataset, seed uint64) (*ratings.Dataset, map[ratings.CategoryID]bool) {
	rng := stats.NewRand(seed)
	b := ratings.NewBuilder()
	for c := 0; c < d.NumCategories(); c++ {
		b.AddCategory(d.CategoryName(ratings.CategoryID(c)))
	}
	for u := 0; u < d.NumUsers(); u++ {
		b.AddUser(d.UserName(ratings.UserID(u)))
	}
	for o := 0; o < d.NumObjects(); o++ {
		obj := d.Object(ratings.ObjectID(o))
		if _, err := b.AddObject(obj.Category, obj.Name); err != nil {
			panic(err)
		}
	}
	for r := 0; r < d.NumReviews(); r++ {
		rev := d.Review(ratings.ReviewID(r))
		if _, err := b.AddReview(rev.Writer, rev.Object); err != nil {
			panic(err)
		}
	}
	for _, rt := range d.Ratings() {
		if err := b.AddRating(rt.Rater, rt.Review, rt.Value); err != nil {
			panic(err)
		}
	}
	for _, e := range d.TrustEdges() {
		if err := b.AddTrust(e.From, e.To); err != nil {
			panic(err)
		}
	}

	touched := make(map[ratings.CategoryID]bool)
	// A new explicit trust edge from an existing user with no other new
	// activity: the only web-of-trust input that changes for them is
	// their generosity, exercising that maintenance path in isolation.
	for tries := 0; tries < 8 && d.NumUsers() >= 2; tries++ {
		from := ratings.UserID(rng.IntN(d.NumUsers()))
		to := ratings.UserID(rng.IntN(d.NumUsers()))
		if b.AddTrust(from, to) == nil {
			break
		}
	}
	// New writer and rater.
	writer := b.AddUser("new-writer")
	rater := b.AddUser("new-rater")
	// New reviews in one category; ratings on them.
	cat := ratings.CategoryID(rng.IntN(d.NumCategories()))
	touched[cat] = true
	for k := 0; k < 2; k++ {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			panic(err)
		}
		rid, err := b.AddReview(writer, oid)
		if err != nil {
			panic(err)
		}
		if err := b.AddRating(rater, rid, ratings.QuantizeRating(rng.Float64())); err != nil {
			panic(err)
		}
	}
	return b.Build(), touched
}

func TestUpdateEquivalentToFullRun(t *testing.T) {
	oldD := buildCommunity(t)
	cfg := DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		t.Fatal(err)
	}
	newD, _ := growDataset(oldD, 1)

	incremental, err := cfg.Update(oldArt, oldD, newD)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cfg.Run(newD)
	if err != nil {
		t.Fatal(err)
	}
	if !incremental.Expertise.Equal(full.Expertise, 0) {
		t.Error("incremental expertise differs from full recompute")
	}
	if !incremental.Affinity.Equal(full.Affinity, 0) {
		t.Error("incremental affinity differs from full recompute")
	}
	for i := 0; i < newD.NumUsers(); i++ {
		for j := 0; j < newD.NumUsers(); j++ {
			a := incremental.Trust.Value(ratings.UserID(i), ratings.UserID(j))
			b := full.Trust.Value(ratings.UserID(i), ratings.UserID(j))
			if a != b {
				t.Fatalf("T̂[%d][%d]: incremental %v != full %v", i, j, a, b)
			}
		}
	}
}

func TestUpdateReusesUntouchedCategories(t *testing.T) {
	oldD := buildCommunity(t) // 2 categories: movies (0), books (1)
	cfg := DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		t.Fatal(err)
	}
	// Grow with activity only in movies (category 0): seed until the
	// touched category is 0.
	var newD *ratings.Dataset
	for seed := uint64(1); ; seed++ {
		grown, touched := growDataset(oldD, seed)
		if touched[0] && !touched[1] {
			newD = grown
			break
		}
	}
	art, err := cfg.Update(oldArt, oldD, newD)
	if err != nil {
		t.Fatal(err)
	}
	if art.RiggsResults[1] != oldArt.RiggsResults[1] {
		t.Error("untouched category result should be reused verbatim")
	}
	if art.RiggsResults[0] == oldArt.RiggsResults[0] {
		t.Error("touched category result should be recomputed")
	}
}

func TestUpdateRejectsNonExtensions(t *testing.T) {
	oldD := buildCommunity(t)
	cfg := DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		t.Fatal(err)
	}
	// A freshly built different dataset is not an extension.
	b := ratings.NewBuilder()
	b.AddCategory("different")
	b.AddUser("someone")
	other := b.Build()
	if _, err := cfg.Update(oldArt, oldD, other); !errors.Is(err, ErrNotExtension) {
		t.Errorf("error = %v, want ErrNotExtension", err)
	}
	// Shrunk dataset.
	if _, err := cfg.Update(oldArt, oldD, ratings.NewBuilder().Build()); !errors.Is(err, ErrNotExtension) {
		t.Errorf("error = %v, want ErrNotExtension", err)
	}
	// Nil arguments.
	if _, err := cfg.Update(nil, oldD, oldD); err == nil {
		t.Error("nil artifacts accepted")
	}
	// Artifacts not matching the old dataset.
	if _, err := cfg.Update(&Artifacts{}, oldD, oldD); err == nil {
		t.Error("mismatched artifacts accepted")
	}
}

func TestUpdateNoChangeIsIdentity(t *testing.T) {
	oldD := buildCommunity(t)
	cfg := DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		t.Fatal(err)
	}
	art, err := cfg.Update(oldArt, oldD, oldD)
	if err != nil {
		t.Fatal(err)
	}
	for c := range art.RiggsResults {
		if art.RiggsResults[c] != oldArt.RiggsResults[c] {
			t.Errorf("category %d recomputed with no new data", c)
		}
	}
	if !art.Expertise.Equal(oldArt.Expertise, 0) {
		t.Error("expertise changed with no new data")
	}
}

// Property: incremental update equals full recompute on random growth.
func TestUpdateEquivalenceQuick(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		oldD := randomGrowableDataset(seed)
		oldArt, err := cfg.Run(oldD)
		if err != nil {
			return false
		}
		newD, _ := growDataset(oldD, seed^0x5a5a)
		incremental, err := cfg.Update(oldArt, oldD, newD)
		if err != nil {
			return false
		}
		full, err := cfg.Run(newD)
		if err != nil {
			return false
		}
		return incremental.Expertise.Equal(full.Expertise, 0) &&
			incremental.Affinity.Equal(full.Affinity, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func randomGrowableDataset(seed uint64) *ratings.Dataset {
	rng := stats.NewRand(seed)
	b := ratings.NewBuilder()
	numCats := 1 + rng.IntN(4)
	for c := 0; c < numCats; c++ {
		b.AddCategory("")
	}
	numUsers := 3 + rng.IntN(10)
	b.AddUsers(numUsers)
	var reviews []ratings.ReviewID
	for k := 0; k < 4+rng.IntN(12); k++ {
		oid, err := b.AddObject(ratings.CategoryID(rng.IntN(numCats)), "")
		if err != nil {
			panic(err)
		}
		rid, err := b.AddReview(ratings.UserID(rng.IntN(numUsers)), oid)
		if err != nil {
			panic(err)
		}
		reviews = append(reviews, rid)
	}
	for k := 0; k < rng.IntN(40); k++ {
		rater := ratings.UserID(rng.IntN(numUsers))
		rev := reviews[rng.IntN(len(reviews))]
		if b.HasRating(rater, rev) {
			continue
		}
		_ = b.AddRating(rater, rev, ratings.QuantizeRating(rng.Float64()))
	}
	return b.Build()
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	oldD := randomGrowableDataset(42)
	cfg := DefaultConfig()
	oldArt, err := cfg.Run(oldD)
	if err != nil {
		b.Fatal(err)
	}
	newD, _ := growDataset(oldD, 43)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Update(oldArt, oldD, newD); err != nil {
			b.Fatal(err)
		}
	}
}
