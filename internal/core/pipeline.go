package core

import (
	"fmt"

	"weboftrust/internal/affinity"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/reputation"
	"weboftrust/internal/riggs"
)

// Config assembles the knobs of all three pipeline steps. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	// Riggs configures the Step 1 fixed point (eqs. 1-2).
	Riggs riggs.Model
	// Reputation configures writer reputation (eq. 3).
	Reputation reputation.Options
	// AffinityMode selects the Step 2 activity blend (eq. 4).
	AffinityMode affinity.Mode
}

// DefaultConfig returns the configuration the paper evaluates.
func DefaultConfig() Config {
	return Config{
		Riggs:        riggs.DefaultModel(),
		Reputation:   reputation.DefaultOptions(),
		AffinityMode: affinity.Blend,
	}
}

// Artifacts bundles everything the pipeline produces. All fields are
// immutable after Run returns.
type Artifacts struct {
	// RiggsResults holds the Step 1 fixed point per category (review
	// quality and rater reputation), indexed by CategoryID.
	RiggsResults []*riggs.CategoryResult
	// Expertise is the U x C matrix E (Step 1c).
	Expertise *mat.Dense
	// Affinity is the U x C matrix A (Step 2).
	Affinity *mat.Dense
	// Trust is the derived trust matrix T̂ (Step 3) in functional form.
	Trust *DerivedTrust
}

// Run executes Steps 1-3 on the dataset and returns the artifacts.
func (c Config) Run(d *ratings.Dataset) (*Artifacts, error) {
	results, err := c.Riggs.SolveAll(d)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (riggs): %w", err)
	}
	e, err := c.Reputation.ExpertiseMatrix(d, results)
	if err != nil {
		return nil, fmt.Errorf("core: step 1c (expertise): %w", err)
	}
	a, err := affinity.Matrix(d, c.AffinityMode)
	if err != nil {
		return nil, fmt.Errorf("core: step 2 (affinity): %w", err)
	}
	dt, err := NewDerivedTrust(a, e)
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (derive): %w", err)
	}
	return &Artifacts{
		RiggsResults: results,
		Expertise:    e,
		Affinity:     a,
		Trust:        dt,
	}, nil
}
