package core

import (
	"fmt"

	"weboftrust/internal/affinity"
	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/reputation"
	"weboftrust/internal/riggs"
	"weboftrust/internal/shard"
)

// Config assembles the knobs of all three pipeline steps. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	// Riggs configures the Step 1 fixed point (eqs. 1-2).
	Riggs riggs.Model
	// Reputation configures writer reputation (eq. 3).
	Reputation reputation.Options
	// AffinityMode selects the Step 2 activity blend (eq. 4).
	AffinityMode affinity.Mode
	// Workers caps the goroutines every pipeline stage fans out to.
	// 0 (the default) means one per available CPU
	// (runtime.GOMAXPROCS(0)); 1 forces fully serial execution. Every
	// stage shards work items that own disjoint output slots (categories
	// for the fixed points and expertise columns, users for affinity rows
	// and trust row sums), so artifacts are bitwise-identical at any
	// setting — the knob only trades wall-clock time.
	Workers int
	// Web selects how the derived matrix is binarised into the
	// web-of-trust graph artifact (Step 4, Artifacts.Web). Like Workers
	// it is excluded from the configuration fingerprint: the persisted
	// artifacts do not depend on it, and a restore rebuilds the graph
	// under the restoring side's policy.
	Web WebPolicy
	// Shard names this process's slice of an N-shard deployment. The
	// pipeline always computes the complete model — the Riggs fixed
	// points, E and the replicated CSR web graph need every user's events
	// — but a sharded config RETAINS dense per-source-user state (affinity
	// rows, web edge rows) only for owned users, cutting steady-state
	// memory to ~1/N per shard. Retained rows are bitwise-identical to
	// the unsharded model's, so any shard answers queries for sources it
	// owns exactly as a single process would. Like Workers, the spec is
	// excluded from the configuration fingerprint: it changes what is
	// kept, never what is computed.
	Shard shard.Spec
}

// DefaultConfig returns the configuration the paper evaluates.
func DefaultConfig() Config {
	return Config{
		Riggs:        riggs.DefaultModel(),
		Reputation:   reputation.DefaultOptions(),
		AffinityMode: affinity.Blend,
		Web:          DefaultWebPolicy(),
	}
}

// Artifacts bundles everything the pipeline produces. All fields are
// immutable after Run returns.
type Artifacts struct {
	// RiggsResults holds the Step 1 fixed point per category (review
	// quality and rater reputation), indexed by CategoryID.
	RiggsResults []*riggs.CategoryResult
	// Expertise is the U x C matrix E (Step 1c).
	Expertise *mat.Dense
	// Affinity is the U x C matrix A (Step 2).
	Affinity *mat.Dense
	// Trust is the derived trust matrix T̂ (Step 3) in functional form.
	Trust *DerivedTrust
	// Web is the binarised web of trust (Step 4): the paper's end
	// product, built from Trust under Config.Web and maintained
	// incrementally through Update.
	Web *Web
}

// Run executes Steps 1-3 on the dataset and returns the artifacts. Under
// a sharded config the full pipeline still runs, then dense per-user
// state is compacted to the owned rows (see Config.Shard).
func (c Config) Run(d *ratings.Dataset) (*Artifacts, error) {
	if err := c.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	results, err := c.Riggs.SolveAllWorkers(d, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: step 1 (riggs): %w", err)
	}
	e, err := c.Reputation.ExpertiseMatrixWorkers(d, results, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: step 1c (expertise): %w", err)
	}
	a, err := affinity.MatrixWorkers(d, c.AffinityMode, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: step 2 (affinity): %w", err)
	}
	dt, err := NewDerivedTrustWorkers(a, e, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: step 3 (derive): %w", err)
	}
	web, err := BuildWeb(d, dt, c.Web, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: step 4 (web of trust): %w", err)
	}
	art := &Artifacts{
		RiggsResults: results,
		Expertise:    e,
		Affinity:     a,
		Trust:        dt,
		Web:          web,
	}
	if c.Shard.IsSharded() {
		art = shardArtifacts(art, c.Shard)
	}
	return art, nil
}
