package core

import (
	"errors"
	"fmt"
	"sync"

	"weboftrust/internal/affinity"
	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
)

// ErrNotExtension reports that the new dataset does not extend the old
// one, so incremental update is impossible.
var ErrNotExtension = errors.New("core: new dataset does not extend the old one")

// Scratch carries reusable buffers across Update calls, so a long-lived
// ingest loop (trustd's tailer folds a batch in on every poll tick) stops
// re-allocating the Riggs iteration buffers per tick. The zero value is
// ready to use; a mutex serialises concurrent Update calls that happen to
// share one Scratch, so reuse is always safe, just not concurrent.
type Scratch struct {
	mu    sync.Mutex
	riggs []*riggs.Scratch
}

// riggsScratch returns the lazily-created per-worker Riggs scratch slots,
// sized to at least workers. Callers hold s.mu.
func (s *Scratch) riggsScratch(workers int) []*riggs.Scratch {
	for len(s.riggs) < workers {
		s.riggs = append(s.riggs, riggs.NewScratch())
	}
	return s.riggs
}

// Update recomputes the pipeline artifacts after the dataset grew,
// re-solving the Step 1 fixed point only for the categories touched by
// new reviews or ratings. Untouched categories are reused wholesale: their
// Riggs results verbatim (their inputs are byte-identical), their
// expertise columns copied from the old E instead of re-aggregating
// writers, and their expert sets and packed score columns shared with the
// old derived-trust index instead of re-scanning E columns. What does need recomputing — touched
// fixed points, touched expertise columns, the affinity matrix (any new
// event shifts some user's activity normalisation) and the trust row sums
// — fans out across Config.Workers. The result is exactly what Run would
// produce on the new dataset — verified by the equivalence property tests.
//
// newD must extend oldD: all of oldD's users, categories, objects,
// reviews and ratings must form a prefix of newD's (the shape produced by
// replaying an append-only event log past its previous position).
func (c Config) Update(oldArt *Artifacts, oldD, newD *ratings.Dataset) (*Artifacts, error) {
	return c.UpdateScratch(oldArt, oldD, newD, nil)
}

// UpdateScratch is Update with caller-owned reusable buffers; pass nil to
// allocate per call. A steady-state ingest loop passes the same Scratch
// every tick.
func (c Config) UpdateScratch(oldArt *Artifacts, oldD, newD *ratings.Dataset, s *Scratch) (*Artifacts, error) {
	if oldArt == nil || oldD == nil || newD == nil {
		return nil, fmt.Errorf("core: Update requires non-nil artifacts and datasets")
	}
	if err := c.Shard.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := checkExtension(oldD, newD); err != nil {
		return nil, err
	}
	if len(oldArt.RiggsResults) != oldD.NumCategories() {
		return nil, fmt.Errorf("core: artifacts carry %d riggs results for %d categories",
			len(oldArt.RiggsResults), oldD.NumCategories())
	}
	if oldD.NumCategories() > 0 && oldArt.Expertise == nil {
		return nil, fmt.Errorf("core: artifacts missing expertise matrix")
	}
	if s == nil {
		s = new(Scratch)
	}

	numC := newD.NumCategories()
	touched := make([]bool, numC)
	// Categories new to the dataset are touched by definition.
	for cat := oldD.NumCategories(); cat < numC; cat++ {
		touched[cat] = true
	}
	for r := oldD.NumReviews(); r < newD.NumReviews(); r++ {
		touched[newD.Review(ratings.ReviewID(r)).Category] = true
	}
	newRatings := newD.Ratings()[oldD.NumRatings():]
	for _, rt := range newRatings {
		touched[newD.Review(rt.Review).Category] = true
	}

	results := make([]*riggs.CategoryResult, numC)
	var touchedCats []int
	for cat := range results {
		if cat < oldD.NumCategories() && !touched[cat] {
			results[cat] = oldArt.RiggsResults[cat]
			continue
		}
		touchedCats = append(touchedCats, cat)
	}

	s.mu.Lock()
	// Normalize once so the scratch slots and DoWorker's ids come from
	// the same evaluation even if GOMAXPROCS changes concurrently.
	workers := par.Normalize(c.Workers)
	scratch := s.riggsScratch(workers)
	solveErrs := make([]error, len(touchedCats))
	par.DoWorker(workers, len(touchedCats), func(w, i int) {
		cat := touchedCats[i]
		cr, err := c.Riggs.SolveScratch(newD, ratings.CategoryID(cat), scratch[w])
		if err != nil {
			solveErrs[i] = fmt.Errorf("core: update category %d: %w", cat, err)
			return
		}
		results[cat] = cr
	})
	s.mu.Unlock()
	if err := par.FirstError(solveErrs); err != nil {
		return nil, err
	}

	// Expertise: untouched columns are copied verbatim from the old E
	// (rows for users added since stay zero — a new user writing in an
	// old category would have touched it), touched columns recomputed.
	oldE, oldUsers := oldArt.Expertise, oldD.NumUsers()
	e := mat.NewDense(newD.NumUsers(), numC)
	colErrs := make([]error, numC)
	par.Do(c.Workers, numC, func(cat int) {
		// Untouched implies cat < oldD.NumCategories(): new categories
		// are always marked touched.
		if !touched[cat] {
			for u := 0; u < oldUsers; u++ {
				e.Set(u, cat, oldE.At(u, cat))
			}
			return
		}
		colErrs[cat] = c.Reputation.ExpertiseColumnInto(newD, results[cat], ratings.CategoryID(cat), e)
	})
	if err := par.FirstError(colErrs); err != nil {
		return nil, fmt.Errorf("core: update expertise: %w", err)
	}

	a, err := affinity.MatrixWorkers(newD, c.AffinityMode, c.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: update affinity: %w", err)
	}
	dt, err := newDerivedTrust(a, e, c.Workers, oldArt.Trust, touched)
	if err != nil {
		return nil, fmt.Errorf("core: update derive: %w", err)
	}
	// The web of trust follows the same reuse discipline: only users
	// whose own activity or reachable expertise changed get their edge
	// rows re-selected; everyone else's rows are shared with the old web
	// by reference (a nil oldArt.Web — artifacts assembled by hand —
	// falls back to a full build).
	web, err := buildWeb(newD, dt, c.Web, c.Workers, oldArt.Web, oldD, touched)
	if err != nil {
		return nil, fmt.Errorf("core: update web of trust: %w", err)
	}
	art := &Artifacts{
		RiggsResults: results,
		Expertise:    e,
		Affinity:     a,
		Trust:        dt,
		Web:          web,
	}
	// Like Run: the update computes the complete model (the full A is
	// rebuilt every tick regardless), then a sharded config compacts the
	// retained dense state down to the owned rows.
	if c.Shard.IsSharded() {
		art = shardArtifacts(art, c.Shard)
	}
	return art, nil
}

// checkExtension verifies that newD is oldD plus appended entities.
func checkExtension(oldD, newD *ratings.Dataset) error {
	if newD.NumUsers() < oldD.NumUsers() ||
		newD.NumCategories() < oldD.NumCategories() ||
		newD.NumObjects() < oldD.NumObjects() ||
		newD.NumReviews() < oldD.NumReviews() ||
		newD.NumRatings() < oldD.NumRatings() ||
		newD.NumTrustEdges() < oldD.NumTrustEdges() {
		return fmt.Errorf("%w: shrunk entity counts", ErrNotExtension)
	}
	for c := 0; c < oldD.NumCategories(); c++ {
		if oldD.CategoryName(ratings.CategoryID(c)) != newD.CategoryName(ratings.CategoryID(c)) {
			return fmt.Errorf("%w: category %d renamed", ErrNotExtension, c)
		}
	}
	for o := 0; o < oldD.NumObjects(); o++ {
		if oldD.Object(ratings.ObjectID(o)) != newD.Object(ratings.ObjectID(o)) {
			return fmt.Errorf("%w: object %d differs", ErrNotExtension, o)
		}
	}
	for r := 0; r < oldD.NumReviews(); r++ {
		if oldD.Review(ratings.ReviewID(r)) != newD.Review(ratings.ReviewID(r)) {
			return fmt.Errorf("%w: review %d differs", ErrNotExtension, r)
		}
	}
	oldRatings, newRatings := oldD.Ratings(), newD.Ratings()
	for i := range oldRatings {
		if oldRatings[i] != newRatings[i] {
			return fmt.Errorf("%w: rating %d differs", ErrNotExtension, i)
		}
	}
	// The web artifact's generosity maintenance keys on new trust edges,
	// so the trust list must be append-only like everything else.
	oldTrust, newTrust := oldD.TrustEdges(), newD.TrustEdges()
	for i := range oldTrust {
		if oldTrust[i] != newTrust[i] {
			return fmt.Errorf("%w: trust edge %d differs", ErrNotExtension, i)
		}
	}
	return nil
}
