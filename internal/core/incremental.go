package core

import (
	"errors"
	"fmt"

	"weboftrust/internal/affinity"
	"weboftrust/internal/ratings"
	"weboftrust/internal/riggs"
)

// ErrNotExtension reports that the new dataset does not extend the old
// one, so incremental update is impossible.
var ErrNotExtension = errors.New("core: new dataset does not extend the old one")

// Update recomputes the pipeline artifacts after the dataset grew,
// re-solving the Step 1 fixed point only for the categories touched by
// new reviews or ratings. The untouched categories' Riggs results are
// reused verbatim (their inputs are byte-identical), so the result is
// exactly what Run would produce on the new dataset — verified by the
// equivalence property test.
//
// newD must extend oldD: all of oldD's users, categories, objects,
// reviews and ratings must form a prefix of newD's (the shape produced by
// replaying an append-only event log past its previous position). The
// affinity matrix and expertise assembly are always rebuilt — they are
// single linear passes, cheap next to the fixed points.
func (c Config) Update(oldArt *Artifacts, oldD, newD *ratings.Dataset) (*Artifacts, error) {
	if oldArt == nil || oldD == nil || newD == nil {
		return nil, fmt.Errorf("core: Update requires non-nil artifacts and datasets")
	}
	if err := checkExtension(oldD, newD); err != nil {
		return nil, err
	}
	if len(oldArt.RiggsResults) != oldD.NumCategories() {
		return nil, fmt.Errorf("core: artifacts carry %d riggs results for %d categories",
			len(oldArt.RiggsResults), oldD.NumCategories())
	}

	touched := make([]bool, newD.NumCategories())
	// Categories new to the dataset are touched by definition.
	for cat := oldD.NumCategories(); cat < newD.NumCategories(); cat++ {
		touched[cat] = true
	}
	for r := oldD.NumReviews(); r < newD.NumReviews(); r++ {
		touched[newD.Review(ratings.ReviewID(r)).Category] = true
	}
	newRatings := newD.Ratings()[oldD.NumRatings():]
	for _, rt := range newRatings {
		touched[newD.Review(rt.Review).Category] = true
	}

	results := make([]*riggs.CategoryResult, newD.NumCategories())
	recomputed := 0
	for cat := range results {
		if cat < oldD.NumCategories() && !touched[cat] {
			results[cat] = oldArt.RiggsResults[cat]
			continue
		}
		cr, err := c.Riggs.Solve(newD, ratings.CategoryID(cat))
		if err != nil {
			return nil, fmt.Errorf("core: update category %d: %w", cat, err)
		}
		results[cat] = cr
		recomputed++
	}

	e, err := c.Reputation.ExpertiseMatrix(newD, results)
	if err != nil {
		return nil, fmt.Errorf("core: update expertise: %w", err)
	}
	a, err := affinity.Matrix(newD, c.AffinityMode)
	if err != nil {
		return nil, fmt.Errorf("core: update affinity: %w", err)
	}
	dt, err := NewDerivedTrust(a, e)
	if err != nil {
		return nil, fmt.Errorf("core: update derive: %w", err)
	}
	return &Artifacts{
		RiggsResults: results,
		Expertise:    e,
		Affinity:     a,
		Trust:        dt,
	}, nil
}

// checkExtension verifies that newD is oldD plus appended entities.
func checkExtension(oldD, newD *ratings.Dataset) error {
	if newD.NumUsers() < oldD.NumUsers() ||
		newD.NumCategories() < oldD.NumCategories() ||
		newD.NumObjects() < oldD.NumObjects() ||
		newD.NumReviews() < oldD.NumReviews() ||
		newD.NumRatings() < oldD.NumRatings() {
		return fmt.Errorf("%w: shrunk entity counts", ErrNotExtension)
	}
	for c := 0; c < oldD.NumCategories(); c++ {
		if oldD.CategoryName(ratings.CategoryID(c)) != newD.CategoryName(ratings.CategoryID(c)) {
			return fmt.Errorf("%w: category %d renamed", ErrNotExtension, c)
		}
	}
	for o := 0; o < oldD.NumObjects(); o++ {
		if oldD.Object(ratings.ObjectID(o)) != newD.Object(ratings.ObjectID(o)) {
			return fmt.Errorf("%w: object %d differs", ErrNotExtension, o)
		}
	}
	for r := 0; r < oldD.NumReviews(); r++ {
		if oldD.Review(ratings.ReviewID(r)) != newD.Review(ratings.ReviewID(r)) {
			return fmt.Errorf("%w: review %d differs", ErrNotExtension, r)
		}
	}
	oldRatings, newRatings := oldD.Ratings(), newD.Ratings()
	for i := range oldRatings {
		if oldRatings[i] != newRatings[i] {
			return fmt.Errorf("%w: rating %d differs", ErrNotExtension, i)
		}
	}
	return nil
}
