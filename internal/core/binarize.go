package core

import (
	"fmt"
	"math"

	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
)

// Generosity computes the paper's per-user conversion ratio
// k_i = |R_i ∩ T_i| / |R_i|: the fraction of user i's direct connections
// that carry an explicit trust edge. Users with no direct connections get
// k_i = 0. This captures "each user's generousness of trust decision
// compared to total number of direct connection" (Section IV-C).
func Generosity(d *ratings.Dataset) []float64 {
	k := make([]float64, d.NumUsers())
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		k[int(u)] = generosityOf(d, u)
	}
	return k
}

// generosityOf computes one user's conversion ratio k_i. It reads only
// user i's own connection and trust rows, which is what lets the web
// artifact recompute generosity for exactly the users whose rows grew.
func generosityOf(d *ratings.Dataset, u ratings.UserID) float64 {
	total, trusted := 0, 0
	d.ConnectionsFrom(u, func(c ratings.Connection) {
		total++
		if d.HasTrustEdge(u, c.To) {
			trusted++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(trusted) / float64(total)
}

// BinarizePolicy selects how the continuous matrices are converted to
// binary trust predictions.
type BinarizePolicy int

const (
	// PerUserTopK selects, for each user i, the top ⌈k_i·n_i⌉ of their
	// candidate connections by score, where k_i is the user's generosity
	// and n_i their candidate count. This is the paper's protocol.
	PerUserTopK BinarizePolicy = iota
	// GlobalThreshold predicts trust wherever the score is >= a fixed
	// threshold, ignoring per-user generosity (the A-4 ablation).
	GlobalThreshold
)

// String returns the policy's name.
func (p BinarizePolicy) String() string {
	switch p {
	case PerUserTopK:
		return "per-user-topk"
	case GlobalThreshold:
		return "global-threshold"
	default:
		return fmt.Sprintf("BinarizePolicy(%d)", int(p))
	}
}

// topCount converts a generosity fraction and candidate count into a
// selection size: ⌈k·n⌉ clamped to [0, n]. A tiny epsilon guards against
// k·n landing just above an integer through floating-point noise.
func topCount(k float64, n int) int {
	if n <= 0 || k <= 0 {
		return 0
	}
	c := int(math.Ceil(k*float64(n) - 1e-9))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}

// Binarize converts the continuous derived matrix into the binary
// prediction matrix T̂′ under the given policy — the single entry point
// behind BinarizeDerived, BinarizeDerivedThreshold, the web-of-trust
// artifact and the facade's binarize option. For PerUserTopK, generosity
// must hold one k_i per user (a k_i of 0 falls back to
// policy.ColdGenerosity when that is positive); for GlobalThreshold it is
// ignored and may be nil. Rows are processed in parallel across workers
// (<= 0 means one per available CPU) and are identical at any worker
// count: each row is a pure function of its own inputs.
func Binarize(dt *DerivedTrust, policy WebPolicy, generosity []float64, workers int) (*mat.CSR, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	numU := dt.NumUsers()
	if policy.Policy == PerUserTopK && len(generosity) != numU {
		return nil, fmt.Errorf("core: generosity length %d, want %d", len(generosity), numU)
	}
	rows := make([][]int32, numU)
	n := par.Normalize(workers)
	bufs := make([]*selectScratch, n)
	par.DoWorker(n, numU, func(w, i int) {
		if bufs[w] == nil {
			bufs[w] = newSelectScratch(numU)
		}
		k := 0.0
		if policy.Policy == PerUserTopK {
			k = policy.effectiveGenerosity(generosity[i])
		}
		rows[i] = policyRowInto(dt, ratings.UserID(i), policy, k, bufs[w], false).To
	})
	return mat.NewCSRFromRows(numU, numU, rows, nil)
}

// selectScratch is the per-worker working memory of a policy row
// selection: the row evaluation buffer and the candidate-value buffer the
// threshold selection partitions, reused across every row a worker
// processes.
type selectScratch struct {
	row  []float64
	vals []float64
}

func newSelectScratch(numU int) *selectScratch {
	return &selectScratch{row: make([]float64, numU), vals: make([]float64, 0, numU)}
}

// BinarizeDerived converts the continuous derived matrix into the binary
// prediction matrix T̂′ using PerUserTopK: for each user i the candidate
// set is every j != i with T̂_ij > 0, and the top ⌈k_i·|candidates|⌉ by
// score become predicted-trust edges. Rows are processed in parallel.
func BinarizeDerived(dt *DerivedTrust, generosity []float64) (*mat.CSR, error) {
	return Binarize(dt, WebPolicy{Policy: PerUserTopK}, generosity, 0)
}

// policyRowInto evaluates user i's derived-trust row into the scratch's
// U-length row buffer and applies the binarize policy, returning the
// selected out-neighbours in ascending id order. When withWeights is set
// the parallel T̂ values are captured too (the derived web is a weighted
// graph); binarisation to a boolean CSR skips them. Every consumer of a
// policy — the binarize entry points above and the web-of-trust artifact —
// funnels through here, so the selection protocol cannot drift between
// the offline evaluation path and the served graph. k is the user's
// effective generosity (PerUserTopK only; cold fallback already applied).
//
// Selection is threshold-based rather than heap- or sort-based: the
// take-th largest candidate value is found by quickselect over the
// compacted positive values — O(candidates) expected — and one ascending
// scan then emits every score above it plus the lowest-index ties, which
// is exactly the set mat.TopK keeps (its order is value descending, ties
// toward the smaller index). The output is therefore already in ascending
// id order with zero per-row selection allocations beyond the result
// itself, where the first binarize iteration paid an O(U)-index
// quickselect plus an O(take log take) sort per row.
func policyRowInto(dt *DerivedTrust, i ratings.UserID, p WebPolicy, k float64, sc *selectScratch, withWeights bool) WebRow {
	row := sc.row
	var ids []int32
	var ws []float64
	switch p.Policy {
	case PerUserTopK:
		if k <= 0 {
			return WebRow{}
		}
		dt.RowSparse(i, row)
		row[i] = 0 // self is never a candidate
		vals := sc.vals[:0]
		for _, v := range row {
			if v > 0 {
				vals = append(vals, v)
			}
		}
		sc.vals = vals[:0] // keep a grown buffer for later rows
		take := topCount(k, len(vals))
		if take == 0 {
			return WebRow{}
		}
		ids = make([]int32, 0, take)
		if withWeights {
			ws = make([]float64, 0, take)
		}
		if take == len(vals) {
			// Everything positive is selected; no threshold needed.
			for j, v := range row {
				if v > 0 {
					ids = append(ids, int32(j))
					if withWeights {
						ws = append(ws, v)
					}
				}
			}
			break
		}
		quickselectDesc(vals, take)
		// The selected set occupies vals[:take] in unspecified order; the
		// threshold is its weakest member.
		thresh := vals[0]
		for _, v := range vals[1:take] {
			if v < thresh {
				thresh = v
			}
		}
		// Entries strictly above the threshold are all in; ties at the
		// threshold fill the remainder lowest-index-first, matching
		// TopK's deterministic tie-break.
		greater := 0
		for _, v := range row {
			if v > thresh {
				greater++
			}
		}
		tiesLeft := take - greater
		for j, v := range row {
			if v > thresh || (v == thresh && tiesLeft > 0) {
				if v == thresh {
					tiesLeft--
				}
				ids = append(ids, int32(j))
				if withWeights {
					ws = append(ws, v)
				}
			}
		}
	case GlobalThreshold:
		dt.RowSparse(i, row)
		for j, v := range row {
			if j != int(i) && v > 0 && v >= p.Tau {
				ids = append(ids, int32(j))
				if withWeights {
					ws = append(ws, v)
				}
			}
		}
	}
	if len(ids) == 0 {
		return WebRow{}
	}
	return WebRow{To: ids, W: ws}
}

// quickselectDesc partitions vals so vals[:k] holds the k largest values
// in unspecified order (iterative Hoare partition, median-of-three
// pivot): expected O(n). 0 < k <= len(vals); values are finite (trust
// scores in [0, 1]).
func quickselectDesc(vals []float64, k int) {
	lo, hi := 0, len(vals)
	for k > lo && k < hi {
		if hi-lo == 2 {
			if vals[lo+1] > vals[lo] {
				vals[lo], vals[lo+1] = vals[lo+1], vals[lo]
			}
			return
		}
		// Median-of-three, arranged so vals[lo] >= pivot >= vals[hi-1]:
		// both scans stop inside the range and the split is interior.
		mid := lo + (hi-lo)/2
		last := hi - 1
		if vals[mid] > vals[lo] {
			vals[mid], vals[lo] = vals[lo], vals[mid]
		}
		if vals[last] > vals[lo] {
			vals[last], vals[lo] = vals[lo], vals[last]
		}
		if vals[last] > vals[mid] {
			vals[last], vals[mid] = vals[mid], vals[last]
		}
		pivot := vals[mid]
		i, j := lo, hi-1
		for {
			for {
				i++
				if !(vals[i] > pivot) {
					break
				}
			}
			for {
				j--
				if !(pivot > vals[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			vals[i], vals[j] = vals[j], vals[i]
		}
		p := j + 1
		switch {
		case p == k:
			return
		case p < k:
			lo = p
		default:
			hi = p
		}
	}
}

// BaselineMatrix builds the paper's baseline B: B_ij is the average rating
// user i gave to user j's reviews, stored sparsely on the direct-connection
// support R.
func BaselineMatrix(d *ratings.Dataset) *mat.CSR {
	numU := d.NumUsers()
	rows := make([][]int32, numU)
	vals := make([][]float64, numU)
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			rows[u] = append(rows[u], int32(c.To))
			vals[u] = append(vals[u], c.AvgRating())
		})
	}
	m, err := mat.NewCSRFromRows(numU, numU, rows, vals)
	if err != nil {
		// ConnectionsFrom yields unique, in-range targets, so this is
		// unreachable; panic loudly if the invariant ever breaks.
		panic(fmt.Sprintf("core: BaselineMatrix: %v", err))
	}
	return m
}

// BinarizeSparse converts a sparse continuous score matrix (such as the
// baseline B) into binary predictions with PerUserTopK: for each row the
// candidates are the stored entries and the top ⌈k_i·nnz_i⌉ by value are
// kept.
func BinarizeSparse(scores *mat.CSR, generosity []float64) (*mat.CSR, error) {
	numU, cols := scores.Dims()
	if len(generosity) != numU {
		return nil, fmt.Errorf("core: generosity length %d, want %d", len(generosity), numU)
	}
	rows := make([][]int32, numU)
	for i := 0; i < numU; i++ {
		colIdx, vals := scores.Row(i)
		take := topCount(generosity[i], len(vals))
		if take == 0 {
			continue
		}
		selected := mat.TopK(vals, take)
		out := make([]int32, 0, len(selected))
		for _, k := range selected {
			out = append(out, colIdx[k])
		}
		rows[i] = out
	}
	return mat.NewCSRFromRows(numU, cols, rows, nil)
}

// BinarizeDerivedThreshold is the GlobalThreshold variant for the derived
// matrix: predict trust wherever T̂_ij >= tau (j != i). Rows are processed
// in parallel.
func BinarizeDerivedThreshold(dt *DerivedTrust, tau float64) *mat.CSR {
	m, err := Binarize(dt, WebPolicy{Policy: GlobalThreshold, Tau: tau}, nil, 0)
	if err != nil {
		panic(fmt.Sprintf("core: BinarizeDerivedThreshold: %v", err)) // rows are unique and in-range
	}
	return m
}

// BinarizeSparseThreshold is the GlobalThreshold variant for sparse score
// matrices: keep stored entries with value >= tau.
func BinarizeSparseThreshold(scores *mat.CSR, tau float64) *mat.CSR {
	numU, cols := scores.Dims()
	rows := make([][]int32, numU)
	for i := 0; i < numU; i++ {
		colIdx, vals := scores.Row(i)
		for k, v := range vals {
			if v >= tau {
				rows[i] = append(rows[i], colIdx[k])
			}
		}
	}
	m, err := mat.NewCSRFromRows(numU, cols, rows, nil)
	if err != nil {
		panic(fmt.Sprintf("core: BinarizeSparseThreshold: %v", err))
	}
	return m
}
