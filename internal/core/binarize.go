package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
)

// Generosity computes the paper's per-user conversion ratio
// k_i = |R_i ∩ T_i| / |R_i|: the fraction of user i's direct connections
// that carry an explicit trust edge. Users with no direct connections get
// k_i = 0. This captures "each user's generousness of trust decision
// compared to total number of direct connection" (Section IV-C).
func Generosity(d *ratings.Dataset) []float64 {
	k := make([]float64, d.NumUsers())
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		total, trusted := 0, 0
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			total++
			if d.HasTrustEdge(u, c.To) {
				trusted++
			}
		})
		if total > 0 {
			k[int(u)] = float64(trusted) / float64(total)
		}
	}
	return k
}

// BinarizePolicy selects how the continuous matrices are converted to
// binary trust predictions.
type BinarizePolicy int

const (
	// PerUserTopK selects, for each user i, the top ⌈k_i·n_i⌉ of their
	// candidate connections by score, where k_i is the user's generosity
	// and n_i their candidate count. This is the paper's protocol.
	PerUserTopK BinarizePolicy = iota
	// GlobalThreshold predicts trust wherever the score is >= a fixed
	// threshold, ignoring per-user generosity (the A-4 ablation).
	GlobalThreshold
)

// String returns the policy's name.
func (p BinarizePolicy) String() string {
	switch p {
	case PerUserTopK:
		return "per-user-topk"
	case GlobalThreshold:
		return "global-threshold"
	default:
		return fmt.Sprintf("BinarizePolicy(%d)", int(p))
	}
}

// topCount converts a generosity fraction and candidate count into a
// selection size: ⌈k·n⌉ clamped to [0, n]. A tiny epsilon guards against
// k·n landing just above an integer through floating-point noise.
func topCount(k float64, n int) int {
	if n <= 0 || k <= 0 {
		return 0
	}
	c := int(math.Ceil(k*float64(n) - 1e-9))
	if c < 0 {
		c = 0
	}
	if c > n {
		c = n
	}
	return c
}

// BinarizeDerived converts the continuous derived matrix into the binary
// prediction matrix T̂′ using PerUserTopK: for each user i the candidate
// set is every j != i with T̂_ij > 0, and the top ⌈k_i·|candidates|⌉ by
// score become predicted-trust edges. Rows are processed in parallel.
func BinarizeDerived(dt *DerivedTrust, generosity []float64) (*mat.CSR, error) {
	numU := dt.NumUsers()
	if len(generosity) != numU {
		return nil, fmt.Errorf("core: generosity length %d, want %d", len(generosity), numU)
	}
	rows := make([][]int32, numU)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	ch := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := make([]float64, numU)
			for i := range ch {
				rows[i] = selectDerivedRow(dt, ratings.UserID(i), generosity[i], row)
			}
		}()
	}
	for i := 0; i < numU; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return mat.NewCSRFromRows(numU, numU, rows, nil)
}

func selectDerivedRow(dt *DerivedTrust, i ratings.UserID, k float64, row []float64) []int32 {
	if k <= 0 {
		return nil
	}
	dt.RowSparse(i, row)
	row[i] = 0 // self is never a candidate
	candidates := 0
	for _, v := range row {
		if v > 0 {
			candidates++
		}
	}
	take := topCount(k, candidates)
	if take == 0 {
		return nil
	}
	selected := mat.TopK(row, take)
	out := make([]int32, 0, len(selected))
	for _, j := range selected {
		if row[j] <= 0 {
			break // ran out of positive candidates
		}
		out = append(out, int32(j))
	}
	return out
}

// BaselineMatrix builds the paper's baseline B: B_ij is the average rating
// user i gave to user j's reviews, stored sparsely on the direct-connection
// support R.
func BaselineMatrix(d *ratings.Dataset) *mat.CSR {
	numU := d.NumUsers()
	rows := make([][]int32, numU)
	vals := make([][]float64, numU)
	for u := ratings.UserID(0); int(u) < d.NumUsers(); u++ {
		d.ConnectionsFrom(u, func(c ratings.Connection) {
			rows[u] = append(rows[u], int32(c.To))
			vals[u] = append(vals[u], c.AvgRating())
		})
	}
	m, err := mat.NewCSRFromRows(numU, numU, rows, vals)
	if err != nil {
		// ConnectionsFrom yields unique, in-range targets, so this is
		// unreachable; panic loudly if the invariant ever breaks.
		panic(fmt.Sprintf("core: BaselineMatrix: %v", err))
	}
	return m
}

// BinarizeSparse converts a sparse continuous score matrix (such as the
// baseline B) into binary predictions with PerUserTopK: for each row the
// candidates are the stored entries and the top ⌈k_i·nnz_i⌉ by value are
// kept.
func BinarizeSparse(scores *mat.CSR, generosity []float64) (*mat.CSR, error) {
	numU, cols := scores.Dims()
	if len(generosity) != numU {
		return nil, fmt.Errorf("core: generosity length %d, want %d", len(generosity), numU)
	}
	rows := make([][]int32, numU)
	for i := 0; i < numU; i++ {
		colIdx, vals := scores.Row(i)
		take := topCount(generosity[i], len(vals))
		if take == 0 {
			continue
		}
		selected := mat.TopK(vals, take)
		out := make([]int32, 0, len(selected))
		for _, k := range selected {
			out = append(out, colIdx[k])
		}
		rows[i] = out
	}
	return mat.NewCSRFromRows(numU, cols, rows, nil)
}

// BinarizeDerivedThreshold is the GlobalThreshold variant for the derived
// matrix: predict trust wherever T̂_ij >= tau (j != i). Rows are processed
// in parallel.
func BinarizeDerivedThreshold(dt *DerivedTrust, tau float64) *mat.CSR {
	numU := dt.NumUsers()
	rows := make([][]int32, numU)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	ch := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := make([]float64, numU)
			for i := range ch {
				dt.RowSparse(ratings.UserID(i), row)
				var out []int32
				for j, v := range row {
					if j != i && v >= tau && v > 0 {
						out = append(out, int32(j))
					}
				}
				rows[i] = out
			}
		}()
	}
	for i := 0; i < numU; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
	m, err := mat.NewCSRFromRows(numU, numU, rows, nil)
	if err != nil {
		panic(fmt.Sprintf("core: BinarizeDerivedThreshold: %v", err)) // rows are unique and in-range
	}
	return m
}

// BinarizeSparseThreshold is the GlobalThreshold variant for sparse score
// matrices: keep stored entries with value >= tau.
func BinarizeSparseThreshold(scores *mat.CSR, tau float64) *mat.CSR {
	numU, cols := scores.Dims()
	rows := make([][]int32, numU)
	for i := 0; i < numU; i++ {
		colIdx, vals := scores.Row(i)
		for k, v := range vals {
			if v >= tau {
				rows[i] = append(rows[i], colIdx[k])
			}
		}
	}
	m, err := mat.NewCSRFromRows(numU, cols, rows, nil)
	if err != nil {
		panic(fmt.Sprintf("core: BinarizeSparseThreshold: %v", err))
	}
	return m
}
