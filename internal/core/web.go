package core

import (
	"fmt"
	"math"

	"weboftrust/internal/graph"
	"weboftrust/internal/mat"
	"weboftrust/internal/par"
	"weboftrust/internal/ratings"
	"weboftrust/internal/shard"
)

// WebPolicy selects how the continuous derived matrix T̂ is binarised
// into the web of trust — the paper's end product, carried through the
// pipeline as a first-class artifact (Artifacts.Web).
//
// The policy is deliberately NOT part of the configuration fingerprint
// (like Config.Workers): none of the persisted pipeline artifacts — the
// dataset, the Riggs fixed points, E, A — depend on it, and a restore
// rebuilds the graph deterministically under the restoring side's policy.
type WebPolicy struct {
	// Policy is the binarisation rule: PerUserTopK (the paper's protocol)
	// or GlobalThreshold (the A-4 ablation).
	Policy BinarizePolicy
	// Tau is the GlobalThreshold cut: predict trust wherever
	// T̂_ij >= Tau (and > 0). Ignored by PerUserTopK. Must be in [0, 1].
	Tau float64
	// ColdGenerosity is the PerUserTopK fallback for users whose own
	// history cannot calibrate a conversion ratio (k_i = 0 — no direct
	// connections, or none carrying explicit trust): when positive, such
	// users binarise with this generosity instead, so the cold-start
	// users the framework exists for still get out-edges to propagate
	// along. 0 (the default) is the paper's protocol exactly: k_i = 0
	// selects nothing. Must be in [0, 1].
	ColdGenerosity float64
	// PruneTau, when positive, additionally maintains a pruned companion
	// graph that drops edges whose T̂ weight falls below it. Trust
	// transitivity undergoes a percolation transition (Richters &
	// Peixoto): sub-threshold edges cannot carry trust through a long
	// chain, so the propagation algorithms may traverse the pruned graph
	// as a principled approximation of the exact one — the web itself
	// (rows, generosity, the full graph) is unchanged. 0 disables
	// pruning. Must be in [0, 1].
	PruneTau float64
	// WalkDepth, when positive, truncates propagation traversals to the
	// BFS depth-ball of that radius around the source — the depth half
	// of the truncated-walk approximation (Richters & Peixoto's
	// percolation argument again: mass travelling beyond a short horizon
	// has decayed too far to move a ranking). Like PruneTau it only
	// shapes how the propagation algorithms traverse; the web artifact
	// itself is unchanged. 0 disables the bound.
	WalkDepth int
	// WalkMassEps, when positive, drops walk tails whose carried trust
	// mass has decayed to it or below — the mass half of the truncated
	// walk. 0 disables the bound. Must not be negative or NaN.
	WalkMassEps float64
}

// DefaultWebPolicy returns the paper's protocol: per-user top-k by
// generosity, no cold-start fallback.
func DefaultWebPolicy() WebPolicy { return WebPolicy{Policy: PerUserTopK} }

// Validate rejects out-of-range parameters and unknown policies.
func (p WebPolicy) Validate() error {
	if math.IsNaN(p.PruneTau) || p.PruneTau < 0 || p.PruneTau > 1 {
		return fmt.Errorf("core: prune tau %v outside [0,1]", p.PruneTau)
	}
	if math.IsNaN(p.WalkMassEps) || p.WalkMassEps < 0 {
		return fmt.Errorf("core: walk mass eps %v invalid", p.WalkMassEps)
	}
	switch p.Policy {
	case PerUserTopK:
		if p.ColdGenerosity < 0 || p.ColdGenerosity > 1 {
			return fmt.Errorf("core: cold generosity %v outside [0,1]", p.ColdGenerosity)
		}
	case GlobalThreshold:
		// Any real tau is meaningful: tau <= 0 keeps every positive cell,
		// tau > 1 predicts nothing (scores live in [0, 1]) — the ablation
		// sweeps rely on both ends. Only NaN (never-true comparisons) is
		// rejected.
		if math.IsNaN(p.Tau) {
			return fmt.Errorf("core: threshold tau is NaN")
		}
	default:
		return fmt.Errorf("core: unknown binarize policy %d", int(p.Policy))
	}
	return nil
}

// String renders the policy for stats surfaces and logs.
func (p WebPolicy) String() string {
	var s string
	switch p.Policy {
	case PerUserTopK:
		if p.ColdGenerosity > 0 {
			s = fmt.Sprintf("per-user-topk(cold-k=%g)", p.ColdGenerosity)
		} else {
			s = "per-user-topk"
		}
	case GlobalThreshold:
		s = fmt.Sprintf("threshold(tau=%g)", p.Tau)
	default:
		s = p.Policy.String()
	}
	if p.PruneTau > 0 {
		s += fmt.Sprintf("+prune(tau=%g)", p.PruneTau)
	}
	if p.WalkDepth > 0 {
		s += fmt.Sprintf("+walk(depth=%d)", p.WalkDepth)
	}
	if p.WalkMassEps > 0 {
		s += fmt.Sprintf("+walk(eps=%g)", p.WalkMassEps)
	}
	return s
}

// effectiveGenerosity applies the cold-start fallback to a raw k_i.
func (p WebPolicy) effectiveGenerosity(k float64) float64 {
	if k == 0 && p.ColdGenerosity > 0 {
		return p.ColdGenerosity
	}
	return k
}

// WebRow is one user's out-edges in the web of trust: target users in
// ascending id order with the parallel continuous T̂ weights. Rows are
// immutable once built and shared by reference across incremental
// updates, so they must never be modified.
type WebRow struct {
	To []int32
	W  []float64
}

// Web is the binarised web of trust as a pipeline artifact: the per-user
// generosity vector (after any cold-start fallback), the selected edge
// rows, and the CSR graph form the propagation algorithms traverse. It is
// immutable and safe for concurrent use.
//
// The artifact is maintained incrementally through Config.Update: a user's
// row is a pure function of their own affinity row, the expert columns of
// the categories they have affinity for, and their own generosity, so an
// update recomputes rows only for users whose inputs could have changed
// and shares every other row with the previous web by reference — the
// same reuse discipline the derived-trust index applies to expert lists.
// A sharded web (see Config.Shard) retains dense edge rows only for the
// owned users; every other user's row lives solely in the replicated CSR
// graph, which always holds the complete edge set (cross-shard
// propagation traverses it, so it cannot be partial). Row reads fall back
// to the graph transparently — the graph's packed rows are copies of the
// same selections, so the content is identical either way.
type Web struct {
	policy     WebPolicy
	generosity []float64
	rows       []WebRow
	g          *graph.Graph
	numEdges   int
	spec       shard.Spec
	// pruned is the percolation-pruned companion graph (policy.PruneTau
	// > 0 only): the same nodes with every edge of weight < PruneTau
	// dropped. nil when pruning is disabled.
	pruned *graph.Graph
	// dirty marks, for a web produced by the incremental path, the users
	// whose row or generosity may differ from the predecessor's — the
	// exact set buildWeb recomputed; every other row is shared by
	// reference and therefore provably unchanged. nil for full builds.
	dirty []bool
}

// Policy returns the binarize policy the web was built under.
func (w *Web) Policy() WebPolicy { return w.policy }

// NumUsers returns the node count.
func (w *Web) NumUsers() int { return len(w.rows) }

// NumEdges returns the number of directed trust edges.
func (w *Web) NumEdges() int { return w.numEdges }

// Generosity returns user u's effective conversion ratio k_u (after the
// cold-start fallback, when the policy has one).
func (w *Web) Generosity(u ratings.UserID) float64 { return w.generosity[u] }

// GenerosityVector returns the effective per-user generosity vector,
// indexed by user id. The returned slice is shared; do not modify it.
func (w *Web) GenerosityVector() []float64 { return w.generosity }

// Neighbors returns user u's out-edges: target ids in ascending order and
// the parallel T̂ weights. The returned slices are shared; do not modify
// them.
func (w *Web) Neighbors(u ratings.UserID) (to []int32, weights []float64) {
	r := w.rowAt(int(u))
	return r.To, r.W
}

// Row returns user u's edge row (shared; do not modify).
func (w *Web) Row(u ratings.UserID) WebRow { return w.rowAt(int(u)) }

// rowAt resolves user u's edge row, serving unowned users of a sharded
// web from the replicated CSR graph (whose packed row is a copy of the
// same selection — identical targets and weights).
func (w *Web) rowAt(u int) WebRow {
	if w.spec.IsSharded() && !w.spec.Owns(u) {
		to, wt := w.g.Out(u)
		return WebRow{To: to, W: wt}
	}
	return w.rows[u]
}

// ShardSpec returns the shard whose users' rows are retained densely; the
// unsharded spelling (0/1) means all of them.
func (w *Web) ShardSpec() shard.Spec { return w.spec.Canon() }

// Graph returns the complete CSR graph form (shared; do not modify).
func (w *Web) Graph() *graph.Graph { return w.g }

// PrunedGraph returns the percolation-pruned companion graph, or nil when
// the policy does not prune (PruneTau == 0).
func (w *Web) PrunedGraph() *graph.Graph { return w.pruned }

// PropagationGraph returns the graph the propagation algorithms should
// traverse: the pruned companion when the policy maintains one, otherwise
// the complete graph.
func (w *Web) PropagationGraph() *graph.Graph {
	if w.pruned != nil {
		return w.pruned
	}
	return w.g
}

// DirtyUsers returns the users whose row or generosity may differ from
// the predecessor web this one was incrementally built from — a
// conservative superset of the actually-changed rows; every user not
// marked shares their row with the predecessor by reference and is
// provably unchanged. It returns nil for webs built from scratch (no
// predecessor to compare against). The slice is shared; do not modify.
func (w *Web) DirtyUsers() []bool { return w.dirty }

// BuildWeb binarises the derived matrix into a web of trust under the
// given policy. workers caps the row-selection fan-out (<= 0 means one
// per available CPU); the result is bitwise-identical at any setting.
func BuildWeb(d *ratings.Dataset, dt *DerivedTrust, policy WebPolicy, workers int) (*Web, error) {
	return buildWeb(d, dt, policy, workers, nil, nil, nil)
}

// buildWeb builds the web artifact. When old, oldD and touched are given
// (the incremental-update path), only dirty users' rows are recomputed;
// every other row and generosity entry is taken from old — rows shared by
// reference, since both sides are immutable. See dirtyUsers for what
// makes a user dirty.
func buildWeb(d *ratings.Dataset, dt *DerivedTrust, policy WebPolicy, workers int, old *Web, oldD *ratings.Dataset, touched []bool) (*Web, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	numU := d.NumUsers()
	if dt.NumUsers() != numU {
		return nil, fmt.Errorf("core: web build: derived trust has %d users, dataset %d", dt.NumUsers(), numU)
	}
	w := &Web{
		policy:     policy,
		generosity: make([]float64, numU),
		rows:       make([]WebRow, numU),
	}

	// Incremental reuse is only sound against a web built under the same
	// policy from a dataset this one extends.
	var dirty []bool
	if old != nil && oldD != nil && old.policy == policy && len(old.rows) <= numU {
		dirty = dirtyUsers(oldD, d, touched, dt.affinity)
	}

	n := par.Normalize(workers)
	bufs := make([]*selectScratch, n)
	par.DoWorker(n, numU, func(wk, u int) {
		if dirty != nil && !dirty[u] {
			// rowAt, not rows[u]: a sharded predecessor holds non-owned
			// rows only in its graph, and this full rebuild needs them all
			// (the compaction, if any, happens after the pipeline).
			w.rows[u] = old.rowAt(u)
			w.generosity[u] = old.generosity[u]
			return
		}
		if bufs[wk] == nil {
			bufs[wk] = newSelectScratch(numU)
		}
		k := policy.effectiveGenerosity(generosityOf(d, ratings.UserID(u)))
		w.generosity[u] = k
		w.rows[u] = policyRowInto(dt, ratings.UserID(u), policy, k, bufs[wk], true)
	})

	// The CSR graph: a full build packs the rows wholesale — one O(E)
	// validate-and-copy pass over rows that are already sorted and unique
	// (graph.FromRows). The incremental path instead splices only the
	// dirty rows into the predecessor's packed arrays (graph.UpdateRows),
	// so all per-edge swap work tracks the delta, not the graph.
	to := make([][]int32, numU)
	weights := make([][]float64, numU)
	for u, r := range w.rows {
		to[u] = r.To
		weights[u] = r.W
	}
	var g *graph.Graph
	var err error
	if dirty != nil && old.g != nil {
		g, err = graph.UpdateRows(old.g, numU, dirty, to, weights)
	} else {
		g, err = graph.FromRows(numU, to, weights)
	}
	if err != nil {
		// policyRowInto emits ascending in-range unique ids; reaching
		// here means the selection invariant broke.
		return nil, fmt.Errorf("core: web build: %w", err)
	}
	w.g = g
	w.numEdges = g.NumEdges()
	w.dirty = dirty
	if policy.PruneTau > 0 {
		var oldPruned *graph.Graph
		if dirty != nil {
			oldPruned = old.pruned
		}
		w.pruned, err = buildPruned(g, oldPruned, dirty, policy.PruneTau)
		if err != nil {
			return nil, fmt.Errorf("core: web build: pruned graph: %w", err)
		}
	}
	return w, nil
}

// buildPruned derives the percolation-pruned companion of g: every edge
// of weight < tau dropped. Rows that survive intact share g's packed
// slices. When the incremental path supplies the predecessor's pruned
// graph and the dirty set, clean users' pruned rows are taken from it by
// reference and only dirty rows are refiltered and spliced.
func buildPruned(g *graph.Graph, oldPruned *graph.Graph, dirty []bool, tau float64) (*graph.Graph, error) {
	n := g.NumNodes()
	to := make([][]int32, n)
	w := make([][]float64, n)
	delta := oldPruned != nil && dirty != nil && oldPruned.NumNodes() <= n
	for u := 0; u < n; u++ {
		if delta && u < oldPruned.NumNodes() && !dirty[u] {
			to[u], w[u] = oldPruned.Out(u)
			continue
		}
		to[u], w[u] = pruneRow(g, u, tau)
	}
	if delta {
		return graph.UpdateRows(oldPruned, n, dirty, to, w)
	}
	return graph.FromRows(n, to, w)
}

// pruneRow filters node u's out-row of g to edges with weight >= tau,
// sharing g's slices when nothing is dropped.
func pruneRow(g *graph.Graph, u int, tau float64) ([]int32, []float64) {
	to, w := g.Out(u)
	kept := 0
	for _, x := range w {
		if x >= tau {
			kept++
		}
	}
	if kept == len(to) {
		return to, w
	}
	if kept == 0 {
		return nil, nil
	}
	ft := make([]int32, 0, kept)
	fw := make([]float64, 0, kept)
	for i, x := range w {
		if x >= tau {
			ft = append(ft, to[i])
			fw = append(fw, x)
		}
	}
	return ft, fw
}

// dirtyUsers marks the users whose web row or generosity may differ from
// the old web's after the dataset grew. User u's row is a pure function
// of (1) u's own affinity row and its normalisation — changed only by
// u's own new reviews or ratings; (2) the expertise columns of categories
// u has affinity for — changed only for touched categories; and (3) u's
// generosity — changed only by u's own new connections (ratings) or
// explicit trust edges. New users have no old row at all. Everyone else's
// inputs are byte-identical, which is what makes sharing their rows
// sound; the equals-fresh-derive property test pins it.
func dirtyUsers(oldD, newD *ratings.Dataset, touched []bool, affinity *mat.Dense) []bool {
	numU := newD.NumUsers()
	dirty := make([]bool, numU)
	for u := oldD.NumUsers(); u < numU; u++ {
		dirty[u] = true
	}
	for r := oldD.NumReviews(); r < newD.NumReviews(); r++ {
		dirty[newD.Review(ratings.ReviewID(r)).Writer] = true
	}
	for _, rt := range newD.Ratings()[oldD.NumRatings():] {
		dirty[rt.Rater] = true
	}
	for _, te := range newD.TrustEdges()[oldD.NumTrustEdges():] {
		dirty[te.From] = true
	}
	for c, t := range touched {
		if !t {
			continue
		}
		for u := 0; u < numU; u++ {
			if !dirty[u] && affinity.At(u, c) != 0 {
				dirty[u] = true
			}
		}
	}
	return dirty
}
