package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/synth"
)

// requireReadPathsAgree asserts, for every user of dt, that the three row
// evaluators (dense Row, CSC-indexed RowSparse, and the routing RowAuto)
// produce bitwise-identical rows, and that Value and its two underlying
// routes (the dense dot and the indexed binary search) agree bitwise on a
// stride of cells.
func requireReadPathsAgree(t *testing.T, label string, dt *DerivedTrust) {
	t.Helper()
	numU := dt.NumUsers()
	dense := make([]float64, numU)
	sparse := make([]float64, numU)
	auto := make([]float64, numU)
	for u := 0; u < numU; u++ {
		i := ratings.UserID(u)
		dt.Row(i, dense)
		dt.RowSparse(i, sparse)
		dt.RowAuto(i, auto)
		for j := range dense {
			if dense[j] != sparse[j] {
				t.Fatalf("%s: RowSparse T̂[%d][%d] = %v, Row = %v", label, u, j, sparse[j], dense[j])
			}
			if dense[j] != auto[j] {
				t.Fatalf("%s: RowAuto T̂[%d][%d] = %v, Row = %v", label, u, j, auto[j], dense[j])
			}
		}
		// Value divides by the row sum (where Row multiplies by its
		// reciprocal, a different last-bit rounding), so its reference is
		// the dense dot divided the same way — and the indexed route must
		// match that reference bitwise.
		for j := u % 13; j < numU; j += 13 {
			jid := ratings.UserID(j)
			sum := dt.rowSum[u]
			want := 0.0
			if sum != 0 {
				want = mat.Dot(dt.affinity.Row(u), dt.expertise.Row(j)) / sum
			}
			if got := dt.Value(i, jid); got != want {
				t.Fatalf("%s: Value(%d, %d) = %v, dense dot = %v", label, u, j, got, want)
			}
			if sum != 0 {
				if got := dt.valueIndexed(i, jid) / sum; got != want {
					t.Fatalf("%s: valueIndexed(%d, %d) = %v, dense dot = %v", label, u, j, got, want)
				}
			}
		}
	}
}

// TestReadPathEquivalenceQuick is the ISSUE 3 equivalence property: with
// the CSC expert-score index in place, the sparse and indexed read paths
// stay bitwise identical to the dense eq. 5 evaluation at every worker
// count, both on freshly-derived artifacts and on artifacts produced by
// the reuse-heavy incremental Update (which shares untouched expert lists
// and score columns with the old index instead of rebuilding them).
func TestReadPathEquivalenceQuick(t *testing.T) {
	f := func(seed uint64, touchedRaw, workersRaw uint8) bool {
		scfg := synth.Small()
		scfg.Seed = 1 + seed%16
		d, _, err := synth.Generate(scfg)
		if err != nil {
			t.Fatal(err)
		}
		workers := []int{1, 2, 4, 0}[int(workersRaw)%4]
		cfg := DefaultConfig()
		cfg.Workers = workers
		art, err := cfg.Run(d)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("seed=%d workers=%d", scfg.Seed, workers)
		requireReadPathsAgree(t, label, art.Trust)

		// Grow the dataset touching a prefix of the categories and fold
		// the growth in incrementally: untouched score columns must be
		// shared with the old index, and every read path must still match
		// the dense evaluation on the updated artifacts.
		touched := int(touchedRaw) % (d.NumCategories() + 1)
		newD := growFraction(t, d, touched)
		upd, err := cfg.UpdateScratch(art, d, newD, nil)
		if err != nil {
			t.Fatal(err)
		}
		for c := touched; c < d.NumCategories(); c++ {
			oldScores, newScores := art.Trust.expertScores[c], upd.Trust.expertScores[c]
			if len(oldScores) != len(newScores) {
				t.Fatalf("%s: untouched category %d score column length changed", label, c)
			}
			if len(oldScores) > 0 && &oldScores[0] != &newScores[0] {
				t.Fatalf("%s: untouched category %d score column rebuilt, not shared", label, c)
			}
		}
		requireReadPathsAgree(t, label+" after update touched="+fmt.Sprint(touched), upd.Trust)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestValueIndexedRouting pins the Value routing heuristic on a hand-built
// matrix pair where the winner is known: a user with one interest among
// many categories takes the indexed path, and a user with affinity
// everywhere takes the dense dot — both returning the same cells.
func TestValueIndexedRouting(t *testing.T) {
	const users, cats = 40, 24
	a := mat.NewDense(users, cats)
	e := mat.NewDense(users, cats)
	for u := 0; u < users; u++ {
		if u == 0 {
			a.Set(u, 3, 1) // narrow: one interest, routes indexed
		} else {
			for c := 0; c < cats; c++ {
				a.Set(u, c, 1/float64(cats)) // broad: routes dense
			}
		}
		e.Set(u, (u*7)%cats, float64(u%5)/5+0.1)
	}
	dt, err := NewDerivedTrust(a, e)
	if err != nil {
		t.Fatal(err)
	}
	if nnz := dt.affinityNNZ[0]; nnz != 1 {
		t.Fatalf("affinityNNZ[0] = %d, want 1", nnz)
	}
	for _, i := range []ratings.UserID{0, 1} {
		for j := 0; j < users; j++ {
			want := mat.Dot(a.Row(int(i)), e.Row(j)) / dt.rowSum[i]
			if got := dt.Value(i, ratings.UserID(j)); got != want {
				t.Errorf("Value(%d, %d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// TestRankRowScratchMatchesRankRow asserts the scratch-taking variant is
// the same selection, and that a capacity-k scratch leaves the returned
// []Ranked as the only allocation.
func TestRankRowScratchMatchesRankRow(t *testing.T) {
	row := []float64{0.3, 0, 0.9, 0.3, 0.1, 0, 0.9, 0.2}
	want := RankRow(row, 4)
	scratch := make([]int, 0, 4)
	got := RankRowScratch(row, 4, scratch)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RankRowScratch[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		RankRowScratch(row, 4, scratch)
	})
	if allocs > 1 {
		t.Errorf("RankRowScratch with scratch allocated %.1f times per run, want <= 1", allocs)
	}
}
