package core

// Tests for the serving path's ingest contract: a model built from an
// event-log prefix, grown by tail-replaying appended events and folded in
// with Update, must be indistinguishable from a cold Run over the whole
// log. This is exactly what trustd's tailer does between swaps.

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
	"weboftrust/internal/store"
	"weboftrust/internal/synth"
)

// logCommunity generates a small synthetic community and serialises it to
// an event log, the "snapshot" every test here starts from.
func logCommunity(t *testing.T) []byte {
	t.Helper()
	cfg := synth.Small()
	cfg.NumUsers = 50
	cfg.TotalObjects = 25
	d, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	lw := store.NewLogWriter(&buf)
	if err := store.AppendDataset(lw, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// growthEvents fabricates a valid batch of appended activity: two new
// users (a writer and a rater), optionally a brand-new category, two new
// reviewed objects with ratings from both the new rater and an existing
// user, and a trust edge.
func growthEvents(d *ratings.Dataset, seed uint64, newCat bool) []store.Event {
	rng := stats.NewRand(seed)
	users, cats := d.NumUsers(), d.NumCategories()
	objects, reviews := d.NumObjects(), d.NumReviews()

	writer := ratings.UserID(users)
	rater := ratings.UserID(users + 1)
	evs := []store.Event{
		{Kind: store.EvAddUser, Name: "tail-writer"},
		{Kind: store.EvAddUser, Name: "tail-rater"},
	}
	cat := ratings.CategoryID(rng.IntN(cats))
	if newCat {
		evs = append(evs, store.Event{Kind: store.EvAddCategory, Name: "tail-category"})
		cat = ratings.CategoryID(cats)
	}
	for i := 0; i < 2; i++ {
		oid := ratings.ObjectID(objects + i)
		rid := ratings.ReviewID(reviews + i)
		evs = append(evs,
			store.Event{Kind: store.EvAddObject, Category: cat, Name: ""},
			store.Event{Kind: store.EvAddReview, User: writer, Object: oid},
			store.Event{Kind: store.EvAddRating, User: rater, Review: rid, Level: uint8(1 + rng.IntN(5))},
			store.Event{Kind: store.EvAddRating, User: ratings.UserID(rng.IntN(users)), Review: rid, Level: uint8(1 + rng.IntN(5))},
		)
	}
	evs = append(evs, store.Event{Kind: store.EvAddTrust, User: rater, To: writer})
	return evs
}

// replayAll replays the whole log into a fresh builder and returns the
// builder, its snapshot, and the end offset.
func replayAll(t *testing.T, raw []byte) (*ratings.Builder, *ratings.Dataset, int64) {
	t.Helper()
	events, off, err := store.ReadLogFrom(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := ratings.NewBuilder()
	if err := store.Replay(events, b); err != nil {
		t.Fatal(err)
	}
	return b, b.Snapshot(), off
}

// assertArtifactsEqual fails unless the two artifact sets are exactly
// equal, cell for cell.
func assertArtifactsEqual(t *testing.T, inc, full *Artifacts, numUsers int) {
	t.Helper()
	if !inc.Expertise.Equal(full.Expertise, 0) {
		t.Fatal("tail-replay expertise differs from cold run")
	}
	if !inc.Affinity.Equal(full.Affinity, 0) {
		t.Fatal("tail-replay affinity differs from cold run")
	}
	for i := 0; i < numUsers; i++ {
		for j := 0; j < numUsers; j++ {
			a := inc.Trust.Value(ratings.UserID(i), ratings.UserID(j))
			b := full.Trust.Value(ratings.UserID(i), ratings.UserID(j))
			if a != b {
				t.Fatalf("T̂[%d][%d]: tail-replay %v != cold %v", i, j, a, b)
			}
		}
	}
}

// Property: snapshot → append events → tail-replay → Update produces the
// same model as a cold Run over the full log, whether or not the tail
// introduces a new category.
func TestUpdateFromLogTailQuick(t *testing.T) {
	raw := logCommunity(t)
	cfg := DefaultConfig()
	f := func(seed uint64, newCat bool) bool {
		b, d0, off := replayAll(t, raw)
		art0, err := cfg.Run(d0)
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		buf.Write(raw)
		lw := store.NewLogWriter(&buf)
		for _, ev := range growthEvents(d0, seed, newCat) {
			if err := lw.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := lw.Flush(); err != nil {
			t.Fatal(err)
		}
		grown := buf.Bytes()

		tail, off2, err := store.ReadLogFrom(bytes.NewReader(grown), off)
		if err != nil {
			t.Fatal(err)
		}
		if off2 != int64(len(grown)) {
			t.Fatalf("tail stopped at %d, want %d", off2, len(grown))
		}
		if err := store.Replay(tail, b); err != nil {
			t.Fatal(err)
		}
		newD := b.Snapshot()
		inc, err := cfg.Update(art0, d0, newD)
		if err != nil {
			t.Fatal(err)
		}

		_, fullD, _ := replayAll(t, grown)
		full, err := cfg.Run(fullD)
		if err != nil {
			t.Fatal(err)
		}
		assertArtifactsEqual(t, inc, full, fullD.NumUsers())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// A crash mid-append must not poison the pipeline: the tailer ingests the
// intact prefix (ErrTruncated carries where it ends), updates, and picks
// up the completed record on the next pass — ending at the same model a
// cold run over the completed log produces.
func TestUpdateFromTruncatedTail(t *testing.T) {
	raw := logCommunity(t)
	cfg := DefaultConfig()
	b, d0, off := replayAll(t, raw)
	art0, err := cfg.Run(d0)
	if err != nil {
		t.Fatal(err)
	}

	// Serialise a growth batch separately so we can tear its last record.
	var batch bytes.Buffer
	lw := store.NewLogWriter(&batch)
	evs := growthEvents(d0, 7, true)
	for _, ev := range evs[:len(evs)-1] {
		if err := lw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	intactLen := batch.Len()
	if err := lw.Append(evs[len(evs)-1]); err != nil {
		t.Fatal(err)
	}
	if err := lw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := batch.Bytes()
	torn := append(append([]byte(nil), raw...), full[:intactLen+2]...)

	// First tail pass: the intact prefix plus ErrTruncated at its end.
	tail, off2, err := store.ReadLogFrom(bytes.NewReader(torn), off)
	if !errors.Is(err, store.ErrTruncated) {
		t.Fatalf("torn tail error = %v, want ErrTruncated", err)
	}
	if len(tail) != len(evs)-1 || off2 != int64(len(raw)+intactLen) {
		t.Fatalf("torn tail: %d events to offset %d, want %d events to %d",
			len(tail), off2, len(evs)-1, len(raw)+intactLen)
	}
	if err := store.Replay(tail, b); err != nil {
		t.Fatal(err)
	}
	midD := b.Snapshot()
	midArt, err := cfg.Update(art0, d0, midD)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMidD, _ := replayAll(t, torn[:len(raw)+intactLen])
	coldMid, err := cfg.Run(coldMidD)
	if err != nil {
		t.Fatal(err)
	}
	assertArtifactsEqual(t, midArt, coldMid, coldMidD.NumUsers())

	// The writer finishes the record; the second pass picks up the rest.
	whole := append(append([]byte(nil), raw...), full...)
	tail2, off3, err := store.ReadLogFrom(bytes.NewReader(whole), off2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail2) != 1 || off3 != int64(len(whole)) {
		t.Fatalf("resumed tail: %d events to %d, want 1 event to %d", len(tail2), off3, len(whole))
	}
	if err := store.Replay(tail2, b); err != nil {
		t.Fatal(err)
	}
	finalD := b.Snapshot()
	finalArt, err := cfg.Update(midArt, midD, finalD)
	if err != nil {
		t.Fatal(err)
	}
	_, coldFinalD, _ := replayAll(t, whole)
	coldFinal, err := cfg.Run(coldFinalD)
	if err != nil {
		t.Fatal(err)
	}
	assertArtifactsEqual(t, finalArt, coldFinal, coldFinalD.NumUsers())
}
