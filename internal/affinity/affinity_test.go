package affinity

import (
	"math"
	"testing"
	"testing/quick"

	"weboftrust/internal/mat"
	"weboftrust/internal/ratings"
	"weboftrust/internal/stats"
)

// build creates two categories; user 0 writes reviews (2 in movies, 1 in
// books), user 1 rates (4 in movies, 2 in books), user 2 is idle.
func build(t *testing.T) *ratings.Dataset {
	t.Helper()
	b := ratings.NewBuilder()
	movies := b.AddCategory("movies")
	books := b.AddCategory("books")
	writer := b.AddUser("writer")
	rater := b.AddUser("rater")
	b.AddUser("idle")

	var reviews []ratings.ReviewID
	for _, cat := range []ratings.CategoryID{movies, movies, books} {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(writer, oid)
		if err != nil {
			t.Fatal(err)
		}
		reviews = append(reviews, rid)
	}
	// rater rates movie reviews twice... but duplicates are rejected, so
	// add a second writer to create more rateable movie reviews.
	writer2 := b.AddUser("writer2")
	for _, cat := range []ratings.CategoryID{movies, movies, books} {
		oid, err := b.AddObject(cat, "")
		if err != nil {
			t.Fatal(err)
		}
		rid, err := b.AddReview(writer2, oid)
		if err != nil {
			t.Fatal(err)
		}
		reviews = append(reviews, rid)
	}
	// rater: 4 movie ratings (reviews 0,1,3,4), 2 book ratings (2,5).
	for _, rid := range reviews {
		if err := b.AddRating(rater, rid, 0.8); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestCount(t *testing.T) {
	d := build(t)
	c := Count(d, 1)
	if got := c.Writes.At(0, 0); got != 2 {
		t.Errorf("writer writes in movies = %v, want 2", got)
	}
	if got := c.Writes.At(0, 1); got != 1 {
		t.Errorf("writer writes in books = %v, want 1", got)
	}
	if got := c.Ratings.At(1, 0); got != 4 {
		t.Errorf("rater ratings in movies = %v, want 4", got)
	}
	if got := c.Ratings.At(1, 1); got != 2 {
		t.Errorf("rater ratings in books = %v, want 2", got)
	}
	if got := c.Ratings.At(2, 0); got != 0 {
		t.Errorf("idle user ratings = %v, want 0", got)
	}
}

func TestMatrixBlend(t *testing.T) {
	d := build(t)
	a, err := Matrix(d, Blend)
	if err != nil {
		t.Fatal(err)
	}
	// writer: writes (2,1) -> normalised (1, 0.5); no ratings -> 0 term.
	// A = ((0+1)/2, (0+0.5)/2) = (0.5, 0.25)
	if got := a.At(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("A[writer][movies] = %v, want 0.5", got)
	}
	if got := a.At(0, 1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("A[writer][books] = %v, want 0.25", got)
	}
	// rater: ratings (4,2) -> (1, 0.5); no writes.
	if got := a.At(1, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("A[rater][movies] = %v, want 0.5", got)
	}
	// idle user: all zeros.
	if got := a.At(2, 0); got != 0 {
		t.Errorf("A[idle][movies] = %v, want 0", got)
	}
}

func TestMatrixModes(t *testing.T) {
	d := build(t)
	ar, err := Matrix(d, RatingsOnly)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := Matrix(d, WritesOnly)
	if err != nil {
		t.Fatal(err)
	}
	if got := ar.At(1, 0); got != 1 {
		t.Errorf("ratings-only A[rater][movies] = %v, want 1", got)
	}
	if got := ar.At(0, 0); got != 0 {
		t.Errorf("ratings-only A[writer][movies] = %v, want 0", got)
	}
	if got := aw.At(0, 0); got != 1 {
		t.Errorf("writes-only A[writer][movies] = %v, want 1", got)
	}
	if got := aw.At(1, 0); got != 0 {
		t.Errorf("writes-only A[rater][movies] = %v, want 0", got)
	}
}

func TestInvalidMode(t *testing.T) {
	d := build(t)
	if _, err := Matrix(d, Mode(42)); err == nil {
		t.Error("expected error for invalid mode")
	}
	if Mode(42).Valid() {
		t.Error("Mode(42).Valid() = true")
	}
	if Mode(42).String() == "" {
		t.Error("Mode(42).String() empty")
	}
	for _, m := range []Mode{Blend, RatingsOnly, WritesOnly} {
		if !m.Valid() || m.String() == "" {
			t.Errorf("mode %d should be valid and named", int(m))
		}
	}
}

func TestFromCountsShapeMismatch(t *testing.T) {
	c := Count(build(t), 2)
	same := Counts{Ratings: c.Ratings, Writes: c.Ratings.Clone()}
	if _, err := FromCounts(same, Blend); err != nil {
		t.Fatalf("same-shape counts should work: %v", err)
	}
	small := Counts{Ratings: c.Ratings, Writes: mat.NewDense(1, 1)}
	if _, err := FromCounts(small, Blend); err == nil {
		t.Error("expected shape mismatch error")
	}
}

// Property: affinity values are in [0,1], and every active user's
// strongest category has affinity >= 0.5 under Blend (the paper's
// observation that the argmax of either activity is fully weighted).
func TestAffinityInvariantsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		a, err := Matrix(d, Blend)
		if err != nil {
			return false
		}
		for u := 0; u < d.NumUsers(); u++ {
			row := a.Row(u)
			rowMax := 0.0
			for _, v := range row {
				if v < 0 || v > 1 {
					return false
				}
				if v > rowMax {
					rowMax = v
				}
			}
			active := len(d.RatingsBy(ratings.UserID(u))) > 0 ||
				len(d.ReviewsByWriter(ratings.UserID(u))) > 0
			if active && rowMax < 0.5-1e-12 {
				return false
			}
			if !active && rowMax != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Blend is the average of RatingsOnly and WritesOnly.
func TestBlendIsAverageQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		blend, err1 := Matrix(d, Blend)
		ro, err2 := Matrix(d, RatingsOnly)
		wo, err3 := Matrix(d, WritesOnly)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for u := 0; u < d.NumUsers(); u++ {
			for c := 0; c < d.NumCategories(); c++ {
				want := (ro.At(u, c) + wo.At(u, c)) / 2
				if math.Abs(blend.At(u, c)-want) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomDataset(seed uint64) *ratings.Dataset {
	rng := stats.NewRand(seed)
	b := ratings.NewBuilder()
	numCats := 1 + rng.IntN(4)
	for c := 0; c < numCats; c++ {
		b.AddCategory("")
	}
	numUsers := 2 + rng.IntN(12)
	b.AddUsers(numUsers)
	var reviews []ratings.ReviewID
	for k := 0; k < rng.IntN(25); k++ {
		oid, err := b.AddObject(ratings.CategoryID(rng.IntN(numCats)), "")
		if err != nil {
			panic(err)
		}
		rid, err := b.AddReview(ratings.UserID(rng.IntN(numUsers)), oid)
		if err != nil {
			panic(err)
		}
		reviews = append(reviews, rid)
	}
	for k := 0; k < rng.IntN(80) && len(reviews) > 0; k++ {
		rater := ratings.UserID(rng.IntN(numUsers))
		rev := reviews[rng.IntN(len(reviews))]
		if b.HasRating(rater, rev) {
			continue
		}
		_ = b.AddRating(rater, rev, ratings.QuantizeRating(rng.Float64()))
	}
	return b.Build()
}
